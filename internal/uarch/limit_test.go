package uarch

import (
	"context"
	"errors"
	"testing"

	"braid/internal/asm"
)

// idleStretchSrc is a program whose execution contains a long, provably idle
// stretch the fast-forward path will skip: a cold main-memory load miss
// (the address lies beyond the pre-warmed first megabyte of the data space)
// with every later instruction data-dependent on it.
const idleStretchSrc = `
.name idlestretch
.data 1024
	ldimm r0, #262143      ; doubled three times: ~2 MiB, cold in every cache
	add   r0, r0, r0
	add   r0, r0, r0
	add   r0, r0, r0
	ldq   r1, 0(r0)    !ac=1
	add   r2, r1, #1
	add   r3, r2, #2
	add   r4, r3, #3
	stq   r4, 8(r0)    !ac=2
	halt
`

// TestCycleLimitInsideIdleStretch is the fast-forward clamp regression test:
// a MaxCycles budget that lands inside a fast-forwardable idle stretch (and
// at every other cycle of the run) must fire ErrCycleLimit at exactly the
// configured bound, with the same observable failure state (the error string
// reports fetched/retired/in-flight) as a machine that simulates every cycle
// individually.
func TestCycleLimitInsideIdleStretch(t *testing.T) {
	p, err := asm.Parse(idleStretchSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := OutOfOrderConfig(8)
	cfg.Mem.MemLatency = 300 // one cold miss dominates the run

	full, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if full.IdleCycles < 250 {
		t.Fatalf("program has no long idle stretch to fast-forward (%d idle of %d cycles)",
			full.IdleCycles, full.Cycles)
	}

	for lim := uint64(1); lim <= full.Cycles+5; lim++ {
		ff := cfg
		ff.MaxCycles = lim
		noff := cfg
		noff.MaxCycles = lim
		noff.NoFastForward = true
		fs, ferr := Simulate(p, ff)
		ns, nerr := Simulate(p, noff)
		if (ferr == nil) != (nerr == nil) {
			t.Fatalf("limit %d: fast-forward err=%v, per-cycle err=%v", lim, ferr, nerr)
		}
		if ferr != nil {
			if !errors.Is(ferr, ErrCycleLimit) {
				t.Fatalf("limit %d: wrong error type: %v", lim, ferr)
			}
			if ferr.Error() != nerr.Error() {
				t.Fatalf("limit %d: divergent failure state:\n  fast-forward: %v\n  per-cycle:    %v", lim, ferr, nerr)
			}
			continue
		}
		if fs.Cycles != ns.Cycles || fs.Retired != ns.Retired {
			t.Fatalf("limit %d: divergent success: %d/%d cycles, %d/%d retired",
				lim, fs.Cycles, ns.Cycles, fs.Retired, ns.Retired)
		}
	}
}

// TestCanceledContextStopsInsideIdleStretch: cancellation must be noticed on
// the cycle-based poll cadence even when every step fast-forwards, i.e. a
// pre-canceled context stops a run whose first real work is a huge leap.
func TestCanceledContextStopsInsideIdleStretch(t *testing.T) {
	p, err := asm.Parse(idleStretchSrc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := OutOfOrderConfig(8)
	cfg.Mem.MemLatency = 100000
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := New(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunContext(ctx); !errors.Is(err, ErrCanceled) {
		t.Fatalf("pre-canceled context returned %v, want ErrCanceled", err)
	}
}
