package uarch

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"strconv"
	"strings"

	"braid/internal/bpred"
	"braid/internal/isa"
	"braid/internal/mem"
)

// Sampled simulation (SMARTS-style systematic interval sampling). The
// simulator is functionally directed, so the dynamic instruction stream is a
// precomputed trace shared by every configuration; sampling exploits that by
// replaying most of the trace functionally — touching the instruction cache,
// data cache, and branch predictor so their state stays warm, but building no
// pipeline state — and running the detailed cycle-level engine only on
// periodic measurement intervals. Architectural execution is exact either
// way (same trace), so instruction counts and final architectural state are
// identical to exact mode; only timing is estimated, with a confidence
// interval derived from the per-interval CPI variance.

// Sampling configures interval sampling. Every Period instructions the
// engine runs a detailed interval: Warmup instructions to rebuild pipeline
// and scheduler state (measured stats discarded), then Detail instructions
// whose cycles are measured. Everything else fast-forwards functionally.
// The zero value disables sampling (exact simulation).
type Sampling struct {
	Period uint64 `json:"period"`
	Detail uint64 `json:"detail"`
	Warmup uint64 `json:"warmup"`
}

// Enabled reports whether sampling is requested (non-zero value).
func (s Sampling) Enabled() bool { return s != Sampling{} }

// Validate checks the interval geometry: an enabled configuration needs a
// positive period and detail length, and the detailed window (warm-up plus
// measurement) must leave room to fast-forward — Warmup+Detail >= Period
// (which includes every Period <= Detail) would make the "sampled" run
// simulate everything in detail, which exact mode already does better.
func (s Sampling) Validate() error {
	if !s.Enabled() {
		return nil
	}
	if s.Period == 0 || s.Detail == 0 {
		return fmt.Errorf("uarch: sampling %s needs a positive period and detail length", s)
	}
	if s.Warmup+s.Detail >= s.Period {
		return fmt.Errorf("uarch: sampling %s leaves nothing to fast-forward (warmup+detail %d >= period %d); use exact simulation instead",
			s, s.Warmup+s.Detail, s.Period)
	}
	return nil
}

// String renders the flag form, "period:detail:warmup".
func (s Sampling) String() string {
	return fmt.Sprintf("%d:%d:%d", s.Period, s.Detail, s.Warmup)
}

// ParseSampling parses a "period:detail:warmup" specification (the -sample
// flag form); warmup may be omitted. An empty string is the disabled zero
// value.
func ParseSampling(spec string) (Sampling, error) {
	if spec == "" {
		return Sampling{}, nil
	}
	parts := strings.Split(spec, ":")
	if len(parts) < 2 || len(parts) > 3 {
		return Sampling{}, fmt.Errorf("uarch: sampling spec %q is not period:detail[:warmup]", spec)
	}
	var vals [3]uint64
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 64)
		if err != nil {
			return Sampling{}, fmt.Errorf("uarch: sampling spec %q: %v", spec, err)
		}
		vals[i] = v
	}
	s := Sampling{Period: vals[0], Detail: vals[1], Warmup: vals[2]}
	if err := s.Validate(); err != nil {
		return Sampling{}, err
	}
	return s, nil
}

// SampleEstimate reports how a sampled run's Stats were estimated. It lives
// outside Stats so exact-mode results — including the golden-stats rendering
// of the whole Stats struct — are byte-identical with sampling code linked
// in.
type SampleEstimate struct {
	// Intervals is the number of measurement intervals that contributed.
	Intervals int `json:"intervals"`
	// DetailedInstrs counts instructions the detailed engine fetched
	// (warm-up, measured window, and the in-flight tail at interval end);
	// FFwdInstrs counts the functionally fast-forwarded rest. They sum to
	// the program's retired instructions.
	DetailedInstrs uint64 `json:"detailed_instructions"`
	FFwdInstrs     uint64 `json:"fastforward_instructions"`
	// MeasuredInstrs is the subset of DetailedInstrs inside measurement
	// windows (warm-up excluded) that the CPI estimate is built from.
	MeasuredInstrs uint64 `json:"measured_instructions"`
	// CPI is the ratio estimate sum(cycles_i)/sum(instrs_i) over the
	// measurement windows; Stats.Cycles is CPI scaled to the full run.
	CPI float64 `json:"cpi"`
	// IPCRelCI is the half-width of the 95% confidence interval on IPC,
	// relative to the estimate (0.02 means IPC ± 2%). Zero when fewer
	// than two intervals were measured.
	IPCRelCI float64 `json:"ipc_rel_ci95"`
	// Exact marks a degenerate fall-back: the program was shorter than
	// one sampling period (or non-halting, so no replay trace exists) and
	// ran exactly; the Stats are not estimates.
	Exact bool `json:"exact,omitempty"`
}

// IPC is the estimated instructions per cycle.
func (e *SampleEstimate) IPC() float64 {
	if e.CPI == 0 {
		return 0
	}
	return 1 / e.CPI
}

// ffCheckInterval bounds how many fast-forwarded instructions pass between
// context polls, so cancellation lands promptly even mid-leap.
const ffCheckInterval = 8192

// SimulateSampled runs program p under cfg with interval sampling sp,
// returning estimated Stats and the estimate's provenance. Like
// SimulateChecked it contains engine panics as *SimFault and honors ctx
// cancellation/deadlines (ErrCanceled/ErrTimeout). A disabled sp runs exact
// with a nil estimate; a program shorter than one period (or without a
// replay trace) runs exact with est.Exact set.
func SimulateSampled(ctx context.Context, p *isa.Program, cfg Config, sp Sampling) (*Stats, *SampleEstimate, error) {
	if !sp.Enabled() {
		st, err := SimulateChecked(ctx, p, cfg)
		return st, nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	tr := programTrace(p)
	if tr == nil || uint64(len(tr)) <= sp.Period {
		st, err := SimulateChecked(ctx, p, cfg)
		if err != nil {
			return nil, nil, err
		}
		return st, &SampleEstimate{
			DetailedInstrs: st.Retired,
			MeasuredInstrs: st.Retired,
			CPI:            float64(st.Cycles) / float64(max(st.Retired, 1)),
			Exact:          true,
		}, nil
	}
	return runSampled(ctx, p, cfg, sp, tr)
}

// warmer replays the trace functionally, keeping the structures with
// long-lived state — instruction cache, data cache, branch predictor — warm
// across fast-forwarded stretches. It mirrors the front end's access
// pattern: one I-cache probe per line transition, predict-then-train per
// conditional branch in fetch order (so its mispredict count equals exact
// mode's), one D-cache touch per load or store.
type warmer struct {
	meta     []staticMeta
	hier     *mem.Hierarchy
	pred     bpred.Predictor
	lastLine uint64
	haveLine bool

	condBranches uint64
	mispredicts  uint64
	loads        uint64
	stores       uint64
}

func (w *warmer) warm(e *traceEntry) {
	addr := instrAddr(int(e.idx))
	if line := addr >> 6; !w.haveLine || line != w.lastLine {
		w.hier.AccessI(addr)
		w.lastLine, w.haveLine = line, true
	}
	sm := &w.meta[e.idx]
	switch {
	case sm.isCondBranch:
		w.condBranches++
		if w.pred.Predict(addr, e.taken) != e.taken {
			w.mispredicts++
		}
		w.pred.Train(addr, e.taken)
	case sm.isLoad:
		w.loads++
		w.hier.AccessD(e.addr)
	case sm.isStore:
		w.stores++
		w.hier.AccessD(e.addr)
	}
}

// runSampled alternates functional fast-forward with detailed measurement
// intervals and scales the interval measurements into estimated Stats.
func runSampled(ctx context.Context, p *isa.Program, cfg Config, sp Sampling, tr []traceEntry) (st *Stats, est *SampleEstimate, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, est = nil, nil
			err = &SimFault{
				Core:    cfg.Core,
				Program: p.Name,
				Panic:   r,
				Stack:   debug.Stack(),
			}
		}
	}()

	hier, err := warmHierarchy(p, cfg.Mem)
	if err != nil {
		return nil, nil, err
	}
	w := &warmer{meta: programMeta(p), hier: hier, pred: newPredictor(&cfg)}

	n := uint64(len(tr))
	var (
		sumC, sumU float64   // ratio-estimator accumulators (measured windows)
		cpis       []float64 // per-interval CPIs, for the variance
		micro      Stats     // accumulated interval-machine micro counters
		detailed   uint64    // instructions run on the detailed engine
		measured   uint64    // ... of which inside measurement windows
	)
	done := ctx.Done()
	pos, nextSample := uint64(0), uint64(0)
	for pos < n {
		if done != nil {
			select {
			case <-done:
				return nil, nil, sampledCtxErr(ctx, &cfg, p, pos)
			default:
			}
		}
		if pos >= nextSample {
			// Detailed interval. The machine shares the warmer's
			// hierarchy and predictor, so its fetch IS the warming for
			// the span it covers; the warmer resumes where fetch
			// stopped, keeping the predictor's training sequence
			// exactly the exact-mode sequence.
			c, u, endPos, ist, ierr := runInterval(ctx, p, cfg, int(pos), w, sp.Warmup, sp.Detail)
			if ierr != nil {
				return nil, nil, ierr
			}
			detailed += endPos - pos
			w.mispredicts += ist.Mispredicts
			for i := pos; i < endPos; i++ {
				sm := &w.meta[tr[i].idx]
				switch {
				case sm.isCondBranch:
					w.condBranches++
				case sm.isLoad:
					w.loads++
				case sm.isStore:
					w.stores++
				}
			}
			if u > 0 {
				sumC += float64(c)
				sumU += float64(u)
				measured += u
				cpis = append(cpis, float64(c)/float64(u))
			}
			accumulateMicro(&micro, ist)
			nextSample += sp.Period
			pos = endPos
			continue
		}
		// Functional fast-forward to the next sample point.
		stop := min(nextSample, n)
		for ; pos < stop; pos++ {
			if done != nil && pos%ffCheckInterval == 0 {
				select {
				case <-done:
					return nil, nil, sampledCtxErr(ctx, &cfg, p, pos)
				default:
				}
			}
			w.warm(&tr[pos])
		}
	}
	if sumU == 0 {
		// Cannot happen with a validated geometry (the first interval
		// starts at instruction 0 and n > Period > Warmup+Detail), but
		// never divide by zero on an estimator.
		return nil, nil, fmt.Errorf("uarch: %s on %q: sampling %s measured no instructions", cfg.Core, p.Name, sp)
	}

	cpiHat := sumC / sumU
	estCycles := uint64(math.Round(cpiHat * float64(n)))
	if estCycles >= cfg.MaxCycles {
		// Exact mode would exhaust its cycle budget on this point; agree
		// with it instead of reporting an estimate no exact run could
		// reach.
		return nil, nil, fmt.Errorf("uarch: %s on %q %w: estimated %d cycles exceed budget %d (sampling %s)",
			cfg.Core, p.Name, ErrCycleLimit, estCycles, cfg.MaxCycles, sp)
	}

	// Measured micro counters scale by the inverse sampling fraction; the
	// architectural counts are exact from the trace and the warmer.
	scale := float64(n) / float64(max(detailed, 1))
	scaleU := func(v uint64) uint64 { return uint64(math.Round(float64(v) * scale)) }
	st = &Stats{
		Cycles:           estCycles,
		Retired:          n,
		Fetched:          n,
		CondBranches:     w.condBranches,
		Mispredicts:      w.mispredicts,
		Loads:            w.loads,
		StoreCount:       w.stores,
		ICacheMissCycles: scaleU(micro.ICacheMissCycles),
		IssueStalls:      scaleU(micro.IssueStalls),
		IdleCycles:       scaleU(micro.IdleCycles),
		FetchStallCycles: scaleU(micro.FetchStallCycles),
		robOccupancySum:  scaleU(micro.robOccupancySum),
		issuedSum:        scaleU(micro.issuedSum),
		RFEntryStalls:    scaleU(micro.RFEntryStalls),
		PortStalls:       scaleU(micro.PortStalls),
		WritePortStalls:  scaleU(micro.WritePortStalls),
		BypassDenied:     scaleU(micro.BypassDenied),
		RFPeak:           micro.RFPeak,
	}
	if cfg.ExceptionEvery > 0 {
		st.Exceptions = n / cfg.ExceptionEvery
	}
	est = &SampleEstimate{
		Intervals:      len(cpis),
		DetailedInstrs: detailed,
		FFwdInstrs:     n - detailed,
		MeasuredInstrs: measured,
		CPI:            cpiHat,
		IPCRelCI:       relCI95(cpis, cpiHat),
	}
	return st, est, nil
}

// runInterval runs one detailed measurement interval: a fresh machine is
// built at trace position tpos directly on the warmer's hierarchy and
// predictor (its fetch is the warming for the span it covers), simulated
// through the warm-up, and measured for the detail window. It returns the
// measured cycles and instructions (zero if the program ended inside the
// warm-up), the trace position fetch reached — where the warmer resumes —
// and the machine's full interval stats for micro-counter scaling.
func runInterval(ctx context.Context, p *isa.Program, cfg Config, tpos int, w *warmer, warmup, detail uint64) (cycles, instrs, endPos uint64, st *Stats, err error) {
	cfg.Inject = nil // the fault injector targets the exact path only
	m, err := newMachine(p, cfg, w.hier)
	if err != nil {
		return 0, 0, 0, nil, err
	}
	m.fe.tpos = tpos
	m.fe.pred = w.pred

	measureAt := warmup
	stopAt := warmup + detail
	warmDone := warmup == 0
	var warmCycles, warmRetired uint64
	done := ctx.Done()
	var nextPoll uint64
	for {
		if m.cycle >= m.cfg.MaxCycles {
			return 0, 0, 0, nil, fmt.Errorf("uarch: %s on %q %w: %d cycles inside one sampled interval at instruction %d (fetched %d, retired %d — wedged machine or budget too small)",
				m.cfg.Core, p.Name, ErrCycleLimit, m.cfg.MaxCycles, tpos, m.stats.Fetched, m.stats.Retired)
		}
		if done != nil && m.cycle >= nextPoll {
			select {
			case <-done:
				return 0, 0, 0, nil, m.ctxErr(ctx)
			default:
			}
			nextPoll = m.cycle + ctxCheckInterval
		}
		fin := m.step()
		if !warmDone && m.stats.Retired >= measureAt {
			warmDone = true
			warmCycles, warmRetired = m.cycle, m.stats.Retired
		}
		if fin || m.stats.Retired >= stopAt {
			break
		}
	}
	m.stats.Cycles = m.cycle
	// Hand the I-cache line state back so the warmer's next probe pattern
	// continues exactly where fetch left off.
	w.lastLine, w.haveLine = m.fe.lastLine, m.fe.haveLine
	endPos = uint64(m.fe.tpos)
	if !warmDone {
		return 0, 0, endPos, &m.stats, nil
	}
	return m.cycle - warmCycles, m.stats.Retired - warmRetired, endPos, &m.stats, nil
}

// accumulateMicro sums the interval machine's scalable micro counters.
func accumulateMicro(dst, s *Stats) {
	dst.Retired += s.Retired
	dst.ICacheMissCycles += s.ICacheMissCycles
	dst.IssueStalls += s.IssueStalls
	dst.IdleCycles += s.IdleCycles
	dst.FetchStallCycles += s.FetchStallCycles
	dst.robOccupancySum += s.robOccupancySum
	dst.issuedSum += s.issuedSum
	dst.RFEntryStalls += s.RFEntryStalls
	dst.PortStalls += s.PortStalls
	dst.WritePortStalls += s.WritePortStalls
	dst.BypassDenied += s.BypassDenied
	if s.RFPeak > dst.RFPeak {
		dst.RFPeak = s.RFPeak
	}
}

// relCI95 is the half-width of the 95% confidence interval on CPI (and
// therefore on IPC, to first order), relative to the ratio estimate: the
// per-interval CPI standard error times 1.96 over the estimate.
func relCI95(cpis []float64, cpiHat float64) float64 {
	n := len(cpis)
	if n < 2 || cpiHat == 0 {
		return 0
	}
	mean := 0.0
	for _, c := range cpis {
		mean += c
	}
	mean /= float64(n)
	varSum := 0.0
	for _, c := range cpis {
		d := c - mean
		varSum += d * d
	}
	se := math.Sqrt(varSum / float64(n-1) / float64(n))
	ci := 1.96 * se / cpiHat
	if math.IsNaN(ci) || math.IsInf(ci, 0) {
		// Estimates travel through JSON (json.Marshal rejects NaN/Inf
		// outright, turning one degenerate interval geometry into a
		// failed response), so never let a non-finite value escape.
		return 0
	}
	return ci
}

// sampledCtxErr mirrors Machine.ctxErr for cancellation during functional
// fast-forward, where no machine exists.
func sampledCtxErr(ctx context.Context, cfg *Config, p *isa.Program, pos uint64) error {
	sentinel := ErrCanceled
	if ctx.Err() == context.DeadlineExceeded {
		sentinel = ErrTimeout
	}
	return fmt.Errorf("uarch: %s on %q %w during fast-forward at instruction %d",
		cfg.Core, p.Name, sentinel, pos)
}
