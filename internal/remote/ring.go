package remote

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ring is a consistent-hash ring over backend indices. Each backend owns
// replicas virtual nodes, so load spreads evenly while a key's owner moves
// only when its arc's backend set changes. Routing the (program, config)
// cache key through the ring is what makes a repeated design point land on
// the backend that already holds it in its result LRU: the sweep's working
// set shards across the fleet instead of duplicating into every cache.
type ring struct {
	hashes []uint64 // sorted virtual-node positions
	owner  []int    // owner[i] = backend index of hashes[i]
	n      int      // distinct backends
}

func newRing(backends []string, replicas int) *ring {
	r := &ring{n: len(backends)}
	for i, b := range backends {
		for v := 0; v < replicas; v++ {
			r.hashes = append(r.hashes, hashKey(fmt.Sprintf("%s#%d", b, v)))
			r.owner = append(r.owner, i)
		}
	}
	sort.Sort(ringOrder{r})
	return r
}

// candidates returns every backend index in ring order starting at key's
// successor node: candidates[0] is the consistent-hash owner, the rest are
// the failover order. The slice is freshly allocated per call.
func (r *ring) candidates(key string) []int {
	out := make([]int, 0, r.n)
	if r.n == 0 {
		return out
	}
	seen := make([]bool, r.n)
	h := hashKey(key)
	start := sort.Search(len(r.hashes), func(i int) bool { return r.hashes[i] >= h })
	for i := 0; len(out) < r.n && i < len(r.hashes); i++ {
		b := r.owner[(start+i)%len(r.hashes)]
		if !seen[b] {
			seen[b] = true
			out = append(out, b)
		}
	}
	return out
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// ringOrder sorts the virtual nodes and their owners together.
type ringOrder struct{ r *ring }

func (o ringOrder) Len() int           { return len(o.r.hashes) }
func (o ringOrder) Less(i, j int) bool { return o.r.hashes[i] < o.r.hashes[j] }
func (o ringOrder) Swap(i, j int) {
	o.r.hashes[i], o.r.hashes[j] = o.r.hashes[j], o.r.hashes[i]
	o.r.owner[i], o.r.owner[j] = o.r.owner[j], o.r.owner[i]
}
