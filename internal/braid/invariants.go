package braid

import (
	"fmt"

	"braid/internal/cfg"
	"braid/internal/isa"
)

// VerifyInvariants checks the structural guarantees a braided program must
// satisfy, given the original program it was compiled from. It is used by
// the test suite (including property-based tests over generated programs)
// and is cheap enough to run in harnesses as a sanity check.
//
// Invariants:
//  1. braids partition the program into consecutive, disjoint, covering
//     instruction ranges;
//  2. the S bit is set exactly on each braid's first instruction;
//  3. every internal-register read (T bit) was produced earlier in the same
//     braid — internal values never cross braid boundaries (paper §3.4);
//  4. within every block, the original order of may-alias memory pairs
//     involving a store is preserved (paper §3.1);
//  5. a block-terminating branch remains the block's last instruction, so
//     all control-flow targets are unchanged;
//  6. blocks keep their instruction extents (reordering is block-local).
func (res *Result) VerifyInvariants(orig *isa.Program) error {
	p := res.Prog
	if len(p.Instrs) != len(orig.Instrs) {
		return fmt.Errorf("instruction count changed: %d -> %d", len(orig.Instrs), len(p.Instrs))
	}

	// 1 & 2: partition and S bits.
	pos := 0
	for bi := range res.Braids {
		b := &res.Braids[bi]
		if b.Start != pos {
			return fmt.Errorf("braid %d starts at %d, want %d (not a partition)", bi, b.Start, pos)
		}
		if b.End <= b.Start || b.End > len(p.Instrs) {
			return fmt.Errorf("braid %d has bad extent [%d,%d)", bi, b.Start, b.End)
		}
		for i := b.Start; i < b.End; i++ {
			if res.BraidOf[i] != bi {
				return fmt.Errorf("BraidOf[%d] = %d, want %d", i, res.BraidOf[i], bi)
			}
			wantStart := i == b.Start
			if p.Instrs[i].Start != wantStart {
				return fmt.Errorf("instr %d: S bit = %v, want %v", i, p.Instrs[i].Start, wantStart)
			}
		}
		pos = b.End
	}
	if pos != len(p.Instrs) {
		return fmt.Errorf("braids cover %d of %d instructions", pos, len(p.Instrs))
	}

	// 3: internal reads see earlier in-braid writes.
	for bi := range res.Braids {
		b := &res.Braids[bi]
		var written [isa.NumInternalRegs]bool
		for i := b.Start; i < b.End; i++ {
			in := &p.Instrs[i]
			if in.T1 && !written[in.I1] {
				return fmt.Errorf("instr %d reads i%d before any in-braid write", i, in.I1)
			}
			if in.T2 && !written[in.I2] {
				return fmt.Errorf("instr %d reads i%d before any in-braid write", i, in.I2)
			}
			if in.IDest {
				written[in.IDestIdx] = true
			}
		}
	}

	// 4 & 5 & 6: per-block order properties, via the original CFG.
	g, err := cfg.Build(orig)
	if err != nil {
		return err
	}
	for bi := range g.Blocks {
		blk := &g.Blocks[bi]
		for i := blk.Start; i < blk.End; i++ {
			ni := res.NewIndex[i]
			if ni < blk.Start || ni >= blk.End {
				return fmt.Errorf("instr %d moved out of its block to %d", i, ni)
			}
			a := &orig.Instrs[i]
			if !a.IsMem() {
				continue
			}
			for j := i + 1; j < blk.End; j++ {
				bb := &orig.Instrs[j]
				if !bb.IsMem() || (!a.IsStore() && !bb.IsStore()) || !mayAlias(a, bb) {
					continue
				}
				if res.NewIndex[j] < ni {
					return fmt.Errorf("memory order violated: orig %d (%s) and %d (%s) now %d and %d",
						i, a, j, bb, ni, res.NewIndex[j])
				}
			}
		}
		last := &orig.Instrs[blk.End-1]
		if last.IsBranch() || last.IsHalt() {
			if res.NewIndex[blk.End-1] != blk.End-1 {
				return fmt.Errorf("block %d terminator moved from %d to %d", bi, blk.End-1, res.NewIndex[blk.End-1])
			}
			nb := &p.Instrs[blk.End-1]
			if nb.Op != last.Op || nb.Imm != last.Imm {
				return fmt.Errorf("block %d terminator changed: %s -> %s", bi, last, nb)
			}
		}
	}
	return nil
}
