package uarch

import (
	"testing"

	"braid/internal/asm"
	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
)

// Edge-value programs: each stores its results to the data segment so the
// values are architecturally observable, then the test pins the interpreter's
// memory image to hand-computed constants and runs every core paradigm (plus
// the braided translation) over the same program. The cores replay the
// interpreter's trace, so what this guards is the whole pipeline's ability to
// carry these bit patterns — canonical NaNs, signed zeros, saturated
// conversions, masked shifts — through rename, bypass, and retire without
// faulting or diverging from the oracle's retired-instruction stream.
const edgeFloatSrc = `
.name floatedge
.data 256
	ldimm r1, #65536      ; data base
	ldimm r2, #1
	cvtif f0, r31         ; 0.0
	cvtif f1, r2          ; 1.0
	fdiv  f2, f1, f0      ; +Inf
	fdiv  f3, f0, f0      ; 0/0 = canonical NaN
	fsub  f4, f2, f2      ; Inf-Inf = canonical NaN
	fneg  f5, f0          ; -0.0
	fadd  f6, f0, f5      ; +0 + -0 = +0
	fcmpeq f7, f3, f3     ; NaN == NaN = 0.0
	fcmple f8, f5, f0     ; -0 <= +0 = 1.0
	cvtfi r3, f2          ; +Inf saturates to MaxInt64
	cvtfi r4, f3          ; NaN converts to 0
	fneg  f9, f2          ; -Inf
	cvtfi r5, f9          ; -Inf saturates to MinInt64
	stf   f3, 0(r1)
	stf   f4, 8(r1)
	stf   f5, 16(r1)
	stf   f6, 24(r1)
	stf   f7, 32(r1)
	stf   f8, 40(r1)
	stq   r3, 48(r1)
	stq   r4, 56(r1)
	stq   r5, 64(r1)
	halt
`

const edgeIntSrc = `
.name intedge
.data 256
	ldimm r1, #65536      ; data base
	ldimm r2, #1
	sll   r9, r2, #63     ; MinInt64 bit pattern
	ldimm r10, #63
	ldimm r11, #64
	ldimm r12, #65
	sll   r13, r2, r11    ; shift count 64 masks to 0
	sll   r14, r2, r12    ; shift count 65 masks to 1
	sra   r15, r9, r10    ; sign fill: -1
	srl   r16, r9, r10    ; logical: 1
	cmplt r17, r9, r31    ; min <s 0 = 1
	cmpult r18, r9, r31   ; min <u 0 = 0
	cmpult r19, r31, r9   ; 0 <u min = 1
	ldimm r20, #21
	add   r20, r20, r20   ; self-overwrite: 42
	ldimm r22, #7
	cmoveq r21, r21, r20  ; r21==0, cond is dest: moves 42
	cmoveq r22, r22, r20  ; r22!=0, cond is dest: keeps 7
	stq   r13, 0(r1)
	stq   r14, 8(r1)
	stq   r15, 16(r1)
	stq   r16, 24(r1)
	stq   r17, 32(r1)
	stq   r18, 40(r1)
	stq   r19, 48(r1)
	stq   r20, 56(r1)
	stq   r21, 64(r1)
	stq   r22, 72(r1)
	halt
`

func TestEdgeValueProgramsAcrossCores(t *testing.T) {
	const canonicalNaN = 0x7FF8000000000000
	progs := []struct {
		src  string
		want map[uint64]uint64 // data-segment offset -> stored value
	}{
		{edgeFloatSrc, map[uint64]uint64{
			0:  canonicalNaN,       // 0/0
			8:  canonicalNaN,       // Inf-Inf, payload-independent
			16: 1 << 63,            // -0.0
			24: 0,                  // +0 + -0 is +0, bit-exact
			32: 0,                  // NaN==NaN is 0.0
			40: 0x3FF0000000000000, // -0 <= +0 is 1.0
			48: 0x7FFFFFFFFFFFFFFF, // cvtfi(+Inf) saturates
			56: 0,                  // cvtfi(NaN)
			64: 1 << 63,            // cvtfi(-Inf) saturates
		}},
		{edgeIntSrc, map[uint64]uint64{
			0:  1,          // 1 << (64&63)
			8:  2,          // 1 << (65&63)
			16: ^uint64(0), // min >>s 63
			24: 1,          // min >>u 63
			32: 1,          // min <s 0
			40: 0,          // min <u 0
			48: 1,          // 0 <u min
			56: 42,         // add r20, r20, r20
			64: 42,         // cmoveq moved (zero self-cond)
			72: 7,          // cmoveq kept (nonzero self-cond)
		}},
	}
	for _, pc := range progs {
		p, err := asm.Parse(pc.src)
		if err != nil {
			t.Fatal(err)
		}
		t.Run(p.Name, func(t *testing.T) {
			// Pin the oracle itself first: if the interpreter's value
			// semantics drift, the cross-core comparison below would only
			// confirm a consistently wrong answer.
			m := interp.New(p)
			if _, err := m.Run(100000, nil); err != nil {
				t.Fatal(err)
			}
			for off, want := range pc.want {
				if got := m.Mem.Read64(isa.DataBase + off); got != want {
					t.Errorf("mem[base+%d] = %#x, want %#x", off, got, want)
				}
			}

			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				t.Fatal(err)
			}
			cases := []struct {
				name string
				p    *isa.Program
				cfg  Config
			}{
				{"inorder", p, InOrderConfig(8)},
				{"depsteer", p, DepSteerConfig(8)},
				{"ooo", p, OutOfOrderConfig(8)},
				{"braid", res.Prog, BraidConfig(8)},
			}
			for _, c := range cases {
				simulate(t, c.p, c.cfg) // retires lockstep with the oracle, Paranoid on
			}

			// The braided translation must leave the same memory image.
			bm := interp.New(res.Prog)
			if _, err := bm.Run(100000, nil); err != nil {
				t.Fatal(err)
			}
			if m.Mem.Hash() != bm.Mem.Hash() {
				t.Error("braided program's memory image differs from original")
			}
			for off, want := range pc.want {
				if got := bm.Mem.Read64(isa.DataBase + off); got != want {
					t.Errorf("braided mem[base+%d] = %#x, want %#x", off, got, want)
				}
			}
		})
	}
}
