package service

import (
	"expvar"
	"math"
	"math/bits"
	"sort"
	"sync"
	"time"
)

// metrics is the server's observability surface, rendered as JSON at
// /metrics. Every var lives in a per-server expvar.Map rather than the
// process-global expvar registry, so multiple Servers (the tests spin up
// many) never collide on Publish.
type metrics struct {
	start time.Time
	m     *expvar.Map

	requests    expvar.Int // requests entering any endpoint
	resp2xx     expvar.Int
	resp4xx     expvar.Int
	resp5xx     expvar.Int
	shed        expvar.Int // 429s from a full admission queue
	cacheHits   expvar.Int
	cacheMiss   expvar.Int // flight leaders only: actual simulator demand
	coalesced   expvar.Int // followers served by another request's run
	reelected   expvar.Int // followers that re-led a flight after leader cancellation
	simRuns     expvar.Int // simulations actually executed
	simInstrs   expvar.Int // instructions retired by executed simulations
	simDetailed expvar.Int // ... of which ran on the detailed engine
	simFFwd     expvar.Int // ... of which were functionally fast-forwarded
	simCycles   expvar.Int // cycles simulated by executed simulations
	simNanos    expvar.Int // wall-clock nanoseconds spent simulating
	faults      expvar.Int // contained *uarch.SimFault + compile faults
	cycleLim    expvar.Int // ErrCycleLimit failures
	deadline    expvar.Int // wall-clock deadline failures
	canceled    expvar.Int // client-abandoned simulations

	histMu sync.Mutex
	hists  map[string]*latencyHist // endpoint -> request latency
}

func newMetrics(start time.Time) *metrics {
	mt := &metrics{start: start, m: new(expvar.Map).Init(), hists: make(map[string]*latencyHist)}
	for _, v := range []struct {
		name string
		v    expvar.Var
	}{
		{"requests_total", &mt.requests},
		{"responses_2xx", &mt.resp2xx},
		{"responses_4xx", &mt.resp4xx},
		{"responses_5xx", &mt.resp5xx},
		{"shed_total", &mt.shed},
		{"cache_hits", &mt.cacheHits},
		{"cache_misses", &mt.cacheMiss},
		{"coalesced_total", &mt.coalesced},
		{"coalesce_reelected_total", &mt.reelected},
		{"sim_runs_total", &mt.simRuns},
		{"sim_instructions_total", &mt.simInstrs},
		{"sim_detailed_instructions_total", &mt.simDetailed},
		{"sim_fastforward_instructions_total", &mt.simFFwd},
		{"sim_cycles_total", &mt.simCycles},
		{"sim_busy_ns_total", &mt.simNanos},
		{"faults_contained_total", &mt.faults},
		{"cycle_limit_total", &mt.cycleLim},
		{"deadline_total", &mt.deadline},
		{"canceled_total", &mt.canceled},
	} {
		mt.m.Set(v.name, v.v)
	}
	mt.m.Set("uptime_seconds", expvar.Func(func() any {
		return time.Since(mt.start).Seconds()
	}))
	// simulated_mips: detailed-engine instructions per microsecond of
	// simulator busy time — the service-level analogue of braidbench's MIPS
	// figure. Only detailed work counts: a sampled run's fast-forwarded
	// leap would otherwise inflate the engine's apparent speed. The
	// sweep-level effective rate is derivable from
	// sim_instructions_total / sim_busy_ns_total.
	mt.m.Set("simulated_mips", expvar.Func(func() any {
		ns := mt.simNanos.Value()
		if ns == 0 {
			return 0.0
		}
		return float64(mt.simDetailed.Value()) / (float64(ns) / 1e3)
	}))
	mt.m.Set("latency_ms", expvar.Func(mt.latencySnapshot))
	return mt
}

// observe records one finished request against its endpoint's histogram and
// the status-class counters.
func (mt *metrics) observe(endpoint string, status int, d time.Duration) {
	switch {
	case status >= 500:
		mt.resp5xx.Add(1)
	case status >= 400:
		mt.resp4xx.Add(1)
	default:
		mt.resp2xx.Add(1)
	}
	mt.histMu.Lock()
	h, ok := mt.hists[endpoint]
	if !ok {
		h = &latencyHist{}
		mt.hists[endpoint] = h
	}
	mt.histMu.Unlock()
	h.observe(d)
}

func (mt *metrics) latencySnapshot() any {
	mt.histMu.Lock()
	names := make([]string, 0, len(mt.hists))
	for name := range mt.hists {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make(map[string]any, len(names))
	for _, name := range names {
		out[name] = mt.hists[name].snapshot()
	}
	mt.histMu.Unlock()
	return out
}

// latencyHist is a log-scale latency histogram: bucket i holds requests
// whose latency is below 2^i microseconds, covering 1µs to ~67s. Quantiles
// read the upper bound of the bucket the quantile falls in, so they are
// upper estimates with at most 2x resolution error — plenty for a
// dashboard, with fixed memory and no per-request allocation.
type latencyHist struct {
	mu      sync.Mutex
	count   uint64
	sumUS   float64
	maxUS   float64
	buckets [27]uint64
	// overflow counts observations beyond the last bucket (≥ ~67s).
	// Folding them into the top bucket would make any quantile that lands
	// there report the bucket's 67s upper bound no matter how slow the
	// requests actually were — a silent under-report exactly when latency
	// is at its worst. Kept separate, such quantiles fall through to the
	// observed maximum instead.
	overflow uint64
}

func (h *latencyHist) observe(d time.Duration) {
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	b := bits.Len64(uint64(us)) // 2^(b-1) <= us < 2^b
	h.mu.Lock()
	h.count++
	h.sumUS += float64(us)
	if float64(us) > h.maxUS {
		h.maxUS = float64(us)
	}
	if b >= len(h.buckets) {
		h.overflow++
	} else {
		h.buckets[b]++
	}
	h.mu.Unlock()
}

// quantileLocked returns the q-quantile in milliseconds; h.mu must be held.
func (h *latencyHist) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return 0
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var seen uint64
	for i, n := range h.buckets {
		seen += n
		if seen >= rank {
			upperUS := float64(uint64(1) << i)
			if upperUS > h.maxUS {
				upperUS = h.maxUS
			}
			return upperUS / 1e3
		}
	}
	// The quantile falls among the overflow observations; the observed
	// maximum is the only honest upper bound left.
	return h.maxUS / 1e3
}

func (h *latencyHist) snapshot() map[string]any {
	h.mu.Lock()
	defer h.mu.Unlock()
	mean := 0.0
	if h.count > 0 {
		mean = h.sumUS / float64(h.count) / 1e3
	}
	return map[string]any{
		"count":    h.count,
		"mean_ms":  mean,
		"p50_ms":   h.quantileLocked(0.50),
		"p90_ms":   h.quantileLocked(0.90),
		"p99_ms":   h.quantileLocked(0.99),
		"max_ms":   h.maxUS / 1e3,
		"overflow": h.overflow,
	}
}
