package uarch

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"braid/internal/isa"
)

// Typed simulation-failure sentinels. Callers distinguish them with
// errors.Is and degrade gracefully — skip the point, keep the sweep —
// instead of aborting a whole evaluation.
var (
	// ErrCycleLimit marks a simulation that exhausted Config.MaxCycles:
	// either a wedged machine (a simulator bug) or a budget too small for
	// the program.
	ErrCycleLimit = errors.New("cycle limit exceeded")

	// ErrTimeout marks a simulation that hit its wall-clock deadline
	// (context.DeadlineExceeded on the run's context).
	ErrTimeout = errors.New("simulation deadline exceeded")

	// ErrCanceled marks a simulation stopped by whole-suite cancellation
	// (context.Canceled on the run's context — e.g. Ctrl-C).
	ErrCanceled = errors.New("simulation canceled")
)

// SimFault is a contained simulator failure: a panic raised by the engine or
// its paranoid checker during a run, converted into an error by RunChecked so
// one corrupt simulation cannot kill a whole sweep. It carries everything a
// crash artifact needs to replay the failure.
type SimFault struct {
	Core    CoreKind
	Program string
	Cycle   uint64
	Fetched uint64
	Retired uint64
	Panic   any
	Stack   []byte
}

func (f *SimFault) Error() string {
	return fmt.Sprintf("uarch: simulator fault: %s on %q at cycle %d (fetched %d, retired %d): %v",
		f.Core, f.Program, f.Cycle, f.Fetched, f.Retired, f.Panic)
}

// ctxCheckInterval bounds how many simulated cycles pass between context
// polls. The budget is counted in cycles, not step calls: a single step can
// fast-forward an arbitrarily long idle stretch, so a step-counted interval
// would let one leap carry the machine far past a poll. The first iteration
// always polls, so an already-expired deadline or canceled context fails
// fast.
const ctxCheckInterval = 256

// RunContext simulates to completion like Run, polling ctx so a canceled or
// deadline-expired context stops the simulation promptly. The returned error
// wraps ErrCanceled or ErrTimeout respectively.
func (m *Machine) RunContext(ctx context.Context) (*Stats, error) {
	done := ctx.Done()
	var nextPoll uint64
	for {
		if m.cycle >= m.cfg.MaxCycles {
			return nil, fmt.Errorf("uarch: %s on %q %w: %d cycles (fetched %d, retired %d, %d in flight — wedged machine or budget too small)",
				m.cfg.Core, m.prog.Name, ErrCycleLimit, m.cfg.MaxCycles, m.stats.Fetched, m.stats.Retired, m.rob.len())
		}
		if done != nil && m.cycle >= nextPoll {
			select {
			case <-done:
				return nil, m.ctxErr(ctx)
			default:
			}
			nextPoll = m.cycle + ctxCheckInterval
		}
		if m.step() {
			break
		}
	}
	m.stats.Cycles = m.cycle
	if m.writeErr != nil {
		return nil, fmt.Errorf("uarch: %s on %q: pipeline log write failed: %w",
			m.cfg.Core, m.prog.Name, m.writeErr)
	}
	return &m.stats, nil
}

// ctxErr converts a context failure into the matching typed sentinel,
// annotated with where the simulation stopped.
func (m *Machine) ctxErr(ctx context.Context) error {
	sentinel := ErrCanceled
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		sentinel = ErrTimeout
	}
	return fmt.Errorf("uarch: %s on %q %w at cycle %d (fetched %d, retired %d)",
		m.cfg.Core, m.prog.Name, sentinel, m.cycle, m.stats.Fetched, m.stats.Retired)
}

// RunChecked is the recoverable entry point: it runs the simulation under
// ctx and converts an engine or paranoid-checker panic into a *SimFault
// error instead of crashing the process. This is what suite runners use so
// one corrupt configuration is a contained, replayable failure.
func (m *Machine) RunChecked(ctx context.Context) (st *Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &SimFault{
				Core:    m.cfg.Core,
				Program: m.prog.Name,
				Cycle:   m.cycle,
				Fetched: m.stats.Fetched,
				Retired: m.stats.Retired,
				Panic:   r,
				Stack:   debug.Stack(),
			}
		}
	}()
	return m.RunContext(ctx)
}

// SimulateChecked is Simulate with panic isolation and cancellation: run
// program p on cfg under ctx, returning *SimFault for panics and errors
// wrapping ErrTimeout/ErrCanceled for context failures.
func SimulateChecked(ctx context.Context, p *isa.Program, cfg Config) (*Stats, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return m.RunChecked(ctx)
}

// ---------------------------------------------------------------------------
// Test-only fault injection: deliberately corrupt one microarchitectural
// structure mid-run to prove the paranoid checker detects the corruption and
// the runner contains it as a *SimFault. The injector lives in the engine so
// it can reach the same state the checker audits.

// FaultKind selects which structure the injector corrupts.
type FaultKind int

const (
	FaultNone FaultKind = iota
	// FaultBusyBit clears a busy BEU's busy bit without releasing its
	// braid, desynchronizing the braid core's freeCnt shadow counter.
	FaultBusyBit
	// FaultCalendarDrop silently removes one pending entry from the
	// completion calendar, leaving wbCount overstating the pending set.
	FaultCalendarDrop
	// FaultRefSkew forces the ROB head's reference count negative, the
	// arena-corruption signature the checker guards against.
	FaultRefSkew
	// FaultPortStuck wedges the per-cycle read-port counter above the
	// configured limit, as if a port arbiter failed to reset.
	FaultPortStuck
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultBusyBit:
		return "busy-bit"
	case FaultCalendarDrop:
		return "calendar-drop"
	case FaultRefSkew:
		return "refcount-skew"
	case FaultPortStuck:
		return "port-stuck"
	}
	return "fault?"
}

// FaultPlan arms the injector: at the first cycle >= AtCycle where the
// targeted structure exists, corrupt it exactly once. Strictly test-only;
// it is excluded from checkpoints (experiments tags the Config field out of
// its JSON) and must never be set outside a test.
type FaultPlan struct {
	Kind    FaultKind
	AtCycle uint64
}

// injectFault applies the armed fault plan at cycle t. It runs immediately
// before the paranoid checker in step, so a successful corruption is audited
// the same cycle it happens. Kinds whose target structure is empty this
// cycle stay armed and retry on later cycles.
func (m *Machine) injectFault(t uint64) {
	pl := m.cfg.Inject
	if t < pl.AtCycle {
		return
	}
	switch pl.Kind {
	case FaultBusyBit:
		bc, ok := m.cre.(*braidCore)
		if !ok {
			m.injected = true // only the braid core has busy bits
			return
		}
		for i := range bc.beus {
			if bc.beus[i].busy {
				bc.beus[i].busy = false
				m.injected = true
				return
			}
		}
	case FaultCalendarDrop:
		if m.wbCount == 0 {
			return
		}
		for i := range m.wbcal {
			if n := len(m.wbcal[i]); n > 0 {
				m.wbcal[i] = m.wbcal[i][:n-1]
				m.injected = true
				return
			}
		}
	case FaultRefSkew:
		if m.rob.len() == 0 {
			return
		}
		m.rob.front().refs = -1
		m.injected = true
	case FaultPortStuck:
		m.readPortsUsed = m.cfg.RFReadPorts + 1
		m.injected = true
	default:
		m.injected = true
	}
}
