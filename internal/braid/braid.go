// Package braid implements the compiler side of Tseng & Patt's braid
// proposal (ISCA 2008, §3.1-3.2): it partitions each basic block's dataflow
// graph into braids (weakly connected components of the block-local def-use
// graph), reorders the block so each braid's instructions are consecutive
// (the branch braid last), splits braids that would violate memory ordering
// or exceed the internal register file, classifies every produced value as
// internal, external, or both, allocates internal registers, and re-encodes
// the program with the braid ISA bits (S, T, I, E).
//
// The paper used binary profiling and translation tools over Alpha binaries;
// this package plays that role for BRD64 programs. One deviation is
// documented in DESIGN.md: where the paper re-allocates external registers
// across the program after reordering, we instead add ordering constraints
// between braids for external-register WAR/WAW/RAW hazards and split braids
// when the constraints cannot be met, which preserves correctness without a
// global register allocator. Such splits are counted in Result.DepSplits and
// remain rare on the evaluated workloads, consistent with the paper's <1%
// memory-ordering splits and ~2% register-pressure splits.
package braid

import (
	"fmt"

	"braid/internal/cfg"
	"braid/internal/isa"
)

// Options configures braid compilation.
type Options struct {
	// MaxInternal is the size of the internal register file a braid may
	// use; braids whose working set exceeds it are split. Zero means
	// isa.NumInternalRegs (8, the paper's choice).
	MaxInternal int
}

// Braid describes one braid in the compiled program.
type Braid struct {
	Block int // basic-block index in the CFG

	// Start and End delimit the braid's consecutive instructions in the
	// braided program: [Start, End).
	Start, End int

	// Orig lists the braid's instructions as indices into the original
	// program, in braid order.
	Orig []int

	Internals  int // values written to the internal register file
	ExtInputs  int // distinct external registers read from outside the braid
	ExtOutputs int // values written to the external register file
	CritPath   int // instructions on the longest dataflow path
	HasBranch  bool
}

// Size returns the number of instructions in the braid.
func (b *Braid) Size() int { return b.End - b.Start }

// Single reports whether this is a single-instruction braid. The paper
// excludes these from Tables 1-3's starred averages.
func (b *Braid) Single() bool { return b.Size() == 1 }

// Width is the braid's average instruction-level parallelism: size divided
// by the length of the longest dataflow path (paper §2).
func (b *Braid) Width() float64 {
	if b.CritPath == 0 {
		return 1
	}
	return float64(b.Size()) / float64(b.CritPath)
}

// Result is a braided program plus its braid structure and statistics.
type Result struct {
	Prog    *isa.Program
	Braids  []Braid
	BraidOf []int // instruction index (braided program) -> braid index

	// NewIndex maps original instruction indices to braided ones.
	NewIndex []int

	// Split counters, by cause.
	MemSplits      int // memory partial order could not be maintained (§3.1)
	DepSplits      int // external-register hazard ordering (see package doc)
	PressureSplits int // internal working set exceeded MaxInternal (§3.1)

	Stats Stats
}

// Compile braids the program. The input program must be unbraided (no braid
// bits set) and valid. The result program computes exactly the same
// architectural memory state and the same live external register values.
func Compile(p *isa.Program, opts Options) (*Result, error) {
	if opts.MaxInternal <= 0 {
		opts.MaxInternal = isa.NumInternalRegs
	}
	if opts.MaxInternal > isa.NumInternalRegs {
		return nil, fmt.Errorf("braid: MaxInternal %d exceeds the ISA's %d internal registers", opts.MaxInternal, isa.NumInternalRegs)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("braid: input: %w", err)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.Start || in.T1 || in.T2 || in.IDest {
			return nil, fmt.Errorf("braid: instr %d already has braid bits set", i)
		}
	}
	g, err := cfg.Build(p)
	if err != nil {
		return nil, err
	}
	lv := cfg.ComputeLiveness(g)

	res := &Result{
		Prog: &isa.Program{
			Name: p.Name,
			Data: append([]byte(nil), p.Data...),
			FP:   p.FP,
		},
		BraidOf:  make([]int, len(p.Instrs)),
		NewIndex: make([]int, len(p.Instrs)),
	}
	res.Prog.Instrs = make([]isa.Instruction, len(p.Instrs))

	for bi := range g.Blocks {
		bc, err := newBlockCompiler(p, &g.Blocks[bi], lv.LiveOut[bi], opts.MaxInternal)
		if err != nil {
			return nil, err
		}
		if err := bc.run(); err != nil {
			return nil, fmt.Errorf("braid: block %d: %w", bi, err)
		}
		bc.emit(res)
	}

	if err := res.Prog.Validate(); err != nil {
		return nil, fmt.Errorf("braid: output: %w", err)
	}
	res.Stats = computeStats(res, len(g.Blocks))
	return res, nil
}

// DecodeProgram rebuilds instructions from their 64-bit encodings; it is a
// thin convenience over isa.DecodeAll for callers holding a binary image of
// a braided program.
func DecodeProgram(words []uint64) ([]isa.Instruction, error) {
	return isa.DecodeAll(words)
}
