// Package interp provides the BRD64 architectural interpreter: a functional,
// in-order executor of programs. It serves three roles in the reproduction:
//
//   - Correctness reference: every cycle-level core must retire the same
//     dynamic instruction stream and produce the same final architectural
//     state that the interpreter does, for both original and braided code.
//   - Oracle: the perfect branch predictor used in Figure 1 replays the
//     interpreter's branch-outcome stream.
//   - Profiler: the paper's §1 value fanout/lifetime characterization and
//     the binary-profiling step of braid construction (§3.1) both consume
//     the interpreter's dynamic trace.
package interp

import (
	"errors"
	"fmt"
	"math"

	"braid/internal/isa"
)

// ErrMaxSteps is returned by Run when the step budget is exhausted before
// the program halts (usually an infinite loop in a generated program).
var ErrMaxSteps = errors.New("interp: maximum step count exceeded")

// Machine is the architectural state of one BRD64 program execution.
type Machine struct {
	Prog *isa.Program

	// R holds the external (architectural) registers: indices 0-31 are
	// the integer bank (r31 hardwired to zero), 32-63 the floating-point
	// bank. Floating-point values are stored as float64 bit patterns.
	R [isa.NumArchRegs]uint64

	// IR holds the internal (braid temporary) registers. A sequential
	// interpretation needs only one internal file: braids are consecutive
	// in the instruction stream and internal values never cross braid
	// boundaries, so the file behaves as scratch space. This is exactly
	// the paper's exception-mode semantics, where a single BEU processes
	// every instruction in order (§3.4).
	IR [isa.NumInternalRegs]uint64

	Mem *Memory

	PC     int
	Halted bool
	Steps  uint64
}

// New builds a machine with the program's data segment loaded.
func New(p *isa.Program) *Machine {
	m := &Machine{Prog: p, Mem: NewMemory()}
	if len(p.Data) > 0 {
		m.Mem.WriteBytes(isa.DataBase, p.Data)
	}
	return m
}

// StepInfo describes the architectural effects of one executed instruction.
type StepInfo struct {
	Index int              // static instruction index (PC before execution)
	Instr *isa.Instruction // the instruction executed

	Taken    bool // branch taken (meaningful when Instr.IsBranch())
	Target   int  // next PC after this instruction
	Addr     uint64
	MemBytes int

	WroteReg  bool
	DestReg   isa.Reg // external destination written (RegNone if none)
	WroteIR   bool
	IRIdx     uint8
	Value     uint64 // result value (register writes and store data)
	SrcCount  int
	SrcRegs   [3]isa.Reg // external sources read (RegNone-padded)
	SrcIntIdx [3]int8    // internal index if the source was internal, else -1
}

// Step executes the instruction at PC and advances. It returns an error if
// the machine is halted or PC is out of range.
func (m *Machine) Step(info *StepInfo) error {
	if m.Halted {
		return errors.New("interp: step on halted machine")
	}
	if m.PC < 0 || m.PC >= len(m.Prog.Instrs) {
		return fmt.Errorf("interp: pc %d out of range", m.PC)
	}
	in := &m.Prog.Instrs[m.PC]
	if info != nil {
		*info = StepInfo{Index: m.PC, Instr: in, DestReg: isa.RegNone}
		info.SrcIntIdx = [3]int8{-1, -1, -1}
	}

	readSrc := func(slot int, r isa.Reg, t bool, iidx uint8) uint64 {
		var v uint64
		if t {
			v = m.IR[iidx]
			if info != nil {
				info.SrcRegs[slot] = isa.RegNone
				info.SrcIntIdx[slot] = int8(iidx)
				info.SrcCount++
			}
			return v
		}
		v = m.readReg(r)
		if info != nil {
			info.SrcRegs[slot] = r
			info.SrcCount++
		}
		return v
	}

	var s1, s2 uint64
	ninfo := in.Info()
	if ninfo.NumSrcs >= 1 {
		s1 = readSrc(0, in.Src1, in.T1, in.I1)
	}
	if in.HasImm {
		s2 = uint64(int64(in.Imm))
	} else if ninfo.NumSrcs >= 2 {
		s2 = readSrc(1, in.Src2, in.T2, in.I2)
	}
	var old uint64
	if ninfo.ReadsDest {
		// The old-destination read of a conditional move always comes
		// from the external file: the braid ISA has no T bit for it,
		// and the braid compiler guarantees the external copy exists.
		old = m.readReg(in.Dest)
		if info != nil {
			info.SrcRegs[2] = in.Dest
			info.SrcCount++
		}
	}

	next := m.PC + 1
	switch {
	case in.Op == isa.OpHALT:
		m.Halted = true
	case in.IsLoad():
		addr := s1 + uint64(int64(in.Imm))
		var v uint64
		switch ninfo.MemBytes {
		case 8:
			v = m.Mem.Read64(addr)
		case 4:
			v = uint64(int64(int32(m.Mem.Read32(addr))))
		}
		m.writeDest(in, v)
		if info != nil {
			info.Addr, info.MemBytes, info.Value = addr, ninfo.MemBytes, v
		}
	case in.IsStore():
		addr := s2 + uint64(int64(in.Imm))
		switch ninfo.MemBytes {
		case 8:
			m.Mem.Write64(addr, s1)
		case 4:
			m.Mem.Write32(addr, uint32(s1))
		}
		if info != nil {
			info.Addr, info.MemBytes, info.Value = addr, ninfo.MemBytes, s1
		}
	case in.IsBranch():
		taken := false
		switch in.Op {
		case isa.OpBR:
			taken = true
		case isa.OpBEQ:
			taken = s1 == 0
		case isa.OpBNE:
			taken = s1 != 0
		case isa.OpBLT:
			taken = int64(s1) < 0
		case isa.OpBLE:
			taken = int64(s1) <= 0
		case isa.OpBGT:
			taken = int64(s1) > 0
		case isa.OpBGE:
			taken = int64(s1) >= 0
		}
		if taken {
			next = in.BranchTarget(m.PC)
		}
		if info != nil {
			info.Taken = taken
		}
	case in.Op == isa.OpNOP:
		// nothing
	default:
		v := alu(in.Op, s1, s2, old)
		m.writeDest(in, v)
		if info != nil {
			info.Value = v
		}
	}

	if info != nil {
		info.Target = next
		if in.WritesReg() || in.IDest {
			if in.IDest {
				info.WroteIR = true
				info.IRIdx = in.IDestIdx
			}
			if in.EDest || (!in.IDest && !in.EDest && in.WritesReg()) {
				info.WroteReg = true
				info.DestReg = in.Dest
			}
		}
	}
	m.PC = next
	m.Steps++
	return nil
}

func (m *Machine) readReg(r isa.Reg) uint64 {
	if r == isa.RegZero || !r.Valid() {
		return 0
	}
	return m.R[r]
}

// writeDest routes a result per the I/E destination bits; an instruction with
// neither bit set is unbraided code and writes the external register.
func (m *Machine) writeDest(in *isa.Instruction, v uint64) {
	if in.IDest {
		m.IR[in.IDestIdx] = v
	}
	if in.EDest || (!in.IDest && in.WritesReg()) {
		if in.Dest != isa.RegZero && in.Dest.Valid() {
			m.R[in.Dest] = v
		}
	}
}

// alu evaluates a non-memory, non-branch operation.
func alu(op isa.Opcode, a, b, old uint64) uint64 {
	switch op {
	case isa.OpADD, isa.OpLDA:
		return a + b
	case isa.OpLDIMM:
		return b
	case isa.OpSUB:
		return a - b
	case isa.OpMUL:
		return a * b
	case isa.OpDIV:
		if b == 0 {
			return 0
		}
		if int64(a) == math.MinInt64 && int64(b) == -1 {
			return a // overflow wraps, like Alpha hardware
		}
		return uint64(int64(a) / int64(b))
	case isa.OpAND:
		return a & b
	case isa.OpOR:
		return a | b
	case isa.OpXOR:
		return a ^ b
	case isa.OpANDNOT:
		return a &^ b
	case isa.OpSLL:
		return a << (b & 63)
	case isa.OpSRL:
		return a >> (b & 63)
	case isa.OpSRA:
		return uint64(int64(a) >> (b & 63))
	case isa.OpCMPEQ:
		return boolVal(a == b)
	case isa.OpCMPLT:
		return boolVal(int64(a) < int64(b))
	case isa.OpCMPLE:
		return boolVal(int64(a) <= int64(b))
	case isa.OpCMPULT:
		return boolVal(a < b)
	case isa.OpCMOVEQ:
		if a == 0 {
			return b
		}
		return old
	case isa.OpCMOVNE:
		if a != 0 {
			return b
		}
		return old
	case isa.OpZAPNOT:
		var v uint64
		for i := 0; i < 8; i++ {
			if b>>uint(i)&1 != 0 {
				v |= a & (0xff << (8 * uint(i)))
			}
		}
		return v
	case isa.OpSEXTL:
		return uint64(int64(int32(a)))
	case isa.OpFADD:
		return canonNaN(u2f(a) + u2f(b))
	case isa.OpFSUB:
		return canonNaN(u2f(a) - u2f(b))
	case isa.OpFMUL:
		return canonNaN(u2f(a) * u2f(b))
	case isa.OpFDIV:
		return canonNaN(u2f(a) / u2f(b))
	case isa.OpFSQRT:
		return canonNaN(math.Sqrt(u2f(a)))
	case isa.OpFNEG:
		return f2u(-u2f(a))
	case isa.OpFCMPEQ:
		return f2u(boolF(u2f(a) == u2f(b)))
	case isa.OpFCMPLT:
		return f2u(boolF(u2f(a) < u2f(b)))
	case isa.OpFCMPLE:
		return f2u(boolF(u2f(a) <= u2f(b)))
	case isa.OpCVTIF:
		return f2u(float64(int64(a)))
	case isa.OpCVTFI:
		// Out-of-range float→int conversion is implementation-defined in
		// Go (amd64 yields MinInt64 for every overflow, arm64 saturates),
		// so the architectural result must be pinned explicitly: NaN
		// converts to 0, everything else saturates. math.MaxInt64 rounds
		// up to 2^63 as a float64, so f >= math.MaxInt64 is exactly the
		// positive out-of-range set.
		f := u2f(a)
		switch {
		case math.IsNaN(f):
			return 0
		case f >= math.MaxInt64:
			return math.MaxInt64 // 0x7FFF…, saturated positive
		case f < math.MinInt64:
			return 1 << 63 // int64 MinInt64 bit pattern, saturated negative
		}
		return uint64(int64(f))
	}
	return 0
}

// canonicalNaN is the single quiet-NaN bit pattern every floating-point
// operation that produces a NaN yields. Hardware disagrees on generated
// NaNs — amd64 SSE returns the negative "indefinite" 0xFFF8… for Inf-Inf
// while arm64 returns positive 0x7FF8… — and the difference would leak
// into stored values, making final memory images host-dependent and
// breaking the cross-machine bit-identical invariant that remote execution
// (X-Braid-Stats-SHA256) and internal/check rely on.
const canonicalNaN = 0x7FF8000000000000

// canonNaN pins a generated-NaN result to the canonical bit pattern;
// non-NaN values pass through untouched.
func canonNaN(f float64) uint64 {
	if math.IsNaN(f) {
		return canonicalNaN
	}
	return f2u(f)
}

func boolVal(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func boolF(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

func u2f(u uint64) float64 { return math.Float64frombits(u) }
func f2u(f float64) uint64 { return math.Float64bits(f) }

// Run executes until HALT or maxSteps instructions, whichever comes first,
// invoking onStep (if non-nil) after every instruction. It returns the number
// of instructions executed.
func (m *Machine) Run(maxSteps uint64, onStep func(*StepInfo)) (uint64, error) {
	var info StepInfo
	start := m.Steps
	for !m.Halted {
		if m.Steps-start >= maxSteps {
			return m.Steps - start, ErrMaxSteps
		}
		var p *StepInfo
		if onStep != nil {
			p = &info
		}
		if err := m.Step(p); err != nil {
			return m.Steps - start, err
		}
		if onStep != nil {
			onStep(p)
		}
	}
	return m.Steps - start, nil
}

// FinalState captures the architectural state at halt for equivalence
// comparisons between the interpreter and the timing cores, and between
// original and braided versions of a program. Internal registers are
// excluded: they are dead at every braid boundary by construction, so two
// correct executions may legitimately differ there.
type FinalState struct {
	R       [isa.NumArchRegs]uint64
	MemHash uint64
	Steps   uint64
}

// Final summarizes the machine's architectural state.
func (m *Machine) Final() FinalState {
	fs := FinalState{R: m.R, Steps: m.Steps}
	fs.R[isa.RegZero] = 0
	fs.MemHash = m.Mem.Hash()
	return fs
}

// Equal reports whether two final states match architecturally (registers
// and memory; Steps is informational and not compared).
func (fs FinalState) Equal(o FinalState) bool {
	return fs.R == o.R && fs.MemHash == o.MemHash
}

// RunProgram is a convenience wrapper: execute p to completion and return the
// final state.
func RunProgram(p *isa.Program, maxSteps uint64) (FinalState, error) {
	m := New(p)
	if _, err := m.Run(maxSteps, nil); err != nil {
		return FinalState{}, fmt.Errorf("interp: %q: %w", p.Name, err)
	}
	return m.Final(), nil
}
