// Command braidchaos is a standalone fault-injecting reverse proxy for one
// braidd backend, built on internal/chaos. CI and local soak harnesses park
// it between a client pool and a healthy braidd to rehearse backend failure:
// time-based flapping (crash-loop / partition), periodic faults on a
// request cadence, or both composed.
//
//	braidd -addr 127.0.0.1:8092 &
//	braidchaos -listen 127.0.0.1:9092 -backend http://127.0.0.1:8092 -flap 2s:2s
//	braidchaos -listen 127.0.0.1:9093 -backend http://127.0.0.1:8092 -every 2 -kind corrupt
//
// -kind accepts a comma-separated cycle of fault names (429, 503, reset,
// latency, slowloris, truncate, corrupt); -every N applies the cycle to
// every Nth simulate request. -flap down:up resets every connection for
// down, then passes through for up, repeatedly, starting down. Both given
// together compose: the flap wins while down, the cadence applies while up.
//
// On SIGINT/SIGTERM it prints the injected-fault counters to stderr and
// exits, so harness scripts can assert that faults actually fired.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"braid/internal/chaos"
)

func main() {
	var (
		listen  = flag.String("listen", "127.0.0.1:9090", "listen address")
		backend = flag.String("backend", "http://127.0.0.1:8080", "braidd base URL to proxy")
		flap    = flag.String("flap", "", "down:up flap durations (e.g. 2s:2s); empty disables flapping")
		every   = flag.Int64("every", 0, "fault every Nth simulate request (0: off)")
		kinds   = flag.String("kind", "reset", "comma-separated fault cycle for -every: 429, 503, reset, latency, slowloris, truncate, corrupt")
	)
	flag.Parse()

	var scheds []chaos.Schedule
	if *flap != "" {
		down, up, err := parseFlap(*flap)
		if err != nil {
			log.Fatalf("braidchaos: %v", err)
		}
		scheds = append(scheds, chaos.Flap(down, up).Schedule)
	}
	if *every > 0 {
		var faults []chaos.Fault
		for _, name := range strings.Split(*kinds, ",") {
			f, err := chaos.ParseKind(strings.TrimSpace(name))
			if err != nil {
				log.Fatalf("braidchaos: %v", err)
			}
			faults = append(faults, f)
		}
		scheds = append(scheds, chaos.EveryN(*every, faults...))
	}
	if len(scheds) == 0 {
		log.Print("braidchaos: no -flap or -every; proxying faithfully")
	}

	proxy, err := chaos.New(*backend, chaos.Chain(scheds...))
	if err != nil {
		log.Fatalf("braidchaos: %v", err)
	}

	// A plain HTTP/1.1 server: Reset/SlowLoris/Truncate faults hijack the
	// connection, which HTTP/2 does not support.
	srv := &http.Server{
		Addr:              *listen,
		Handler:           proxy,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() {
		log.Printf("braidchaos: %s -> %s", *listen, *backend)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("braidchaos: %v", err)
	case <-sigc:
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("braidchaos: shutdown: %v", err)
	}
	fmt.Fprintf(os.Stderr, "braidchaos: injected %s\n", proxy.Counters())
}

// parseFlap splits "down:up" into the two flap phase durations.
func parseFlap(s string) (down, up time.Duration, err error) {
	d, u, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-flap %q: want down:up (e.g. 2s:2s)", s)
	}
	if down, err = time.ParseDuration(d); err != nil {
		return 0, 0, fmt.Errorf("-flap: %v", err)
	}
	if up, err = time.ParseDuration(u); err != nil {
		return 0, 0, fmt.Errorf("-flap: %v", err)
	}
	if down <= 0 || up <= 0 {
		return 0, 0, fmt.Errorf("-flap %q: phases must be positive", s)
	}
	return down, up, nil
}
