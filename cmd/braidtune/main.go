// Command braidtune searches the microarchitecture design space for the
// IPC × hardware-complexity Pareto frontier — the paper's argument, recovered
// by optimization instead of by hand. The search is a seeded, deterministic
// NSGA-II-lite genetic loop over a typed parameter lattice (core paradigm,
// width, queue sizes, register-file geometry, bypass depth, predictor size);
// every candidate machine is evaluated through the same experiments pipeline
// as braidbench, so memoization, interval sampling, remote fleet execution,
// and contained-fault accounting all compose with it unchanged.
//
// Determinism contract: with equal -seed/-pop/-budget/-workloads/-sample and
// suite -dyn, the printed front and its digest are byte-identical at any -j,
// on any mix of local and remote execution, and across any number of
// interruptions — Ctrl-C, then rerun with -checkpoint f -resume, converges to
// the same front as an undisturbed run.
//
// Usage:
//
//	braidtune -budget 200 -seed 1 -front BENCH_pareto.json
//	braidtune -checkpoint tune.jsonl                    # interruptible
//	braidtune -checkpoint tune.jsonl -resume            # pick up after ^C
//	braidtune -workloads gcc,mcf,gzip,swim -sample 100000:5000
//	braidtune -remote 127.0.0.1:8091,127.0.0.1:8092 -hedge
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"braid/internal/experiments"
	"braid/internal/explore"
	"braid/internal/remote"
	"braid/internal/uarch"
)

func main() {
	debug.SetGCPercent(400)

	var (
		seed       = flag.Int64("seed", 1, "search RNG seed; the determinism contract is per seed")
		pop        = flag.Int("pop", 16, "population size")
		budget     = flag.Int("budget", 96, "unique design points to simulate before stopping")
		dyn        = flag.Uint64("dyn", 30000, "dynamic instructions per benchmark")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (0: one per processor)")
		workloads  = flag.String("workloads", "", "comma-separated benchmark subset (empty: whole suite)")
		sample     = flag.String("sample", "", "interval sampling geometry period:detail[:warmup]; empty runs exact")
		checkpoint = flag.String("checkpoint", "", "append completed generations to this JSONL file")
		resume     = flag.Bool("resume", false, "reload finished generations from -checkpoint before searching")
		frontOut   = flag.String("front", "", "write the final front as JSON to this file ('-': stdout)")
		crashDir   = flag.String("crashdir", "crashes", "directory for simulator-fault repro artifacts")
		simTimeout = flag.Duration("sim-timeout", 0, "wall-clock budget per simulation (0: none)")
		remoteList = flag.String("remote", "", "comma-separated braidd base URLs; simulations run on these backends")
		hedge      = flag.Bool("hedge", false, "hedge slow remote requests onto a second backend (needs -remote)")
		fallback   = flag.String("fallback", "fail", "when every backend attempt fails: 'local' simulates in-process, 'fail' contains the point (needs -remote)")
		probe      = flag.Duration("probe", 0, "background health-probe interval for -remote backends (0: off)")
		inject     = flag.Int("inject-fault", 0, "arm the Nth unique evaluation with a pipeline fault (CI containment check; 0: off)")
	)
	flag.Parse()

	sampling, err := uarch.ParseSampling(*sample)
	if err != nil {
		fatal(err)
	}

	var names []string
	if *workloads != "" {
		names = strings.Split(*workloads, ",")
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "braidtune: preparing suite (~%d dynamic instructions each, %d workers)\n", *dyn, *jobs)
	w, err := experiments.LoadSuiteCtx(ctx, *dyn, *jobs)
	if err != nil {
		fatal(err)
	}
	w.SetContext(ctx)
	w.SetTimeout(*simTimeout)
	w.SetCrashDir(*crashDir)
	if sampling.Enabled() {
		w.SetSampling(sampling)
		fmt.Fprintf(os.Stderr, "braidtune: interval sampling %s (IPC values are estimates)\n", sampling)
	}
	benches, err := explore.SelectBenches(w, names)
	if err != nil {
		fatal(err)
	}

	var pool *remote.Pool
	if *remoteList != "" {
		fb, perr := remote.ParseFallback(*fallback)
		if perr != nil {
			fatal(perr)
		}
		pool, perr = remote.NewPool(remote.Options{
			Backends:  strings.Split(*remoteList, ","),
			Hedge:     *hedge,
			TimeoutMS: simTimeout.Milliseconds(),
			Fallback:  fb,
		})
		if perr == nil {
			var down []string
			if down, perr = pool.Ping(ctx); len(down) > 0 {
				fmt.Fprintf(os.Stderr, "braidtune: unreachable backends (will fail over): %s\n", strings.Join(down, ","))
			}
		}
		if perr != nil {
			fatal(perr)
		}
		if *probe > 0 {
			stopProbe := pool.StartProber(ctx, *probe)
			defer stopProbe()
		}
		w.SetRunner(pool)
		fmt.Fprintf(os.Stderr, "braidtune: remote execution over %d backend(s)\n", len(pool.Backends()))
	}

	opt := explore.Options{
		Seed:          *seed,
		Pop:           *pop,
		Budget:        *budget,
		InjectFaultAt: *inject,
		Log:           os.Stderr,
	}

	var ck *explore.Checkpoint
	if *checkpoint != "" {
		meta := explore.Meta{
			Seed:      *seed,
			Pop:       *pop,
			Budget:    *budget,
			Workloads: names,
			Sampling:  samplingKey(sampling),
			DynTarget: *dyn,
			Inject:    *inject,
		}
		ck, err = explore.OpenCheckpoint(*checkpoint, meta, *resume)
		if err != nil {
			fatal(err)
		}
		defer ck.Close()
		if *resume && ck.Generations() > 0 {
			fmt.Fprintf(os.Stderr, "braidtune: resumed %d finished generations from %s\n",
				ck.Generations(), *checkpoint)
		}
	}

	fmt.Fprintf(os.Stderr, "braidtune: suite ready in %v; searching (%d workloads, pop %d, budget %d, seed %d)\n",
		time.Since(start).Round(time.Millisecond), len(benches), *pop, *budget, *seed)

	res, err := explore.Search(ctx, w, benches, opt, ck)
	if err != nil {
		if errors.Is(err, uarch.ErrCanceled) || errors.Is(err, context.Canceled) {
			fmt.Fprintf(os.Stderr, "braidtune: interrupted")
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "; rerun with -checkpoint %s -resume to continue", *checkpoint)
			}
			fmt.Fprintln(os.Stderr)
			if ck != nil {
				ck.Close()
			}
			os.Exit(130)
		}
		fatal(err)
	}

	report(w, benches, res)
	if *frontOut != "" {
		if err := writeFront(w, benches, res, *seed, *pop, *budget, names, sampling, *dyn, *frontOut); err != nil {
			fatal(err)
		}
	}
	if failures := w.Failures(); len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "braidtune: %d simulations failed and were contained (their configs scored infeasible):\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "braidtune:   %s\n", f)
		}
	}
	fmt.Fprintf(os.Stderr, "braidtune: %d generations, %d design points, %d simulations, front digest %s, %v total\n",
		res.Generations, res.Evaluations, w.SimRuns(), res.Digest[:12], time.Since(start).Round(time.Millisecond))
}

// report prints the front as a text table with the two reference machines
// (the paper's Table 4 designs) evaluated through the same pipeline.
func report(w *experiments.Workloads, benches []*experiments.Bench, res *explore.Result) {
	fmt.Printf("Pareto front: geomean IPC vs estimated complexity (%d points)\n", len(res.Front))
	fmt.Printf("%-44s %8s %12s\n", "machine", "ipc", "complexity")
	for _, e := range res.Front {
		fmt.Printf("%-44s %8.3f %12.0f\n", e.Genome, e.IPC, e.Cost)
	}
	for _, ref := range referencePoints(w, benches) {
		fmt.Printf("%-44s %8.3f %12.0f  (reference)\n", ref.Name, ref.IPC, ref.Cost)
	}
}

// refPoint is a hand-built reference machine scored through the same
// pipeline, for calibrating the front against the paper's designs.
type refPoint struct {
	Name string  `json:"name"`
	IPC  float64 `json:"ipc"`
	Cost float64 `json:"cost"`
}

func referencePoints(w *experiments.Workloads, benches []*experiments.Bench) []refPoint {
	var out []refPoint
	for _, r := range []struct {
		name    string
		cfg     uarch.Config
		braided bool
	}{
		{"reference out-of-order/8w (Table 4)", uarch.OutOfOrderConfig(8), false},
		{"reference braid/8w (Table 4)", uarch.BraidConfig(8), true},
	} {
		logSum, n := 0.0, 0
		for _, b := range benches {
			v, err := w.IPC(b, r.braided, r.cfg)
			if err != nil {
				n = 0
				break
			}
			logSum += math.Log(v)
			n++
		}
		if n == 0 {
			continue // contained failure; skip the reference row
		}
		out = append(out, refPoint{
			Name: r.name,
			IPC:  math.Exp(logSum / float64(n)),
			Cost: uarch.EstimateComplexity(r.cfg).Total(),
		})
	}
	return out
}

// frontFile is the -front JSON schema (BENCH_pareto.json).
type frontFile struct {
	Meta        explore.Meta `json:"meta"`
	Generations int          `json:"generations"`
	Evaluations int          `json:"evaluations"`
	Digest      string       `json:"digest"`
	Reference   []refPoint   `json:"reference"`
	Front       []frontEntry `json:"front"`
}

type frontEntry struct {
	Machine string `json:"machine"` // human-readable genome summary
	explore.Eval
}

func writeFront(w *experiments.Workloads, benches []*experiments.Bench, res *explore.Result,
	seed int64, pop, budget int, names []string, sampling uarch.Sampling, dyn uint64, path string) error {
	ff := frontFile{
		Meta: explore.Meta{
			Lattice: explore.LatticeVersion,
			Seed:    seed, Pop: pop, Budget: budget,
			Workloads: names, Sampling: samplingKey(sampling), DynTarget: dyn,
		},
		Generations: res.Generations,
		Evaluations: res.Evaluations,
		Digest:      res.Digest,
		Reference:   referencePoints(w, benches),
	}
	for _, e := range res.Front {
		ff.Front = append(ff.Front, frontEntry{Machine: e.Genome.String(), Eval: e})
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// samplingKey renders the sampling geometry for checkpoint meta ("" = exact).
func samplingKey(sp uarch.Sampling) string {
	if !sp.Enabled() {
		return ""
	}
	return sp.String()
}

// fatal reports err and exits: 130 for cancellation (Ctrl-C can land during
// suite preparation, before the search loop's own interrupt handling), 1 for
// everything else.
func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidtune: %v\n", err)
	if errors.Is(err, uarch.ErrCanceled) || errors.Is(err, context.Canceled) {
		os.Exit(130)
	}
	os.Exit(1)
}
