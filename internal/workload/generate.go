package workload

import (
	"fmt"
	"math/rand"

	"braid/internal/isa"
)

// Register conventions for generated programs. The braid compiler renames
// nothing globally, so the generator keeps the roles disjoint: pool
// registers written by a block are never read inside that same block, which
// means braid formation needs no ordering splits and the emitted braid
// geometry is exactly what the generator intended.
const (
	regChaseBase = isa.Reg(0) // region 0: pointer-chase window (alias class 1)
	regLoadBase1 = isa.Reg(1) // region 1 (alias class 2)
	regLoadBase2 = isa.Reg(2) // region 2 (alias class 3)
	regStoreBase = isa.Reg(3) // region 3 (alias class 4)
	regSpan      = isa.Reg(4) // region span in bytes
	regLCG       = isa.Reg(5) // per-iteration pseudo-random state
	regCounter   = isa.Reg(6) // loop countdown
	regChk       = isa.Reg(7) // integer checksum accumulator
	poolFirst    = isa.Reg(8)
	// poolCount mirrors the effect of the paper's two-pass register
	// allocation: external values live in a small rotating set of
	// architectural registers, so each one is overwritten soon after its
	// last use and the compiler's dead-value information frees its
	// physical entry quickly (that is what makes Figure 6's 8-entry
	// external file viable).
	poolCount = 10          // r8..r17 (and f8..f17 for FP profiles)
	condFirst = isa.Reg(22) // r22..r25: skip-branch conditions
	condCount = 4
	// Drifting hot-window bases give loads and stores the locality real
	// programs have: most accesses land in a small window that moves
	// slowly across the region, so L1 captures the common case and the
	// drift generates a realistic trickle of L2 and memory misses.
	regHotL1      = isa.Reg(18) // region 1 base + drift
	regHotL2      = isa.Reg(19) // region 2 base + drift
	regHotSt      = isa.Reg(20) // store region base + drift
	regDrift      = isa.Reg(21) // drift offset, one line per iteration
	hotMask       = 16*1024 - 8 // 16 KiB hot window
	regChasePtr   = isa.Reg(26) // current pointer-chase cursor
	regMask       = isa.Reg(27) // address mask: span-8
	regTmp0       = isa.Reg(28) // braid-local temporaries
	regTmp1       = isa.Reg(29)
	regTmp2       = isa.Reg(30)
	fpChk         = isa.RegF0 + 7 // floating-point checksum
	fpPoolFirst   = isa.RegF0 + 8
	fpTmp0        = isa.RegF0 + 28
	fpTmp1        = isa.RegF0 + 29
	chaseInitKB   = 256 // initialized pointer window (bounds Program.Data)
	regionClasses = 4   // alias classes 1..4 for the four regions
)

// Generate builds the deterministic synthetic program for prof, sized to run
// iterations trips of its main loop.
func Generate(prof Profile, iterations int) (*isa.Program, error) {
	if iterations < 1 {
		return nil, fmt.Errorf("workload: iterations must be positive")
	}
	if iterations > isa.ImmMax {
		return nil, fmt.Errorf("workload: iterations %d exceed the ldimm range", iterations)
	}
	if prof.Blocks < 2 {
		return nil, fmt.Errorf("workload %s: need at least 2 body blocks", prof.Name)
	}
	if prof.DataKB == 0 || prof.DataKB&(prof.DataKB-1) != 0 {
		return nil, fmt.Errorf("workload %s: DataKB must be a power of two", prof.Name)
	}
	g := &gen{
		prof: prof,
		rng:  rand.New(rand.NewSource(prof.Seed)),
		p:    &isa.Program{Name: prof.Name, FP: prof.FP},
	}
	g.build(iterations)
	if err := g.p.Validate(); err != nil {
		return nil, fmt.Errorf("workload %s: generated invalid program: %w", prof.Name, err)
	}
	return g.p, nil
}

type gen struct {
	prof Profile
	rng  *rand.Rand
	p    *isa.Program

	labels map[string]int
	fixups []fixup

	// Fractional accumulators so per-block integer counts average out to
	// the profile's targets.
	accSingles, accBody, accSize, accWidth, accExtIn float64

	poolPtr    int     // rotating pool write pointer
	recentPool isa.Reg // most recently published pool register

	// per-block state
	blockWrites map[isa.Reg]bool
	blockReads  map[isa.Reg]bool
	extUsed     map[isa.Reg]bool
	extOrder    []isa.Reg
	extBudget   int
}

type fixup struct {
	instr int
	label string
}

func (g *gen) emit(in isa.Instruction) int {
	in.Canonicalize()
	g.p.Instrs = append(g.p.Instrs, in)
	return len(g.p.Instrs) - 1
}

func (g *gen) label(name string) {
	if g.labels == nil {
		g.labels = map[string]int{}
	}
	g.labels[name] = len(g.p.Instrs)
}

func (g *gen) branch(op isa.Opcode, src isa.Reg, label string) {
	idx := g.emit(isa.Instruction{Op: op, Src1: src})
	g.fixups = append(g.fixups, fixup{idx, label})
}

func (g *gen) resolve() {
	for _, f := range g.fixups {
		target, ok := g.labels[f.label]
		if !ok {
			panic("workload: unresolved label " + f.label)
		}
		g.p.Instrs[f.instr].SetBranchTarget(f.instr, target)
	}
	g.p.Labels = g.labels
}

func ldimm(dest isa.Reg, v int32) isa.Instruction {
	return isa.Instruction{Op: isa.OpLDIMM, Dest: dest, Imm: v, HasImm: true}
}

func opRRR(op isa.Opcode, d, a, b isa.Reg) isa.Instruction {
	return isa.Instruction{Op: op, Dest: d, Src1: a, Src2: b}
}

func opRRI(op isa.Opcode, d, a isa.Reg, imm int32) isa.Instruction {
	return isa.Instruction{Op: op, Dest: d, Src1: a, Imm: imm, HasImm: true}
}

// build assembles init, body blocks, the loop tail, and the exit block.
func (g *gen) build(iterations int) {
	g.buildData()
	g.buildInit(iterations)
	for b := 0; b < g.prof.Blocks-1; b++ {
		g.label(fmt.Sprintf("L%d", b))
		g.buildBody(b)
	}
	g.label(fmt.Sprintf("L%d", g.prof.Blocks-1))
	g.buildCloser()
	g.label("exit")
	g.buildExit()
	g.resolve()
}

// buildData fills the pointer-chase window (region 0) with valid pointers
// back into itself, so `ldq rp, 0(rp)` walks a random cycle forever.
func (g *gen) buildData() {
	initKB := g.prof.DataKB
	if initKB > chaseInitKB {
		initKB = chaseInitKB
	}
	words := initKB * 1024 / 8
	data := make([]byte, words*8)
	for w := 0; w < words; w++ {
		var v uint64
		if g.prof.PointerChase {
			off := uint64(g.rng.Intn(words)) * 8
			v = uint64(isa.DataBase) + off
		} else {
			v = g.rng.Uint64()
		}
		for i := 0; i < 8; i++ {
			data[w*8+i] = byte(v >> (8 * uint(i)))
		}
	}
	g.p.Data = data
}

func (g *gen) buildInit(iterations int) {
	span := int32(g.prof.DataKB) * 1024
	g.emit(ldimm(regChaseBase, isa.DataBase))
	g.emit(ldimm(regSpan, int32(g.prof.DataKB)))
	g.emit(opRRI(isa.OpSLL, regSpan, regSpan, 10))
	g.emit(opRRR(isa.OpADD, regLoadBase1, regChaseBase, regSpan))
	g.emit(opRRR(isa.OpADD, regLoadBase2, regLoadBase1, regSpan))
	g.emit(opRRR(isa.OpADD, regStoreBase, regLoadBase2, regSpan))
	g.emit(opRRI(isa.OpSUB, regMask, regSpan, 8))
	_ = span
	g.emit(ldimm(regCounter, int32(iterations)))
	g.emit(ldimm(regLCG, int32(g.rng.Intn(1<<18))|1))
	g.emit(ldimm(regChk, 0))
	g.emit(opRRI(isa.OpADD, regChasePtr, regChaseBase, 0))
	for i := 0; i < poolCount; i++ {
		g.emit(ldimm(poolFirst+isa.Reg(i), int32(g.rng.Intn(1<<16))))
	}
	if g.prof.FP {
		for i := 0; i < poolCount; i++ {
			g.emit(isa.Instruction{Op: isa.OpCVTIF, Dest: fpPoolFirst + isa.Reg(i), Src1: poolFirst + isa.Reg(i)})
		}
		g.emit(isa.Instruction{Op: isa.OpCVTIF, Dest: fpChk, Src1: regChk})
	}
	g.emit(ldimm(regDrift, 0))
	g.emit(opRRI(isa.OpADD, regHotL1, regLoadBase1, 0))
	g.emit(opRRI(isa.OpADD, regHotL2, regLoadBase2, 0))
	g.emit(opRRI(isa.OpADD, regHotSt, regStoreBase, 0))
	for i := 0; i < condCount; i++ {
		g.emit(ldimm(condFirst+isa.Reg(i), 0))
	}
	g.branch(isa.OpBR, isa.RegNone, "L0")
}

// take draws a target count from a fractional accumulator.
func take(acc *float64, target float64) int {
	*acc += target
	n := int(*acc)
	*acc -= float64(n)
	return n
}

// blockBudget works out this block's braid composition from the profile.
type blockBudget struct {
	singles int // single-instruction braids, excluding the block terminator
	body    int // non-single braids (the first one computes a skip condition)
	extIn   int // external-input budget per body braid
}

// braidSizeTargets converts the profile's include-singles averages into
// non-single braid targets: MeanSize = SinglesShare*1 + (1-SinglesShare)*x.
func (g *gen) braidSizeTargets() (size, width, extIn float64) {
	pr := &g.prof
	ns := 1 - pr.SinglesShare
	size = (pr.MeanSize - pr.SinglesShare) / ns
	if size < 2 {
		size = 2
	}
	if size > 28 {
		size = 28
	}
	width = (pr.MeanWidth - pr.SinglesShare) / ns
	if width < 1 {
		width = 1
	}
	if width > 2.5 {
		width = 2.5
	}
	extIn = (pr.ExtInputs - pr.SinglesShare) / ns
	if extIn < 1 {
		extIn = 1
	}
	if extIn > 10 {
		extIn = 10
	}
	return size, width, extIn
}

func (g *gen) planBlock() blockBudget {
	pr := &g.prof
	singlesTarget := pr.BraidsPerBlock * pr.SinglesShare // includes terminator
	bodyTarget := pr.BraidsPerBlock - singlesTarget
	_, _, extIn := g.braidSizeTargets()

	var b blockBudget
	b.singles = take(&g.accSingles, singlesTarget-1)
	if b.singles < 0 {
		b.singles = 0
	}
	b.body = take(&g.accBody, bodyTarget)
	if b.body < 0 {
		b.body = 0
	}
	b.extIn = take(&g.accExtIn, extIn)
	if b.extIn < 1 {
		b.extIn = 1
	}
	return b
}

// nextBraidSize draws the next non-single braid's size and chain length from
// the profile's targets, keeping the long-run averages exact.
func (g *gen) nextBraidSize() (size, crit int) {
	sz, width, _ := g.braidSizeTargets()
	size = take(&g.accSize, sz)
	if size < 2 {
		size = 2
	}
	crit = int(float64(size)/width + 0.5)
	if crit < 1 {
		crit = 1
	}
	if crit > size {
		crit = size
	}
	// A chain of c steps can absorb at most c+1 side instructions
	// (two operands on the first step, one on each later step).
	if size-crit > crit+1 {
		crit = (size - 1) / 2
		if crit < 1 {
			crit = 1
		}
	}
	return size, crit
}

// buildBody emits one loop-body block (blocks 0..B-2; the final block is
// the closer). Its first non-single braid computes the skip condition for
// the next block; the terminator consumes the condition this block's
// predecessor computed.
func (g *gen) buildBody(b int) {
	budget := g.planBlock()
	g.blockWrites = map[isa.Reg]bool{}
	g.blockReads = map[isa.Reg]bool{}

	// Pointer-chase braid (single serial load) for chasing profiles.
	if g.prof.PointerChase && b%2 == 0 {
		g.emit(isa.Instruction{Op: isa.OpLDQ, Dest: regChasePtr, Src1: regChasePtr, AliasClass: 1})
	}

	// Refresh the next block's skip condition from every other block;
	// the remaining body budget goes to compute braids. Blocks that skip
	// the refresh leave a stale condition behind, which simply makes the
	// corresponding branch strongly biased — like most compiled branches.
	wantCond := b%2 == 0
	for i := 0; i < budget.body; i++ {
		if i == 0 && wantCond {
			nextCond := condFirst + isa.Reg((b+1)%condCount)
			g.blockWrites[nextCond] = true
			g.emitCondBraid(b+1, nextCond)
			continue
		}
		isStore := g.rng.Float64() < g.prof.StoreBraidFrac
		g.emitBodyBraid(budget, isStore)
	}

	for i := 0; i < budget.singles; i++ {
		g.emitSingle(b, i)
	}

	// Terminator: skip over the next block. The second-to-last block
	// falls through into the closer.
	cond := condFirst + isa.Reg(b%condCount)
	if b < g.prof.Blocks-2 {
		target := b + 2
		if target > g.prof.Blocks-1 {
			target = g.prof.Blocks - 1
		}
		g.branch(isa.OpBNE, cond, fmt.Sprintf("L%d", target))
	}
}

// buildCloser emits the last body block: the skip condition for block 0, the
// LCG update, checksum absorption, and the counter-decrement back edge.
func (g *gen) buildCloser() {
	g.blockWrites = map[isa.Reg]bool{}
	g.blockReads = map[isa.Reg]bool{}
	g.blockWrites[condFirst] = true
	g.emitCondBraid(0, condFirst)

	// Absorb two pool values into the checksum.
	a := poolFirst + isa.Reg(g.rng.Intn(poolCount))
	b := poolFirst + isa.Reg(g.rng.Intn(poolCount))
	g.blockReads[a], g.blockReads[b] = true, true
	g.emit(opRRR(isa.OpXOR, regTmp0, a, b))
	g.emit(opRRR(isa.OpXOR, regChk, regChk, regTmp0))
	if g.prof.FP {
		fa := fpPoolFirst + isa.Reg(g.rng.Intn(poolCount))
		g.blockReads[fa] = true
		g.emit(opRRR(isa.OpFADD, fpChk, fpChk, fa))
	}

	// Pseudo-random update (reads happen above, in the condition braid).
	// A xorshift-add step keeps the loop-carried recurrence short (three
	// ALU levels) so it does not artificially cap the workload's ILP.
	g.emit(opRRI(isa.OpSRL, regTmp1, regLCG, 9))
	g.emit(opRRR(isa.OpXOR, regLCG, regLCG, regTmp1))
	g.emit(opRRI(isa.OpLDA, regLCG, regLCG, 12345))

	// Advance the hot-window drift by one cache line per iteration and
	// refresh the per-region hot bases.
	g.emit(opRRI(isa.OpLDA, regDrift, regDrift, 64))
	g.emit(opRRR(isa.OpAND, regDrift, regDrift, regMask))
	g.emit(opRRR(isa.OpADD, regHotL1, regLoadBase1, regDrift))
	g.emit(opRRR(isa.OpADD, regHotL2, regLoadBase2, regDrift))
	g.emit(opRRR(isa.OpADD, regHotSt, regStoreBase, regDrift))

	// Counter decrement and back edge.
	g.emit(opRRI(isa.OpSUB, regCounter, regCounter, 1))
	g.branch(isa.OpBGT, regCounter, "L0")
}

// emitCondBraid computes the skip condition consumed by block b's
// terminator: either a hard-to-predict LCG bit or an easy counter pattern.
func (g *gen) emitCondBraid(b int, dest isa.Reg) {
	size, _ := g.nextBraidSize()
	// Condition braids stay small (a shift, optional pad, and the mask);
	// the unused budget flows back to the ordinary body braids.
	if size > 3 {
		g.accSize += float64(size - 3)
		size = 3
	}
	hard := g.rng.Float64() < g.prof.HardBranchFrac
	src := regCounter
	if hard {
		src = regLCG
	}
	shift := int32((b*3)%16 + 1)
	g.emit(opRRI(isa.OpSRL, regTmp0, src, shift))
	// Pad the braid to its planned size with a deterministic chain; the
	// extra operations keep easy conditions a pure function of the
	// counter so the perceptron can learn them.
	for k := 0; k < size-2; k++ {
		g.emit(opRRI(isa.OpXOR, regTmp0, regTmp0, int32(11+7*k)))
	}
	if hard {
		// Data-dependent direction with the profile's taken rate.
		if g.prof.SkipProb < 0.5 {
			g.emit(opRRI(isa.OpAND, regTmp0, regTmp0, 3))
			g.emit(opRRI(isa.OpCMPEQ, dest, regTmp0, 0))
		} else {
			g.emit(opRRI(isa.OpAND, dest, regTmp0, 1))
		}
		return
	}
	// Easy branches mirror the strong bias of typical compiled code:
	// taken on ~3% of iterations, in a counter-periodic pattern.
	g.emit(opRRI(isa.OpAND, regTmp0, regTmp0, 31))
	g.emit(opRRI(isa.OpCMPEQ, dest, regTmp0, 0))
}

// readableExt returns an external input register for the current block:
// pool registers not written by this block, bases, the counter, or the LCG.
func (g *gen) readableExt(fp bool) isa.Reg {
	r := g.pickExt(fp)
	if g.blockReads != nil {
		g.blockReads[r] = true
	}
	return r
}

func (g *gen) pickExt(fp bool) isa.Reg {
	if fp {
		for tries := 0; tries < 8; tries++ {
			r := fpPoolFirst + isa.Reg(g.rng.Intn(poolCount))
			if !g.blockWrites[r] {
				return r
			}
		}
		return fpChk
	}
	roll := g.rng.Intn(10)
	switch {
	case roll < 2:
		// Freshly produced value: a short cross-braid dependence, the
		// way real code consumes the result it just computed. This
		// keeps the workload's ILP finite at very wide issue.
		if g.recentPool != 0 && !g.blockWrites[g.recentPool] {
			return g.recentPool
		}
		fallthrough
	case roll < 6:
		for tries := 0; tries < 8; tries++ {
			r := poolFirst + isa.Reg(g.rng.Intn(poolCount))
			if !g.blockWrites[r] {
				return r
			}
		}
		return regCounter
	case roll < 8:
		return regCounter
	case roll < 9:
		return regLCG
	default:
		return regLoadBase1 + isa.Reg(g.rng.Intn(2))
	}
}

// extInput returns a source register, preferring fresh external inputs while
// the braid's budget lasts, then reusing already-drawn ones.
func (g *gen) extInput(fp bool) isa.Reg {
	if len(g.extOrder) < g.extBudget {
		r := g.readableExt(fp)
		if !g.extUsed[r] {
			g.extUsed[r] = true
			g.extOrder = append(g.extOrder, r)
		}
		return r
	}
	// Reuse one of the inputs already drawn (deterministic order).
	start := g.rng.Intn(len(g.extOrder))
	for i := 0; i < len(g.extOrder); i++ {
		r := g.extOrder[(start+i)%len(g.extOrder)]
		if r.IsFP() == fp {
			return r
		}
	}
	r := g.readableExt(fp)
	if !g.extUsed[r] {
		g.extUsed[r] = true
		g.extOrder = append(g.extOrder, r)
	}
	return r
}

// allocPoolWrite picks the next pool register this braid will publish to.
func (g *gen) allocPoolWrite(fp bool) isa.Reg {
	for tries := 0; tries < poolCount; tries++ {
		idx := g.poolPtr % poolCount
		g.poolPtr++
		r := poolFirst + isa.Reg(idx)
		if fp {
			r = fpPoolFirst + isa.Reg(idx)
		}
		// Never write a register some braid in this block read or
		// wrote: that keeps blocks hazard-free by construction.
		if !g.blockWrites[r] && !g.blockReads[r] {
			g.blockWrites[r] = true
			if !fp {
				g.recentPool = r
			}
			return r
		}
	}
	// Pool exhausted for this block (very large blocks only): fall back
	// to the checksum register, which tolerates same-block rewrites
	// because only the tail reads it.
	if fp {
		return fpChk
	}
	return regChk
}

func (g *gen) intOp() isa.Opcode {
	ops := []isa.Opcode{isa.OpADD, isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpAND, isa.OpOR, isa.OpSLL, isa.OpSRL, isa.OpANDNOT, isa.OpCMPLT}
	if g.rng.Float64() < 0.08 {
		return isa.OpMUL
	}
	return ops[g.rng.Intn(len(ops))]
}

func (g *gen) fpOp() isa.Opcode {
	ops := []isa.Opcode{isa.OpFADD, isa.OpFMUL, isa.OpFSUB, isa.OpFADD, isa.OpFMUL}
	if g.rng.Float64() < 0.05 {
		return isa.OpFDIV
	}
	return ops[g.rng.Intn(len(ops))]
}

// emitBodyBraid generates one dataflow braid of the planned size and width.
// The braid is a serial chain of budget.bodyCrit steps; the remaining
// instructions are side computations feeding chain steps. Loads appear as a
// chain step whose address is computed by two side instructions; the root
// value is either stored (store braid) or published to a pool register.
func (g *gen) emitBodyBraid(budget blockBudget, isStore bool) {
	fp := g.prof.FP
	g.extUsed = map[isa.Reg]bool{}
	g.extOrder = g.extOrder[:0]
	g.extBudget = budget.extIn

	size, crit := g.nextBraidSize()
	// The root consumer (pool publish: 1 instruction; store with its
	// address cluster: 3) is emitted outside the loop below, so it is
	// paid for out of the size budget here.
	if isStore {
		size -= 3
	} else {
		size--
	}
	if size < 1 {
		size = 1
	}
	if crit > size {
		crit = size
	}

	cur := regTmp0
	fpCur := fpTmp0
	sidesLeft := size - crit
	chainSteps := crit

	var pendingSide isa.Reg = isa.RegNone
	emitSide := func() {
		if sidesLeft <= 0 {
			return
		}
		sidesLeft--
		if fp && g.rng.Float64() < 0.7 {
			g.emit(opRRR(g.fpOp(), fpTmp1, g.extInput(true), g.extInput(true)))
			pendingSide = fpTmp1
			return
		}
		g.emit(opRRR(g.intOp(), regTmp1, g.extInput(false), g.extInput(false)))
		pendingSide = regTmp1
	}

	// Loads use a three-instruction cluster: mask, add, load. The mask
	// source is an external input (or the counter for strided streams).
	emitLoad := func(dest isa.Reg, fpLoad bool) {
		base := regLoadBase1
		cls := uint8(2)
		if g.rng.Intn(2) == 1 {
			base, cls = regLoadBase2, 3
		}
		if g.prof.Stride > 8 && g.rng.Float64() < 0.6 {
			// Streaming: walk the whole region, missing like real
			// stream kernels do.
			g.emit(opRRI(isa.OpMUL, regTmp2, regCounter, int32(g.prof.Stride)))
			g.emit(opRRR(isa.OpAND, regTmp2, regTmp2, regMask))
			g.emit(opRRR(isa.OpADD, regTmp2, regTmp2, base))
		} else {
			// Pointer-ish: land in the drifting hot window.
			hot := regHotL1
			if base == regLoadBase2 {
				hot = regHotL2
			}
			g.emit(opRRI(isa.OpAND, regTmp2, g.extInput(false), hotMask))
			g.emit(opRRR(isa.OpADD, regTmp2, regTmp2, hot))
		}
		op := isa.OpLDQ
		if fpLoad {
			op = isa.OpLDF
		}
		g.emit(isa.Instruction{Op: op, Dest: dest, Src1: regTmp2, Imm: 0, AliasClass: cls})
	}

	// payLoad charges a load cluster's two address instructions against
	// side budget first, then against chain steps, so narrow braids can
	// still contain loads (their address arithmetic is simply part of
	// the serial chain, as in Figure 2).
	payLoad := func(step int) int {
		take := 2
		if sidesLeft < take {
			take = sidesLeft
		}
		sidesLeft -= take
		return step + (2 - take)
	}
	for step := 0; step < chainSteps; step++ {
		// Spend side instructions ahead of chain steps.
		for sidesLeft > 0 && pendingSide == isa.RegNone && g.rng.Float64() < 0.8 {
			emitSide()
		}
		avail := (chainSteps - step - 1) + sidesLeft
		wantLoad := avail >= 2 && pendingSide == isa.RegNone &&
			g.rng.Float64() < g.prof.LoadFrac && step > 0
		switch {
		case step == 0:
			if g.rng.Float64() < g.prof.LoadFrac && avail >= 2 {
				step = payLoad(step)
				if fp {
					emitLoad(fpCur, true)
				} else {
					emitLoad(cur, false)
				}
			} else if fp {
				g.emit(opRRR(g.fpOp(), fpCur, g.extInput(true), g.extInput(true)))
			} else {
				g.emit(opRRR(g.intOp(), cur, g.extInput(false), g.extInput(false)))
			}
		case wantLoad:
			step = payLoad(step)
			if fp {
				emitLoad(fpTmp1, true)
				g.emit(opRRR(g.fpOp(), fpCur, fpCur, fpTmp1))
			} else {
				emitLoad(regTmp1, false)
				g.emit(opRRR(g.intOp(), cur, cur, regTmp1))
			}
		default:
			var operand isa.Reg
			if pendingSide != isa.RegNone {
				operand = pendingSide
				pendingSide = isa.RegNone
			} else if fp {
				operand = g.extInput(true)
			} else {
				operand = g.extInput(false)
			}
			if fp && operand.IsFP() {
				g.emit(opRRR(g.fpOp(), fpCur, fpCur, operand))
			} else if fp {
				// Mix an integer-derived value into the FP chain.
				g.emit(isa.Instruction{Op: isa.OpCVTIF, Dest: fpTmp1, Src1: operand})
				g.emit(opRRR(g.fpOp(), fpCur, fpCur, fpTmp1))
				step++ // the cvt consumed a step's worth of work
			} else {
				g.emit(opRRR(g.intOp(), cur, cur, operand))
			}
		}
	}
	// Drain leftover sides into the chain.
	for sidesLeft > 0 {
		emitSide()
		if pendingSide != isa.RegNone {
			if pendingSide.IsFP() {
				g.emit(opRRR(g.fpOp(), fpCur, fpCur, pendingSide))
			} else if fp {
				g.emit(isa.Instruction{Op: isa.OpCVTIF, Dest: fpTmp1, Src1: pendingSide})
				g.emit(opRRR(g.fpOp(), fpCur, fpCur, fpTmp1))
			} else {
				g.emit(opRRR(g.intOp(), cur, cur, pendingSide))
			}
			pendingSide = isa.RegNone
		}
	}

	root := cur
	fpRoot := fpCur
	if isStore {
		// Store the root into the (alias class 4) store region's hot
		// window.
		g.emit(opRRI(isa.OpAND, regTmp2, g.extInput(false), hotMask))
		g.emit(opRRR(isa.OpADD, regTmp2, regTmp2, regHotSt))
		if fp {
			g.emit(isa.Instruction{Op: isa.OpSTF, Src1: fpRoot, Src2: regTmp2, AliasClass: 4})
		} else {
			g.emit(isa.Instruction{Op: isa.OpSTQ, Src1: root, Src2: regTmp2, AliasClass: 4})
		}
		return
	}
	// Publish the root to the pool.
	out := g.allocPoolWrite(fp)
	if fp {
		g.emit(opRRR(isa.OpFADD, out, fpRoot, fpRoot))
	} else {
		g.emit(opRRI(isa.OpADD, out, root, 0))
	}
}

// emitSingle emits one single-instruction braid: a nop, a pool pointer bump,
// or a store of a pool register.
func (g *gen) emitSingle(b, i int) {
	switch (b + i) % 4 {
	case 0:
		g.emit(isa.Instruction{Op: isa.OpNOP})
	case 1, 2:
		// Store single: pool value to a private slot in the store
		// region (static displacement; no address computation).
		src := g.readableExt(false)
		disp := int32(((b*17 + i*7) % 512) * 8)
		g.emit(isa.Instruction{Op: isa.OpSTQ, Src1: src, Src2: regStoreBase, Imm: disp, AliasClass: 4})
	default:
		// Pointer-bump single, lda-style: reads and writes one pool
		// register nobody else touches in this block.
		r := g.allocPoolWrite(false)
		g.emit(opRRI(isa.OpLDA, r, r, 8))
	}
}

// buildExit publishes the architectural results to memory and halts, so
// original/braided equivalence is observable in the memory image.
func (g *gen) buildExit() {
	disp := int32(4096 * 8)
	st := func(r isa.Reg, fp bool) {
		op := isa.OpSTQ
		if fp {
			op = isa.OpSTF
		}
		g.emit(isa.Instruction{Op: op, Src1: r, Src2: regStoreBase, Imm: disp, AliasClass: 4})
		disp += 8
	}
	st(regChk, false)
	st(regCounter, false)
	st(regLCG, false)
	st(regChasePtr, false)
	for i := 0; i < poolCount; i++ {
		st(poolFirst+isa.Reg(i), false)
	}
	if g.prof.FP {
		st(fpChk, true)
		for i := 0; i < poolCount; i++ {
			st(fpPoolFirst+isa.Reg(i), true)
		}
	}
	for i := 0; i < condCount; i++ {
		st(condFirst+isa.Reg(i), false)
	}
	g.emit(isa.Instruction{Op: isa.OpHALT})
}
