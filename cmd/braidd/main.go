// Command braidd is the braid simulation daemon: a long-running HTTP/JSON
// service that compiles and simulates programs on request.
//
//	braidd -addr :8080 -workers 8
//
// Endpoints:
//
//	POST /v1/simulate   one program + config -> full Stats JSON
//	POST /v1/batch      up to -max-batch requests, run concurrently
//	GET  /healthz       readiness (503 while draining)
//	GET  /metrics       expvar JSON: queue depth, cache hit rate, MIPS, ...
//	GET  /debug/pprof/  live profiling
//
// SIGINT/SIGTERM flips /healthz to draining, stops accepting connections,
// and waits up to -drain-timeout for in-flight simulations to finish.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"braid/internal/service"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "listen address")
		workers      = flag.Int("workers", 0, "concurrent simulations (0: GOMAXPROCS)")
		queue        = flag.Int("queue", 0, "admission queue depth beyond workers (0: 4x workers)")
		cacheSize    = flag.Int("cache", 1024, "result-cache entries (negative disables)")
		maxSimTime   = flag.Duration("max-sim-time", 30*time.Second, "per-request wall-clock ceiling")
		maxCycles    = flag.Uint64("max-cycles", 50_000_000, "per-request simulated-cycle ceiling")
		maxBatch     = flag.Int("max-batch", 64, "max requests per /v1/batch call")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "shutdown grace for in-flight requests")
		accessLog    = flag.String("access-log", "stderr", "access log destination: stderr, none, or a file path")
	)
	flag.Parse()

	var logw io.Writer
	switch *accessLog {
	case "none":
	case "stderr":
		logw = os.Stderr
	default:
		f, err := os.OpenFile(*accessLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			log.Fatalf("braidd: access log: %v", err)
		}
		defer f.Close()
		logw = f
	}

	svc := service.New(service.Config{
		Workers:      *workers,
		QueueDepth:   *queue,
		CacheEntries: *cacheSize,
		MaxSimTime:   *maxSimTime,
		MaxCycles:    *maxCycles,
		MaxBatch:     *maxBatch,
		AccessLog:    logw,
	})
	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	errc := make(chan error, 1)
	go func() {
		log.Printf("braidd: serving on %s", *addr)
		errc <- srv.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-errc:
		log.Fatalf("braidd: %v", err)
	case sig := <-sigc:
		log.Printf("braidd: %s received, draining (grace %s)", sig, *drainTimeout)
	}

	svc.StartDrain()
	ctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatalf("braidd: drain incomplete: %v", err)
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("braidd: %v", err)
	}
	fmt.Println("braidd: drained cleanly")
}
