package uarch

import (
	"fmt"
	"io"
)

// SetKonata attaches a Kanata-format pipeline log (the format read by the
// Konata pipeline viewer): every retired instruction emits its fetch,
// dispatch, issue, execute, writeback and commit stages, up to max
// instructions (unlimited when max <= 0). Call before Run. The stages are
// written at retirement using absolute cycle positioning, which Kanata
// accepts.
func (m *Machine) SetKonata(w io.Writer, max int) {
	m.konata = w
	m.konataMax = max
	fmt.Fprintf(w, "Kanata\t0004\n")
}

func (m *Machine) konataRetire(d *dyn, t uint64) {
	if m.konata == nil || (m.konataMax > 0 && m.konataCount >= m.konataMax) {
		return
	}
	id := m.konataCount
	m.konataCount++
	w := m.konata
	fmt.Fprintf(w, "C=\t%d\n", d.fetchCycle)
	fmt.Fprintf(w, "I\t%d\t%d\t0\n", id, d.seq)
	label := d.in.String()
	if d.beu >= 0 {
		label = fmt.Sprintf("[beu %d] %s", d.beu, label)
	}
	fmt.Fprintf(w, "L\t%d\t0\t%s\n", id, label)
	stage := func(name string, from, to uint64) {
		if to < from {
			to = from
		}
		fmt.Fprintf(w, "C=\t%d\nS\t%d\t0\t%s\n", from, id, name)
		fmt.Fprintf(w, "C=\t%d\nE\t%d\t0\t%s\n", to, id, name)
	}
	stage("F", d.fetchCycle, d.dispatchCycle)
	stage("Ds", d.dispatchCycle, d.issueCycle)
	stage("X", d.issueCycle, d.execDone)
	stage("Wb", d.execDone, d.completeCycle)
	stage("Cm", d.completeCycle, t)
	fmt.Fprintf(w, "C=\t%d\nR\t%d\t%d\t0\n", t, id, id)
}
