package isa

import "fmt"

// BRD64 instructions encode to a fixed 64-bit word:
//
//	bits  0-7   opcode
//	bits  8-13  dest register
//	bits 14-19  src1 register
//	bits 20-25  src2 register
//	bit  26     hasImm (src2 replaced by immediate)
//	bit  27     S  braid start
//	bit  28     T1 src1 is internal
//	bit  29     T2 src2 is internal
//	bit  30     I  write internal destination
//	bit  31     E  write external destination
//	bits 32-34  internal destination index
//	bits 35-37  internal src1 index
//	bits 38-40  internal src2 index
//	bits 41-44  alias class
//	bits 45-63  immediate, 19-bit two's complement
const (
	// ImmBits is the width of the immediate field.
	ImmBits = 19
	// ImmMax and ImmMin bound the encodable immediate/displacement.
	ImmMax = 1<<(ImmBits-1) - 1
	ImmMin = -(1 << (ImmBits - 1))
	// MaxAliasClass is the largest encodable alias class.
	MaxAliasClass = 15
)

// Encode packs the instruction into its 64-bit word. It returns an error if
// any field is out of encodable range.
func (in *Instruction) Encode() (uint64, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: encode: invalid opcode %d", uint8(in.Op))
	}
	if in.Imm > ImmMax || in.Imm < ImmMin {
		return 0, fmt.Errorf("isa: encode %s: immediate %d out of range [%d,%d]", in.Op, in.Imm, ImmMin, ImmMax)
	}
	if in.AliasClass > MaxAliasClass {
		return 0, fmt.Errorf("isa: encode %s: alias class %d out of range", in.Op, in.AliasClass)
	}
	if in.IDestIdx >= NumInternalRegs || in.I1 >= NumInternalRegs || in.I2 >= NumInternalRegs {
		return 0, fmt.Errorf("isa: encode %s: internal register index out of range", in.Op)
	}
	regField := func(r Reg) (uint64, error) {
		if r == RegNone {
			return 0, nil
		}
		if !r.Valid() {
			return 0, fmt.Errorf("isa: encode %s: bad register %d", in.Op, uint8(r))
		}
		return uint64(r), nil
	}
	d, err := regField(in.Dest)
	if err != nil {
		return 0, err
	}
	s1, err := regField(in.Src1)
	if err != nil {
		return 0, err
	}
	s2, err := regField(in.Src2)
	if err != nil {
		return 0, err
	}
	w := uint64(in.Op)
	w |= d << 8
	w |= s1 << 14
	w |= s2 << 20
	if in.HasImm {
		w |= 1 << 26
	}
	if in.Start {
		w |= 1 << 27
	}
	if in.T1 {
		w |= 1 << 28
	}
	if in.T2 {
		w |= 1 << 29
	}
	if in.IDest {
		w |= 1 << 30
	}
	if in.EDest {
		w |= 1 << 31
	}
	w |= uint64(in.IDestIdx) << 32
	w |= uint64(in.I1) << 35
	w |= uint64(in.I2) << 38
	w |= uint64(in.AliasClass) << 41
	w |= (uint64(uint32(in.Imm)) & (1<<ImmBits - 1)) << 45
	return w, nil
}

// Decode unpacks a 64-bit instruction word. Operand fields that the opcode
// does not use are normalized to RegNone/zero so that Decode(Encode(x))
// reproduces a canonical instruction exactly.
func Decode(w uint64) (Instruction, error) {
	op := Opcode(w & 0xff)
	if !op.Valid() {
		return Instruction{}, fmt.Errorf("isa: decode: invalid opcode %d", uint8(op))
	}
	info := &opTable[op]
	in := Instruction{
		Op:         op,
		Dest:       Reg(w >> 8 & 0x3f),
		Src1:       Reg(w >> 14 & 0x3f),
		Src2:       Reg(w >> 20 & 0x3f),
		HasImm:     w>>26&1 != 0,
		Start:      w>>27&1 != 0,
		T1:         w>>28&1 != 0,
		T2:         w>>29&1 != 0,
		IDest:      w>>30&1 != 0,
		EDest:      w>>31&1 != 0,
		IDestIdx:   uint8(w >> 32 & 7),
		I1:         uint8(w >> 35 & 7),
		I2:         uint8(w >> 38 & 7),
		AliasClass: uint8(w >> 41 & 0xf),
	}
	imm := uint32(w >> 45 & (1<<ImmBits - 1))
	// Sign-extend the 19-bit immediate.
	in.Imm = int32(imm<<(32-ImmBits)) >> (32 - ImmBits)
	// Normalize unused fields.
	if !info.HasDest {
		in.Dest = RegNone
		in.IDest, in.EDest, in.IDestIdx = false, false, 0
	}
	if in.IDest && !in.EDest {
		in.Dest = RegNone
	}
	if in.T1 {
		in.Src1 = RegNone
	} else {
		in.I1 = 0
	}
	if in.T2 {
		in.Src2 = RegNone
	} else {
		in.I2 = 0
	}
	if info.NumSrcs < 1 {
		in.Src1, in.T1, in.I1 = RegNone, false, 0
	}
	if info.NumSrcs < 2 || in.HasImm {
		in.Src2, in.T2, in.I2 = RegNone, false, 0
	}
	if !in.IDest {
		in.IDestIdx = 0
	}
	if !in.IsMem() {
		in.AliasClass = 0
	}
	return in, nil
}

// Canonicalize zeroes the fields of in that its opcode does not use, so that
// the instruction round-trips through Encode/Decode unchanged. It returns in
// for chaining.
func (in *Instruction) Canonicalize() *Instruction {
	info := &opTable[in.Op]
	if !info.HasDest {
		in.Dest = RegNone
		in.IDest, in.EDest, in.IDestIdx = false, false, 0
	}
	if in.IDest && !in.EDest {
		in.Dest = RegNone
	}
	if in.T1 {
		in.Src1 = RegNone
	} else {
		in.I1 = 0
	}
	if in.T2 {
		in.Src2 = RegNone
	} else {
		in.I2 = 0
	}
	if info.NumSrcs < 1 {
		in.Src1, in.T1, in.I1 = RegNone, false, 0
	}
	if info.NumSrcs < 2 || in.HasImm {
		in.Src2, in.T2, in.I2 = RegNone, false, 0
	}
	if !in.IDest {
		in.IDestIdx = 0
	}
	if !in.IsMem() {
		in.AliasClass = 0
	}
	return in
}
