package check

import (
	"context"
	"testing"

	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// TestKernelsCheckClean runs the full differential and metamorphic battery
// over every curated kernel: zero findings expected. This is the harness's
// own tier-1 anchor — if an engine change breaks retirement order, branch
// outcomes, memory addressing, count accounting, or braid equivalence on
// any paradigm, this test names the first diverging instruction.
func TestKernelsCheckClean(t *testing.T) {
	opts := Options{Sampled: !testing.Short()}
	for _, p := range workload.Kernels() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			t.Parallel()
			for _, f := range Program(context.Background(), p.Name, p, opts) {
				t.Errorf("%s", f.String())
			}
		})
	}
}

// TestRandomProgramsCheckClean pushes the adversarial random corpus
// through the lockstep oracle on every paradigm.
func TestRandomProgramsCheckClean(t *testing.T) {
	n := int64(30)
	if testing.Short() {
		n = 6
	}
	opts := Options{Widths: []int{4}}
	for seed := int64(0); seed < n; seed++ {
		p := workload.RandomProgram(seed)
		for _, f := range Program(context.Background(), p.Name, p, opts) {
			t.Errorf("seed %d: %s", seed, f.String())
		}
	}
}

// TestLockstepDetectsDivergence proves the oracle actually fires: an
// engine running one program against a reference stream for a different
// program must produce a lockstep finding, not silence. The tampered
// program differs in a single store offset — the minimal architectural
// divergence the checker claims to catch.
func TestLockstepDetectsDivergence(t *testing.T) {
	p, ok := workload.KernelByName("dot")
	if !ok {
		t.Fatal("dot kernel missing")
	}
	tampered := p.Clone()
	found := false
	for i := range tampered.Instrs {
		in := &tampered.Instrs[i]
		if in.IsStore() {
			in.Imm += 8 // shift one store's address
			found = true
			break
		}
	}
	if !found {
		t.Fatal("dot kernel has no store to tamper with")
	}
	f := lockstepPair(context.Background(), "tampered-dot", tampered, p, uarch.OutOfOrderConfig(4), 3_000_000)
	if f == nil {
		t.Fatal("lockstep oracle failed to flag a tampered store address")
	}
	if f.Kind != "lockstep" {
		t.Fatalf("expected a lockstep finding, got %s", f.String())
	}
	t.Logf("oracle fired as expected: %s", f.String())
}

// lockstepPair is the test seam for divergence detection: the engine runs
// engineProg while the reference interpreter follows refProg. Production
// code always passes the same program twice (via Lockstep).
func lockstepPair(ctx context.Context, name string, engineProg, refProg *isa.Program, cfg uarch.Config, maxSteps uint64) *Finding {
	m, err := uarch.New(engineProg, cfg)
	if err != nil {
		return &Finding{Kind: "error", Program: name, Detail: err.Error()}
	}
	ls := attachLockstep(m, name, refProg, cfg, maxSteps)
	if _, err := m.RunContext(ctx); err != nil {
		return &Finding{Kind: "error", Program: name, Detail: err.Error()}
	}
	if ls.f != nil {
		return ls.f
	}
	if !ls.st.Done() {
		return &Finding{Kind: "lockstep", Program: name, Detail: "reference stream not exhausted"}
	}
	return nil
}

// TestRandomAliasRegressions pins the seeds whose programs the first full
// random sweep miscompiled: RandomProgram used to roll alias class and
// address independently, so two stores to the same byte could carry
// distinct nonzero classes — an unsound "provably disjoint" promise the
// braid compiler is entitled to act on (it swapped two same-address stq,
// changing final memory; shrunk to 6 instructions). The generator now
// couples class to a disjoint address partition; these exact seeds must
// check clean, and so must the alias-soundness scan on a larger sample.
func TestRandomAliasRegressions(t *testing.T) {
	for _, seed := range []int64{49, 505, 585} {
		p := workload.RandomProgram(seed)
		for _, f := range Program(context.Background(), p.Name, p, Options{Widths: []int{4}}) {
			t.Errorf("seed %d: %s", seed, f.String())
		}
	}
	for seed := int64(0); seed < 300; seed++ {
		ex, err := observe(workload.RandomProgram(seed), 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if ex.aliasConflict != "" {
			t.Errorf("seed %d: generator emitted unsound alias classes: %s", seed, ex.aliasConflict)
		}
	}
}

// TestAliasUnsoundDetected proves the alias-soundness oracle fires: a
// program whose two same-address stores carry distinct nonzero classes is
// reported as an "alias" finding (root cause), not as the downstream
// equivalence divergence it licenses.
func TestAliasUnsoundDetected(t *testing.T) {
	p := &isa.Program{Name: "alias-unsound"}
	p.Instrs = []isa.Instruction{
		{Op: isa.OpLDIMM, Dest: isa.Reg(1), Imm: 7, HasImm: true},
		{Op: isa.OpSTQ, Src1: isa.Reg(1), Src2: isa.RegZero, Imm: 0x40, AliasClass: 1},
		{Op: isa.OpSTQ, Src1: isa.RegZero, Src2: isa.RegZero, Imm: 0x40, AliasClass: 2},
		{Op: isa.OpHALT},
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("test program invalid: %v", err)
	}
	f := Equivalence("alias-unsound", p, p, 1000)
	if f == nil {
		t.Fatal("alias-soundness oracle failed to flag conflicting classes")
	}
	if f.Kind != "alias" {
		t.Fatalf("expected an alias finding, got %s", f.String())
	}
	t.Logf("oracle fired as expected: %s", f.String())
}

// TestEquivalenceDetectsDivergence checks the compiler-equivalence oracle
// fires on a semantic change: flipping a store offset must surface as a
// store-stream divergence.
func TestEquivalenceDetectsDivergence(t *testing.T) {
	p, ok := workload.KernelByName("copy")
	if !ok {
		t.Fatal("copy kernel missing")
	}
	tampered := p.Clone()
	for i := range tampered.Instrs {
		in := &tampered.Instrs[i]
		if in.IsStore() {
			in.Imm += 16
			break
		}
	}
	if f := Equivalence("tampered-copy", p, tampered, 3_000_000); f == nil {
		t.Fatal("equivalence oracle failed to flag a tampered store")
	}
}
