// Package check is the differential and metamorphic correctness harness:
// the systematic oracle the braid reproduction pins every optimization
// against. Three layers of checking, in increasing distance from a
// reference:
//
//   - Differential lockstep (this file): every cycle-level core must retire
//     exactly the dynamic instruction stream the architectural interpreter
//     produces — same order, same branch outcomes, same memory addresses
//     and widths, same final register file and memory image, same
//     architectural counts. The uarch retire hook exposes the engine's
//     stream; interp.Stream is the reference half.
//
//   - Compiler equivalence (this file): braiding a program must preserve
//     its observable behavior — final memory image, the ordered per-byte
//     store history (disjoint stores may commute, aliasing ones may not),
//     and dynamic instruction count.
//
//   - Metamorphic invariants (invariants.go): properties that hold across
//     configuration changes without any oracle at all — architectural
//     counts invariant under resource sizing, IPC monotone under resource
//     widening, sampled estimates converging to exact stats, bit-identical
//     reruns.
//
// On failure, the shrinker (shrink.go) reduces the offending program to a
// minimal reproduction and writes a crash artifact replayable with
// braidsim -config.
package check

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math/bits"
	"sort"

	"braid/internal/braid"
	"braid/internal/cfg"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/uarch"
)

// Finding is one correctness violation. It is self-contained: the program
// and configuration that exhibited the failure ride along so the shrinker
// and the crash-artifact writer can reproduce it without re-deriving
// context.
type Finding struct {
	Kind    string // "lockstep", "equivalence", "alias", "invariant", or "error"
	Program string // program name
	Core    string // core/config description; empty for program-level checks
	Detail  string // what diverged, with positions and both values

	Prog *isa.Program  // the program that failed (as simulated)
	Cfg  *uarch.Config // configuration that exhibited it; nil if program-level
}

func (f *Finding) String() string {
	core := f.Core
	if core == "" {
		core = "-"
	}
	return fmt.Sprintf("[%s] %s on %s: %s", f.Kind, f.Program, core, f.Detail)
}

// Options tunes a checking run.
type Options struct {
	// MaxSteps bounds every interpreter run (default 3M). Programs that
	// exceed it are reported as errors: the corpus and the random
	// generator only produce halting programs.
	MaxSteps uint64
	// Widths lists the issue widths to check each paradigm at
	// (default {4, 8}).
	Widths []int
	// IPCTol is the tolerated relative IPC regression when a single
	// resource is widened (default 0.05). Widening shifts when loads
	// and stores reach the cache, so small timing wobbles are physical,
	// not bugs. On top of the relative bound the invariant grants a
	// bounded absolute slack (a pipeline drain's worth of cycles), so
	// scheduling anomalies on very short programs are not misread as
	// regressions; see Invariants.
	IPCTol float64
	// Sampled enables the sampled-convergence invariant (slower; runs
	// the sampled simulator at several detail fractions).
	Sampled bool
}

func (o Options) withDefaults() Options {
	if o.MaxSteps == 0 {
		o.MaxSteps = 3_000_000
	}
	if len(o.Widths) == 0 {
		o.Widths = []int{4, 8}
	}
	if o.IPCTol == 0 {
		o.IPCTol = 0.05
	}
	return o
}

// coreConfigs returns every paradigm's configuration at width w, paired
// with the program variant it runs (the braid core runs braided code).
func coreConfigs(w int) []uarch.Config {
	return []uarch.Config{
		uarch.OutOfOrderConfig(w),
		uarch.InOrderConfig(w),
		uarch.DepSteerConfig(w),
		uarch.BraidConfig(w),
	}
}

// Program runs the full battery on one program: compiler equivalence,
// differential lockstep for every paradigm at every width, and the
// metamorphic invariants. It returns every violation found (empty means
// the program checks clean).
func Program(ctx context.Context, name string, p *isa.Program, opts Options) []Finding {
	opts = opts.withDefaults()
	var out []Finding

	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		return []Finding{{Kind: "error", Program: name, Detail: fmt.Sprintf("braid compile: %v", err), Prog: p}}
	}
	if err := res.VerifyInvariants(p); err != nil {
		out = append(out, Finding{Kind: "equivalence", Program: name,
			Detail: fmt.Sprintf("braid structural invariants: %v", err), Prog: p})
	}
	if f := Equivalence(name, p, res.Prog, opts.MaxSteps); f != nil {
		out = append(out, *f)
	}

	for _, w := range opts.Widths {
		for _, cfg := range coreConfigs(w) {
			prog := p
			if cfg.Core == uarch.CoreBraid {
				prog = res.Prog
			}
			if f := Lockstep(ctx, name, prog, cfg, opts.MaxSteps); f != nil {
				out = append(out, *f)
			}
			if ctx.Err() != nil {
				return out
			}
		}
	}

	out = append(out, Invariants(ctx, name, p, res.Prog, opts)...)
	return out
}

// lockstepState carries the retire-hook comparison state of one lockstep
// run: the reference stream, the first divergence, and the per-event
// counters cross-checked against Stats after the run.
type lockstepState struct {
	st *interp.Stream
	f  *Finding

	retired, loads, stores, condBr uint64
}

// attachLockstep wires the per-retire comparison hook onto m, checking the
// engine's retire stream against a reference interpretation of refProg.
// Production callers pass the engine's own program as refProg; tests pass
// a deliberately different one to prove the oracle fires.
func attachLockstep(m *uarch.Machine, name string, refProg *isa.Program, cfg uarch.Config, maxSteps uint64) *lockstepState {
	coreDesc := fmt.Sprintf("%s/w%d", cfg.Core, cfg.IssueWidth)
	ls := &lockstepState{st: interp.NewStream(refProg, maxSteps)}
	fail := func(ev uarch.RetireEvent, format string, args ...any) {
		if ls.f == nil {
			c := cfg
			ls.f = &Finding{Kind: "lockstep", Program: name, Core: coreDesc,
				Detail: fmt.Sprintf("retire seq %d (cycle %d): %s",
					ev.Seq, ev.Cycle, fmt.Sprintf(format, args...)),
				Prog: refProg, Cfg: &c}
		}
	}
	m.SetRetireHook(func(ev uarch.RetireEvent) {
		ls.retired++
		if ev.IsLoad {
			ls.loads++
		}
		if ev.IsStore {
			ls.stores++
		}
		if ls.f != nil {
			return
		}
		si, err := ls.st.Next()
		if err != nil {
			fail(ev, "reference interpreter: %v", err)
			return
		}
		if si == nil {
			fail(ev, "engine retired instruction %d past the interpreter's HALT", ev.Index)
			return
		}
		in := si.Instr
		if si.Index != ev.Index {
			fail(ev, "static index %d, interpreter executed %d (%s)", ev.Index, si.Index, in)
			return
		}
		if in.IsCondBranch() {
			ls.condBr++
		}
		if ev.IsLoad != in.IsLoad() || ev.IsStore != in.IsStore() || ev.IsBranch != in.IsBranch() {
			fail(ev, "classification load=%v store=%v branch=%v for %s",
				ev.IsLoad, ev.IsStore, ev.IsBranch, in)
			return
		}
		if ev.IsBranch && si.Taken != ev.Taken {
			fail(ev, "branch %s taken=%v, interpreter says %v", in, ev.Taken, si.Taken)
			return
		}
		if (ev.IsLoad || ev.IsStore) && si.Addr != ev.Addr {
			fail(ev, "%s address %#x, interpreter computed %#x", in, ev.Addr, si.Addr)
			return
		}
		if (ev.IsLoad || ev.IsStore) && uint64(si.MemBytes) != ev.MemBytes {
			fail(ev, "%s width %d bytes, interpreter used %d", in, ev.MemBytes, si.MemBytes)
			return
		}
	})
	return ls
}

// Lockstep simulates p under cfg with the retire hook attached and steps a
// reference interpreter in lockstep, comparing every retired instruction:
// static index, branch outcome, memory address, access width, and
// instruction classification. After the run it checks the engine retired
// the complete stream (count and final architectural state) and that the
// architectural Stats counters agree with the reference stream. It returns
// the first divergence, or nil.
func Lockstep(ctx context.Context, name string, p *isa.Program, cfg uarch.Config, maxSteps uint64) *Finding {
	coreDesc := fmt.Sprintf("%s/w%d", cfg.Core, cfg.IssueWidth)
	mkFinding := func(kind, detail string) *Finding {
		c := cfg
		return &Finding{Kind: kind, Program: name, Core: coreDesc, Detail: detail, Prog: p, Cfg: &c}
	}

	m, err := uarch.New(p, cfg)
	if err != nil {
		return mkFinding("error", fmt.Sprintf("uarch.New: %v", err))
	}
	ls := attachLockstep(m, name, p, cfg, maxSteps)

	// RunChecked contains engine panics as *SimFault errors: shrinking
	// hands the engine structurally valid but semantically arbitrary
	// programs, and a panicking candidate must surface as an "error"
	// finding, not kill the whole checking run.
	stats, err := m.RunChecked(ctx)
	if err != nil {
		return mkFinding("error", fmt.Sprintf("uarch run: %v", err))
	}
	if ls.f != nil {
		return ls.f
	}

	// The stream must be exactly exhausted: the engine retires the whole
	// program, nothing more, nothing less.
	if !ls.st.Done() {
		return mkFinding("lockstep", fmt.Sprintf(
			"engine retired only %d instructions; interpreter has more (at step %d)", ls.retired, ls.st.M.Steps))
	}
	if stats.Retired != ls.retired {
		return mkFinding("lockstep", fmt.Sprintf(
			"Stats.Retired %d disagrees with retire-hook event count %d", stats.Retired, ls.retired))
	}
	if stats.Retired != ls.st.M.Steps {
		return mkFinding("lockstep", fmt.Sprintf(
			"Stats.Retired %d != interpreter dynamic length %d", stats.Retired, ls.st.M.Steps))
	}
	if stats.Fetched != ls.st.M.Steps {
		return mkFinding("lockstep", fmt.Sprintf(
			"Stats.Fetched %d != interpreter dynamic length %d (fetch is trace-directed; they must agree)",
			stats.Fetched, ls.st.M.Steps))
	}
	if stats.Loads != ls.loads || stats.StoreCount != ls.stores {
		return mkFinding("lockstep", fmt.Sprintf(
			"Stats loads/stores %d/%d, retire stream saw %d/%d", stats.Loads, stats.StoreCount, ls.loads, ls.stores))
	}
	if stats.CondBranches != ls.condBr {
		return mkFinding("lockstep", fmt.Sprintf(
			"Stats.CondBranches %d, retire stream saw %d conditional branches", stats.CondBranches, ls.condBr))
	}

	// Final architectural state: the lockstep machine (driven one step per
	// retire event) must land exactly where an independent reference run
	// lands. Any dropped, duplicated, or reordered retirement desyncs it.
	ref, err := interp.RunProgram(p, maxSteps)
	if err != nil {
		return mkFinding("error", fmt.Sprintf("reference run: %v", err))
	}
	if fin := ls.st.M.Final(); !fin.Equal(ref) {
		return mkFinding("lockstep", fmt.Sprintf(
			"final architectural state diverged: lockstep mem %#x steps %d, reference mem %#x steps %d",
			fin.MemHash, fin.Steps, ref.MemHash, ref.Steps))
	}
	return nil
}

// execution summarizes one interpreter run for equivalence comparison:
// final state, store count, and a digest of the per-byte store history.
//
// The digest is deliberately NOT over the raw store stream: the braid
// scheduler may commute provably-disjoint stores (the first random sweep
// of this harness flushed out exactly that — two stq to 400(r16) and
// 424(r16) swapped, same final memory), which is legal scheduling freedom.
// What braiding must preserve is the ordered history of writes to each
// individual byte: aliasing stores keep their order (that is what the
// compiler's memory-order splits enforce), disjoint ones may interleave
// freely. Hashing per-byte histories is order-insensitive across bytes
// and order-sensitive within one — strictly stronger than comparing final
// memory, because an illegally swapped aliasing pair is caught even when
// a later store papers over the damage.
type execution struct {
	fin    interp.FinalState
	stores uint64
	digest [sha256.Size]byte
	// aliasConflict describes the first byte whose dynamic accesses carry
	// contradictory alias-class annotations (empty when sound). Alias
	// classes are a promise to the braid compiler — distinct nonzero
	// classes mean "provably disjoint" — so a store-involving overlap
	// between different nonzero classes makes any downstream reordering
	// the annotator's fault, not the compiler's. The promise is scoped to
	// the compiler's reordering unit, a single basic-block instance:
	// braiding never moves an access across a block boundary, so only
	// overlaps between accesses of the SAME dynamic block instance are
	// unsound (a class-2 load in iteration i and a class-3 store in
	// iteration j can never be swapped).
	aliasConflict string
}

// aliasMask tracks, per byte and per dynamic block instance, which nonzero
// alias classes stored to it and which loaded from it (classes fit in 4
// bits, so a uint16 bitmask each). The epoch stamps the block instance the
// masks belong to, so one allocation serves the whole run.
type aliasMask struct {
	store, load uint16
	epoch       uint64
}

func observe(p *isa.Program, maxSteps uint64) (execution, error) {
	var ex execution
	g, err := cfg.Build(p)
	if err != nil {
		return ex, fmt.Errorf("cfg: %w", err)
	}
	hist := make(map[uint64][]byte)
	cls := make(map[uint64]*aliasMask)
	var (
		epoch         uint64
		curBlock      = -1
		prevWasBranch bool
	)
	st := interp.NewStream(p, maxSteps)
	for {
		si, err := st.Next()
		if err != nil {
			return ex, err
		}
		if si == nil {
			break
		}
		// A new dynamic block instance starts after every branch (each
		// post-branch instruction is a leader, which also covers a loop
		// re-entering its own block) and on fallthrough into a leader.
		if b := g.BlockOf[si.Index]; prevWasBranch || b != curBlock {
			epoch++
			curBlock = b
		}
		prevWasBranch = si.Instr.IsBranch()

		isStore := si.Instr.IsStore()
		if isStore {
			ex.stores++
			for b := 0; b < si.MemBytes; b++ {
				a := si.Addr + uint64(b)
				hist[a] = append(hist[a], byte(si.Value>>(8*b)))
			}
		}
		if c := si.Instr.AliasClass; ex.aliasConflict == "" && c != 0 && (isStore || si.Instr.IsLoad()) {
			for b := 0; b < si.MemBytes; b++ {
				a := si.Addr + uint64(b)
				m := cls[a]
				if m == nil {
					m = &aliasMask{}
					cls[a] = m
				}
				if m.epoch != epoch {
					m.store, m.load, m.epoch = 0, 0, epoch
				}
				if isStore {
					m.store |= 1 << c
				} else {
					m.load |= 1 << c
				}
				// Unsound: two distinct nonzero store classes on one
				// byte, or a store class plus a different load class,
				// within one block instance.
				if popcount16(m.store) >= 2 || (m.store != 0 && m.load&^m.store != 0) {
					ex.aliasConflict = fmt.Sprintf(
						"byte %#x accessed under distinct nonzero alias classes within one block instance "+
							"(block %d at step %d: store mask %#x, load mask %#x)",
						a, curBlock, st.M.Steps, m.store, m.load)
					break
				}
			}
		}
	}
	ex.fin = st.M.Final()

	addrs := make([]uint64, 0, len(hist))
	for a := range hist {
		addrs = append(addrs, a)
	}
	sortUint64(addrs)
	h := sha256.New()
	var buf [16]byte
	for _, a := range addrs {
		binary.LittleEndian.PutUint64(buf[0:], a)
		binary.LittleEndian.PutUint64(buf[8:], uint64(len(hist[a])))
		h.Write(buf[:])
		h.Write(hist[a])
	}
	h.Sum(ex.digest[:0])
	return ex, nil
}

func sortUint64(s []uint64) {
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
}

func popcount16(v uint16) int { return bits.OnesCount16(v) }

// Equivalence checks that the braided program preserves the original's
// observable behavior: identical final memory image, identical dynamic
// instruction count, and an identical per-byte store history (see the
// execution type for why that, and not the raw ordered store stream, is
// the sound observation). The external register file is
// deliberately not compared: the braid compiler retires values that are
// dead at program end into internal registers (that is the point of the
// transformation), so memory and the store stream are the architectural
// observation channel — exactly what the compiler's own gauntlet pins.
// It returns the first violation, or nil.
func Equivalence(name string, orig, braided *isa.Program, maxSteps uint64) *Finding {
	mkFinding := func(detail string) *Finding {
		return &Finding{Kind: "equivalence", Program: name, Detail: detail, Prog: orig}
	}
	eo, err := observe(orig, maxSteps)
	if err != nil {
		return mkFinding(fmt.Sprintf("running original: %v", err))
	}
	if eo.aliasConflict != "" {
		// Root cause before symptom: unsound annotations license the
		// compiler to reorder aliasing accesses, so any divergence below
		// would blame the wrong component.
		return &Finding{Kind: "alias", Program: name, Detail: eo.aliasConflict, Prog: orig}
	}
	eb, err := observe(braided, maxSteps)
	if err != nil {
		return mkFinding(fmt.Sprintf("running braided: %v", err))
	}
	if eo.fin.MemHash != eb.fin.MemHash {
		return mkFinding(fmt.Sprintf(
			"memory image diverged after braiding: original mem %#x, braided mem %#x",
			eo.fin.MemHash, eb.fin.MemHash))
	}
	if eo.fin.Steps != eb.fin.Steps {
		return mkFinding(fmt.Sprintf(
			"dynamic length changed after braiding: %d -> %d", eo.fin.Steps, eb.fin.Steps))
	}
	if eo.stores != eb.stores || eo.digest != eb.digest {
		return mkFinding(fmt.Sprintf(
			"per-byte store history diverged after braiding: %d stores digest %x, braided %d stores digest %x",
			eo.stores, eo.digest[:8], eb.stores, eb.digest[:8]))
	}
	return nil
}
