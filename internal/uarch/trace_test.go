package uarch

import (
	"bufio"
	"bytes"
	"strconv"
	"strings"
	"testing"

	"braid/internal/braid"
	"braid/internal/workload"
)

func TestTraceOutput(t *testing.T) {
	k, _ := workload.KernelByName("dot")
	res, err := braid.Compile(k, braid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m, err := New(res.Prog, BraidConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	m.SetTrace(&buf, 50)
	if _, err := m.Run(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() || !strings.Contains(sc.Text(), "fetch") {
		t.Fatal("missing trace header")
	}
	lines := 0
	lastRetire := int64(-1)
	for sc.Scan() {
		lines++
		f := strings.Fields(sc.Text())
		if len(f) < 10 {
			t.Fatalf("short trace line: %q", sc.Text())
		}
		get := func(i int) int64 {
			v, err := strconv.ParseInt(f[i], 10, 64)
			if err != nil {
				t.Fatalf("bad field %d in %q", i, sc.Text())
			}
			return v
		}
		fetch, disp, issue, done, wb, retire := get(2), get(3), get(4), get(5), get(6), get(7)
		// Per-instruction stage order must be monotone.
		if !(fetch <= disp && disp < issue && issue < done && done <= wb && wb <= retire) {
			t.Errorf("non-monotone stages: %q", sc.Text())
		}
		// Retirement is in order.
		if retire < lastRetire {
			t.Errorf("retire went backwards: %q", sc.Text())
		}
		lastRetire = retire
	}
	if lines != 50 {
		t.Errorf("trace emitted %d lines, want 50", lines)
	}
}

func TestTraceUnlimited(t *testing.T) {
	k, _ := workload.KernelByName("fig2")
	var buf bytes.Buffer
	m, err := New(k, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	m.SetTrace(&buf, 0) // unlimited
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	gotLines := strings.Count(buf.String(), "\n") - 1 // minus header
	if uint64(gotLines) != st.Retired {
		t.Errorf("trace lines %d != retired %d", gotLines, st.Retired)
	}
}

func TestClusteringCostsPerformance(t *testing.T) {
	prof, _ := workload.ProfileByName("vortex")
	p, err := workload.Generate(prof, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	flat, err := Simulate(res.Prog, BraidConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	clustered := BraidConfig(8)
	clustered.Clusters = 4
	clustered.InterClusterDelay = 8
	sc, err := Simulate(res.Prog, clustered)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("flat %.3f, 4 clusters +8 cycles %.3f", flat.IPC(), sc.IPC())
	if sc.IPC() > flat.IPC() {
		t.Errorf("clustering with an 8-cycle penalty improved IPC: %.3f > %.3f", sc.IPC(), flat.IPC())
	}
	if sc.IPC() < 0.5*flat.IPC() {
		t.Errorf("clustering collapsed performance (%.3f vs %.3f); braids should tolerate it", sc.IPC(), flat.IPC())
	}
	if sc.Retired != flat.Retired {
		t.Errorf("clustering changed the retired count")
	}
}

func TestClusterValidation(t *testing.T) {
	cfg := BraidConfig(8)
	cfg.Clusters = 3 // 8 BEUs don't divide into 3
	if err := cfg.Validate(); err == nil {
		t.Error("uneven clustering accepted")
	}
	cfg.Clusters = 2
	if err := cfg.Validate(); err != nil {
		t.Errorf("even clustering rejected: %v", err)
	}
}

func TestDeadValueReleaseShrinksOccupancy(t *testing.T) {
	prof, _ := workload.ProfileByName("swim")
	p, err := workload.Generate(prof, 150)
	if err != nil {
		t.Fatal(err)
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	with := BraidConfig(8)
	without := BraidConfig(8)
	without.DeadValueRelease = false
	sw, err := Simulate(res.Prog, with)
	if err != nil {
		t.Fatal(err)
	}
	so, err := Simulate(res.Prog, without)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("with release: IPC %.3f, stalls %d; without: IPC %.3f, stalls %d",
		sw.IPC(), sw.RFEntryStalls, so.IPC(), so.RFEntryStalls)
	if so.RFEntryStalls <= sw.RFEntryStalls {
		t.Errorf("disabling dead-value release did not increase RF stalls (%d vs %d)",
			so.RFEntryStalls, sw.RFEntryStalls)
	}
	if sw.IPC() < so.IPC() {
		t.Errorf("dead-value release hurt IPC: %.3f < %.3f", sw.IPC(), so.IPC())
	}
}
