package braid

import (
	"fmt"
	"sort"

	"braid/internal/cfg"
	"braid/internal/isa"
)

// Operand slots, in the order they can carry dependencies.
const (
	slotSrc1     = 0
	slotSrc2     = 1
	slotDestRead = 2 // conditional moves read their old destination
)

// operandRef is one register-carried dependency of an instruction.
type operandRef struct {
	slot int8
	reg  isa.Reg
	prod int16 // producing instruction (block-relative), -1 if outside block
}

// consumerRef is the reverse edge.
type consumerRef struct {
	instr int16
	slot  int8
}

// defClass is the classification of a produced value (paper §3.2: the I and
// E destination bits).
type defClass uint8

const (
	classNone     defClass = iota // no value produced (store/branch/r31 dest)
	classInternal                 // internal register file only
	classDual                     // both files
	classExternal                 // external register file only
)

// blockCompiler braids one basic block.
type blockCompiler struct {
	prog        *isa.Program
	blk         *cfg.Block
	liveOut     cfg.RegSet
	maxInternal int

	n         int
	refs      [][]operandRef
	consumers [][]consumerRef
	defReg    []isa.Reg // per instruction; RegNone if no value
	lastDef   [isa.NumArchRegs]int16

	braids  [][]int16 // each member list sorted ascending
	braidOf []int16

	order  []int16 // braid placement order
	newPos []int16 // relative instruction index -> position in new block

	class  []defClass
	intIdx []uint8 // allocated internal register per def

	memSplits, depSplits, pressureSplits int
}

func newBlockCompiler(p *isa.Program, blk *cfg.Block, liveOut cfg.RegSet, maxInternal int) (*blockCompiler, error) {
	n := blk.Len()
	if n > 127 {
		return nil, fmt.Errorf("braid: block of %d instructions exceeds the 127-instruction limit", n)
	}
	bc := &blockCompiler{
		prog:        p,
		blk:         blk,
		liveOut:     liveOut,
		maxInternal: maxInternal,
		n:           n,
		refs:        make([][]operandRef, n),
		consumers:   make([][]consumerRef, n),
		defReg:      make([]isa.Reg, n),
		braidOf:     make([]int16, n),
		newPos:      make([]int16, n),
		class:       make([]defClass, n),
		intIdx:      make([]uint8, n),
	}
	for r := range bc.lastDef {
		bc.lastDef[r] = -1
	}

	var prodAt [isa.NumArchRegs]int16
	for r := range prodAt {
		prodAt[r] = -1
	}
	for m := 0; m < n; m++ {
		in := &p.Instrs[blk.Start+m]
		info := in.Info()
		addRef := func(slot int8, r isa.Reg) {
			if r == isa.RegNone || r == isa.RegZero || !r.Valid() {
				return
			}
			bc.refs[m] = append(bc.refs[m], operandRef{slot: slot, reg: r, prod: prodAt[r]})
			if p := prodAt[r]; p >= 0 {
				bc.consumers[p] = append(bc.consumers[p], consumerRef{instr: int16(m), slot: slot})
			}
		}
		if info.NumSrcs >= 1 {
			addRef(slotSrc1, in.Src1)
		}
		if info.NumSrcs >= 2 && !in.HasImm {
			addRef(slotSrc2, in.Src2)
		}
		if info.ReadsDest {
			addRef(slotDestRead, in.Dest)
		}
		bc.defReg[m] = isa.RegNone
		if in.WritesReg() && in.Dest != isa.RegZero {
			bc.defReg[m] = in.Dest
			prodAt[in.Dest] = int16(m)
			bc.lastDef[in.Dest] = int16(m)
		}
	}

	bc.initialBraids()
	return bc, nil
}

// initialBraids forms braids as weakly connected components of the
// block-local flow-dependence graph (the paper's graph-coloring pass).
func (bc *blockCompiler) initialBraids() {
	parent := make([]int16, bc.n)
	for i := range parent {
		parent[i] = int16(i)
	}
	var find func(x int16) int16
	find = func(x int16) int16 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int16) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[rb] = ra
		}
	}
	for m := 0; m < bc.n; m++ {
		for _, ref := range bc.refs[m] {
			if ref.prod >= 0 {
				union(ref.prod, int16(m))
			}
		}
	}
	groups := map[int16][]int16{}
	for m := 0; m < bc.n; m++ {
		r := find(int16(m))
		groups[r] = append(groups[r], int16(m))
	}
	roots := make([]int16, 0, len(groups))
	for r := range groups {
		roots = append(roots, r)
	}
	sort.Slice(roots, func(i, j int) bool { return groups[roots[i]][0] < groups[roots[j]][0] })
	for _, r := range roots {
		bc.braids = append(bc.braids, groups[r])
	}
}

// run iterates classify → order → check until the braid set is stable.
func (bc *blockCompiler) run() error {
	for iter := 0; ; iter++ {
		if iter > 4*bc.n+16 {
			return fmt.Errorf("braid: split loop did not converge")
		}
		bc.assignBraidOf()
		bc.classify()
		bc.orderBraids()
		if i, j, ok := bc.findViolation(); ok {
			if err := bc.resolveViolation(i, j); err != nil {
				return err
			}
			continue
		}
		if bIdx, member, ok := bc.allocateInternals(); !ok {
			bc.split(bIdx, member)
			bc.pressureSplits++
			continue
		}
		return nil
	}
}

func (bc *blockCompiler) assignBraidOf() {
	for bi, members := range bc.braids {
		for _, m := range members {
			bc.braidOf[m] = int16(bi)
		}
	}
}

// classify determines each produced value's destination class given the
// current braid partition.
func (bc *blockCompiler) classify() {
	for m := 0; m < bc.n; m++ {
		if bc.defReg[m] == isa.RegNone {
			bc.class[m] = classNone
			continue
		}
		escapes := false
		hasIn := false
		if bc.lastDef[bc.defReg[m]] == int16(m) && bc.liveOut.Has(bc.defReg[m]) {
			escapes = true
		}
		if bc.prog.Instrs[bc.blk.Start+m].ReadsDest() {
			// A conditional move reads its old destination from the
			// external file, so its result must live there too (the
			// encoding has one Dest field for both roles).
			escapes = true
		}
		for _, c := range bc.consumers[m] {
			switch {
			case c.slot == slotDestRead:
				// The braid ISA has no T bit for the old-destination
				// read of a conditional move, so that consumer always
				// reads the external file.
				escapes = true
			case bc.braidOf[c.instr] == bc.braidOf[m]:
				hasIn = true
			default:
				escapes = true
			}
		}
		switch {
		case !escapes:
			bc.class[m] = classInternal
		case hasIn:
			bc.class[m] = classDual
		default:
			bc.class[m] = classExternal
		}
	}
}

// forcedLastBraid returns the braid that must be placed last: the one
// containing the block's terminating branch or halt, or -1.
func (bc *blockCompiler) forcedLastBraid() int16 {
	last := &bc.prog.Instrs[bc.blk.Start+bc.n-1]
	if last.IsBranch() || last.IsHalt() {
		return bc.braidOf[bc.n-1]
	}
	return -1
}

// orderBraids places braids by ascending first-instruction index, with the
// branch braid forced last (paper §3.1), and computes every instruction's
// new position.
func (bc *blockCompiler) orderBraids() {
	forced := bc.forcedLastBraid()
	bc.order = bc.order[:0]
	for bi := range bc.braids {
		if int16(bi) != forced {
			bc.order = append(bc.order, int16(bi))
		}
	}
	sort.Slice(bc.order, func(i, j int) bool {
		return bc.braids[bc.order[i]][0] < bc.braids[bc.order[j]][0]
	})
	if forced >= 0 {
		bc.order = append(bc.order, forced)
	}
	pos := int16(0)
	for _, bi := range bc.order {
		for _, m := range bc.braids[bi] {
			bc.newPos[m] = pos
			pos++
		}
	}
}

// extRead reports whether instruction m's ref is satisfied from the external
// register file under the current partition and classification.
func (bc *blockCompiler) extRead(m int, ref operandRef) bool {
	if ref.slot == slotDestRead {
		return true
	}
	if ref.prod < 0 {
		return true
	}
	return bc.braidOf[ref.prod] != bc.braidOf[m]
}

// writesExternal reports whether instruction m writes the external file.
func (bc *blockCompiler) writesExternal(m int) bool {
	return bc.class[m] == classDual || bc.class[m] == classExternal
}

// findViolation scans ordered-pair constraints and returns the first
// original-order pair (i < j) whose order the current placement inverts.
// Constraints (all on the braided block's new linear order):
//
//   - memory: may-alias memory pairs with at least one store keep their
//     original partial order (paper §3.1);
//   - WAW / WAR / RAW hazards through the external register file keep
//     their original order (this substitutes for the paper's external
//     register re-allocation; see the package comment).
func (bc *blockCompiler) findViolation() (int, int, bool) {
	for i := 0; i < bc.n; i++ {
		for j := i + 1; j < bc.n; j++ {
			if bc.newPos[j] > bc.newPos[i] {
				continue
			}
			if bc.conflicts(i, j) {
				return i, j, true
			}
		}
	}
	return 0, 0, false
}

func (bc *blockCompiler) conflicts(i, j int) bool {
	ii := &bc.prog.Instrs[bc.blk.Start+i]
	ij := &bc.prog.Instrs[bc.blk.Start+j]
	// Memory ordering.
	if ii.IsMem() && ij.IsMem() && (ii.IsStore() || ij.IsStore()) && mayAlias(ii, ij) {
		return true
	}
	// WAW through the external file.
	if bc.defReg[i] != isa.RegNone && bc.defReg[i] == bc.defReg[j] &&
		bc.writesExternal(i) && bc.writesExternal(j) {
		return true
	}
	// WAR: i reads a register externally that j overwrites externally.
	if bc.defReg[j] != isa.RegNone && bc.writesExternal(j) {
		for _, ref := range bc.refs[i] {
			if ref.reg == bc.defReg[j] && bc.extRead(i, ref) {
				return true
			}
		}
	}
	// RAW: j reads i's value through the external file.
	if bc.defReg[i] != isa.RegNone && bc.writesExternal(i) {
		for _, ref := range bc.refs[j] {
			if ref.prod == int16(i) && bc.extRead(j, ref) {
				return true
			}
		}
	}
	return false
}

// mayAlias is the static disambiguator: distinct non-zero alias classes are
// guaranteed disjoint (the compiler's stack/global knowledge, §3.1); class 0
// may alias anything.
func mayAlias(a, b *isa.Instruction) bool {
	if a.AliasClass == 0 || b.AliasClass == 0 {
		return true
	}
	return a.AliasClass == b.AliasClass
}

// resolveViolation splits a braid so the violated pair (i before j) can be
// ordered correctly: normally the braid containing j is broken at j (the
// paper's "broken into two braids at the location of the violation"); when
// i's braid is pinned last by the branch rule, i's braid is broken after i
// instead.
func (bc *blockCompiler) resolveViolation(i, j int) error {
	bj := bc.braidOf[j]
	if bc.braids[bj][0] < int16(j) {
		bc.split(int(bj), int16(j))
		bc.noteSplitCause(i, j)
		return nil
	}
	bi := bc.braidOf[i]
	if bc.braidOf[bc.n-1] == bi && int(bc.braids[bi][len(bc.braids[bi])-1]) == bc.n-1 {
		// i's braid is pinned last by the branch rule. Break it just
		// before j: everything before j (including i) becomes a braid
		// placed by the normal first-instruction order, which lands
		// ahead of j's braid.
		bc.split(int(bi), int16(j))
		bc.noteSplitCause(i, j)
		return nil
	}
	return fmt.Errorf("braid: unresolvable ordering violation between %d and %d", i, j)
}

func (bc *blockCompiler) noteSplitCause(i, j int) {
	ii := &bc.prog.Instrs[bc.blk.Start+i]
	ij := &bc.prog.Instrs[bc.blk.Start+j]
	if ii.IsMem() && ij.IsMem() {
		bc.memSplits++
	} else {
		bc.depSplits++
	}
}

// split breaks braid bIdx in two at member value at: members < at stay,
// members >= at form a new braid.
func (bc *blockCompiler) split(bIdx int, at int16) {
	old := bc.braids[bIdx]
	var lo, hi []int16
	for _, m := range old {
		if m < at {
			lo = append(lo, m)
		} else {
			hi = append(hi, m)
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		// Degenerate split; nothing to do (callers avoid this).
		return
	}
	bc.braids[bIdx] = lo
	bc.braids = append(bc.braids, hi)
}

// allocateInternals linear-scans each braid's internal values onto the
// internal register file. On overflow it reports the braid and the member at
// which allocation failed so the caller can split there (paper §3.1: "the
// braid is broken into two braids at this boundary"; ~2% of braids at 8
// registers).
func (bc *blockCompiler) allocateInternals() (bIdx int, member int16, ok bool) {
	for bi, members := range bc.braids {
		posIn := map[int16]int{}
		for k, m := range members {
			posIn[m] = k
		}
		// lastUse[k]: braid-local position of the last in-braid
		// consumer of member k's value.
		type interval struct {
			end int
			reg uint8
		}
		var active []interval
		free := make([]uint8, 0, bc.maxInternal)
		for r := bc.maxInternal - 1; r >= 0; r-- {
			free = append(free, uint8(r))
		}
		for k, m := range members {
			// Expire intervals whose last consumer is strictly
			// before this instruction.
			dst := active[:0]
			for _, iv := range active {
				if iv.end < k {
					free = append(free, iv.reg)
				} else {
					dst = append(dst, iv)
				}
			}
			active = dst
			if bc.class[m] != classInternal && bc.class[m] != classDual {
				continue
			}
			end := k
			for _, c := range bc.consumers[m] {
				if c.slot != slotDestRead && bc.braidOf[c.instr] == int16(bi) {
					if p, found := posIn[c.instr]; found && p > end {
						end = p
					}
				}
			}
			if len(free) == 0 {
				return bi, m, false
			}
			reg := free[len(free)-1]
			free = free[:len(free)-1]
			bc.intIdx[m] = reg
			active = append(active, interval{end: end, reg: reg})
		}
	}
	return 0, 0, true
}

// emit writes the braided block into res and records braid descriptors.
func (bc *blockCompiler) emit(res *Result) {
	res.MemSplits += bc.memSplits
	res.DepSplits += bc.depSplits
	res.PressureSplits += bc.pressureSplits

	pos := bc.blk.Start
	for _, bi := range bc.order {
		members := bc.braids[bi]
		braidIdx := len(res.Braids)
		br := Braid{
			Block: bc.blk.Index,
			Start: pos,
		}
		depth := map[int16]int{}
		extIn := map[isa.Reg]bool{}
		for k, m := range members {
			in := bc.prog.Instrs[bc.blk.Start+int(m)] // copy
			in.Start = k == 0

			d := 1
			for _, ref := range bc.refs[m] {
				inBraid := ref.prod >= 0 && bc.braidOf[ref.prod] == bi
				if inBraid {
					if pd := depth[ref.prod]; pd+1 > d {
						d = pd + 1
					}
				}
				if !inBraid && ref.slot != slotDestRead {
					extIn[ref.reg] = true
				} else if ref.slot == slotDestRead && ref.prod < 0 {
					extIn[ref.reg] = true
				}
				// Source T bits: in-braid producers are read from
				// the internal file (dest-reads cannot be).
				if inBraid && ref.slot != slotDestRead &&
					(bc.class[ref.prod] == classInternal || bc.class[ref.prod] == classDual) {
					switch ref.slot {
					case slotSrc1:
						in.T1, in.I1, in.Src1 = true, bc.intIdx[ref.prod], isa.RegNone
					case slotSrc2:
						in.T2, in.I2, in.Src2 = true, bc.intIdx[ref.prod], isa.RegNone
					}
				}
			}
			depth[m] = d
			if d > br.CritPath {
				br.CritPath = d
			}

			switch bc.class[m] {
			case classInternal:
				in.IDest, in.IDestIdx, in.EDest = true, bc.intIdx[m], false
				in.Dest = isa.RegNone
				br.Internals++
			case classDual:
				in.IDest, in.IDestIdx, in.EDest = true, bc.intIdx[m], true
				br.Internals++
				br.ExtOutputs++
			case classExternal:
				in.EDest = true
				br.ExtOutputs++
			}
			if in.IsBranch() {
				br.HasBranch = true
			}
			in.Canonicalize()
			res.Prog.Instrs[pos] = in
			res.BraidOf[pos] = braidIdx
			res.NewIndex[bc.blk.Start+int(m)] = pos
			br.Orig = append(br.Orig, bc.blk.Start+int(m))
			pos++
		}
		br.End = pos
		br.ExtInputs = len(extIn)
		res.Braids = append(res.Braids, br)
	}
}
