package asm

import (
	"fmt"
	"strings"

	"braid/internal/isa"
)

// Format renders a program as assembly text that Parse accepts, labeling
// branch targets L0, L1, ... in order of appearance.
func Format(p *isa.Program) string {
	targets := map[int]string{}
	nextLabel := 0
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if !in.IsBranch() {
			continue
		}
		t := in.BranchTarget(i)
		if _, ok := targets[t]; !ok {
			targets[t] = fmt.Sprintf("L%d", nextLabel)
			nextLabel++
		}
	}

	var b strings.Builder
	if p.Name != "" {
		fmt.Fprintf(&b, ".name %s\n", p.Name)
	}
	if p.FP {
		b.WriteString(".fp\n")
	}
	if len(p.Data) > 0 {
		allZero := true
		for _, x := range p.Data {
			if x != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			fmt.Fprintf(&b, ".data %d\n", len(p.Data))
		} else {
			// Emit full words so initialized data round-trips.
			for off := 0; off < len(p.Data); off += 8 {
				var v uint64
				for i := 0; i < 8 && off+i < len(p.Data); i++ {
					v |= uint64(p.Data[off+i]) << (8 * uint(i))
				}
				fmt.Fprintf(&b, ".word %d\n", int64(v))
			}
			if rem := len(p.Data) % 8; rem != 0 {
				// .word appended 8 bytes; trim note: Parse will
				// produce a data segment rounded up to 8 bytes,
				// which reads identically (zero fill).
				_ = rem
			}
		}
	}
	for i := range p.Instrs {
		if lbl, ok := targets[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		in := &p.Instrs[i]
		b.WriteString("\t")
		b.WriteString(formatInstr(in, i, targets))
		b.WriteString("\n")
	}
	return b.String()
}

func formatInstr(in *isa.Instruction, idx int, targets map[int]string) string {
	src := func(r isa.Reg, t bool, ii uint8) string {
		if t {
			return fmt.Sprintf("i%d", ii)
		}
		return r.String()
	}
	dest := func() string {
		switch {
		case in.IDest && in.EDest:
			return fmt.Sprintf("i%d/%s", in.IDestIdx, in.Dest)
		case in.IDest:
			return fmt.Sprintf("i%d", in.IDestIdx)
		default:
			return in.Dest.String()
		}
	}
	var s string
	info := in.Info()
	switch {
	case in.Op == isa.OpNOP || in.Op == isa.OpHALT:
		s = in.Op.String()
	case in.Op == isa.OpLDIMM:
		s = fmt.Sprintf("%s %s, #%d", in.Op, dest(), in.Imm)
	case in.Op == isa.OpLDA, in.IsLoad():
		s = fmt.Sprintf("%s %s, %d(%s)", in.Op, dest(), in.Imm, src(in.Src1, in.T1, in.I1))
	case in.IsStore():
		s = fmt.Sprintf("%s %s, %d(%s)", in.Op, src(in.Src1, in.T1, in.I1), in.Imm, src(in.Src2, in.T2, in.I2))
	case in.IsUncondBranch():
		s = fmt.Sprintf("%s %s", in.Op, targets[in.BranchTarget(idx)])
	case in.IsCondBranch():
		s = fmt.Sprintf("%s %s, %s", in.Op, src(in.Src1, in.T1, in.I1), targets[in.BranchTarget(idx)])
	default:
		s = fmt.Sprintf("%s %s", in.Op, dest())
		if info.NumSrcs >= 1 {
			s += ", " + src(in.Src1, in.T1, in.I1)
		}
		if info.NumSrcs >= 2 {
			if in.HasImm {
				s += fmt.Sprintf(", #%d", in.Imm)
			} else {
				s += ", " + src(in.Src2, in.T2, in.I2)
			}
		}
	}
	if in.IsMem() && in.AliasClass != 0 {
		s += fmt.Sprintf("\t!ac=%d", in.AliasClass)
	}
	if in.Start {
		s += "\t!start"
	}
	return s
}
