// Command braidstat characterizes programs the way the paper's profiling
// tool does: dynamic value fanout and lifetime (§1) and the braid statistics
// of Tables 1-3.
//
// Usage:
//
//	braidstat -bench gcc            one generated benchmark
//	braidstat -kernel fig2          a built-in kernel
//	braidstat -suite                all 26 SPEC CPU2000 stand-ins
//	braidstat -suite -j 4           ... characterized 4 benchmarks at a time
//	braidstat -values -bench mcf    value fanout/lifetime only
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"sync"

	"braid/internal/braid"
	"braid/internal/cfg"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "generated benchmark name")
		kernel = flag.String("kernel", "", "built-in kernel name")
		suite  = flag.Bool("suite", false, "characterize the whole suite")
		values = flag.Bool("values", false, "value fanout/lifetime only")
		iters  = flag.Int("iters", 50, "benchmark loop iterations")
		jobs   = flag.Int("j", runtime.GOMAXPROCS(0), "benchmarks characterized in parallel (-suite)")
	)
	flag.Parse()

	switch {
	case *suite:
		characterizeSuite(*iters, *values, *jobs)
	case *bench != "":
		prof, ok := workload.ProfileByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err := workload.Generate(prof, *iters)
		if err != nil {
			fatal(err)
		}
		characterize(p, *values)
	case *kernel != "":
		p, ok := workload.KernelByName(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		characterize(p, *values)
	default:
		fatal(fmt.Errorf("need -bench, -kernel, or -suite"))
	}
}

// characterizeSuite runs every profile through a bounded worker pool and
// prints the reports in profile order, whatever order they finish in.
func characterizeSuite(iters int, valuesOnly bool, jobs int) {
	profs := workload.Profiles()
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(profs) {
		jobs = len(profs)
	}
	reports := make([]string, len(profs))
	errs := make([]error, len(profs))
	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				p, err := workload.Generate(profs[i], iters)
				if err != nil {
					errs[i] = err
					continue
				}
				reports[i], errs[i] = report(p, valuesOnly)
			}
		}()
	}
	for i := range profs {
		work <- i
	}
	close(work)
	wg.Wait()
	for i, prof := range profs {
		if errs[i] != nil {
			fatal(fmt.Errorf("%s: %w", prof.Name, errs[i]))
		}
		fmt.Printf("--- %s ---\n%s", prof.Name, reports[i])
	}
}

func characterize(p *isa.Program, valuesOnly bool) {
	s, err := report(p, valuesOnly)
	if err != nil {
		fatal(err)
	}
	fmt.Print(s)
}

// report builds one program's characterization text (§1 values, control
// flow, Tables 1-3 braid statistics).
func report(p *isa.Program, valuesOnly bool) (string, error) {
	var b strings.Builder
	vs, err := interp.Characterize(p, 100_000_000)
	if err != nil {
		return "", err
	}
	b.WriteString(vs.String())
	if valuesOnly {
		return b.String(), nil
	}
	if g, err := cfg.Build(p); err == nil {
		loops := cfg.NaturalLoops(g)
		fmt.Fprintf(&b, "control flow: %d blocks, %d natural loops\n", len(g.Blocks), len(loops))
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		return "", err
	}
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	if _, err := m.Run(100_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) }); err != nil {
		return "", err
	}
	st := ds.Stats()
	b.WriteString(st.String())
	return b.String(), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidstat: %v\n", err)
	os.Exit(1)
}
