package explore

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"sort"

	"braid/internal/experiments"
	"braid/internal/uarch"
)

// Options parameterizes a Search.
type Options struct {
	Seed   int64 // RNG seed; same seed + same suite => identical front
	Pop    int   // population size (default 16)
	Budget int   // total genome evaluations before stopping (default 6*Pop)

	// InjectFaultAt, when positive, arms the Nth unique genome evaluation
	// (1-based) with a deliberate pipeline corruption under the paranoid
	// checker. The faulted genome must come back infeasible — contained and
	// excluded — without aborting the search. Test hook; never set in real
	// searches.
	InjectFaultAt int

	Log io.Writer // per-generation progress lines (nil: quiet)
}

func (o Options) withDefaults() Options {
	if o.Pop <= 0 {
		o.Pop = 16
	}
	if o.Budget <= 0 {
		o.Budget = 6 * o.Pop
	}
	return o
}

// Eval is one evaluated genome: the two objective values and provenance.
// Infeasible evaluations (a contained fault or cycle-limit on any workload)
// keep their slot in the archive — rediscovering the same genome must not
// re-simulate it — but never enter the front.
type Eval struct {
	Genome   Genome  `json:"genome"`
	IPC      float64 `json:"ipc"`  // geomean over the workload set (0 if infeasible)
	Cost     float64 `json:"cost"` // uarch.EstimateComplexity total
	Feasible bool    `json:"feasible"`
	Gen      int     `json:"gen"` // generation first evaluated
}

// Result is a finished (or budget-exhausted) search.
type Result struct {
	Front       []Eval // non-dominated feasible evaluations, canonical order
	Digest      string // sha256 over the canonical front JSON
	Generations int    // completed generations (including generation 0)
	Evaluations int    // unique genomes simulated
}

// Search runs the NSGA-II-lite loop over the given benchmark subset of w.
// Determinism contract: with equal (seed, pop, budget, workload set,
// sampling geometry, suite dynTarget), the returned front and digest are
// byte-identical regardless of w's job count, runner (local or remote — both
// are deterministic), or how many times the search was interrupted and
// resumed through ck. ctx cancellation stops the search between generations
// with the checkpoint intact; the error wraps ctx.Err().
//
// ck may be nil (no persistence). A non-nil ck that already holds completed
// generations seeds the search state from them — the remaining generations
// run exactly as they would have in the uninterrupted process, because every
// generation reseeds its own RNG from (seed, generation index) and the
// genetic operators are serial.
func Search(ctx context.Context, w *experiments.Workloads, benches []*experiments.Bench, opt Options, ck *Checkpoint) (*Result, error) {
	opt = opt.withDefaults()
	if len(benches) == 0 {
		return nil, fmt.Errorf("explore: no workloads to evaluate")
	}

	s := &searcher{
		w:       w,
		benches: benches,
		opt:     opt,
		archive: map[Genome]*Eval{},
	}

	gen := 0
	if ck != nil {
		var err error
		if gen, err = s.restore(ck); err != nil {
			return nil, err
		}
	}

	// The budget counts unique evaluations; a pathological lattice corner
	// where every offspring is already archived would stall it, so a
	// generous generation cap bounds the loop deterministically.
	maxGens := 4*opt.Budget/opt.Pop + 8
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("explore: search stopped: %w", err)
		}
		if gen > 0 && (s.evals >= opt.Budget || gen >= maxGens) {
			break
		}
		rng := genRNG(opt.Seed, gen)
		var cohort []Genome
		if gen == 0 {
			cohort = s.initialPopulation(rng)
		} else {
			cohort = s.offspring(rng)
		}
		fresh, err := s.evaluate(cohort, gen)
		if err != nil {
			return nil, err
		}
		s.selectNext(cohort)
		if ck != nil {
			if err := ck.appendGen(gen, s.evals, s.pop, fresh); err != nil {
				return nil, err
			}
		}
		if opt.Log != nil {
			front := s.front()
			fmt.Fprintf(opt.Log, "explore: gen %d: %d evals (%d new), front %d points%s\n",
				gen, s.evals, len(fresh), len(front), bestPoint(front))
		}
		gen++
	}

	front := s.front()
	digest, err := FrontDigest(front)
	if err != nil {
		return nil, err
	}
	return &Result{Front: front, Digest: digest, Generations: gen, Evaluations: s.evals}, nil
}

// SelectBenches resolves a workload-name subset against a loaded suite, in
// the order given (the geomean is computed in this order, so it is part of
// the determinism contract and of the checkpoint meta). Empty names selects
// the whole suite in suite order.
func SelectBenches(w *experiments.Workloads, names []string) ([]*experiments.Bench, error) {
	if len(names) == 0 {
		return w.Benches, nil
	}
	byName := make(map[string]*experiments.Bench, len(w.Benches))
	for _, b := range w.Benches {
		byName[b.Name] = b
	}
	out := make([]*experiments.Bench, 0, len(names))
	seen := map[string]bool{}
	for _, n := range names {
		b, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("explore: unknown workload %q", n)
		}
		if seen[n] {
			return nil, fmt.Errorf("explore: duplicate workload %q", n)
		}
		seen[n] = true
		out = append(out, b)
	}
	return out, nil
}

// genRNG derives generation g's RNG. Reseeding per generation (rather than
// streaming one RNG across the run) is what makes resume exact: a restored
// search re-enters generation g with precisely the randomness the original
// process would have used, with no RNG state to serialize.
func genRNG(seed int64, g int) *rand.Rand {
	const genStride uint64 = 0x9E3779B97F4A7C15 // 2^64/phi, as a mixing stride
	return rand.New(rand.NewSource(seed + int64(uint64(g)*genStride)))
}

type searcher struct {
	w       *experiments.Workloads
	benches []*experiments.Bench
	opt     Options

	pop     []Genome         // current parent population, order significant
	archive map[Genome]*Eval // every genome ever evaluated
	evals   int              // unique genomes simulated (archive size)
}

func (s *searcher) initialPopulation(rng *rand.Rand) []Genome {
	cohort := make([]Genome, 0, s.opt.Pop)
	seen := map[Genome]bool{}
	for len(cohort) < s.opt.Pop {
		g := randomGenome(rng)
		if seen[g] {
			continue
		}
		seen[g] = true
		cohort = append(cohort, g)
	}
	return cohort
}

// offspring breeds one cohort from the current population via binary
// tournament selection, crossover, and mutation, plus a couple of random
// immigrants per generation. All serial, all on the generation RNG.
//
// The immigrants matter more than their count suggests: the four core
// paradigms occupy different cost bands, and a population that converges on
// one paradigm early (cheap in-order/dep-steer machines dominate the
// low-cost end of the front) would otherwise never re-explore the others —
// exactly the failure mode that makes a search miss the braid region.
func (s *searcher) offspring(rng *rand.Rand) []Genome {
	ranked := s.rankedPopulation()
	immigrants := s.opt.Pop / 8
	if immigrants < 2 {
		immigrants = 2
	}
	cohort := make([]Genome, 0, s.opt.Pop)
	for len(cohort) < immigrants {
		cohort = append(cohort, randomGenome(rng))
	}
	for len(cohort) < s.opt.Pop {
		a := s.tournament(ranked, rng)
		b := s.tournament(ranked, rng)
		child := a
		if rng.Float64() < 0.9 {
			child = crossover(a, b, rng)
		}
		mutate(&child, rng)
		// Re-mutate already-evaluated children a few times: duplicates
		// cost a cohort slot without buying an evaluation.
		for tries := 0; tries < 3; tries++ {
			if _, ok := s.archive[child]; !ok {
				break
			}
			mutate(&child, rng)
		}
		cohort = append(cohort, child)
	}
	return cohort
}

// evaluate simulates every not-yet-archived genome in the cohort through one
// IPCAll fan-out and archives the outcomes. Returned evals are the freshly
// evaluated ones in first-appearance cohort order (the checkpoint records
// exactly these). Evaluation order independence: IPCAll's result map is
// keyed by Point, so scheduling does not affect which value lands where.
func (s *searcher) evaluate(cohort []Genome, gen int) ([]Eval, error) {
	type job struct {
		g      Genome
		cfg    uarch.Config
		inject bool
	}
	var jobs []job
	seen := map[Genome]bool{}
	for _, g := range cohort {
		if _, ok := s.archive[g]; ok || seen[g] {
			continue
		}
		seen[g] = true
		cfg, err := g.Config()
		if err != nil {
			// Unreachable for lattice-derived genomes; archive as
			// infeasible so a corrupt checkpoint cannot loop forever.
			s.archiveEval(Eval{Genome: g, Cost: math.Inf(1), Gen: gen})
			continue
		}
		s.evals++
		j := job{g: g, cfg: cfg}
		if s.opt.InjectFaultAt > 0 && s.evals == s.opt.InjectFaultAt {
			// Arm the fault injector: a calendar-queue drop a short way in,
			// with the paranoid checker on to catch it. The Inject pointer
			// keeps this run's memo key distinct from the clean config's.
			j.cfg.Paranoid = true
			j.cfg.Inject = &uarch.FaultPlan{Kind: uarch.FaultCalendarDrop, AtCycle: 500}
			j.inject = true
		}
		jobs = append(jobs, j)
	}

	var points []experiments.Point
	for _, j := range jobs {
		for _, b := range s.benches {
			points = append(points, experiments.Point{Bench: b, Braided: j.g.Braided(), Cfg: j.cfg})
		}
	}
	got, err := s.w.IPCAll(points)
	if err != nil {
		return nil, err
	}

	fresh := make([]Eval, 0, len(jobs))
	for _, j := range jobs {
		ev := Eval{Genome: j.g, Cost: uarch.EstimateComplexity(j.cfg).Total(), Gen: gen, Feasible: true}
		logSum := 0.0
		for _, b := range s.benches {
			v, ok := got[experiments.Point{Bench: b, Braided: j.g.Braided(), Cfg: j.cfg}]
			if !ok || v <= 0 {
				// A contained failure on any workload disqualifies the
				// machine: a config that faults or never finishes is not a
				// design point, whatever its other numbers.
				ev.Feasible = false
				break
			}
			logSum += math.Log(v)
		}
		if ev.Feasible {
			ev.IPC = math.Exp(logSum / float64(len(s.benches)))
		}
		s.archiveEval(ev)
		fresh = append(fresh, ev)
	}
	return fresh, nil
}

func (s *searcher) archiveEval(ev Eval) {
	e := ev
	s.archive[ev.Genome] = &e
}

// selectNext forms the next parent population from the current parents plus
// the cohort: non-dominated sort, fill by rank, break the last rank by
// crowding distance. Duplicates collapse (the archive is keyed by genome),
// keeping selection pressure on diversity.
func (s *searcher) selectNext(cohort []Genome) {
	union := make([]Genome, 0, len(s.pop)+len(cohort))
	seen := map[Genome]bool{}
	for _, g := range append(append([]Genome{}, s.pop...), cohort...) {
		if seen[g] {
			continue
		}
		seen[g] = true
		union = append(union, g)
	}
	fronts := s.sortNonDominated(union)
	next := make([]Genome, 0, s.opt.Pop)
	for _, fr := range fronts {
		if len(next)+len(fr) <= s.opt.Pop {
			next = append(next, fr...)
			continue
		}
		byCrowding := s.crowdingOrder(fr)
		next = append(next, byCrowding[:s.opt.Pop-len(next)]...)
		break
	}
	s.pop = next
}

// rankedPopulation maps each population genome to its (rank, crowding) for
// tournament selection.
type rankedGenome struct {
	g        Genome
	rank     int
	crowding float64
}

func (s *searcher) rankedPopulation() []rankedGenome {
	fronts := s.sortNonDominated(s.pop)
	var out []rankedGenome
	for rank, fr := range fronts {
		ordered := s.crowdingOrder(fr)
		for i, g := range ordered {
			// Earlier in crowding order = less crowded = preferred.
			out = append(out, rankedGenome{g: g, rank: rank, crowding: -float64(i)})
		}
	}
	return out
}

func (s *searcher) tournament(ranked []rankedGenome, rng *rand.Rand) Genome {
	a := ranked[rng.Intn(len(ranked))]
	b := ranked[rng.Intn(len(ranked))]
	if b.rank < a.rank || (b.rank == a.rank && b.crowding > a.crowding) {
		return b.g
	}
	return a.g
}

// dominates implements feasibility-first Pareto dominance: any feasible
// evaluation dominates any infeasible one; between feasible evaluations, a
// dominates b when it is no worse on both objectives (IPC up, cost down) and
// strictly better on at least one.
func dominates(a, b *Eval) bool {
	if a.Feasible != b.Feasible {
		return a.Feasible
	}
	if !a.Feasible {
		return false
	}
	return a.IPC >= b.IPC && a.Cost <= b.Cost && (a.IPC > b.IPC || a.Cost < b.Cost)
}

// sortNonDominated partitions genomes into fronts: front 0 is non-dominated,
// front k+1 is non-dominated once fronts <= k are removed. Within a front,
// genomes keep canonical order so downstream iteration is deterministic.
func (s *searcher) sortNonDominated(gs []Genome) [][]Genome {
	rest := make([]Genome, len(gs))
	copy(rest, gs)
	sortGenomes(rest, s.archive)
	var fronts [][]Genome
	for len(rest) > 0 {
		var front, rem []Genome
		for _, g := range rest {
			dominated := false
			for _, h := range rest {
				if h != g && dominates(s.archive[h], s.archive[g]) {
					dominated = true
					break
				}
			}
			if dominated {
				rem = append(rem, g)
			} else {
				front = append(front, g)
			}
		}
		if len(front) == 0 { // all mutually dominated cannot happen; guard anyway
			front, rem = rest, nil
		}
		fronts = append(fronts, front)
		rest = rem
	}
	return fronts
}

// crowdingOrder returns the front's genomes most-spread-first: boundary
// points (extreme IPC or cost) first, then descending crowding distance.
// Ties break canonically on the genome, keeping the order deterministic.
func (s *searcher) crowdingOrder(front []Genome) []Genome {
	n := len(front)
	out := make([]Genome, n)
	copy(out, front)
	if n <= 2 {
		sortGenomes(out, s.archive)
		return out
	}
	dist := make(map[Genome]float64, n)
	for _, obj := range []func(*Eval) float64{
		func(e *Eval) float64 { return e.IPC },
		func(e *Eval) float64 { return e.Cost },
	} {
		byObj := make([]Genome, n)
		copy(byObj, out)
		sort.SliceStable(byObj, func(i, j int) bool {
			a, b := s.archive[byObj[i]], s.archive[byObj[j]]
			if obj(a) != obj(b) {
				return obj(a) < obj(b)
			}
			return lessGenome(byObj[i], byObj[j])
		})
		lo, hi := obj(s.archive[byObj[0]]), obj(s.archive[byObj[n-1]])
		span := hi - lo
		dist[byObj[0]] = math.Inf(1)
		dist[byObj[n-1]] = math.Inf(1)
		if span == 0 {
			continue
		}
		for i := 1; i < n-1; i++ {
			d := (obj(s.archive[byObj[i+1]]) - obj(s.archive[byObj[i-1]])) / span
			dist[byObj[i]] += d
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if dist[out[i]] != dist[out[j]] {
			return dist[out[i]] > dist[out[j]]
		}
		return lessGenome(out[i], out[j])
	})
	return out
}

// front computes the global non-dominated set over every feasible archived
// evaluation — not just the final population — in canonical order: ascending
// cost, then descending IPC, then genome.
func (s *searcher) front() []Eval {
	var all []*Eval
	for _, e := range s.archive {
		if e.Feasible {
			all = append(all, e)
		}
	}
	var front []Eval
	for _, e := range all {
		dominated := false
		for _, o := range all {
			if o != e && dominates(o, e) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, *e)
		}
	}
	sort.Slice(front, func(i, j int) bool {
		if front[i].Cost != front[j].Cost {
			return front[i].Cost < front[j].Cost
		}
		if front[i].IPC != front[j].IPC {
			return front[i].IPC > front[j].IPC
		}
		return lessGenome(front[i].Genome, front[j].Genome)
	})
	// Equal-objective duplicates (distinct genomes, same point) would bloat
	// the front without adding information; keep the canonical first.
	dedup := front[:0]
	for i, e := range front {
		if i > 0 && e.IPC == front[i-1].IPC && e.Cost == front[i-1].Cost {
			continue
		}
		dedup = append(dedup, e)
	}
	return dedup
}

// FrontDigest is the sha256 over the canonical JSON of a front. Byte
// identity of this digest across -j 1 / -j N and across interrupt/resume is
// the package's determinism contract, asserted in CI.
func FrontDigest(front []Eval) (string, error) {
	data, err := json.Marshal(front)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}

// lessGenome is the canonical total order on genomes (field-lexicographic).
func lessGenome(a, b Genome) bool {
	for _, ge := range genes {
		av, bv := *ge.get(&a), *ge.get(&b)
		if av != bv {
			return av < bv
		}
	}
	return false
}

func sortGenomes(gs []Genome, _ map[Genome]*Eval) {
	sort.Slice(gs, func(i, j int) bool { return lessGenome(gs[i], gs[j]) })
}

// bestPoint renders the highest-IPC front point for progress logs.
func bestPoint(front []Eval) string {
	if len(front) == 0 {
		return ""
	}
	best := front[0]
	for _, e := range front[1:] {
		if e.IPC > best.IPC {
			best = e
		}
	}
	return fmt.Sprintf(", best %s ipc %.3f cost %.0f", best.Genome, best.IPC, best.Cost)
}
