package check

import (
	"context"
	"fmt"

	"braid/internal/experiments"
	"braid/internal/isa"
	"braid/internal/uarch"
)

// Property re-runs a check over a candidate program, returning a non-nil
// Finding while the failure being shrunk still reproduces. Candidates are
// structurally valid (Program.Validate passes) but semantically arbitrary
// — a Property must treat interpreter errors (non-halting candidates) as
// "does not reproduce", which a checker built from Lockstep/Equivalence
// does naturally by reporting them under a different Kind.
type Property func(p *isa.Program) *Finding

// Shrink greedily minimizes p while prop keeps failing with the same Kind,
// using delta debugging over instruction ranges: whole blocks first, then
// exponentially smaller chunks down to single instructions, re-assembling
// branch targets around every deletion and re-validating the candidate
// before re-checking it. It returns the smallest reproducing program found
// together with its Finding; if prop does not fail on p itself, it returns
// (p, nil) — the failure was not reproducible, which callers should treat
// as a flake worth reporting.
func Shrink(ctx context.Context, p *isa.Program, prop Property) (*isa.Program, *Finding) {
	cur := p.Clone()
	best := prop(cur)
	if best == nil {
		return p, nil
	}
	kind := best.Kind

	chunk := len(cur.Instrs) / 2
	if chunk < 1 {
		chunk = 1
	}
	for chunk >= 1 {
		improved := false
		for start := 0; start < len(cur.Instrs) && ctx.Err() == nil; {
			end := start + chunk
			if end > len(cur.Instrs) {
				end = len(cur.Instrs)
			}
			cand, ok := removeRange(cur, start, end)
			if ok {
				if f := prop(cand); f != nil && f.Kind == kind {
					cur, best = cand, f
					improved = true
					// Indices shifted left; retry the same offset.
					continue
				}
			}
			start += chunk
		}
		if ctx.Err() != nil {
			break
		}
		if !improved {
			if chunk == 1 {
				break
			}
			chunk /= 2
		}
	}
	cur.Name = p.Name + ".shrunk"
	best.Prog = cur
	return cur, best
}

// removeRange deletes instructions [lo, hi) from p, remapping every branch
// so surviving control flow lands where it used to: a target inside the
// deleted range advances to the first surviving instruction at or after
// it. The final instruction (the HALT or closing branch the validator
// requires) is never deleted. Returns false when the deletion is empty or
// produces an invalid program.
func removeRange(p *isa.Program, lo, hi int) (*isa.Program, bool) {
	n := len(p.Instrs)
	if hi > n-1 {
		hi = n - 1 // keep the terminator
	}
	if lo < 0 || lo >= hi {
		return nil, false
	}
	// newIdx[i] is the post-deletion index of the first surviving
	// instruction at or after old index i.
	newIdx := make([]int, n+1)
	kept := 0
	for i := 0; i < n; i++ {
		newIdx[i] = kept
		if i < lo || i >= hi {
			kept++
		}
	}
	newIdx[n] = kept

	out := &isa.Program{Name: p.Name, FP: p.FP}
	out.Data = append([]byte(nil), p.Data...)
	out.Instrs = make([]isa.Instruction, 0, kept)
	for i := 0; i < n; i++ {
		if i >= lo && i < hi {
			continue
		}
		in := p.Instrs[i] // copy
		if in.IsBranch() {
			t := in.BranchTarget(i)
			if t < 0 || t > n {
				return nil, false
			}
			in.SetBranchTarget(len(out.Instrs), newIdx[t])
		}
		out.Instrs = append(out.Instrs, in)
	}
	if out.Validate() != nil {
		return nil, false
	}
	return out, true
}

// WriteArtifact emits a PR-3-style crash artifact for a finding: the
// program image (.brd) plus a JSON descriptor with the exhibiting
// configuration, replayable with braidsim -config <json>. Findings without
// a configuration (compiler-equivalence violations) are written against
// the default out-of-order machine so the replay still demonstrates the
// offending program.
func WriteArtifact(dir string, f *Finding) (string, error) {
	if f == nil || f.Prog == nil {
		return "", fmt.Errorf("check: no program attached to finding")
	}
	cfg := uarch.OutOfOrderConfig(8)
	braided := false
	if f.Cfg != nil {
		cfg = *f.Cfg
		braided = cfg.Core == uarch.CoreBraid
	}
	sf := &uarch.SimFault{
		Core:    cfg.Core,
		Program: f.Program,
		Panic:   f.String(),
	}
	return experiments.WriteCrashArtifact(dir, sanitize(f.Program+"-"+f.Kind), braided, f.Prog, cfg, sf)
}

// sanitize keeps artifact stems filesystem-safe.
func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '-', r == '_', r == '.':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
