package uarch

import (
	"testing"

	"braid/internal/braid"
	"braid/internal/workload"
)

// TestFastForwardEquivalence pins the fast-forward invariant directly: for
// every golden configuration, simulating every cycle (NoFastForward) and
// skipping provably idle stretches must produce the identical complete
// observable timing state — every Stats field and every cache counter.
func TestFastForwardEquivalence(t *testing.T) {
	progs := goldenPrograms(t)
	for _, name := range []string{"mcf", "gcc"} {
		pair := progs[name]
		for _, pt := range goldenPoints() {
			p := pair[0]
			if pt.braided {
				p = pair[1]
			}
			lines := [2]string{}
			for i, noFF := range []bool{false, true} {
				cfg := pt.cfg
				cfg.NoFastForward = noFF
				m, err := New(p, cfg)
				if err != nil {
					t.Fatalf("%s/%s: %v", name, pt.label, err)
				}
				st, err := m.Run()
				if err != nil {
					t.Fatalf("%s/%s (noFF=%v): %v", name, pt.label, noFF, err)
				}
				lines[i] = goldenLine(st, m)
			}
			if lines[0] != lines[1] {
				t.Errorf("%s/%s: fast-forward changed observable state\n fast %s\n full %s",
					name, pt.label, lines[0], lines[1])
			}
		}
	}
}

// TestSteadyStateZeroAlloc asserts the tentpole allocation contract: once the
// arena, rings, and completion calendar have warmed up, a Machine step
// allocates nothing. A regression here (a stray append, a resurrected
// per-cycle slice) shows up as a non-zero allocation rate immediately.
func TestSteadyStateZeroAlloc(t *testing.T) {
	prof, ok := workload.ProfileByName("gcc")
	if !ok {
		t.Fatal("no profile gcc")
	}
	p, err := workload.Generate(prof, 4000)
	if err != nil {
		t.Fatal(err)
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		label   string
		braided bool
		cfg     Config
	}{
		{"ooo-8", false, OutOfOrderConfig(8)},
		{"braid-8", true, BraidConfig(8)},
	}
	for _, c := range cases {
		t.Run(c.label, func(t *testing.T) {
			prog := p
			if c.braided {
				prog = res.Prog
			}
			m, err := New(prog, c.cfg)
			if err != nil {
				t.Fatal(err)
			}
			// Warm up: let the arena, the fetch/ROB/LSQ rings, the
			// completion calendar, and the writeback scratch lists reach
			// their steady-state capacities.
			for i := 0; i < 20000; i++ {
				if m.step() {
					t.Fatalf("program finished during warm-up at step %d", i)
				}
			}
			avg := testing.AllocsPerRun(500, func() {
				if m.step() {
					t.Fatal("program finished during measurement")
				}
			})
			if avg != 0 {
				t.Errorf("warm Machine.step allocates %.2f objects/step, want 0", avg)
			}
		})
	}
}

// sanity-check the helper used above so a silent workload change cannot turn
// the zero-alloc test into a no-op.
func TestZeroAllocWorkloadIsLongEnough(t *testing.T) {
	prof, _ := workload.ProfileByName("gcc")
	p, err := workload.Generate(prof, 4000)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(p, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	steps := 0
	for !m.step() {
		steps++
		if steps > 25000 {
			return // comfortably longer than warm-up + measurement
		}
	}
	t.Fatalf("workload too short for the zero-alloc test: finished in %d steps", steps)
}
