package uarch

import (
	"context"
	"errors"
	"strings"
	"testing"

	"braid/internal/workload"
)

// failingWriter accepts the first n writes and then fails every write with
// err, modeling a pipe that closes or a disk that fills mid-run.
type failingWriter struct {
	n      int
	err    error
	writes int
}

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.writes >= f.n {
		return 0, f.err
	}
	f.writes++
	return len(p), nil
}

var errSinkBroken = errors.New("sink broken")

// TestTraceWriterErrorSurfaces: a failing trace sink must not be dropped on
// the floor — Run reports the first write error even though the simulation
// itself completed, and output stops at the failure.
func TestTraceWriterErrorSurfaces(t *testing.T) {
	k, _ := workload.KernelByName("dot")
	for _, allowed := range []int{0, 1, 5} {
		m, err := New(k, OutOfOrderConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		fw := &failingWriter{n: allowed, err: errSinkBroken}
		m.SetTrace(fw, 0)
		st, err := m.Run()
		if err == nil {
			t.Fatalf("allowed=%d: write failure did not surface", allowed)
		}
		if !errors.Is(err, errSinkBroken) {
			t.Fatalf("allowed=%d: error %v does not wrap the writer's error", allowed, err)
		}
		if !strings.Contains(err.Error(), "trace") {
			t.Errorf("allowed=%d: error %q does not name the trace sink", allowed, err)
		}
		if st != nil {
			t.Errorf("allowed=%d: stats returned alongside the error", allowed)
		}
		if fw.writes != allowed {
			t.Errorf("allowed=%d: writer saw %d successful writes; output must stop at the first failure", allowed, fw.writes)
		}
	}
}

// TestKonataWriterErrorSurfaces is the Kanata-log variant, through the
// RunChecked entry point suite runners use.
func TestKonataWriterErrorSurfaces(t *testing.T) {
	k, _ := workload.KernelByName("fig2")
	m, err := New(k, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	m.SetKonata(&failingWriter{n: 3, err: errSinkBroken}, 0)
	st, err := m.RunChecked(context.Background())
	if err == nil {
		t.Fatal("konata write failure did not surface from RunChecked")
	}
	if !errors.Is(err, errSinkBroken) {
		t.Fatalf("error %v does not wrap the writer's error", err)
	}
	if !strings.Contains(err.Error(), "konata") {
		t.Errorf("error %q does not name the konata sink", err)
	}
	if st != nil {
		t.Error("stats returned alongside the error")
	}
}

// TestHealthyWritersStillSucceed pins the non-failing path: attaching both
// logs to working sinks must not turn a good run into an error.
func TestHealthyWritersStillSucceed(t *testing.T) {
	k, _ := workload.KernelByName("dot")
	m, err := New(k, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	var tb, kb strings.Builder
	m.SetTrace(&tb, 10)
	m.SetKonata(&kb, 10)
	if _, err := m.Run(); err != nil {
		t.Fatalf("healthy writers broke the run: %v", err)
	}
	if tb.Len() == 0 || kb.Len() == 0 {
		t.Error("no log output written")
	}
}
