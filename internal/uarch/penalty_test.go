package uarch

import (
	"bytes"
	"strings"
	"testing"

	"braid/internal/asm"
	"braid/internal/isa"
)

// TestMispredictPenaltyExact measures the configured minimum misprediction
// penalty to the cycle. A cold perceptron (all-zero weights) predicts taken,
// so a single never-taken branch mispredicts exactly once; comparing against
// the same program with the branch replaced by a NOP isolates the penalty.
func TestMispredictPenaltyExact(t *testing.T) {
	build := func(branch bool) *isa.Program {
		mid := "\tnop\n"
		if branch {
			mid = "\tbne r31, skip\n" // r31 is always zero: never taken
		}
		src := `
.name penalty
	ldimm r1, #1
` + mid + `skip:
	add r2, r1, #1
	add r3, r2, #1
	add r4, r3, #1
	halt
`
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		return p
	}

	for _, tc := range []struct {
		name string
		cfg  Config
	}{
		{"ooo-23", OutOfOrderConfig(8)},
		{"braid-19-frontend", func() Config {
			// Use the braid front end but a conventional core, so the
			// measurement isolates the front end (a braided program is
			// not needed).
			c := OutOfOrderConfig(8)
			c.FrontDepth = 8
			c.MispredictMin = 19
			return c
		}()},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			with, err := Simulate(build(true), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			without, err := Simulate(build(false), tc.cfg)
			if err != nil {
				t.Fatal(err)
			}
			penalty := int64(with.Cycles) - int64(without.Cycles)
			if with.Mispredicts != 1 {
				t.Fatalf("expected exactly one misprediction, got %d", with.Mispredicts)
			}
			want := int64(tc.cfg.MispredictMin)
			// The dependent add chain behind the branch re-fills the
			// pipeline, so the end-to-end cost equals the configured
			// minimum penalty exactly.
			if penalty != want {
				t.Errorf("measured penalty %d cycles, configured minimum %d", penalty, want)
			}
		})
	}
}

// TestPipelineDepthDifference verifies the braid machine's four-stage-shorter
// front end end to end: same program, same penalty mechanics, four cycles
// less.
func TestPipelineDepthDifference(t *testing.T) {
	src := `
.name depth
	ldimm r1, #1
	bne r31, skip
skip:
	add r2, r1, #1
	halt
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	long := OutOfOrderConfig(8) // FrontDepth 12, penalty 23
	short := OutOfOrderConfig(8)
	short.FrontDepth = 8
	short.MispredictMin = 19
	sl, err := Simulate(p, long)
	if err != nil {
		t.Fatal(err)
	}
	ss, err := Simulate(p, short)
	if err != nil {
		t.Fatal(err)
	}
	if diff := int64(sl.Cycles) - int64(ss.Cycles); diff != 8 {
		// 4 cycles of front-end depth on the initial fill plus 4
		// cycles of misprediction penalty.
		t.Errorf("cycle difference %d, want 8 (4 fill + 4 penalty)", diff)
	}
}

func TestKonataOutput(t *testing.T) {
	src := `
	ldimm r1, #3
	add r2, r1, #1
	halt
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	m, err := New(p, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	m.SetKonata(&buf, 0)
	st, err := m.Run()
	if err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "Kanata\t0004\n") {
		t.Error("missing Kanata header")
	}
	for _, stage := range []string{"\tF\n", "\tDs\n", "\tX\n", "\tWb\n", "\tCm\n"} {
		if !strings.Contains(out, stage) {
			t.Errorf("missing stage record %q", strings.TrimSpace(stage))
		}
	}
	if got := strings.Count(out, "\nR\t"); got != int(st.Retired) {
		t.Errorf("%d retire records for %d retired instructions", got, st.Retired)
	}
	if !strings.Contains(out, "add r2, r1, #1") {
		t.Error("missing instruction label")
	}
}
