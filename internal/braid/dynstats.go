package braid

// DynamicStats aggregates Tables 1-3 weighted by dynamic execution counts,
// the way a profiling run over a benchmark weights them. Feed it the index
// of every retired instruction of the braided program (in retirement order);
// braid and block entries are counted via the braid-start positions.
type DynamicStats struct {
	res        *Result
	braidCount []uint64
	firstOf    []bool // braid index -> is the first braid of its block
	retired    uint64
}

// NewDynamicStats prepares a collector for res.
func NewDynamicStats(res *Result) *DynamicStats {
	d := &DynamicStats{
		res:        res,
		braidCount: make([]uint64, len(res.Braids)),
		firstOf:    make([]bool, len(res.Braids)),
	}
	prevBlock := -1
	for i := range res.Braids {
		if res.Braids[i].Block != prevBlock {
			d.firstOf[i] = true
			prevBlock = res.Braids[i].Block
		}
	}
	return d
}

// OnRetire records the retirement of the braided program's instruction idx.
func (d *DynamicStats) OnRetire(idx int) {
	d.retired++
	bi := d.res.BraidOf[idx]
	if d.res.Braids[bi].Start == idx {
		d.braidCount[bi]++
	}
}

// Stats returns the execution-weighted aggregate.
func (d *DynamicStats) Stats() Stats {
	var s Stats
	s.Instrs = int(d.retired)
	for i := range d.res.Braids {
		b := &d.res.Braids[i]
		c := d.braidCount[i]
		if c == 0 {
			continue
		}
		n := int(c)
		if d.firstOf[i] {
			s.Blocks += n
		}
		size := b.Size()
		s.Braids += n
		s.sumSizeAll += size * n
		s.sumWidthAll += b.Width() * float64(n)
		s.sumIntAll += b.Internals * n
		s.sumExtInAll += b.ExtInputs * n
		s.sumExtOutAll += b.ExtOutputs * n
		s.sumCritAll += b.CritPath * n
		s.braidsCountable += n
		if size <= 32 {
			s.braidsLE32 += n
		}
		if b.Single() {
			s.Singles += n
			in := &d.res.Prog.Instrs[b.Start]
			if in.IsBranch() || in.IsNop() || in.IsHalt() {
				s.SingleBranchNops += n
			}
			continue
		}
		s.sumSize += size * n
		s.sumWidth += b.Width() * float64(n)
		s.sumInt += b.Internals * n
		s.sumExtIn += b.ExtInputs * n
		s.sumExtOut += b.ExtOutputs * n
		s.sumCrit += b.CritPath * n
	}
	return s
}
