package remote

import (
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"braid/internal/chaos"
	"braid/internal/experiments"
	"braid/internal/service"
	"braid/internal/uarch"
)

// soakOutcome summarizes one chaos sweep for the breaker-on/off comparison.
type soakOutcome struct {
	stats    Stats
	injected int64
}

// soakPoints is the sweep grid: every suite benchmark on three out-of-order
// widths and the 8-wide braid machine — enough distinct points that the
// sweep outlives several flap periods when run in paced waves.
func soakPoints(w *experiments.Workloads) []experiments.Point {
	var points []experiments.Point
	for _, b := range w.Benches {
		for _, width := range []int{2, 4, 8} {
			points = append(points, experiments.Point{Bench: b, Cfg: uarch.OutOfOrderConfig(width)})
		}
		points = append(points, experiments.Point{Bench: b, Braided: true, Cfg: uarch.BraidConfig(8)})
	}
	return points
}

// runChaosSweep runs one full sweep against a two-backend fleet — one
// healthy, one flapping down 2s / up 2s (starting down) — in paced waves so
// the sweep spans multiple flap periods, and demands bit-identical
// convergence with zero failed design points. It returns the pool counters
// for the breaker-on vs breaker-off comparison.
func runChaosSweep(t *testing.T, disableBreaker bool) soakOutcome {
	t.Helper()
	healthy := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer healthy.Close()
	backend := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer backend.Close()
	flap := chaos.Flap(2*time.Second, 2*time.Second)
	cp, err := chaos.New(backend.URL, flap.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(cp)
	defer proxy.Close()

	pool, err := NewPool(Options{
		Backends:    []string{healthy.URL, proxy.URL},
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		// Trip fast and cool down for 1s: the request path short-circuits
		// the down backend almost immediately, and the prober (breaker-on
		// only) reinstates it within a probe interval of the up transition.
		DisableBreaker:   disableBreaker,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !disableBreaker {
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		stop := pool.StartProber(ctx, 250*time.Millisecond)
		defer stop()
	}

	w, err := experiments.LoadSuiteJobs(1500, 0)
	if err != nil {
		t.Fatal(err)
	}
	points := soakPoints(w)

	// Ground truth, in-process: the determinism reference every remote
	// result must match bit for bit (IPC is derived from exact Stats).
	want := make(map[experiments.Point]float64, len(points))
	for _, pt := range points {
		p := pt.Bench.Orig
		if pt.Braided {
			p = pt.Bench.Braided
		}
		st, err := uarch.SimulateChecked(context.Background(), p, pt.Cfg)
		if err != nil {
			t.Fatalf("local %s: %v", pt.Bench.Name, err)
		}
		want[pt] = st.IPC()
	}

	w.SetRunner(pool)
	w.SetJobs(8)
	got := make(map[experiments.Point]float64, len(points))
	const waveSize = 8
	for start := 0; start < len(points); start += waveSize {
		end := start + waveSize
		if end > len(points) {
			end = len(points)
		}
		res, err := w.IPCAll(points[start:end])
		if err != nil {
			t.Fatalf("breaker=%v wave at %d: %v", !disableBreaker, start, err)
		}
		for pt, ipc := range res {
			got[pt] = ipc
		}
		// Pace the waves so the sweep spans several down/up transitions
		// instead of finishing inside the first phase.
		time.Sleep(400 * time.Millisecond)
	}

	for pt, wantIPC := range want {
		if got[pt] != wantIPC {
			t.Errorf("breaker=%v %s braided=%v width=%d: IPC %v != local %v",
				!disableBreaker, pt.Bench.Name, pt.Braided, pt.Cfg.IssueWidth, got[pt], wantIPC)
		}
	}
	if fails := w.Failures(); len(fails) > 0 {
		t.Errorf("breaker=%v: %d failed design points under flapping backend: %v",
			!disableBreaker, len(fails), fails)
	}
	if runs := w.SimRuns(); runs != uint64(len(points)) {
		t.Errorf("breaker=%v: sim runs = %d, want %d", !disableBreaker, runs, len(points))
	}
	out := soakOutcome{stats: pool.Snapshot(), injected: cp.Faults()}
	t.Logf("breaker=%v: pool %s; injected %s", !disableBreaker, pool, cp.Counters())
	return out
}

// TestChaosSoakBreakerHalvesWastedAttempts is the self-healing acceptance
// soak: with one backend flapping down 2s / up 2s and one healthy, a full
// sweep must converge bit-identically to local results with zero failed
// design points both with and without circuit breakers — and the breakers
// must pay for themselves by issuing at least 50% fewer failed request
// attempts under the identical fault schedule.
func TestChaosSoakBreakerHalvesWastedAttempts(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos soak")
	}
	on := runChaosSweep(t, false)
	off := runChaosSweep(t, true)

	if on.injected == 0 || off.injected == 0 {
		t.Fatalf("a proxy never injected a fault (on=%d off=%d); the soak proved nothing",
			on.injected, off.injected)
	}
	if on.stats.BreakerTrips == 0 {
		t.Error("breakers never tripped under a flapping backend")
	}
	if on.stats.ShortCircuits == 0 {
		t.Error("breakers never short-circuited a request; they saved nothing")
	}
	if off.stats.FailedAttempts == 0 {
		t.Fatal("breaker-off run recorded no failed attempts; the comparison is vacuous")
	}
	if 2*on.stats.FailedAttempts > off.stats.FailedAttempts {
		t.Errorf("breakers saved too little: %d failed attempts with breakers vs %d without (need ≥50%% fewer)",
			on.stats.FailedAttempts, off.stats.FailedAttempts)
	}
	t.Logf("failed attempts: %d with breakers, %d without (%.0f%% saved); %d trips, %d short-circuits, %d probe failures",
		on.stats.FailedAttempts, off.stats.FailedAttempts,
		100*(1-float64(on.stats.FailedAttempts)/float64(off.stats.FailedAttempts)),
		on.stats.BreakerTrips, on.stats.ShortCircuits, on.stats.ProbeFailures)
}
