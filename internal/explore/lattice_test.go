package explore

import (
	"math/rand"
	"testing"

	"braid/internal/uarch"
)

// TestLatticeAlwaysBuildsValidMachines: whatever the genetic operators do,
// every representable genome must derive a Config that Validate accepts —
// the search must be unable to construct a nonsense machine.
func TestLatticeAlwaysBuildsValidMachines(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := randomGenome(rng)
	for i := 0; i < 2000; i++ {
		switch i % 3 {
		case 0:
			g = randomGenome(rng)
		case 1:
			mutate(&g, rng)
		case 2:
			g = crossover(g, randomGenome(rng), rng)
		}
		cfg, err := g.Config()
		if err != nil {
			t.Fatalf("iteration %d: genome %s: %v", i, g, err)
		}
		if err := cfg.Validate(); err != nil {
			t.Fatalf("iteration %d: derived config invalid: %v", i, err)
		}
		if (cfg.Core == uarch.CoreBraid) != g.Braided() {
			t.Fatalf("iteration %d: Braided()=%v but core %s", i, g.Braided(), cfg.Core)
		}
		if uarch.EstimateComplexity(cfg).Total() <= 0 {
			t.Fatalf("iteration %d: nonpositive complexity", i)
		}
	}
}

// TestGenomeOutsideLatticeRejected: indices beyond the tables — a checkpoint
// from a different lattice — are refused rather than crashing table lookups.
func TestGenomeOutsideLatticeRejected(t *testing.T) {
	g := Genome{Core: int8(len(Cores))}
	if g.valid() {
		t.Fatal("out-of-range core index accepted")
	}
	if _, err := g.Config(); err == nil {
		t.Fatal("Config built from out-of-lattice genome")
	}
	g = Genome{ERF: -1}
	if g.valid() {
		t.Fatal("negative index accepted")
	}
}

// TestMutateAlwaysChanges: a mutation that returns its input would burn a
// cohort slot on a genome the archive already holds.
func TestMutateAlwaysChanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 500; i++ {
		g := randomGenome(rng)
		before := g
		mutate(&g, rng)
		if g == before {
			t.Fatalf("mutation %d returned its input %s", i, g)
		}
	}
}

// TestCanonicalMachinesRepresentable: the lattice must contain the paper's
// design points, or the search could not rediscover them.
func TestCanonicalMachinesRepresentable(t *testing.T) {
	// braid/8: 8 BEUs, 32-entry FIFO, 2-entry window, 8-entry ERF with
	// 6R/3W, 1-level bypass, 512/64 perceptron.
	braid8 := Genome{Core: 2, Width: 2, Retire: 0, BEUs: 2, IQ: 2, Window: 1,
		ERF: 1, RPorts: 2, WPorts: 2, Bypass: 0, PredEnt: 2, PredHist: 2}
	cfg, err := braid8.Config()
	if err != nil {
		t.Fatal(err)
	}
	want := uarch.BraidConfig(8)
	if cfg.Core != want.Core || cfg.BEUs != want.BEUs || cfg.BEUFIFO != want.BEUFIFO ||
		cfg.BEUWindow != want.BEUWindow || cfg.RFEntries != want.RFEntries ||
		cfg.RFReadPorts != want.RFReadPorts || cfg.RFWritePorts != want.RFWritePorts ||
		cfg.BypassLevels != want.BypassLevels || cfg.TotalFUs != want.TotalFUs {
		t.Errorf("braid/8 genome derived %+v, want the Table 4 machine", cfg)
	}

	// ooo/8: 32-entry schedulers, 256-entry RF with 16R/8W, 3-level bypass.
	ooo8 := Genome{Core: 3, Width: 2, Retire: 0, IQ: 2,
		ERF: 5, RPorts: 4, WPorts: 4, Bypass: 2, PredEnt: 2, PredHist: 2}
	cfg, err = ooo8.Config()
	if err != nil {
		t.Fatal(err)
	}
	want = uarch.OutOfOrderConfig(8)
	if cfg.Core != want.Core || cfg.SchedEntries != want.SchedEntries ||
		cfg.RFEntries != 128 || cfg.RFReadPorts != want.RFReadPorts {
		t.Errorf("ooo/8-class genome derived %+v", cfg)
	}
}
