package uarch

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"braid/internal/interp"
	"braid/internal/isa"
)

func TestSamplingValidate(t *testing.T) {
	cases := []struct {
		sp Sampling
		ok bool
	}{
		{Sampling{}, true}, // disabled
		{Sampling{Period: 4000, Detail: 400, Warmup: 200}, true},    // normal
		{Sampling{Period: 4000, Detail: 400}, true},                 // no warm-up
		{Sampling{Period: 0, Detail: 400}, false},                   // no period
		{Sampling{Period: 4000, Detail: 0}, false},                  // no detail
		{Sampling{Period: 400, Detail: 400}, false},                 // Period == Detail
		{Sampling{Period: 400, Detail: 500}, false},                 // Period < Detail
		{Sampling{Period: 4000, Detail: 2000, Warmup: 2000}, false}, // window fills the period
	}
	for _, c := range cases {
		if err := c.sp.Validate(); (err == nil) != c.ok {
			t.Errorf("Validate(%s) = %v, want ok=%v", c.sp, err, c.ok)
		}
	}
}

func TestParseSampling(t *testing.T) {
	sp, err := ParseSampling("8000:400:200")
	if err != nil {
		t.Fatal(err)
	}
	if want := (Sampling{Period: 8000, Detail: 400, Warmup: 200}); sp != want {
		t.Fatalf("parsed %+v, want %+v", sp, want)
	}
	if rt, err := ParseSampling(sp.String()); err != nil || rt != sp {
		t.Fatalf("round trip %q -> %+v, %v", sp.String(), rt, err)
	}
	if sp, err := ParseSampling(""); err != nil || sp.Enabled() {
		t.Fatalf("empty spec: %+v, %v", sp, err)
	}
	for _, bad := range []string{"8000", "a:b", "400:400", "1:2:3:4"} {
		if _, err := ParseSampling(bad); err == nil {
			t.Errorf("ParseSampling(%q) accepted", bad)
		}
	}
}

// TestSampledMatchesExactCounts is the architectural-equivalence property:
// sampled and exact runs replay the same trace, so they must agree exactly on
// every architectural count — and the program's final architectural state is
// the interpreter's either way.
func TestSampledMatchesExactCounts(t *testing.T) {
	sp := Sampling{Period: 2000, Detail: 300, Warmup: 100}
	for _, name := range []string{"gcc", "mcf"} {
		orig, braided := genWorkload(t, name, 400)
		for _, c := range []struct {
			tag string
			p   *isa.Program
			cfg Config
		}{
			{"ooo", orig, OutOfOrderConfig(8)},
			{"braid", braided, BraidConfig(8)},
			{"inorder", orig, InOrderConfig(8)},
		} {
			c.cfg.Paranoid = true
			exact, err := Simulate(c.p, c.cfg)
			if err != nil {
				t.Fatalf("%s/%s exact: %v", name, c.tag, err)
			}
			st, est, err := SimulateSampled(context.Background(), c.p, c.cfg, sp)
			if err != nil {
				t.Fatalf("%s/%s sampled: %v", name, c.tag, err)
			}
			if est == nil || est.Exact {
				t.Fatalf("%s/%s: expected a genuine sampled run, got %+v", name, c.tag, est)
			}
			if st.Retired != exact.Retired || st.Fetched != exact.Fetched {
				t.Errorf("%s/%s: sampled retired/fetched %d/%d, exact %d/%d",
					name, c.tag, st.Retired, st.Fetched, exact.Retired, exact.Fetched)
			}
			if st.CondBranches != exact.CondBranches || st.Mispredicts != exact.Mispredicts {
				t.Errorf("%s/%s: sampled branches %d/%d mispredicts, exact %d/%d",
					name, c.tag, st.CondBranches, st.Mispredicts, exact.CondBranches, exact.Mispredicts)
			}
			if st.Loads != exact.Loads || st.StoreCount != exact.StoreCount {
				t.Errorf("%s/%s: sampled loads/stores %d/%d, exact %d/%d",
					name, c.tag, st.Loads, st.StoreCount, exact.Loads, exact.StoreCount)
			}
			if est.DetailedInstrs+est.FFwdInstrs != st.Retired {
				t.Errorf("%s/%s: detailed %d + fastforward %d != retired %d",
					name, c.tag, est.DetailedInstrs, est.FFwdInstrs, st.Retired)
			}
			if est.FFwdInstrs == 0 {
				t.Errorf("%s/%s: nothing was fast-forwarded", name, c.tag)
			}
			// Architectural execution is the interpreter's in both modes.
			fsA, err := interp.RunProgram(c.p, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			fsB, err := interp.RunProgram(c.p, 10_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if !fsA.Equal(fsB) {
				t.Errorf("%s/%s: final architectural state diverged", name, c.tag)
			}
			if st.Retired != fsA.Steps {
				t.Errorf("%s/%s: sampled retired %d, interpreter executed %d", name, c.tag, st.Retired, fsA.Steps)
			}
		}
	}
}

// TestSampledIPCAccuracy is a single-point accuracy smoke: the estimate must
// land near the exact IPC (the committed accuracy harness asserts the tight
// suite-wide bound; this guards against gross estimator breakage).
func TestSampledIPCAccuracy(t *testing.T) {
	// Warm-up and detail windows must clear the ROB-fill transient (~512
	// instructions of ramp, then a retire burst): short windows bias the
	// estimate, so the geometry here mirrors the committed harness defaults
	// scaled down to test size.
	orig, braided := genWorkload(t, "gcc", 2000)
	sp := Sampling{Period: 12000, Detail: 4000, Warmup: 4000}
	for _, c := range []struct {
		tag string
		p   *isa.Program
		cfg Config
	}{
		{"ooo", orig, OutOfOrderConfig(8)},
		{"braid", braided, BraidConfig(8)},
	} {
		exact, err := Simulate(c.p, c.cfg)
		if err != nil {
			t.Fatal(err)
		}
		st, est, err := SimulateSampled(context.Background(), c.p, c.cfg, sp)
		if err != nil {
			t.Fatal(err)
		}
		relErr := math.Abs(st.IPC()-exact.IPC()) / exact.IPC()
		t.Logf("%s: exact IPC %.4f, sampled %.4f (err %.2f%%, ci ±%.2f%%, %d intervals)",
			c.tag, exact.IPC(), st.IPC(), 100*relErr, 100*est.IPCRelCI, est.Intervals)
		if relErr > 0.05 {
			t.Errorf("%s: sampled IPC %.4f off exact %.4f by %.1f%%", c.tag, st.IPC(), exact.IPC(), 100*relErr)
		}
		if est.Intervals < 2 {
			t.Errorf("%s: only %d measurement intervals", c.tag, est.Intervals)
		}
	}
}

// TestSampledShortProgramFallsBackExact: a program shorter than one sampling
// period (which subsumes shorter-than-one-warmup) runs exactly, bit-identical
// to exact mode, with the estimate marked Exact.
func TestSampledShortProgramFallsBackExact(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 8) // a few hundred instructions
	cfg := OutOfOrderConfig(8)
	exact, err := Simulate(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	sp := Sampling{Period: 1 << 20, Detail: 1 << 10, Warmup: 1 << 9}
	st, est, err := SimulateSampled(context.Background(), orig, cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if est == nil || !est.Exact {
		t.Fatalf("short program did not fall back to exact: %+v", est)
	}
	if *st != *exact {
		t.Errorf("fallback stats differ from exact:\n sampled %+v\n exact   %+v", *st, *exact)
	}
}

// TestSampledCycleLimit: a budget exact mode cannot finish within must also
// fail the sampled run with ErrCycleLimit, not yield a bogus estimate.
func TestSampledCycleLimit(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 400)
	cfg := OutOfOrderConfig(8)
	cfg.MaxCycles = 500 // far below the ~10k+ cycles this program needs
	if _, err := Simulate(orig, cfg); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("exact run under tiny budget: %v, want ErrCycleLimit", err)
	}
	sp := Sampling{Period: 2000, Detail: 300, Warmup: 100}
	if _, _, err := SimulateSampled(context.Background(), orig, cfg, sp); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("sampled run under tiny budget: %v, want ErrCycleLimit", err)
	}

	// A budget the intervals fit in but the estimated whole run does not:
	// still ErrCycleLimit (the estimate must agree with what exact mode
	// would report, not fabricate a result past the budget).
	exact, err := Simulate(orig, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	cfg.MaxCycles = exact.Cycles / 2
	if _, _, err := SimulateSampled(context.Background(), orig, cfg, sp); !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("sampled run with half the needed budget: %v, want ErrCycleLimit", err)
	}
}

// TestSampledCancelMidFastForward: a canceled context stops the run during
// functional fast-forward (the poll runs before each interval, so the
// cancellation deterministically lands on the fast-forward path).
func TestSampledCancelMidFastForward(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sp := Sampling{Period: 2000, Detail: 300, Warmup: 100}
	_, _, err := SimulateSampled(ctx, orig, OutOfOrderConfig(8), sp)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled sampled run: %v, want ErrCanceled", err)
	}

	// An expired deadline surfaces as ErrTimeout through the same path.
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	_, _, err = SimulateSampled(dctx, orig, OutOfOrderConfig(8), sp)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("deadline-expired sampled run: %v, want ErrTimeout", err)
	}
}

// TestSampledDeterministic: the estimator is pure — same program, config, and
// geometry give identical Stats and estimate every time (remote verification
// relies on this).
func TestSampledDeterministic(t *testing.T) {
	_, braided := genWorkload(t, "mcf", 400)
	cfg := BraidConfig(8)
	sp := Sampling{Period: 2000, Detail: 300, Warmup: 100}
	st1, est1, err := SimulateSampled(context.Background(), braided, cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	st2, est2, err := SimulateSampled(context.Background(), braided, cfg, sp)
	if err != nil {
		t.Fatal(err)
	}
	if *st1 != *st2 {
		t.Errorf("sampled stats not deterministic:\n %+v\n %+v", *st1, *st2)
	}
	if *est1 != *est2 {
		t.Errorf("sampled estimate not deterministic:\n %+v\n %+v", *est1, *est2)
	}
}
