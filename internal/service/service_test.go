package service

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"braid/internal/isa"
	"braid/internal/uarch"
)

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

type rawResponse struct {
	Program string          `json:"program"`
	Core    string          `json:"core"`
	Braided bool            `json:"braided"`
	IPC     float64         `json:"ipc"`
	Source  string          `json:"source"`
	Stats   json.RawMessage `json:"stats"`
}

// TestSimulateMatchesDirectRun is the service's determinism contract: the
// Stats JSON served by POST /v1/simulate must be bit-identical to marshaling
// a direct in-process uarch run of the same built request.
func TestSimulateMatchesDirectRun(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, tc := range []string{
		`{"workload":"gcc","iters":40,"core":"ooo","width":8}`,
		`{"workload":"mcf","iters":40,"core":"braid","width":8}`,
		`{"kernel":"dot","core":"inorder","width":4}`,
	} {
		var req SimRequest
		if err := json.Unmarshal([]byte(tc), &req); err != nil {
			t.Fatal(err)
		}
		b, err := Build(&req, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc, err)
		}
		direct, err := uarch.Simulate(b.Program, b.Config)
		if err != nil {
			t.Fatalf("%s: direct run: %v", tc, err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}

		resp, data := postJSON(t, ts.URL+"/v1/simulate", tc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc, resp.StatusCode, data)
		}
		var rr rawResponse
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, rr.Stats) {
			t.Errorf("%s: served Stats differ from direct run:\n served: %s\n direct: %s", tc, rr.Stats, want)
		}
		if rr.Program != b.Program.Name {
			t.Errorf("%s: program %q, want %q", tc, rr.Program, b.Program.Name)
		}
	}
}

// TestSimulateComplexityBlock: every /v1/simulate success carries the
// hardware-cost estimate for the exact configuration it simulated, matching a
// client-side EstimateComplexity of the same build.
func TestSimulateComplexityBlock(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, tc := range []string{
		`{"workload":"gcc","iters":40,"core":"ooo","width":8}`,
		`{"workload":"mcf","iters":40,"core":"braid","width":8}`,
	} {
		var req SimRequest
		if err := json.Unmarshal([]byte(tc), &req); err != nil {
			t.Fatal(err)
		}
		b, err := Build(&req, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		want := uarch.EstimateComplexity(b.Config)

		resp, data := postJSON(t, ts.URL+"/v1/simulate", tc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc, resp.StatusCode, data)
		}
		var rr struct {
			Complexity *ComplexityBlock `json:"complexity"`
		}
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		if rr.Complexity == nil {
			t.Fatalf("%s: no complexity block in response", tc)
		}
		if rr.Complexity.Complexity != want {
			t.Errorf("%s: served complexity %+v, want %+v", tc, rr.Complexity.Complexity, want)
		}
		if rr.Complexity.Total != want.Total() {
			t.Errorf("%s: served total %.0f, want %.0f", tc, rr.Complexity.Total, want.Total())
		}
	}
}

// TestCacheServesRepeats: the second identical request is answered from the
// LRU with the same bytes, and the hit shows up in /metrics.
func TestCacheServesRepeats(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"gzip","iters":30,"core":"ooo"}`
	_, first := postJSON(t, ts.URL+"/v1/simulate", body)
	_, second := postJSON(t, ts.URL+"/v1/simulate", body)

	var r1, r2 rawResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Source != "run" || r2.Source != "cache" {
		t.Fatalf("sources %q then %q, want run then cache", r1.Source, r2.Source)
	}
	if !bytes.Equal(r1.Stats, r2.Stats) {
		t.Error("cached Stats differ from the original run")
	}
	if got := svc.met.cacheHits.Value(); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}

	resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("third request failed")
	}
	_ = data
	mresp, mdata := getURL(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if hits, _ := m["cache_hits"].(float64); hits < 2 {
		t.Errorf("/metrics cache_hits = %v, want >= 2", m["cache_hits"])
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestQueueFullSheds429: with one worker and no queue slack, a request
// arriving while the worker is busy is shed with 429 and a Retry-After
// hint, and the in-flight request still completes.
func TestQueueFullSheds429(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: -1})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(_ context.Context, key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"kernel":"dot","core":"ooo"}`))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the simulator")
	}

	resp, data := postJSON(t, ts.URL+"/v1/simulate", `{"kernel":"fig2","core":"ooo"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error.Kind != "overloaded" {
		t.Errorf("429 body %s, want kind overloaded", data)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if svc.met.shed.Value() != 1 {
		t.Errorf("shed_total = %d, want 1", svc.met.shed.Value())
	}
}

// TestCoalescing: a request identical to one already in flight waits for
// the leader's run instead of simulating again, and both get the same
// Stats.
func TestCoalescing(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(_ context.Context, key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"crafty","iters":25,"core":"braid"}`
	type outcome struct {
		code int
		resp rawResponse
	}
	results := make(chan outcome, 2)
	do := func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			results <- outcome{code: -1}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rr rawResponse
		json.Unmarshal(data, &rr)
		results <- outcome{code: resp.StatusCode, resp: rr}
	}
	go do()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the simulator")
	}
	go do()
	waitFor(t, func() bool { return svc.met.coalesced.Value() == 1 }, "follower never coalesced")
	close(release)

	a, b := <-results, <-results
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("statuses %d, %d; want 200, 200", a.code, b.code)
	}
	got := map[string]bool{a.resp.Source: true, b.resp.Source: true}
	if !got["run"] || !got["coalesced"] {
		t.Errorf("sources %q and %q, want one run and one coalesced", a.resp.Source, b.resp.Source)
	}
	if !bytes.Equal(a.resp.Stats, b.resp.Stats) {
		t.Error("leader and follower Stats differ")
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGracefulDrain: after StartDrain, /healthz reports draining; a
// shutdown initiated while a simulation is in flight waits for it, and the
// request completes normally.
func TestGracefulDrain(t *testing.T) {
	svc := New(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(_ context.Context, key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())

	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"kernel":"matmul","core":"ooo"}`))
		if err != nil {
			slowDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the simulator")
	}

	svc.StartDrain()
	hresp, _ := getURL(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: %d, want 503", hresp.StatusCode)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- ts.Config.Shutdown(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin refusing new work
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", code)
	}
}

// TestCycleLimit422: an exhausted cycle budget is a structured 422, not a
// 500, and is never cached.
func TestCycleLimit422(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"gcc","iters":100,"core":"ooo","max_cycles":10}`
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status %d (%s), want 422", resp.StatusCode, data)
		}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Kind != "cycle_limit" {
			t.Errorf("kind %q, want cycle_limit", env.Error.Kind)
		}
	}
	if svc.cache.len() != 0 {
		t.Error("a failed simulation was cached")
	}
	if svc.met.cycleLim.Value() != 2 {
		t.Errorf("cycle_limit_total = %d, want 2 (failures must not be cached)", svc.met.cycleLim.Value())
	}
}

// TestBadRequests: malformed input is a 400 with a structured body.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 1}).Handler())
	defer ts.Close()

	for _, body := range []string{
		`{`,
		`{}`,
		`{"workload":"gcc","kernel":"dot"}`,
		`{"workload":"no-such-profile"}`,
		`{"kernel":"dot","core":"no-such-core"}`,
		`{"kernel":"dot","bogus_field":1}`,
	} {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", body, resp.StatusCode, data)
		}
	}
}

// TestBatch: a mixed batch returns per-item statuses in request order.
func TestBatch(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 2}).Handler())
	defer ts.Close()

	body := `{"requests":[
		{"kernel":"dot","core":"ooo"},
		{"workload":"no-such-profile"},
		{"kernel":"dot","core":"ooo"}
	]}`
	resp, data := postJSON(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 3 {
		t.Fatalf("%d items, want 3", len(br.Items))
	}
	wantStatus := []int{200, 400, 200}
	for i, item := range br.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d: status %d, want %d", i, item.Status, wantStatus[i])
		}
	}
	if br.Items[0].Result == nil || br.Items[2].Result == nil || br.Items[1].Error == nil {
		t.Fatal("result/error bodies missing")
	}
	if br.Items[0].Result.Stats.Retired != br.Items[2].Result.Stats.Retired {
		t.Error("identical batch items disagree")
	}
}

// TestBuildKeyStability: the cache key is a pure function of program bytes
// and configuration — identical requests collide, different ones do not.
func TestBuildKeyStability(t *testing.T) {
	mk := func(body string) *Built {
		t.Helper()
		var req SimRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		b, err := Build(&req, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := mk(`{"workload":"gcc","iters":20,"core":"ooo","width":8}`)
	b := mk(`{"workload":"gcc","iters":20,"core":"ooo","width":8}`)
	if a.Key() != b.Key() {
		t.Error("identical requests produced different keys")
	}
	for i, other := range []*Built{
		mk(`{"workload":"gcc","iters":21,"core":"ooo","width":8}`),
		mk(`{"workload":"gcc","iters":20,"core":"ooo","width":4}`),
		mk(`{"workload":"gcc","iters":20,"core":"braid","width":8}`),
		mk(`{"workload":"mcf","iters":20,"core":"ooo","width":8}`),
	} {
		if other.Key() == a.Key() {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
}

// TestLRUEviction pins the cache's bounded-memory contract.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	s1, s2, s3 := &uarch.Stats{Cycles: 1}, &uarch.Stats{Cycles: 2}, &uarch.Stats{Cycles: 3}
	c.put("a", s1, nil)
	c.put("b", s2, nil)
	c.get("a") // a is now most recent
	c.put("c", s3, nil)
	if _, _, ok := c.get("b"); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if st, _, ok := c.get("a"); !ok || st.Cycles != 1 {
		t.Error("recently-used entry evicted")
	}
	if _, _, ok := c.get("c"); !ok {
		t.Error("new entry missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestSimFaultMapsTo422 pins the error mapping for contained simulator
// faults (reachable in production via the paranoid checker; constructed
// directly here since the injection API is deliberately not exposed over
// HTTP).
func TestSimFaultMapsTo422(t *testing.T) {
	fault := &uarch.SimFault{Core: uarch.CoreOutOfOrder, Program: "p", Cycle: 42, Panic: "boom"}
	status, body := simErrorBody(fmt.Errorf("wrapped: %w", fault))
	if status != http.StatusUnprocessableEntity || body.Kind != "sim_fault" || body.Cycle != 42 {
		t.Errorf("got %d %+v, want 422 sim_fault at cycle 42", status, body)
	}
	status, body = simErrorBody(fmt.Errorf("x: %w", uarch.ErrTimeout))
	if status != http.StatusGatewayTimeout || body.Kind != "deadline" {
		t.Errorf("timeout mapped to %d %q", status, body.Kind)
	}
	status, _ = simErrorBody(errOverloaded)
	if status != http.StatusTooManyRequests {
		t.Errorf("overload mapped to %d", status)
	}
}

// TestLeaderAbortReelection: a follower coalesced onto a leader whose client
// hangs up mid-run must not inherit the leader's cancellation — its own
// caller is still waiting. The follower re-elects itself, runs the
// simulation, and gets a 200.
func TestLeaderAbortReelection(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	var calls atomic.Int32
	started := make(chan string, 2)
	svc.testHookSimStart = func(ctx context.Context, key string) {
		if calls.Add(1) == 1 {
			started <- key
			<-ctx.Done() // hold the leader until its client has hung up
		}
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"art","iters":25,"core":"ooo"}`
	leaderCtx, cancelLeader := context.WithCancel(context.Background())
	leaderDone := make(chan error, 1)
	go func() {
		req, _ := http.NewRequestWithContext(leaderCtx, http.MethodPost,
			ts.URL+"/v1/simulate", strings.NewReader(body))
		req.Header.Set("Content-Type", "application/json")
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		leaderDone <- err
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the simulator")
	}

	followerDone := make(chan rawResponse, 1)
	go func() {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		var rr rawResponse
		json.Unmarshal(data, &rr)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("follower status %d: %s", resp.StatusCode, data)
		}
		followerDone <- rr
	}()
	waitFor(t, func() bool { return svc.met.coalesced.Value() == 1 }, "follower never coalesced")

	cancelLeader() // the leader now simulates under a canceled context and fails
	if err := <-leaderDone; err == nil {
		t.Fatal("leader request was not aborted")
	}

	rr := <-followerDone
	if rr.Source != "run" {
		t.Errorf("follower source %q, want run (a fresh election)", rr.Source)
	}
	if got := svc.met.reelected.Value(); got != 1 {
		t.Errorf("coalesce_reelected_total = %d, want 1", got)
	}
	if got := svc.met.canceled.Value(); got != 1 {
		t.Errorf("canceled_total = %d, want 1 (the aborted leader)", got)
	}
}

// TestCacheReturnsCopies: the result cache must hand out private copies —
// a caller mutating a Stats it was served (or the one it put in) must not
// corrupt what later hits observe.
func TestCacheReturnsCopies(t *testing.T) {
	c := newResultCache(4)
	orig := &uarch.Stats{Cycles: 10, Retired: 5}
	c.put("k", orig, nil)
	orig.Cycles = 999 // the producer reuses its struct after the put

	st1, _, ok := c.get("k")
	if !ok || st1.Cycles != 10 {
		t.Fatalf("first hit: %+v, want Cycles=10 (insulated from producer)", st1)
	}
	st1.Retired = 12345 // a consumer scribbles on its copy

	st2, _, ok := c.get("k")
	if !ok || st2.Retired != 5 || st2.Cycles != 10 {
		t.Fatalf("second hit: %+v, want the original Cycles=10 Retired=5", st2)
	}
}

// TestMissAccountingLeaderOnly: cache_misses counts simulator demand —
// flight leaders only. Followers are coalesced, repeats are hits, and the
// three counters add up to the requests served.
func TestMissAccountingLeaderOnly(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(_ context.Context, key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"equake","iters":25,"core":"ooo"}`
	results := make(chan int, 3)
	do := func() {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		_ = data
		results <- resp.StatusCode
	}
	go do()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the simulator")
	}
	go do()
	go do()
	waitFor(t, func() bool { return svc.met.coalesced.Value() == 2 }, "followers never coalesced")
	close(release)
	for i := 0; i < 3; i++ {
		if code := <-results; code != http.StatusOK {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/simulate", body) // repeat: a pure cache hit
	if resp.StatusCode != http.StatusOK {
		t.Fatal("repeat request failed")
	}

	miss, hits, coal := svc.met.cacheMiss.Value(), svc.met.cacheHits.Value(), svc.met.coalesced.Value()
	if miss != 1 {
		t.Errorf("cache_misses = %d, want 1 (the lone flight leader)", miss)
	}
	if coal != 2 {
		t.Errorf("coalesced_total = %d, want 2", coal)
	}
	if hits != 1 {
		t.Errorf("cache_hits = %d, want 1", hits)
	}
	if miss != svc.met.simRuns.Value() {
		t.Errorf("cache_misses = %d but sim_runs_total = %d; with no failures they must agree", miss, svc.met.simRuns.Value())
	}
	if got := hits + miss + coal; got != 4 {
		t.Errorf("hits+misses+coalesced = %d, want 4 (one per simulate request)", got)
	}
}

// TestImageRequestBitIdentical: a request carrying the exact program image
// (the distributed-execution transport) produces the same Stats bytes and
// the same cache key as the equivalent name-based request.
func TestImageRequestBitIdentical(t *testing.T) {
	named := SimRequest{Workload: "gcc", Iters: 30, Core: "braid", Width: 8}
	nb, err := Build(&named, Limits{})
	if err != nil {
		t.Fatal(err)
	}

	var img bytes.Buffer
	if err := isa.WriteImage(&img, nb.Program); err != nil {
		t.Fatal(err)
	}
	noBraid := false // the image is already braided; it must not recompile
	cfg := nb.Config
	imageReq := SimRequest{
		Image:  base64.StdEncoding.EncodeToString(img.Bytes()),
		Config: &cfg,
		Braid:  &noBraid,
	}
	ib, err := Build(&imageReq, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	if ib.Key() != nb.Key() {
		t.Errorf("image-built key %s differs from name-built key %s", ib.Key(), nb.Key())
	}

	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	body, err := json.Marshal(&imageReq)
	if err != nil {
		t.Fatal(err)
	}
	resp, data := postJSON(t, ts.URL+"/v1/simulate", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rr rawResponse
	if err := json.Unmarshal(data, &rr); err != nil {
		t.Fatal(err)
	}
	direct, err := uarch.Simulate(nb.Program, nb.Config)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(direct)
	if !bytes.Equal(want, rr.Stats) {
		t.Errorf("image-request Stats differ from direct run:\n served: %s\n direct: %s", rr.Stats, want)
	}
}

// TestWaitingNeverNegative pins the /metrics queue-depth clamp: the two
// channel reads race, so the raw difference can go negative mid-request;
// the reported value must not.
func TestWaitingNeverNegative(t *testing.T) {
	a := newAdmission(2, 4)
	// A request can release its queue position between the two length
	// reads; model the worst case directly.
	a.slots <- struct{}{}
	if got := a.waiting(); got != 0 {
		t.Errorf("waiting() = %d with slots ahead of queue, want 0", got)
	}
	a.queue <- struct{}{}
	a.queue <- struct{}{}
	if got := a.waiting(); got != 1 {
		t.Errorf("waiting() = %d, want 1", got)
	}
}

// TestLatencyHistQuantiles sanity-checks the log-bucket estimator: the
// quantile is an upper bound within one power of two of the true value.
func TestLatencyHistQuantiles(t *testing.T) {
	h := &latencyHist{}
	for i := 0; i < 99; i++ {
		h.observe(1 * time.Millisecond)
	}
	h.observe(500 * time.Millisecond)
	snap := h.snapshot()
	p50 := snap["p50_ms"].(float64)
	p99 := snap["p99_ms"].(float64)
	if p50 < 1 || p50 > 2.1 {
		t.Errorf("p50 = %v ms, want ~1-2", p50)
	}
	if p99 < 1 || p99 > 2.1 {
		t.Errorf("p99 = %v ms, want ~1-2 (99 of 100 samples are 1ms)", p99)
	}
	if max := snap["max_ms"].(float64); max < 499 {
		t.Errorf("max = %v ms, want ~500", max)
	}
	if ov := snap["overflow"].(uint64); ov != 0 {
		t.Errorf("overflow = %d, want 0 for sub-bucket-range samples", ov)
	}
}

// TestLatencyHistOverflowHonest: observations beyond the histogram's ~67s
// bucket range must not be clamped into the top bucket — that silently caps
// every quantile at 67s precisely when the service is at its slowest.
// Quantiles landing in the overflow region report the observed maximum, and
// the overflow count is exported.
func TestLatencyHistOverflowHonest(t *testing.T) {
	h := &latencyHist{}
	for i := 0; i < 10; i++ {
		h.observe(1 * time.Millisecond)
	}
	for i := 0; i < 90; i++ {
		h.observe(120 * time.Second) // far past the 2^26µs ≈ 67s bucket ceiling
	}
	snap := h.snapshot()
	if ov := snap["overflow"].(uint64); ov != 90 {
		t.Errorf("overflow = %d, want 90", ov)
	}
	const wantMS = 120 * 1000
	for _, q := range []string{"p50_ms", "p99_ms"} {
		if got := snap[q].(float64); got < wantMS {
			t.Errorf("%s = %v ms, want %v (quantile is among the 120s observations; 67s would be a silent under-report)",
				q, got, wantMS)
		}
	}
	if p50 := h.quantileLocked(0.10); p50 > 2.1 {
		t.Errorf("p10 = %v ms, want ~1-2 (the fast samples still resolve normally)", p50)
	}
	if cnt := snap["count"].(uint64); cnt != 100 {
		t.Errorf("count = %d, want 100", cnt)
	}
}

// TestSampledRequest: a sampled request returns a sampling block whose
// estimate reflects real fast-forwarding, lives in a cache keyspace disjoint
// from the exact result for the same point, and splits the service's
// simulated-instruction metrics into detailed vs fast-forwarded work.
func TestSampledRequest(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	type sampledResponse struct {
		rawResponse
		Sampling *struct {
			Geometry uarch.Sampling        `json:"geometry"`
			Estimate *uarch.SampleEstimate `json:"estimate"`
		} `json:"sampling"`
	}
	post := func(body string) sampledResponse {
		t.Helper()
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, data)
		}
		var r sampledResponse
		if err := json.Unmarshal(data, &r); err != nil {
			t.Fatal(err)
		}
		return r
	}

	const exact = `{"workload":"gcc","iters":2000,"core":"ooo","width":8}`
	const sampled = `{"workload":"gcc","iters":2000,"core":"ooo","width":8,"sampling":{"period":12000,"detail":4000,"warmup":4000}}`

	ex := post(exact)
	if ex.Sampling != nil {
		t.Fatal("exact response carries a sampling block")
	}

	// Same program+config, sampled: must be a fresh run, not the exact
	// cache entry — the keyspaces are disjoint.
	sp := post(sampled)
	if sp.Source != "run" {
		t.Fatalf("sampled request source %q, want run (exact cache must not alias)", sp.Source)
	}
	if sp.Sampling == nil || sp.Sampling.Estimate == nil {
		t.Fatal("sampled response missing sampling block or estimate")
	}
	est := sp.Sampling.Estimate
	if est.Exact {
		t.Fatal("sampled run fell back to exact for a multi-interval program")
	}
	if est.FFwdInstrs == 0 || est.Intervals < 2 {
		t.Fatalf("estimate shows no sampling: %+v", est)
	}
	if relErr := (sp.IPC - ex.IPC) / ex.IPC; relErr < -0.25 || relErr > 0.25 {
		t.Errorf("sampled IPC %.4f vs exact %.4f: error beyond any plausible bound", sp.IPC, ex.IPC)
	}

	// Repeats hit the sampled cache entry and round-trip the estimate.
	sp2 := post(sampled)
	if sp2.Source != "cache" {
		t.Errorf("repeat sampled request source %q, want cache", sp2.Source)
	}
	if sp2.Sampling == nil || sp2.Sampling.Estimate == nil || *sp2.Sampling.Estimate != *est {
		t.Error("cached sampled response lost or changed the estimate")
	}

	// /metrics splits engine work: the fast-forwarded leap is visible, and
	// detailed + fast-forwarded accounts for every retired instruction.
	_, mdata := getURL(t, ts.URL+"/metrics")
	var m map[string]any
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	detailed, _ := m["sim_detailed_instructions_total"].(float64)
	ffwd, _ := m["sim_fastforward_instructions_total"].(float64)
	instrs, _ := m["sim_instructions_total"].(float64)
	if ffwd != float64(est.FFwdInstrs) {
		t.Errorf("sim_fastforward_instructions_total = %v, want %d", ffwd, est.FFwdInstrs)
	}
	if detailed+ffwd != instrs {
		t.Errorf("detailed %v + fastforward %v != sim_instructions_total %v", detailed, ffwd, instrs)
	}
	if mips, _ := m["simulated_mips"].(float64); mips <= 0 {
		t.Errorf("simulated_mips = %v, want > 0", m["simulated_mips"])
	}
}

// TestSampledSingleIntervalFiniteCI: a geometry that yields exactly one
// measured interval must still produce a well-formed response with a finite
// ipc_rel_ci95. The CI estimator divides by len(intervals)-1; without the
// n<2 guard the NaN would reach json.Marshal, which rejects NaN outright —
// turning a legal request into a 500 with an empty body.
func TestSampledSingleIntervalFiniteCI(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Learn the point's dynamic length from an exact run, then pick
	// Period = n-1: the program is one instruction longer than a period
	// (so it does not fall back to exact mode), the first interval is the
	// only measured one, and the second starts with a single instruction
	// left — inside its warm-up, so it never contributes a CPI sample.
	exact := `{"workload":"gcc","iters":500,"core":"ooo","width":8}`
	resp, data := postJSON(t, ts.URL+"/v1/simulate", exact)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("exact run status %d: %s", resp.StatusCode, data)
	}
	var ex struct {
		Stats struct {
			Retired uint64 `json:"Retired"`
		} `json:"stats"`
	}
	if err := json.Unmarshal(data, &ex); err != nil {
		t.Fatal(err)
	}
	n := ex.Stats.Retired
	if n < 1000 {
		t.Fatalf("gcc/500 retired only %d instructions; test geometry needs more", n)
	}

	body := fmt.Sprintf(
		`{"workload":"gcc","iters":500,"core":"ooo","width":8,"sampling":{"period":%d,"detail":%d,"warmup":16}}`,
		n-1, n/4)
	resp, data = postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("single-interval sampled run status %d: %s", resp.StatusCode, data)
	}
	var sp struct {
		IPC      float64 `json:"ipc"`
		Sampling *struct {
			Estimate *uarch.SampleEstimate `json:"estimate"`
		} `json:"sampling"`
	}
	if err := json.Unmarshal(data, &sp); err != nil {
		t.Fatalf("response is not valid JSON: %v\n%s", err, data)
	}
	if sp.Sampling == nil || sp.Sampling.Estimate == nil {
		t.Fatalf("missing sampling estimate: %s", data)
	}
	est := sp.Sampling.Estimate
	if est.Exact {
		t.Fatalf("fell back to exact mode: %+v", est)
	}
	if est.Intervals != 1 {
		t.Fatalf("got %d measured intervals, want exactly 1 (geometry drifted): %+v", est.Intervals, est)
	}
	if math.IsNaN(est.IPCRelCI) || math.IsInf(est.IPCRelCI, 0) {
		t.Errorf("ipc_rel_ci95 = %v, want finite", est.IPCRelCI)
	}
	if math.IsNaN(est.CPI) || est.CPI <= 0 {
		t.Errorf("cpi = %v, want positive and finite", est.CPI)
	}
	if sp.IPC <= 0 {
		t.Errorf("ipc = %v, want > 0", sp.IPC)
	}
}
