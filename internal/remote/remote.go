// Package remote is the distributed-execution client for braidd: it fans a
// design-space sweep's simulation points out across one or more braidd
// backends. The pool routes each point by its (program image, configuration)
// content hash over a consistent-hash ring, so a repeated point lands on the
// backend whose result LRU already holds it; transient failures — 429
// overload, 5xx, connection errors — retry with exponential backoff and
// jitter (honoring Retry-After) and fail over around the ring, so a backend
// killed mid-sweep costs latency, not the sweep; optional hedged requests
// duplicate a straggler onto the next backend after the pool's observed p95;
// and a verify mode cross-checks a deterministic sample of remote Stats
// bit-for-bit against local simulation.
//
// The pool implements the experiments.Runner interface, so a Workloads suite
// pointed at it keeps its memoization, checkpoint/resume, and Failures()
// accounting unchanged: remote structured errors translate back into the
// local taxonomy (*uarch.SimFault, ErrCycleLimit, ErrTimeout, ErrCanceled).
package remote

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"braid/internal/isa"
	"braid/internal/service"
	"braid/internal/uarch"
)

// Options configures a Pool. Zero fields take the documented defaults.
type Options struct {
	Backends    []string      // braidd base URLs (required)
	MaxAttempts int           // tries per point across backends (default max(4, 2*len(Backends)))
	BaseBackoff time.Duration // first retry delay (default 50ms)
	MaxBackoff  time.Duration // retry delay ceiling (default 2s)
	Timeout     time.Duration // per-attempt HTTP timeout (default 2m)
	TimeoutMS   int64         // per-request simulation deadline sent to the server (0: server default)
	Hedge       bool          // duplicate stragglers onto the next backend
	HedgeFloor  time.Duration // lower bound on the hedge delay (default 25ms)
	VerifyEvery int           // locally re-simulate every point whose key hashes to 0 mod N (0: off)
	Replicas    int           // virtual nodes per backend on the ring (default 64)
	Client      *http.Client  // HTTP client (default: fresh client, per-attempt timeout via context)

	Fallback       FallbackPolicy // what to do when every attempt fails (default FallbackFail)
	DisableBreaker bool           // route to every backend regardless of breaker state

	BreakerThreshold int           // consecutive failures that trip a backend's breaker (default 3)
	BreakerWindow    int           // sliding outcome window for error-rate tripping (default 20)
	BreakerRate      float64       // failure fraction over a full window that trips (default 0.5)
	BreakerCooldown  time.Duration // open -> half-open probe delay (default 1s)
}

// FallbackPolicy selects what a Pool does when a point exhausts every
// attempt (or every breaker is open): fail with a transient Unavailable, or
// degrade to in-process simulation.
type FallbackPolicy int

const (
	// FallbackFail surfaces Unavailable; the sweep aborts (the error is
	// transient, so memo caches refuse it and -resume retries it).
	FallbackFail FallbackPolicy = iota
	// FallbackLocal runs the point on the local simulator instead. Local
	// execution is the determinism reference the fleet is verified against,
	// so results — and therefore memoization, checkpoints, and stdout — are
	// bit-identical to a healthy fleet's; only throughput degrades.
	FallbackLocal
)

// ParseFallback parses the -fallback flag value.
func ParseFallback(s string) (FallbackPolicy, error) {
	switch s {
	case "", "fail":
		return FallbackFail, nil
	case "local":
		return FallbackLocal, nil
	}
	return FallbackFail, fmt.Errorf("remote: unknown fallback policy %q (want local or fail)", s)
}

// Pool routes simulation points to braidd backends.
type Pool struct {
	backends []string
	ring     *ring
	client   *http.Client
	opt      Options

	requests   atomic.Uint64
	retries    atomic.Uint64
	failovers  atomic.Uint64
	hedges     atomic.Uint64
	hedgeWins  atomic.Uint64
	verified   atomic.Uint64
	perBackend []atomic.Uint64 // successful responses per backend

	failedAttempts    atomic.Uint64 // HTTP attempts that came back retryable
	shortCircuits     atomic.Uint64 // attempts skipped because a breaker was open
	localFallbacks    atomic.Uint64 // points degraded to in-process simulation
	integrityFailures atomic.Uint64 // responses whose stats SHA-256 did not match
	probeFailures     atomic.Uint64 // health-prober checks that failed
	canaryMismatches  atomic.Uint64 // canary simulations whose stats diverged

	breakers []*breaker    // per-backend circuit breakers, indexed like backends
	healthy  []atomic.Bool // prober's last verdict per backend (starts true)

	rngMu sync.Mutex
	rng   *rand.Rand

	latMu  sync.Mutex
	latMS  [128]float64 // ring buffer of recent request latencies
	latN   int          // valid entries
	latPos int
}

// Stats is a snapshot of the pool's counters.
type Stats struct {
	Requests   uint64            `json:"requests"`
	Retries    uint64            `json:"retries"`
	Failovers  uint64            `json:"failovers"`
	Hedges     uint64            `json:"hedges"`
	HedgeWins  uint64            `json:"hedge_wins"`
	Verified   uint64            `json:"verified"`
	PerBackend map[string]uint64 `json:"per_backend"`

	FailedAttempts    uint64            `json:"failed_attempts"`
	ShortCircuits     uint64            `json:"short_circuits"`
	BreakerTrips      uint64            `json:"breaker_trips"`
	BreakerProbes     uint64            `json:"breaker_probes"`
	LocalFallbacks    uint64            `json:"local_fallbacks"`
	IntegrityFailures uint64            `json:"integrity_failures"`
	ProbeFailures     uint64            `json:"probe_failures"`
	CanaryMismatches  uint64            `json:"canary_mismatches"`
	Breakers          map[string]string `json:"breakers"` // backend -> closed|open|half-open
	Healthy           map[string]bool   `json:"healthy"`  // prober's last verdict per backend
}

// Result is one successfully simulated point with its provenance.
type Result struct {
	Stats      *uarch.Stats
	Estimate   *uarch.SampleEstimate // sampled runs only; nil for exact
	Complexity float64               // server's hardware-cost total (0: backend predates the field)
	RawStats   []byte                // the exact Stats JSON bytes the backend served
	Source     string                // run, cache, or coalesced (server-side provenance)
	Backend    string                // base URL that answered
	Attempts   int                   // HTTP attempts spent (1 = first try)
	Hedged     bool                  // answered by a hedge request
	Verified   bool                  // cross-checked against local simulation
}

// NewPool validates o and builds a routing pool.
func NewPool(o Options) (*Pool, error) {
	if len(o.Backends) == 0 {
		return nil, errors.New("remote: no backends")
	}
	backends := make([]string, 0, len(o.Backends))
	for _, b := range o.Backends {
		b = strings.TrimRight(strings.TrimSpace(b), "/")
		if b == "" {
			continue
		}
		if !strings.Contains(b, "://") {
			b = "http://" + b
		}
		backends = append(backends, b)
	}
	if len(backends) == 0 {
		return nil, errors.New("remote: no backends")
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 2 * len(backends)
		if o.MaxAttempts < 4 {
			o.MaxAttempts = 4
		}
	}
	if o.BaseBackoff <= 0 {
		o.BaseBackoff = 50 * time.Millisecond
	}
	if o.MaxBackoff <= 0 {
		o.MaxBackoff = 2 * time.Second
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Minute
	}
	if o.HedgeFloor <= 0 {
		o.HedgeFloor = 25 * time.Millisecond
	}
	if o.Replicas <= 0 {
		o.Replicas = 64
	}
	client := o.Client
	if client == nil {
		client = &http.Client{}
	}
	p := &Pool{
		backends:   backends,
		ring:       newRing(backends, o.Replicas),
		client:     client,
		opt:        o,
		perBackend: make([]atomic.Uint64, len(backends)),
		breakers:   make([]*breaker, len(backends)),
		healthy:    make([]atomic.Bool, len(backends)),
		rng:        rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	bcfg := breakerConfig{
		threshold: o.BreakerThreshold,
		window:    o.BreakerWindow,
		rate:      o.BreakerRate,
		cooldown:  o.BreakerCooldown,
	}
	for i := range p.breakers {
		p.breakers[i] = newBreaker(bcfg)
		p.healthy[i].Store(true)
	}
	return p, nil
}

// Backends returns the normalized backend base URLs.
func (p *Pool) Backends() []string { return append([]string(nil), p.backends...) }

// Snapshot returns the pool's counters.
func (p *Pool) Snapshot() Stats {
	s := Stats{
		Requests:   p.requests.Load(),
		Retries:    p.retries.Load(),
		Failovers:  p.failovers.Load(),
		Hedges:     p.hedges.Load(),
		HedgeWins:  p.hedgeWins.Load(),
		Verified:   p.verified.Load(),
		PerBackend: make(map[string]uint64, len(p.backends)),

		FailedAttempts:    p.failedAttempts.Load(),
		ShortCircuits:     p.shortCircuits.Load(),
		LocalFallbacks:    p.localFallbacks.Load(),
		IntegrityFailures: p.integrityFailures.Load(),
		ProbeFailures:     p.probeFailures.Load(),
		CanaryMismatches:  p.canaryMismatches.Load(),
		Breakers:          make(map[string]string, len(p.backends)),
		Healthy:           make(map[string]bool, len(p.backends)),
	}
	for i, b := range p.backends {
		s.PerBackend[b] = p.perBackend[i].Load()
		state, trips, probes := p.breakers[i].snapshot()
		s.Breakers[b] = state
		s.BreakerTrips += trips
		s.BreakerProbes += probes
		s.Healthy[b] = p.healthy[i].Load()
	}
	return s
}

func (p *Pool) String() string {
	s := p.Snapshot()
	var b strings.Builder
	fmt.Fprintf(&b, "%d requests, %d retries, %d failovers", s.Requests, s.Retries, s.Failovers)
	fmt.Fprintf(&b, ", %d failed attempts, %d breaker trips, %d short-circuits",
		s.FailedAttempts, s.BreakerTrips, s.ShortCircuits)
	if s.LocalFallbacks > 0 {
		fmt.Fprintf(&b, ", %d local fallbacks", s.LocalFallbacks)
	}
	if s.IntegrityFailures > 0 {
		fmt.Fprintf(&b, ", %d integrity failures", s.IntegrityFailures)
	}
	if p.opt.Hedge {
		fmt.Fprintf(&b, ", %d hedges (%d won)", s.Hedges, s.HedgeWins)
	}
	if p.opt.VerifyEvery > 0 {
		fmt.Fprintf(&b, ", %d verified", s.Verified)
	}
	names := make([]string, 0, len(s.PerBackend))
	for n := range s.PerBackend {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "; %s=%d", n, s.PerBackend[n])
	}
	return b.String()
}

// Ping requires at least one live backend, so a sweep pointed at a dead
// fleet fails before suite preparation rather than after. Unreachable
// backends are tolerated (the ring fails over around them) and reported.
func (p *Pool) Ping(ctx context.Context) (down []string, err error) {
	up := 0
	for _, b := range p.backends {
		rctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		req, rerr := http.NewRequestWithContext(rctx, http.MethodGet, b+"/healthz", nil)
		if rerr == nil {
			var resp *http.Response
			if resp, rerr = p.client.Do(req); rerr == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					rerr = fmt.Errorf("healthz status %d", resp.StatusCode)
				}
			}
		}
		cancel()
		if rerr != nil {
			down = append(down, b)
		} else {
			up++
		}
	}
	if up == 0 {
		return down, fmt.Errorf("remote: no live backend among %s", strings.Join(p.backends, ","))
	}
	return down, nil
}

// Simulate runs one point remotely, satisfying experiments.Runner: the
// returned Stats and error taxonomy match uarch.SimulateChecked on a live
// fleet, so memoization, Failures() accounting, and checkpointing behave
// identically to local execution.
func (p *Pool) Simulate(ctx context.Context, prog *isa.Program, cfg uarch.Config) (*uarch.Stats, error) {
	r, err := p.SimulateFull(ctx, prog, cfg)
	if err != nil {
		return nil, err
	}
	return r.Stats, nil
}

// SimulateSampled runs one point remotely with interval-sampled timing,
// satisfying experiments.SampledRunner. The routing key gains the sampling
// geometry, so sampled and exact results occupy disjoint server cache
// keyspaces, and verification compares the estimate within tolerance rather
// than byte-for-byte.
func (p *Pool) SimulateSampled(ctx context.Context, prog *isa.Program, cfg uarch.Config, sp uarch.Sampling) (*uarch.Stats, *uarch.SampleEstimate, error) {
	r, err := p.run(ctx, prog, cfg, sp)
	if err != nil {
		return nil, nil, err
	}
	return r.Stats, r.Estimate, nil
}

// SimulateFull is Simulate with provenance: which backend answered, how many
// attempts it took, and whether the result was hedged or verified.
func (p *Pool) SimulateFull(ctx context.Context, prog *isa.Program, cfg uarch.Config) (*Result, error) {
	return p.run(ctx, prog, cfg, uarch.Sampling{})
}

func (p *Pool) run(ctx context.Context, prog *isa.Program, cfg uarch.Config, sp uarch.Sampling) (*Result, error) {
	body, key, err := encodeRequest(prog, cfg, p.opt.TimeoutMS, sp)
	if err != nil {
		return nil, err
	}
	p.requests.Add(1)
	cands := p.ring.candidates(key)

	var res *Result
	if p.opt.Hedge && p.opt.MaxAttempts > 1 {
		res, err = p.runHedged(ctx, key, body, cands)
	} else {
		res, err = p.runAttempts(ctx, key, body, cands, p.opt.MaxAttempts)
	}
	if err != nil {
		var un *Unavailable
		if p.opt.Fallback == FallbackLocal && errors.As(err, &un) {
			// The fleet is gone or drowning; degrade to in-process
			// simulation. Local execution is the determinism reference, so
			// the result — and everything downstream: memo entries,
			// checkpoints, stdout — is bit-identical to a healthy fleet's.
			return p.runLocal(ctx, prog, cfg, sp)
		}
		return nil, err
	}
	if p.opt.VerifyEvery > 0 && hashKey(key)%uint64(p.opt.VerifyEvery) == 0 {
		if err := p.verifyLocal(ctx, prog, cfg, sp, res); err != nil {
			return nil, err
		}
		res.Verified = true
		p.verified.Add(1)
	}
	return res, nil
}

// encodeRequest serializes the exact program image and full configuration.
// Sending the image (rather than a workload name) guarantees the backend
// simulates the same bytes the caller would locally — iteration calibration,
// braid compilation, and any local program surgery are all already baked in —
// and makes the routing key identical for identical points everywhere.
func encodeRequest(prog *isa.Program, cfg uarch.Config, timeoutMS int64, sp uarch.Sampling) (body []byte, key string, err error) {
	var img bytes.Buffer
	if err := isa.WriteImage(&img, prog); err != nil {
		return nil, "", fmt.Errorf("remote: encoding %q: %w", prog.Name, err)
	}
	cfg.Inject = nil // process-local and json-excluded; never meaningful remotely
	cfgJSON, err := json.Marshal(&cfg)
	if err != nil {
		return nil, "", fmt.Errorf("remote: encoding config: %w", err)
	}
	progSum := sha256.Sum256(img.Bytes())
	cfgSum := sha256.Sum256(cfgJSON)
	key = hex.EncodeToString(progSum[:]) + ":" + hex.EncodeToString(cfgSum[:])
	if sp.Enabled() {
		// Mirror the server's cache-key suffix, so a sampled point routes to
		// the backend whose LRU holds the sampled (not the exact) entry.
		key += ":s" + sp.String()
	}

	noBraid := false // the image is final; the backend must not recompile it
	req := service.SimRequest{
		Image:     base64.StdEncoding.EncodeToString(img.Bytes()),
		Config:    &cfg,
		Braid:     &noBraid,
		TimeoutMS: timeoutMS,
	}
	if sp.Enabled() {
		req.Sampling = &sp
	}
	body, err = json.Marshal(&req)
	if err != nil {
		return nil, "", fmt.Errorf("remote: encoding request: %w", err)
	}
	return body, key, nil
}

// runHedged races the normal attempt chain against a second chain started on
// the next ring backend once the first has been in flight longer than the
// pool's observed p95 latency. Identical concurrent requests coalesce on the
// server, so even a same-backend hedge costs a queue slot, not a simulation.
func (p *Pool) runHedged(ctx context.Context, key string, body []byte, cands []int) (*Result, error) {
	// Each side gets its own cancelable context so the losing request is
	// torn down the moment the other side wins — not when this function
	// happens to return. A hedged in-flight request holds a real queue
	// slot (and, once admitted, a worker) on its backend; leaving it to
	// run to completion after the race is decided inflates workers_busy
	// and queue depth across the fleet for the full simulation time.
	type out struct {
		res *Result
		err error
		idx int
	}
	attemptCtx := [2]context.Context{}
	attemptCancel := [2]context.CancelFunc{}
	attemptCtx[0], attemptCancel[0] = context.WithCancel(ctx)
	defer attemptCancel[0]()
	ch := make(chan out, 2)
	primaryAttempts := p.opt.MaxAttempts - 1
	if primaryAttempts < 1 {
		primaryAttempts = 1
	}
	go func() {
		r, err := p.runAttempts(attemptCtx[0], key, body, cands, primaryAttempts)
		ch <- out{r, err, 0}
	}()
	timer := time.NewTimer(p.hedgeDelay())
	defer timer.Stop()
	inflight, hedged := 1, false
	var firstErr error
	for {
		select {
		case o := <-ch:
			inflight--
			if o.err == nil {
				if o.idx == 1 {
					o.res.Hedged = true
					p.hedgeWins.Add(1)
				}
				// Cancel the loser explicitly before returning the win.
				if c := attemptCancel[1-o.idx]; c != nil {
					c()
				}
				return o.res, nil
			}
			if firstErr == nil || o.idx == 0 {
				firstErr = o.err
			}
			if inflight == 0 {
				return nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				p.hedges.Add(1)
				rotated := append(append([]int(nil), cands[1:]...), cands[0])
				inflight++
				attemptCtx[1], attemptCancel[1] = context.WithCancel(ctx)
				defer attemptCancel[1]()
				go func() {
					r, err := p.runAttempts(attemptCtx[1], key, body, rotated, 1)
					ch <- out{r, err, 1}
				}()
			}
		case <-ctx.Done():
			return nil, fmt.Errorf("remote: %w", ctxSentinel(ctx))
		}
	}
}

// hedgeDelay is the pool's p95 observed latency, floored by HedgeFloor;
// before enough samples accumulate it is a conservative fixed delay.
func (p *Pool) hedgeDelay() time.Duration {
	p.latMu.Lock()
	n := p.latN
	var sample []float64
	if n >= 16 {
		sample = append(sample, p.latMS[:n]...)
	}
	p.latMu.Unlock()
	if sample == nil {
		d := 250 * time.Millisecond
		if d < p.opt.HedgeFloor {
			d = p.opt.HedgeFloor
		}
		return d
	}
	sort.Float64s(sample)
	p95 := sample[(len(sample)*95)/100]
	d := time.Duration(p95 * float64(time.Millisecond))
	if d < p.opt.HedgeFloor {
		d = p.opt.HedgeFloor
	}
	return d
}

func (p *Pool) observeLatency(d time.Duration) {
	ms := float64(d.Nanoseconds()) / 1e6
	p.latMu.Lock()
	p.latMS[p.latPos] = ms
	p.latPos = (p.latPos + 1) % len(p.latMS)
	if p.latN < len(p.latMS) {
		p.latN++
	}
	p.latMu.Unlock()
}

// errBreakersOpen is the Unavailable cause when every candidate backend's
// circuit breaker short-circuited the request before a single byte was sent.
var errBreakersOpen = errors.New("every backend's circuit breaker is open")

// pickBackend returns the first candidate, scanning ring order from the
// attempt's rotation, whose circuit breaker admits a request. Skipped
// backends count as short-circuits — the attempts the breaker saved.
func (p *Pool) pickBackend(cands []int, attempt int, now time.Time) (int, bool) {
	n := len(cands)
	for off := 0; off < n; off++ {
		c := cands[(attempt+off)%n]
		if p.opt.DisableBreaker || p.breakers[c].allow(now) {
			return c, true
		}
		p.shortCircuits.Add(1)
	}
	return 0, false
}

// noteOutcome feeds one attempt's result to the backend's breaker. An
// overload (429) proves the backend alive — it answered, it is just
// shedding — so it counts as breaker success even though the attempt
// failed; tripping on shed would amplify a load spike into an ejection.
func (p *Pool) noteOutcome(idx int, failed bool, now time.Time) {
	if p.opt.DisableBreaker {
		return
	}
	if failed {
		p.breakers[idx].failure(now)
	} else {
		p.breakers[idx].success()
	}
}

// runAttempts walks the candidate backends, retrying retryable failures with
// exponential backoff + jitter and honoring Retry-After. Attempt k starts
// from cands[k % len(cands)] — the consistent-hash owner first, then
// failover in ring order, returning to the owner on later rounds in case it
// recovered — and skips past backends whose breakers are open, so a tripped
// backend costs nothing while keeping its ring position (and therefore its
// cache affinity) for when it heals. If every breaker is open the point
// fails fast as Unavailable rather than burning the attempt budget.
func (p *Pool) runAttempts(ctx context.Context, key string, body []byte, cands []int, maxAttempts int) (*Result, error) {
	var lastErr error
	prev := -1
	for attempt := 0; attempt < maxAttempts; attempt++ {
		idx, ok := p.pickBackend(cands, attempt, time.Now())
		if !ok {
			if lastErr == nil {
				lastErr = errBreakersOpen
			}
			return nil, &Unavailable{Key: key, Attempts: attempt, Last: lastErr}
		}
		if attempt > 0 {
			p.retries.Add(1)
			if idx != prev {
				p.failovers.Add(1)
			}
		}
		prev = idx
		res, retryAfter, err := p.call(ctx, p.backends[idx], body)
		if err == nil {
			res.Attempts = attempt + 1
			p.perBackend[idx].Add(1)
			p.noteOutcome(idx, false, time.Now())
			return res, nil
		}
		var re *retryableError
		if !errors.As(err, &re) {
			if ctx.Err() == nil {
				// A terminal, authoritative answer (translated sim error,
				// bad request): the backend is alive and working.
				p.noteOutcome(idx, false, time.Now())
			}
			return nil, err // terminal: translated sim error, cancellation, ...
		}
		p.failedAttempts.Add(1)
		p.noteOutcome(idx, !re.overload, time.Now())
		lastErr = re.err
		if err := p.sleepBackoff(ctx, attempt, retryAfter); err != nil {
			return nil, err
		}
	}
	return nil, &Unavailable{Key: key, Attempts: maxAttempts, Last: lastErr}
}

// runLocal degrades one point to in-process simulation (FallbackLocal). The
// result carries the same RawStats bytes a backend would have served —
// json.Marshal of the local Stats is exactly what braidd embeds — so
// downstream byte-equality consumers cannot tell the difference.
func (p *Pool) runLocal(ctx context.Context, prog *isa.Program, cfg uarch.Config, sp uarch.Sampling) (*Result, error) {
	p.localFallbacks.Add(1)
	var (
		st  *uarch.Stats
		est *uarch.SampleEstimate
		err error
	)
	if sp.Enabled() {
		st, est, err = uarch.SimulateSampled(ctx, prog, cfg, sp)
	} else {
		st, err = uarch.SimulateChecked(ctx, prog, cfg)
	}
	if err != nil {
		return nil, err // already in the local taxonomy
	}
	raw, err := json.Marshal(st)
	if err != nil {
		return nil, err
	}
	return &Result{Stats: st, Estimate: est, RawStats: raw, Source: "local",
		Complexity: uarch.EstimateComplexity(cfg).Total()}, nil
}

// sleepBackoff waits out the exponential backoff (with ±50% jitter) or the
// server's Retry-After hint, whichever the server asked for, respecting ctx.
func (p *Pool) sleepBackoff(ctx context.Context, attempt int, retryAfter time.Duration) error {
	d := p.opt.BaseBackoff << uint(attempt)
	if d > p.opt.MaxBackoff || d <= 0 {
		d = p.opt.MaxBackoff
	}
	if retryAfter > 0 {
		d = retryAfter
		if d > p.opt.MaxBackoff {
			d = p.opt.MaxBackoff // a long hint should not stall failover
		}
	}
	p.rngMu.Lock()
	jitter := 0.5 + p.rng.Float64() // 0.5x .. 1.5x
	p.rngMu.Unlock()
	d = time.Duration(float64(d) * jitter)
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("remote: %w", ctxSentinel(ctx))
	}
}

// retryableError wraps a failure worth another attempt: overload, a 5xx, or
// a transport error. Everything else is terminal. overload marks a 429 —
// the backend answered, it is just shedding — which retries like any other
// transient failure but must not count against the backend's breaker.
type retryableError struct {
	err      error
	overload bool
}

func (e *retryableError) Error() string { return e.err.Error() }
func (e *retryableError) Unwrap() error { return e.err }

// call performs one HTTP attempt against one backend.
func (p *Pool) call(ctx context.Context, backend string, body []byte) (*Result, time.Duration, error) {
	actx, cancel := context.WithTimeout(ctx, p.opt.Timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(actx, http.MethodPost, backend+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return nil, 0, fmt.Errorf("remote: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	t0 := time.Now()
	resp, err := p.client.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, 0, fmt.Errorf("remote: %w", ctxSentinel(ctx))
		}
		// Connection refused/reset, per-attempt timeout: try elsewhere.
		return nil, 0, &retryableError{err: fmt.Errorf("%s: %w", backend, err)}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		if ctx.Err() != nil {
			return nil, 0, fmt.Errorf("remote: %w", ctxSentinel(ctx))
		}
		return nil, 0, &retryableError{err: fmt.Errorf("%s: reading response: %w", backend, err)}
	}
	if resp.StatusCode == http.StatusOK {
		var sr struct {
			Stats    json.RawMessage `json:"stats"`
			Source   string          `json:"source"`
			Sampling *struct {
				Estimate *uarch.SampleEstimate `json:"estimate"`
			} `json:"sampling"`
			Complexity *struct {
				Total float64 `json:"total"`
			} `json:"complexity"`
		}
		if err := json.Unmarshal(data, &sr); err != nil || len(sr.Stats) == 0 {
			return nil, 0, &retryableError{err: fmt.Errorf("%s: malformed response: %v", backend, err)}
		}
		// End-to-end integrity: the server stamps the SHA-256 of the Stats
		// JSON it embedded. A body mangled in transit still parses if the
		// corruption keeps the JSON well-formed; the digest does not lie.
		// Mismatch is a transport-class failure — retry elsewhere.
		if want := resp.Header.Get(statsSHAHeader); want != "" {
			sum := sha256.Sum256(sr.Stats)
			if got := hex.EncodeToString(sum[:]); got != want {
				p.integrityFailures.Add(1)
				return nil, 0, &retryableError{err: fmt.Errorf(
					"%s: stats integrity: body sha256 %.16s… != header %.16s…", backend, got, want)}
			}
		}
		st := new(uarch.Stats)
		if err := json.Unmarshal(sr.Stats, st); err != nil {
			return nil, 0, &retryableError{err: fmt.Errorf("%s: malformed stats: %w", backend, err)}
		}
		p.observeLatency(time.Since(t0))
		raw := make([]byte, len(sr.Stats))
		copy(raw, sr.Stats)
		res := &Result{Stats: st, RawStats: raw, Source: sr.Source, Backend: backend}
		if sr.Sampling != nil {
			res.Estimate = sr.Sampling.Estimate
		}
		if sr.Complexity != nil {
			res.Complexity = sr.Complexity.Total
		}
		return res, 0, nil
	}
	return nil, parseRetryAfter(resp), p.translateError(backend, resp.StatusCode, data)
}

// statsSHAHeader carries the server's SHA-256 over the Stats JSON bytes
// embedded in a /v1/simulate response, hex-encoded.
const statsSHAHeader = "X-Braid-Stats-SHA256"

func parseRetryAfter(resp *http.Response) time.Duration {
	return retryAfterDuration(resp.Header.Get("Retry-After"), time.Now())
}

// retryAfterDuration parses a Retry-After header in either RFC 9110 form:
// delta-seconds ("120") or an HTTP-date ("Fri, 07 Aug 2026 12:00:00 GMT").
// A hint in the past, zero, or unparseable is no hint at all. The caller
// (sleepBackoff) caps whatever this returns at MaxBackoff, so a confused
// server cannot stall failover.
func retryAfterDuration(s string, now time.Time) time.Duration {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0
	}
	if secs, err := strconv.ParseInt(s, 10, 64); err == nil {
		if secs > 0 {
			return time.Duration(secs) * time.Second
		}
		return 0
	}
	if t, err := http.ParseTime(s); err == nil {
		if d := t.Sub(now); d > 0 {
			return d
		}
	}
	return 0
}

// translateError maps a backend's structured error to the local simulation
// error taxonomy, so experiments.Contained/Transient and braidbench's
// Failures() accounting classify remote failures exactly like local ones.
func (p *Pool) translateError(backend string, status int, data []byte) error {
	var env struct {
		Error struct {
			Kind    string `json:"kind"`
			Message string `json:"message"`
			Cycle   uint64 `json:"cycle"`
		} `json:"error"`
	}
	json.Unmarshal(data, &env) // best effort; an empty kind falls through below
	switch env.Error.Kind {
	case "sim_fault":
		return fmt.Errorf("remote %s: %w", backend,
			&uarch.SimFault{Cycle: env.Error.Cycle, Panic: env.Error.Message})
	case "cycle_limit":
		return fmt.Errorf("remote %s: %s: %w", backend, env.Error.Message, uarch.ErrCycleLimit)
	case "deadline":
		return fmt.Errorf("remote %s: %s: %w", backend, env.Error.Message, uarch.ErrTimeout)
	case "compile_fault", "bad_request":
		return fmt.Errorf("remote %s: status %d: %s", backend, status, env.Error.Message)
	}
	switch {
	case status == http.StatusTooManyRequests || status >= 500:
		return &retryableError{
			err:      fmt.Errorf("%s: status %d: %s", backend, status, bytes.TrimSpace(data)),
			overload: status == http.StatusTooManyRequests,
		}
	default:
		return fmt.Errorf("remote %s: status %d: %s", backend, status, bytes.TrimSpace(data))
	}
}

// verifyTolerance bounds the relative IPC disagreement accepted when
// verifying a sampled point. The estimator is deterministic, so the slack
// covers only cross-platform floating-point variation in the CPI scaling —
// a real divergence is orders of magnitude larger.
const verifyTolerance = 1e-9

// verifyLocal re-simulates the point in-process. Exact results must match
// the backend's Stats bytes bit for bit — the determinism contract
// distributed sweeps stand on. Sampled results carry float arithmetic in
// the estimate, so they are instead required to agree exactly on the
// architectural counts (retired/fetched — same trace either way) and on IPC
// within verifyTolerance.
func (p *Pool) verifyLocal(ctx context.Context, prog *isa.Program, cfg uarch.Config, sp uarch.Sampling, res *Result) error {
	if sp.Enabled() {
		st, _, err := uarch.SimulateSampled(ctx, prog, cfg, sp)
		if err != nil {
			return &VerifyError{Backend: res.Backend, Program: prog.Name,
				Detail: fmt.Sprintf("local sampled run failed where remote succeeded: %v", err)}
		}
		if st.Retired != res.Stats.Retired || st.Fetched != res.Stats.Fetched {
			return &VerifyError{Backend: res.Backend, Program: prog.Name,
				Detail: fmt.Sprintf("sampled architectural counts diverge: remote retired/fetched %d/%d, local %d/%d",
					res.Stats.Retired, res.Stats.Fetched, st.Retired, st.Fetched)}
		}
		local, rem := st.IPC(), res.Stats.IPC()
		if local == 0 || math.Abs(rem-local)/local > verifyTolerance {
			return &VerifyError{Backend: res.Backend, Program: prog.Name,
				Detail: fmt.Sprintf("sampled IPC diverges beyond tolerance: remote %.12f, local %.12f", rem, local)}
		}
		return nil
	}
	st, err := uarch.SimulateChecked(ctx, prog, cfg)
	if err != nil {
		return &VerifyError{Backend: res.Backend, Program: prog.Name,
			Detail: fmt.Sprintf("local run failed where remote succeeded: %v", err)}
	}
	want, err := json.Marshal(st)
	if err != nil {
		return err
	}
	if !bytes.Equal(want, res.RawStats) {
		return &VerifyError{Backend: res.Backend, Program: prog.Name,
			Detail: fmt.Sprintf("remote %s != local %s", res.RawStats, want)}
	}
	return nil
}

// ctxSentinel maps a context failure onto the simulation error taxonomy.
func ctxSentinel(ctx context.Context) error {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return uarch.ErrTimeout
	}
	return uarch.ErrCanceled
}

// Unavailable reports a point whose every attempt failed: the fleet is gone
// or drowning. It is transient — the point may succeed once backends return —
// so suite memo caches must not poison its key.
type Unavailable struct {
	Key      string
	Attempts int
	Last     error
}

func (u *Unavailable) Error() string {
	return fmt.Sprintf("remote: all %d attempts failed (key %.16s…): %v", u.Attempts, u.Key, u.Last)
}
func (u *Unavailable) Unwrap() error { return u.Last }

// TransientError marks Unavailable for experiments.Transient.
func (u *Unavailable) TransientError() bool { return true }

// VerifyError reports a remote result that differs from local simulation —
// a broken determinism contract, never a skippable per-point failure.
type VerifyError struct {
	Backend string
	Program string
	Detail  string
}

func (v *VerifyError) Error() string {
	return fmt.Sprintf("remote: verification failed for %q on %s: %s", v.Program, v.Backend, v.Detail)
}
