package cfg

import (
	"testing"

	"braid/internal/workload"
)

func TestDominatorsStraightLine(t *testing.T) {
	p := mustParse(t, `
	ldimm r1, #1
	br a
a:
	add r2, r1, #1
	br b
b:
	halt
`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	idom := Dominators(g)
	// Chain: each block's idom is its predecessor.
	for b := 1; b < len(g.Blocks); b++ {
		if idom[b] != b-1 {
			t.Errorf("idom[%d] = %d, want %d", b, idom[b], b-1)
		}
	}
}

func TestDominatorsDiamond(t *testing.T) {
	p := mustParse(t, `
	ldimm r1, #1
	bne r1, right
	add r2, r1, #1
	br join
right:
	add r3, r1, #2
join:
	halt
`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	idom := Dominators(g)
	// Blocks: 0 entry, 1 left, 2 right, 3 join. The join's immediate
	// dominator must be the entry, not either arm.
	if len(g.Blocks) != 4 {
		t.Fatalf("blocks = %d, want 4", len(g.Blocks))
	}
	if idom[3] != 0 {
		t.Errorf("idom[join] = %d, want 0 (the fork)", idom[3])
	}
	if idom[1] != 0 || idom[2] != 0 {
		t.Errorf("arm idoms = %d, %d, want 0, 0", idom[1], idom[2])
	}
}

func TestNaturalLoopSimple(t *testing.T) {
	p := mustParse(t, loopSrc)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	loops := NaturalLoops(g)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	l := loops[0]
	if l.Header != 1 {
		t.Errorf("header = block %d, want 1", l.Header)
	}
	if len(l.Blocks) != 1 || !l.Contains(1) {
		t.Errorf("loop body = %v, want just the header", l.Blocks)
	}
	if l.Contains(0) || l.Contains(2) {
		t.Error("loop contains blocks outside the cycle")
	}
}

func TestNaturalLoopsNested(t *testing.T) {
	// The matmul kernel has three nested loops plus the seed loop.
	k, ok := workload.KernelByName("matmul")
	if !ok {
		t.Fatal("matmul kernel missing")
	}
	g, err := Build(k)
	if err != nil {
		t.Fatal(err)
	}
	loops := NaturalLoops(g)
	if len(loops) != 4 {
		t.Fatalf("matmul loops = %d, want 4 (seed + i + j + k)", len(loops))
	}
	// Nesting: the innermost (k) loop body is contained in the j loop,
	// which is contained in the i loop.
	var sizes []int
	for _, l := range loops {
		sizes = append(sizes, len(l.Blocks))
	}
	// Find containment chains: exactly one loop contains another of the
	// three matrix loops, twice over.
	contains := 0
	for _, outer := range loops {
		for _, inner := range loops {
			if outer.Header == inner.Header {
				continue
			}
			all := true
			for _, b := range inner.Blocks {
				if !outer.Contains(b) {
					all = false
					break
				}
			}
			if all {
				contains++
			}
		}
	}
	if contains != 3 { // i⊃j, i⊃k, j⊃k
		t.Errorf("containment pairs = %d (sizes %v), want 3", contains, sizes)
	}
}

func TestGeneratedProgramLoopShape(t *testing.T) {
	// Every generated benchmark is one big counted loop: a single natural
	// loop whose body spans all the body blocks.
	prof, _ := workload.ProfileByName("gcc")
	p, err := workload.Generate(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	loops := NaturalLoops(g)
	if len(loops) != 1 {
		t.Fatalf("loops = %d, want 1", len(loops))
	}
	if got := len(loops[0].Blocks); got < prof.Blocks {
		t.Errorf("loop spans %d blocks, want >= %d", got, prof.Blocks)
	}
}
