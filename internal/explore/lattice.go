// Package explore searches the uarch.Config design space for the IPC ×
// hardware-complexity Pareto frontier the paper argues from: braid cores
// within a few percent of an aggressive out-of-order machine's performance
// at close to in-order cost. The search is an NSGA-II-lite genetic loop —
// non-dominated sort, crowding distance, seeded mutation and crossover over
// a typed parameter lattice — evaluated through experiments.Workloads, so it
// composes with memoization, interval sampling, remote fleet execution, and
// contained-fault accounting without any code of its own for those.
//
// Everything is deterministic by construction: all genetic operations run
// serially on one goroutine with a per-generation seeded RNG, evaluation
// fans out through one IPCAll call per generation (order-independent by
// keying results on Point), and the final front is sorted canonically. The
// front digest is therefore byte-identical at any -j and across
// checkpoint/interrupt/resume.
package explore

import (
	"fmt"
	"math/rand"

	"braid/internal/uarch"
)

// Genome is one point in the search lattice. Every field is an index into
// the corresponding option table below — not a raw hardware value — so
// mutation is "step to a neighboring option" and any field combination maps
// to a machine that uarch.Config.Validate accepts (Config still validates as
// a backstop). Genomes are comparable, which the archive and checkpoint
// dedupe rely on.
type Genome struct {
	Core     int8 `json:"core"`     // Cores: execution paradigm
	Width    int8 `json:"width"`    // Widths: fetch/issue width
	Retire   int8 `json:"retire"`   // RetireFracs: retire width as a fraction of issue
	BEUs     int8 `json:"beus"`     // BEUCounts: braid execution units (braid core only)
	IQ       int8 `json:"iq"`       // IQSizes: scheduler entries / BEU FIFO / steer FIFO depth
	Window   int8 `json:"window"`   // Windows: in-order window at the BEU FIFO head (braid only)
	ERF      int8 `json:"erf"`      // ERFSizes: external register-file entries
	RPorts   int8 `json:"rports"`   // ReadPorts: external RF read ports
	WPorts   int8 `json:"wports"`   // WritePorts: external RF write ports
	Bypass   int8 `json:"bypass"`   // BypassLevels: bypass network depth (values scale with it)
	PredEnt  int8 `json:"predent"`  // PredEntries: perceptron table size
	PredHist int8 `json:"predhist"` // PredHistories: global history bits
}

// The option tables. Order matters twice over: mutation steps between
// neighbors, so each table is sorted by hardware aggressiveness, and the
// checkpoint format stores indices, so reordering or removing entries
// invalidates old checkpoints (append new options at the end and bump
// latticeVersion if the meaning of an index changes).
var (
	Cores         = []uarch.CoreKind{uarch.CoreInOrder, uarch.CoreDepSteer, uarch.CoreBraid, uarch.CoreOutOfOrder}
	Widths        = []int{2, 4, 8, 16}
	RetireFracs   = []int{1, 2} // divisor: retire width = issue width / frac
	BEUCounts     = []int{2, 4, 8, 16}
	IQSizes       = []int{8, 16, 32, 64}
	Windows       = []int{1, 2, 4}
	ERFSizes      = []int{4, 8, 16, 32, 64, 128, 256}
	ReadPorts     = []int{2, 4, 6, 8, 16}
	WritePorts    = []int{1, 2, 3, 4, 8}
	BypassDepths  = []int{1, 2, 3}
	PredEntries   = []int{128, 256, 512, 1024}
	PredHistories = []int{16, 32, 64}
)

// latticeVersion is stamped into checkpoints; resuming across an
// incompatible lattice is refused rather than silently misread.
const latticeVersion = 1

// LatticeVersion is the exported lattice identity, for callers stamping
// artifacts (the -front JSON) outside the checkpoint machinery.
const LatticeVersion = latticeVersion

// gene describes one mutable field: its name (for diagnostics), its option
// count, and an accessor. The slice is the single source of truth for the
// genetic operators, so adding a field to Genome means adding a row here.
type gene struct {
	name string
	n    int
	get  func(*Genome) *int8
}

var genes = []gene{
	{"core", len(Cores), func(g *Genome) *int8 { return &g.Core }},
	{"width", len(Widths), func(g *Genome) *int8 { return &g.Width }},
	{"retire", len(RetireFracs), func(g *Genome) *int8 { return &g.Retire }},
	{"beus", len(BEUCounts), func(g *Genome) *int8 { return &g.BEUs }},
	{"iq", len(IQSizes), func(g *Genome) *int8 { return &g.IQ }},
	{"window", len(Windows), func(g *Genome) *int8 { return &g.Window }},
	{"erf", len(ERFSizes), func(g *Genome) *int8 { return &g.ERF }},
	{"rports", len(ReadPorts), func(g *Genome) *int8 { return &g.RPorts }},
	{"wports", len(WritePorts), func(g *Genome) *int8 { return &g.WPorts }},
	{"bypass", len(BypassDepths), func(g *Genome) *int8 { return &g.Bypass }},
	{"predent", len(PredEntries), func(g *Genome) *int8 { return &g.PredEnt }},
	{"predhist", len(PredHistories), func(g *Genome) *int8 { return &g.PredHist }},
}

// valid reports whether every index is inside its table (checkpoints from a
// different lattice, or hand-edited ones, are the only way to violate this).
func (g Genome) valid() bool {
	for _, ge := range genes {
		v := *ge.get(&g)
		if v < 0 || int(v) >= ge.n {
			return false
		}
	}
	return true
}

// randomGenome samples every gene uniformly.
func randomGenome(rng *rand.Rand) Genome {
	var g Genome
	for _, ge := range genes {
		*ge.get(&g) = int8(rng.Intn(ge.n))
	}
	return g
}

// mutate flips genes in place: each gene steps to a neighboring option with
// probability 1/len(genes), and at least one gene always changes (a clone
// of its parent would waste an evaluation). Steps are ±1 clamped, so
// mutation walks the lattice instead of teleporting; a small uniform-resample
// chance keeps the search from getting stuck on a table edge.
func mutate(g *Genome, rng *rand.Rand) {
	changed := false
	for _, ge := range genes {
		if rng.Intn(len(genes)) != 0 {
			continue
		}
		changed = stepGene(ge, g, rng) || changed
	}
	if !changed {
		ge := genes[rng.Intn(len(genes))]
		for !stepGene(ge, g, rng) {
			ge = genes[rng.Intn(len(genes))]
		}
	}
}

// stepGene moves one gene and reports whether its value actually changed.
func stepGene(ge gene, g *Genome, rng *rand.Rand) bool {
	p := ge.get(g)
	old := *p
	if ge.n == 1 {
		return false
	}
	if rng.Intn(8) == 0 { // occasional long-range jump
		*p = int8(rng.Intn(ge.n))
	} else {
		step := int8(1)
		if rng.Intn(2) == 0 {
			step = -1
		}
		v := *p + step
		if v < 0 {
			v = 1
		}
		if int(v) >= ge.n {
			v = int8(ge.n - 2)
		}
		*p = v
	}
	return *p != old
}

// crossover builds a child by uniform per-gene selection from two parents.
func crossover(a, b Genome, rng *rand.Rand) Genome {
	child := a
	for _, ge := range genes {
		if rng.Intn(2) == 0 {
			*ge.get(&child) = *ge.get(&b)
		}
	}
	return child
}

// Config derives the machine a genome encodes. It starts from the canonical
// constructor for the genome's paradigm — inheriting the front-end depths,
// misprediction penalties, latencies, and memory hierarchy of Table 4 — and
// overrides the swept structures. Validate runs as a backstop so no caller
// ever simulates an inconsistent machine.
func (g Genome) Config() (uarch.Config, error) {
	if !g.valid() {
		return uarch.Config{}, fmt.Errorf("explore: genome %+v outside the lattice", g)
	}
	width := Widths[g.Width]
	var c uarch.Config
	switch Cores[g.Core] {
	case uarch.CoreInOrder:
		c = uarch.InOrderConfig(width)
	case uarch.CoreDepSteer:
		c = uarch.DepSteerConfig(width)
		c.SteerFIFODeep = IQSizes[g.IQ]
	case uarch.CoreBraid:
		c = uarch.BraidConfig(width)
		c.BEUs = BEUCounts[g.BEUs]
		c.BEUFIFO = IQSizes[g.IQ]
		c.BEUWindow = Windows[g.Window]
		c.TotalFUs = c.BEUs * c.BEUFUs
	case uarch.CoreOutOfOrder:
		c = uarch.OutOfOrderConfig(width)
		c.SchedEntries = IQSizes[g.IQ]
	}
	c.RetireWidth = width / RetireFracs[g.Retire]
	if c.RetireWidth < 1 {
		c.RetireWidth = 1
	}
	c.RFEntries = ERFSizes[g.ERF]
	c.RFReadPorts = ReadPorts[g.RPorts]
	c.RFWritePorts = WritePorts[g.WPorts]
	c.BypassLevels = BypassDepths[g.Bypass]
	c.BypassValues = 2 * c.BypassLevels
	c.PredEntries = PredEntries[g.PredEnt]
	c.PredHistory = PredHistories[g.PredHist]
	if err := c.Validate(); err != nil {
		return uarch.Config{}, err
	}
	return c, nil
}

// Braided reports whether the genome's machine runs braid-compiled binaries.
func (g Genome) Braided() bool { return Cores[g.Core] == uarch.CoreBraid }

// String renders a compact human-readable summary.
func (g Genome) String() string {
	if !g.valid() {
		return fmt.Sprintf("invalid genome %v", [12]int8{g.Core, g.Width, g.Retire, g.BEUs, g.IQ, g.Window,
			g.ERF, g.RPorts, g.WPorts, g.Bypass, g.PredEnt, g.PredHist})
	}
	s := fmt.Sprintf("%s/%dw rf%d:%dr%dw iq%d byp%d pred%d/%d",
		Cores[g.Core], Widths[g.Width], ERFSizes[g.ERF], ReadPorts[g.RPorts],
		WritePorts[g.WPorts], IQSizes[g.IQ], BypassDepths[g.Bypass],
		PredEntries[g.PredEnt], PredHistories[g.PredHist])
	if g.Braided() {
		s += fmt.Sprintf(" beu%dx%d", BEUCounts[g.BEUs], Windows[g.Window])
	}
	return s
}
