package service

import (
	"container/list"
	"sync"

	"braid/internal/uarch"
)

// resultCache is a keyed LRU over successful simulation results. The
// simulator is deterministic, so a (program hash, config hash) key fully
// identifies the Stats it produces and a hit is bit-identical to rerunning.
// Failures are never cached: a fault or limit must re-execute so a fixed
// input or a raised budget can succeed.
type resultCache struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
}

type cacheEntry struct {
	key string
	st  *uarch.Stats
	est *uarch.SampleEstimate // non-nil only for sampled results
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap:   capacity,
		ll:    list.New(),
		items: make(map[string]*list.Element, capacity),
	}
}

// cloneStats copies a Stats record. Stats is a flat struct of counters, so
// a value copy is a deep copy; handing out clones keeps the cache's master
// copy (and a flight's shared result) immune to caller mutation.
func cloneStats(st *uarch.Stats) *uarch.Stats {
	if st == nil {
		return nil
	}
	c := *st
	return &c
}

// cloneEstimate copies a sampled run's estimate record (a flat struct, like
// Stats); nil stays nil for exact results.
func cloneEstimate(est *uarch.SampleEstimate) *uarch.SampleEstimate {
	if est == nil {
		return nil
	}
	c := *est
	return &c
}

func (c *resultCache) get(key string) (*uarch.Stats, *uarch.SampleEstimate, bool) {
	if c.cap <= 0 {
		return nil, nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, nil, false
	}
	c.ll.MoveToFront(el)
	e := el.Value.(*cacheEntry)
	return cloneStats(e.st), cloneEstimate(e.est), true
}

func (c *resultCache) put(key string, st *uarch.Stats, est *uarch.SampleEstimate) {
	if c.cap <= 0 {
		return
	}
	st = cloneStats(st) // the cache owns its copy; the caller keeps theirs
	est = cloneEstimate(est)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*cacheEntry)
		e.st, e.est = st, est
		c.ll.MoveToFront(el)
		return
	}
	c.items[key] = c.ll.PushFront(&cacheEntry{key: key, st: st, est: est})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*cacheEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flight is one in-progress simulation that concurrent identical requests
// coalesce onto: the leader runs it, followers wait on done and read the
// shared outcome. Fields are written by the leader before done closes.
type flight struct {
	done  chan struct{}
	st    *uarch.Stats
	est   *uarch.SampleEstimate // non-nil only for sampled runs
	err   error
	simMS float64
}

// flightGroup deduplicates concurrent simulations by cache key, in the
// style of singleflight (stdlib-only, so hand-rolled here).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key and whether the caller is its leader
// (first in, responsible for running the simulation and completing the
// flight).
func (g *flightGroup) join(key string) (*flight, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if fl, ok := g.m[key]; ok {
		return fl, false
	}
	fl := &flight{done: make(chan struct{})}
	g.m[key] = fl
	return fl, true
}

// complete publishes the leader's outcome and releases the followers. The
// key is removed before done closes, so requests arriving after completion
// start fresh (and hit the result cache on success).
func (g *flightGroup) complete(key string, fl *flight, st *uarch.Stats, est *uarch.SampleEstimate, err error, simMS float64) {
	fl.st, fl.est, fl.err, fl.simMS = st, est, err, simMS
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(fl.done)
}
