package uarch

import (
	"testing"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/workload"
)

// TestExceptionSerialization exercises §3.4's exception mode: injected
// exceptions drain the pipeline, pay the checkpoint-restore penalty, and
// serialize the handler window through BEU 0. Retirement stays exact and
// each exception costs a measurable number of cycles.
func TestExceptionSerialization(t *testing.T) {
	prof, _ := workload.ProfileByName("gcc")
	p, err := workload.Generate(prof, 300)
	if err != nil {
		t.Fatal(err)
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	fs, err := interp.RunProgram(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}

	base := BraidConfig(8)
	sb, err := Simulate(res.Prog, base)
	if err != nil {
		t.Fatal(err)
	}

	exc := BraidConfig(8)
	exc.ExceptionEvery = 1000
	exc.ExceptionHandler = 64
	exc.Paranoid = true
	se, err := Simulate(res.Prog, exc)
	if err != nil {
		t.Fatal(err)
	}

	if se.Retired != fs.Steps {
		t.Fatalf("exceptions changed retirement: %d vs %d", se.Retired, fs.Steps)
	}
	wantExc := fs.Steps / 1000
	if se.Exceptions < wantExc-1 || se.Exceptions > wantExc+1 {
		t.Errorf("exceptions = %d, want ~%d", se.Exceptions, wantExc)
	}
	if se.Cycles <= sb.Cycles {
		t.Errorf("exceptions were free: %d vs %d cycles", se.Cycles, sb.Cycles)
	}
	perException := float64(se.Cycles-sb.Cycles) / float64(se.Exceptions)
	// Each exception costs at least the drain + restore penalty, and the
	// serialized handler window costs far more than normal execution.
	if perException < float64(exc.MispredictMin) {
		t.Errorf("%.1f cycles per exception, below the restore penalty %d", perException, exc.MispredictMin)
	}
	t.Logf("%d exceptions, %.0f cycles each (base %d cycles, with %d)",
		se.Exceptions, perException, sb.Cycles, se.Cycles)
}

// TestExceptionModeOnConventionalCore: injection works on cores without a
// serializer too (they just drain and pay the penalty).
func TestExceptionModeOnConventionalCore(t *testing.T) {
	prof, _ := workload.ProfileByName("crafty")
	p, err := workload.Generate(prof, 100)
	if err != nil {
		t.Fatal(err)
	}
	cfg := OutOfOrderConfig(8)
	cfg.ExceptionEvery = 500
	cfg.Paranoid = true
	st, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if st.Exceptions == 0 {
		t.Error("no exceptions injected")
	}
}
