// Package service is the braid simulation service: a long-running HTTP/JSON
// layer over the compiler and cycle-level simulator. It turns the library's
// fault-containment machinery into service semantics — contained *SimFault
// panics become structured 422s, context deadlines bound each request's
// simulation, a bounded admission queue sheds overload with 429, identical
// concurrent requests coalesce onto one run, and a deterministic-result LRU
// answers repeats without simulating at all.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"braid/internal/uarch"
)

// Wire headers shared with the internal/remote client (which keeps its own
// copies — the client imports this package, not the other way around).
const (
	// canaryHeader marks a health prober's known-answer simulation; such
	// requests wait for admission instead of being shed.
	canaryHeader = "X-Braid-Canary"
	// statsSHAHeader carries the hex SHA-256 of the Stats JSON embedded in
	// a /v1/simulate response, for end-to-end integrity verification.
	statsSHAHeader = "X-Braid-Stats-SHA256"
)

// Config sizes the server. Zero fields take the documented defaults.
type Config struct {
	Workers      int           // concurrent simulations (default GOMAXPROCS)
	QueueDepth   int           // admitted-but-waiting requests beyond Workers (default 4*Workers)
	CacheEntries int           // LRU result-cache capacity (default 1024; negative disables)
	MaxCycles    uint64        // per-request simulated-cycle ceiling (default 50M)
	MaxSimTime   time.Duration // per-request wall-clock ceiling (default 30s)
	MaxBodyBytes int64         // request-body limit (default 8 MiB)
	MaxBatch     int           // items allowed in one /v1/batch call (default 64)
	AccessLog    io.Writer     // structured JSON access log (nil: disabled)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 1024
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = defaultMaxCycles
	}
	if c.MaxSimTime <= 0 {
		c.MaxSimTime = defaultMaxSimTime
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	return c
}

// Server implements the simulation service endpoints. Create one with New,
// mount Handler on an http.Server, and call StartDrain before shutting the
// http.Server down so load balancers see /healthz flip before connections
// stop being accepted.
type Server struct {
	cfg      Config
	adm      *admission
	cache    *resultCache
	flights  *flightGroup
	met      *metrics
	mux      *http.ServeMux
	draining atomic.Bool
	logMu    sync.Mutex

	// testHookSimStart, when set, runs on the leader's goroutine after it
	// holds a worker slot and before it simulates, with the request context.
	// Tests use it to hold the pool busy deterministically; never set
	// outside tests.
	testHookSimStart func(ctx context.Context, key string)
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		adm:     newAdmission(cfg.Workers, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheEntries),
		flights: newFlightGroup(),
		met:     newMetrics(time.Now()),
	}
	s.met.m.Set("queue_depth", expvar.Func(func() any { return s.adm.waiting() }))
	s.met.m.Set("workers_busy", expvar.Func(func() any { return s.adm.busy() }))
	s.met.m.Set("cache_entries", expvar.Func(func() any { return s.cache.len() }))
	s.met.m.Set("draining", expvar.Func(func() any { return s.draining.Load() }))

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/simulate", s.instrument("simulate", s.handleSimulate))
	s.mux.HandleFunc("POST /v1/batch", s.instrument("batch", s.handleBatch))
	s.mux.HandleFunc("GET /healthz", s.instrument("healthz", s.handleHealthz))
	s.mux.HandleFunc("GET /metrics", s.instrument("metrics", s.handleMetrics))
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler is the server's root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// StartDrain flips /healthz to 503 so load balancers stop routing here. The
// actual drain — refusing new connections while in-flight requests finish —
// is http.Server.Shutdown's job; call this first.
func (s *Server) StartDrain() { s.draining.Store(true) }

// SimResponse is the success body of POST /v1/simulate. Sampling is present
// exactly when the request asked for interval-sampled timing; exact
// responses are byte-identical to the pre-sampling schema.
type SimResponse struct {
	Program     string           `json:"program"`
	Core        string           `json:"core"`
	Width       int              `json:"width"`
	Braided     bool             `json:"braided"`
	ProgramHash string           `json:"program_hash"`
	ConfigHash  string           `json:"config_hash"`
	IPC         float64          `json:"ipc"`
	Stats       *uarch.Stats     `json:"stats"`
	Sampling    *SampledBlock    `json:"sampling,omitempty"`
	Complexity  *ComplexityBlock `json:"complexity,omitempty"`
	Source      string           `json:"source"` // run, cache, or coalesced
	SimMS       float64          `json:"sim_ms"` // leader's wall-clock simulation time
}

// ComplexityBlock carries the hardware-cost estimate for the simulated
// configuration (the §5.1 proxies of uarch.EstimateComplexity), so fleet
// clients — braidstat's -complexity column, braidtune's Pareto search — can
// rank configurations without re-deriving the model client-side.
type ComplexityBlock struct {
	uarch.Complexity
	Total float64 `json:"total"`
}

// SampledBlock is the sampled-timing section of a SimResponse: the geometry
// the run used and the estimate's provenance (interval count, detailed vs
// fast-forwarded split, confidence interval).
type SampledBlock struct {
	Geometry uarch.Sampling        `json:"geometry"`
	Estimate *uarch.SampleEstimate `json:"estimate"`
}

// ErrorBody is the error payload, wrapped as {"error": {...}}.
type ErrorBody struct {
	Kind    string `json:"kind"`
	Message string `json:"message"`
	Cycle   uint64 `json:"cycle,omitempty"` // where a contained fault or limit stopped
}

type errorEnvelope struct {
	Error ErrorBody `json:"error"`
}

// simResult is what runSim hands back on success.
type simResult struct {
	st     *uarch.Stats
	est    *uarch.SampleEstimate // non-nil only for sampled runs
	source string
	simMS  float64
}

func (s *Server) handleSimulate(w http.ResponseWriter, r *http.Request) {
	var req SimRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Message: err.Error()})
		return
	}
	b, err := Build(&req, Limits{MaxCycles: s.cfg.MaxCycles, MaxSimTime: s.cfg.MaxSimTime})
	if err != nil {
		status, body := buildErrorBody(err)
		s.writeError(w, status, body)
		return
	}
	// A health prober's canary waits for a worker slot instead of being
	// shed: a saturated queue means the backend is busy, not broken, and a
	// 429 here would read as a failed probe and eject a healthy backend.
	shed := r.Header.Get(canaryHeader) == ""
	res, err := s.runSim(r.Context(), b, shed)
	if err != nil {
		status, body := simErrorBody(err)
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", s.retryAfter())
		}
		s.writeError(w, status, body)
		return
	}
	resp := s.response(b, res)
	// Stamp the SHA-256 of the exact Stats bytes this response embeds:
	// json.Marshal here produces the same bytes the response encoder nests,
	// so the client can verify end-to-end that the stats survived transit.
	if raw, err := json.Marshal(resp.Stats); err == nil {
		sum := sha256.Sum256(raw)
		w.Header().Set(statsSHAHeader, hex.EncodeToString(sum[:]))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// BatchRequest is the body of POST /v1/batch: the requests run concurrently
// through the same admission pool, but items wait for a queue position
// instead of being shed, so one batch admits itself gradually rather than
// tripping its own backpressure.
type BatchRequest struct {
	Requests []SimRequest `json:"requests"`
}

// BatchItem is one per-request outcome inside a BatchResponse.
type BatchItem struct {
	Status int          `json:"status"`
	Result *SimResponse `json:"result,omitempty"`
	Error  *ErrorBody   `json:"error,omitempty"`
}

// BatchResponse is the body of a /v1/batch reply; Items aligns with the
// request order.
type BatchResponse struct {
	Items []BatchItem `json:"items"`
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := s.decodeBody(w, r, &req); err != nil {
		s.writeError(w, http.StatusBadRequest, ErrorBody{Kind: "bad_request", Message: err.Error()})
		return
	}
	if len(req.Requests) == 0 || len(req.Requests) > s.cfg.MaxBatch {
		s.writeError(w, http.StatusBadRequest, ErrorBody{
			Kind:    "bad_request",
			Message: fmt.Sprintf("batch size must be 1..%d, got %d", s.cfg.MaxBatch, len(req.Requests)),
		})
		return
	}
	items := make([]BatchItem, len(req.Requests))
	var wg sync.WaitGroup
	for i := range req.Requests {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			b, err := Build(&req.Requests[i], Limits{MaxCycles: s.cfg.MaxCycles, MaxSimTime: s.cfg.MaxSimTime})
			if err != nil {
				status, body := buildErrorBody(err)
				items[i] = BatchItem{Status: status, Error: &body}
				return
			}
			res, err := s.runSim(r.Context(), b, false)
			if err != nil {
				status, body := simErrorBody(err)
				items[i] = BatchItem{Status: status, Error: &body}
				return
			}
			resp := s.response(b, res)
			items[i] = BatchItem{Status: http.StatusOK, Result: &resp}
		}(i)
	}
	wg.Wait()
	s.writeJSON(w, http.StatusOK, BatchResponse{Items: items})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		s.writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	// Overload signaling: "alive but saturated" lets probers keep a loaded
	// backend in rotation instead of misreading backpressure as breakage.
	s.writeJSON(w, http.StatusOK, map[string]any{
		"status":       "ok",
		"queue_depth":  s.adm.waiting(),
		"workers_busy": s.adm.busy(),
		"overloaded":   s.adm.saturated(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	io.WriteString(w, s.met.m.String())
	io.WriteString(w, "\n")
}

// runSim resolves one built simulation: result cache, then coalescing onto
// an identical in-progress run, then the admission queue and a worker slot,
// then the simulator itself under the request deadline. shed selects
// fail-fast admission (interactive requests) over waiting (batch items).
//
// A cache miss is counted only for the flight leader — the request that
// actually puts demand on the simulator. Followers count as coalesced, and
// a follower whose leader was canceled (the leader's client hung up, so the
// flight published context.Canceled) re-elects instead of inheriting an
// error its own still-live caller never caused.
func (s *Server) runSim(ctx context.Context, b *Built, shed bool) (*simResult, error) {
	key := b.Key()
	for {
		if st, est, ok := s.cache.get(key); ok {
			s.met.cacheHits.Add(1)
			return &simResult{st: st, est: est, source: "cache"}, nil
		}

		fl, leader := s.flights.join(key)
		if !leader {
			s.met.coalesced.Add(1)
			select {
			case <-fl.done:
				if fl.err != nil {
					if isCancellation(fl.err) && ctx.Err() == nil {
						s.met.reelected.Add(1)
						continue // leader's client is gone, ours is not: re-elect
					}
					return nil, fl.err
				}
				return &simResult{st: cloneStats(fl.st), est: cloneEstimate(fl.est), source: "coalesced", simMS: fl.simMS}, nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}

		s.met.cacheMiss.Add(1)
		st, est, simMS, err := s.lead(ctx, key, b, shed)
		s.flights.complete(key, fl, st, est, err, simMS)
		if err != nil {
			s.classifyFailure(err)
			return nil, err
		}
		s.cache.put(key, st, est)
		s.met.simRuns.Add(1)
		s.met.simInstrs.Add(int64(st.Retired))
		s.met.simCycles.Add(int64(st.Cycles))
		if est != nil && !est.Exact {
			s.met.simDetailed.Add(int64(est.DetailedInstrs))
			s.met.simFFwd.Add(int64(est.FFwdInstrs))
		} else {
			s.met.simDetailed.Add(int64(st.Retired))
		}
		s.met.simNanos.Add(int64(simMS * 1e6))
		return &simResult{st: st, est: est, source: "run", simMS: simMS}, nil
	}
}

// isCancellation reports a failure caused by the requester going away, as
// opposed to the simulation itself failing.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, uarch.ErrCanceled)
}

// lead is the flight leader's path: pass admission, take a worker slot, and
// simulate under the request's wall-clock deadline.
func (s *Server) lead(ctx context.Context, key string, b *Built, shed bool) (*uarch.Stats, *uarch.SampleEstimate, float64, error) {
	if err := s.adm.admit(ctx, shed); err != nil {
		return nil, nil, 0, err
	}
	defer s.adm.releaseQueue()
	if err := s.adm.acquire(ctx); err != nil {
		return nil, nil, 0, err
	}
	defer s.adm.releaseSlot()
	if h := s.testHookSimStart; h != nil {
		h(ctx, key)
	}
	simCtx, cancel := context.WithTimeout(ctx, b.Timeout)
	defer cancel()
	t0 := time.Now()
	var (
		st  *uarch.Stats
		est *uarch.SampleEstimate
		err error
	)
	if b.Sampling.Enabled() {
		st, est, err = uarch.SimulateSampled(simCtx, b.Program, b.Config, b.Sampling)
	} else {
		st, err = uarch.SimulateChecked(simCtx, b.Program, b.Config)
	}
	return st, est, float64(time.Since(t0).Nanoseconds()) / 1e6, err
}

func (s *Server) classifyFailure(err error) {
	var fault *uarch.SimFault
	switch {
	case errors.As(err, &fault):
		s.met.faults.Add(1)
	case errors.Is(err, uarch.ErrCycleLimit):
		s.met.cycleLim.Add(1)
	case errors.Is(err, uarch.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		s.met.deadline.Add(1)
	case errors.Is(err, uarch.ErrCanceled), errors.Is(err, context.Canceled):
		s.met.canceled.Add(1)
	case errors.Is(err, errOverloaded):
		s.met.shed.Add(1)
	}
}

// buildErrorBody maps a Build failure: bad input is 400, a contained
// compiler panic is 422 (the request was well-formed; the service hit a
// contained fault processing it).
func buildErrorBody(err error) (int, ErrorBody) {
	var cf *CompileFault
	if errors.As(err, &cf) {
		return http.StatusUnprocessableEntity, ErrorBody{Kind: "compile_fault", Message: cf.Error()}
	}
	return http.StatusBadRequest, ErrorBody{Kind: "bad_request", Message: err.Error()}
}

// simErrorBody maps a simulation failure to its HTTP shape: contained
// faults and exhausted cycle budgets are structured 422s, overload is 429,
// a wall-clock deadline is 504, everything else is 500.
func simErrorBody(err error) (int, ErrorBody) {
	var fault *uarch.SimFault
	switch {
	case errors.As(err, &fault):
		return http.StatusUnprocessableEntity, ErrorBody{
			Kind:    "sim_fault",
			Message: fault.Error(),
			Cycle:   fault.Cycle,
		}
	case errors.Is(err, uarch.ErrCycleLimit):
		return http.StatusUnprocessableEntity, ErrorBody{Kind: "cycle_limit", Message: err.Error()}
	case errors.Is(err, errOverloaded):
		return http.StatusTooManyRequests, ErrorBody{Kind: "overloaded", Message: err.Error()}
	case errors.Is(err, uarch.ErrTimeout), errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout, ErrorBody{Kind: "deadline", Message: err.Error()}
	case errors.Is(err, uarch.ErrCanceled), errors.Is(err, context.Canceled):
		// The client is gone; the status is for the access log's benefit.
		return 499, ErrorBody{Kind: "canceled", Message: err.Error()}
	default:
		return http.StatusInternalServerError, ErrorBody{Kind: "internal", Message: err.Error()}
	}
}

// retryAfter estimates when a shed client should try again: the queue ahead
// of it, paced by the configured per-request ceiling, floored at one second.
func (s *Server) retryAfter() string {
	secs := int64(1)
	if est := int64(s.cfg.MaxSimTime/time.Second) * int64(s.adm.waiting()+1) / int64(s.cfg.Workers); est > secs {
		secs = est
	}
	return strconv.FormatInt(secs, 10)
}

func (s *Server) response(b *Built, res *simResult) SimResponse {
	ipc := 0.0
	if res.st.Cycles > 0 {
		ipc = float64(res.st.Retired) / float64(res.st.Cycles)
	}
	resp := SimResponse{
		Program:     b.Program.Name,
		Core:        b.Config.Core.String(),
		Width:       b.Config.IssueWidth,
		Braided:     b.Braided,
		ProgramHash: b.ProgHash,
		ConfigHash:  b.ConfHash,
		IPC:         ipc,
		Stats:       res.st,
		Source:      res.source,
		SimMS:       res.simMS,
	}
	if b.Sampling.Enabled() {
		resp.Sampling = &SampledBlock{Geometry: b.Sampling, Estimate: res.est}
	}
	comp := uarch.EstimateComplexity(b.Config)
	resp.Complexity = &ComplexityBlock{Complexity: comp, Total: comp.Total()}
	return resp
}

func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, dst any) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("decoding request: %w", err)
	}
	return nil
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, body ErrorBody) {
	s.writeJSON(w, status, errorEnvelope{Error: body})
}

// statusWriter captures the status and size a handler wrote, for metrics
// and the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (sw *statusWriter) WriteHeader(status int) {
	sw.status = status
	sw.ResponseWriter.WriteHeader(status)
}

func (sw *statusWriter) Write(p []byte) (int, error) {
	n, err := sw.ResponseWriter.Write(p)
	sw.bytes += n
	return n, err
}

// instrument wraps a handler with request counting, per-endpoint latency
// observation, and the structured access log.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		s.met.requests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		h(sw, r)
		d := time.Since(t0)
		s.met.observe(endpoint, sw.status, d)
		s.accessLog(r, sw, d)
	}
}

// accessLog emits one JSON line per request: timestamp, method, path,
// status, latency, response size, and peer address.
func (s *Server) accessLog(r *http.Request, sw *statusWriter, d time.Duration) {
	if s.cfg.AccessLog == nil {
		return
	}
	line, err := json.Marshal(map[string]any{
		"ts":     time.Now().UTC().Format(time.RFC3339Nano),
		"method": r.Method,
		"path":   r.URL.Path,
		"status": sw.status,
		"ms":     float64(d.Nanoseconds()) / 1e6,
		"bytes":  sw.bytes,
		"remote": r.RemoteAddr,
	})
	if err != nil {
		return
	}
	s.logMu.Lock()
	s.cfg.AccessLog.Write(append(line, '\n'))
	s.logMu.Unlock()
}
