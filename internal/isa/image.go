package isa

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary program images (.brd files) let the braid compiler's output be
// stored and reloaded, the way the paper's binary translation tool rewrote
// Alpha executables. The format is little-endian:
//
//	offset  size  field
//	0       8     magic "BRD64\x00\x01\x00" (includes a format version)
//	8       4     name length N
//	12      4     instruction count I
//	16      4     data segment length D
//	20      4     flags (bit 0: FP program)
//	24      N     name bytes
//	.       8*I   instruction words (Instruction.Encode)
//	.       D     data segment
//
// Labels are not stored: they are assembler conveniences, not semantics.
var imageMagic = [8]byte{'B', 'R', 'D', '6', '4', 0, 1, 0}

// imageLimit bounds the declared sizes a reader will accept (64 MiB of
// instructions or data), so corrupt headers cannot trigger huge allocations.
const imageLimit = 8 << 20

// WriteImage serializes the program to w in .brd format.
func WriteImage(w io.Writer, p *Program) error {
	words, err := p.EncodeAll()
	if err != nil {
		return fmt.Errorf("isa: image: %w", err)
	}
	var buf bytes.Buffer
	buf.Write(imageMagic[:])
	var flags uint32
	if p.FP {
		flags |= 1
	}
	hdr := []uint32{uint32(len(p.Name)), uint32(len(words)), uint32(len(p.Data)), flags}
	for _, v := range hdr {
		if err := binary.Write(&buf, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	buf.WriteString(p.Name)
	for _, word := range words {
		if err := binary.Write(&buf, binary.LittleEndian, word); err != nil {
			return err
		}
	}
	buf.Write(p.Data)
	_, err = w.Write(buf.Bytes())
	return err
}

// ReadImage deserializes a .brd image and validates the program.
func ReadImage(r io.Reader) (*Program, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("isa: image: reading magic: %w", err)
	}
	if magic != imageMagic {
		return nil, fmt.Errorf("isa: image: bad magic %q", magic[:])
	}
	var hdr [4]uint32
	for i := range hdr {
		if err := binary.Read(r, binary.LittleEndian, &hdr[i]); err != nil {
			return nil, fmt.Errorf("isa: image: reading header: %w", err)
		}
	}
	nameLen, instrs, dataLen, flags := hdr[0], hdr[1], hdr[2], hdr[3]
	if nameLen > 4096 || instrs > imageLimit || dataLen > imageLimit {
		return nil, fmt.Errorf("isa: image: implausible sizes (name %d, instrs %d, data %d)", nameLen, instrs, dataLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(r, name); err != nil {
		return nil, fmt.Errorf("isa: image: reading name: %w", err)
	}
	words := make([]uint64, instrs)
	if err := binary.Read(r, binary.LittleEndian, words); err != nil {
		return nil, fmt.Errorf("isa: image: reading instructions: %w", err)
	}
	ins, err := DecodeAll(words)
	if err != nil {
		return nil, fmt.Errorf("isa: image: %w", err)
	}
	data := make([]byte, dataLen)
	if _, err := io.ReadFull(r, data); err != nil {
		return nil, fmt.Errorf("isa: image: reading data: %w", err)
	}
	p := &Program{
		Name:   string(name),
		Instrs: ins,
		Data:   data,
		FP:     flags&1 != 0,
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("isa: image: %w", err)
	}
	return p, nil
}
