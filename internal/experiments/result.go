// Package experiments reproduces every table and figure of the paper's
// evaluation (§1 value statistics, Figure 1, Tables 1-3, Figures 5-14, and
// the §5.1 pipeline-shortening claim). Each experiment runs the benchmark
// suite through the braid compiler and the cycle-level simulator, normalizes
// results exactly as the paper does, and reports measured-vs-paper claims.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Result is one experiment's output: a benchmark × series value grid plus
// headline claims compared against the paper. Result is not safe for
// concurrent mutation: runners fan their simulations out through
// Workloads.IPCAll/EachBench and then record into the grid serially, in
// suite order, which also keeps row and column order deterministic.
type Result struct {
	ID    string
	Title string

	Series     []string // column order
	Benchmarks []string // row order (integer suite then FP suite)
	fp         map[string]bool

	values map[string]map[string]float64

	Claims []Claim
	Notes  []string
}

// Claim is one headline number the paper states, with our measurement.
type Claim struct {
	Desc     string
	Paper    float64
	Measured float64
}

func newResult(id, title string) *Result {
	return &Result{
		ID:     id,
		Title:  title,
		fp:     map[string]bool{},
		values: map[string]map[string]float64{},
	}
}

// Set records a value for one benchmark and series.
func (r *Result) Set(bench string, fp bool, series string, v float64) {
	if r.values[bench] == nil {
		r.values[bench] = map[string]float64{}
		r.Benchmarks = append(r.Benchmarks, bench)
		r.fp[bench] = fp
	}
	if _, seen := r.values[bench][series]; !seen {
		found := false
		for _, s := range r.Series {
			if s == series {
				found = true
				break
			}
		}
		if !found {
			r.Series = append(r.Series, series)
		}
	}
	r.values[bench][series] = v
}

// Get returns the value for bench × series.
func (r *Result) Get(bench, series string) (float64, bool) {
	m, ok := r.values[bench]
	if !ok {
		return 0, false
	}
	v, ok := m[series]
	return v, ok
}

// Average returns the arithmetic mean of a series over a benchmark subset:
// "int", "fp", or "all" — the same averaging the paper's figures use.
func (r *Result) Average(series, subset string) float64 {
	var sum float64
	n := 0
	for _, b := range r.Benchmarks {
		switch subset {
		case "int":
			if r.fp[b] {
				continue
			}
		case "fp":
			if !r.fp[b] {
				continue
			}
		}
		if v, ok := r.values[b][series]; ok {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// AddClaim records a measured-vs-paper headline.
func (r *Result) AddClaim(desc string, paper, measured float64) {
	r.Claims = append(r.Claims, Claim{Desc: desc, Paper: paper, Measured: measured})
}

// String renders the result as an aligned text table with int/fp/overall
// average rows, followed by claims.
func (r *Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)

	cols := append([]string{"benchmark"}, r.Series...)
	width := make([]int, len(cols))
	for i, c := range cols {
		width[i] = len(c)
	}
	rows := make([][]string, 0, len(r.Benchmarks)+3)
	addRow := func(name string, vals func(series string) (float64, bool)) {
		row := []string{name}
		for _, s := range r.Series {
			cell := "-"
			if v, ok := vals(s); ok {
				cell = fmt.Sprintf("%.3f", v)
			}
			row = append(row, cell)
		}
		for i, c := range row {
			if len(c) > width[i] {
				width[i] = len(c)
			}
		}
		rows = append(rows, row)
	}
	for _, bench := range r.Benchmarks {
		bench := bench
		addRow(bench, func(s string) (float64, bool) {
			v, ok := r.values[bench][s]
			return v, ok
		})
	}
	for _, sub := range []string{"int", "fp", "all"} {
		sub := sub
		has := false
		for _, bench := range r.Benchmarks {
			if (sub == "int" && !r.fp[bench]) || (sub == "fp" && r.fp[bench]) || sub == "all" {
				has = true
			}
		}
		if !has {
			continue
		}
		addRow("avg-"+sub, func(s string) (float64, bool) {
			return r.Average(s, sub), true
		})
	}

	line := func(cells []string) {
		for i, c := range cells {
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", width[i]+2, c)
			} else {
				fmt.Fprintf(&b, "%*s", width[i]+2, c)
			}
		}
		b.WriteByte('\n')
	}
	line(cols)
	for _, row := range rows {
		line(row)
	}
	if len(r.Claims) > 0 {
		b.WriteString("claims:\n")
		for _, c := range r.Claims {
			fmt.Fprintf(&b, "  %-58s paper %7.3f   measured %7.3f\n", c.Desc, c.Paper, c.Measured)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

// Markdown renders the result as a GitHub-flavored markdown section.
func (r *Result) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### %s: %s\n\n", r.ID, r.Title)
	fmt.Fprintf(&b, "| benchmark | %s |\n", strings.Join(r.Series, " | "))
	b.WriteString("|---|" + strings.Repeat("---|", len(r.Series)) + "\n")
	emit := func(name string, get func(string) (float64, bool)) {
		cells := make([]string, 0, len(r.Series))
		for _, s := range r.Series {
			if v, ok := get(s); ok {
				cells = append(cells, fmt.Sprintf("%.3f", v))
			} else {
				cells = append(cells, "-")
			}
		}
		fmt.Fprintf(&b, "| %s | %s |\n", name, strings.Join(cells, " | "))
	}
	for _, bench := range r.Benchmarks {
		bench := bench
		emit(bench, func(s string) (float64, bool) { v, ok := r.values[bench][s]; return v, ok })
	}
	for _, sub := range []string{"int", "fp", "all"} {
		sub := sub
		emit("**avg-"+sub+"**", func(s string) (float64, bool) { return r.Average(s, sub), true })
	}
	if len(r.Claims) > 0 {
		b.WriteString("\n| claim | paper | measured |\n|---|---|---|\n")
		for _, c := range r.Claims {
			fmt.Fprintf(&b, "| %s | %.3f | %.3f |\n", c.Desc, c.Paper, c.Measured)
		}
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "\n*%s*\n", n)
	}
	b.WriteString("\n")
	return b.String()
}

// CSV renders the grid as comma-separated values (benchmark rows, series
// columns, average rows appended), for plotting outside Go.
func (r *Result) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, s := range r.Series {
		b.WriteString(",")
		b.WriteString(s)
	}
	b.WriteString("\n")
	emit := func(name string, get func(string) (float64, bool)) {
		b.WriteString(name)
		for _, s := range r.Series {
			b.WriteString(",")
			if v, ok := get(s); ok {
				fmt.Fprintf(&b, "%.6g", v)
			}
		}
		b.WriteString("\n")
	}
	for _, bench := range r.Benchmarks {
		bench := bench
		emit(bench, func(s string) (float64, bool) { v, ok := r.values[bench][s]; return v, ok })
	}
	for _, sub := range []string{"int", "fp", "all"} {
		sub := sub
		emit("avg-"+sub, func(s string) (float64, bool) { return r.Average(s, sub), true })
	}
	return b.String()
}

// sortSeries orders series by the given explicit order (used when series are
// inserted from parallel loops).
func (r *Result) sortSeries(order []string) {
	pos := map[string]int{}
	for i, s := range order {
		pos[s] = i
	}
	sort.SliceStable(r.Series, func(i, j int) bool {
		pi, iok := pos[r.Series[i]]
		pj, jok := pos[r.Series[j]]
		if iok && jok {
			return pi < pj
		}
		return iok && !jok
	})
}
