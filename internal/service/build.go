package service

import (
	"bytes"
	"crypto/sha256"
	"encoding/base64"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"braid/internal/asm"
	"braid/internal/braid"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// SimRequest is the body of POST /v1/simulate: one program source (BRD64
// assembly, a binary program image, a named workload profile, or a built-in
// kernel) plus a machine configuration, either the core/width shorthand or a
// full uarch.Config.
type SimRequest struct {
	// Program source: exactly one of the four. Image carries the exact
	// bytes a remote client wants simulated (base64 .brd), bypassing
	// generation and calibration so distributed execution is bit-identical
	// to local runs.
	Asm      string `json:"asm,omitempty"`      // BRD64 assembly text
	Image    string `json:"image,omitempty"`    // base64 .brd binary program image
	Workload string `json:"workload,omitempty"` // named synthetic profile (e.g. "gcc")
	Kernel   string `json:"kernel,omitempty"`   // built-in kernel (e.g. "dot")
	Iters    int    `json:"iters,omitempty"`    // workload loop iterations (default 100)

	// Machine configuration shorthand, mirroring braidsim's flags.
	Core       string `json:"core,omitempty"`  // inorder, dep, braid, ooo (default ooo)
	Width      int    `json:"width,omitempty"` // issue width (default 8)
	PerfectBP  bool   `json:"perfect_bp,omitempty"`
	PerfectMem bool   `json:"perfect_mem,omitempty"`

	// Config, when set, is the complete machine configuration and overrides
	// the shorthand fields above.
	Config *uarch.Config `json:"config,omitempty"`

	// Braid forces the braid compiler on (true) or off (false) regardless
	// of the core; unset, the program is braided exactly when the core is
	// the braid core.
	Braid *bool `json:"braid,omitempty"`

	// MaxCycles caps the simulated cycle budget (bounded by the server's
	// ceiling); TimeoutMS caps the wall-clock simulation time (bounded by
	// the server's per-request deadline).
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	TimeoutMS int64  `json:"timeout_ms,omitempty"`

	// Sampling selects interval-sampled timing (period/detail/warmup);
	// absent runs exact. Sampled results live in a cache keyspace disjoint
	// from exact ones, so the same program+config never aliases across
	// modes.
	Sampling *uarch.Sampling `json:"sampling,omitempty"`
}

// Built is a fully resolved simulation: the program to run, the validated
// machine configuration, and the content hashes that key the result cache.
type Built struct {
	Program  *isa.Program
	Config   uarch.Config
	Braided  bool
	Sampling uarch.Sampling // zero: exact timing
	ProgHash string
	ConfHash string
	Timeout  time.Duration // request-level wall-clock bound (0: server default)
}

// Key is the result-cache and coalescing key: requests that resolve to the
// same program bytes and the same configuration are the same simulation.
// Sampled requests append their geometry, so sampled estimates and exact
// results never share an entry — and exact keys are unchanged from before
// sampling existed.
func (b *Built) Key() string {
	key := b.ProgHash + ":" + b.ConfHash
	if b.Sampling.Enabled() {
		key += ":s" + b.Sampling.String()
	}
	return key
}

// Limits bound what a single request may ask of the machine; the zero value
// applies the package defaults.
type Limits struct {
	MaxCycles  uint64        // ceiling on a request's simulated cycles
	MaxSimTime time.Duration // ceiling on a request's wall-clock simulation time
}

const (
	defaultMaxCycles  = 50_000_000
	defaultMaxSimTime = 30 * time.Second
	defaultIters      = 100
)

// Build resolves a request into a runnable simulation: load or generate the
// program, braid it if asked (or implied by the braid core), resolve and
// validate the configuration, clamp it to the limits, and hash both halves.
// Errors are client errors (bad input), except compile faults, which carry
// *CompileFault.
func Build(req *SimRequest, lim Limits) (*Built, error) {
	if lim.MaxCycles == 0 {
		lim.MaxCycles = defaultMaxCycles
	}
	if lim.MaxSimTime == 0 {
		lim.MaxSimTime = defaultMaxSimTime
	}
	p, err := buildProgram(req)
	if err != nil {
		return nil, err
	}
	cfg, err := buildConfig(req)
	if err != nil {
		return nil, err
	}

	braided := cfg.Core == uarch.CoreBraid
	if req.Braid != nil {
		braided = *req.Braid
	}
	if braided && !alreadyBraided(p) {
		res, err := compileBraid(p)
		if err != nil {
			return nil, err
		}
		p = res.Prog
	}

	if cfg.MaxCycles == 0 || cfg.MaxCycles > lim.MaxCycles {
		cfg.MaxCycles = lim.MaxCycles
	}
	if req.MaxCycles > 0 && req.MaxCycles < cfg.MaxCycles {
		cfg.MaxCycles = req.MaxCycles
	}
	cfg.Inject = nil // the fault injector is process-local and test-only
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("config: %w", err)
	}

	var timeout time.Duration
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout <= 0 || timeout > lim.MaxSimTime {
		timeout = lim.MaxSimTime
	}

	b := &Built{Program: p, Config: cfg, Braided: braided, Timeout: timeout}
	if req.Sampling != nil {
		if err := req.Sampling.Validate(); err != nil {
			return nil, err
		}
		b.Sampling = *req.Sampling
	}
	if b.ProgHash, err = hashProgram(p); err != nil {
		return nil, err
	}
	if b.ConfHash, err = hashConfig(&cfg); err != nil {
		return nil, err
	}
	return b, nil
}

func buildProgram(req *SimRequest) (*isa.Program, error) {
	sources := 0
	for _, set := range []bool{req.Asm != "", req.Image != "", req.Workload != "", req.Kernel != ""} {
		if set {
			sources++
		}
	}
	if sources != 1 {
		return nil, fmt.Errorf("request needs exactly one of asm, image, workload, kernel (got %d)", sources)
	}
	switch {
	case req.Asm != "":
		p, err := asm.Parse(req.Asm)
		if err != nil {
			return nil, fmt.Errorf("asm: %w", err)
		}
		return p, nil
	case req.Image != "":
		raw, err := base64.StdEncoding.DecodeString(req.Image)
		if err != nil {
			return nil, fmt.Errorf("image: %w", err)
		}
		p, err := isa.ReadImage(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("image: %w", err)
		}
		return p, nil
	case req.Workload != "":
		prof, ok := workload.ProfileByName(req.Workload)
		if !ok {
			return nil, fmt.Errorf("unknown workload %q", req.Workload)
		}
		iters := req.Iters
		if iters <= 0 {
			iters = defaultIters
		}
		if iters > isa.ImmMax {
			return nil, fmt.Errorf("iters %d above the ISA limit %d", iters, isa.ImmMax)
		}
		p, err := workload.Generate(prof, iters)
		if err != nil {
			return nil, fmt.Errorf("workload %s: %w", req.Workload, err)
		}
		return p, nil
	default:
		p, ok := workload.KernelByName(req.Kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", req.Kernel)
		}
		return p, nil
	}
}

func buildConfig(req *SimRequest) (uarch.Config, error) {
	if req.Config != nil {
		return *req.Config, nil
	}
	width := req.Width
	if width <= 0 {
		width = 8
	}
	var cfg uarch.Config
	switch req.Core {
	case "", "ooo":
		cfg = uarch.OutOfOrderConfig(width)
	case "inorder":
		cfg = uarch.InOrderConfig(width)
	case "dep":
		cfg = uarch.DepSteerConfig(width)
	case "braid":
		cfg = uarch.BraidConfig(width)
	default:
		return uarch.Config{}, fmt.Errorf("unknown core %q (want inorder, dep, braid, ooo)", req.Core)
	}
	cfg.PerfectBP = req.PerfectBP
	cfg.Mem.Perfect = req.PerfectMem
	return cfg, nil
}

// CompileFault is a contained braid-compiler panic: the input program drove
// the compiler into a bug, reported as a structured 422 rather than a dead
// process.
type CompileFault struct{ Panic any }

func (f *CompileFault) Error() string { return fmt.Sprintf("braid compiler fault: %v", f.Panic) }

func compileBraid(p *isa.Program) (res *braid.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &CompileFault{Panic: r}
		}
	}()
	res, err = braid.Compile(p, braid.Options{})
	if err != nil {
		err = fmt.Errorf("braid compile: %w", err)
	}
	return res, err
}

// alreadyBraided detects a program that carries braid ISA bits.
func alreadyBraided(p *isa.Program) bool {
	for i := range p.Instrs {
		if p.Instrs[i].Start {
			return true
		}
	}
	return false
}

func hashProgram(p *isa.Program) (string, error) {
	var buf bytes.Buffer
	if err := isa.WriteImage(&buf, p); err != nil {
		return "", fmt.Errorf("hashing program: %w", err)
	}
	sum := sha256.Sum256(buf.Bytes())
	return hex.EncodeToString(sum[:]), nil
}

func hashConfig(cfg *uarch.Config) (string, error) {
	data, err := json.Marshal(cfg)
	if err != nil {
		return "", fmt.Errorf("hashing config: %w", err)
	}
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:]), nil
}
