// Package braid is a Go reproduction of "Achieving Out-of-Order Performance
// with Almost In-Order Complexity" (Tseng & Patt, ISCA 2008).
//
// It bundles, behind one facade:
//
//   - the BRD64 instruction set with the paper's braid ISA bits and an
//     assembler (ParseAsm / FormatAsm);
//   - the braid compiler (Compile), which partitions each basic block's
//     dataflow graph into braids, reorders and splits them, allocates
//     internal registers, and re-encodes the program;
//   - an architectural interpreter (Run) used as the correctness oracle;
//   - cycle-level simulators (Simulate) for the braid microarchitecture and
//     the in-order, dependence-steering, and out-of-order baselines;
//   - the 26 synthetic SPEC CPU2000 stand-in benchmarks
//     (GenerateBenchmark) parameterized by the paper's Tables 1-3;
//   - the complete experiment suite (Experiments) regenerating every table
//     and figure of the paper's evaluation.
//
// See README.md for a tour and DESIGN.md for the reproduction methodology.
package braid

import (
	"fmt"

	"braid/internal/asm"
	braidc "braid/internal/braid"
	"braid/internal/experiments"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// Program is a BRD64 program: instructions plus an initial data segment.
type Program = isa.Program

// Instruction is one decoded BRD64 instruction, including the braid ISA
// extension bits (S, T, I, E).
type Instruction = isa.Instruction

// ParseAsm assembles BRD64 assembly text (see internal/asm for the syntax).
func ParseAsm(src string) (*Program, error) { return asm.Parse(src) }

// FormatAsm renders a program as assembly text that ParseAsm accepts,
// including braid annotations.
func FormatAsm(p *Program) string { return asm.Format(p) }

// CompileOptions configures braid compilation.
type CompileOptions = braidc.Options

// Compiled is a braided program together with its braid structure,
// statistics, and split counters.
type Compiled = braidc.Result

// Compile runs the braid compiler: it identifies braids (connected dataflow
// subgraphs within each basic block), reorders each block so braids are
// consecutive with the branch braid last, splits braids that violate memory
// ordering or exceed the internal register file, classifies values as
// internal/external, and sets the braid ISA bits.
func Compile(p *Program, opts CompileOptions) (*Compiled, error) {
	return braidc.Compile(p, opts)
}

// FinalState is the architectural outcome of a program run.
type FinalState = interp.FinalState

// Run executes p functionally to completion (at most maxSteps dynamic
// instructions) and returns the final architectural state.
func Run(p *Program, maxSteps uint64) (FinalState, error) {
	return interp.RunProgram(p, maxSteps)
}

// MachineConfig is a full simulator configuration (Table 4 and sweeps).
type MachineConfig = uarch.Config

// MachineStats is the result of one simulation.
type MachineStats = uarch.Stats

// The four machine configurations of the paper, scaled by issue width:
//
//	OutOfOrder: Table 4's aggressive conventional design
//	Braid:      Table 4's braid microarchitecture
//	InOrder:    the in-order baseline of Figure 13
//	DepSteer:   Palacharla-style dependence-based FIFO steering
func OutOfOrder(width int) MachineConfig { return uarch.OutOfOrderConfig(width) }

// Braid returns the braid microarchitecture configuration (run it on a
// Compile()d program).
func Braid(width int) MachineConfig { return uarch.BraidConfig(width) }

// InOrder returns the in-order baseline configuration.
func InOrder(width int) MachineConfig { return uarch.InOrderConfig(width) }

// DepSteer returns the dependence-steering baseline configuration.
func DepSteer(width int) MachineConfig { return uarch.DepSteerConfig(width) }

// Simulate runs p on the given machine and returns cycle-level statistics.
// Programs compiled with Compile belong on Braid configurations; original
// programs on the others.
func Simulate(p *Program, cfg MachineConfig) (*MachineStats, error) {
	return uarch.Simulate(p, cfg)
}

// Benchmarks lists the 26 synthetic SPEC CPU2000 stand-ins (12 integer, 14
// floating-point), in the paper's order.
func Benchmarks() []string {
	var names []string
	for _, p := range workload.Profiles() {
		names = append(names, p.Name)
	}
	return names
}

// GenerateBenchmark builds the named synthetic benchmark sized to the given
// main-loop iteration count.
func GenerateBenchmark(name string, iterations int) (*Program, error) {
	prof, ok := workload.ProfileByName(name)
	if !ok {
		return nil, fmt.Errorf("braid: unknown benchmark %q", name)
	}
	return workload.Generate(prof, iterations)
}

// Kernel returns a built-in hand-written kernel: "fig2" (the paper's Figure
// 2 gcc block), "dot", "list", "matmul", or "copy".
func Kernel(name string) (*Program, error) {
	p, ok := workload.KernelByName(name)
	if !ok {
		return nil, fmt.Errorf("braid: unknown kernel %q", name)
	}
	return p, nil
}

// Experiments lists the paper's tables and figures as runnable experiments;
// LoadExperimentSuite prepares the benchmark suite they consume.
func Experiments() []experiments.Experiment { return experiments.All() }

// ComplexityReport quantifies the paper's §5.1 structure-complexity
// comparison (register files, schedulers, bypass, checkpoints) for the four
// machines at the given width, using the port-squared and broadcast proxies
// the paper cites.
func ComplexityReport(width int) string { return uarch.ComplexityReport(width) }

// Ablations lists the extra studies that isolate this reproduction's design
// choices (dead-value release, busy-bit latency, §5.2 clustering, alias
// information, internal file size, out-of-order BEU windows).
func Ablations() []experiments.Experiment { return experiments.Ablations() }

// ExperimentSuite is the prepared 26-benchmark suite.
type ExperimentSuite = experiments.Workloads

// LoadExperimentSuite generates and braids all benchmarks, sized to about
// dynTarget dynamic instructions each.
func LoadExperimentSuite(dynTarget uint64) (*ExperimentSuite, error) {
	return experiments.LoadSuite(dynTarget)
}
