// Command braidload drives a running braidd with a concurrent request mix
// and reports service-level throughput: requests/sec, latency quantiles,
// and aggregate simulated MIPS. With -verify it also simulates every unique
// request locally and demands bit-identical Stats JSON from the service —
// the determinism contract the result cache depends on.
//
//	braidd -addr 127.0.0.1:8080 &
//	braidload -addr http://127.0.0.1:8080 -c 32 -n 512 -verify -out BENCH_service_throughput.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"braid/internal/service"
	"braid/internal/uarch"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "braidd base URL")
		conc      = flag.Int("c", 32, "concurrent clients")
		total     = flag.Int("n", 512, "total requests")
		iters     = flag.Int("iters", 60, "workload iterations per request")
		width     = flag.Int("width", 8, "issue width")
		cores     = flag.String("cores", "ooo,braid", "comma-separated cores in the mix")
		workloads = flag.String("workloads", "gcc,mcf,gzip,crafty,art,equake", "comma-separated workload profiles")
		timeout   = flag.Duration("timeout", 120*time.Second, "per-request client timeout")
		wait      = flag.Duration("wait", 15*time.Second, "how long to wait for /healthz before starting")
		verify    = flag.Bool("verify", false, "simulate each unique request locally and demand bit-identical Stats")
		out       = flag.String("out", "", "write the benchmark JSON here as well as stdout")
	)
	flag.Parse()

	mix := buildMix(splitList(*workloads), splitList(*cores), *width, *iters)
	if len(mix) == 0 {
		log.Fatal("braidload: empty request mix")
	}
	client := &http.Client{Timeout: *timeout}
	if err := waitHealthy(client, *addr, *wait); err != nil {
		log.Fatalf("braidload: %v", err)
	}

	var expected map[string][]byte
	if *verify {
		var err error
		if expected, err = simulateLocally(mix); err != nil {
			log.Fatalf("braidload: local verification run: %v", err)
		}
	}

	res := run(client, *addr, mix, *conc, *total, expected)
	res.Metrics = scrapeMetrics(client, *addr)

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("braidload: writing %s: %v", *out, err)
		}
	}
	if res.Errors > 0 {
		log.Fatalf("braidload: %d request(s) failed", res.Errors)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// mixItem is one unique request shape; the load is total requests cycled
// over the mix, so every shape repeats and exercises the result cache.
type mixItem struct {
	req service.SimRequest
	key string
}

func buildMix(profiles, cores []string, width, iters int) []mixItem {
	var mix []mixItem
	for _, prof := range profiles {
		for _, core := range cores {
			req := service.SimRequest{Workload: prof, Iters: iters, Core: core, Width: width}
			mix = append(mix, mixItem{req: req, key: prof + "/" + core})
		}
	}
	return mix
}

func waitHealthy(client *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s (last: err=%v)", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// simulateLocally runs every unique mix item through the same Build path
// the service uses and records the exact Stats JSON a correct response must
// carry.
func simulateLocally(mix []mixItem) (map[string][]byte, error) {
	expected := make(map[string][]byte, len(mix))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, len(mix))
	for _, it := range mix {
		wg.Add(1)
		go func(it mixItem) {
			defer wg.Done()
			b, err := service.Build(&it.req, service.Limits{})
			if err != nil {
				errc <- fmt.Errorf("%s: %w", it.key, err)
				return
			}
			st, err := uarch.Simulate(b.Program, b.Config)
			if err != nil {
				errc <- fmt.Errorf("%s: %w", it.key, err)
				return
			}
			data, err := json.Marshal(st)
			if err != nil {
				errc <- err
				return
			}
			mu.Lock()
			expected[it.key] = data
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}
	return expected, nil
}

// loadResult is the benchmark artifact (BENCH_service_throughput.json).
type loadResult struct {
	Concurrency   int            `json:"concurrency"`
	Requests      int            `json:"requests"`
	Errors        int            `json:"errors"`
	Verified      int            `json:"verified"`
	Mismatches    int            `json:"mismatches"`
	Seconds       float64        `json:"seconds"`
	RPS           float64        `json:"requests_per_sec"`
	P50MS         float64        `json:"p50_ms"`
	P90MS         float64        `json:"p90_ms"`
	P99MS         float64        `json:"p99_ms"`
	MaxMS         float64        `json:"max_ms"`
	Instructions  uint64         `json:"sim_instructions"`
	AggregateMIPS float64        `json:"aggregate_mips"`
	Sources       map[string]int `json:"responses_by_source"`
	Metrics       map[string]any `json:"server_metrics,omitempty"`
}

// verifyResponse is the response shape braidload decodes: Stats stays raw so
// verification compares the service's exact bytes against the local run.
type verifyResponse struct {
	Source string          `json:"source"`
	Stats  json.RawMessage `json:"stats"`
}

func run(client *http.Client, addr string, mix []mixItem, conc, total int, expected map[string][]byte) *loadResult {
	bodies := make([][]byte, len(mix))
	for i, it := range mix {
		data, err := json.Marshal(&it.req)
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = data
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		sources   = map[string]int{}
		res       = &loadResult{Concurrency: conc, Requests: total, Sources: sources}
		wg        sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				it := mix[i%len(mix)]
				r0 := time.Now()
				vr, err := post(client, addr, bodies[i%len(mix)])
				ms := float64(time.Since(r0).Nanoseconds()) / 1e6
				mu.Lock()
				latencies = append(latencies, ms)
				if err != nil {
					res.Errors++
					log.Printf("braidload: %s: %v", it.key, err)
				} else {
					sources[vr.Source]++
					if want, ok := expected[it.key]; ok {
						res.Verified++
						if !bytes.Equal(want, vr.Stats) {
							res.Mismatches++
							res.Errors++
							log.Printf("braidload: %s: stats differ from local simulation", it.key)
						}
					}
					var st uarch.Stats
					if json.Unmarshal(vr.Stats, &st) == nil {
						res.Instructions += st.Retired
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(t0).Seconds()

	sort.Float64s(latencies)
	quant := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	res.P50MS, res.P90MS, res.P99MS = quant(0.50), quant(0.90), quant(0.99)
	if n := len(latencies); n > 0 {
		res.MaxMS = latencies[n-1]
	}
	if res.Seconds > 0 {
		res.RPS = float64(total) / res.Seconds
		res.AggregateMIPS = float64(res.Instructions) / res.Seconds / 1e6
	}
	return res
}

func post(client *http.Client, addr string, body []byte) (*verifyResponse, error) {
	resp, err := client.Post(addr+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var vr verifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &vr, nil
}

// scrapeMetrics pulls /metrics and keeps the counters the benchmark report
// cares about; a scrape failure degrades to nil rather than failing the run.
func scrapeMetrics(client *http.Client, addr string) map[string]any {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var all map[string]any
	if json.NewDecoder(resp.Body).Decode(&all) != nil {
		return nil
	}
	keep := map[string]any{}
	for _, k := range []string{
		"cache_hits", "cache_misses", "coalesced_total", "shed_total",
		"sim_runs_total", "simulated_mips", "faults_contained_total",
		"cycle_limit_total", "deadline_total", "latency_ms",
	} {
		if v, ok := all[k]; ok {
			keep[k] = v
		}
	}
	return keep
}
