package chaos

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// fakeBackend answers every simulate with a fixed JSON body and an integrity
// header, and healthz with 200, like a real braidd would.
func fakeBackend(t *testing.T, body string) *httptest.Server {
	t.Helper()
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.Write([]byte(`{"status":"ok"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Braid-Stats-SHA256", "deadbeef")
		io.WriteString(w, body)
	}))
}

func post(t *testing.T, url string) (*http.Response, []byte, error) {
	t.Helper()
	resp, err := http.Post(url+"/v1/simulate", "application/json", strings.NewReader(`{}`))
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return resp, body, err
}

const statsBody = `{"stats":{"cycles":123,"retired":456},"ipc":3.7,"source":"run"}` + "\n"

func TestEveryNCadenceAndStatusFault(t *testing.T) {
	backend := fakeBackend(t, statsBody)
	defer backend.Close()
	p, err := New(backend.URL, EveryN(3,
		Fault{Kind: Status, Status: 429, RetryAfter: "1"},
		Fault{Kind: Status, Status: 503}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()

	// Health checks never consume sequence numbers or fault.
	for i := 0; i < 5; i++ {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil || resp.StatusCode != 200 {
			t.Fatalf("healthz %d: %v %v", i, err, resp)
		}
		resp.Body.Close()
	}

	var statuses []int
	var retryAfter []string
	for i := 0; i < 12; i++ {
		resp, body, err := post(t, ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		statuses = append(statuses, resp.StatusCode)
		retryAfter = append(retryAfter, resp.Header.Get("Retry-After"))
		if resp.StatusCode == 200 && string(body) != statsBody {
			t.Fatalf("request %d: passthrough body altered: %q", i, body)
		}
	}
	// Requests 3,6,9,12 (1-based) fault, cycling 429, 503, 429, 503.
	want := []int{200, 200, 429, 200, 200, 503, 200, 200, 429, 200, 200, 503}
	for i := range want {
		if statuses[i] != want[i] {
			t.Fatalf("statuses = %v, want %v", statuses, want)
		}
	}
	if retryAfter[2] != "1" || retryAfter[5] != "" {
		t.Errorf("Retry-After headers: %q (429) and %q (503)", retryAfter[2], retryAfter[5])
	}
	if p.Faults() != 4 || p.Injected(Status) != 4 {
		t.Errorf("fault counters: total %d, status %d, want 4, 4", p.Faults(), p.Injected(Status))
	}
}

func TestResetAndTruncate(t *testing.T) {
	backend := fakeBackend(t, statsBody)
	defer backend.Close()
	for _, f := range []Fault{{Kind: Reset}, {Kind: Truncate, KeepBytes: 4}} {
		p, err := New(backend.URL, EveryN(1, f))
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(p)
		_, body, err := post(t, ts.URL)
		if err == nil && f.Kind == Reset {
			t.Errorf("%s: expected a transport error, got body %q", f.Kind, body)
		}
		if f.Kind == Truncate {
			// The status line and headers arrive; reading the body fails.
			if err == nil {
				t.Errorf("truncate: expected unexpected EOF, got body %q", body)
			}
		}
		ts.Close()
	}
}

func TestSlowLorisDribblesThenCuts(t *testing.T) {
	backend := fakeBackend(t, statsBody)
	defer backend.Close()
	p, err := New(backend.URL, EveryN(1, Fault{Kind: SlowLoris, Delay: time.Millisecond, KeepBytes: 6}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()
	t0 := time.Now()
	_, body, err := post(t, ts.URL)
	if err == nil {
		t.Fatalf("slow-loris delivered a full body: %q", body)
	}
	if d := time.Since(t0); d < 5*time.Millisecond {
		t.Errorf("slow-loris finished in %v; it never dribbled", d)
	}
}

func TestCorruptKeepsShapeButChangesStats(t *testing.T) {
	backend := fakeBackend(t, statsBody)
	defer backend.Close()
	p, err := New(backend.URL, EveryN(1, Fault{Kind: Corrupt}))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(p)
	defer ts.Close()
	resp, body, err := post(t, ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Header.Get("X-Braid-Stats-SHA256") != "deadbeef" {
		t.Error("corrupt dropped the integrity header; it must relay headers verbatim")
	}
	if len(body) != len(statsBody) {
		t.Errorf("corrupt changed body length: %d != %d", len(body), len(statsBody))
	}
	if bytes.Equal(body, []byte(statsBody)) {
		t.Fatal("corrupt changed nothing")
	}
	var parsed struct {
		Stats map[string]any `json:"stats"`
		IPC   float64        `json:"ipc"`
	}
	if err := json.Unmarshal(body, &parsed); err != nil {
		t.Fatalf("corrupted body no longer parses: %v", err)
	}
	if parsed.IPC != 3.7 {
		t.Errorf("corruption leaked outside the stats object: ipc = %v", parsed.IPC)
	}
	if parsed.Stats["cycles"].(float64) == 123 {
		t.Error("stats object unchanged after corruption")
	}
}

func TestFlapperPhasesAndForce(t *testing.T) {
	f := Flap(10*time.Millisecond, 10*time.Millisecond)
	if !f.IsDown() {
		t.Error("a fresh flapper must start down")
	}
	f.Force(true)
	if f.IsDown() {
		t.Error("Force(true) must pin the flapper up")
	}
	if got := f.Schedule(nil, 0); got.Kind != Pass {
		t.Errorf("up flapper schedule = %v, want Pass", got.Kind)
	}
	f.Force(false)
	if !f.IsDown() {
		t.Error("Force(false) must pin the flapper down")
	}
	if got := f.Schedule(nil, 0); got.Kind != Reset {
		t.Errorf("down flapper schedule = %v, want Reset", got.Kind)
	}
}

func TestChainFirstNonPassWins(t *testing.T) {
	pass := func(*http.Request, int64) Fault { return Fault{Kind: Pass} }
	rst := func(*http.Request, int64) Fault { return Fault{Kind: Reset} }
	if got := Chain(pass, rst)(nil, 0); got.Kind != Reset {
		t.Errorf("chain = %v, want Reset", got.Kind)
	}
	if got := Chain(pass, pass)(nil, 0); got.Kind != Pass {
		t.Errorf("chain = %v, want Pass", got.Kind)
	}
}
