// Command braidstat characterizes programs the way the paper's profiling
// tool does: dynamic value fanout and lifetime (§1) and the braid statistics
// of Tables 1-3.
//
// Usage:
//
//	braidstat -bench gcc            one generated benchmark
//	braidstat -kernel fig2          a built-in kernel
//	braidstat -suite                all 26 SPEC CPU2000 stand-ins
//	braidstat -values -bench mcf    value fanout/lifetime only
package main

import (
	"flag"
	"fmt"
	"os"

	"braid/internal/braid"
	"braid/internal/cfg"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/workload"
)

func main() {
	var (
		bench  = flag.String("bench", "", "generated benchmark name")
		kernel = flag.String("kernel", "", "built-in kernel name")
		suite  = flag.Bool("suite", false, "characterize the whole suite")
		values = flag.Bool("values", false, "value fanout/lifetime only")
		iters  = flag.Int("iters", 50, "benchmark loop iterations")
	)
	flag.Parse()

	switch {
	case *suite:
		for _, prof := range workload.Profiles() {
			p, err := workload.Generate(prof, *iters)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("--- %s ---\n", prof.Name)
			characterize(p, *values)
		}
	case *bench != "":
		prof, ok := workload.ProfileByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err := workload.Generate(prof, *iters)
		if err != nil {
			fatal(err)
		}
		characterize(p, *values)
	case *kernel != "":
		p, ok := workload.KernelByName(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		characterize(p, *values)
	default:
		fatal(fmt.Errorf("need -bench, -kernel, or -suite"))
	}
}

func characterize(p *isa.Program, valuesOnly bool) {
	vs, err := interp.Characterize(p, 100_000_000)
	if err != nil {
		fatal(err)
	}
	fmt.Print(vs.String())
	if valuesOnly {
		return
	}
	if g, err := cfg.Build(p); err == nil {
		loops := cfg.NaturalLoops(g)
		fmt.Printf("control flow: %d blocks, %d natural loops\n", len(g.Blocks), len(loops))
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		fatal(err)
	}
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	if _, err := m.Run(100_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) }); err != nil {
		fatal(err)
	}
	st := ds.Stats()
	fmt.Print(st.String())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidstat: %v\n", err)
	os.Exit(1)
}
