package workload

import (
	"math/rand"

	"braid/internal/isa"
)

// RandomProgram generates a small, terminating, valid BRD64 program with
// adversarial structure for compiler and simulator testing: heavy register
// reuse (provoking the braid compiler's hazard splits), random alias
// classes (provoking memory-order splits), conditional moves, and irregular
// forward control flow inside a counted outer loop. The program ends by
// storing every architectural register it used to memory, so functional
// equivalence between the original and braided versions is fully observable
// in the memory image.
//
// Unlike Generate, RandomProgram makes no attempt to match the paper's braid
// statistics; it exists to explore the corners the curated workloads avoid.
func RandomProgram(seed int64) *isa.Program {
	r := rand.New(rand.NewSource(seed))
	g := &gen{
		prof: Profile{Name: "random"},
		rng:  r,
		p:    &isa.Program{Name: "random"},
	}

	const (
		base    = isa.Reg(16) // data base pointer
		counter = isa.Reg(17)
		nRegs   = 14 // r0..r13: working registers, reused heavily
	)
	blocks := 2 + r.Intn(5)
	iters := 3 + r.Intn(6)

	// Init: base pointer, counter, and seed values for the working set.
	g.emit(ldimm(base, isa.DataBase))
	g.emit(ldimm(counter, int32(iters)))
	for i := 0; i < nRegs; i++ {
		g.emit(ldimm(isa.Reg(i), int32(r.Intn(1<<12))))
	}
	g.branch(isa.OpBR, isa.RegNone, "b0")

	reg := func() isa.Reg { return isa.Reg(r.Intn(nRegs)) }
	intOps := []isa.Opcode{
		isa.OpADD, isa.OpSUB, isa.OpXOR, isa.OpAND, isa.OpOR, isa.OpANDNOT,
		isa.OpSLL, isa.OpSRL, isa.OpSRA, isa.OpCMPEQ, isa.OpCMPLT,
		isa.OpCMPLE, isa.OpCMPULT, isa.OpMUL, isa.OpZAPNOT,
	}

	for b := 0; b < blocks; b++ {
		g.label(blockLabel(b))
		n := 3 + r.Intn(12)
		for i := 0; i < n; i++ {
			switch k := r.Intn(20); {
			case k < 12: // ALU, register or immediate operand
				op := intOps[r.Intn(len(intOps))]
				in := isa.Instruction{Op: op, Dest: reg(), Src1: reg()}
				if r.Intn(2) == 0 {
					in.HasImm, in.Imm = true, int32(r.Intn(64))
					if op == isa.OpSLL || op == isa.OpSRL || op == isa.OpSRA {
						in.Imm &= 7
					}
				} else {
					in.Src2 = reg()
				}
				g.emit(in)
			case k < 14: // conditional move (reads its destination)
				op := isa.OpCMOVNE
				if r.Intn(2) == 0 {
					op = isa.OpCMOVEQ
				}
				g.emit(isa.Instruction{Op: op, Dest: reg(), Src1: reg(), Src2: reg()})
			case k < 17: // load with a random (but sound) alias class
				cls, disp := aliasSlot(r)
				g.emit(isa.Instruction{
					Op: isa.OpLDQ, Dest: reg(), Src1: base,
					Imm: disp, AliasClass: cls,
				})
			case k < 19: // store with a random (but sound) alias class
				cls, disp := aliasSlot(r)
				g.emit(isa.Instruction{
					Op: isa.OpSTQ, Src1: reg(), Src2: base,
					Imm: disp, AliasClass: cls,
				})
			default: // single-cycle address arithmetic
				g.emit(isa.Instruction{Op: isa.OpLDA, Dest: reg(), Src1: reg(),
					Imm: int32(r.Intn(32)), HasImm: true})
			}
		}
		// Terminator: fall through, or a forward conditional skip.
		if b+1 < blocks && r.Intn(2) == 0 {
			target := b + 1 + r.Intn(blocks-b-1) + 1
			if target > blocks {
				target = blocks
			}
			ops := []isa.Opcode{isa.OpBEQ, isa.OpBNE, isa.OpBLT, isa.OpBGE}
			lbl := blockLabel(target)
			if target == blocks {
				lbl = "tail"
			}
			g.branch(ops[r.Intn(len(ops))], reg(), lbl)
		}
	}

	g.label("tail")
	g.emit(opRRI(isa.OpSUB, counter, counter, 1))
	g.branch(isa.OpBGT, counter, "b0")

	// Epilogue: publish every working register, making them all live-out.
	for i := 0; i < nRegs; i++ {
		g.emit(isa.Instruction{
			Op: isa.OpSTQ, Src1: isa.Reg(i), Src2: base,
			Imm: int32(1024 + i*8), AliasClass: 5,
		})
	}
	g.emit(isa.Instruction{Op: isa.OpHALT})
	g.resolve()

	if err := g.p.Validate(); err != nil {
		panic("workload: RandomProgram built an invalid program: " + err.Error())
	}
	return g.p
}

// aliasSlot picks an alias class and a displacement consistent with it.
// Alias classes are a soundness promise to the braid compiler — accesses
// with distinct nonzero classes are treated as provably disjoint and may be
// reordered — so the generator must never attach different nonzero classes
// to overlapping addresses. (An earlier version rolled class and address
// independently; the differential harness shrank the resulting
// miscompile to a two-store repro, see internal/check.) Classes 1..3 own
// disjoint 128-byte partitions of the data page; class 0 ("unknown") may
// roam the whole region, which keeps the compiler's conservative
// memory-order splits exercised.
func aliasSlot(r *rand.Rand) (cls uint8, disp int32) {
	c := r.Intn(4)
	if c == 0 {
		return 0, int32(r.Intn(48)) * 8
	}
	return uint8(c), int32((c-1)*16+r.Intn(16)) * 8
}

func blockLabel(b int) string {
	const digits = "0123456789"
	if b < 10 {
		return "b" + digits[b:b+1]
	}
	return "b" + digits[b/10:b/10+1] + digits[b%10:b%10+1]
}
