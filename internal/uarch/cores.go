package uarch

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------------------
// Conventional out-of-order core: distributed schedulers (Table 4: eight
// 32-entry windows), each selecting its oldest ready instruction per cycle.

type oooCore struct {
	cfg       *Config
	scheds    [][]*dyn
	freeSlots int // total unused scheduler entries (canAccept in O(1))
}

func newOOOCore(cfg *Config) *oooCore {
	c := &oooCore{
		cfg:       cfg,
		scheds:    make([][]*dyn, cfg.Schedulers),
		freeSlots: cfg.Schedulers * cfg.SchedEntries,
	}
	return c
}

func (c *oooCore) canAccept(*dyn) bool { return c.freeSlots > 0 }

func (c *oooCore) dispatch(d *dyn) {
	// Least-occupied steering (deterministic ties).
	best := -1
	for i, s := range c.scheds {
		if len(s) >= c.cfg.SchedEntries {
			continue
		}
		if best < 0 || len(s) < len(c.scheds[best]) {
			best = i
		}
	}
	d.sched = best
	c.scheds[best] = append(c.scheds[best], d)
	c.freeSlots--
}

func (c *oooCore) issue(m *Machine, t uint64) {
	// Each scheduler issues at most one instruction per cycle,
	// oldest-ready-first (entries are in age order by construction).
	for i := range c.scheds {
		s := c.scheds[i]
		if len(s) == 0 {
			continue
		}
		// Whole-scheduler skip: no entry's wake bound has arrived, so every
		// mightIssue below would return false — unless exhausted issue
		// bandwidth forces tryIssue calls for their IssueStalls accounting.
		if m.wakeMin[i] > t &&
			m.issuedThisCycle < m.cfg.IssueWidth && m.fusUsed < m.cfg.TotalFUs {
			continue
		}
		min, issued := neverWakes, false
		for k, d := range s {
			if !m.mightIssue(d, t) {
				if d.wakeLB < min {
					min = d.wakeLB
				}
				continue
			}
			if m.tryIssue(d, t) {
				c.scheds[i] = append(s[:k], s[k+1:]...)
				c.freeSlots++
				issued = true
				break
			}
			if w := d.wakeLB; w > t {
				if w < min {
					min = w
				}
			} else if t+1 < min {
				min = t + 1 // structural rejection: retry next cycle
			}
			if m.issuedThisCycle >= m.cfg.IssueWidth {
				return
			}
		}
		if !issued {
			m.wakeMin[i] = min
		}
	}
}

// nextWake: every scheduler entry is examined each cycle, so all of them
// bound the next possible issue.
func (c *oooCore) nextWake(m *Machine, t uint64) uint64 {
	w := neverWakes
	for _, s := range c.scheds {
		for _, d := range s {
			if dw := m.dynWake(d, t); dw < w {
				w = dw
			}
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// In-order core: a scoreboarded queue issuing strictly in program order.

type inOrderCore struct {
	cfg   *Config
	queue dynRing
	depth int
}

func newInOrderCore(cfg *Config) *inOrderCore {
	return &inOrderCore{cfg: cfg, depth: 8 * cfg.IssueWidth}
}

func (c *inOrderCore) canAccept(*dyn) bool { return c.queue.len() < c.depth }

func (c *inOrderCore) dispatch(d *dyn) { c.queue.push(d) }

func (c *inOrderCore) issue(m *Machine, t uint64) {
	for c.queue.len() > 0 {
		d := c.queue.front()
		if !m.mightIssue(d, t) || !m.tryIssue(d, t) {
			return // strict in-order: stall at the first blocked instruction
		}
		c.queue.popFront()
	}
}

// nextWake: strict in-order issue means only the queue head can unblock.
func (c *inOrderCore) nextWake(m *Machine, t uint64) uint64 {
	if c.queue.len() == 0 {
		return neverWakes
	}
	return m.dynWake(c.queue.front(), t)
}

// ---------------------------------------------------------------------------
// Dependence-based steering core (Palacharla, Jouppi & Smith; the "dep" bars
// of Figure 13): instructions are steered into FIFOs so consumers sit
// behind their producers; only FIFO heads issue.

type depSteerCore struct {
	cfg   *Config
	fifos []dynRing
	heads []fifoHead // per-cycle scratch for issue's age sort

	// canAccept's steering result, reused by the dispatch that immediately
	// follows it (the engine admits then dispatches with no FIFO mutation in
	// between) so the FIFO scan runs once per instruction, not twice.
	steered   *dyn
	steeredTo int
}

type fifoHead struct {
	f int
	d *dyn
}

func newDepSteerCore(cfg *Config) *depSteerCore {
	return &depSteerCore{cfg: cfg, fifos: make([]dynRing, cfg.SteerFIFOs)}
}

// steerTarget applies Palacharla's heuristic: if the left source operand's
// producer sits at the tail of a FIFO, go behind it; otherwise take an empty
// FIFO. Examining a single operand is what keeps the steering simple enough
// to be "comparable complexity" to braids — and is also its weakness.
func (c *depSteerCore) steerTarget(d *dyn) int {
	if d.nsrcs > 0 {
		if p := d.srcs[0].producer; p != nil && !p.issued {
			for f := range c.fifos {
				q := &c.fifos[f]
				if n := q.len(); n > 0 && n < c.cfg.SteerFIFODeep && q.at(n-1) == p {
					return f
				}
			}
		}
	}
	for f := range c.fifos {
		if c.fifos[f].len() == 0 {
			return f
		}
	}
	return -1
}

func (c *depSteerCore) canAccept(d *dyn) bool {
	c.steered, c.steeredTo = d, c.steerTarget(d)
	return c.steeredTo >= 0
}

func (c *depSteerCore) dispatch(d *dyn) {
	f := c.steeredTo
	if d != c.steered {
		f = c.steerTarget(d)
	}
	c.steered = nil
	d.sched = f
	c.fifos[f].push(d)
}

func (c *depSteerCore) issue(m *Machine, t uint64) {
	// Heads only, oldest first across FIFOs.
	heads := c.heads[:0]
	for f := range c.fifos {
		if c.fifos[f].len() > 0 {
			heads = append(heads, fifoHead{f, c.fifos[f].front()})
		}
	}
	c.heads = heads[:0]
	for swapped := true; swapped; { // tiny fixed-size sort by age
		swapped = false
		for i := 0; i+1 < len(heads); i++ {
			if heads[i+1].d.seq < heads[i].d.seq {
				heads[i], heads[i+1] = heads[i+1], heads[i]
				swapped = true
			}
		}
	}
	for _, h := range heads {
		if m.issuedThisCycle >= m.cfg.IssueWidth {
			return
		}
		if m.mightIssue(h.d, t) && m.tryIssue(h.d, t) {
			c.fifos[h.f].popFront()
		}
	}
}

// nextWake: only FIFO heads are issue candidates, and nothing deeper can
// issue before its head does, so the heads bound the core's next event.
func (c *depSteerCore) nextWake(m *Machine, t uint64) uint64 {
	w := neverWakes
	for f := range c.fifos {
		if c.fifos[f].len() > 0 {
			if dw := m.dynWake(c.fifos[f].front(), t); dw < w {
				w = dw
			}
		}
	}
	return w
}

// ---------------------------------------------------------------------------
// Braid core: braids are distributed whole to braid execution units. A BEU
// owns one braid at a time ("a BEU can accept a new braid if it is not
// processing another braid", §3.3); its FIFO buffers that braid and the
// two-entry window at the head is examined for readiness each cycle, with
// two functional units per BEU. The internal register file is private to
// the braid and recycled when the braid finishes issuing.

type beu struct {
	fifo []*dyn
	busy bool // owns a braid whose instructions are not all issued
	open bool // still receiving the braid from distribute
}

type braidCore struct {
	cfg      *Config
	beus     []beu
	cur      int    // BEU receiving the current braid; -1 if none
	nextRR   int    // round-robin allocation pointer
	freeCnt  int    // BEUs not busy (admission checks in O(1))
	braidSeq uint64 // increments at each braid start

	// serialized routes every braid to BEU 0: §3.4's exception mode,
	// which turns the machine into a strict in-order processor while the
	// handler runs.
	serialized bool
}

// setSerialized enters or leaves §3.4's exception mode. The engine only
// toggles it with the pipeline drained, so every braid has fully issued and
// any BEU still marked as receiving can be closed and released.
func (c *braidCore) setSerialized(on bool) {
	c.serialized = on
	c.cur = -1
	for i := range c.beus {
		c.beus[i].open = false
		if len(c.beus[i].fifo) == 0 && c.beus[i].busy {
			c.beus[i].busy = false
			c.freeCnt++
		}
	}
}

func newBraidCore(cfg *Config) *braidCore {
	return &braidCore{cfg: cfg, beus: make([]beu, cfg.BEUs), cur: -1, freeCnt: cfg.BEUs}
}

func (c *braidCore) freeBEU() int {
	if c.serialized {
		if !c.beus[0].busy {
			return 0
		}
		return -1
	}
	if c.freeCnt == 0 {
		return -1
	}
	i := c.nextRR
	for k := 0; k < len(c.beus); k++ {
		if !c.beus[i].busy {
			return i
		}
		if i++; i == len(c.beus) {
			i = 0
		}
	}
	panic("uarch: braid freeCnt out of sync with busy flags")
}

// anyFree is freeBEU's boolean shadow, O(1) via the busy counter.
func (c *braidCore) anyFree() bool {
	if c.serialized {
		return !c.beus[0].busy
	}
	return c.freeCnt > 0
}

func (c *braidCore) canAccept(d *dyn) bool {
	if c.cfg.BEUQueueBraids {
		if d.braidStart || c.cur < 0 {
			return c.pickQueuedBEU() >= 0
		}
		return len(c.beus[c.cur].fifo) < c.cfg.BEUFIFO
	}
	if d.braidStart || c.cur < 0 {
		// Seeing the next braid's first instruction means the current
		// braid has fully dispatched (braids are consecutive). Its BEU
		// is closed — and released once its FIFO has drained — by
		// dispatch; the admission check only has to account for that
		// release, which keeps a one-BEU machine live.
		if c.anyFree() {
			return true
		}
		return c.cur >= 0 && c.beus[c.cur].open && len(c.beus[c.cur].fifo) == 0
	}
	return len(c.beus[c.cur].fifo) < c.cfg.BEUFIFO
}

// pickQueuedBEU chooses the least-loaded BEU with FIFO room.
func (c *braidCore) pickQueuedBEU() int {
	best := -1
	for i := range c.beus {
		if len(c.beus[i].fifo) >= c.cfg.BEUFIFO {
			continue
		}
		if best < 0 || len(c.beus[i].fifo) < len(c.beus[best].fifo) {
			best = i
		}
	}
	return best
}

func (c *braidCore) dispatch(d *dyn) {
	if c.cfg.BEUQueueBraids {
		if d.braidStart || c.cur < 0 {
			c.cur = c.pickQueuedBEU()
			c.braidSeq++
		}
		d.beu = c.cur
		d.sched = c.cur // wake-cache group (Machine.wakeMin) is the BEU
		d.braidID = c.braidSeq
		c.beus[c.cur].fifo = append(c.beus[c.cur].fifo, d)
		return
	}
	if d.braidStart || c.cur < 0 {
		// Close the previous braid's BEU (all side effects live here, so
		// canAccept stays a pure admission check).
		if c.cur >= 0 {
			c.beus[c.cur].open = false
			if len(c.beus[c.cur].fifo) == 0 {
				c.beus[c.cur].busy = false
				c.freeCnt++
			}
		}
		i := c.freeBEU()
		c.cur = i
		c.nextRR = (i + 1) % len(c.beus)
		c.beus[i].busy = true
		c.beus[i].open = true
		c.freeCnt--
		c.braidSeq++
	}
	d.beu = c.cur
	d.sched = c.cur // wake-cache group (Machine.wakeMin) is the BEU
	d.braidID = c.braidSeq
	c.beus[c.cur].fifo = append(c.beus[c.cur].fifo, d)
}

// checkInvariants asserts the braid core's structural rules (called from the
// engine's paranoid checker): at most one BEU receives a braid, an open BEU
// is busy and is the current one, and canAccept is a pure admission check —
// no state mutation on either the braid-start or the mid-braid path.
func (c *braidCore) checkInvariants(t uint64) {
	open := 0
	for i := range c.beus {
		b := &c.beus[i]
		if b.open {
			open++
			if !b.busy {
				panic(fmt.Sprintf("uarch: cycle %d: BEU %d open but not busy", t, i))
			}
			if i != c.cur {
				panic(fmt.Sprintf("uarch: cycle %d: BEU %d open but cur=%d", t, i, c.cur))
			}
		}
	}
	if open > 1 {
		panic(fmt.Sprintf("uarch: cycle %d: %d BEUs open", t, open))
	}
	free := 0
	for i := range c.beus {
		if !c.beus[i].busy {
			free++
		}
	}
	if free != c.freeCnt {
		panic(fmt.Sprintf("uarch: cycle %d: freeCnt %d but %d BEUs idle", t, c.freeCnt, free))
	}
	before := c.snapshot()
	c.canAccept(&dyn{braidStart: true, beu: -1, sched: -1})
	c.canAccept(&dyn{beu: -1, sched: -1})
	if c.snapshot() != before {
		panic(fmt.Sprintf("uarch: cycle %d: canAccept mutated braid-core state", t))
	}
}

// snapshot summarizes the braid core's mutable state for the purity check.
func (c *braidCore) snapshot() string {
	var b strings.Builder
	fmt.Fprintf(&b, "cur=%d rr=%d seq=%d ser=%v", c.cur, c.nextRR, c.braidSeq, c.serialized)
	for i := range c.beus {
		fmt.Fprintf(&b, " %d:%v/%v/%d", i, c.beus[i].busy, c.beus[i].open, len(c.beus[i].fifo))
	}
	return b.String()
}

func (c *braidCore) issue(m *Machine, t uint64) {
	for i := range c.beus {
		b := &c.beus[i]
		if len(b.fifo) == 0 {
			if b.busy && !b.open {
				b.busy = false // braid fully issued: release the BEU
				c.freeCnt++
			}
			continue
		}
		// Whole-BEU skip: no windowed entry's wake bound has arrived (see
		// oooCore.issue for the exhausted-bandwidth exception).
		if m.wakeMin[i] > t &&
			m.issuedThisCycle < m.cfg.IssueWidth && m.fusUsed < m.cfg.TotalFUs {
			continue
		}
		issued := 0
		min := neverWakes
		head := b.fifo[0].braidID
		// Examine the window at the FIFO head; issue ready entries
		// (out of order within the window), up to the per-BEU FUs.
		for w := 0; w < c.cfg.BEUWindow && w < len(b.fifo) && issued < c.cfg.BEUFUs; {
			d := b.fifo[w]
			if c.cfg.BEUQueueBraids && d.braidID != head {
				break // the queued next braid waits for the head braid
			}
			if !m.mightIssue(d, t) {
				if d.wakeLB < min {
					min = d.wakeLB
				}
				w++
				continue
			}
			if m.tryIssue(d, t) {
				b.fifo = append(b.fifo[:w], b.fifo[w+1:]...)
				issued++
				continue // the window slides up; re-examine slot w
			}
			if lb := d.wakeLB; lb > t {
				if lb < min {
					min = lb
				}
			} else if t+1 < min {
				min = t + 1 // structural rejection: retry next cycle
			}
			w++
			if m.issuedThisCycle >= m.cfg.IssueWidth {
				return
			}
		}
		if issued == 0 {
			m.wakeMin[i] = min
		}
		if len(b.fifo) == 0 && b.busy && !b.open {
			b.busy = false
			c.freeCnt++
		}
	}
}

// nextWake: each BEU examines only the window at its FIFO head (stopping at
// a queued next braid); deeper entries cannot issue before the window moves.
func (c *braidCore) nextWake(m *Machine, t uint64) uint64 {
	w := neverWakes
	for i := range c.beus {
		b := &c.beus[i]
		if len(b.fifo) == 0 {
			continue
		}
		head := b.fifo[0].braidID
		for k := 0; k < c.cfg.BEUWindow && k < len(b.fifo); k++ {
			d := b.fifo[k]
			if c.cfg.BEUQueueBraids && d.braidID != head {
				break
			}
			if dw := m.dynWake(d, t); dw < w {
				w = dw
			}
		}
	}
	return w
}
