// Command braidstat characterizes programs the way the paper's profiling
// tool does: dynamic value fanout and lifetime (§1) and the braid statistics
// of Tables 1-3.
//
// Usage:
//
//	braidstat -bench gcc            one generated benchmark
//	braidstat -kernel fig2          a built-in kernel
//	braidstat -suite                all 26 SPEC CPU2000 stand-ins
//	braidstat -suite -j 4           ... characterized 4 benchmarks at a time
//	braidstat -values -bench mcf    value fanout/lifetime only
//
// With -suite, -checkpoint appends each finished benchmark's report to a
// JSONL file; Ctrl-C stops the pool without printing a partial suite, and
// rerunning with -resume reloads the finished reports and only
// recharacterizes the rest, producing identical output.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"

	"braid/internal/braid"
	"braid/internal/cfg"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/workload"
)

func main() {
	var (
		bench      = flag.String("bench", "", "generated benchmark name")
		kernel     = flag.String("kernel", "", "built-in kernel name")
		suite      = flag.Bool("suite", false, "characterize the whole suite")
		values     = flag.Bool("values", false, "value fanout/lifetime only")
		iters      = flag.Int("iters", 50, "benchmark loop iterations")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "benchmarks characterized in parallel (-suite)")
		checkpoint = flag.String("checkpoint", "", "append finished suite reports to this JSONL file")
		resume     = flag.Bool("resume", false, "reload finished reports from -checkpoint before running")
	)
	flag.Parse()

	switch {
	case *suite:
		characterizeSuite(*iters, *values, *jobs, *checkpoint, *resume)
	case *bench != "":
		prof, ok := workload.ProfileByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err := workload.Generate(prof, *iters)
		if err != nil {
			fatal(err)
		}
		characterize(p, *values)
	case *kernel != "":
		p, ok := workload.KernelByName(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		characterize(p, *values)
	default:
		fatal(fmt.Errorf("need -bench, -kernel, or -suite"))
	}
}

// statRecord is one finished benchmark report in the -checkpoint JSONL. The
// key fields guard against resuming a checkpoint taken with different
// characterization parameters, which would silently mix reports.
type statRecord struct {
	Name       string `json:"name"`
	Iters      int    `json:"iters"`
	ValuesOnly bool   `json:"values_only"`
	Report     string `json:"report"`
}

// loadStatCheckpoint returns the reports already finished, keyed by benchmark
// name, skipping records whose parameters do not match. A torn final line —
// a crash mid-append — is ignored.
func loadStatCheckpoint(path string, iters int, valuesOnly bool) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]string{}, nil
	}
	if err != nil {
		return nil, err
	}
	done := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tail := bytes.TrimRight(data, " \t\r\n")
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec statRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if bytes.HasSuffix(tail, raw) {
				break // torn final line from an interrupted append
			}
			return nil, fmt.Errorf("braidstat: corrupt checkpoint %s: %w", path, err)
		}
		if rec.Iters == iters && rec.ValuesOnly == valuesOnly {
			done[rec.Name] = rec.Report
		}
	}
	return done, sc.Err()
}

// characterizeSuite runs every profile through a bounded worker pool and
// prints the reports in profile order, whatever order they finish in. A
// panic while characterizing one benchmark is contained to that benchmark;
// Ctrl-C stops workers from starting new benchmarks and exits without
// printing a partial suite.
func characterizeSuite(iters int, valuesOnly bool, jobs int, ckptPath string, resume bool) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	profs := workload.Profiles()
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(profs) {
		jobs = len(profs)
	}

	reports := make([]string, len(profs))
	errs := make([]error, len(profs))
	var ckpt *os.File
	var ckptMu sync.Mutex
	if ckptPath != "" {
		if resume {
			done, err := loadStatCheckpoint(ckptPath, iters, valuesOnly)
			if err != nil {
				fatal(err)
			}
			restored := 0
			for i, prof := range profs {
				if r, ok := done[prof.Name]; ok {
					reports[i] = r
					restored++
				}
			}
			fmt.Fprintf(os.Stderr, "braidstat: resumed %d finished reports from %s\n", restored, ckptPath)
		}
		f, err := os.OpenFile(ckptPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ckpt = f
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without starting new work
				}
				p, err := workload.Generate(profs[i], iters)
				if err != nil {
					errs[i] = err
					continue
				}
				reports[i], errs[i] = reportChecked(p, valuesOnly)
				if errs[i] == nil && ckpt != nil {
					rec := statRecord{Name: profs[i].Name, Iters: iters, ValuesOnly: valuesOnly, Report: reports[i]}
					if data, err := json.Marshal(&rec); err == nil {
						ckptMu.Lock()
						ckpt.Write(append(data, '\n')) // one write: a crash tears at most the last line
						ckptMu.Unlock()
					}
				}
			}
		}()
	}
	for i := range profs {
		if reports[i] != "" {
			continue // restored from the checkpoint
		}
		work <- i
	}
	close(work)
	wg.Wait()

	if ctx.Err() != nil {
		msg := "braidstat: interrupted; no partial suite printed"
		if ckptPath != "" {
			msg += fmt.Sprintf(" (rerun with -checkpoint %s -resume to continue)", ckptPath)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	}
	for i, prof := range profs {
		if errs[i] != nil {
			fatal(fmt.Errorf("%s: %w", prof.Name, errs[i]))
		}
		fmt.Printf("--- %s ---\n%s", prof.Name, reports[i])
	}
}

func characterize(p *isa.Program, valuesOnly bool) {
	s, err := report(p, valuesOnly)
	if err != nil {
		fatal(err)
	}
	fmt.Print(s)
}

// reportChecked contains a panic in the characterization pipeline to the
// benchmark that triggered it, so one bad program cannot kill the pool.
func reportChecked(p *isa.Program, valuesOnly bool) (s string, err error) {
	defer func() {
		if r := recover(); r != nil {
			s = ""
			err = fmt.Errorf("characterization panic: %v\n%s", r, debug.Stack())
		}
	}()
	return report(p, valuesOnly)
}

// report builds one program's characterization text (§1 values, control
// flow, Tables 1-3 braid statistics).
func report(p *isa.Program, valuesOnly bool) (string, error) {
	var b strings.Builder
	vs, err := interp.Characterize(p, 100_000_000)
	if err != nil {
		return "", err
	}
	b.WriteString(vs.String())
	if valuesOnly {
		return b.String(), nil
	}
	if g, err := cfg.Build(p); err == nil {
		loops := cfg.NaturalLoops(g)
		fmt.Fprintf(&b, "control flow: %d blocks, %d natural loops\n", len(g.Blocks), len(loops))
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		return "", err
	}
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	if _, err := m.Run(100_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) }); err != nil {
		return "", err
	}
	st := ds.Stats()
	b.WriteString(st.String())
	return b.String(), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidstat: %v\n", err)
	os.Exit(1)
}
