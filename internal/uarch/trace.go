package uarch

import (
	"fmt"
	"io"
)

// SetTrace attaches a pipeline trace writer: every retired instruction emits
// one line with its per-stage cycle timestamps, up to max instructions
// (unlimited when max <= 0). Call before Run.
//
// Columns: sequence number, static index, fetch / dispatch / issue /
// execute-done / writeback / retire cycles, then the instruction. A braid
// core additionally shows the owning BEU.
//
// Write failures are not dropped: the first error stops further trace output
// and is surfaced by Run/RunChecked once the simulation finishes.
func (m *Machine) SetTrace(w io.Writer, max int) {
	m.trace = w
	m.traceMax = max
	_, err := fmt.Fprintf(w, "%6s %5s %7s %7s %7s %7s %7s %7s %4s  %s\n",
		"seq", "idx", "fetch", "disp", "issue", "done", "wb", "retire", "beu", "instruction")
	m.noteWriteErr("trace", err)
}

func (m *Machine) traceRetire(d *dyn, t uint64) {
	if m.trace == nil || m.writeErr != nil || (m.traceMax > 0 && m.traceCount >= m.traceMax) {
		return
	}
	m.traceCount++
	beu := "-"
	if d.beu >= 0 {
		beu = fmt.Sprintf("%d", d.beu)
	}
	_, err := fmt.Fprintf(m.trace, "%6d %5d %7d %7d %7d %7d %7d %7d %4s  %s\n",
		d.seq, d.idx, d.fetchCycle, d.dispatchCycle, d.issueCycle,
		d.execDone, d.completeCycle, t, beu, d.in.String())
	m.noteWriteErr("trace", err)
}
