// Sweep: the Figure 6 sensitivity study on one benchmark — how small can the
// braid machine's external register file be? The paper's answer: 8 entries
// behave like 256, because internal values never touch it.
//
// The sweep points are declared up front and simulated concurrently (bounded
// by -j workers); the bars print in declaration order either way. A point
// that blows its cycle budget or faults is reported and skipped — the other
// bars still print — and Ctrl-C cancels the remaining points.
//
//	go run ./examples/sweep [-j N] [benchmark]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"math"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"syscall"

	"braid/internal/braid"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// point is one bar of the sweep: a program under one configuration.
type point struct {
	entries int
	prog    *isa.Program
	cfg     uarch.Config
	ipc     float64
	err     error // contained per-point failure; the bar prints as skipped
}

func main() {
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations")
	flag.Parse()
	name := "vortex"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	prof, ok := workload.ProfileByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	prog, err := workload.Generate(prof, 400)
	if err != nil {
		log.Fatal(err)
	}
	res, err := braid.Compile(prog, braid.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Declare every point of both sweeps, then run them all concurrently.
	var braidPts, oooPts []*point
	for _, entries := range []int{256, 64, 32, 16, 8, 4} {
		cfg := uarch.BraidConfig(8)
		cfg.RFEntries = entries
		braidPts = append(braidPts, &point{entries: entries, prog: res.Prog, cfg: cfg})
	}
	for _, entries := range []int{256, 64, 32, 16, 8} {
		cfg := uarch.OutOfOrderConfig(8)
		cfg.RFEntries = entries
		oooPts = append(oooPts, &point{entries: entries, prog: prog, cfg: cfg})
	}
	if err := simulateAll(ctx, append(append([]*point{}, braidPts...), oooPts...), *jobs); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: braid external register file sweep (paper Figure 6) ===\n\n", name)
	printBars(braidPts)
	fmt.Println("\nAnd the conventional out-of-order machine on the same benchmark")
	fmt.Println("(paper Figure 5) — it needs far more registers:")
	printBars(oooPts)
}

// simulateAll fills every point's IPC through a bounded worker pool. A
// contained failure (simulator fault, cycle-budget exhaustion) marks its
// point and the sweep continues; cancellation aborts the whole sweep.
func simulateAll(ctx context.Context, pts []*point, jobs int) error {
	if jobs < 1 {
		jobs = 1
	}
	work := make(chan *point)
	errs := make([]error, 1)
	var (
		wg   sync.WaitGroup
		once sync.Once
	)
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pt := range work {
				if ctx.Err() != nil {
					continue // canceled: drain without simulating
				}
				st, err := uarch.SimulateChecked(ctx, pt.prog, pt.cfg)
				if err != nil {
					var sf *uarch.SimFault
					if errors.As(err, &sf) || errors.Is(err, uarch.ErrCycleLimit) {
						pt.ipc, pt.err = math.NaN(), err
						fmt.Fprintf(os.Stderr, "sweep: skipping %d entries: %v\n", pt.entries, err)
						continue
					}
					once.Do(func() { errs[0] = err })
					continue
				}
				pt.ipc = st.IPC()
			}
		}()
	}
	for _, pt := range pts {
		work <- pt
	}
	close(work)
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("sweep interrupted: %w", err)
	}
	return errs[0]
}

func printBars(pts []*point) {
	base := pts[0].ipc
	for _, pt := range pts {
		if pt.err != nil || math.IsNaN(pt.ipc) {
			fmt.Printf("%4d entries: (skipped: %v)\n", pt.entries, pt.err)
			continue
		}
		bar := ""
		for i := 0.0; i < pt.ipc/base*40; i++ {
			bar += "#"
		}
		fmt.Printf("%4d entries: IPC %6.3f  (%5.1f%% of 256)  %s\n",
			pt.entries, pt.ipc, 100*pt.ipc/base, bar)
	}
}
