package workload

import (
	"fmt"

	"braid/internal/asm"
	"braid/internal/isa"
)

// Kernels returns small hand-written programs used by examples and tests:
// the paper's Figure 2 block (gcc's life analysis), a dot product, a
// linked-list walk, an 8×8 matrix multiply with nested loops, and a block
// copy with a software-pipelined body. They complement the synthetic suite
// with human-readable code.
func Kernels() []*isa.Program {
	var ps []*isa.Program
	for _, src := range []string{kernelFig2, kernelDot, kernelList, kernelMatmul, kernelCopy} {
		p, err := asm.Parse(src)
		if err != nil {
			panic(fmt.Sprintf("workload: bad builtin kernel: %v", err))
		}
		ps = append(ps, p)
	}
	return ps
}

// KernelByName returns the named kernel; ok is false if unknown.
func KernelByName(name string) (*isa.Program, bool) {
	for _, p := range Kernels() {
		if p.Name == name {
			return p, true
		}
	}
	return nil, false
}

// kernelFig2 transliterates the paper's Figure 2: the inner loop of gcc's
// life-analysis function (regset_size words of three bitmaps combined).
const kernelFig2 = `
.name fig2
.data 2048
	ldimm r0, #65536       ; new_live_at_end
	ldimm r1, #65792       ; live_at_end
	ldimm r8, #66048       ; significant
	ldimm r4, #0           ; t4: byte offset
	ldimm r5, #0           ; t5: j
	ldimm r9, #32          ; regset_size
	ldimm r6, #0           ; consider
	ldimm r14, #0          ; must_rescan
	br    body
body:
	add    r10, r1, r4
	add    r11, r0, r4
	add    r12, r8, r4
	ldl    r13, 0(r10)     !ac=1
	add    r5, r5, #1
	ldl    r10, 0(r11)     !ac=1
	cmpeq  r7, r9, r5
	ldl    r11, 0(r12)     !ac=1
	lda    r4, 4(r4)
	andnot r10, r13, r10
	sextl  r10, r10
	and    r11, r10, r11
	zapnot r11, r11, #15
	cmovne r6, r10, #1
	bne    r11, found
	beq    r7, body
	br     done
found:
	ldimm  r14, #1
	ldimm  r6, #1
done:
	stq    r6, 1024(r0)    !ac=2
	stq    r14, 1032(r0)   !ac=2
	stq    r5, 1040(r0)    !ac=2
	halt
`

// kernelDot is a 64-element dot product: streaming loads, an FP multiply-add
// chain, and a highly predictable loop.
const kernelDot = `
.name dot
.fp
.data 1024
	ldimm r0, #65536
	ldimm r1, #66048
	ldimm r6, #64
	ldimm r4, #0
	ldimm r7, #0
	cvtif f2, r7
loop:
	add  r10, r0, r4
	add  r11, r1, r4
	ldf  f0, 0(r10)   !ac=1
	ldf  f1, 0(r11)   !ac=2
	fmul f3, f0, f1
	fadd f2, f2, f3
	lda  r4, 8(r4)
	sub  r6, r6, #1
	bgt  r6, loop
	stf  f2, 0(r1)    !ac=3
	halt
`

// kernelList walks a 128-node linked list accumulating a field: the
// pointer-chase pattern that dominates mcf.
const kernelList = `
.name list
.data 2048
	ldimm r0, #65536       ; node array base
	ldimm r6, #128         ; steps
	ldimm r7, #0           ; sum
	add   r2, r0, #0       ; p = head
	ldimm r3, #2040
	and   r3, r3, #-8
build:
	; build the list in memory: node i -> node i+16 bytes, payload = i
	ldimm r4, #0
bloop:
	add   r5, r0, r4       ; &node
	add   r9, r4, #16
	and   r9, r9, r3       ; wrap at 2040
	add   r10, r0, r9
	stq   r10, 0(r5)       !ac=1
	stq   r4, 8(r5)        !ac=2
	lda   r4, 16(r4)
	cmplt r11, r4, r3
	bne   r11, bloop
walk:
	ldq   r12, 8(r2)       !ac=2
	add   r7, r7, r12
	ldq   r2, 0(r2)        !ac=1
	sub   r6, r6, #1
	bgt   r6, walk
	stq   r7, 2040(r0)     !ac=3
	halt
`

// kernelMatmul multiplies two 8x8 matrices of integers: triply nested loops,
// strided loads from two arrays, and a multiply-accumulate recurrence.
const kernelMatmul = `
.name matmul
.data 2048
	ldimm r0, #65536       ; A
	ldimm r1, #66048       ; B
	ldimm r2, #66560       ; C
	; seed A and B with i*8+j values
	ldimm r4, #0
seed:
	add   r5, r0, r4
	add   r6, r1, r4
	srl   r7, r4, #3
	stq   r7, 0(r5)        !ac=1
	xor   r8, r7, #5
	stq   r8, 0(r6)        !ac=2
	lda   r4, 8(r4)
	cmplt r9, r4, #512
	bne   r9, seed
	; C[i][j] = sum_k A[i][k]*B[k][j]
	ldimm r10, #0          ; i
iloop:
	ldimm r11, #0          ; j
jloop:
	ldimm r12, #0          ; k
	ldimm r13, #0          ; acc
kloop:
	sll   r14, r10, #6     ; i*64
	sll   r15, r12, #3     ; k*8
	add   r16, r14, r15
	add   r16, r16, r0
	ldq   r17, 0(r16)      !ac=1   ; A[i][k]
	sll   r18, r12, #6     ; k*64
	sll   r19, r11, #3     ; j*8
	add   r20, r18, r19
	add   r20, r20, r1
	ldq   r21, 0(r20)      !ac=2   ; B[k][j]
	mul   r22, r17, r21
	add   r13, r13, r22
	add   r12, r12, #1
	cmplt r23, r12, #8
	bne   r23, kloop
	sll   r24, r10, #6
	sll   r25, r11, #3
	add   r26, r24, r25
	add   r26, r26, r2
	stq   r13, 0(r26)      !ac=3   ; C[i][j]
	add   r11, r11, #1
	cmplt r23, r11, #8
	bne   r23, jloop
	add   r10, r10, #1
	cmplt r23, r10, #8
	bne   r23, iloop
	halt
`

// kernelCopy copies 256 words with a two-braid body: an address braid and a
// load/store braid, plus a checksum accumulator.
const kernelCopy = `
.name copy
.data 4096
	ldimm r0, #65536       ; src
	ldimm r1, #69632       ; dst (65536+4096)
	ldimm r6, #256
	ldimm r4, #0
	ldimm r7, #0
loop:
	add   r10, r0, r4
	add   r11, r1, r4
	ldq   r12, 0(r10)      !ac=1
	stq   r12, 0(r11)      !ac=2
	add   r7, r7, r12
	lda   r4, 8(r4)
	sub   r6, r6, #1
	bgt   r6, loop
	stq   r7, 2048(r1)     !ac=3
	halt
`
