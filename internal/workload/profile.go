// Package workload generates the synthetic benchmark programs that stand in
// for SPEC CPU2000 with MinneSPEC inputs. The paper's evaluation depends on
// braid geometry (Tables 1-3), branch behaviour, and memory behaviour; each
// profile below encodes the paper's published per-benchmark braid statistics
// together with flavour parameters (memory intensity, pointer chasing,
// branch predictability) chosen to reflect the benchmark's well-known
// character. A generated program, run through this repository's braid
// compiler, reproduces its profile's Table 1-3 numbers; characterization
// tests enforce that.
//
// Programs are fully deterministic (seeded), valid BRD64, publish their
// results to memory before halting, and are constructed so that braid
// formation needs no splits: braids are emitted as consecutive instruction
// runs, blocks never read and write the same pool register, and memory
// regions carry distinct alias classes.
package workload

// Profile parameterizes one synthetic benchmark.
type Profile struct {
	Name string
	FP   bool // floating-point dominated (paper groups averages this way)
	Seed int64

	// Braid geometry targets, straight from the paper's Tables 1-3
	// (per-benchmark values include single-instruction braids).
	BraidsPerBlock float64 // Table 1
	MeanSize       float64 // Table 2: braid size
	MeanWidth      float64 // Table 2: braid width
	ExtInputs      float64 // Table 3: external inputs per braid
	ExtOutputs     float64 // Table 3: external outputs per braid

	// SinglesShare is the fraction of braids that are single-instruction
	// braids. The paper's integer and floating-point suite averages both
	// imply roughly 0.6 (2.8 vs 1.1 and 3.8 vs 1.5 braids per block).
	SinglesShare float64

	// Flavour parameters (not published per-benchmark; chosen to match
	// each benchmark's well-known behaviour and documented in DESIGN.md).
	Blocks         int     // loop-body basic blocks
	LoadFrac       float64 // probability a braid contains a load cluster
	StoreBraidFrac float64 // fraction of braids that end in a store
	HardBranchFrac float64 // fraction of skip branches driven by random data
	SkipProb       float64 // taken probability of hard skip branches
	PointerChase   bool    // mcf-style dependent load chains
	DataKB         int     // data footprint per region (cache pressure)
	Stride         int     // streaming access stride in bytes
}

// Profiles returns the 26 SPEC CPU2000 stand-ins, 12 integer followed by 14
// floating-point, in the paper's presentation order.
func Profiles() []Profile {
	ps := make([]Profile, 0, len(profileTable))
	ps = append(ps, profileTable...)
	return ps
}

// IntProfiles returns the integer suite.
func IntProfiles() []Profile { return Profiles()[:12] }

// FPProfiles returns the floating-point suite.
func FPProfiles() []Profile { return Profiles()[12:] }

// ProfileByName finds a profile; ok is false if the name is unknown.
func ProfileByName(name string) (Profile, bool) {
	for _, p := range profileTable {
		if p.Name == name {
			return p, true
		}
	}
	return Profile{}, false
}

var profileTable = []Profile{
	// Integer suite. Columns: braids/block, size, width, extIn, extOut.
	{Name: "bzip2", BraidsPerBlock: 2.5, MeanSize: 3.4, MeanWidth: 1.1, ExtInputs: 1.9, ExtOutputs: 0.8,
		Blocks: 8, LoadFrac: 0.45, StoreBraidFrac: 0.25, HardBranchFrac: 0.105, SkipProb: 0.4, DataKB: 32, Stride: 8},
	{Name: "crafty", BraidsPerBlock: 2.5, MeanSize: 3.2, MeanWidth: 1.1, ExtInputs: 1.7, ExtOutputs: 0.7,
		Blocks: 10, LoadFrac: 0.40, StoreBraidFrac: 0.15, HardBranchFrac: 0.075, SkipProb: 0.35, DataKB: 32, Stride: 8},
	{Name: "eon", BraidsPerBlock: 4.2, MeanSize: 2.0, MeanWidth: 1.1, ExtInputs: 1.5, ExtOutputs: 0.6,
		Blocks: 9, LoadFrac: 0.35, StoreBraidFrac: 0.20, HardBranchFrac: 0.060, SkipProb: 0.3, DataKB: 32, Stride: 8},
	{Name: "gap", BraidsPerBlock: 2.4, MeanSize: 2.5, MeanWidth: 1.0, ExtInputs: 1.5, ExtOutputs: 0.8,
		Blocks: 8, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.090, SkipProb: 0.4, DataKB: 32, Stride: 8},
	{Name: "gcc", BraidsPerBlock: 2.4, MeanSize: 2.3, MeanWidth: 1.1, ExtInputs: 1.6, ExtOutputs: 0.7,
		Blocks: 12, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.135, SkipProb: 0.45, DataKB: 32, Stride: 8},
	{Name: "gzip", BraidsPerBlock: 2.6, MeanSize: 3.4, MeanWidth: 1.0, ExtInputs: 2.1, ExtOutputs: 0.9,
		Blocks: 7, LoadFrac: 0.50, StoreBraidFrac: 0.30, HardBranchFrac: 0.105, SkipProb: 0.4, DataKB: 32, Stride: 8},
	{Name: "mcf", BraidsPerBlock: 2.0, MeanSize: 2.0, MeanWidth: 1.0, ExtInputs: 1.5, ExtOutputs: 0.6,
		Blocks: 6, LoadFrac: 0.60, StoreBraidFrac: 0.15, HardBranchFrac: 0.165, SkipProb: 0.45, PointerChase: true, DataKB: 1024, Stride: 8},
	{Name: "parser", BraidsPerBlock: 2.7, MeanSize: 2.2, MeanWidth: 1.0, ExtInputs: 1.5, ExtOutputs: 0.7,
		Blocks: 10, LoadFrac: 0.45, StoreBraidFrac: 0.20, HardBranchFrac: 0.135, SkipProb: 0.45, DataKB: 32, Stride: 8},
	{Name: "perlbmk", BraidsPerBlock: 2.8, MeanSize: 2.3, MeanWidth: 1.1, ExtInputs: 1.4, ExtOutputs: 0.7,
		Blocks: 11, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.120, SkipProb: 0.4, DataKB: 32, Stride: 8},
	{Name: "twolf", BraidsPerBlock: 3.1, MeanSize: 2.8, MeanWidth: 1.0, ExtInputs: 1.7, ExtOutputs: 0.6,
		Blocks: 9, LoadFrac: 0.45, StoreBraidFrac: 0.20, HardBranchFrac: 0.120, SkipProb: 0.4, DataKB: 64, Stride: 8},
	{Name: "vortex", BraidsPerBlock: 3.5, MeanSize: 2.1, MeanWidth: 1.1, ExtInputs: 1.7, ExtOutputs: 0.8,
		Blocks: 10, LoadFrac: 0.45, StoreBraidFrac: 0.30, HardBranchFrac: 0.075, SkipProb: 0.35, DataKB: 64, Stride: 8},
	{Name: "vpr", BraidsPerBlock: 2.8, MeanSize: 2.5, MeanWidth: 1.1, ExtInputs: 1.7, ExtOutputs: 0.8,
		Blocks: 9, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.090, SkipProb: 0.35, DataKB: 32, Stride: 8},

	// Floating-point suite.
	{Name: "ammp", FP: true, BraidsPerBlock: 2.0, MeanSize: 2.8, MeanWidth: 1.0, ExtInputs: 1.9, ExtOutputs: 0.7,
		Blocks: 7, LoadFrac: 0.45, StoreBraidFrac: 0.20, HardBranchFrac: 0.045, SkipProb: 0.3, DataKB: 64, Stride: 8},
	{Name: "applu", FP: true, BraidsPerBlock: 5.9, MeanSize: 2.9, MeanWidth: 1.1, ExtInputs: 1.7, ExtOutputs: 0.6,
		Blocks: 6, LoadFrac: 0.45, StoreBraidFrac: 0.25, HardBranchFrac: 0.015, SkipProb: 0.2, DataKB: 128, Stride: 16},
	{Name: "apsi", FP: true, BraidsPerBlock: 4.7, MeanSize: 2.8, MeanWidth: 1.1, ExtInputs: 1.9, ExtOutputs: 0.6,
		Blocks: 7, LoadFrac: 0.40, StoreBraidFrac: 0.25, HardBranchFrac: 0.030, SkipProb: 0.25, DataKB: 64, Stride: 16},
	{Name: "art", FP: true, BraidsPerBlock: 2.9, MeanSize: 2.6, MeanWidth: 1.0, ExtInputs: 1.9, ExtOutputs: 0.6,
		Blocks: 6, LoadFrac: 0.55, StoreBraidFrac: 0.15, HardBranchFrac: 0.045, SkipProb: 0.3, DataKB: 256, Stride: 8},
	{Name: "equake", FP: true, BraidsPerBlock: 2.5, MeanSize: 2.4, MeanWidth: 1.0, ExtInputs: 1.7, ExtOutputs: 0.7,
		Blocks: 7, LoadFrac: 0.50, StoreBraidFrac: 0.20, HardBranchFrac: 0.045, SkipProb: 0.3, DataKB: 128, Stride: 8},
	{Name: "facerec", FP: true, BraidsPerBlock: 2.7, MeanSize: 2.2, MeanWidth: 1.1, ExtInputs: 1.7, ExtOutputs: 0.8,
		Blocks: 8, LoadFrac: 0.45, StoreBraidFrac: 0.20, HardBranchFrac: 0.030, SkipProb: 0.25, DataKB: 64, Stride: 16},
	{Name: "fma3d", FP: true, BraidsPerBlock: 2.8, MeanSize: 2.7, MeanWidth: 1.1, ExtInputs: 2.1, ExtOutputs: 0.8,
		Blocks: 9, LoadFrac: 0.40, StoreBraidFrac: 0.25, HardBranchFrac: 0.045, SkipProb: 0.3, DataKB: 64, Stride: 8},
	{Name: "galgel", FP: true, BraidsPerBlock: 5.7, MeanSize: 2.0, MeanWidth: 1.0, ExtInputs: 1.7, ExtOutputs: 0.6,
		Blocks: 6, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.015, SkipProb: 0.2, DataKB: 64, Stride: 16},
	{Name: "lucas", FP: true, BraidsPerBlock: 3.7, MeanSize: 4.6, MeanWidth: 1.1, ExtInputs: 2.6, ExtOutputs: 0.7,
		Blocks: 5, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.015, SkipProb: 0.2, DataKB: 128, Stride: 16},
	{Name: "mesa", FP: true, BraidsPerBlock: 2.8, MeanSize: 2.1, MeanWidth: 1.1, ExtInputs: 1.9, ExtOutputs: 0.6,
		Blocks: 9, LoadFrac: 0.40, StoreBraidFrac: 0.25, HardBranchFrac: 0.060, SkipProb: 0.3, DataKB: 32, Stride: 8},
	// mgrid's published numbers (13-instruction braids on average even
	// with singles included) imply far fewer single-instruction braids
	// than the suite norm, hence the explicit SinglesShare.
	{Name: "mgrid", FP: true, BraidsPerBlock: 4.0, MeanSize: 13.2, MeanWidth: 1.4, ExtInputs: 5.9, ExtOutputs: 1.7,
		SinglesShare: 0.25, Blocks: 4, LoadFrac: 0.50, StoreBraidFrac: 0.25, HardBranchFrac: 0.006, SkipProb: 0.15, DataKB: 256, Stride: 24},
	{Name: "sixtrack", FP: true, BraidsPerBlock: 3.1, MeanSize: 2.3, MeanWidth: 1.1, ExtInputs: 1.8, ExtOutputs: 0.7,
		Blocks: 8, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.030, SkipProb: 0.25, DataKB: 32, Stride: 8},
	{Name: "swim", FP: true, BraidsPerBlock: 6.6, MeanSize: 4.8, MeanWidth: 1.2, ExtInputs: 3.0, ExtOutputs: 0.7,
		Blocks: 4, LoadFrac: 0.50, StoreBraidFrac: 0.25, HardBranchFrac: 0.006, SkipProb: 0.15, DataKB: 256, Stride: 16},
	{Name: "wupwise", FP: true, BraidsPerBlock: 3.6, MeanSize: 2.8, MeanWidth: 1.1, ExtInputs: 1.8, ExtOutputs: 0.7,
		Blocks: 7, LoadFrac: 0.40, StoreBraidFrac: 0.20, HardBranchFrac: 0.015, SkipProb: 0.2, DataKB: 64, Stride: 16},
}

func init() {
	for i := range profileTable {
		p := &profileTable[i]
		if p.SinglesShare == 0 {
			p.SinglesShare = 0.65
		}
		p.Seed = int64(1009*(i+1) + 17)
	}
}
