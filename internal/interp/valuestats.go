package interp

import (
	"fmt"
	"strings"

	"braid/internal/isa"
)

// ValueStats accumulates the dynamic value fanout and lifetime statistics
// that motivate the braid (paper §1): on SPEC CPU2000, over 70% of values are
// read exactly once, about 90% at most twice, about 4% are never read, and
// about 80% of values live 32 instructions or fewer. Following the paper,
// only values propagated through the register space are considered.
//
// Feed it every StepInfo from an interpreter run, then Finish and read the
// histograms. A value is one dynamic register write; its fanout is the number
// of dynamic reads before it is overwritten; its lifetime is the dynamic
// instruction distance from the producer to the last consumer.
type ValueStats struct {
	// Fanout[k] counts values read exactly k times (k capped at MaxFanout).
	Fanout [MaxFanout + 1]uint64
	// Lifetime[i] counts values whose producer-to-last-consumer distance
	// falls in bucket i of LifetimeBuckets; the final bucket is overflow.
	Lifetime [len(LifetimeBuckets) + 1]uint64

	TotalValues uint64

	live [isa.NumArchRegs]liveValue
}

// MaxFanout caps the fanout histogram; larger fanouts accumulate in the last
// bin.
const MaxFanout = 8

// LifetimeBuckets are the inclusive upper bounds of the lifetime histogram
// bins, in dynamic instructions. 32 is the paper's headline bucket (four
// cycles of an 8-wide machine).
var LifetimeBuckets = [...]uint64{4, 8, 16, 32, 64, 128, 256}

type liveValue struct {
	valid    bool
	born     uint64 // dynamic instruction number of the producer
	lastRead uint64
	reads    uint64
}

// Observe records the register effects of one executed instruction. step is
// the dynamic instruction number (machine.Steps after the step).
func (vs *ValueStats) Observe(info *StepInfo, step uint64) {
	for i := 0; i < 3; i++ {
		r := info.SrcRegs[i]
		if i >= info.SrcCount && r == isa.RegNone {
			continue
		}
		if r == isa.RegNone || r == isa.RegZero || !r.Valid() {
			continue
		}
		lv := &vs.live[r]
		if lv.valid {
			lv.reads++
			lv.lastRead = step
		}
	}
	if info.WroteReg && info.DestReg != isa.RegNone && info.DestReg != isa.RegZero {
		lv := &vs.live[info.DestReg]
		if lv.valid {
			vs.retire(lv)
		}
		*lv = liveValue{valid: true, born: step}
	}
}

func (vs *ValueStats) retire(lv *liveValue) {
	vs.TotalValues++
	f := lv.reads
	if f > MaxFanout {
		f = MaxFanout
	}
	vs.Fanout[f]++
	if lv.reads > 0 {
		life := lv.lastRead - lv.born
		b := len(LifetimeBuckets)
		for i, ub := range LifetimeBuckets {
			if life <= ub {
				b = i
				break
			}
		}
		vs.Lifetime[b]++
	}
}

// Finish retires all still-live values as if overwritten at program end.
func (vs *ValueStats) Finish() {
	for r := range vs.live {
		if vs.live[r].valid {
			vs.retire(&vs.live[r])
			vs.live[r] = liveValue{}
		}
	}
}

// FanoutCDF returns the fraction of values read at most k times.
func (vs *ValueStats) FanoutCDF(k int) float64 {
	if vs.TotalValues == 0 {
		return 0
	}
	var sum uint64
	for i := 0; i <= k && i <= MaxFanout; i++ {
		sum += vs.Fanout[i]
	}
	return float64(sum) / float64(vs.TotalValues)
}

// FracUnused returns the fraction of values that are produced but never read.
func (vs *ValueStats) FracUnused() float64 {
	if vs.TotalValues == 0 {
		return 0
	}
	return float64(vs.Fanout[0]) / float64(vs.TotalValues)
}

// FracUsedOnce returns the fraction of values read exactly once.
func (vs *ValueStats) FracUsedOnce() float64 {
	if vs.TotalValues == 0 {
		return 0
	}
	return float64(vs.Fanout[1]) / float64(vs.TotalValues)
}

// LifetimeCDF returns the fraction of *consumed* values whose lifetime is at
// most bound dynamic instructions. bound must be one of LifetimeBuckets.
func (vs *ValueStats) LifetimeCDF(bound uint64) float64 {
	var total, sum uint64
	for i := range vs.Lifetime {
		total += vs.Lifetime[i]
	}
	if total == 0 {
		return 0
	}
	for i, ub := range LifetimeBuckets {
		if ub <= bound {
			sum += vs.Lifetime[i]
		}
	}
	return float64(sum) / float64(total)
}

// String renders the histograms as a small report.
func (vs *ValueStats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "values: %d\n", vs.TotalValues)
	fmt.Fprintf(&b, "fanout: unused=%.1f%% once=%.1f%% ≤2=%.1f%%\n",
		100*vs.FracUnused(), 100*vs.FracUsedOnce(), 100*vs.FanoutCDF(2))
	for _, ub := range LifetimeBuckets {
		fmt.Fprintf(&b, "lifetime ≤%3d: %.1f%%\n", ub, 100*vs.LifetimeCDF(ub))
	}
	return b.String()
}

// Characterize runs p to completion under the interpreter, collecting value
// statistics.
func Characterize(p *isa.Program, maxSteps uint64) (*ValueStats, error) {
	m := New(p)
	vs := &ValueStats{}
	_, err := m.Run(maxSteps, func(info *StepInfo) {
		vs.Observe(info, m.Steps)
	})
	if err != nil {
		return nil, err
	}
	vs.Finish()
	return vs, nil
}
