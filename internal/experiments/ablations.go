package experiments

import (
	"fmt"

	"braid/internal/braid"
	"braid/internal/uarch"
)

// Ablations returns studies beyond the paper's figures that isolate the
// modeling and design choices DESIGN.md documents: dead-value release,
// busy-bit wakeup latency, compiler alias information, the internal register
// file size, an out-of-order BEU window (§5.1's "has been considered"), and
// §5.2's clustering proposal.
func Ablations() []Experiment {
	return []Experiment{
		{"abl-deadvalue", "ablation: dead-value early release of external RF entries", AblDeadValue},
		{"abl-wakeup", "ablation: busy-bit wakeup latency between BEUs", AblWakeup},
		{"abl-cluster", "ablation (§5.2): clustered BEUs with slow inter-cluster values", AblCluster},
		{"abl-window", "ablation (§5.1): an out-of-order window inside each BEU", AblWindowOoO},
		{"abl-internal", "ablation: internal register file size at compile time", AblInternal},
		{"abl-alias", "ablation: compiling and simulating without alias information", AblAlias},
		{"abl-exception", "ablation (§3.4): exception-rate sensitivity of the serialization mode", AblException},
	}
}

// AblationByID finds an ablation experiment.
func AblationByID(id string) (Experiment, bool) {
	for _, e := range Ablations() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// AblDeadValue compares the braid machine with and without the dead-value
// early release that lets 8 external registers suffice.
func AblDeadValue(w *Workloads) (*Result, error) {
	r := newResult("abl-deadvalue", "braid IPC without dead-value release, normalized to with")
	base := uarch.BraidConfig(8)
	series := []string{"retire-release", "retire-release-rf32"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		cfg.DeadValueRelease = false
		if s == "retire-release-rf32" {
			cfg.RFEntries = 32
		}
		return cfg
	}
	if err := sweep(w, r, true, base, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("8-entry RF needs dead-value release (off/on ratio)", 0.9, r.Average("retire-release", "all"))
	r.Notes = append(r.Notes,
		"Without compiler dead-value information an 8-entry external file must hold values to retirement; the second column shows 32 entries recovering most of the loss.")
	return r, nil
}

// AblWakeup sweeps the busy-bit synchronization latency across BEUs.
func AblWakeup(w *Workloads) (*Result, error) {
	r := newResult("abl-wakeup", "braid IPC vs busy-bit wakeup latency, normalized to 1 cycle")
	series := []string{"0", "2", "4"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		fmt.Sscanf(s, "%d", &cfg.ExtWakeupExtra)
		return cfg
	}
	if err := sweep(w, r, true, uarch.BraidConfig(8), series, mk); err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"The paper argues busy-bit synchronization is easy because only ~2 external values appear per cycle; the small spread here confirms external wakeup latency is a second-order effect.")
	return r, nil
}

// AblCluster evaluates §5.2's clustering: BEU groups with slow
// inter-cluster communication.
func AblCluster(w *Workloads) (*Result, error) {
	r := newResult("abl-cluster", "braid IPC with clustered BEUs, normalized to unclustered")
	type cc struct {
		name     string
		clusters int
		delay    int
	}
	cfgs := []cc{{"2cl/+1", 2, 1}, {"2cl/+4", 2, 4}, {"4cl/+1", 4, 1}, {"4cl/+4", 4, 4}}
	series := make([]string, len(cfgs))
	for i, c := range cfgs {
		series[i] = c.name
	}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		for _, c := range cfgs {
			if c.name == s {
				cfg.Clusters, cfg.InterClusterDelay = c.clusters, c.delay
			}
		}
		return cfg
	}
	if err := sweep(w, r, true, uarch.BraidConfig(8), series, mk); err != nil {
		return nil, err
	}
	r.Notes = append(r.Notes,
		"Braids communicate few external values, so even a 4-cycle inter-cluster penalty costs little — supporting the paper's claim that clustering composes with the braid microarchitecture.")
	return r, nil
}

// AblWindowOoO gives each BEU an out-of-order window over its whole FIFO,
// the design the paper considered and rejected (§5.1).
func AblWindowOoO(w *Workloads) (*Result, error) {
	r := newResult("abl-window", "braid IPC with a full out-of-order BEU window, normalized to window 2")
	series := []string{"window=fifo"}
	mk := func(string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		cfg.BEUWindow = cfg.BEUFIFO
		return cfg
	}
	if err := sweep(w, r, true, uarch.BraidConfig(8), series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("an out-of-order BEU scheduler buys almost nothing", 1.0, r.Average("window=fifo", "all"))
	return r, nil
}

// AblInternal recompiles every benchmark with smaller internal register
// files and reports both performance and the pressure splits induced.
func AblInternal(w *Workloads) (*Result, error) {
	r := newResult("abl-internal", "braid IPC vs internal registers at compile time, normalized to 8")
	err := w.EachBench(func(b *Bench) (func(), error) {
		base, err := w.IPC(b, true, uarch.BraidConfig(8))
		if err != nil {
			return nil, err
		}
		type point struct {
			ipc    float64
			splits int
		}
		pointsByN := map[int]point{}
		for _, n := range []int{4, 2} {
			res, err := braid.Compile(b.Orig, braid.Options{MaxInternal: n})
			if err != nil {
				return nil, err
			}
			st, err := w.Simulate(res.Prog, uarch.BraidConfig(8))
			if err != nil {
				return nil, err
			}
			pointsByN[n] = point{st.IPC(), res.PressureSplits}
		}
		return func() {
			for _, n := range []int{4, 2} {
				r.Set(b.Name, b.FP, fmt.Sprintf("%d", n), pointsByN[n].ipc/base)
				r.Set(b.Name, b.FP, fmt.Sprintf("splits@%d", n), float64(pointsByN[n].splits))
			}
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.sortSeries([]string{"4", "2", "splits@4", "splits@2"})
	r.AddClaim("4 internal registers already near 8", 1.0, r.Average("4", "all"))
	return r, nil
}

// AblAlias strips every alias class before compiling and simulating: the
// braid compiler must split more braids to preserve memory order, and the
// load-store queue loses its static disambiguation.
func AblAlias(w *Workloads) (*Result, error) {
	r := newResult("abl-alias", "IPC without compiler alias information, normalized to with")
	err := w.EachBench(func(b *Bench) (func(), error) {
		stripped := b.Orig.Clone()
		for i := range stripped.Instrs {
			stripped.Instrs[i].AliasClass = 0
		}
		res, err := braid.Compile(stripped, braid.Options{})
		if err != nil {
			return nil, err
		}

		braidBase, err := w.IPC(b, true, uarch.BraidConfig(8))
		if err != nil {
			return nil, err
		}
		st, err := w.Simulate(res.Prog, uarch.BraidConfig(8))
		if err != nil {
			return nil, err
		}
		braidRel := st.IPC() / braidBase

		oooBase, err := w.IPC(b, false, uarch.OutOfOrderConfig(8))
		if err != nil {
			return nil, err
		}
		st, err = w.Simulate(stripped, uarch.OutOfOrderConfig(8))
		if err != nil {
			return nil, err
		}
		oooRel := st.IPC() / oooBase
		return func() {
			r.Set(b.Name, b.FP, "braid", braidRel)
			r.Set(b.Name, b.FP, "mem-splits", float64(res.MemSplits))
			r.Set(b.Name, b.FP, "o-o-o", oooRel)
		}, nil
	})
	if err != nil {
		return nil, err
	}
	r.sortSeries([]string{"braid", "o-o-o", "mem-splits"})
	r.Notes = append(r.Notes,
		"Loads must then wait for every older store's address before issuing. The generated benchmarks emit braids contiguously, so compile-time memory splits stay rare; the cost shows up in the load-store queue instead.")
	return r, nil
}

// AblException sweeps injected exception rates through §3.4's
// drain-restore-serialize mechanism; the paper chose simplicity over speed
// because exceptions are rare, and the curve quantifies exactly how rare
// they need to be.
func AblException(w *Workloads) (*Result, error) {
	r := newResult("abl-exception", "braid IPC vs exceptions per N instructions, normalized to none")
	series := []string{"1/5000", "1/1000", "1/250"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		switch s {
		case "1/5000":
			cfg.ExceptionEvery = 5000
		case "1/1000":
			cfg.ExceptionEvery = 1000
		case "1/250":
			cfg.ExceptionEvery = 250
		}
		cfg.ExceptionHandler = 64
		return cfg
	}
	if err := sweep(w, r, true, uarch.BraidConfig(8), series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("one exception per 5000 instructions is nearly free", 1.0, r.Average("1/5000", "all"))
	r.Notes = append(r.Notes,
		"Each exception drains the machine, restores the checkpoint, and runs a 64-instruction handler window through a single BEU (§3.4).")
	return r, nil
}
