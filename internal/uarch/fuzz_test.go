package uarch

import (
	"testing"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/workload"
)

// TestRandomProgramsOnAllCores drives adversarial random programs through
// every execution core. The timing model must retire exactly the dynamic
// instruction stream the architectural interpreter executes — no more, no
// fewer, and without deadlocking — for both original and braided binaries.
func TestRandomProgramsOnAllCores(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(100); seed < int64(100+n); seed++ {
		p := workload.RandomProgram(seed)
		fs, err := interp.RunProgram(p, 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := braid.Compile(p, braid.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cases := []struct {
			name string
			prog bool // braided?
			cfg  Config
		}{
			{"inorder", false, InOrderConfig(8)},
			{"depsteer", false, DepSteerConfig(8)},
			{"ooo", false, OutOfOrderConfig(8)},
			{"ooo4", false, OutOfOrderConfig(4)},
			{"braid", true, BraidConfig(8)},
			{"braid4", true, BraidConfig(4)},
		}
		for _, c := range cases {
			prog := p
			if c.prog {
				prog = res.Prog
			}
			cfg := c.cfg
			cfg.MaxCycles = 3_000_000
			cfg.Paranoid = true
			st, err := Simulate(prog, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.name, err)
			}
			if st.Retired != fs.Steps {
				t.Fatalf("seed %d %s: retired %d, interpreter ran %d", seed, c.name, st.Retired, fs.Steps)
			}
		}
	}
}

// TestRandomProgramsUnderTinyResources squeezes the same corpus through
// deliberately starved machines: 4-entry register files, one write port, a
// single BEU, a one-entry window. Nothing may deadlock, and retirement must
// stay exact.
func TestRandomProgramsUnderTinyResources(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	for seed := int64(300); seed < int64(300+n); seed++ {
		p := workload.RandomProgram(seed)
		fs, err := interp.RunProgram(p, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := braid.Compile(p, braid.Options{})
		if err != nil {
			t.Fatal(err)
		}

		tiny := OutOfOrderConfig(4)
		tiny.RFEntries = 4
		tiny.RFWritePorts = 1
		tiny.RFReadPorts = 2
		tiny.MaxCycles = 5_000_000
		tiny.Paranoid = true
		st, err := Simulate(p, tiny)
		if err != nil {
			t.Fatalf("seed %d starved ooo: %v", seed, err)
		}
		if st.Retired != fs.Steps {
			t.Fatalf("seed %d starved ooo: retired %d want %d", seed, st.Retired, fs.Steps)
		}

		bt := BraidConfig(4)
		bt.BEUs = 1
		bt.BEUWindow = 1
		bt.BEUFUs = 1
		bt.TotalFUs = 1
		bt.RFEntries = 4
		bt.MaxCycles = 5_000_000
		bt.Paranoid = true
		st, err = Simulate(res.Prog, bt)
		if err != nil {
			t.Fatalf("seed %d starved braid: %v", seed, err)
		}
		if st.Retired != fs.Steps {
			t.Fatalf("seed %d starved braid: retired %d want %d", seed, st.Retired, fs.Steps)
		}
	}
}
