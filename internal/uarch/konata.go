package uarch

import (
	"fmt"
	"io"
)

// SetKonata attaches a Kanata-format pipeline log (the format read by the
// Konata pipeline viewer): every retired instruction emits its fetch,
// dispatch, issue, execute, writeback and commit stages, up to max
// instructions (unlimited when max <= 0). Call before Run. The stages are
// written at retirement using absolute cycle positioning, which Kanata
// accepts.
//
// Write failures are not dropped: the first error stops further log output
// and is surfaced by Run/RunChecked once the simulation finishes.
func (m *Machine) SetKonata(w io.Writer, max int) {
	m.konata = w
	m.konataMax = max
	_, err := fmt.Fprintf(w, "Kanata\t0004\n")
	m.noteWriteErr("konata", err)
}

func (m *Machine) konataRetire(d *dyn, t uint64) {
	if m.konata == nil || m.writeErr != nil || (m.konataMax > 0 && m.konataCount >= m.konataMax) {
		return
	}
	id := m.konataCount
	m.konataCount++
	w := m.konata
	emit := func(format string, args ...any) {
		if m.writeErr != nil {
			return
		}
		_, err := fmt.Fprintf(w, format, args...)
		m.noteWriteErr("konata", err)
	}
	emit("C=\t%d\n", d.fetchCycle)
	emit("I\t%d\t%d\t0\n", id, d.seq)
	label := d.in.String()
	if d.beu >= 0 {
		label = fmt.Sprintf("[beu %d] %s", d.beu, label)
	}
	emit("L\t%d\t0\t%s\n", id, label)
	stage := func(name string, from, to uint64) {
		if to < from {
			to = from
		}
		emit("C=\t%d\nS\t%d\t0\t%s\n", from, id, name)
		emit("C=\t%d\nE\t%d\t0\t%s\n", to, id, name)
	}
	stage("F", d.fetchCycle, d.dispatchCycle)
	stage("Ds", d.dispatchCycle, d.issueCycle)
	stage("X", d.issueCycle, d.execDone)
	stage("Wb", d.execDone, d.completeCycle)
	stage("Cm", d.completeCycle, t)
	emit("C=\t%d\nR\t%d\t%d\t0\n", t, id, id)
}
