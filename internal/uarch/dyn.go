package uarch

import "braid/internal/isa"

// source is one register-carried dependence of a dynamic instruction.
type source struct {
	producer *dyn // nil: value available from architectural state
	internal bool // satisfied from a BEU's internal register file
}

// dyn is one dynamic instruction flowing through the timing model. Its
// functional effects (branch outcome, memory address) were computed by the
// front end at fetch; the timing fields are filled in as it advances.
// Records are recycled through the machine's arena once retired and
// unreferenced, so the steady-state hot loop performs no heap allocation.
type dyn struct {
	seq  uint64
	idx  int // static instruction index
	in   *isa.Instruction
	addr uint64 // memory address (loads/stores)

	isLoad, isStore, isBranch bool
	taken                     bool
	mispredicted              bool

	braidStart bool
	braidID    uint64 // braid core: which braid this instruction belongs to
	beu        int    // braid core: owning BEU
	sched      int    // out-of-order: scheduler; dep-steer: FIFO

	srcs    [3]source
	nsrcs   int
	extSrcs int32 // external sources among srcs (rename bandwidth), fixed at fetch

	hasExtDest bool // writes the external register file
	hasIntDest bool // writes a BEU-internal register

	// Opcode metadata cached at fetch so the issue loop never re-derives
	// it from the static instruction.
	exLat      uint64 // functional-unit latency (non-memory operations)
	memBytes   uint64 // access width in bytes (loads/stores)
	aliasClass uint32 // compiler alias class (0: may alias anything)

	fetchCycle    uint64
	dispatchReady uint64
	dispatchCycle uint64
	dispatched    bool

	issued     bool
	issueCycle uint64
	execDone   uint64 // functional-unit result ready
	wbSlot     uint64 // completion-calendar slot (max(execDone, issue+1))

	// wakeLB caches srcsReady's failure bound: sources cannot all be ready
	// before this cycle, so issue loops skip the full readiness check
	// until then. Sources blocked on an *event* (producer not yet issued
	// or not yet written back) park at neverWakes; the producer lowers its
	// consumers' bounds when the event happens (tryIssue, writebackOne).
	wakeLB uint64

	// consumers lists the instructions that name this one as a producer,
	// for the wakeLB lowering above. Entries may have already issued or
	// even been recycled; lowering a wake bound is always safe, so the
	// list is append-only and reset (capacity kept) on arena reuse.
	consumers []*dyn

	completed     bool
	completeCycle uint64 // external value written back (visible)
	bypassed      bool   // granted a bypass-network slot at writeback

	retired bool

	// Early-release bookkeeping for the external register file entry
	// (dead-value information, DESIGN.md §1): the entry frees when the
	// value is written back, every consumer has issued, and the next
	// writer of the register has been fetched.
	pendingReads int
	closed       bool // next writer of the register has been fetched
	entryFreed   bool

	// refs counts live pointers to this record from outside the pipeline
	// structures: one per not-yet-issued consumer that names it as a
	// producer, plus one per front-end owner-table slot. A record is
	// recycled when it has retired and refs reaches zero, so no stale
	// pointer can ever observe a reused record.
	refs int32
}

// dynArenaChunk batches arena growth; after warm-up the free list recycles
// and the hot loop never allocates.
const dynArenaChunk = 256

// allocDyn hands out a recycled record from the free list, falling back to
// the current chunk. Recycled records are NOT zeroed wholesale: reset clears
// exactly the fields some reader consults before the pipeline writes them.
// Every other field is dead until overwritten — buildDyn assigns the identity
// and fetch-stage fields unconditionally, dispatch/issue/writeback assign
// their timestamps before anything reads them, and the memBytes/aliasClass
// vs. exLat split is only read behind the isLoad/isStore flags that select
// which of them buildDyn populated. The golden-stats test pins this contract.
func (m *Machine) allocDyn() *dyn {
	if n := len(m.freeDyns); n > 0 {
		d := m.freeDyns[n-1]
		m.freeDyns = m.freeDyns[:n-1]
		d.reset()
		return d
	}
	if len(m.dynChunk) == 0 {
		chunk := make([]dyn, dynArenaChunk)
		// Carve every record's initial consumer capacity from one backing
		// array (full slice expressions keep the segments from bleeding into
		// each other); append only allocates for high-fanout values, and the
		// grown capacity is then retained across recycles.
		backing := make([]*dyn, 4*dynArenaChunk)
		for i := range chunk {
			chunk[i].consumers = backing[4*i : 4*i : 4*i+4]
		}
		m.dynChunk = chunk
	}
	d := &m.dynChunk[0]
	m.dynChunk = m.dynChunk[1:]
	return d
}

// reset clears the fields whose zero value is load-bearing across recycles;
// see allocDyn. srcs entries need no clearing: issue nils every producer
// pointer (the arena invariant), and slots are re-assigned whole up to nsrcs.
func (d *dyn) reset() {
	d.mispredicted = false
	d.nsrcs = 0
	d.extSrcs = 0
	d.hasExtDest = false
	d.hasIntDest = false
	d.dispatched = false
	d.issued = false
	d.wakeLB = 0
	d.consumers = d.consumers[:0]
	d.completed = false
	d.bypassed = false
	d.retired = false
	d.pendingReads = 0
	d.closed = false
	d.entryFreed = false
}

// decRef drops one reference; the record returns to the arena once it has
// also retired (retire itself recycles records that are already unreferenced).
func (m *Machine) decRef(d *dyn) {
	d.refs--
	if d.refs == 0 && d.retired {
		m.freeDyns = append(m.freeDyns, d)
	}
}

// latencyClass returns the functional-unit latency for a class under cfg
// (memory handled separately); it seeds Machine.latTab.
func latencyClass(cfg *Config, c isa.Class) int {
	switch c {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassBranch:
		return cfg.LatIntALU
	case isa.ClassIntMul:
		return cfg.LatIntMul
	case isa.ClassIntDiv:
		return cfg.LatIntDiv
	case isa.ClassFPAdd:
		return cfg.LatFPAdd
	case isa.ClassFPMul:
		return cfg.LatFPMul
	case isa.ClassFPDiv:
		return cfg.LatFPDiv
	}
	return 1
}

// intReady reports whether an internal-file source from producer p can feed
// an issue at cycle t (internal writes forward directly inside the BEU).
func intReady(p *dyn, t uint64) bool {
	return p.issued && t >= p.execDone
}

// neverWakes marks an instruction whose readiness cannot change with the
// passage of time alone — it waits on another instruction issuing or writing
// back, both of which are separate fast-forward events.
const neverWakes = ^uint64(0)

// dynWake returns a lower bound on the earliest cycle after t at which d's
// time-gated source predicates could all pass, assuming no other machine
// state changes (the fast-forward invariant: during skipped cycles nothing
// issues, writes back, retires, dispatches, or fetches). Structural limits
// (ports, functional units) are irrelevant here: on an idle cycle every
// per-cycle resource counter is zero, so a source-ready instruction issues.
func (m *Machine) dynWake(d *dyn, t uint64) uint64 {
	wake := t + 1
	for i := 0; i < d.nsrcs; i++ {
		s := &d.srcs[i]
		p := s.producer
		if s.internal {
			if !p.issued {
				return neverWakes // wakes via its producer's issue
			}
			if p.execDone > wake {
				wake = p.execDone
			}
			continue
		}
		if p == nil || p.retired {
			continue // architectural state: always ready
		}
		if !p.completed {
			return neverWakes // wakes via the producer's writeback
		}
		if m.crossCluster(p, d) {
			if c := p.completeCycle + uint64(m.cfg.InterClusterDelay); c > wake {
				wake = c
			}
			continue
		}
		if p.bypassed && t+1 <= p.completeCycle+uint64(m.cfg.BypassLevels) {
			continue // catchable on the bypass network right away
		}
		if c := p.completeCycle + uint64(m.cfg.ExtWakeupExtra); c > wake {
			wake = c
		}
	}
	if d.isLoad && wake <= t+1 {
		// Source-ready load: it still cannot issue while an older store
		// with an unknown address may alias it, and that store issuing is
		// itself a fast-forward event.
		for i := 0; i < m.stores.len(); i++ {
			s := m.stores.at(i)
			if s.seq >= d.seq {
				break
			}
			if !s.issued && mayAlias(d, s) {
				return neverWakes
			}
		}
	}
	return wake
}
