// Command braidbench regenerates every table and figure of the paper's
// evaluation. With no flags it runs all experiments and prints text tables;
// -exp selects one experiment, -md emits markdown (used to build
// EXPERIMENTS.md), and -dyn sets the per-benchmark dynamic instruction
// budget.
//
// The runner is fault tolerant: a simulator panic or cycle-budget blowout on
// one design point is contained (reported to stderr, with a crash artifact
// under -crashdir), and the sweep continues. -checkpoint appends every
// completed simulation to a JSONL file; after Ctrl-C or a crash, rerunning
// with -resume replays the finished points and produces bit-identical output
// without re-simulating them.
//
// -remote host1,host2 runs the simulations on a fleet of braidd backends
// instead of in-process, routing each design point by its content key on a
// consistent-hash ring with retry and failover; output, checkpoints, and
// -resume behave identically to local runs. -hedge duplicates straggling
// requests onto a second backend, and -remote-verify N re-simulates ~1 in N
// points locally and requires the remote stats to match byte for byte.
// Per-backend circuit breakers skip tripped backends automatically; -probe
// adds a background health prober that ejects dead backends and reintegrates
// them when they recover, and -fallback local degrades to in-process
// simulation when the whole fleet is unavailable, keeping output identical.
//
// Usage:
//
//	braidbench [-exp id] [-dyn N] [-j N] [-md] [-list]
//	braidbench -checkpoint sweep.jsonl            # interruptible sweep
//	braidbench -checkpoint sweep.jsonl -resume    # pick up where it stopped
//	braidbench -exp fig13 -remote 127.0.0.1:8091,127.0.0.1:8092 -hedge
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"syscall"
	"time"

	"braid/internal/experiments"
	"braid/internal/remote"
	"braid/internal/uarch"
)

func main() {
	// Batch tool: trade heap headroom for fewer GC cycles. The simulator's
	// steady state is allocation-free, so most garbage is suite-preparation
	// churn; collecting it lazily shaves wall-clock without touching output.
	debug.SetGCPercent(400)

	var (
		expID      = flag.String("exp", "", "run a single experiment (see -list)")
		dyn        = flag.Uint64("dyn", 30000, "dynamic instructions per benchmark")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (0: one per processor)")
		md         = flag.Bool("md", false, "emit markdown instead of text tables")
		csv        = flag.Bool("csv", false, "emit comma-separated values instead of text tables")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		ablations  = flag.Bool("ablations", false, "run the ablation studies instead of the paper artifacts")
		complexity = flag.Bool("complexity", false, "print the §5.1 structure-complexity comparison and exit")
		throughput = flag.Bool("throughput", false, "append a JSON simulator-throughput summary to stdout")
		checkpoint = flag.String("checkpoint", "", "append completed simulations to this JSONL file")
		resume     = flag.Bool("resume", false, "reload finished points from -checkpoint before running")
		crashDir   = flag.String("crashdir", "crashes", "directory for simulator-fault repro artifacts")
		simTimeout = flag.Duration("sim-timeout", 0, "wall-clock budget per simulation (0: none)")
		remoteList = flag.String("remote", "", "comma-separated braidd base URLs; simulations run on these backends")
		hedge      = flag.Bool("hedge", false, "hedge slow remote requests onto a second backend (needs -remote)")
		remoteVer  = flag.Int("remote-verify", 0, "cross-check sampled remote results against local simulation, ~1 in N points (needs -remote; 0: off)")
		fallback   = flag.String("fallback", "fail", "when every backend attempt fails: 'local' simulates in-process, 'fail' contains the point (needs -remote)")
		probe      = flag.Duration("probe", 0, "background health-probe interval; ejects dead backends and reintegrates recovered ones (needs -remote; 0: off)")
		sample     = flag.String("sample", "", "interval sampling geometry period:detail[:warmup]; empty runs exact")
		accuracy   = flag.String("sampling-accuracy", "", "write an exact-vs-sampled suite accuracy report (JSON) to this file and exit")
	)
	flag.Parse()

	sampling, err := uarch.ParseSampling(*sample)
	if err != nil {
		fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
		os.Exit(1)
	}

	if *complexity {
		fmt.Print(uarch.ComplexityReport(8))
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []experiments.Experiment
	switch {
	case *expID != "":
		e, ok := experiments.ByID(*expID)
		if !ok {
			e, ok = experiments.AblationByID(*expID)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "braidbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	case *ablations:
		todo = experiments.Ablations()
	default:
		todo = experiments.All()
	}

	// Ctrl-C cancels the whole suite: in-flight simulations notice within a
	// few thousand cycles, queued ones never start, and -resume restarts
	// from the checkpoint.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	fmt.Fprintf(os.Stderr, "braidbench: preparing 26-benchmark suite (~%d dynamic instructions each, %d workers)\n",
		*dyn, *jobs)
	w, err := experiments.LoadSuiteCtx(ctx, *dyn, *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
		os.Exit(1)
	}
	w.SetContext(ctx)
	w.SetTimeout(*simTimeout)
	w.SetCrashDir(*crashDir)
	if sampling.Enabled() {
		w.SetSampling(sampling)
		fmt.Fprintf(os.Stderr, "braidbench: interval sampling %s (IPC values are estimates)\n", sampling)
	}

	if *accuracy != "" {
		sp := sampling
		if !sp.Enabled() {
			// The harness default: geometry tuned so million-instruction
			// benchmarks land under 2% error at >5x suite speedup.
			sp = uarch.Sampling{Period: 100_000, Detail: 5_000, Warmup: 5_000}
		}
		if err := writeAccuracyReport(ctx, w, sp, *accuracy); err != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
			os.Exit(1)
		}
		return
	}
	var pool *remote.Pool
	if *remoteList != "" {
		fb, perr := remote.ParseFallback(*fallback)
		if perr != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %v\n", perr)
			os.Exit(1)
		}
		pool, perr = remote.NewPool(remote.Options{
			Backends:    strings.Split(*remoteList, ","),
			Hedge:       *hedge,
			VerifyEvery: *remoteVer,
			TimeoutMS:   simTimeout.Milliseconds(),
			Fallback:    fb,
		})
		if perr == nil {
			var down []string
			if down, perr = pool.Ping(ctx); len(down) > 0 {
				fmt.Fprintf(os.Stderr, "braidbench: unreachable backends (will fail over): %s\n", strings.Join(down, ","))
			}
		}
		if perr != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %v\n", perr)
			os.Exit(1)
		}
		if *probe > 0 {
			stop := pool.StartProber(ctx, *probe)
			defer stop()
		}
		w.SetRunner(pool)
		fmt.Fprintf(os.Stderr, "braidbench: remote execution over %d backend(s)\n", len(pool.Backends()))
	}
	if *checkpoint != "" {
		restored, err := w.OpenCheckpoint(*checkpoint, *resume)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
			os.Exit(1)
		}
		defer w.CloseCheckpoint()
		if *resume {
			fmt.Fprintf(os.Stderr, "braidbench: resumed %d finished simulations from %s\n", restored, *checkpoint)
		}
	}
	fmt.Fprintf(os.Stderr, "braidbench: suite ready in %v\n", time.Since(start).Round(time.Millisecond))

	exit := 0
	for _, e := range todo {
		t0 := time.Now()
		res, err := e.Run(w)
		switch {
		case errors.Is(err, uarch.ErrCanceled):
			fmt.Fprintf(os.Stderr, "braidbench: interrupted during %s", e.ID)
			if *checkpoint != "" {
				fmt.Fprintf(os.Stderr, "; rerun with -checkpoint %s -resume to continue", *checkpoint)
			}
			fmt.Fprintln(os.Stderr)
			w.CloseCheckpoint()
			os.Exit(130)
		case err != nil:
			// A non-contained failure kills this experiment but not the
			// rest of the run: later experiments may still be computable.
			fmt.Fprintf(os.Stderr, "braidbench: %s failed: %v\n", e.ID, err)
			exit = 1
			continue
		}
		switch {
		case *md:
			fmt.Print(res.Markdown())
		case *csv:
			fmt.Printf("# %s: %s\n%s\n", res.ID, res.Title, res.CSV())
		default:
			fmt.Println(res.String())
		}
		fmt.Fprintf(os.Stderr, "braidbench: %s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	if failures := w.Failures(); len(failures) > 0 {
		fmt.Fprintf(os.Stderr, "braidbench: %d design points failed and were skipped:\n", len(failures))
		for _, f := range failures {
			fmt.Fprintf(os.Stderr, "braidbench:   %s\n", f)
		}
	}
	fmt.Fprintf(os.Stderr, "braidbench: %d experiments, %d simulations, %v total\n",
		len(todo), w.SimRuns(), time.Since(start).Round(time.Millisecond))
	if pool != nil {
		fmt.Fprintf(os.Stderr, "braidbench: remote pool: %s\n", pool)
	}

	if *throughput {
		secs := time.Since(start).Seconds()
		summary := struct {
			Simulations uint64 `json:"simulations"`
			// Instructions is everything retired; Detailed ran on the
			// cycle-level engine, FFwd was functionally fast-forwarded by
			// sampled runs. MIPS rates the detailed engine only (honest
			// under sampling); EffectiveMIPS rates total retirement — the
			// sweep-level throughput sampling buys. Exact runs report the
			// two equal.
			Instructions  uint64  `json:"instructions"`
			Detailed      uint64  `json:"detailed_instructions"`
			FFwd          uint64  `json:"fastforward_instructions"`
			Cycles        uint64  `json:"cycles"`
			Seconds       float64 `json:"seconds"`
			MIPS          float64 `json:"mips"`
			EffectiveMIPS float64 `json:"effective_mips"`
			Jobs          int     `json:"jobs"`
		}{
			Simulations:   w.SimRuns(),
			Instructions:  w.SimInstrs(),
			Detailed:      w.SimDetailedInstrs(),
			FFwd:          w.SimFFwdInstrs(),
			Cycles:        w.SimCycles(),
			Seconds:       secs,
			MIPS:          float64(w.SimDetailedInstrs()) / secs / 1e6,
			EffectiveMIPS: float64(w.SimInstrs()) / secs / 1e6,
			Jobs:          *jobs,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
			exit = 1
		}
	}
	if exit != 0 {
		w.CloseCheckpoint() // os.Exit skips the defer
		os.Exit(exit)
	}
}

// writeAccuracyReport sweeps the suite exact-vs-sampled for the two
// paradigms most sweeps simulate — the 8-wide out-of-order baseline on the
// original binaries and the 8-wide braid machine on the braided ones — and
// writes both reports as a JSON array (BENCH_sampling_accuracy.json).
func writeAccuracyReport(ctx context.Context, w *experiments.Workloads, sp uarch.Sampling, path string) error {
	fmt.Fprintf(os.Stderr, "braidbench: accuracy sweep, sampling %s (sequential exact+sampled per benchmark)\n", sp)
	var reports []*experiments.AccuracyReport
	for _, c := range []struct {
		cfg     uarch.Config
		braided bool
	}{
		{uarch.OutOfOrderConfig(8), false},
		{uarch.BraidConfig(8), true},
	} {
		t0 := time.Now()
		rep, err := experiments.MeasureAccuracy(ctx, w, c.cfg, c.braided, sp)
		if err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "braidbench: %s braided=%v: mean |err| %.2f%%, max %.2f%%, suite speedup %.1fx (%v)\n",
			rep.Core, rep.Braided, 100*rep.MeanAbsRelErr, 100*rep.MaxAbsRelErr, rep.SuiteSpeedup,
			time.Since(t0).Round(time.Millisecond))
		reports = append(reports, rep)
	}
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(reports)
}
