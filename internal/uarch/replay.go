package uarch

import (
	"sync"

	"braid/internal/interp"
	"braid/internal/isa"
)

// traceEntry is one dynamic instruction of a program's execution: everything
// fetch needs that previously came from stepping the functional interpreter.
// It is deliberately pointer-free (the static instruction is named by index)
// so cached traces cost the garbage collector nothing to scan.
type traceEntry struct {
	idx   int32
	taken bool
	addr  uint64
}

// traceCap bounds pre-execution so a non-halting program cannot hang trace
// construction; such a program falls back to the live interpreter and runs
// into the engine's MaxCycles budget as before.
const traceCap = 1 << 26

// Source-operand kinds for staticMeta (where buildDyn finds each producer).
const (
	srcNone = iota // no register source in this slot
	srcInt         // BEU-internal file, owner table index srcIdx
	srcExt         // external file, architectural register srcIdx
)

// staticMeta is everything buildDyn derives from a static instruction,
// precomputed once per program so the per-fetch work is a handful of field
// copies and owner-table lookups instead of opcode-table dereferences.
type staticMeta struct {
	isLoad, isStore, isBranch bool
	isCondBranch, isHalt      bool
	braidStart                bool
	hasExtDest, hasIntDest    bool

	class      uint8 // functional-unit class (indexes Machine.latTab)
	memBytes   uint8
	aliasClass uint8

	s1Kind, s2Kind, s3Kind uint8 // third slot: conditional-move old dest
	s1Idx, s2Idx, s3Idx    uint8
	extDest, intDest       uint8 // valid when hasExtDest / hasIntDest
}

var replayCache struct {
	sync.Mutex
	m    map[*isa.Program][]traceEntry
	meta map[*isa.Program][]staticMeta
}

// programTrace returns the program's dynamic instruction stream, computing
// and caching it on first use. The simulator is functionally directed, so the
// stream depends only on the program — every Machine simulating it under any
// configuration replays one shared trace instead of re-executing the
// interpreter. Returns nil (cached) if the program does not halt within
// traceCap steps.
func programTrace(p *isa.Program) []traceEntry {
	replayCache.Lock()
	defer replayCache.Unlock()
	if tr, ok := replayCache.m[p]; ok {
		return tr
	}
	if replayCache.m == nil {
		replayCache.m = make(map[*isa.Program][]traceEntry)
	}
	im := interp.New(p)
	var tr []traceEntry
	var info interp.StepInfo
	for {
		if len(tr) >= traceCap {
			tr = nil // non-halting: poison the cache entry
			break
		}
		if err := im.Step(&info); err != nil {
			break // end of stream, exactly where live fetch stops
		}
		tr = append(tr, traceEntry{
			idx:   int32(info.Index),
			taken: info.Taken,
			addr:  info.Addr,
		})
	}
	replayCache.m[p] = tr
	return tr
}

// programMeta returns the program's precomputed static metadata, computing
// and caching it on first use (shared by every Machine simulating p).
func programMeta(p *isa.Program) []staticMeta {
	replayCache.Lock()
	defer replayCache.Unlock()
	if sm, ok := replayCache.meta[p]; ok {
		return sm
	}
	if replayCache.meta == nil {
		replayCache.meta = make(map[*isa.Program][]staticMeta)
	}
	meta := make([]staticMeta, len(p.Instrs))
	for i := range p.Instrs {
		in := &p.Instrs[i]
		info := in.Info()
		sm := &meta[i]
		sm.isLoad = info.Class == isa.ClassLoad
		sm.isStore = info.Class == isa.ClassStore
		sm.isBranch = in.IsBranch()
		sm.isCondBranch = in.IsCondBranch()
		sm.isHalt = in.IsHalt()
		sm.braidStart = in.Start
		sm.class = uint8(info.Class)
		sm.memBytes = uint8(info.MemBytes)
		sm.aliasClass = in.AliasClass
		if info.NumSrcs >= 1 {
			if in.T1 {
				sm.s1Kind, sm.s1Idx = srcInt, in.I1
			} else if in.Src1 != isa.RegNone && in.Src1 != isa.RegZero {
				sm.s1Kind, sm.s1Idx = srcExt, uint8(in.Src1)
			}
		}
		if info.NumSrcs >= 2 && !in.HasImm {
			if in.T2 {
				sm.s2Kind, sm.s2Idx = srcInt, in.I2
			} else if in.Src2 != isa.RegNone && in.Src2 != isa.RegZero {
				sm.s2Kind, sm.s2Idx = srcExt, uint8(in.Src2)
			}
		}
		if info.ReadsDest && in.Dest != isa.RegNone && in.Dest != isa.RegZero {
			// Conditional moves read their old destination from the
			// external file (the braid ISA has no T bit for it).
			sm.s3Kind, sm.s3Idx = srcExt, uint8(in.Dest)
		}
		if in.WritesReg() && in.Dest != isa.RegZero && (in.EDest || !in.IDest) {
			sm.hasExtDest = true
			sm.extDest = uint8(in.Dest)
		}
		if in.IDest {
			sm.hasIntDest = true
			sm.intDest = in.IDestIdx
		}
	}
	replayCache.meta[p] = meta
	return meta
}
