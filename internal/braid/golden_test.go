package braid

import (
	"strings"
	"testing"

	"braid/internal/asm"
	"braid/internal/workload"
)

// TestFig2Golden freezes the braided form of the paper's Figure 2 kernel.
// The structure mirrors the paper's own partition: one braid of address
// arithmetic, loads, and the mask/logic chain ending in the conditional
// move and branch; one braid incrementing the induction variable and
// computing the loop-exit compare; and the single-instruction lda braid —
// plus the split that our hazard-ordering pass (standing in for the paper's
// external register re-allocation) makes between the loads and the logic
// chain, because the lda rewrites t4 (r4) which the address adds still read.
//
// If a compiler change alters this output, inspect the diff: an improvement
// should update the golden text deliberately.
const fig2Golden = `.name fig2
.data 2048
	ldimm r0, #65536	!start
	ldimm r1, #65792	!start
	ldimm r8, #66048	!start
	ldimm r4, #0	!start
	ldimm r5, #0	!start
	ldimm r9, #32	!start
	ldimm r6, #0	!start
	ldimm r14, #0	!start
	br L0	!start
L0:
	add i0, r1, r4	!start
	add i1, r0, r4
	add i2, r8, r4
	ldl r13, 0(i0)	!ac=1
	ldl r10, 0(i1)	!ac=1
	ldl r11, 0(i2)	!ac=1
	add i0/r5, r5, #1	!start
	cmpeq r7, r9, i0
	lda r4, 4(r4)	!start
	andnot i0, r13, r10	!start
	sextl i1, i0
	and i0, i1, r11
	zapnot i2, i0, #15
	cmovne r6, i1, #1
	bne i2, L1
	beq r7, L0	!start
	br L2	!start
L1:
	ldimm r14, #1	!start
	ldimm r6, #1	!start
L2:
	stq r6, 1024(r0)	!ac=2	!start
	stq r14, 1032(r0)	!ac=2	!start
	stq r5, 1040(r0)	!ac=2	!start
	halt	!start
`

func TestFig2Golden(t *testing.T) {
	k, ok := workload.KernelByName("fig2")
	if !ok {
		t.Fatal("fig2 kernel missing")
	}
	res, err := Compile(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := asm.Format(res.Prog)
	if got != fig2Golden {
		t.Errorf("braided fig2 changed:\n--- got ---\n%s\n--- want ---\n%s", got, fig2Golden)
	}
	// The paper's partition: the loop body holds the two multi-instruction
	// braids plus the single-instruction lda (our hazard split adds one).
	var body, singles int
	for _, b := range res.Braids {
		if b.Orig[0] >= 9 && b.Orig[0] <= 23 {
			body++
			if b.Single() {
				singles++
			}
		}
	}
	if body != 4 || singles != 1 {
		t.Errorf("loop body has %d braids (%d single), want 4 with 1 single", body, singles)
	}
}

func TestDotOutput(t *testing.T) {
	k, _ := workload.KernelByName("fig2")
	res, err := Compile(k, Options{})
	if err != nil {
		t.Fatal(err)
	}
	start, end, ok := res.BlockExtent(1)
	if !ok {
		t.Fatal("block 1 has no extent")
	}
	dot := res.Dot(start, end)
	for _, want := range []string{
		"digraph braids",
		"subgraph cluster_",
		"style=solid",  // internal communication
		"style=dashed", // external communication
		"lda r4",
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q", want)
		}
	}
	if _, _, ok := res.BlockExtent(9999); ok {
		t.Error("BlockExtent of absent block succeeded")
	}
}
