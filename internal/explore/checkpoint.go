package explore

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
)

// Meta pins the search parameters a checkpoint was taken under. Resume
// refuses a mismatch: silently continuing a search with different
// parameters would blend two different searches into one front.
type Meta struct {
	Lattice   int      `json:"lattice"` // latticeVersion the genomes index into
	Seed      int64    `json:"seed"`
	Pop       int      `json:"pop"`
	Budget    int      `json:"budget"`
	Workloads []string `json:"workloads"`
	Sampling  string   `json:"sampling,omitempty"` // uarch.Sampling.String(), "" exact
	DynTarget uint64   `json:"dyn_target"`         // suite calibration target
	Inject    int      `json:"inject,omitempty"`   // test-hook fault position
}

// ckptLine is one JSONL record: exactly one of the kinds. The meta line is
// first; each completed generation appends one gen line containing the
// post-selection population (order significant — tournament selection reads
// it positionally) and the evaluations that generation performed.
type ckptLine struct {
	Kind string `json:"kind"` // "meta" or "gen"

	Meta *Meta `json:"meta,omitempty"`

	Gen        int      `json:"gen,omitempty"`
	Evals      int      `json:"evals,omitempty"` // cumulative unique evaluations
	Population []Genome `json:"population,omitempty"`
	Fresh      []Eval   `json:"fresh,omitempty"` // evaluations this generation ran
}

// Checkpoint is the append-only JSONL persistence for a search. One write
// per completed generation keeps the torn-write window to a single line; a
// torn final line (SIGKILL mid-append) is detected and dropped on load, so
// resume restarts from the last complete generation.
type Checkpoint struct {
	f    *os.File
	meta Meta
	gens []ckptLine // complete generation records, ascending contiguous
}

// OpenCheckpoint opens path for a search with the given meta. With resume
// false the file is created or truncated and the meta line written; with
// resume true an existing file is loaded — its meta must equal meta — and
// subsequent generations append after the ones already recorded. Resuming a
// missing or empty file degrades to a fresh start.
func OpenCheckpoint(path string, meta Meta, resume bool) (*Checkpoint, error) {
	meta.Lattice = latticeVersion
	if resume {
		data, err := os.ReadFile(path)
		if err != nil && !os.IsNotExist(err) {
			return nil, err
		}
		if len(bytes.TrimSpace(data)) > 0 {
			return loadCheckpoint(path, data, meta)
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, err
	}
	ck := &Checkpoint{f: f, meta: meta}
	if err := ck.appendLine(ckptLine{Kind: "meta", Meta: &meta}); err != nil {
		f.Close()
		return nil, err
	}
	return ck, nil
}

func loadCheckpoint(path string, data []byte, want Meta) (*Checkpoint, error) {
	ck := &Checkpoint{}
	haveMeta := false
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	tail := bytes.TrimRight(data, " \t\r\n")
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var line ckptLine
		if err := json.Unmarshal(raw, &line); err != nil {
			if bytes.HasSuffix(tail, raw) {
				break // torn final line from an interrupted append
			}
			return nil, fmt.Errorf("explore: corrupt checkpoint %s: %w", path, err)
		}
		switch line.Kind {
		case "meta":
			if haveMeta || len(ck.gens) > 0 {
				return nil, fmt.Errorf("explore: checkpoint %s: duplicate or misplaced meta line", path)
			}
			if line.Meta == nil {
				return nil, fmt.Errorf("explore: checkpoint %s: empty meta line", path)
			}
			haveMeta = true
			m := *line.Meta
			ck.meta = m
			if !metaEqual(m, want) {
				return nil, fmt.Errorf("explore: checkpoint %s was taken with different parameters\n  have: %s\n  want: %s\n(delete the file or rerun with matching flags)",
					path, metaString(m), metaString(want))
			}
		case "gen":
			if line.Gen != len(ck.gens) {
				return nil, fmt.Errorf("explore: checkpoint %s: generation %d out of order (want %d)", path, line.Gen, len(ck.gens))
			}
			for _, g := range line.Population {
				if !g.valid() {
					return nil, fmt.Errorf("explore: checkpoint %s: generation %d holds a genome outside the lattice", path, line.Gen)
				}
			}
			for _, e := range line.Fresh {
				if !e.Genome.valid() {
					return nil, fmt.Errorf("explore: checkpoint %s: generation %d evaluated a genome outside the lattice", path, line.Gen)
				}
			}
			ck.gens = append(ck.gens, line)
		default:
			return nil, fmt.Errorf("explore: checkpoint %s: unknown record kind %q", path, line.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !haveMeta {
		return nil, fmt.Errorf("explore: checkpoint %s has no meta line", path)
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	ck.f = f
	return ck, nil
}

func metaEqual(a, b Meta) bool {
	if a.Lattice != b.Lattice || a.Seed != b.Seed || a.Pop != b.Pop ||
		a.Budget != b.Budget || a.Sampling != b.Sampling ||
		a.DynTarget != b.DynTarget || a.Inject != b.Inject ||
		len(a.Workloads) != len(b.Workloads) {
		return false
	}
	for i := range a.Workloads {
		if a.Workloads[i] != b.Workloads[i] {
			return false
		}
	}
	return true
}

func metaString(m Meta) string {
	return fmt.Sprintf("lattice=%d seed=%d pop=%d budget=%d workloads=%v sampling=%q dyn=%d inject=%d",
		m.Lattice, m.Seed, m.Pop, m.Budget, m.Workloads, m.Sampling, m.DynTarget, m.Inject)
}

// Generations reports how many complete generations the checkpoint holds.
func (ck *Checkpoint) Generations() int { return len(ck.gens) }

// appendGen records one completed generation: cumulative evaluation count,
// the post-selection population, and the evaluations performed. One write
// call, so a crash tears at most this line.
func (ck *Checkpoint) appendGen(gen, evals int, population []Genome, fresh []Eval) error {
	return ck.appendLine(ckptLine{Kind: "gen", Gen: gen, Evals: evals, Population: population, Fresh: fresh})
}

func (ck *Checkpoint) appendLine(line ckptLine) error {
	data, err := json.Marshal(&line)
	if err != nil {
		return err
	}
	if _, err := ck.f.Write(append(data, '\n')); err != nil {
		return err
	}
	return ck.f.Sync()
}

// Close releases the underlying file.
func (ck *Checkpoint) Close() error { return ck.f.Close() }

// restore seeds the searcher from a checkpoint's completed generations and
// returns the next generation index to run. No simulation happens here: the
// archive is rebuilt from recorded evaluations, so a resumed search only
// pays for generations the original never finished. (Points the memo cache
// would recompute identically anyway — both are deterministic — but resume
// must not depend on the simulator at all.)
func (s *searcher) restore(ck *Checkpoint) (int, error) {
	for _, gen := range ck.gens {
		for _, e := range gen.Fresh {
			s.archiveEval(e)
		}
		s.pop = append([]Genome(nil), gen.Population...)
		s.evals = gen.Evals
	}
	return len(ck.gens), nil
}
