package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"braid/internal/chaos"
	"braid/internal/experiments"
	"braid/internal/service"
	"braid/internal/uarch"
)

func TestRetryAfterDuration(t *testing.T) {
	now := time.Date(2026, 8, 7, 12, 0, 0, 0, time.UTC)
	cases := []struct {
		in   string
		want time.Duration
	}{
		{"", 0},
		{"3", 3 * time.Second},
		{" 120 ", 120 * time.Second},
		{"0", 0},
		{"-5", 0},
		{now.Add(10 * time.Second).Format(http.TimeFormat), 10 * time.Second},
		{now.Add(90 * time.Minute).Format(http.TimeFormat), 90 * time.Minute},
		{now.Add(-time.Hour).Format(http.TimeFormat), 0}, // a date in the past is no hint
		{now.Format(http.TimeFormat), 0},
		{"Mon, 07 Aug 2026 12:00:10 UTC", 0}, // not an RFC 9110 HTTP-date
		{"soon", 0},
	}
	for _, c := range cases {
		if got := retryAfterDuration(c.in, now); got != c.want {
			t.Errorf("retryAfterDuration(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestRetryHonorsHTTPDateRetryAfter is the end-to-end shape of the new
// Retry-After form: a backend shedding with an HTTP-date far in the future
// must still be retried promptly, because MaxBackoff caps the hint.
func TestRetryHonorsHTTPDateRetryAfter(t *testing.T) {
	n := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n++
		if n <= 2 {
			w.Header().Set("Retry-After", time.Now().Add(time.Hour).UTC().Format(http.TimeFormat))
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fakeSimHandler(t, w)
	}))
	defer ts.Close()
	pool, err := NewPool(Options{
		Backends:    []string{ts.URL},
		MaxAttempts: 4,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := pool.SimulateFull(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two dated 429s then success)", res.Attempts)
	}
	if d := time.Since(t0); d > 2*time.Second {
		t.Errorf("an hour-long HTTP-date hint stalled retries for %v; MaxBackoff must cap it", d)
	}
}

// fakeSimHandler answers a simulate with locally computed, correctly
// hashed stats for the dot kernel on the 8-wide out-of-order core.
func fakeSimHandler(t *testing.T, w http.ResponseWriter) {
	t.Helper()
	st, err := uarch.SimulateChecked(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := json.Marshal(st)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"stats":%s,"source":"run"}`, raw)
}

// TestIntegrityCheckCatchesCorruptedBody drives the pool through a chaos
// proxy that corrupts every second response body — one digit flipped inside
// the stats object, body length and JSON validity preserved, integrity
// header relayed verbatim. Without the SHA-256 check the pool would accept
// silently wrong Stats; with it, corruption classifies as a retryable
// transport error and every point converges to bit-identical results.
func TestIntegrityCheckCatchesCorruptedBody(t *testing.T) {
	backend := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer backend.Close()
	cp, err := chaos.New(backend.URL, chaos.EveryN(2, chaos.Fault{Kind: chaos.Corrupt}))
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(cp)
	defer proxy.Close()

	pool, err := NewPool(Options{
		Backends:    []string{proxy.URL},
		MaxAttempts: 6,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	prog := mustKernel(t, "dot")
	for i, width := range []int{2, 4, 8, 2, 4, 8} {
		cfg := uarch.OutOfOrderConfig(width)
		want, err := uarch.SimulateChecked(context.Background(), prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		wantRaw, _ := json.Marshal(want)
		res, err := pool.SimulateFull(context.Background(), prog, cfg)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !bytes.Equal(res.RawStats, wantRaw) {
			t.Fatalf("request %d: corrupted stats slipped through: %s != %s", i, res.RawStats, wantRaw)
		}
	}
	s := pool.Snapshot()
	if cp.Injected(chaos.Corrupt) == 0 {
		t.Fatal("the proxy never corrupted a body; the test proved nothing")
	}
	if s.IntegrityFailures == 0 {
		t.Error("corrupted bodies were never caught by the integrity check")
	}
	if s.IntegrityFailures != s.FailedAttempts {
		t.Errorf("integrity failures %d != failed attempts %d; corruption should be the only failure mode here",
			s.IntegrityFailures, s.FailedAttempts)
	}
}

// TestFallbackLocalBitIdentical points a pool at a dead fleet with
// -fallback=local semantics: every point must degrade to in-process
// simulation with bit-identical Stats, clean Failures() accounting, intact
// memoization, and checkpoint entries indistinguishable from a healthy
// fleet's.
func TestFallbackLocalBitIdentical(t *testing.T) {
	pool, err := NewPool(Options{
		Backends:         []string{"127.0.0.1:1"}, // nothing listens here
		MaxAttempts:      2,
		BaseBackoff:      time.Millisecond,
		MaxBackoff:       2 * time.Millisecond,
		Fallback:         FallbackLocal,
		BreakerThreshold: 2,
		BreakerCooldown:  time.Hour, // once tripped, short-circuit for the whole test
	})
	if err != nil {
		t.Fatal(err)
	}

	// Direct runner check: provenance and exact bytes.
	prog, cfg := mustKernel(t, "dot"), uarch.OutOfOrderConfig(8)
	want, err := uarch.SimulateChecked(context.Background(), prog, cfg)
	if err != nil {
		t.Fatal(err)
	}
	wantRaw, _ := json.Marshal(want)
	res, err := pool.SimulateFull(context.Background(), prog, cfg)
	if err != nil {
		t.Fatalf("fallback run: %v", err)
	}
	if res.Source != "local" || res.Backend != "" {
		t.Errorf("fallback provenance = %q/%q, want local/\"\"", res.Source, res.Backend)
	}
	if !bytes.Equal(res.RawStats, wantRaw) {
		t.Errorf("fallback stats not bit-identical: %s != %s", res.RawStats, wantRaw)
	}

	// Sweep check: memoization and checkpoints stay clean.
	w, err := experiments.LoadSuiteJobs(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	var points []experiments.Point
	for _, b := range w.Benches[:3] {
		points = append(points, experiments.Point{Bench: b, Cfg: uarch.OutOfOrderConfig(8)})
	}
	points = append(points, points...) // duplicates exercise the memo cache
	unique := len(points) / 2

	want2 := make(map[experiments.Point]float64, unique)
	for _, pt := range points[:unique] {
		st, err := uarch.SimulateChecked(context.Background(), pt.Bench.Orig, pt.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		want2[pt] = st.IPC()
	}

	ckpt := filepath.Join(t.TempDir(), "fallback.jsonl")
	w.SetRunner(pool)
	w.SetJobs(4)
	if _, err := w.OpenCheckpoint(ckpt, false); err != nil {
		t.Fatal(err)
	}
	got, err := w.IPCAll(points)
	if err != nil {
		t.Fatalf("fallback sweep: %v", err)
	}
	if err := w.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	for pt, wantIPC := range want2 {
		if got[pt] != wantIPC {
			t.Errorf("%s: fallback IPC %v != local %v", pt.Bench.Name, got[pt], wantIPC)
		}
	}
	if fails := w.Failures(); len(fails) > 0 {
		t.Errorf("failures under local fallback: %v", fails)
	}
	if runs := w.SimRuns(); runs != uint64(unique) {
		t.Errorf("sim runs = %d, want %d (memoization must absorb duplicates)", runs, unique)
	}
	if s := pool.Snapshot(); s.LocalFallbacks == 0 {
		t.Error("no local fallbacks recorded against a dead fleet")
	} else if s.ShortCircuits == 0 {
		t.Error("breakers never short-circuited the dead backend")
	}

	// The checkpoint written under fallback replays like any other: a fresh
	// suite resumes every point from the file without touching a runner.
	w2, err := experiments.LoadSuiteJobs(1000, 0)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := w2.OpenCheckpoint(ckpt, true)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.CloseCheckpoint()
	if restored != unique {
		t.Fatalf("restored %d checkpoint entries, want %d", restored, unique)
	}
	var points2 []experiments.Point
	for _, b := range w2.Benches[:3] {
		points2 = append(points2, experiments.Point{Bench: b, Cfg: uarch.OutOfOrderConfig(8)})
	}
	got2, err := w2.IPCAll(points2)
	if err != nil {
		t.Fatal(err)
	}
	for i, pt := range points2 {
		if got2[pt] != want2[points[i]] {
			t.Errorf("%s: resumed IPC %v != local %v", pt.Bench.Name, got2[pt], want2[points[i]])
		}
	}
	if runs := w2.SimRuns(); runs != 0 {
		t.Errorf("resume re-simulated %d points; the checkpoint should cover all of them", runs)
	}
}

// TestFallbackFailStaysTransient: the default policy surfaces Unavailable
// (transient, not memoized) exactly as before the fallback existed.
func TestFallbackFailStaysTransient(t *testing.T) {
	pool, err := NewPool(Options{
		Backends:    []string{"127.0.0.1:1"},
		MaxAttempts: 2,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.Simulate(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	if err == nil {
		t.Fatal("a dead fleet with fallback=fail must error")
	}
	if !experiments.Transient(err) {
		t.Errorf("unavailable fleet error must stay transient, got %v", err)
	}
}

// TestProberEjectsAndReintegrates runs the background prober against one
// healthy backend and one flapping backend: the flapper starts down (every
// connection reset), so the prober must eject it — force-opening its
// breaker and marking it unhealthy in the snapshot — and once the flapper
// heals, the canary must reinstate it automatically.
func TestProberEjectsAndReintegrates(t *testing.T) {
	healthy := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer healthy.Close()
	backend := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer backend.Close()
	flap := chaos.Flap(time.Hour, time.Hour) // phases pinned by Force below
	flap.Force(false)
	cp, err := chaos.New(backend.URL, flap.Schedule)
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(cp)
	defer proxy.Close()

	pool, err := NewPool(Options{Backends: []string{healthy.URL, proxy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := pool.StartProber(ctx, 25*time.Millisecond)
	defer stop()

	waitFor := func(desc string, cond func(Stats) bool) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if cond(pool.Snapshot()) {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s; snapshot: %+v", desc, pool.Snapshot())
	}

	waitFor("the down backend to be ejected", func(s Stats) bool {
		return !s.Healthy[proxy.URL] && s.Breakers[proxy.URL] == "open" && s.Healthy[healthy.URL]
	})
	if s := pool.Snapshot(); s.ProbeFailures == 0 {
		t.Error("ejection without any recorded probe failures")
	}

	flap.Force(true)
	waitFor("the healed backend to be reinstated", func(s Stats) bool {
		return s.Healthy[proxy.URL] && s.Breakers[proxy.URL] == "closed"
	})
}

// TestCanaryMismatchEjects fronts a backend with a proxy corrupting every
// simulate response: /healthz passes, so only the canary's known-answer
// check can notice the backend is serving wrong results — and must eject it.
func TestCanaryMismatchEjects(t *testing.T) {
	backend := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer backend.Close()
	cp, err := chaos.New(backend.URL, func(r *http.Request, n int64) chaos.Fault {
		if r.Method == http.MethodPost {
			return chaos.Fault{Kind: chaos.Corrupt}
		}
		return chaos.Fault{Kind: chaos.Pass}
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := httptest.NewServer(cp)
	defer proxy.Close()

	pool, err := NewPool(Options{Backends: []string{proxy.URL}})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := pool.StartProber(ctx, 25*time.Millisecond)
	defer stop()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		s := pool.Snapshot()
		if s.CanaryMismatches > 0 && !s.Healthy[proxy.URL] && s.Breakers[proxy.URL] == "open" {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("corrupting backend never ejected; snapshot: %+v", pool.Snapshot())
}
