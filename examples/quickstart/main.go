// Quickstart: assemble a small program, braid it, inspect the braids, check
// functional equivalence, and compare the braid microarchitecture against an
// aggressive out-of-order core on it.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"braid/internal/asm"
	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/uarch"
)

// A loop that mixes two independent dataflow chains (two braids per block)
// with a store and an induction update.
const src = `
.name quickstart
.data 4096
	ldimm r1, #65536     ; array base
	ldimm r6, #512       ; loop count
	ldimm r7, #0         ; checksum a
	ldimm r9, #1         ; checksum b
loop:
	; braid 1: pointer arithmetic + load + accumulate
	and   r10, r6, #504
	add   r10, r1, r10
	ldq   r11, 0(r10)    !ac=1
	add   r7, r7, r11
	; braid 2: an independent multiply chain
	mul   r12, r9, #3
	xor   r12, r12, #39
	add   r9, r12, #1
	; braid 3: store the running value
	stq   r7, 2048(r1)   !ac=2
	; loop control
	sub   r6, r6, #1
	bgt   r6, loop
	stq   r9, 2056(r1)   !ac=2
	halt
`

func main() {
	prog, err := asm.Parse(src)
	if err != nil {
		log.Fatal(err)
	}

	// 1. Braid it: identify dataflow subgraphs, reorder, allocate
	// internal registers, set the S/T/I/E bits.
	res, err := braid.Compile(prog, braid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("braided %d instructions into %d braids (%d single-instruction)\n",
		len(res.Prog.Instrs), len(res.Braids), res.Stats.Singles)
	fmt.Println("\nbraided loop body:")
	for _, b := range res.Braids {
		if b.Orig[0] >= 4 && b.Orig[0] <= 13 {
			fmt.Printf("  braid at [%d,%d): size %d, width %.2f, %d internal, %d ext in, %d ext out\n",
				b.Start, b.End, b.Size(), b.Width(), b.Internals, b.ExtInputs, b.ExtOutputs)
			for i := b.Start; i < b.End; i++ {
				fmt.Printf("    %s\n", res.Prog.Instrs[i].String())
			}
		}
	}

	// 2. The braided program computes exactly the same memory image.
	fo, err := interp.RunProgram(prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fb, err := interp.RunProgram(res.Prog, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfunctional equivalence: original and braided memory images match: %v\n",
		fo.MemHash == fb.MemHash)

	// 3. Simulate: braid microarchitecture vs the conventional cores.
	for _, c := range []struct {
		name string
		p    bool // braided binary?
		cfg  uarch.Config
	}{
		{"in-order       ", false, uarch.InOrderConfig(8)},
		{"out-of-order   ", false, uarch.OutOfOrderConfig(8)},
		{"braid          ", true, uarch.BraidConfig(8)},
	} {
		p := prog
		if c.p {
			p = res.Prog
		}
		st, err := uarch.Simulate(p, c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s IPC %.3f  (%d cycles for %d instructions)\n",
			c.name, st.IPC(), st.Cycles, st.Retired)
	}
}
