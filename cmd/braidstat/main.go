// Command braidstat characterizes programs the way the paper's profiling
// tool does: dynamic value fanout and lifetime (§1) and the braid statistics
// of Tables 1-3.
//
// Usage:
//
//	braidstat -bench gcc            one generated benchmark
//	braidstat -kernel fig2          a built-in kernel
//	braidstat -suite                all 26 SPEC CPU2000 stand-ins
//	braidstat -suite -j 4           ... characterized 4 benchmarks at a time
//	braidstat -values -bench mcf    value fanout/lifetime only
//
// With -suite, -checkpoint appends each finished benchmark's report to a
// JSONL file; Ctrl-C stops the pool without printing a partial suite, and
// rerunning with -resume reloads the finished reports and only
// recharacterizes the rest, producing identical output.
//
// -ipc appends each benchmark's simulated IPC (8-wide out-of-order and
// braid) to its report; with -remote host1,host2 those simulations run on
// braidd backends through the internal/remote pool (-hedge duplicates
// stragglers, -remote-verify cross-checks a sample locally), producing
// byte-identical output to local execution. -complexity adds the two
// machines' hardware-cost totals (uarch.EstimateComplexity) beneath each
// ipc line, quantifying the §5.1 complexity claim next to the speed it buys.
package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"syscall"

	"braid/internal/braid"
	"braid/internal/cfg"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/remote"
	"braid/internal/uarch"
	"braid/internal/workload"
)

func main() {
	var (
		bench      = flag.String("bench", "", "generated benchmark name")
		kernel     = flag.String("kernel", "", "built-in kernel name")
		suite      = flag.Bool("suite", false, "characterize the whole suite")
		values     = flag.Bool("values", false, "value fanout/lifetime only")
		iters      = flag.Int("iters", 50, "benchmark loop iterations")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "benchmarks characterized in parallel (-suite)")
		checkpoint = flag.String("checkpoint", "", "append finished suite reports to this JSONL file")
		resume     = flag.Bool("resume", false, "reload finished reports from -checkpoint before running")
		ipc        = flag.Bool("ipc", false, "append simulated IPC (8-wide o-o-o and braid) to each report; ignored with -values")
		remoteList = flag.String("remote", "", "comma-separated braidd base URLs; -ipc simulations run on these backends")
		hedge      = flag.Bool("hedge", false, "hedge slow remote requests onto a second backend (needs -remote)")
		remoteVer  = flag.Int("remote-verify", 0, "cross-check sampled remote results against local simulation, ~1 in N (needs -remote; 0: off)")
		fallback   = flag.String("fallback", "fail", "when every backend attempt fails: 'local' simulates in-process, 'fail' reports the error (needs -remote)")
		probe      = flag.Duration("probe", 0, "background health-probe interval for the remote pool (needs -remote; 0: off)")
		sample     = flag.String("sample", "", "interval sampling geometry period:detail[:warmup] for -ipc simulations; empty runs exact")
		complexity = flag.Bool("complexity", false, "append each machine's hardware-cost estimate to the -ipc section (needs -ipc)")
	)
	flag.Parse()

	sampling, err := uarch.ParseSampling(*sample)
	if err != nil {
		fatal(err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sim simFunc
	if *ipc && !*values {
		sim = func(p *isa.Program, cfg uarch.Config) (*uarch.Stats, *uarch.SampleEstimate, error) {
			return uarch.SimulateSampled(ctx, p, cfg, sampling)
		}
		if *remoteList != "" {
			fb, err := remote.ParseFallback(*fallback)
			if err != nil {
				fatal(err)
			}
			pool, err := remote.NewPool(remote.Options{
				Backends:    strings.Split(*remoteList, ","),
				Hedge:       *hedge,
				VerifyEvery: *remoteVer,
				Fallback:    fb,
			})
			if err == nil {
				var down []string
				if down, err = pool.Ping(ctx); len(down) > 0 {
					fmt.Fprintf(os.Stderr, "braidstat: unreachable backends (will fail over): %s\n", strings.Join(down, ","))
				}
			}
			if err != nil {
				fatal(err)
			}
			if *probe > 0 {
				stopProbe := pool.StartProber(ctx, *probe)
				defer stopProbe()
			}
			sim = func(p *isa.Program, cfg uarch.Config) (*uarch.Stats, *uarch.SampleEstimate, error) {
				return pool.SimulateSampled(ctx, p, cfg, sampling)
			}
			defer func() { fmt.Fprintf(os.Stderr, "braidstat: remote pool: %s\n", pool) }()
		}
	}

	if *complexity && (!*ipc || *values) {
		fatal(fmt.Errorf("-complexity needs -ipc (and is meaningless with -values)"))
	}

	switch {
	case *suite:
		characterizeSuite(ctx, *iters, *values, *jobs, *checkpoint, *resume, sim, sampling, *complexity)
	case *bench != "":
		prof, ok := workload.ProfileByName(*bench)
		if !ok {
			fatal(fmt.Errorf("unknown benchmark %q", *bench))
		}
		p, err := workload.Generate(prof, *iters)
		if err != nil {
			fatal(err)
		}
		characterize(p, *values, sim, *complexity)
	case *kernel != "":
		p, ok := workload.KernelByName(*kernel)
		if !ok {
			fatal(fmt.Errorf("unknown kernel %q", *kernel))
		}
		characterize(p, *values, sim, *complexity)
	default:
		fatal(fmt.Errorf("need -bench, -kernel, or -suite"))
	}
}

// simFunc executes one simulation for the -ipc report section: in-process by
// default, through the remote pool with -remote. Both are deterministic and
// return identical Stats, so reports are byte-identical either way. The
// estimate is non-nil exactly when -sample produced an interval-sampled
// result.
type simFunc func(p *isa.Program, cfg uarch.Config) (*uarch.Stats, *uarch.SampleEstimate, error)

// statRecord is one finished benchmark report in the -checkpoint JSONL. The
// key fields guard against resuming a checkpoint taken with different
// characterization parameters, which would silently mix reports. IPC guards
// the -ipc report section; records written without it resume only runs that
// also omit it (remote vs local does not matter — the section is identical).
// Sampling records the -sample geometry, so exact and sampled runs never
// resume each other's reports.
type statRecord struct {
	Name       string `json:"name"`
	Iters      int    `json:"iters"`
	ValuesOnly bool   `json:"values_only"`
	IPC        bool   `json:"ipc,omitempty"`
	Sampling   string `json:"sampling,omitempty"`
	Complexity bool   `json:"complexity,omitempty"`
	Report     string `json:"report"`
}

// loadStatCheckpoint returns the reports already finished, keyed by benchmark
// name, skipping records whose parameters do not match. A torn final line —
// a crash mid-append — is ignored.
func loadStatCheckpoint(path string, iters int, valuesOnly, ipc bool, sampling string, complexity bool) (map[string]string, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return map[string]string{}, nil
	}
	if err != nil {
		return nil, err
	}
	done := map[string]string{}
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	tail := bytes.TrimRight(data, " \t\r\n")
	for sc.Scan() {
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec statRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			if bytes.HasSuffix(tail, raw) {
				break // torn final line from an interrupted append
			}
			return nil, fmt.Errorf("braidstat: corrupt checkpoint %s: %w", path, err)
		}
		if rec.Iters == iters && rec.ValuesOnly == valuesOnly && rec.IPC == ipc && rec.Sampling == sampling && rec.Complexity == complexity {
			done[rec.Name] = rec.Report
		}
	}
	return done, sc.Err()
}

// characterizeSuite runs every profile through a bounded worker pool and
// prints the reports in profile order, whatever order they finish in. A
// panic while characterizing one benchmark is contained to that benchmark;
// Ctrl-C stops workers from starting new benchmarks and exits without
// printing a partial suite.
func characterizeSuite(ctx context.Context, iters int, valuesOnly bool, jobs int, ckptPath string, resume bool, sim simFunc, sampling uarch.Sampling, complexity bool) {
	sampStr := ""
	if sampling.Enabled() {
		sampStr = sampling.String()
	}
	profs := workload.Profiles()
	if jobs < 1 {
		jobs = runtime.GOMAXPROCS(0)
	}
	if jobs > len(profs) {
		jobs = len(profs)
	}

	reports := make([]string, len(profs))
	errs := make([]error, len(profs))
	var ckpt *os.File
	var ckptMu sync.Mutex
	if ckptPath != "" {
		if resume {
			done, err := loadStatCheckpoint(ckptPath, iters, valuesOnly, sim != nil, sampStr, complexity)
			if err != nil {
				fatal(err)
			}
			restored := 0
			for i, prof := range profs {
				if r, ok := done[prof.Name]; ok {
					reports[i] = r
					restored++
				}
			}
			fmt.Fprintf(os.Stderr, "braidstat: resumed %d finished reports from %s\n", restored, ckptPath)
		}
		f, err := os.OpenFile(ckptPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		ckpt = f
	}

	work := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				if ctx.Err() != nil {
					continue // drain without starting new work
				}
				p, err := workload.Generate(profs[i], iters)
				if err != nil {
					errs[i] = err
					continue
				}
				reports[i], errs[i] = reportChecked(p, valuesOnly, sim, complexity)
				if errs[i] == nil && ckpt != nil {
					rec := statRecord{Name: profs[i].Name, Iters: iters, ValuesOnly: valuesOnly, IPC: sim != nil, Sampling: sampStr, Complexity: complexity, Report: reports[i]}
					if data, err := json.Marshal(&rec); err == nil {
						ckptMu.Lock()
						ckpt.Write(append(data, '\n')) // one write: a crash tears at most the last line
						ckptMu.Unlock()
					}
				}
			}
		}()
	}
	for i := range profs {
		if reports[i] != "" {
			continue // restored from the checkpoint
		}
		work <- i
	}
	close(work)
	wg.Wait()

	if ctx.Err() != nil {
		msg := "braidstat: interrupted; no partial suite printed"
		if ckptPath != "" {
			msg += fmt.Sprintf(" (rerun with -checkpoint %s -resume to continue)", ckptPath)
		}
		fmt.Fprintln(os.Stderr, msg)
		os.Exit(130)
	}
	for i, prof := range profs {
		if errs[i] != nil {
			fatal(fmt.Errorf("%s: %w", prof.Name, errs[i]))
		}
		fmt.Printf("--- %s ---\n%s", prof.Name, reports[i])
	}
}

func characterize(p *isa.Program, valuesOnly bool, sim simFunc, complexity bool) {
	s, err := report(p, valuesOnly, sim, complexity)
	if err != nil {
		fatal(err)
	}
	fmt.Print(s)
}

// reportChecked contains a panic in the characterization pipeline to the
// benchmark that triggered it, so one bad program cannot kill the pool.
func reportChecked(p *isa.Program, valuesOnly bool, sim simFunc, complexity bool) (s string, err error) {
	defer func() {
		if r := recover(); r != nil {
			s = ""
			err = fmt.Errorf("characterization panic: %v\n%s", r, debug.Stack())
		}
	}()
	return report(p, valuesOnly, sim, complexity)
}

// report builds one program's characterization text (§1 values, control
// flow, Tables 1-3 braid statistics, and with -ipc the simulated IPC of the
// 8-wide out-of-order and braid machines).
func report(p *isa.Program, valuesOnly bool, sim simFunc, complexity bool) (string, error) {
	var b strings.Builder
	vs, err := interp.Characterize(p, 100_000_000)
	if err != nil {
		return "", err
	}
	b.WriteString(vs.String())
	if valuesOnly {
		return b.String(), nil
	}
	if g, err := cfg.Build(p); err == nil {
		loops := cfg.NaturalLoops(g)
		fmt.Fprintf(&b, "control flow: %d blocks, %d natural loops\n", len(g.Blocks), len(loops))
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		return "", err
	}
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	if _, err := m.Run(100_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) }); err != nil {
		return "", err
	}
	st := ds.Stats()
	b.WriteString(st.String())
	if sim != nil {
		ooo, oooEst, err := sim(p, uarch.OutOfOrderConfig(8))
		if err != nil {
			return "", err
		}
		br, brEst, err := sim(res.Prog, uarch.BraidConfig(8))
		if err != nil {
			return "", err
		}
		// Exact runs keep the historical line byte-for-byte; sampled runs
		// annotate each estimate with its 95% confidence half-width.
		fmt.Fprintf(&b, "ipc: o-o-o/8w %.4f%s  braid/8w %.4f%s\n",
			ooo.IPC(), ciSuffix(oooEst), br.IPC(), ciSuffix(brEst))
		if complexity {
			co := uarch.EstimateComplexity(uarch.OutOfOrderConfig(8)).Total()
			cb := uarch.EstimateComplexity(uarch.BraidConfig(8)).Total()
			fmt.Fprintf(&b, "complexity: o-o-o/8w %.0f  braid/8w %.0f (%.1f%%)\n", co, cb, 100*cb/co)
		}
	}
	return b.String(), nil
}

// ciSuffix renders a sampled estimate's relative 95% confidence interval as
// "±x.x%". Exact results (nil estimate, or a sampled run that fell back to
// exact simulation) render nothing, keeping exact output byte-identical.
func ciSuffix(est *uarch.SampleEstimate) string {
	if est == nil || est.Exact {
		return ""
	}
	return fmt.Sprintf("±%.1f%%", est.IPCRelCI*100)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidstat: %v\n", err)
	os.Exit(1)
}
