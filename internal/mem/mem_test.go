package mem

import "testing"

func TestCacheBasic(t *testing.T) {
	c, err := NewCache(CacheConfig{SizeKB: 1, Assoc: 2, LineB: 64, Latency: 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x100) {
		t.Error("cold access hit")
	}
	if !c.Access(0x100) {
		t.Error("warm access missed")
	}
	if !c.Access(0x13f) { // same 64B line as 0x100
		t.Error("same-line access missed")
	}
	if c.Access(0x2000) {
		t.Error("different line hit")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Errorf("hits=%d misses=%d, want 2/2", c.Hits, c.Misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// 1KB, 2-way, 64B lines: 8 sets. Three lines mapping to set 0:
	// line addresses differing by 8*64 = 0x200.
	c, err := NewCache(CacheConfig{SizeKB: 1, Assoc: 2, LineB: 64, Latency: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := uint64(0x0000), uint64(0x0200), uint64(0x0400)
	c.Access(a)
	c.Access(b)
	c.Access(a) // a is now MRU
	c.Access(d) // evicts b (LRU)
	if !c.Access(a) {
		t.Error("a evicted despite being MRU")
	}
	if c.Access(b) {
		t.Error("b survived eviction")
	}
}

func TestCacheBadConfig(t *testing.T) {
	if _, err := NewCache(CacheConfig{SizeKB: 0, Assoc: 1, LineB: 64}); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewCache(CacheConfig{SizeKB: 3, Assoc: 7, LineB: 64}); err == nil {
		t.Error("non-power-of-two sets accepted")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	h, err := NewHierarchy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Cold: L1 miss, L2 miss -> 3+6+400.
	if got := h.AccessD(0x10000); got != 409 {
		t.Errorf("cold access latency %d, want 409", got)
	}
	// Warm L1.
	if got := h.AccessD(0x10000); got != 3 {
		t.Errorf("warm L1 latency %d, want 3", got)
	}
	// Evict from tiny... instead: L2 hit path. Touch enough lines to
	// evict from L1 (64KB 2-way, 512 sets): lines mapping to set 0 are
	// 0x10000 apart... simpler: access 3 conflicting lines in L1 set.
	base := uint64(0x10000)
	stride := uint64(64 * 512) // one L1 way span (32KB)
	h.AccessD(base + stride)   // cold
	h.AccessD(base + 2*stride) // cold, evicts base from L1 (2-way)
	if got := h.AccessD(base); got != 9 {
		t.Errorf("L2 hit latency %d, want 9", got)
	}
	// Instruction side: its own L1, but the L2 is unified, so a line the
	// data side brought in is an L2 hit for the fetcher.
	if got := h.AccessI(0x10000); got != 9 {
		t.Errorf("I-fetch of data-warm line latency %d, want 9 (unified L2)", got)
	}
	if got := h.AccessI(0x10000); got != 3 {
		t.Errorf("warm I-fetch latency %d, want 3", got)
	}
	if got := h.AccessI(0x900000); got != 409 {
		t.Errorf("cold I-fetch latency %d, want 409", got)
	}
}

func TestHierarchyPerfect(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Perfect = true
	h, err := NewHierarchy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := h.AccessD(uint64(i) * 1 << 20); got != 3 {
			t.Fatalf("perfect access latency %d, want 3", got)
		}
	}
}

func TestHierarchyStats(t *testing.T) {
	h, err := NewHierarchy(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.AccessD(0)
	h.AccessD(0)
	_, _, l1dH, l1dM, _, l2M := h.Stats()
	if l1dH != 1 || l1dM != 1 || l2M != 1 {
		t.Errorf("stats = %d hits, %d misses, l2 misses %d", l1dH, l1dM, l2M)
	}
}

func TestHierarchyBadConfig(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemLatency = 0
	if _, err := NewHierarchy(cfg); err == nil {
		t.Error("zero memory latency accepted")
	}
}
