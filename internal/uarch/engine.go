package uarch

import (
	"context"
	"fmt"
	"io"

	"braid/internal/isa"
	"braid/internal/mem"
)

// core is one execution-core paradigm: it owns dispatch structure (windows,
// FIFOs, BEUs) and per-cycle instruction selection. The engine owns operand
// readiness, register-file ports and occupancy, the bypass network, the
// functional-unit pool, the LSQ, retirement, and the front end.
type core interface {
	// canAccept reports whether one more instruction can be dispatched
	// this cycle (called in program order; dispatch stops at the first
	// refusal).
	canAccept(d *dyn) bool
	// dispatch inserts the instruction into the core's structures.
	dispatch(d *dyn)
	// issue selects and issues instructions for cycle t by calling
	// m.tryIssue on candidates, respecting the core's structural rules.
	issue(m *Machine, t uint64)
	// nextWake returns a lower bound on the earliest cycle after t at
	// which any instruction the core examines for issue could become
	// source-ready through the passage of time alone (neverWakes if
	// none can). It must not mutate core state; fast-forward consults it
	// on provably idle cycles.
	nextWake(m *Machine, t uint64) uint64
}

// Stats accumulates one run's results.
type Stats struct {
	Cycles  uint64
	Retired uint64
	Fetched uint64

	CondBranches uint64
	Mispredicts  uint64
	Loads        uint64
	StoreCount   uint64
	Exceptions   uint64

	ICacheMissCycles uint64
	IssueStalls      uint64 // tryIssue rejections (any reason)

	// Utilization diagnostics.
	IdleCycles       uint64 // cycles with no instruction issued
	FetchStallCycles uint64 // cycles fetch was blocked on a misprediction
	robOccupancySum  uint64
	issuedSum        uint64
	RFEntryStalls    uint64 // writebacks delayed by a full register file
	PortStalls       uint64 // issues blocked on read ports
	WritePortStalls  uint64 // writebacks delayed by exhausted write ports
	BypassDenied     uint64 // writebacks that missed a bypass slot
	RFPeak           int
}

// IPC is retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MeanROBOccupancy is the average number of in-flight instructions.
func (s *Stats) MeanROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.robOccupancySum) / float64(s.Cycles)
}

// MispredictRate is per conditional branch.
func (s *Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// Machine is one configured simulation of one program.
type Machine struct {
	cfg  Config
	prog *isa.Program
	fe   *frontend
	cre  core
	hier *mem.Hierarchy

	rob    dynRing // in flight, in fetch order
	stores dynRing // in-flight stores for the LSQ, in fetch order

	// Completion calendar: issued instructions await writeback in a ring of
	// per-cycle buckets indexed by completion cycle (a calendar queue —
	// push and pop are O(1), with no comparison-sort cost). The ring spans
	// more cycles than any issue-to-completion latency, so a bucket never
	// mixes cycles; it doubles in the rare case a latency outgrows it.
	// Results blocked on register-file entries or write ports retry from
	// wbstall (kept in seq order); wbnext is that list's rebuild scratch.
	wbcal   [][]*dyn
	wbMask  uint64
	wbCount int
	wbstall []*dyn
	wbnext  []*dyn // scratch for the next stall list

	// dyn arena (see allocDyn): retired, unreferenced records recycle.
	freeDyns []*dyn
	dynChunk []dyn

	// wakeMin caches, per issue structure (out-of-order scheduler or BEU,
	// indexed by dyn.sched), a lower bound on the earliest cycle any of its
	// entries could issue: the issue loop skips a whole structure while
	// wakeMin > now. A complete no-issue scan raises it to the minimum of
	// the entries' wake bounds; dispatching into, issuing from, or waking a
	// consumer inside a structure lowers it again. Nil for cores whose
	// issue loops examine too few candidates to be worth caching.
	wakeMin []uint64

	// latTab maps a functional-unit class (staticMeta.class) to its
	// configured latency, so buildDyn indexes instead of switching.
	latTab [16]uint64

	seq   uint64
	cycle uint64

	rfUsed          int
	readPortsUsed   int
	writePortsUsed  int
	bypassUsed      int
	fusUsed         int
	issuedThisCycle int

	stats Stats

	trace      io.Writer
	traceMax   int
	traceCount int

	konata      io.Writer
	konataMax   int
	konataCount int

	retireHook func(RetireEvent) // differential checking; see retirehook.go

	// writeErr latches the first trace/Konata write failure. Later log
	// output is suppressed and RunContext surfaces the error when the run
	// finishes, so a broken sink (full disk, closed pipe) cannot silently
	// truncate a pipeline log.
	writeErr error

	// §3.4 exception-mode state.
	sinceException uint64
	draining       bool
	serializedLeft int

	// injected latches the test-only fault injector (Config.Inject) after
	// it has corrupted its target once.
	injected bool
}

// New builds a machine for the program under the configuration.
func New(p *isa.Program, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := warmHierarchy(p, cfg.Mem)
	if err != nil {
		return nil, err
	}
	return newMachine(p, cfg, hier)
}

// newMachine wires a machine around an already-built memory hierarchy; cfg
// must be validated. Sampled simulation uses it to hand detailed measurement
// intervals a functionally warmed hierarchy instead of the shared prototype.
func newMachine(p *isa.Program, cfg Config, hier *mem.Hierarchy) (*Machine, error) {
	m := &Machine{cfg: cfg, prog: p, hier: hier}
	for c := range m.latTab {
		m.latTab[c] = uint64(latencyClass(&cfg, isa.Class(c)))
	}
	m.fe = newFrontend(p, &cfg)
	switch cfg.Core {
	case CoreOutOfOrder:
		m.cre = newOOOCore(&cfg)
	case CoreInOrder:
		m.cre = newInOrderCore(&cfg)
	case CoreDepSteer:
		m.cre = newDepSteerCore(&cfg)
	case CoreBraid:
		m.cre = newBraidCore(&cfg)
	default:
		return nil, fmt.Errorf("uarch: unknown core kind %d", cfg.Core)
	}
	switch cfg.Core {
	case CoreOutOfOrder:
		m.wakeMin = make([]uint64, cfg.Schedulers)
	case CoreBraid:
		m.wakeMin = make([]uint64, cfg.BEUs)
	}
	return m, nil
}

// Run simulates to completion and returns the statistics. A MaxCycles
// exhaustion wraps ErrCycleLimit; RunContext adds cancellation and deadlines
// and RunChecked adds panic containment on top.
func (m *Machine) Run() (*Stats, error) {
	return m.RunContext(context.Background())
}

// step simulates one machine cycle — plus any provably idle cycles
// fast-forward can skip — and reports whether the program has completed.
func (m *Machine) step() bool {
	t := m.cycle
	m.resetCycle()
	m.writeback(t)
	m.retire(t)
	m.cre.issue(m, t)
	m.dispatch(t)
	m.fe.fetch(m, t)
	if m.cfg.Inject != nil && !m.injected {
		m.injectFault(t)
	}
	if m.cfg.Paranoid {
		m.checkInvariants(t)
	}
	if m.issuedThisCycle == 0 {
		m.stats.IdleCycles++
	}
	if m.fe.stalledOn != nil {
		m.stats.FetchStallCycles++
	}
	m.stats.robOccupancySum += uint64(m.rob.len())
	m.stats.issuedSum += uint64(m.issuedThisCycle)
	m.cycle = t + 1
	if m.fe.done && m.rob.len() == 0 && m.fe.queue.len() == 0 {
		return true
	}
	if m.issuedThisCycle == 0 && !m.cfg.NoFastForward {
		m.fastForward(t)
	}
	return false
}

// fastForward jumps the clock over cycles that are provably no-ops for every
// pipeline stage, batch-accounting the per-cycle statistics the skipped
// cycles would have recorded (IdleCycles, FetchStallCycles, ROB occupancy).
// It runs only after a cycle that issued nothing, so every per-cycle resource
// counter is zero and the cores' issue passes were complete (no early exits),
// leaving core state settled. The invariants DESIGN.md documents:
//
//   - writeback: nothing in wbstall (stalled results retry every cycle); the
//     next completion is the first occupied calendar bucket.
//   - retire: the ROB head is incomplete (a complete head retires next cycle)
//     and completes only at a writeback event.
//   - issue: no examined instruction can become source-ready before
//     core.nextWake's bound; structural rejections cannot flip on an idle
//     cycle because per-cycle counters reset to zero.
//   - dispatch: blocked on the ROB, the core, or single-instruction
//     allocate/rename bounds — stable until a writeback/retire event — or on
//     dispatchReady, an explicit event.
//   - fetch: done, stalled on a mispredict (cleared only by that branch's
//     writeback), blocked until an explicit cycle, or the queue is full
//     (stable while dispatch is blocked).
func (m *Machine) fastForward(t uint64) {
	// Writeback-stalled results normally pin the clock (they retry every
	// cycle), but a fully frozen register-file plateau is itself skippable:
	// with the file full, no retirement possible (incomplete ROB head that
	// is not itself awaiting writeback — the oldest-instruction exemption
	// would grant it), and at least one write port configured, every
	// stalled entry re-blocks identically each cycle, adding exactly one
	// RFEntryStalls per entry per cycle until the next event.
	stallPerCycle := uint64(0)
	if len(m.wbstall) > 0 {
		if m.rfUsed < m.cfg.RFEntries || m.cfg.RFWritePorts <= 0 {
			return
		}
		h := m.rob.front()
		if h.issued && !h.completed && h.execDone <= t {
			return // head grants next cycle via the oldest exemption
		}
		stallPerCycle = uint64(len(m.wbstall))
	}
	if m.rob.len() > 0 && m.rob.front().completed {
		return
	}
	if m.draining && m.rob.len() == 0 {
		return // dispatch restores the exception checkpoint next cycle
	}
	next := m.cre.nextWake(m, t)
	if !m.draining && m.fe.queue.len() > 0 {
		h := m.fe.queue.front()
		switch {
		case h.dispatchReady > t+1:
			if h.dispatchReady < next {
				next = h.dispatchReady
			}
		case m.rob.len() < m.cfg.ROB && m.cre.canAccept(h) && !m.allocBound(h):
			return // dispatch moves it next cycle
		}
	}
	if !m.fe.done && m.fe.stalledOn == nil && m.fe.queue.len() < m.fe.queueCap {
		if m.fe.blockedUntil > t+1 {
			if m.fe.blockedUntil < next {
				next = m.fe.blockedUntil
			}
		} else {
			return // fetch proceeds next cycle
		}
	}
	if m.wbCount > 0 {
		// The next completion bounds the skip too. Scanning calendar
		// buckets up to the earliest other event costs at most one probe
		// per cycle actually skipped; pending slots all lie within one
		// span of t, so a full-span scan is exhaustive.
		limit := t + m.wbMask + 1
		if next < limit {
			limit = next
		}
		for c := t + 1; c <= limit; c++ {
			if len(m.wbcal[c&m.wbMask]) > 0 {
				next = c
				break
			}
		}
	}
	if next > m.cfg.MaxCycles {
		// No event inside the budget: land on it so Run reports the wedge
		// immediately instead of crawling to it one cycle at a time.
		next = m.cfg.MaxCycles
	}
	if next <= t+1 {
		return
	}
	skipped := next - (t + 1)
	m.stats.IdleCycles += skipped
	if m.fe.stalledOn != nil {
		m.stats.FetchStallCycles += skipped
	}
	m.stats.robOccupancySum += skipped * uint64(m.rob.len())
	m.stats.RFEntryStalls += skipped * stallPerCycle
	m.cycle = next
}

// allocBound reports whether d alone exceeds the per-cycle allocate/rename
// bandwidth, which blocks dispatch permanently (no event changes it).
func (m *Machine) allocBound(d *dyn) bool {
	if d.hasExtDest && m.cfg.AllocWidth < 1 {
		return true
	}
	return d.extSrcCount() > m.cfg.RenameSrc
}

func (m *Machine) resetCycle() {
	m.readPortsUsed = 0
	m.writePortsUsed = 0
	m.bypassUsed = 0
	m.fusUsed = 0
	m.issuedThisCycle = 0
}

// writeback processes issued instructions whose functional units have
// produced a result. External-destination results need a register-file
// entry and a write port; they retry every cycle until granted (oldest
// first). Everything else completes unconditionally.
func (m *Machine) writeback(t uint64) {
	var due []*dyn
	if m.wbCount > 0 {
		due = m.wbcal[t&m.wbMask]
	}
	if len(m.wbstall) == 0 {
		switch len(due) {
		case 0:
			return
		case 1:
			// Overwhelmingly common: one completion, nothing stalled.
			d := due[0]
			if m.writebackOne(d, t) {
				m.wbstall = append(m.wbstall, d)
			}
			m.wbCount--
			m.wbcal[t&m.wbMask] = due[:0]
			return
		}
	}
	// The due bucket holds exactly this cycle's completions, in issue
	// order; restore pure age order (the batch is small, so an insertion
	// sort is cheapest).
	for i := 1; i < len(due); i++ {
		d := due[i]
		j := i
		for j > 0 && due[j-1].seq > d.seq {
			due[j] = due[j-1]
			j--
		}
		due[j] = d
	}
	// Merge the due batch with earlier stalled results (both in seq order)
	// so grants go strictly oldest first, as before.
	stall := m.wbnext[:0]
	si, di := 0, 0
	for si < len(m.wbstall) || di < len(due) {
		var d *dyn
		if di >= len(due) || (si < len(m.wbstall) && m.wbstall[si].seq < due[di].seq) {
			d = m.wbstall[si]
			si++
		} else {
			d = due[di]
			di++
		}
		if m.writebackOne(d, t) {
			stall = append(stall, d)
		}
	}
	m.wbnext = m.wbstall[:0]
	m.wbstall = stall
	if len(due) > 0 {
		m.wbCount -= len(due)
		m.wbcal[t&m.wbMask] = due[:0]
	}
}

// writebackOne completes one due result; it reports true when the result is
// blocked on a register-file entry or write port and must retry.
func (m *Machine) writebackOne(d *dyn, t uint64) (blocked bool) {
	if d.hasExtDest {
		// The oldest in-flight instruction may always take an entry
		// (transiently exceeding the limit) — otherwise younger completed
		// values waiting to retire behind it would deadlock the machine.
		oldest := m.rob.len() > 0 && m.rob.front() == d
		if (m.rfUsed >= m.cfg.RFEntries && !oldest) || m.writePortsUsed >= m.cfg.RFWritePorts {
			if m.rfUsed >= m.cfg.RFEntries && !oldest {
				m.stats.RFEntryStalls++
			}
			if m.writePortsUsed >= m.cfg.RFWritePorts {
				m.stats.WritePortStalls++
			}
			return true
		}
		m.rfUsed++
		if m.rfUsed > m.stats.RFPeak {
			m.stats.RFPeak = m.rfUsed
		}
		m.writePortsUsed++
		if m.bypassUsed < m.cfg.BypassValues {
			m.bypassUsed++
			d.bypassed = true
		} else {
			m.stats.BypassDenied++
		}
	}
	d.completed = true
	d.completeCycle = t
	// The value is (or soon will be) visible: wake consumers parked on the
	// completion event. They re-derive any remaining delay when examined.
	for _, c := range d.consumers {
		if c.wakeLB > t {
			c.wakeLB = t
			m.noteWake(c, t)
		}
	}
	m.tryEarlyRelease(d)
	if d.mispredicted {
		// Redirect: fetch resumes after the configured gap.
		m.fe.stalledOn = nil
		m.fe.blockedUntil = t + 1 + m.cfg.redirectGap()
		m.fe.haveLine = false
	}
	return false
}

// calSpan sizes the completion calendar: the next power of two above the
// configuration's longest issue-to-completion latency (a main-memory load),
// so a bucket never mixes cycles. calGrow covers anything unforeseen.
func calSpan(cfg *Config) uint64 {
	maxLat := cfg.LatAGU + cfg.Mem.L1D.Latency + cfg.Mem.L2.Latency + cfg.Mem.MemLatency
	for _, l := range []int{cfg.LatIntALU, cfg.LatIntMul, cfg.LatIntDiv,
		cfg.LatFPAdd, cfg.LatFPMul, cfg.LatFPDiv} {
		if l > maxLat {
			maxLat = l
		}
	}
	span := uint64(64)
	for span < uint64(maxLat)+2 {
		span *= 2
	}
	return span
}

// calPush schedules d for writeback. A result due at or before the current
// cycle (zero-latency units) is processed next cycle, exactly as the former
// priority queue did: writeback runs before issue, so cycle t's batch was
// already taken when d issued.
func (m *Machine) calPush(d *dyn, t uint64) {
	slot := d.execDone
	if slot <= t {
		slot = t + 1
	}
	if m.wbcal == nil {
		span := calSpan(&m.cfg)
		m.wbcal = make([][]*dyn, span)
		m.wbMask = span - 1
		// Carve every bucket's initial capacity from one backing array;
		// append only allocates for the rare >4-completions-per-cycle
		// bucket (full capacity is retained when a bucket empties).
		backing := make([]*dyn, 4*span)
		for i := range m.wbcal {
			m.wbcal[i] = backing[4*i : 4*i : 4*i+4]
		}
	}
	for slot-t > m.wbMask {
		m.calGrow()
	}
	d.wbSlot = slot
	m.wbcal[slot&m.wbMask] = append(m.wbcal[slot&m.wbMask], d)
	m.wbCount++
}

// calGrow doubles the calendar when a completion lands beyond its span,
// re-bucketing pending entries under the wider mask.
func (m *Machine) calGrow() {
	old := m.wbcal
	next := make([][]*dyn, 2*len(old))
	mask := uint64(len(next) - 1)
	for _, b := range old {
		for _, d := range b {
			next[d.wbSlot&mask] = append(next[d.wbSlot&mask], d)
		}
	}
	m.wbcal = next
	m.wbMask = mask
}

// retire commits completed instructions in order, up to the retire width.
// Stores write the data cache at retirement; external register-file entries
// are released (the value is architecturally committed; DESIGN.md §1).
// Retired records return to the arena once nothing references them.
func (m *Machine) retire(t uint64) {
	width := m.cfg.RetireWidth
	n := 0
	for m.rob.len() > 0 && n < width {
		d := m.rob.front()
		if !d.completed || d.completeCycle > t {
			break
		}
		if d.isStore {
			m.hier.AccessD(d.addr)
			// Stores dispatch and retire in program order, so the
			// retiring store is always the LSQ head.
			if s := m.stores.popFront(); s != d {
				panic(fmt.Sprintf("uarch: cycle %d: retiring store seq %d is not the LSQ head (seq %d)", t, d.seq, s.seq))
			}
		}
		if d.hasExtDest && !d.entryFreed {
			d.entryFreed = true
			m.rfUsed--
		}
		d.retired = true
		if m.trace != nil {
			m.traceRetire(d, t)
		}
		if m.konata != nil {
			m.konataRetire(d, t)
		}
		if m.retireHook != nil {
			m.retireHook(RetireEvent{
				Seq:          d.seq,
				Index:        d.idx,
				Cycle:        t,
				Addr:         d.addr,
				MemBytes:     d.memBytes,
				Taken:        d.taken,
				Mispredicted: d.mispredicted,
				IsLoad:       d.isLoad,
				IsStore:      d.isStore,
				IsBranch:     d.isBranch,
			})
		}
		m.rob.popFront()
		m.stats.Retired++
		n++
		if d.refs == 0 {
			m.freeDyns = append(m.freeDyns, d)
		}
		if m.cfg.ExceptionEvery > 0 {
			m.sinceException++
			if m.sinceException >= m.cfg.ExceptionEvery {
				m.sinceException = 0
				m.draining = true
				m.stats.Exceptions++
			}
		}
	}
}

// dispatch moves fetched instructions into the core, in order, limited by
// the allocate/rename bandwidth of Table 4 (only external destinations are
// allocated; only external sources are renamed). Exception handling (§3.4)
// first drains the machine, restores the checkpoint (modeled as the
// misprediction penalty), and then serializes dispatch through one unit.
func (m *Machine) dispatch(t uint64) {
	if m.draining {
		if m.rob.len() > 0 {
			return // wait for the pipeline to empty
		}
		m.draining = false
		m.serializedLeft = m.cfg.ExceptionHandler
		if m.serializedLeft <= 0 {
			m.serializedLeft = 64
		}
		m.fe.blockedUntil = t + uint64(m.cfg.MispredictMin)
		if sz, ok := m.cre.(serializer); ok {
			sz.setSerialized(true)
		}
		return
	}
	allocUsed, renameUsed, moved := 0, 0, 0
	for m.fe.queue.len() > 0 && moved < m.cfg.FetchWidth {
		d := m.fe.queue.front()
		if d.dispatchReady > t || m.rob.len() >= m.cfg.ROB {
			return
		}
		needAlloc := 0
		if d.hasExtDest {
			needAlloc = 1
		}
		if allocUsed+needAlloc > m.cfg.AllocWidth || renameUsed+d.extSrcCount() > m.cfg.RenameSrc {
			return
		}
		if !m.cre.canAccept(d) {
			return
		}
		allocUsed += needAlloc
		renameUsed += d.extSrcCount()
		m.cre.dispatch(d)
		if m.wakeMin != nil && d.sched >= 0 {
			m.wakeMin[d.sched] = 0 // a new candidate entered the structure
		}
		d.dispatched = true
		d.dispatchCycle = t
		m.rob.push(d)
		if d.isStore {
			m.stores.push(d)
			m.stats.StoreCount++
		}
		if d.isLoad {
			m.stats.Loads++
		}
		m.fe.queue.popFront()
		moved++
		if m.serializedLeft > 0 {
			m.serializedLeft--
			if m.serializedLeft == 0 {
				if sz, ok := m.cre.(serializer); ok {
					sz.setSerialized(false)
				}
			}
		}
	}
}

// serializer is implemented by cores that support §3.4's exception mode.
type serializer interface{ setSerialized(bool) }

// noteWriteErr records the first failed trace/Konata write, tagged with the
// sink it came from. The latch stops further log output (traceRetire and
// konataRetire check writeErr) and RunContext turns it into a run error.
func (m *Machine) noteWriteErr(sink string, err error) {
	if err != nil && m.writeErr == nil {
		m.writeErr = fmt.Errorf("%s: %w", sink, err)
	}
}

// srcsReady checks operand availability at cycle t and counts the external
// register-file read ports the issue would need (bypassed and internal
// operands are free). On failure, wake is a lower bound on the first cycle
// at which the blocking source could possibly be ready; the bound stays
// valid under any later event (an unissued producer yields t+1, i.e. "check
// again next cycle"; issued and completed producers yield fixed times), so
// callers may cache it and skip the check until then.
func (m *Machine) srcsReady(d *dyn, t uint64) (ports int, wake uint64, ok bool) {
	for i := 0; i < d.nsrcs; i++ {
		s := &d.srcs[i]
		p := s.producer
		if s.internal {
			if !p.issued {
				// Park until p issues; p lowers the bound then.
				return 0, neverWakes, false
			}
			if t < p.execDone {
				return 0, p.execDone, false
			}
			continue
		}
		if p == nil || p.retired {
			// Architectural state: needs a read port.
			ports++
			continue
		}
		if !p.completed || p.completeCycle > t {
			// Completion happens no earlier than the producer's
			// functional unit finishes (write-port stalls only push
			// it later); once that time has passed, the result is
			// blocked in writeback and the completion event itself
			// lowers the bound (writebackOne).
			if p.issued && t < p.execDone {
				return 0, p.execDone, false
			}
			return 0, neverWakes, false
		}
		if m.crossCluster(p, d) {
			// §5.2 clustering: a value crossing clusters pays the
			// inter-cluster delay and cannot be caught on the
			// producing cluster's bypass network. The wake bound is
			// only t+1: the producer may retire first, making the
			// value architectural (and port-readable) early.
			if t < p.completeCycle+uint64(m.cfg.InterClusterDelay) {
				return 0, t + 1, false
			}
			ports++
			continue
		}
		if p.bypassed && t <= p.completeCycle+uint64(m.cfg.BypassLevels) {
			continue // caught on the bypass network
		}
		if t < p.completeCycle+uint64(m.cfg.ExtWakeupExtra) {
			// Busy-bit propagation across units; t+1 for the same
			// retirement reason as above.
			return 0, t + 1, false
		}
		ports++
	}
	return ports, 0, true
}

// noteWake propagates a lowered wake bound to c's issue structure so the
// whole-structure skip in the issue loops stays sound (c may not be
// dispatched yet; its structure is then re-opened at dispatch).
func (m *Machine) noteWake(c *dyn, w uint64) {
	if m.wakeMin != nil && c.sched >= 0 && w < m.wakeMin[c.sched] {
		m.wakeMin[c.sched] = w
	}
}

// mightIssue is the issue loops' cheap pre-filter: when it returns false,
// tryIssue would provably fail without touching any counter or state, so the
// call can be skipped with bit-identical results. When the issue width or
// functional units are exhausted, tryIssue must run anyway — it counts an
// IssueStall on that path.
func (m *Machine) mightIssue(d *dyn, t uint64) bool {
	return t >= d.wakeLB ||
		m.issuedThisCycle >= m.cfg.IssueWidth || m.fusUsed >= m.cfg.TotalFUs
}

// crossCluster reports whether a value produced by p crosses a cluster
// boundary to reach d (braid core with clustering enabled only).
func (m *Machine) crossCluster(p, d *dyn) bool {
	if m.cfg.Clusters <= 1 || p.beu < 0 || d.beu < 0 {
		return false
	}
	per := m.cfg.BEUs / m.cfg.Clusters
	if per <= 0 {
		return false
	}
	return p.beu/per != d.beu/per
}

// tryIssue attempts to issue d at cycle t, honoring the global issue width,
// the functional-unit pool, operand readiness, register-file read ports, and
// the load-store queue. On success the completion time is scheduled.
func (m *Machine) tryIssue(d *dyn, t uint64) bool {
	if d.issued {
		return false
	}
	if m.issuedThisCycle >= m.cfg.IssueWidth || m.fusUsed >= m.cfg.TotalFUs {
		m.stats.IssueStalls++
		return false
	}
	ports, wake, ok := m.srcsReady(d, t)
	if !ok {
		d.wakeLB = wake
		return false
	}
	if ports > m.cfg.RFReadPorts {
		// An instruction needing more operands than the file has ports
		// collects them over several cycles; approximate by letting it
		// monopolize a full cycle's read bandwidth (otherwise a
		// three-source conditional move could deadlock a two-port
		// machine).
		ports = m.cfg.RFReadPorts
	}
	if m.readPortsUsed+ports > m.cfg.RFReadPorts {
		m.stats.PortStalls++
		return false
	}

	var execDone uint64
	switch {
	case d.isLoad:
		done, ok := m.issueLoad(d, t)
		if !ok {
			return false
		}
		execDone = done
	case d.isStore:
		execDone = t + uint64(m.cfg.LatAGU)
	default:
		execDone = t + d.exLat
	}

	m.readPortsUsed += ports
	m.fusUsed++
	m.issuedThisCycle++
	d.issued = true
	d.issueCycle = t
	d.execDone = execDone
	// Wake consumers parked on this issue: none can be ready before the
	// result exists (internal values forward at execDone; external values
	// complete no earlier).
	for _, c := range d.consumers {
		if c.wakeLB > execDone {
			c.wakeLB = execDone
			m.noteWake(c, execDone)
		}
	}
	// The issue moves this structure's window/selection state: re-examine
	// it from the next cycle regardless of cached wake bounds.
	if m.wakeMin != nil && d.sched >= 0 {
		m.wakeMin[d.sched] = 0
	}
	// The issue consumed its operands: dead values may free their
	// register-file entries (dead-value early release, DESIGN.md §1), and
	// this instruction drops its producer references — sources are never
	// consulted after issue, which is what lets producers recycle.
	for i := 0; i < d.nsrcs; i++ {
		s := &d.srcs[i]
		p := s.producer
		if p == nil {
			continue
		}
		if !s.internal && !p.retired {
			p.pendingReads--
			m.tryEarlyRelease(p)
		}
		m.decRef(p)
		s.producer = nil
	}
	m.calPush(d, t)
	return true
}

// tryEarlyRelease frees p's external register-file entry once the value is
// provably dead: written back, all fetched consumers issued, and the next
// writer of the architectural register fetched (the compiler's dead-value
// assertion). Branch recovery needs no entry either way because checkpoints
// repair the map, per the paper's §3.4.
func (m *Machine) tryEarlyRelease(p *dyn) {
	if !m.cfg.DeadValueRelease {
		return
	}
	if p.entryFreed || !p.hasExtDest || !p.completed || !p.closed || p.pendingReads > 0 || p.retired {
		return
	}
	p.entryFreed = true
	m.rfUsed--
}

// issueLoad applies the LSQ rules: a load may issue once every older store
// that could alias it (per the compiler's alias classes) has computed its
// address; an overlapping in-flight store forwards its data.
func (m *Machine) issueLoad(d *dyn, t uint64) (uint64, bool) {
	var fwd *dyn
	for i, ns := 0, m.stores.len(); i < ns; i++ {
		s := m.stores.at(i)
		if s.seq >= d.seq {
			break
		}
		if !s.issued {
			if mayAlias(d, s) {
				return 0, false // older store address unknown
			}
			continue
		}
		if s.addr < d.addr+d.memBytes && d.addr < s.addr+s.memBytes {
			fwd = s // youngest overlapping store wins
		}
	}
	agu := t + uint64(m.cfg.LatAGU)
	if fwd != nil {
		done := agu + 1
		if fwd.execDone+1 > done {
			done = fwd.execDone + 1
		}
		return done, true
	}
	return agu + uint64(m.hier.AccessD(d.addr)), true
}

// mayAlias mirrors the braid compiler's static disambiguation.
func mayAlias(a, b *dyn) bool {
	if a.aliasClass == 0 || b.aliasClass == 0 {
		return true
	}
	return a.aliasClass == b.aliasClass
}

// Simulate is the package's main entry point: run program p on cfg.
func Simulate(p *isa.Program, cfg Config) (*Stats, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// checkInvariants asserts per-cycle internal consistency; enabled by
// Config.Paranoid (tests). Violations panic: they are simulator bugs, never
// program behavior.
func (m *Machine) checkInvariants(t uint64) {
	if m.rfUsed < 0 || m.rfUsed > m.cfg.RFEntries+1 {
		panic(fmt.Sprintf("uarch: cycle %d: rfUsed %d out of range [0,%d+1]", t, m.rfUsed, m.cfg.RFEntries))
	}
	if m.readPortsUsed > m.cfg.RFReadPorts || m.writePortsUsed > m.cfg.RFWritePorts {
		panic(fmt.Sprintf("uarch: cycle %d: port counters exceed limits (%d/%d reads, %d/%d writes)",
			t, m.readPortsUsed, m.cfg.RFReadPorts, m.writePortsUsed, m.cfg.RFWritePorts))
	}
	if m.bypassUsed > m.cfg.BypassValues || m.fusUsed > m.cfg.TotalFUs || m.issuedThisCycle > m.cfg.IssueWidth {
		panic(fmt.Sprintf("uarch: cycle %d: execution counters exceed limits", t))
	}
	var prev uint64
	for i := 0; i < m.rob.len(); i++ {
		d := m.rob.at(i)
		if d.seq <= prev {
			panic(fmt.Sprintf("uarch: cycle %d: rob[%d] out of age order", t, i))
		}
		prev = d.seq
		if d.retired {
			panic(fmt.Sprintf("uarch: cycle %d: retired instruction still in rob", t))
		}
		if d.refs < 0 {
			panic(fmt.Sprintf("uarch: cycle %d: seq %d has negative refcount", t, d.seq))
		}
	}
	cal := 0
	for _, b := range m.wbcal {
		cal += len(b)
		for _, d := range b {
			if !d.issued || d.completed {
				panic(fmt.Sprintf("uarch: cycle %d: completion calendar holds seq %d issued=%v completed=%v",
					t, d.seq, d.issued, d.completed))
			}
		}
	}
	if cal != m.wbCount {
		panic(fmt.Sprintf("uarch: cycle %d: calendar count %d != %d", t, m.wbCount, cal))
	}
	for _, d := range m.wbstall {
		if !d.issued || d.completed {
			panic(fmt.Sprintf("uarch: cycle %d: writeback stall list holds seq %d issued=%v completed=%v",
				t, d.seq, d.issued, d.completed))
		}
	}
	prev = 0
	for i := 0; i < m.stores.len(); i++ {
		s := m.stores.at(i)
		if s.seq <= prev {
			panic(fmt.Sprintf("uarch: cycle %d: stores[%d] out of age order", t, i))
		}
		prev = s.seq
	}
	if bc, ok := m.cre.(*braidCore); ok {
		bc.checkInvariants(t)
	}
}
