// Package chaos is a programmable fault-injecting reverse proxy for braidd
// backends. A Proxy sits between a client pool and one real backend and
// consults a Schedule on every request: the schedule decides whether the
// request passes through untouched or suffers one of a menu of faults —
// overload statuses, raw connection resets, added latency, slow-loris
// dribbles, truncated bodies, or corrupted-but-well-formed JSON. Soak tests
// and the braidchaos CLI both build on it, so there is exactly one
// fault-injection implementation to keep honest.
package chaos

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"strconv"
	"sync/atomic"
	"time"
)

// Kind enumerates the injectable faults.
type Kind int

const (
	// Pass forwards the request to the backend untouched.
	Pass Kind = iota
	// Status answers with Fault.Status (default 503) without contacting the
	// backend; Fault.RetryAfter, when set, becomes the Retry-After header.
	Status
	// Reset hijacks the connection and closes it with SO_LINGER 0, so the
	// client sees a TCP RST rather than a graceful FIN.
	Reset
	// Latency sleeps Fault.Delay, then forwards the request untouched.
	Latency
	// SlowLoris forwards the request, then dribbles the response one byte
	// every Fault.Delay for Fault.KeepBytes bytes and resets the connection.
	SlowLoris
	// Truncate forwards the request and relays the response's headers with
	// the true Content-Length, but delivers only Fault.KeepBytes body bytes
	// before closing, so the client reads an unexpected EOF.
	Truncate
	// Corrupt forwards the request and relays the response intact except for
	// one digit inside the "stats" object flipped to a different digit: the
	// body stays the same length and stays valid JSON, so only an end-to-end
	// integrity check can notice.
	Corrupt

	nKinds = iota
)

var kindNames = [nKinds]string{"pass", "status", "reset", "latency", "slowloris", "truncate", "corrupt"}

func (k Kind) String() string {
	if k >= 0 && int(k) < nKinds {
		return kindNames[k]
	}
	return fmt.Sprintf("chaos.Kind(%d)", int(k))
}

// ParseKind resolves a fault-kind name used by the braidchaos CLI. "429"
// and "503" are accepted as shorthand for Status faults with that code.
func ParseKind(s string) (Fault, error) {
	switch s {
	case "pass":
		return Fault{Kind: Pass}, nil
	case "429":
		return Fault{Kind: Status, Status: http.StatusTooManyRequests, RetryAfter: "1"}, nil
	case "503", "5xx", "status":
		return Fault{Kind: Status, Status: http.StatusServiceUnavailable}, nil
	case "reset", "rst":
		return Fault{Kind: Reset}, nil
	case "latency":
		return Fault{Kind: Latency, Delay: 100 * time.Millisecond}, nil
	case "slowloris":
		return Fault{Kind: SlowLoris, Delay: 10 * time.Millisecond}, nil
	case "truncate":
		return Fault{Kind: Truncate}, nil
	case "corrupt":
		return Fault{Kind: Corrupt}, nil
	}
	return Fault{}, fmt.Errorf("chaos: unknown fault kind %q", s)
}

// Fault is one scheduled outcome for one request.
type Fault struct {
	Kind       Kind
	Status     int           // Status faults: HTTP code (default 503)
	RetryAfter string        // Status faults: Retry-After header value, if nonempty
	Delay      time.Duration // Latency: added delay; SlowLoris: per-byte delay
	KeepBytes  int           // Truncate/SlowLoris: body bytes delivered (default 12)
}

// Schedule decides the fault for one request. n is the 1-based sequence
// number of simulate requests seen so far (other paths observe the current
// count without advancing it), so schedules can express cadences like
// "every third simulate".
type Schedule func(r *http.Request, n int64) Fault

// Proxy is an http.Handler fronting one backend with scheduled faults.
type Proxy struct {
	backend *url.URL
	sched   Schedule
	rp      *httputil.ReverseProxy
	client  *http.Client

	seq    atomic.Int64 // simulate requests seen
	total  atomic.Int64 // faults injected (anything but Pass)
	byKind [nKinds]atomic.Int64
}

// New builds a proxy for backendURL driven by sched. A nil schedule passes
// everything through.
func New(backendURL string, sched Schedule) (*Proxy, error) {
	u, err := url.Parse(backendURL)
	if err != nil {
		return nil, fmt.Errorf("chaos: backend url: %w", err)
	}
	if sched == nil {
		sched = func(*http.Request, int64) Fault { return Fault{Kind: Pass} }
	}
	return &Proxy{
		backend: u,
		sched:   sched,
		rp:      httputil.NewSingleHostReverseProxy(u),
		client:  &http.Client{},
	}, nil
}

// Faults is the total number of injected (non-Pass) faults.
func (p *Proxy) Faults() int64 { return p.total.Load() }

// Injected is the number of injected faults of one kind.
func (p *Proxy) Injected(k Kind) int64 {
	if k < 0 || int(k) >= nKinds {
		return 0
	}
	return p.byKind[k].Load()
}

// Counters renders the per-kind fault counts, for logs.
func (p *Proxy) Counters() string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "%d faults", p.total.Load())
	for k := 1; k < nKinds; k++ {
		if n := p.byKind[k].Load(); n > 0 {
			fmt.Fprintf(&b, " %s=%d", Kind(k).String(), n)
		}
	}
	return b.String()
}

func isSimulate(r *http.Request) bool {
	return r.Method == http.MethodPost && r.URL.Path == "/v1/simulate"
}

func (p *Proxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	n := p.seq.Load()
	if isSimulate(r) {
		n = p.seq.Add(1)
	}
	f := p.sched(r, n)
	if f.Kind != Pass {
		p.total.Add(1)
		p.byKind[f.Kind].Add(1)
	}
	switch f.Kind {
	case Status:
		status := f.Status
		if status == 0 {
			status = http.StatusServiceUnavailable
		}
		if f.RetryAfter != "" {
			w.Header().Set("Retry-After", f.RetryAfter)
		}
		w.WriteHeader(status)
	case Reset:
		reset(w)
	case Latency:
		time.Sleep(f.Delay)
		p.rp.ServeHTTP(w, r)
	case SlowLoris:
		p.slowLoris(w, r, f)
	case Truncate:
		p.truncate(w, r, f)
	case Corrupt:
		p.corrupt(w, r)
	default:
		p.rp.ServeHTTP(w, r)
	}
}

// reset closes the client connection with SO_LINGER 0 so the kernel sends a
// TCP RST instead of finishing the handshake politely — the closest a proxy
// can get to a backend process dying mid-request.
func reset(w http.ResponseWriter) {
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, _, err := hj.Hijack()
	if err != nil {
		return
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
	conn.Close()
}

// roundTrip performs the upstream request manually, so body-mangling faults
// can rewrite the response before relaying it.
func (p *Proxy) roundTrip(r *http.Request) (*http.Response, []byte, error) {
	u := *p.backend
	u.Path = r.URL.Path
	u.RawQuery = r.URL.RawQuery
	req, err := http.NewRequestWithContext(r.Context(), r.Method, u.String(), r.Body)
	if err != nil {
		return nil, nil, err
	}
	req.Header = r.Header.Clone()
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, nil, err
	}
	return resp, body, nil
}

func keepBytes(f Fault, n int) int {
	k := f.KeepBytes
	if k <= 0 {
		k = 12
	}
	if k > n {
		k = n
	}
	return k
}

// slowLoris relays the response status line and headers, then dribbles a few
// body bytes with a delay between each and resets the connection: the client
// is strung along exactly as long as its per-attempt timeout allows.
func (p *Proxy) slowLoris(w http.ResponseWriter, r *http.Request, f Fault) {
	resp, body, err := p.roundTrip(r)
	if err != nil {
		reset(w)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, bw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(bw, "HTTP/1.1 %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		resp.Status, len(body))
	bw.Flush()
	delay := f.Delay
	if delay <= 0 {
		delay = 5 * time.Millisecond
	}
	for i := 0; i < keepBytes(f, len(body)); i++ {
		if _, err := bw.Write(body[i : i+1]); err != nil {
			return
		}
		bw.Flush()
		select {
		case <-r.Context().Done():
			return
		case <-time.After(delay):
		}
	}
	if tc, ok := conn.(*net.TCPConn); ok {
		tc.SetLinger(0)
	}
}

// truncate relays the response headers with the full Content-Length but only
// KeepBytes of body, then closes: the client reads an unexpected EOF.
func (p *Proxy) truncate(w http.ResponseWriter, r *http.Request, f Fault) {
	resp, body, err := p.roundTrip(r)
	if err != nil {
		reset(w)
		return
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	conn, bw, err := hj.Hijack()
	if err != nil {
		return
	}
	defer conn.Close()
	fmt.Fprintf(bw, "HTTP/1.1 %s\r\nContent-Type: application/json\r\nContent-Length: %d\r\n\r\n",
		resp.Status, len(body))
	bw.Write(body[:keepBytes(f, len(body))])
	bw.Flush()
}

// corrupt relays the response intact — status, every header (integrity
// headers included), exact body length — except that one digit inside the
// "stats" object is flipped. The body still parses, so without an
// end-to-end integrity check the client would accept silently wrong Stats.
func (p *Proxy) corrupt(w http.ResponseWriter, r *http.Request) {
	resp, body, err := p.roundTrip(r)
	if err != nil {
		reset(w)
		return
	}
	body = corruptDigit(body)
	for k, vv := range resp.Header {
		for _, v := range vv {
			w.Header().Add(k, v)
		}
	}
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.WriteHeader(resp.StatusCode)
	w.Write(body)
}

// corruptDigit flips the first digit found after the "stats" key (falling
// back to the first digit anywhere) to a different digit, preserving length
// and JSON validity.
func corruptDigit(body []byte) []byte {
	out := append([]byte(nil), body...)
	start := bytes.Index(out, []byte(`"stats"`))
	if start < 0 {
		start = 0
	}
	for i := start; i < len(out); i++ {
		if out[i] >= '0' && out[i] <= '9' {
			out[i] = '0' + (out[i]-'0'+1)%10
			return out
		}
	}
	return out
}

// EveryN is a Schedule injecting faults on every nth simulate request,
// cycling through the given faults in order; every other request — health
// checks included — passes through. EveryN(3, f429, fRST) reproduces the
// original flaky-backend soak: every third simulate faulted, alternating
// shed and reset.
func EveryN(n int64, faults ...Fault) Schedule {
	if n <= 0 || len(faults) == 0 {
		return func(*http.Request, int64) Fault { return Fault{Kind: Pass} }
	}
	return func(r *http.Request, seq int64) Fault {
		if !isSimulate(r) || seq == 0 || seq%n != 0 {
			return Fault{Kind: Pass}
		}
		return faults[(seq/n-1)%int64(len(faults))]
	}
}

// Flapper is a time-based backend flap: starting in the down phase, the
// backend resets every connection (health checks included) for down, then
// behaves for up, repeating. It models a backend crash-looping or a network
// partition healing and re-breaking mid-sweep.
type Flapper struct {
	down, up time.Duration
	start    time.Time
	force    atomic.Int32 // 0: follow the clock, 1: force up, 2: force down
}

// Flap builds a Flapper that is down for down, then up for up, repeatedly,
// starting (immediately) with the down phase.
func Flap(down, up time.Duration) *Flapper {
	return &Flapper{down: down, up: up, start: time.Now()}
}

// Force pins the flapper to a phase regardless of the clock: up pins it
// healthy, !up pins it down. Tests use this for deterministic transitions.
func (f *Flapper) Force(up bool) {
	if up {
		f.force.Store(1)
	} else {
		f.force.Store(2)
	}
}

// IsDown reports whether the flapper is currently in its down phase.
func (f *Flapper) IsDown() bool {
	switch f.force.Load() {
	case 1:
		return false
	case 2:
		return true
	}
	period := f.down + f.up
	if period <= 0 {
		return false
	}
	return time.Since(f.start)%period < f.down
}

// Schedule is the Flapper's Schedule: while down, every request resets.
func (f *Flapper) Schedule(r *http.Request, n int64) Fault {
	if f.IsDown() {
		return Fault{Kind: Reset}
	}
	return Fault{Kind: Pass}
}

// Chain composes schedules: the first non-Pass fault wins. A flapping
// backend that also corrupts every fifth response while up is
// Chain(flapper.Schedule, EveryN(5, Fault{Kind: Corrupt})).
func Chain(scheds ...Schedule) Schedule {
	return func(r *http.Request, n int64) Fault {
		for _, s := range scheds {
			if f := s(r, n); f.Kind != Pass {
				return f
			}
		}
		return Fault{Kind: Pass}
	}
}
