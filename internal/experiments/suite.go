package experiments

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// Bench is one prepared benchmark: the generated program, its braided
// translation, and cached characterization.
type Bench struct {
	Name    string
	FP      bool
	Profile workload.Profile
	Orig    *isa.Program
	Braided *isa.Program
	Compile *braid.Result

	DynStats   braid.Stats        // execution-weighted Tables 1-3 statistics
	ValueStats *interp.ValueStats // §1 fanout/lifetime statistics
	DynInstrs  uint64
}

// Workloads is the prepared suite plus a simulation cache. The cache is safe
// for concurrent use and duplicate-suppressing: when several goroutines ask
// for the same (benchmark, braided, config) point, exactly one runs the
// simulation and the rest wait for its result.
type Workloads struct {
	Benches []*Bench

	jobs int // worker-pool width for IPCAll and EachBench

	mu   sync.Mutex
	memo map[memoKey]*memoCell

	simRuns   atomic.Uint64 // simulations actually executed (not memo hits)
	simCycles atomic.Uint64 // machine cycles across executed simulations
	simInstrs atomic.Uint64 // retired instructions across executed simulations
}

type memoKey struct {
	bench   string
	braided bool
	cfg     uarch.Config
}

// memoCell is one in-flight or finished simulation; done is closed when ipc
// and err are final (a per-key latch, so duplicates wait instead of re-run).
type memoCell struct {
	done chan struct{}
	ipc  float64
	err  error
}

// Point names one simulation of the suite: a benchmark, which binary to run,
// and the machine configuration.
type Point struct {
	Bench   *Bench
	Braided bool
	Cfg     uarch.Config
}

// defaultJobs resolves a worker count: n if positive, else all processors.
func defaultJobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Jobs reports the suite's worker-pool width.
func (w *Workloads) Jobs() int { return w.jobs }

// SetJobs bounds the worker pool used by IPCAll and EachBench; n <= 0 means
// one worker per processor.
func (w *Workloads) SetJobs(n int) { w.jobs = defaultJobs(n) }

// SimRuns reports how many simulations actually ran (memo misses); used by
// tests to assert duplicate suppression.
func (w *Workloads) SimRuns() uint64 { return w.simRuns.Load() }

// SimInstrs reports the total instructions retired across the simulations
// that actually ran; together with wall-clock time it yields simulator
// throughput (instructions per second).
func (w *Workloads) SimInstrs() uint64 { return w.simInstrs.Load() }

// SimCycles reports the total machine cycles across the simulations that
// actually ran.
func (w *Workloads) SimCycles() uint64 { return w.simCycles.Load() }

// LoadSuite generates and braids all 26 benchmarks, each calibrated to about
// dynTarget dynamic instructions, and precomputes their characterization,
// preparing one benchmark per processor at a time.
func LoadSuite(dynTarget uint64) (*Workloads, error) {
	return LoadSuiteJobs(dynTarget, 0)
}

// LoadSuiteJobs is LoadSuite with an explicit worker-pool width (jobs <= 0
// means one worker per processor). The suite order is deterministic —
// workload.Profiles order — regardless of which preparation finishes first.
func LoadSuiteJobs(dynTarget uint64, jobs int) (*Workloads, error) {
	if dynTarget < 1000 {
		return nil, fmt.Errorf("experiments: dynTarget %d too small", dynTarget)
	}
	w := &Workloads{memo: map[memoKey]*memoCell{}, jobs: defaultJobs(jobs)}
	benches, err := parallelMap(w.jobs, workload.Profiles(), func(prof workload.Profile) (*Bench, error) {
		b, err := prepare(prof, dynTarget)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", prof.Name, err)
		}
		return b, nil
	})
	if err != nil {
		return nil, err
	}
	w.Benches = benches
	return w, nil
}

// parallelMap applies fn to every item through a bounded worker pool and
// returns the results in input order. The first error wins; remaining items
// still run (workers drain the queue) but their results are discarded.
func parallelMap[T, R any](jobs int, items []T, fn func(T) (R, error)) ([]R, error) {
	if jobs > len(items) {
		jobs = len(items)
	}
	if jobs <= 1 {
		out := make([]R, len(items))
		for i, it := range items {
			r, err := fn(it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	out := make([]R, len(items))
	work := make(chan int)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r, err := fn(items[i])
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					continue
				}
				out[i] = r
			}
		}()
	}
	for i := range items {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

func prepare(prof workload.Profile, dynTarget uint64) (*Bench, error) {
	// Calibrate the iteration count with a short probe run.
	const probeIters = 8
	probe, err := workload.Generate(prof, probeIters)
	if err != nil {
		return nil, err
	}
	fs, err := interp.RunProgram(probe, 10_000_000)
	if err != nil {
		return nil, err
	}
	perIter := fs.Steps / probeIters
	if perIter == 0 {
		perIter = 1
	}
	iters := int(dynTarget / perIter)
	if iters < 4 {
		iters = 4
	}
	if iters > isa.ImmMax {
		iters = isa.ImmMax
	}

	orig, err := workload.Generate(prof, iters)
	if err != nil {
		return nil, err
	}
	res, err := braid.Compile(orig, braid.Options{})
	if err != nil {
		return nil, err
	}
	b := &Bench{
		Name:    prof.Name,
		FP:      prof.FP,
		Profile: prof,
		Orig:    orig,
		Braided: res.Prog,
		Compile: res,
	}

	// Execution-weighted braid statistics (Tables 1-3).
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	steps, err := m.Run(50_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) })
	if err != nil {
		return nil, err
	}
	b.DynStats = ds.Stats()
	b.DynInstrs = steps

	// §1 value fanout/lifetime statistics over the original program.
	vs, err := interp.Characterize(orig, 50_000_000)
	if err != nil {
		return nil, err
	}
	b.ValueStats = vs
	return b, nil
}

// IPC simulates one benchmark under cfg (braided selects the braid-compiled
// binary) and caches the result. Safe for concurrent use: the first caller
// of a point runs the simulation, concurrent duplicates block on its latch.
func (w *Workloads) IPC(b *Bench, braided bool, cfg uarch.Config) (float64, error) {
	key := memoKey{b.Name, braided, cfg}
	w.mu.Lock()
	if c, ok := w.memo[key]; ok {
		w.mu.Unlock()
		<-c.done
		return c.ipc, c.err
	}
	c := &memoCell{done: make(chan struct{})}
	w.memo[key] = c
	w.mu.Unlock()

	w.simRuns.Add(1)
	p := b.Orig
	if braided {
		p = b.Braided
	}
	st, err := uarch.Simulate(p, cfg)
	if err != nil {
		c.err = fmt.Errorf("%s (%s braided=%v): %w", b.Name, cfg.Core, braided, err)
	} else {
		c.ipc = st.IPC()
		w.simInstrs.Add(st.Retired)
		w.simCycles.Add(st.Cycles)
	}
	close(c.done)
	return c.ipc, c.err
}

// IPCAll simulates every point through the bounded worker pool and returns
// the IPC for each. Duplicate points (and points already memoized) cost one
// simulation total. The map is keyed by the exact Point values passed in.
func (w *Workloads) IPCAll(points []Point) (map[Point]float64, error) {
	ipcs, err := parallelMap(w.jobs, points, func(pt Point) (float64, error) {
		return w.IPC(pt.Bench, pt.Braided, pt.Cfg)
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Point]float64, len(points))
	for i, pt := range points {
		out[pt] = ipcs[i]
	}
	return out, nil
}

// EachBench runs fn over every benchmark through the bounded worker pool and
// applies the returned record closures in suite order, so Result grids come
// out deterministic no matter which benchmark finishes first.
func (w *Workloads) EachBench(fn func(b *Bench) (func(), error)) error {
	records, err := parallelMap(w.jobs, w.Benches, fn)
	if err != nil {
		return err
	}
	for _, rec := range records {
		rec()
	}
	return nil
}
