package isa

import (
	"bytes"
	"strings"
	"testing"
)

func imageProgram() *Program {
	p := &Program{
		Name: "img-test",
		FP:   true,
		Data: []byte{1, 2, 3, 4, 5, 6, 7, 8, 9},
		Instrs: []Instruction{
			{Op: OpLDIMM, Dest: 1, Imm: 42, HasImm: true},
			{Op: OpADD, Dest: 2, Src1: 1, Src2: 1, Start: true, EDest: true},
			{Op: OpADD, Src1: 1, Imm: 1, HasImm: true, IDest: true, IDestIdx: 3, Start: true},
			{Op: OpSTQ, Src1: 2, Src2: 1, Imm: 8, AliasClass: 2},
			{Op: OpHALT},
		},
	}
	for i := range p.Instrs {
		p.Instrs[i].Canonicalize()
	}
	return p
}

func TestImageRoundTrip(t *testing.T) {
	p := imageProgram()
	var buf bytes.Buffer
	if err := WriteImage(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.FP != p.FP {
		t.Errorf("metadata changed: %q/%v -> %q/%v", p.Name, p.FP, q.Name, q.FP)
	}
	if !bytes.Equal(q.Data, p.Data) {
		t.Errorf("data changed: %v -> %v", p.Data, q.Data)
	}
	if len(q.Instrs) != len(p.Instrs) {
		t.Fatalf("instr count changed")
	}
	for i := range q.Instrs {
		if q.Instrs[i] != p.Instrs[i] {
			t.Errorf("instr %d changed: %+v -> %+v", i, p.Instrs[i], q.Instrs[i])
		}
	}
}

func TestImageEmptyData(t *testing.T) {
	p := &Program{Name: "", Instrs: []Instruction{{Op: OpHALT}}}
	var buf bytes.Buffer
	if err := WriteImage(&buf, p); err != nil {
		t.Fatal(err)
	}
	q, err := ReadImage(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Data) != 0 || len(q.Instrs) != 1 {
		t.Errorf("unexpected content: %d data, %d instrs", len(q.Data), len(q.Instrs))
	}
}

func TestImageRejectsCorruption(t *testing.T) {
	p := imageProgram()
	var buf bytes.Buffer
	if err := WriteImage(&buf, p); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bad magic", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[0] = 'X'
			return c
		}},
		{"truncated header", func(b []byte) []byte { return b[:10] }},
		{"truncated body", func(b []byte) []byte { return b[:len(b)-4] }},
		{"huge instr count", func(b []byte) []byte {
			c := append([]byte(nil), b...)
			c[12], c[13], c[14], c[15] = 0xff, 0xff, 0xff, 0x7f
			return c
		}},
		{"empty", func(b []byte) []byte { return nil }},
	}
	for _, c := range cases {
		if _, err := ReadImage(bytes.NewReader(c.mangle(good))); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestImageRejectsInvalidProgram(t *testing.T) {
	// A syntactically decodable image whose program fails validation
	// (no halt at the end).
	p := &Program{Name: "bad", Instrs: []Instruction{{Op: OpNOP}}}
	var buf bytes.Buffer
	words, _ := p.EncodeAll()
	buf.Write([]byte("BRD64\x00\x01\x00"))
	for _, v := range []uint32{uint32(len(p.Name)), uint32(len(words)), 0, 0} {
		buf.WriteByte(byte(v))
		buf.WriteByte(byte(v >> 8))
		buf.WriteByte(byte(v >> 16))
		buf.WriteByte(byte(v >> 24))
	}
	buf.WriteString(p.Name)
	for _, w := range words {
		var tmp [8]byte
		for i := 0; i < 8; i++ {
			tmp[i] = byte(w >> (8 * uint(i)))
		}
		buf.Write(tmp[:])
	}
	if _, err := ReadImage(&buf); err == nil || !strings.Contains(err.Error(), "halt") {
		t.Errorf("invalid program accepted or wrong error: %v", err)
	}
}
