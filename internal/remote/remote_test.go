package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"braid/internal/experiments"
	"braid/internal/isa"
	"braid/internal/service"
	"braid/internal/uarch"
	"braid/internal/workload"
)

func mustKernel(t *testing.T, name string) *isa.Program {
	t.Helper()
	p, ok := workload.KernelByName(name)
	if !ok {
		t.Fatalf("kernel %q missing", name)
	}
	return p
}

func TestRingDeterministicAndComplete(t *testing.T) {
	backends := []string{"http://a:1", "http://b:1", "http://c:1"}
	r := newRing(backends, 64)
	hits := make([]int, len(backends))
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		c1 := r.candidates(key)
		c2 := r.candidates(key)
		if len(c1) != len(backends) {
			t.Fatalf("candidates(%q) = %v, want all %d backends", key, c1, len(backends))
		}
		seen := map[int]bool{}
		for j, b := range c1 {
			if b != c2[j] {
				t.Fatalf("candidates(%q) not deterministic: %v vs %v", key, c1, c2)
			}
			if seen[b] {
				t.Fatalf("candidates(%q) repeats backend %d: %v", key, b, c1)
			}
			seen[b] = true
		}
		hits[c1[0]]++
	}
	for i, n := range hits {
		if n == 0 {
			t.Errorf("backend %d owns no keys out of 1000: distribution %v", i, hits)
		}
	}
}

func TestRingOwnerStableAcrossFleetGrowth(t *testing.T) {
	small := newRing([]string{"http://a:1", "http://b:1"}, 64)
	big := newRing([]string{"http://a:1", "http://b:1", "http://c:1"}, 64)
	moved := 0
	const n = 1000
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("key-%d", i)
		before, after := small.candidates(key)[0], big.candidates(key)[0]
		if before != after && after != 2 {
			// Keys may move TO the new backend; moving between the two
			// existing ones defeats the point of consistent hashing.
			moved++
		}
	}
	if moved > n/20 {
		t.Errorf("%d/%d keys moved between surviving backends when one was added", moved, n)
	}
}

func TestNewPoolNormalizesBackends(t *testing.T) {
	p, err := NewPool(Options{Backends: []string{" 127.0.0.1:9 ", "http://x/", ""}})
	if err != nil {
		t.Fatal(err)
	}
	got := p.Backends()
	want := []string{"http://127.0.0.1:9", "http://x"}
	if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
		t.Errorf("Backends() = %v, want %v", got, want)
	}
	if _, err := NewPool(Options{}); err == nil {
		t.Error("NewPool with no backends did not fail")
	}
	if _, err := NewPool(Options{Backends: []string{"  ", ""}}); err == nil {
		t.Error("NewPool with blank backends did not fail")
	}
}

// fakeBackend returns canned Stats for every simulate call and counts hits.
func fakeBackend(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	st, _ := json.Marshal(&uarch.Stats{Cycles: 100, Retired: 200})
	return httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"stats":%s,"source":"run"}`, st)
	}))
}

// TestRoutingStickiness: the same point always lands on the same backend, so
// repeats hit that backend's result cache rather than fanning out.
func TestRoutingStickiness(t *testing.T) {
	var hits [3]atomic.Int64
	var urls []string
	for i := range hits {
		ts := fakeBackend(t, &hits[i])
		defer ts.Close()
		urls = append(urls, ts.URL)
	}
	pool, err := NewPool(Options{Backends: urls})
	if err != nil {
		t.Fatal(err)
	}
	p, cfg := mustKernel(t, "dot"), uarch.OutOfOrderConfig(8)
	for i := 0; i < 10; i++ {
		if _, err := pool.Simulate(context.Background(), p, cfg); err != nil {
			t.Fatal(err)
		}
	}
	owners := 0
	for i := range hits {
		if n := hits[i].Load(); n > 0 {
			owners++
			if n != 10 {
				t.Errorf("owning backend %d served %d of 10 requests", i, n)
			}
		}
	}
	if owners != 1 {
		t.Errorf("%d backends served one repeated point, want exactly 1", owners)
	}
	if got := pool.Snapshot().Requests; got != 10 {
		t.Errorf("requests = %d, want 10", got)
	}
}

// TestRetryHonors429: a shed backend with a Retry-After hint is retried (with
// the hint capped by MaxBackoff, so a long hint cannot stall failover) until
// it recovers.
func TestRetryHonors429(t *testing.T) {
	var calls atomic.Int64
	st, _ := json.Marshal(&uarch.Stats{Cycles: 1, Retired: 1})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "30") // way beyond MaxBackoff
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		fmt.Fprintf(w, `{"stats":%s,"source":"run"}`, st)
	}))
	defer ts.Close()

	pool, err := NewPool(Options{
		Backends:    []string{ts.URL},
		BaseBackoff: time.Millisecond,
		MaxBackoff:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t0 := time.Now()
	res, err := pool.SimulateFull(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts != 3 {
		t.Errorf("attempts = %d, want 3 (two 429s then success)", res.Attempts)
	}
	if got := pool.Snapshot().Retries; got != 2 {
		t.Errorf("retries = %d, want 2", got)
	}
	if elapsed := time.Since(t0); elapsed > 2*time.Second {
		t.Errorf("retry loop took %v; the 30s Retry-After hint was not capped", elapsed)
	}
}

// TestFailoverAroundDeadBackend: a point owned by an unreachable backend
// fails over in ring order and still succeeds.
func TestFailoverAroundDeadBackend(t *testing.T) {
	var hits atomic.Int64
	live := fakeBackend(t, &hits)
	defer live.Close()
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close() // connection refused from now on

	pool, err := NewPool(Options{
		Backends:    []string{dead.URL, live.URL},
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Run several distinct points so some are owned by the dead backend.
	for _, k := range []string{"dot", "matmul", "fig2"} {
		for w := 2; w <= 8; w *= 2 {
			if _, err := pool.Simulate(context.Background(), mustKernel(t, k), uarch.OutOfOrderConfig(w)); err != nil {
				t.Fatalf("%s/%d: %v", k, w, err)
			}
		}
	}
	s := pool.Snapshot()
	if s.Failovers == 0 {
		t.Error("no failovers recorded; every point landed on the live backend by luck?")
	}
	if s.PerBackend[pool.Backends()[0]] != 0 {
		t.Error("dead backend recorded successful responses")
	}
	if s.PerBackend[pool.Backends()[1]] != 9 {
		t.Errorf("live backend served %d of 9 points", s.PerBackend[pool.Backends()[1]])
	}
}

// TestTerminalErrorsTranslate: structured backend failures come back in the
// local error taxonomy with no retries burned.
func TestTerminalErrorsTranslate(t *testing.T) {
	for _, tc := range []struct {
		kind   string
		status int
		check  func(error) bool
		want   string
	}{
		{"sim_fault", 422, func(err error) bool {
			var sf *uarch.SimFault
			return errors.As(err, &sf) && sf.Cycle == 42 && experiments.Contained(err)
		}, "a contained *uarch.SimFault at cycle 42"},
		{"cycle_limit", 422, func(err error) bool {
			return errors.Is(err, uarch.ErrCycleLimit) && experiments.Contained(err)
		}, "ErrCycleLimit"},
		{"deadline", 504, func(err error) bool {
			return errors.Is(err, uarch.ErrTimeout) && experiments.Transient(err)
		}, "a transient ErrTimeout"},
		{"bad_request", 400, func(err error) bool {
			return !experiments.Contained(err) && !experiments.Transient(err)
		}, "a terminal error"},
	} {
		var calls atomic.Int64
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			calls.Add(1)
			w.WriteHeader(tc.status)
			fmt.Fprintf(w, `{"error":{"kind":%q,"message":"boom","cycle":42}}`, tc.kind)
		}))
		pool, err := NewPool(Options{Backends: []string{ts.URL}, BaseBackoff: time.Millisecond})
		if err != nil {
			t.Fatal(err)
		}
		_, err = pool.Simulate(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
		if err == nil || !tc.check(err) {
			t.Errorf("%s: got %v, want %s", tc.kind, err, tc.want)
		}
		if n := calls.Load(); n != 1 {
			t.Errorf("%s: %d attempts, want 1 (terminal errors must not retry)", tc.kind, n)
		}
		ts.Close()
	}
}

// TestAllBackendsDownIsTransient: exhausting every attempt yields Unavailable,
// which the experiment layer treats as transient — the memo key is not
// poisoned and a recovered fleet can rerun the point.
func TestAllBackendsDownIsTransient(t *testing.T) {
	dead := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	dead.Close()
	pool, err := NewPool(Options{
		Backends:    []string{dead.URL},
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  2 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.Simulate(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	var u *Unavailable
	if !errors.As(err, &u) {
		t.Fatalf("got %v, want *Unavailable", err)
	}
	if u.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", u.Attempts)
	}
	if !experiments.Transient(err) {
		t.Error("Unavailable not classified transient")
	}
	if _, err := pool.Ping(context.Background()); err == nil {
		t.Error("Ping succeeded against a dead fleet")
	}
}

// TestHedgeWinsOnStraggler: a point owned by a stalled backend is answered by
// the hedge on the next backend instead of waiting out the straggler.
func TestHedgeWinsOnStraggler(t *testing.T) {
	stall := make(chan struct{})
	st, _ := json.Marshal(&uarch.Stats{Cycles: 7, Retired: 7})
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		select {
		case <-stall:
		case <-r.Context().Done():
			return
		}
		fmt.Fprintf(w, `{"stats":%s,"source":"run"}`, st)
	}))
	defer slow.Close()
	defer close(stall) // LIFO: unblock the handler before Close waits on it
	var fastHits atomic.Int64
	fast := fakeBackend(t, &fastHits)
	defer fast.Close()

	pool, err := NewPool(Options{
		Backends:   []string{slow.URL, fast.URL},
		Hedge:      true,
		HedgeFloor: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Search for a point the ring assigns to the slow backend, so the hedge
	// deterministically goes to the fast one.
	var prog = mustKernel(t, "dot")
	var cfg uarch.Config
	found := false
	for w := 1; w <= 64 && !found; w++ {
		cfg = uarch.OutOfOrderConfig(w)
		if _, key, err := encodeRequest(prog, cfg, 0, uarch.Sampling{}); err == nil && pool.ring.candidates(key)[0] == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("no kernel/width combination routed to the slow backend")
	}
	done := make(chan error, 1)
	var res *Result
	go func() {
		var err error
		res, err = pool.SimulateFull(context.Background(), prog, cfg)
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("hedge never rescued the stalled request")
	}
	if !res.Hedged {
		t.Error("winning response not marked hedged")
	}
	s := pool.Snapshot()
	if s.Hedges != 1 || s.HedgeWins != 1 {
		t.Errorf("hedges=%d wins=%d, want 1 and 1", s.Hedges, s.HedgeWins)
	}
	if fastHits.Load() == 0 {
		t.Error("fast backend never saw the hedge")
	}
}

// TestVerifyAgainstRealService: with VerifyEvery=1 every point is locally
// re-simulated and must match a real braidd bit for bit.
func TestVerifyAgainstRealService(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer ts.Close()
	pool, err := NewPool(Options{Backends: []string{ts.URL}, VerifyEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.SimulateFull(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("result not verified with VerifyEvery=1")
	}
	if got := pool.Snapshot().Verified; got != 1 {
		t.Errorf("verified = %d, want 1", got)
	}
}

// TestVerifyDetectsDivergence: a backend serving wrong Stats is caught, not
// silently folded into the sweep.
func TestVerifyDetectsDivergence(t *testing.T) {
	st, _ := json.Marshal(&uarch.Stats{Cycles: 1, Retired: 1}) // a lie
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintf(w, `{"stats":%s,"source":"run"}`, st)
	}))
	defer ts.Close()
	pool, err := NewPool(Options{Backends: []string{ts.URL}, VerifyEvery: 1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = pool.Simulate(context.Background(), mustKernel(t, "dot"), uarch.OutOfOrderConfig(8))
	var ve *VerifyError
	if !errors.As(err, &ve) {
		t.Fatalf("got %v, want *VerifyError", err)
	}
}

// TestRemoteMatchesLocalBitForBit: against a real service, the pool's Stats
// are byte-identical to in-process simulation for every core kind.
func TestRemoteMatchesLocalBitForBit(t *testing.T) {
	ts := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
	defer ts.Close()
	pool, err := NewPool(Options{Backends: []string{ts.URL}})
	if err != nil {
		t.Fatal(err)
	}
	prog := mustKernel(t, "matmul")
	for _, cfg := range []uarch.Config{
		uarch.OutOfOrderConfig(8),
		uarch.InOrderConfig(4),
		uarch.DepSteerConfig(8),
	} {
		local, err := uarch.SimulateChecked(context.Background(), prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := pool.SimulateFull(context.Background(), prog, cfg)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := json.Marshal(local)
		if string(want) != string(res.RawStats) {
			t.Errorf("%s: remote stats differ:\n remote: %s\n  local: %s", cfg.Core, res.RawStats, want)
		}
		if wc := uarch.EstimateComplexity(cfg).Total(); res.Complexity != wc {
			t.Errorf("%s: remote complexity %.0f, want %.0f", cfg.Core, res.Complexity, wc)
		}
	}
}

// TestHedgeCancelsLoser: when the hedge wins, the primary's in-flight HTTP
// request must be torn down immediately — its per-attempt context is
// canceled the moment the winner returns, not whenever the pool next feels
// like it. The slow backend blocks until its request context dies and
// reports how long that took.
func TestHedgeCancelsLoser(t *testing.T) {
	cancelled := make(chan struct{}, 1)
	slow := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		// Drain the body: the server only watches for client disconnect
		// (which is what cancels r.Context) once the handler has consumed
		// the request. The real braidd handler decodes the body up front.
		io.Copy(io.Discard, r.Body)
		<-r.Context().Done()
		select {
		case cancelled <- struct{}{}:
		default:
		}
	}))
	defer slow.Close()
	st, _ := json.Marshal(&uarch.Stats{Cycles: 100, Retired: 200})
	fast := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"stats":%s,"source":"run"}`, st)
	}))
	defer fast.Close()

	pool, err := NewPool(Options{
		Backends: []string{slow.URL, fast.URL}, Hedge: true, MaxAttempts: 2,
		HedgeFloor: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Pre-fill the latency window so hedgeDelay is the floor, not the
	// conservative 250ms cold-start delay.
	pool.latMu.Lock()
	for i := range pool.latMS[:32] {
		pool.latMS[i] = 1
	}
	pool.latN = 32
	pool.latMu.Unlock()

	body, key, err := encodeRequest(mustKernel(t, "dot"), uarch.OutOfOrderConfig(8), 0, uarch.Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := pool.runHedged(context.Background(), key, body, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged {
		t.Error("fast hedge should have won against a wedged primary")
	}
	select {
	case <-cancelled:
	case <-time.After(3 * time.Second):
		t.Fatal("losing primary request was not canceled after the hedge won")
	}
	if s := pool.Snapshot(); s.Hedges < 1 || s.HedgeWins < 1 {
		t.Errorf("hedge counters: %d hedges, %d wins; want >= 1 each", s.Hedges, s.HedgeWins)
	}
}

// TestHedgedLoserFreesWorker: a hedged burst must not inflate workers_busy
// on the losing backend. The cold backend starts a multi-second simulation;
// the hedge lands on a backend whose cache already holds the point and wins
// in microseconds. Without loser cancellation the cold backend's worker
// stays busy for the entire simulation; with it, workers_busy and
// queue_depth drain to zero almost immediately.
func TestHedgedLoserFreesWorker(t *testing.T) {
	prof, ok := workload.ProfileByName("gcc")
	if !ok {
		t.Fatal("gcc profile missing")
	}
	// Calibrate the program so one exact simulation takes ~2.5s: long
	// enough that a leaked worker is unambiguous against the 1.2s drain
	// deadline below, short enough to keep the test quick.
	const calIters = 2000
	p, err := workload.Generate(prof, calIters)
	if err != nil {
		t.Fatal(err)
	}
	cfg := uarch.OutOfOrderConfig(8)
	t0 := time.Now()
	if _, err := uarch.SimulateChecked(context.Background(), p, cfg); err != nil {
		t.Fatal(err)
	}
	per := time.Since(t0)
	iters := int(float64(calIters) * float64(2500*time.Millisecond) / float64(per))
	if iters < calIters {
		iters = calIters
	}
	if iters > isa.ImmMax {
		iters = isa.ImmMax
	}
	p, err = workload.Generate(prof, iters)
	if err != nil {
		t.Fatal(err)
	}

	backends := [2]*httptest.Server{
		httptest.NewServer(service.New(service.Config{Workers: 2}).Handler()),
		httptest.NewServer(service.New(service.Config{Workers: 2}).Handler()),
	}
	defer backends[0].Close()
	defer backends[1].Close()

	pool, err := NewPool(Options{
		Backends: []string{backends[0].URL, backends[1].URL}, Hedge: true,
		MaxAttempts: 2, HedgeFloor: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	pool.latMu.Lock()
	for i := range pool.latMS[:32] {
		pool.latMS[i] = 1
	}
	pool.latN = 32
	pool.latMu.Unlock()

	// The ring decides which backend is primary for this point; pre-warm
	// the OTHER backend's cache so the hedge wins instantly while the
	// primary is still deep inside the long simulation.
	body, key, err := encodeRequest(p, cfg, 0, uarch.Sampling{})
	if err != nil {
		t.Fatal(err)
	}
	cands := pool.ring.candidates(key)
	cold, warm := backends[cands[0]], backends[cands[1]]
	resp, err := http.Post(warm.URL+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-warm status %d", resp.StatusCode)
	}

	start := time.Now()
	res, err := pool.SimulateFull(context.Background(), p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Hedged {
		t.Fatalf("expected the warm-cache hedge to win (took %s)", time.Since(start))
	}

	// The losing simulation still has seconds of work left; its worker
	// must be released well before that.
	deadline := time.Now().Add(1200 * time.Millisecond)
	for {
		resp, err := http.Get(cold.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var m map[string]any
		derr := json.NewDecoder(resp.Body).Decode(&m)
		resp.Body.Close()
		if derr != nil {
			t.Fatal(derr)
		}
		busy, _ := m["workers_busy"].(float64)
		depth, _ := m["queue_depth"].(float64)
		if busy == 0 && depth == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("losing backend still has workers_busy=%v queue_depth=%v after the hedge won — hedged loser was not canceled", busy, depth)
		}
		time.Sleep(25 * time.Millisecond)
	}
}
