package remote

import (
	"context"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"braid/internal/chaos"
	"braid/internal/experiments"
	"braid/internal/service"
	"braid/internal/uarch"
)

// newFlakyProxy fronts a healthy braidd with injected failures via the
// shared chaos proxy: every third simulate request is refused, alternating
// between a raw connection reset and a 429 with a Retry-After hint. Health
// checks pass through untouched so Ping sees a live fleet.
func newFlakyProxy(t *testing.T, backendURL string) (*httptest.Server, *chaos.Proxy) {
	t.Helper()
	p, err := chaos.New(backendURL, chaos.EveryN(3,
		chaos.Fault{Kind: chaos.Reset},
		chaos.Fault{Kind: chaos.Status, Status: http.StatusTooManyRequests, RetryAfter: "1"},
	))
	if err != nil {
		t.Fatal(err)
	}
	return httptest.NewServer(p), p
}

// TestFlakyBackendsConvergeBitIdentical is the distributed-execution
// soak: a parallel experiment sweep over two braidd backends that shed and
// reset connections on a third of their requests must converge — through
// retries, failover, and hedging — to exactly the IPC values in-process
// simulation produces, with zero contained failures and untouched
// memoization accounting.
func TestFlakyBackendsConvergeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed soak test")
	}

	var proxies []*chaos.Proxy
	var urls []string
	for i := 0; i < 2; i++ {
		backend := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
		defer backend.Close()
		proxy, fp := newFlakyProxy(t, backend.URL)
		defer proxy.Close()
		proxies = append(proxies, fp)
		urls = append(urls, proxy.URL)
	}

	pool, err := NewPool(Options{
		Backends:    urls,
		MaxAttempts: 16, // a third of requests fault; leave headroom to converge
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Hedge:       true,
		HedgeFloor:  time.Millisecond,
		VerifyEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	w, err := experiments.LoadSuiteJobs(1500, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The points: a slice of the suite across both binaries, with duplicates
	// so memoization is exercised under the remote runner too.
	var points []experiments.Point
	for _, b := range w.Benches[:6] {
		for _, braided := range []bool{false, true} {
			cfg := uarch.OutOfOrderConfig(8)
			if braided {
				cfg = uarch.BraidConfig(8)
			}
			points = append(points, experiments.Point{Bench: b, Braided: braided, Cfg: cfg})
		}
	}
	points = append(points, points...) // duplicates: one simulation each, total
	unique := len(points) / 2

	// Ground truth, in-process.
	want := make(map[experiments.Point]float64, unique)
	for _, pt := range points[:unique] {
		p := pt.Bench.Orig
		if pt.Braided {
			p = pt.Bench.Braided
		}
		st, err := uarch.SimulateChecked(context.Background(), p, pt.Cfg)
		if err != nil {
			t.Fatalf("local %s: %v", pt.Bench.Name, err)
		}
		want[pt] = st.IPC()
	}

	w.SetRunner(pool)
	w.SetJobs(8)
	got, err := w.IPCAll(points)
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	for pt, wantIPC := range want {
		gotIPC, ok := got[pt]
		if !ok {
			t.Errorf("%s braided=%v: missing from remote sweep", pt.Bench.Name, pt.Braided)
			continue
		}
		if gotIPC != wantIPC || math.IsNaN(gotIPC) {
			t.Errorf("%s braided=%v: remote IPC %v != local %v", pt.Bench.Name, pt.Braided, gotIPC, wantIPC)
		}
	}
	if fails := w.Failures(); len(fails) > 0 {
		t.Errorf("contained failures under flaky backends: %v", fails)
	}
	if runs := w.SimRuns(); runs != uint64(unique) {
		t.Errorf("sim runs = %d, want %d (memoization must absorb duplicates)", runs, unique)
	}

	s := pool.Snapshot()
	injected := proxies[0].Faults() + proxies[1].Faults()
	if injected == 0 {
		t.Fatal("the proxies never injected a fault; the soak proved nothing")
	}
	if s.Retries == 0 {
		t.Error("no retries despite injected faults")
	}
	t.Logf("pool: %s; injected faults: %d (%s | %s)",
		pool, injected, proxies[0].Counters(), proxies[1].Counters())
}
