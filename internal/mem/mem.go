// Package mem models the memory hierarchy of Table 4: a 64KB 4-way L1
// instruction cache (3-cycle), a 64KB 2-way L1 data cache (3-cycle), a
// unified 1MB 8-way L2 (6-cycle), and 400-cycle main memory. Caches are
// LRU, write-allocate, with timing returned as a total access latency; a
// perfect mode services every access at L1 latency for the Figure 1 study.
package mem

import "fmt"

// CacheConfig sizes one cache level.
type CacheConfig struct {
	SizeKB  int
	Assoc   int
	LineB   int // line size in bytes
	Latency int // cycles for a hit at this level
}

// Cache is one set-associative LRU cache level. The per-way state lives in
// flat slices indexed set*assoc+way, which keeps lookups on one cache line
// per set and makes Clone a handful of copies.
type Cache struct {
	cfg    CacheConfig
	sets   int
	lineSh uint
	tags   []uint64
	valid  []bool
	stamp  []uint64
	tick   uint64
	Hits   uint64
	Misses uint64
}

// NewCache builds a cache from its configuration.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if cfg.SizeKB <= 0 || cfg.Assoc <= 0 || cfg.LineB <= 0 {
		return nil, fmt.Errorf("mem: bad cache config %+v", cfg)
	}
	lines := cfg.SizeKB * 1024 / cfg.LineB
	sets := lines / cfg.Assoc
	if sets == 0 || sets&(sets-1) != 0 {
		return nil, fmt.Errorf("mem: cache %+v yields %d sets (must be a power of two)", cfg, sets)
	}
	sh := uint(0)
	for 1<<sh < cfg.LineB {
		sh++
	}
	c := &Cache{cfg: cfg, sets: sets, lineSh: sh}
	c.tags = make([]uint64, sets*cfg.Assoc)
	c.valid = make([]bool, sets*cfg.Assoc)
	c.stamp = make([]uint64, sets*cfg.Assoc)
	return c, nil
}

// Clone returns an independent copy of the cache, state and counters alike.
func (c *Cache) Clone() *Cache {
	n := &Cache{}
	*n = *c
	n.tags = append([]uint64(nil), c.tags...)
	n.valid = append([]bool(nil), c.valid...)
	n.stamp = append([]uint64(nil), c.stamp...)
	return n
}

// Access looks up addr, filling on miss, and reports whether it hit.
func (c *Cache) Access(addr uint64) bool {
	c.tick++
	line := addr >> c.lineSh
	set := int(line % uint64(c.sets))
	tag := line / uint64(c.sets)
	base := set * c.cfg.Assoc
	for w := 0; w < c.cfg.Assoc; w++ {
		if c.valid[base+w] && c.tags[base+w] == tag {
			c.stamp[base+w] = c.tick
			c.Hits++
			return true
		}
	}
	c.Misses++
	// Fill the LRU way.
	victim := 0
	for w := 1; w < c.cfg.Assoc; w++ {
		if !c.valid[base+w] {
			victim = w
			break
		}
		if c.stamp[base+w] < c.stamp[base+victim] && c.valid[base+victim] {
			victim = w
		}
	}
	c.valid[base+victim] = true
	c.tags[base+victim] = tag
	c.stamp[base+victim] = c.tick
	return false
}

// Latency returns the hit latency of this level.
func (c *Cache) Latency() int { return c.cfg.Latency }

// Config holds the full hierarchy parameters.
type Config struct {
	L1I, L1D, L2 CacheConfig
	MemLatency   int
	Perfect      bool // every access hits at L1 latency (Figure 1)
}

// DefaultConfig returns Table 4's hierarchy.
func DefaultConfig() Config {
	return Config{
		L1I:        CacheConfig{SizeKB: 64, Assoc: 4, LineB: 64, Latency: 3},
		L1D:        CacheConfig{SizeKB: 64, Assoc: 2, LineB: 64, Latency: 3},
		L2:         CacheConfig{SizeKB: 1024, Assoc: 8, LineB: 64, Latency: 6},
		MemLatency: 400,
	}
}

// Hierarchy is the instruction+data cache tree.
type Hierarchy struct {
	cfg Config
	l1i *Cache
	l1d *Cache
	l2  *Cache
}

// NewHierarchy builds the hierarchy.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	l1i, err := NewCache(cfg.L1I)
	if err != nil {
		return nil, err
	}
	l1d, err := NewCache(cfg.L1D)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(cfg.L2)
	if err != nil {
		return nil, err
	}
	if cfg.MemLatency <= 0 {
		return nil, fmt.Errorf("mem: bad memory latency %d", cfg.MemLatency)
	}
	return &Hierarchy{cfg: cfg, l1i: l1i, l1d: l1d, l2: l2}, nil
}

// Clone returns an independent deep copy of the hierarchy — cache contents,
// LRU state, and hit/miss counters — so a pre-warmed prototype can seed many
// simulations.
func (h *Hierarchy) Clone() *Hierarchy {
	return &Hierarchy{cfg: h.cfg, l1i: h.l1i.Clone(), l1d: h.l1d.Clone(), l2: h.l2.Clone()}
}

// AccessI returns the latency of an instruction fetch at addr.
func (h *Hierarchy) AccessI(addr uint64) int {
	return h.access(h.l1i, addr)
}

// AccessD returns the latency of a data access at addr. Stores and loads
// are treated alike (write-allocate; write-back traffic is not modeled,
// matching the paper's level of detail).
func (h *Hierarchy) AccessD(addr uint64) int {
	return h.access(h.l1d, addr)
}

func (h *Hierarchy) access(l1 *Cache, addr uint64) int {
	if h.cfg.Perfect {
		return l1.Latency()
	}
	if l1.Access(addr) {
		return l1.Latency()
	}
	if h.l2.Access(addr) {
		return l1.Latency() + h.l2.Latency()
	}
	return l1.Latency() + h.l2.Latency() + h.cfg.MemLatency
}

// Stats reports hit/miss counters per level.
func (h *Hierarchy) Stats() (l1iHits, l1iMiss, l1dHits, l1dMiss, l2Hits, l2Miss uint64) {
	return h.l1i.Hits, h.l1i.Misses, h.l1d.Hits, h.l1d.Misses, h.l2.Hits, h.l2.Misses
}
