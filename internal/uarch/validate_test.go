package uarch

import (
	"strings"
	"testing"
)

// TestValidateRejections table-tests Config.Validate: every mutation that
// turns a canonical machine into nonsense must be rejected, so the random
// search in internal/explore (and braidd request decoding, and braidsim
// -config replay) can lean on Validate as the single gate.
func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string // substring of the expected error
	}{
		{"zero fetch width", func(c *Config) { c.FetchWidth = 0 }, "bad widths"},
		{"negative issue width", func(c *Config) { c.IssueWidth = -4 }, "bad widths"},
		{"zero rob", func(c *Config) { c.ROB = 0 }, "bad widths"},
		{"zero fus", func(c *Config) { c.TotalFUs = 0 }, "bad widths"},
		{"zero fetch branches", func(c *Config) { c.FetchBranches = 0 }, "branch"},
		{"negative front depth", func(c *Config) { c.FrontDepth = -1; c.MispredictMin = 23 }, "front-end depth"},
		{"zero alloc width", func(c *Config) { c.AllocWidth = 0 }, "rename bandwidth"},
		{"zero rename src", func(c *Config) { c.RenameSrc = 0 }, "rename bandwidth"},
		{"negative retire width", func(c *Config) { c.RetireWidth = -1 }, "retire width"},
		{"zero rf entries", func(c *Config) { c.RFEntries = 0 }, "register file"},
		{"zero read ports", func(c *Config) { c.RFReadPorts = 0 }, "register file"},
		{"negative write ports", func(c *Config) { c.RFWritePorts = -2 }, "register file"},
		{"zero bypass levels", func(c *Config) { c.BypassLevels = 0 }, "bypass"},
		{"zero bypass values", func(c *Config) { c.BypassValues = 0 }, "bypass"},
		{"negative ext wakeup", func(c *Config) { c.ExtWakeupExtra = -1 }, "wakeup"},
		{"negative predictor entries", func(c *Config) { c.PredEntries = -512 }, "predictor"},
		{"negative history", func(c *Config) { c.PredHistory = -1 }, "predictor"},
		{"oversized history", func(c *Config) { c.PredHistory = 65 }, "predictor"},
		{"penalty below front depth", func(c *Config) { c.MispredictMin = 2 }, "misprediction penalty"},
		{"zero alu latency", func(c *Config) { c.LatIntALU = 0 }, "latencies"},
		{"negative div latency", func(c *Config) { c.LatFPDiv = -12 }, "latencies"},
		{"zero agu latency", func(c *Config) { c.LatAGU = 0 }, "latencies"},
		{"negative clusters", func(c *Config) { c.Clusters = -1 }, "clustering"},
		{"negative cluster delay", func(c *Config) { c.Clusters = 2; c.InterClusterDelay = -4 }, "clustering"},
		{"unknown core", func(c *Config) { c.Core = CoreKind(99) }, "core kind"},
	}
	for _, tc := range cases {
		cfg := OutOfOrderConfig(8)
		tc.mut(&cfg)
		err := cfg.Validate()
		if err == nil {
			t.Errorf("%s: accepted", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}

// TestValidateCoreSpecific covers the per-paradigm structural checks.
func TestValidateCoreSpecific(t *testing.T) {
	ooo := OutOfOrderConfig(8)
	ooo.Schedulers = 0
	if err := ooo.Validate(); err == nil || !strings.Contains(err.Error(), "schedulers") {
		t.Errorf("scheduler-less out-of-order: %v", err)
	}

	dep := DepSteerConfig(8)
	dep.SteerFIFODeep = 0
	if err := dep.Validate(); err == nil || !strings.Contains(err.Error(), "FIFO") {
		t.Errorf("FIFO-less dep-steer: %v", err)
	}

	br := BraidConfig(8)
	br.BEUWindow = 0
	if err := br.Validate(); err == nil || !strings.Contains(err.Error(), "BEU") {
		t.Errorf("windowless braid: %v", err)
	}
	br = BraidConfig(8)
	br.Clusters = 3
	if err := br.Validate(); err == nil || !strings.Contains(err.Error(), "clusters") {
		t.Errorf("uneven clustering: %v", err)
	}
}

// TestValidateAcceptsCanonical: the four constructors must pass at the three
// widths the figures use, with and without explicit predictor geometry.
func TestValidateAcceptsCanonical(t *testing.T) {
	for _, w := range []int{2, 4, 8, 16} {
		for _, cfg := range []Config{
			InOrderConfig(w), DepSteerConfig(w), OutOfOrderConfig(w), BraidConfig(w),
		} {
			if err := cfg.Validate(); err != nil {
				t.Errorf("%s/%d: %v", cfg.Core, w, err)
			}
		}
	}
	cfg := BraidConfig(8)
	cfg.PredEntries, cfg.PredHistory = 256, 32
	if err := cfg.Validate(); err != nil {
		t.Errorf("explicit predictor geometry rejected: %v", err)
	}
}

// TestPredictorGeometryDefaults: zero-valued geometry must behave exactly
// like the historical hardcoded 512/64 perceptron (golden-stat stability),
// and an explicit tiny predictor must change timing.
func TestPredictorGeometryDefaults(t *testing.T) {
	p, _ := genWorkload(t, "gcc", 40)
	base := OutOfOrderConfig(4)
	explicit := base
	explicit.PredEntries, explicit.PredHistory = 512, 64
	sb := simulate(t, p, base)
	se := simulate(t, p, explicit)
	if sb.Cycles != se.Cycles || sb.Mispredicts != se.Mispredicts {
		t.Errorf("explicit 512/64 diverged from default: %d/%d cycles, %d/%d mispredicts",
			sb.Cycles, se.Cycles, sb.Mispredicts, se.Mispredicts)
	}

	tiny := base
	tiny.PredEntries, tiny.PredHistory = 2, 1
	st := simulate(t, p, tiny)
	if st.Mispredicts <= sb.Mispredicts {
		t.Errorf("2-entry 1-bit perceptron (%d mispredicts) not worse than 512/64 (%d)",
			st.Mispredicts, sb.Mispredicts)
	}
}
