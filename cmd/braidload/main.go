// Command braidload drives one or more running braidd backends with a
// concurrent request mix and reports service-level throughput: requests/sec,
// latency quantiles, and aggregate simulated MIPS. With -verify it also
// simulates every unique request locally and demands bit-identical Stats
// JSON from the service — the determinism contract the result cache depends
// on.
//
// With a single -addr, requests go straight at the backend (the classic
// single-server load test). With a comma-separated list, braidload drives
// the internal/remote pool: points route by consistent hash, retry with
// backoff across backends, and optionally hedge stragglers with -hedge —
// the same path braidbench -remote uses for distributed sweeps.
//
//	braidd -addr 127.0.0.1:8080 &
//	braidload -addr http://127.0.0.1:8080 -c 32 -n 512 -verify -out BENCH_service_throughput.json
//
//	braidd -addr 127.0.0.1:8091 & braidd -addr 127.0.0.1:8092 &
//	braidload -addr 127.0.0.1:8091,127.0.0.1:8092 -hedge -verify -out BENCH_remote_throughput.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"braid/internal/isa"
	"braid/internal/remote"
	"braid/internal/service"
	"braid/internal/uarch"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "comma-separated braidd base URLs (2+: drive the routing pool)")
		conc      = flag.Int("c", 32, "concurrent clients")
		total     = flag.Int("n", 512, "total requests")
		iters     = flag.Int("iters", 60, "workload iterations per request")
		width     = flag.Int("width", 8, "issue width")
		cores     = flag.String("cores", "ooo,braid", "comma-separated cores in the mix")
		workloads = flag.String("workloads", "gcc,mcf,gzip,crafty,art,equake", "comma-separated workload profiles")
		timeout   = flag.Duration("timeout", 120*time.Second, "per-request client timeout")
		wait      = flag.Duration("wait", 15*time.Second, "how long to wait for /healthz before starting")
		verify    = flag.Bool("verify", false, "simulate each unique request locally and demand bit-identical Stats")
		hedge     = flag.Bool("hedge", false, "hedge slow requests onto a second backend (pool mode)")
		probe     = flag.Duration("probe", 0, "background health-probe interval for the pool (pool mode; 0: off)")
		out       = flag.String("out", "", "write the benchmark JSON here as well as stdout")
	)
	flag.Parse()

	mix := buildMix(splitList(*workloads), splitList(*cores), *width, *iters)
	if len(mix) == 0 {
		log.Fatal("braidload: empty request mix")
	}
	addrs := splitList(*addr)
	if len(addrs) == 0 {
		log.Fatal("braidload: no -addr")
	}
	client := &http.Client{Timeout: *timeout}

	var res *loadResult
	if len(addrs) > 1 {
		res = runPoolMode(addrs, mix, *conc, *total, *verify, *hedge, *timeout, *wait, *probe, client)
	} else {
		if err := waitHealthy(client, addrs[0], *wait); err != nil {
			log.Fatalf("braidload: %v", err)
		}
		var expected map[string][]byte
		if *verify {
			var err error
			if expected, err = simulateLocally(buildPrograms(mix)); err != nil {
				log.Fatalf("braidload: local verification run: %v", err)
			}
		}
		res = run(client, addrs[0], mix, *conc, *total, expected)
		res.Metrics = map[string]any{addrs[0]: scrapeMetrics(client, addrs[0])}
	}

	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(string(data))
	if *out != "" {
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			log.Fatalf("braidload: writing %s: %v", *out, err)
		}
	}
	if res.Errors > 0 {
		log.Fatalf("braidload: %d request(s) failed", res.Errors)
	}
}

func splitList(s string) []string {
	var out []string
	for _, f := range strings.Split(s, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// mixItem is one unique request shape; the load is total requests cycled
// over the mix, so every shape repeats and exercises the result cache.
type mixItem struct {
	req service.SimRequest
	key string
}

func buildMix(profiles, cores []string, width, iters int) []mixItem {
	var mix []mixItem
	for _, prof := range profiles {
		for _, core := range cores {
			req := service.SimRequest{Workload: prof, Iters: iters, Core: core, Width: width}
			mix = append(mix, mixItem{req: req, key: prof + "/" + core})
		}
	}
	return mix
}

func waitHealthy(client *http.Client, addr string, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s (last: err=%v)", addr, wait, err)
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// builtItem is one unique request resolved to the exact program image and
// configuration the service would build for it — what the pool routes on and
// what local verification simulates.
type builtItem struct {
	key  string
	prog *isa.Program
	cfg  uarch.Config
}

// buildPrograms resolves every mix item through the same Build path the
// service uses. Build is deterministic, so the client-side program is
// byte-identical to the one the server would construct from the name.
func buildPrograms(mix []mixItem) []builtItem {
	items := make([]builtItem, len(mix))
	var wg sync.WaitGroup
	for i, it := range mix {
		wg.Add(1)
		go func(i int, it mixItem) {
			defer wg.Done()
			b, err := service.Build(&it.req, service.Limits{})
			if err != nil {
				log.Fatalf("braidload: building %s: %v", it.key, err)
			}
			items[i] = builtItem{key: it.key, prog: b.Program, cfg: b.Config}
		}(i, it)
	}
	wg.Wait()
	return items
}

// simulateLocally simulates every unique item in-process and records the
// exact Stats JSON a correct response must carry.
func simulateLocally(items []builtItem) (map[string][]byte, error) {
	expected := make(map[string][]byte, len(items))
	var mu sync.Mutex
	var wg sync.WaitGroup
	errc := make(chan error, len(items))
	for _, it := range items {
		wg.Add(1)
		go func(it builtItem) {
			defer wg.Done()
			st, err := uarch.Simulate(it.prog, it.cfg)
			if err != nil {
				errc <- fmt.Errorf("%s: %w", it.key, err)
				return
			}
			data, err := json.Marshal(st)
			if err != nil {
				errc <- err
				return
			}
			mu.Lock()
			expected[it.key] = data
			mu.Unlock()
		}(it)
	}
	wg.Wait()
	close(errc)
	if err := <-errc; err != nil {
		return nil, err
	}
	return expected, nil
}

// loadResult is the benchmark artifact (BENCH_service_throughput.json,
// BENCH_remote_throughput.json). server_metrics is keyed by backend URL.
type loadResult struct {
	Backends      []string       `json:"backends,omitempty"`
	Concurrency   int            `json:"concurrency"`
	Requests      int            `json:"requests"`
	Errors        int            `json:"errors"`
	Verified      int            `json:"verified"`
	Mismatches    int            `json:"mismatches"`
	Seconds       float64        `json:"seconds"`
	RPS           float64        `json:"requests_per_sec"`
	P50MS         float64        `json:"p50_ms"`
	P90MS         float64        `json:"p90_ms"`
	P99MS         float64        `json:"p99_ms"`
	MaxMS         float64        `json:"max_ms"`
	Instructions  uint64         `json:"sim_instructions"`
	AggregateMIPS float64        `json:"aggregate_mips"`
	Sources       map[string]int `json:"responses_by_source"`
	ByBackend     map[string]int `json:"responses_by_backend,omitempty"`
	Pool          *remote.Stats  `json:"pool,omitempty"`
	Metrics       map[string]any `json:"server_metrics,omitempty"`
}

// runPoolMode drives the request mix through the internal/remote pool:
// consistent-hash routing, retry/failover, and optional hedging across every
// backend — the distributed analogue of the single-server burst.
func runPoolMode(addrs []string, mix []mixItem, conc, total int, verify, hedge bool, timeout, wait, probe time.Duration, client *http.Client) *loadResult {
	ctx := context.Background()
	pool, err := remote.NewPool(remote.Options{
		Backends: addrs,
		Hedge:    hedge,
		Timeout:  timeout,
	})
	if err != nil {
		log.Fatalf("braidload: %v", err)
	}
	if probe > 0 {
		stop := pool.StartProber(ctx, probe)
		defer stop()
	}
	deadline := time.Now().Add(wait)
	for {
		var down []string
		down, err = pool.Ping(ctx)
		if err == nil && len(down) == 0 {
			break
		}
		if time.Now().After(deadline) {
			if err != nil {
				log.Fatalf("braidload: %v", err)
			}
			log.Printf("braidload: backends still down after %s (will fail over): %s", wait, strings.Join(down, ","))
			break
		}
		time.Sleep(100 * time.Millisecond)
	}

	items := buildPrograms(mix)
	var expected map[string][]byte
	if verify {
		if expected, err = simulateLocally(items); err != nil {
			log.Fatalf("braidload: local verification run: %v", err)
		}
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		sources   = map[string]int{}
		byBackend = map[string]int{}
		res       = &loadResult{
			Backends: pool.Backends(), Concurrency: conc, Requests: total,
			Sources: sources, ByBackend: byBackend,
		}
		wg sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				it := items[i%len(items)]
				r0 := time.Now()
				r, err := pool.SimulateFull(ctx, it.prog, it.cfg)
				ms := float64(time.Since(r0).Nanoseconds()) / 1e6
				mu.Lock()
				latencies = append(latencies, ms)
				if err != nil {
					res.Errors++
					log.Printf("braidload: %s: %v", it.key, err)
				} else {
					sources[r.Source]++
					byBackend[r.Backend]++
					if want, ok := expected[it.key]; ok {
						res.Verified++
						if !bytes.Equal(want, r.RawStats) {
							res.Mismatches++
							res.Errors++
							log.Printf("braidload: %s: stats differ from local simulation", it.key)
						}
					}
					res.Instructions += r.Stats.Retired
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(t0).Seconds()
	finish(res, latencies, total)
	ps := pool.Snapshot()
	res.Pool = &ps
	res.Metrics = map[string]any{}
	for _, b := range pool.Backends() {
		if m := scrapeMetrics(client, b); m != nil {
			res.Metrics[b] = m
		}
	}
	return res
}

// verifyResponse is the response shape braidload decodes: Stats stays raw so
// verification compares the service's exact bytes against the local run.
type verifyResponse struct {
	Source string          `json:"source"`
	Stats  json.RawMessage `json:"stats"`
}

func run(client *http.Client, addr string, mix []mixItem, conc, total int, expected map[string][]byte) *loadResult {
	bodies := make([][]byte, len(mix))
	for i, it := range mix {
		data, err := json.Marshal(&it.req)
		if err != nil {
			log.Fatal(err)
		}
		bodies[i] = data
	}

	var (
		next      atomic.Int64
		mu        sync.Mutex
		latencies []float64
		sources   = map[string]int{}
		res       = &loadResult{Concurrency: conc, Requests: total, Sources: sources}
		wg        sync.WaitGroup
	)
	t0 := time.Now()
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= total {
					return
				}
				it := mix[i%len(mix)]
				r0 := time.Now()
				vr, err := post(client, addr, bodies[i%len(mix)])
				ms := float64(time.Since(r0).Nanoseconds()) / 1e6
				mu.Lock()
				latencies = append(latencies, ms)
				if err != nil {
					res.Errors++
					log.Printf("braidload: %s: %v", it.key, err)
				} else {
					sources[vr.Source]++
					if want, ok := expected[it.key]; ok {
						res.Verified++
						if !bytes.Equal(want, vr.Stats) {
							res.Mismatches++
							res.Errors++
							log.Printf("braidload: %s: stats differ from local simulation", it.key)
						}
					}
					var st uarch.Stats
					if json.Unmarshal(vr.Stats, &st) == nil {
						res.Instructions += st.Retired
					}
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	res.Seconds = time.Since(t0).Seconds()
	finish(res, latencies, total)
	return res
}

// finish fills in the latency quantiles and rate figures of a completed run.
func finish(res *loadResult, latencies []float64, total int) {
	sort.Float64s(latencies)
	quant := func(q float64) float64 {
		if len(latencies) == 0 {
			return 0
		}
		i := int(q * float64(len(latencies)))
		if i >= len(latencies) {
			i = len(latencies) - 1
		}
		return latencies[i]
	}
	res.P50MS, res.P90MS, res.P99MS = quant(0.50), quant(0.90), quant(0.99)
	if n := len(latencies); n > 0 {
		res.MaxMS = latencies[n-1]
	}
	if res.Seconds > 0 {
		res.RPS = float64(total) / res.Seconds
		res.AggregateMIPS = float64(res.Instructions) / res.Seconds / 1e6
	}
}

func post(client *http.Client, addr string, body []byte) (*verifyResponse, error) {
	resp, err := client.Post(addr+"/v1/simulate", "application/json", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d: %s", resp.StatusCode, bytes.TrimSpace(data))
	}
	var vr verifyResponse
	if err := json.Unmarshal(data, &vr); err != nil {
		return nil, fmt.Errorf("decoding response: %w", err)
	}
	return &vr, nil
}

// scrapeMetrics pulls /metrics and keeps the counters the benchmark report
// cares about; a scrape failure degrades to nil rather than failing the run.
func scrapeMetrics(client *http.Client, addr string) map[string]any {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	var all map[string]any
	if json.NewDecoder(resp.Body).Decode(&all) != nil {
		return nil
	}
	keep := map[string]any{}
	for _, k := range []string{
		"cache_hits", "cache_misses", "coalesced_total", "shed_total",
		"sim_runs_total", "simulated_mips", "faults_contained_total",
		"cycle_limit_total", "deadline_total", "latency_ms",
	} {
		if v, ok := all[k]; ok {
			keep[k] = v
		}
	}
	return keep
}
