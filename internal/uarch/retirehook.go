package uarch

// RetireEvent describes one instruction committing, in retirement (=
// program) order. It is the differential-checking twin of the Konata hook:
// internal/check replays an interp.Machine in lockstep against the stream
// of events and faults on the first field that disagrees with the
// functional reference, pinning the engine's retired work — order, branch
// outcomes, memory addresses, access widths — to the architectural oracle
// at single-instruction granularity.
type RetireEvent struct {
	Seq      uint64 // dynamic sequence number, 0-based fetch order
	Index    int    // static instruction index in the program
	Cycle    uint64 // retire cycle
	Addr     uint64 // memory address (loads and stores)
	MemBytes uint64 // access width in bytes (loads and stores)

	Taken        bool // branch outcome
	Mispredicted bool // branch left the machine on the recovery path

	IsLoad, IsStore, IsBranch bool
}

// SetRetireHook registers fn, called synchronously for every retiring
// instruction before Run returns. Call before Run. A nil hook (the
// default) adds no per-retire work, and a non-nil hook observes timing
// only — Stats are bit-identical with and without one.
func (m *Machine) SetRetireHook(fn func(RetireEvent)) { m.retireHook = fn }
