package service

import (
	"context"
	"errors"
)

// errOverloaded is returned when the admission queue is full; the handler
// maps it to 429 with a Retry-After hint.
var errOverloaded = errors.New("service: admission queue full")

// admission is the bounded worker pool with an explicit admission queue:
// at most workers simulations run concurrently, at most depth more wait
// their turn, and anything beyond that is shed immediately instead of
// piling onto an unbounded backlog.
type admission struct {
	queue chan struct{} // held from admit to finish; cap workers+depth
	slots chan struct{} // held while simulating; cap workers
}

func newAdmission(workers, depth int) *admission {
	return &admission{
		queue: make(chan struct{}, workers+depth),
		slots: make(chan struct{}, workers),
	}
}

// admit reserves a queue position. With shed set the reservation never
// blocks — a full queue returns errOverloaded; otherwise (batch items)
// it waits for a position or for ctx.
func (a *admission) admit(ctx context.Context, shed bool) error {
	if shed {
		select {
		case a.queue <- struct{}{}:
			return nil
		default:
			return errOverloaded
		}
	}
	select {
	case a.queue <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// acquire waits for a worker slot; the caller must already hold a queue
// position.
func (a *admission) acquire(ctx context.Context) error {
	select {
	case a.slots <- struct{}{}:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (a *admission) releaseSlot()  { <-a.slots }
func (a *admission) releaseQueue() { <-a.queue }

// busy is the number of simulations currently executing; waiting is the
// number admitted but not yet running. The two channel lengths are read
// without synchronization — a request can release its queue position between
// the reads — so the difference is clamped: /metrics must never report a
// negative queue depth.
func (a *admission) busy() int { return len(a.slots) }

// saturated reports a full admission queue: the next shedding admit would
// 429. /healthz exposes it so health probers can tell "overloaded but
// alive" from "broken" and leave a loaded backend in rotation.
func (a *admission) saturated() bool { return len(a.queue) == cap(a.queue) }
func (a *admission) waiting() int {
	if n := len(a.queue) - len(a.slots); n > 0 {
		return n
	}
	return 0
}
