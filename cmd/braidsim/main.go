// Command braidsim runs one program on one machine configuration and prints
// the pipeline statistics. It is the single-run counterpart of braidbench.
//
// Usage:
//
//	braidsim -bench gcc -core braid           braided gcc on the braid machine
//	braidsim -bench gcc -core ooo -width 16   16-wide out-of-order
//	braidsim -kernel dot -core inorder
//	braidsim file.s -core dep
//	braidsim -config crashes/gcc-braid-braided=true.json
//
// The braid core automatically braids the input program first; other cores
// run it as-is. -perfect-bp and -perfect-mem select the idealized front end
// of Figure 1. -config replays a crash artifact written by the braidbench
// fault-tolerant runner: the saved program image runs under the exact saved
// configuration, reproducing the original simulator fault.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"braid/internal/asm"
	"braid/internal/braid"
	"braid/internal/experiments"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

func main() {
	var (
		bench      = flag.String("bench", "", "generated benchmark name")
		kernel     = flag.String("kernel", "", "built-in kernel name")
		core       = flag.String("core", "ooo", "core: inorder, dep, braid, ooo")
		width      = flag.Int("width", 8, "issue width (4, 8, 16)")
		iters      = flag.Int("iters", 100, "benchmark loop iterations")
		perfectBP  = flag.Bool("perfect-bp", false, "oracle branch prediction")
		perfectMem = flag.Bool("perfect-mem", false, "perfect caches")
		trace      = flag.Int("trace", 0, "print a pipeline trace of the first N instructions")
		konata     = flag.String("konata", "", "write a Kanata pipeline log (for the Konata viewer) to this file")
		configPath = flag.String("config", "", "replay a crash artifact (JSON written by braidbench -crashdir)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget for the simulation (0: none)")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var (
		p   *isa.Program
		cfg uarch.Config
	)
	if *configPath != "" {
		art, prog, err := experiments.ReadCrashArtifact(*configPath)
		if err != nil {
			fatal(err)
		}
		p, cfg = prog, art.Config
		if err := cfg.Validate(); err != nil {
			fatal(fmt.Errorf("crash artifact carries an invalid configuration: %w", err))
		}
		fmt.Fprintf(os.Stderr, "braidsim: replaying %s (%s braided=%v), original fault at cycle %d: %s\n",
			art.Bench, cfg.Core, art.Braided, art.Cycle, art.Panic)
	} else {
		var err error
		p, err = load(*bench, *kernel, *iters, flag.Args())
		if err != nil {
			fatal(err)
		}
		switch *core {
		case "inorder":
			cfg = uarch.InOrderConfig(*width)
		case "dep":
			cfg = uarch.DepSteerConfig(*width)
		case "ooo":
			cfg = uarch.OutOfOrderConfig(*width)
		case "braid":
			cfg = uarch.BraidConfig(*width)
			if alreadyBraided(p) {
				fmt.Fprintln(os.Stderr, "braidsim: input is already braided")
				break
			}
			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				fatal(fmt.Errorf("braiding: %w", err))
			}
			fmt.Fprintf(os.Stderr, "braidsim: braided %d instructions into %d braids\n",
				len(res.Prog.Instrs), len(res.Braids))
			p = res.Prog
		default:
			fatal(fmt.Errorf("unknown core %q", *core))
		}
		cfg.PerfectBP = *perfectBP
		cfg.Mem.Perfect = *perfectMem
	}

	m, err := uarch.New(p, cfg)
	if err != nil {
		fatal(err)
	}
	if *trace > 0 {
		m.SetTrace(os.Stdout, *trace)
	}
	if *konata != "" {
		f, err := os.Create(*konata)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		m.SetKonata(f, 100000)
	}
	st, err := m.RunChecked(ctx)
	if err != nil {
		var sf *uarch.SimFault
		switch {
		case errors.As(err, &sf):
			fmt.Fprintf(os.Stderr, "braidsim: simulator fault at cycle %d: %v\n", sf.Cycle, sf.Panic)
			if len(sf.Stack) > 0 {
				fmt.Fprintf(os.Stderr, "%s", sf.Stack)
			}
			os.Exit(2)
		case errors.Is(err, uarch.ErrCycleLimit):
			fmt.Fprintf(os.Stderr, "braidsim: %v\n", err)
			os.Exit(3)
		case errors.Is(err, uarch.ErrTimeout):
			fmt.Fprintf(os.Stderr, "braidsim: timed out after %v: %v\n", *timeout, err)
			os.Exit(4)
		case errors.Is(err, uarch.ErrCanceled):
			fmt.Fprintf(os.Stderr, "braidsim: interrupted: %v\n", err)
			os.Exit(130)
		}
		fatal(err)
	}
	fmt.Printf("core            %s, %d-wide\n", cfg.Core, cfg.IssueWidth)
	fmt.Printf("cycles          %d\n", st.Cycles)
	fmt.Printf("retired         %d\n", st.Retired)
	fmt.Printf("IPC             %.3f\n", st.IPC())
	fmt.Printf("cond branches   %d (%.2f%% mispredicted)\n", st.CondBranches, 100*st.MispredictRate())
	fmt.Printf("loads/stores    %d / %d\n", st.Loads, st.StoreCount)
	fmt.Printf("avg in flight   %.1f\n", st.MeanROBOccupancy())
	fmt.Printf("idle cycles     %d (%.1f%%)\n", st.IdleCycles, 100*float64(st.IdleCycles)/float64(st.Cycles))
	fmt.Printf("fetch stalls    %d cycles on mispredictions\n", st.FetchStallCycles)
	fmt.Printf("RF entry stalls %d, read-port stalls %d, write-port stalls %d, bypass denied %d, RF peak %d\n",
		st.RFEntryStalls, st.PortStalls, st.WritePortStalls, st.BypassDenied, st.RFPeak)
	return
}

// alreadyBraided detects a program that carries braid ISA bits.
func alreadyBraided(p *isa.Program) bool {
	for i := range p.Instrs {
		if p.Instrs[i].Start {
			return true
		}
	}
	return false
}

func load(bench, kernel string, iters int, args []string) (*isa.Program, error) {
	switch {
	case bench != "":
		prof, ok := workload.ProfileByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return workload.Generate(prof, iters)
	case kernel != "":
		p, ok := workload.KernelByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q", kernel)
		}
		return p, nil
	case len(args) == 1:
		if strings.HasSuffix(args[0], ".brd") {
			f, err := os.Open(args[0])
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return isa.ReadImage(f)
		}
		src, err := os.ReadFile(args[0])
		if err != nil {
			return nil, err
		}
		return asm.Parse(string(src))
	}
	return nil, fmt.Errorf("need an input: a .s file, -bench, or -kernel")
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidsim: %v\n", err)
	os.Exit(1)
}
