package experiments

import (
	"fmt"

	"braid/internal/uarch"
)

// Experiment is one reproducible paper artifact.
type Experiment struct {
	ID    string
	Title string
	Run   func(w *Workloads) (*Result, error)
}

// All returns every experiment in paper order.
func All() []Experiment {
	return []Experiment{
		{"values", "§1 value fanout and lifetime characterization", ValueCharacterization},
		{"fig1", "Figure 1: potential of 8/16-wide OoO with perfect front end", Fig1},
		{"table1", "Table 1: braids per basic block", Table1},
		{"table2", "Table 2: braid size and width", Table2},
		{"table3", "Table 3: braid internals, external inputs and outputs", Table3},
		{"fig5", "Figure 5: OoO performance vs register-file entries", Fig5},
		{"fig6", "Figure 6: braid performance vs external register-file entries", Fig6},
		{"fig7", "Figure 7: braid performance vs external register-file ports", Fig7},
		{"fig8", "Figure 8: braid performance vs bypass paths", Fig8},
		{"fig9", "Figure 9: braid performance vs number of BEUs", Fig9},
		{"fig10", "Figure 10: braid performance vs BEU FIFO entries", Fig10},
		{"fig11", "Figure 11: braid performance vs scheduling-window size", Fig11},
		{"fig12", "Figure 12: braid performance vs window size and FUs", Fig12},
		{"fig13", "Figure 13: in-order, dep-steering, braid, OoO at 4/8/16-wide", Fig13},
		{"fig14", "Figure 14: equal functional-unit budget (BEU count vs FU count)", Fig14},
		{"pipeline", "§5.1: gain from the 4-stage-shorter braid pipeline", Pipeline},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ValueCharacterization reproduces the §1 motivation numbers: over 70% of
// values are read once, about 90% at most twice, about 4% never; about 80%
// of lifetimes are within 32 instructions.
func ValueCharacterization(w *Workloads) (*Result, error) {
	r := newResult("values", "§1 value fanout and lifetime")
	for _, b := range w.Benches {
		vs := b.ValueStats
		r.Set(b.Name, b.FP, "used-once", vs.FracUsedOnce())
		r.Set(b.Name, b.FP, "used<=2", vs.FanoutCDF(2))
		r.Set(b.Name, b.FP, "unused", vs.FracUnused())
		r.Set(b.Name, b.FP, "life<=32", vs.LifetimeCDF(32))
	}
	r.AddClaim("values used exactly once (avg)", 0.70, r.Average("used-once", "all"))
	r.AddClaim("values used at most twice (avg)", 0.90, r.Average("used<=2", "all"))
	r.AddClaim("values produced but never used (avg)", 0.04, r.Average("unused", "all"))
	r.AddClaim("lifetimes within 32 instructions (avg)", 0.80, r.Average("life<=32", "all"))
	return r, nil
}

// Fig1 measures the headroom of wider issue with a perfect branch predictor
// and perfect caches, normalized per benchmark to the 4-wide machine.
func Fig1(w *Workloads) (*Result, error) {
	r := newResult("fig1", "speedup over 4-wide OoO, perfect BP and caches")
	mk := func(width int) uarch.Config {
		cfg := uarch.OutOfOrderConfig(width)
		cfg.PerfectBP = true
		cfg.Mem.Perfect = true
		return cfg
	}
	widths := []int{4, 8, 16}
	var pts []Point
	for _, b := range w.Benches {
		for _, width := range widths {
			pts = append(pts, Point{b, false, mk(width)})
		}
	}
	ipc, err := w.IPCAll(pts)
	if err != nil {
		return nil, err
	}
	for _, b := range w.Benches {
		base, ok := ipc[Point{b, false, mk(4)}]
		if !ok {
			continue // contained failure: skip the row, keep the figure
		}
		for _, width := range []int{8, 16} {
			if v, ok := ipc[Point{b, false, mk(width)}]; ok {
				r.Set(b.Name, b.FP, fmt.Sprintf("%d-wide", width), v/base)
			}
		}
	}
	r.AddClaim("8-wide speedup over 4-wide (avg)", 1.44, r.Average("8-wide", "all"))
	r.AddClaim("16-wide speedup over 4-wide (avg)", 1.83, r.Average("16-wide", "all"))
	return r, nil
}

// Table1 compares measured braids per basic block against the paper.
func Table1(w *Workloads) (*Result, error) {
	r := newResult("table1", "braids per basic block (execution weighted)")
	for _, b := range w.Benches {
		s := b.DynStats
		r.Set(b.Name, b.FP, "measured", s.BraidsPerBlock())
		r.Set(b.Name, b.FP, "paper", b.Profile.BraidsPerBlock)
		r.Set(b.Name, b.FP, "excl-singles", s.BraidsPerBlockExcl())
	}
	r.AddClaim("int braids/block", 2.8, r.Average("measured", "int"))
	r.AddClaim("fp braids/block", 3.8, r.Average("measured", "fp"))
	r.AddClaim("int braids/block excl singles", 1.1, r.Average("excl-singles", "int"))
	r.AddClaim("fp braids/block excl singles", 1.5, r.Average("excl-singles", "fp"))
	return r, nil
}

// Table2 compares braid size and width.
func Table2(w *Workloads) (*Result, error) {
	r := newResult("table2", "braid size and width (execution weighted)")
	for _, b := range w.Benches {
		s := b.DynStats
		r.Set(b.Name, b.FP, "size", s.MeanSize())
		r.Set(b.Name, b.FP, "size-paper", b.Profile.MeanSize)
		r.Set(b.Name, b.FP, "width", s.MeanWidth())
		r.Set(b.Name, b.FP, "width-paper", b.Profile.MeanWidth)
		r.Set(b.Name, b.FP, "size*", s.MeanSizeExcl())
	}
	r.AddClaim("int braid size", 2.5, r.Average("size", "int"))
	r.AddClaim("fp braid size", 3.6, r.Average("size", "fp"))
	r.AddClaim("int braid size excl singles", 4.7, r.Average("size*", "int"))
	r.AddClaim("fp braid size excl singles", 7.6, r.Average("size*", "fp"))
	r.AddClaim("int braid width", 1.1, r.Average("width", "int"))
	r.AddClaim("fp braid width", 1.1, r.Average("width", "fp"))
	return r, nil
}

// Table3 compares internal values and external inputs/outputs per braid.
func Table3(w *Workloads) (*Result, error) {
	r := newResult("table3", "braid internals and external I/O (execution weighted)")
	for _, b := range w.Benches {
		s := b.DynStats
		r.Set(b.Name, b.FP, "internals", s.MeanInternals())
		r.Set(b.Name, b.FP, "int-paper", paperInternals(b))
		r.Set(b.Name, b.FP, "ext-in", s.MeanExtInputs())
		r.Set(b.Name, b.FP, "in-paper", b.Profile.ExtInputs)
		r.Set(b.Name, b.FP, "ext-out", s.MeanExtOutputs())
		r.Set(b.Name, b.FP, "out-paper", b.Profile.ExtOutputs)
	}
	r.AddClaim("int internal values per braid", 1.7, r.Average("internals", "int"))
	r.AddClaim("fp internal values per braid", 3.0, r.Average("internals", "fp"))
	r.AddClaim("int external inputs per braid", 1.7, r.Average("ext-in", "int"))
	r.AddClaim("fp external inputs per braid", 2.2, r.Average("ext-in", "fp"))
	r.AddClaim("int external outputs per braid", 0.7, r.Average("ext-out", "int"))
	r.AddClaim("fp external outputs per braid", 0.8, r.Average("ext-out", "fp"))
	return r, nil
}

// paperInternals returns Table 3's per-benchmark internal-value count.
func paperInternals(b *Bench) float64 {
	v, ok := paperInternalsTable[b.Name]
	if !ok {
		return 0
	}
	return v
}

var paperInternalsTable = map[string]float64{
	"bzip2": 2.7, "crafty": 2.4, "eon": 1.1, "gap": 1.6, "gcc": 1.4,
	"gzip": 2.6, "mcf": 1.0, "parser": 1.2, "perlbmk": 1.4, "twolf": 2.0,
	"vortex": 1.1, "vpr": 1.6,
	"ammp": 2.0, "applu": 2.0, "apsi": 2.1, "art": 1.6, "equake": 1.5,
	"facerec": 1.3, "fma3d": 2.1, "galgel": 1.1, "lucas": 4.1, "mesa": 1.2,
	"mgrid": 14.5, "sixtrack": 1.3, "swim": 4.5, "wupwise": 2.2,
}

// sweep runs a family of configurations over the suite — every (benchmark,
// configuration) point simulated concurrently through the worker pool — and
// normalizes each benchmark to its baseline configuration.
func sweep(w *Workloads, r *Result, braided bool, baseline uarch.Config, series []string, mk func(s string) uarch.Config) error {
	pts := make([]Point, 0, len(w.Benches)*(len(series)+1))
	for _, b := range w.Benches {
		pts = append(pts, Point{b, braided, baseline})
		for _, s := range series {
			pts = append(pts, Point{b, braided, mk(s)})
		}
	}
	ipc, err := w.IPCAll(pts)
	if err != nil {
		return err
	}
	for _, b := range w.Benches {
		base, ok := ipc[Point{b, braided, baseline}]
		if !ok {
			continue // contained failure: skip the row, keep the sweep
		}
		for _, s := range series {
			if v, ok := ipc[Point{b, braided, mk(s)}]; ok {
				r.Set(b.Name, b.FP, s, v/base)
			}
		}
	}
	r.sortSeries(series)
	return nil
}

// Fig5 sweeps the conventional machine's register-file entries.
func Fig5(w *Workloads) (*Result, error) {
	r := newResult("fig5", "OoO IPC vs RF entries, normalized to 256")
	sizes := []int{256, 128, 64, 32, 16, 8}
	series := make([]string, len(sizes))
	for i, n := range sizes {
		series[i] = fmt.Sprintf("%d", n)
	}
	mk := func(s string) uarch.Config {
		cfg := uarch.OutOfOrderConfig(8)
		fmt.Sscanf(s, "%d", &cfg.RFEntries)
		return cfg
	}
	if err := sweep(w, r, false, uarch.OutOfOrderConfig(8), series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("32 registers (paper: -8%)", 0.92, r.Average("32", "all"))
	r.AddClaim("16 registers (paper: -21%)", 0.79, r.Average("16", "all"))
	return r, nil
}

// Fig6 sweeps the braid machine's external register-file entries.
func Fig6(w *Workloads) (*Result, error) {
	r := newResult("fig6", "braid IPC vs external RF entries, normalized to 256")
	base := uarch.BraidConfig(8)
	base.RFEntries = 256
	sizes := []int{64, 32, 16, 8, 4}
	series := make([]string, len(sizes))
	for i, n := range sizes {
		series[i] = fmt.Sprintf("%d", n)
	}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		fmt.Sscanf(s, "%d", &cfg.RFEntries)
		return cfg
	}
	if err := sweep(w, r, true, base, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("8-entry external RF ≈ 256-entry", 1.0, r.Average("8", "all"))
	return r, nil
}

// Fig7 sweeps the braid external register file's read/write ports.
func Fig7(w *Workloads) (*Result, error) {
	r := newResult("fig7", "braid IPC vs external RF ports, normalized to 16R/8W")
	base := uarch.BraidConfig(8)
	base.RFReadPorts, base.RFWritePorts = 16, 8
	type pc struct{ r, w int }
	ports := []pc{{8, 4}, {6, 3}, {4, 2}}
	series := []string{"8,4", "6,3", "4,2"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		for i, name := range series {
			if name == s {
				cfg.RFReadPorts, cfg.RFWritePorts = ports[i].r, ports[i].w
			}
		}
		return cfg
	}
	if err := sweep(w, r, true, base, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("6R/3W within 0.5% of 16R/8W", 0.995, r.Average("6,3", "all"))
	return r, nil
}

// Fig8 sweeps the braid bypass network's per-cycle value capacity.
func Fig8(w *Workloads) (*Result, error) {
	r := newResult("fig8", "braid IPC vs bypass values/cycle, normalized to full (8)")
	base := uarch.BraidConfig(8)
	base.BypassValues = 8
	base.BypassLevels = 3
	series := []string{"4", "2", "1"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		cfg.BypassLevels = 1
		fmt.Sscanf(s, "%d", &cfg.BypassValues)
		return cfg
	}
	if err := sweep(w, r, true, base, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("2 bypass values within 1% of full", 0.99, r.Average("2", "all"))
	return r, nil
}

// ooo8 is the normalization baseline of Figures 9-13.
func ooo8() uarch.Config { return uarch.OutOfOrderConfig(8) }

// braidSweep normalizes braid-core variants to the 8-wide conventional OoO
// machine, the way Figures 9-12 are plotted.
func braidSweep(w *Workloads, r *Result, series []string, mk func(s string) uarch.Config) error {
	pts := make([]Point, 0, len(w.Benches)*(len(series)+1))
	for _, b := range w.Benches {
		pts = append(pts, Point{b, false, ooo8()})
		for _, s := range series {
			pts = append(pts, Point{b, true, mk(s)})
		}
	}
	ipc, err := w.IPCAll(pts)
	if err != nil {
		return err
	}
	for _, b := range w.Benches {
		base, ok := ipc[Point{b, false, ooo8()}]
		if !ok {
			continue // contained failure: skip the row, keep the sweep
		}
		for _, s := range series {
			if v, ok := ipc[Point{b, true, mk(s)}]; ok {
				r.Set(b.Name, b.FP, s, v/base)
			}
		}
	}
	r.sortSeries(series)
	return nil
}

// Fig9 varies the number of BEUs.
func Fig9(w *Workloads) (*Result, error) {
	r := newResult("fig9", "braid IPC vs BEUs, normalized to 8-wide OoO")
	series := []string{"1", "2", "4", "8", "16"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		fmt.Sscanf(s, "%d", &cfg.BEUs)
		cfg.TotalFUs = cfg.BEUs * cfg.BEUFUs
		return cfg
	}
	if err := braidSweep(w, r, series, mk); err != nil {
		return nil, err
	}
	v8 := r.Average("8", "all")
	v4 := r.Average("4", "all")
	r.AddClaim("more BEUs keep helping (8 vs 4 BEUs ratio > 1)", 1.1, v8/v4)
	return r, nil
}

// Fig10 varies the BEU FIFO depth.
func Fig10(w *Workloads) (*Result, error) {
	r := newResult("fig10", "braid IPC vs BEU FIFO entries, normalized to 8-wide OoO")
	series := []string{"4", "8", "16", "32", "64"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		fmt.Sscanf(s, "%d", &cfg.BEUFIFO)
		return cfg
	}
	if err := braidSweep(w, r, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("32 entries capture nearly all of 64", 1.0, r.Average("32", "all")/r.Average("64", "all"))
	return r, nil
}

// Fig11 varies the in-order scheduling window at the FIFO head.
func Fig11(w *Workloads) (*Result, error) {
	r := newResult("fig11", "braid IPC vs scheduling window, normalized to 8-wide OoO")
	series := []string{"1", "2", "4", "8"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		fmt.Sscanf(s, "%d", &cfg.BEUWindow)
		return cfg
	}
	if err := braidSweep(w, r, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("window 2 ≈ window 8 (plateau)", 1.0, r.Average("2", "all")/r.Average("8", "all"))
	return r, nil
}

// Fig12 varies the window size and FU count together.
func Fig12(w *Workloads) (*Result, error) {
	r := newResult("fig12", "braid IPC vs window=FUs, normalized to 8-wide OoO")
	series := []string{"1", "2", "4", "8"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		n := 0
		fmt.Sscanf(s, "%d", &n)
		cfg.BEUWindow, cfg.BEUFUs = n, n
		cfg.TotalFUs = cfg.BEUs * n
		return cfg
	}
	if err := braidSweep(w, r, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("window=FUs 2 ≈ 8 (braid ILP ≈ 2)", 1.0, r.Average("2", "all")/r.Average("8", "all"))
	return r, nil
}

// Fig13 compares the four paradigms at 4-, 8- and 16-wide.
func Fig13(w *Workloads) (*Result, error) {
	r := newResult("fig13", "paradigms × width, normalized to 8-wide OoO")
	type entry struct {
		series  string
		braided bool
		mk      func(int) uarch.Config
	}
	entries := []entry{
		{"i-o", false, uarch.InOrderConfig},
		{"dep", false, uarch.DepSteerConfig},
		{"braid", true, uarch.BraidConfig},
		{"o-o-o", false, uarch.OutOfOrderConfig},
	}
	var series []string
	for _, width := range []int{4, 8, 16} {
		for _, e := range entries {
			series = append(series, fmt.Sprintf("%s/%dw", e.series, width))
		}
	}
	pts := make([]Point, 0, len(w.Benches)*(len(series)+1))
	for _, b := range w.Benches {
		pts = append(pts, Point{b, false, ooo8()})
		for _, width := range []int{4, 8, 16} {
			for _, e := range entries {
				pts = append(pts, Point{b, e.braided, e.mk(width)})
			}
		}
	}
	ipc, err := w.IPCAll(pts)
	if err != nil {
		return nil, err
	}
	for _, b := range w.Benches {
		base, ok := ipc[Point{b, false, ooo8()}]
		if !ok {
			continue // contained failure: skip the row, keep the figure
		}
		for _, width := range []int{4, 8, 16} {
			for _, e := range entries {
				if v, ok := ipc[Point{b, e.braided, e.mk(width)}]; ok {
					r.Set(b.Name, b.FP, fmt.Sprintf("%s/%dw", e.series, width), v/base)
				}
			}
		}
	}
	r.sortSeries(series)
	br8, oo8 := r.Average("braid/8w", "all"), r.Average("o-o-o/8w", "all")
	br16, oo16 := r.Average("braid/16w", "all"), r.Average("o-o-o/16w", "all")
	r.AddClaim("braid within 9% of 8-wide OoO (ratio)", 0.91, br8/oo8)
	r.AddClaim("braid/OoO gap closes at 16-wide (ratio)", 0.95, br16/oo16)
	r.AddClaim("performance still available at 16-wide (OoO 16w/8w)", 1.25, oo16/oo8)
	return r, nil
}

// Fig14 holds the functional-unit budget at 8 and trades BEU count against
// per-BEU FUs, normalized to the default 8 BEUs × 2 FUs machine.
func Fig14(w *Workloads) (*Result, error) {
	r := newResult("fig14", "equal FU budget: 4 BEU×2FU vs 8 BEU×1FU, normalized to 8×2")
	base := uarch.BraidConfig(8)
	series := []string{"4x2", "8x1"}
	mk := func(s string) uarch.Config {
		cfg := uarch.BraidConfig(8)
		if s == "4x2" {
			cfg.BEUs, cfg.BEUFUs = 4, 2
		} else {
			cfg.BEUs, cfg.BEUFUs = 8, 1
		}
		cfg.TotalFUs = 8
		return cfg
	}
	if err := sweep(w, r, true, base, series, mk); err != nil {
		return nil, err
	}
	r.AddClaim("more BEUs beat wider BEUs (8x1 vs 4x2)", 1.05, r.Average("8x1", "all")/r.Average("4x2", "all"))
	return r, nil
}

// Pipeline isolates the 4-stage-shorter braid pipeline (§5.1: 2.19% average).
func Pipeline(w *Workloads) (*Result, error) {
	r := newResult("pipeline", "gain from the shorter braid pipeline (19 vs 23 cycle penalty)")
	long := uarch.BraidConfig(8)
	long.FrontDepth = 12
	long.MispredictMin = 23
	short := uarch.BraidConfig(8)
	pts := make([]Point, 0, 2*len(w.Benches))
	for _, b := range w.Benches {
		pts = append(pts, Point{b, true, long}, Point{b, true, short})
	}
	ipc, err := w.IPCAll(pts)
	if err != nil {
		return nil, err
	}
	for _, b := range w.Benches {
		lv, lok := ipc[Point{b, true, long}]
		sv, sok := ipc[Point{b, true, short}]
		if lok && sok {
			r.Set(b.Name, b.FP, "short/long", sv/lv)
		}
	}
	r.AddClaim("average speedup from shorter pipeline", 1.0219, r.Average("short/long", "all"))
	return r, nil
}
