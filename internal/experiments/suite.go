package experiments

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// Bench is one prepared benchmark: the generated program, its braided
// translation, and cached characterization.
type Bench struct {
	Name    string
	FP      bool
	Profile workload.Profile
	Orig    *isa.Program
	Braided *isa.Program
	Compile *braid.Result

	DynStats   braid.Stats        // execution-weighted Tables 1-3 statistics
	ValueStats *interp.ValueStats // §1 fanout/lifetime statistics
	DynInstrs  uint64
}

// Workloads is the prepared suite plus a simulation cache. The cache is safe
// for concurrent use and duplicate-suppressing: when several goroutines ask
// for the same (benchmark, braided, config) point, exactly one runs the
// simulation and the rest wait for its result.
//
// The suite is fault-tolerant: simulations run through uarch.SimulateChecked
// under the suite context (SetContext) with an optional per-simulation
// deadline (SetTimeout), engine panics surface as contained *uarch.SimFault
// errors with a crash artifact (SetCrashDir), transient failures are not
// memoized (Retry reruns a point), and completed points can be persisted to
// an append-only checkpoint (OpenCheckpoint) and reloaded across processes.
type Workloads struct {
	Benches []*Bench

	jobs int // worker-pool width for IPCAll and EachBench

	ctx        context.Context // base context for simulations (nil: Background)
	simTimeout time.Duration   // per-simulation wall-clock deadline (0: none)
	crashDir   string          // where *SimFault repro artifacts land ("" : off)
	runner     Runner          // simulation executor (nil: in-process uarch)
	sampling   uarch.Sampling  // interval sampling geometry (zero: exact)

	mu   sync.Mutex
	memo map[memoKey]*memoCell

	ckptMu   sync.Mutex
	ckptFile checkpointWriter

	failMu sync.Mutex
	failed []PointFailure

	simRuns     atomic.Uint64 // simulations actually executed (not memo hits)
	simCycles   atomic.Uint64 // machine cycles across executed simulations
	simInstrs   atomic.Uint64 // retired instructions across executed simulations
	simDetailed atomic.Uint64 // ... of which ran on the detailed engine
	simFFwd     atomic.Uint64 // ... of which were functionally fast-forwarded
}

type memoKey struct {
	bench    string
	braided  bool
	cfg      uarch.Config
	sampling uarch.Sampling // zero for exact runs: sampled results never alias exact ones
}

// memoCell is one in-flight or finished simulation; done is closed when ipc
// and err are final (a per-key latch, so duplicates wait instead of re-run).
type memoCell struct {
	done chan struct{}
	ipc  float64
	ci   float64 // relative 95% CI half-width on IPC (0 for exact runs)
	err  error
}

// Point names one simulation of the suite: a benchmark, which binary to run,
// and the machine configuration.
type Point struct {
	Bench   *Bench
	Braided bool
	Cfg     uarch.Config
}

// defaultJobs resolves a worker count: n if positive, else all processors.
func defaultJobs(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Jobs reports the suite's worker-pool width.
func (w *Workloads) Jobs() int { return w.jobs }

// SetJobs bounds the worker pool used by IPCAll and EachBench; n <= 0 means
// one worker per processor.
func (w *Workloads) SetJobs(n int) { w.jobs = defaultJobs(n) }

// SetContext installs the base context every simulation runs under; cancel
// it (e.g. from a Ctrl-C signal handler) to stop the whole suite. In-flight
// simulations return errors wrapping uarch.ErrCanceled.
func (w *Workloads) SetContext(ctx context.Context) { w.ctx = ctx }

// SetTimeout bounds each individual simulation's wall-clock time; an expired
// deadline surfaces as an error wrapping uarch.ErrTimeout and is treated as
// transient (not memoized). Zero disables the deadline.
func (w *Workloads) SetTimeout(d time.Duration) { w.simTimeout = d }

// SetCrashDir selects where *uarch.SimFault repro artifacts (program image +
// config JSON) are written; empty disables artifact writing. The directory
// is created on first fault.
func (w *Workloads) SetCrashDir(dir string) { w.crashDir = dir }

// Runner executes one simulation. The default runner is the in-process
// simulator; installing a remote pool (internal/remote) makes every memoized
// point and ablation run execute on braidd backends instead. A Runner must
// be deterministic and must report failures in the local error taxonomy
// (*uarch.SimFault, ErrCycleLimit, ErrTimeout, ErrCanceled) so memoization,
// checkpointing, and Failures() accounting behave identically either way.
type Runner interface {
	Simulate(ctx context.Context, p *isa.Program, cfg uarch.Config) (*uarch.Stats, error)
}

// SetRunner installs the simulation executor; nil restores the in-process
// simulator. Set it before starting a sweep, not during one.
func (w *Workloads) SetRunner(r Runner) { w.runner = r }

// SampledRunner is the optional Runner extension for interval-sampled
// execution. A Runner that lacks it cannot serve a sampled suite —
// silently falling back to exact would report exact results under a sampled
// cache key — so simulate returns an error instead.
type SampledRunner interface {
	Runner
	SimulateSampled(ctx context.Context, p *isa.Program, cfg uarch.Config, sp uarch.Sampling) (*uarch.Stats, *uarch.SampleEstimate, error)
}

// SetSampling selects interval sampling for every subsequent simulation
// (zero value: exact). Sampled and exact results occupy disjoint memo and
// checkpoint keyspaces, so switching modes never aliases results. Set it
// before starting a sweep, not during one.
func (w *Workloads) SetSampling(sp uarch.Sampling) { w.sampling = sp }

// Sampling reports the suite's sampling geometry (zero when exact).
func (w *Workloads) Sampling() uarch.Sampling { return w.sampling }

// simulate dispatches one run through the installed Runner, defaulting to
// the in-process simulator; with sampling enabled the estimate accompanies
// the stats (nil for exact runs).
func (w *Workloads) simulate(ctx context.Context, p *isa.Program, cfg uarch.Config) (*uarch.Stats, *uarch.SampleEstimate, error) {
	if w.sampling.Enabled() {
		if w.runner != nil {
			sr, ok := w.runner.(SampledRunner)
			if !ok {
				return nil, nil, fmt.Errorf("experiments: runner %T does not support sampled simulation", w.runner)
			}
			return sr.SimulateSampled(ctx, p, cfg, w.sampling)
		}
		return uarch.SimulateSampled(ctx, p, cfg, w.sampling)
	}
	if w.runner != nil {
		st, err := w.runner.Simulate(ctx, p, cfg)
		return st, nil, err
	}
	st, err := uarch.SimulateChecked(ctx, p, cfg)
	return st, nil, err
}

// baseCtx resolves the suite context, defaulting to Background.
func (w *Workloads) baseCtx() context.Context {
	if w.ctx != nil {
		return w.ctx
	}
	return context.Background()
}

// SimRuns reports how many simulations actually ran (memo misses); used by
// tests to assert duplicate suppression.
func (w *Workloads) SimRuns() uint64 { return w.simRuns.Load() }

// SimInstrs reports the total instructions retired across the simulations
// that actually ran; together with wall-clock time it yields simulator
// throughput (instructions per second).
func (w *Workloads) SimInstrs() uint64 { return w.simInstrs.Load() }

// SimCycles reports the total machine cycles across the simulations that
// actually ran.
func (w *Workloads) SimCycles() uint64 { return w.simCycles.Load() }

// SimDetailedInstrs reports how many of SimInstrs ran on the detailed
// cycle-level engine; for exact runs that is all of them.
func (w *Workloads) SimDetailedInstrs() uint64 { return w.simDetailed.Load() }

// SimFFwdInstrs reports how many of SimInstrs were functionally
// fast-forwarded by sampled runs (zero when exact).
func (w *Workloads) SimFFwdInstrs() uint64 { return w.simFFwd.Load() }

// LoadSuite generates and braids all 26 benchmarks, each calibrated to about
// dynTarget dynamic instructions, and precomputes their characterization,
// preparing one benchmark per processor at a time.
func LoadSuite(dynTarget uint64) (*Workloads, error) {
	return LoadSuiteJobs(dynTarget, 0)
}

// LoadSuiteJobs is LoadSuite with an explicit worker-pool width (jobs <= 0
// means one worker per processor). The suite order is deterministic —
// workload.Profiles order — regardless of which preparation finishes first.
func LoadSuiteJobs(dynTarget uint64, jobs int) (*Workloads, error) {
	return LoadSuiteCtx(context.Background(), dynTarget, jobs)
}

// LoadSuiteCtx is LoadSuiteJobs under a context: canceling ctx stops the
// preparation between benchmarks (each in-flight preparation still finishes).
func LoadSuiteCtx(ctx context.Context, dynTarget uint64, jobs int) (*Workloads, error) {
	if dynTarget < 1000 {
		return nil, fmt.Errorf("experiments: dynTarget %d too small", dynTarget)
	}
	w := &Workloads{memo: map[memoKey]*memoCell{}, jobs: defaultJobs(jobs), ctx: ctx}
	benches, err := parallelMap(w.jobs, workload.Profiles(), func(prof workload.Profile) (*Bench, error) {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: %s: %w: suite preparation stopped", prof.Name, uarch.ErrCanceled)
		}
		b, err := prepare(prof, dynTarget)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", prof.Name, err)
		}
		return b, nil
	})
	if err != nil {
		return nil, err
	}
	w.Benches = benches
	return w, nil
}

// parallelMap applies fn to every item through a bounded worker pool and
// returns the results in input order. The first error wins; remaining items
// still run (workers drain the queue) but their results are discarded.
// Workers are panic-isolated: a panic in fn becomes that item's error
// instead of crashing the process.
func parallelMap[T, R any](jobs int, items []T, fn func(T) (R, error)) ([]R, error) {
	run := func(it T) (r R, err error) {
		defer func() {
			if p := recover(); p != nil {
				err = fmt.Errorf("experiments: worker panic: %v\n%s", p, debug.Stack())
			}
		}()
		return fn(it)
	}
	if jobs > len(items) {
		jobs = len(items)
	}
	if jobs <= 1 {
		out := make([]R, len(items))
		for i, it := range items {
			r, err := run(it)
			if err != nil {
				return nil, err
			}
			out[i] = r
		}
		return out, nil
	}
	out := make([]R, len(items))
	work := make(chan int)
	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		firstEr error
	)
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				r, err := run(items[i])
				if err != nil {
					errOnce.Do(func() { firstEr = err })
					continue
				}
				out[i] = r
			}
		}()
	}
	for i := range items {
		work <- i
	}
	close(work)
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return out, nil
}

func prepare(prof workload.Profile, dynTarget uint64) (*Bench, error) {
	// Calibrate the iteration count with a short probe run.
	const probeIters = 8
	probe, err := workload.Generate(prof, probeIters)
	if err != nil {
		return nil, err
	}
	fs, err := interp.RunProgram(probe, 10_000_000)
	if err != nil {
		return nil, err
	}
	perIter := fs.Steps / probeIters
	if perIter == 0 {
		perIter = 1
	}
	iters := int(dynTarget / perIter)
	if iters < 4 {
		iters = 4
	}
	if iters > isa.ImmMax {
		iters = isa.ImmMax
	}

	orig, err := workload.Generate(prof, iters)
	if err != nil {
		return nil, err
	}
	res, err := braid.Compile(orig, braid.Options{})
	if err != nil {
		return nil, err
	}
	b := &Bench{
		Name:    prof.Name,
		FP:      prof.FP,
		Profile: prof,
		Orig:    orig,
		Braided: res.Prog,
		Compile: res,
	}

	// Execution-weighted braid statistics (Tables 1-3).
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	steps, err := m.Run(50_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) })
	if err != nil {
		return nil, err
	}
	b.DynStats = ds.Stats()
	b.DynInstrs = steps

	// §1 value fanout/lifetime statistics over the original program.
	vs, err := interp.Characterize(orig, 50_000_000)
	if err != nil {
		return nil, err
	}
	b.ValueStats = vs
	return b, nil
}

// IPC simulates one benchmark under cfg (braided selects the braid-compiled
// binary) and caches the result. Safe for concurrent use: the first caller
// of a point runs the simulation, concurrent duplicates block on its latch.
// Engine panics come back as contained *uarch.SimFault errors; transient
// failures (timeout, cancellation) are not memoized, so a later call may
// retry the point.
func (w *Workloads) IPC(b *Bench, braided bool, cfg uarch.Config) (float64, error) {
	ipc, _, err := w.IPCCI(b, braided, cfg)
	return ipc, err
}

// IPCCI is IPC plus the estimate's relative 95% confidence half-width on
// IPC — zero for exact runs, where the result is not an estimate.
func (w *Workloads) IPCCI(b *Bench, braided bool, cfg uarch.Config) (float64, float64, error) {
	key := memoKey{b.Name, braided, cfg, w.sampling}
	w.mu.Lock()
	if c, ok := w.memo[key]; ok {
		w.mu.Unlock()
		<-c.done
		return c.ipc, c.ci, c.err
	}
	c := &memoCell{done: make(chan struct{})}
	w.memo[key] = c
	w.mu.Unlock()
	return w.runPoint(key, c, b, braided, cfg)
}

// runPoint executes the simulation an IPC call claimed and publishes the
// result through its latch. Transient errors evict the cell afterwards —
// waiters that already joined the latch still see the error, but the key is
// not poisoned for the process lifetime.
func (w *Workloads) runPoint(key memoKey, c *memoCell, b *Bench, braided bool, cfg uarch.Config) (float64, float64, error) {
	w.simRuns.Add(1)
	p := b.Orig
	if braided {
		p = b.Braided
	}
	ctx := w.baseCtx()
	cancel := func() {}
	if w.simTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, w.simTimeout)
	}
	st, est, err := w.simulate(ctx, p, cfg)
	cancel()
	if err != nil {
		c.err = fmt.Errorf("%s (%s braided=%v): %w", b.Name, cfg.Core, braided, err)
		w.noteFailure(b, braided, cfg, c.err)
	} else {
		c.ipc = st.IPC()
		w.simInstrs.Add(st.Retired)
		w.simCycles.Add(st.Cycles)
		if est != nil && !est.Exact {
			c.ci = est.IPCRelCI
			w.simDetailed.Add(est.DetailedInstrs)
			w.simFFwd.Add(est.FFwdInstrs)
		} else {
			w.simDetailed.Add(st.Retired)
		}
		w.checkpointPoint(key, c.ipc, c.ci)
	}
	close(c.done)
	if c.err != nil && Transient(c.err) {
		w.mu.Lock()
		if w.memo[key] == c {
			delete(w.memo, key)
		}
		w.mu.Unlock()
	}
	return c.ipc, c.ci, c.err
}

// Retry reruns one point: a finished memo cell (successful or failed) is
// evicted first, so the simulation executes again; an in-flight cell is
// joined instead of duplicated.
func (w *Workloads) Retry(pt Point) (float64, error) {
	key := memoKey{pt.Bench.Name, pt.Braided, pt.Cfg, w.sampling}
	w.mu.Lock()
	if c, ok := w.memo[key]; ok {
		select {
		case <-c.done:
			delete(w.memo, key)
		default:
		}
	}
	w.mu.Unlock()
	return w.IPC(pt.Bench, pt.Braided, pt.Cfg)
}

// IPCAll simulates every point through the bounded worker pool and returns
// the IPC for each. Duplicate points (and points already memoized) cost one
// simulation total. The map is keyed by the exact Point values passed in.
//
// Contained failures — a simulator fault, an exhausted cycle budget, a
// per-simulation timeout — degrade gracefully: the failed point is omitted
// from the map (and recorded in Failures()) while the rest of the sweep
// completes. Only cancellation and infrastructure errors abort the batch.
func (w *Workloads) IPCAll(points []Point) (map[Point]float64, error) {
	type outcome struct {
		ipc  float64
		skip bool
	}
	outs, err := parallelMap(w.jobs, points, func(pt Point) (outcome, error) {
		v, err := w.IPC(pt.Bench, pt.Braided, pt.Cfg)
		if err != nil {
			if Contained(err) {
				return outcome{skip: true}, nil
			}
			return outcome{}, err
		}
		return outcome{ipc: v}, nil
	})
	if err != nil {
		return nil, err
	}
	out := make(map[Point]float64, len(points))
	for i, pt := range points {
		if !outs[i].skip {
			out[pt] = outs[i].ipc
		}
	}
	return out, nil
}

// Simulate runs one program/configuration through the suite's fault-tolerant
// path — checked entry point, suite context, per-simulation deadline — with
// no memoization. Ablations use it for compile-variant simulations whose
// configs are never repeated. Like IPC, it executes through the installed
// Runner, so it distributes too.
func (w *Workloads) Simulate(p *isa.Program, cfg uarch.Config) (*uarch.Stats, error) {
	ctx := w.baseCtx()
	cancel := func() {}
	if w.simTimeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, w.simTimeout)
	}
	defer cancel()
	st, _, err := w.simulate(ctx, p, cfg)
	return st, err
}

// EachBench runs fn over every benchmark through the bounded worker pool and
// applies the returned record closures in suite order, so Result grids come
// out deterministic no matter which benchmark finishes first.
func (w *Workloads) EachBench(fn func(b *Bench) (func(), error)) error {
	records, err := parallelMap(w.jobs, w.Benches, fn)
	if err != nil {
		return err
	}
	for _, rec := range records {
		rec()
	}
	return nil
}
