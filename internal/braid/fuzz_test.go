package braid

import (
	"testing"

	"braid/internal/interp"
	"braid/internal/workload"
)

// TestRandomProgramsBraidCorrectly is the compiler's adversarial gauntlet:
// hundreds of random programs with heavy register reuse, mixed alias
// classes, conditional moves, and irregular forward control flow. Every one
// must braid without error, satisfy all structural invariants, and compute
// an identical memory image with an identical dynamic instruction count.
// Unlike the curated benchmark suite, these programs exercise the split
// machinery (memory-order, hazard, and pressure splits) intensively.
func TestRandomProgramsBraidCorrectly(t *testing.T) {
	n := 400
	if testing.Short() {
		n = 60
	}
	var memSplits, depSplits, pressureSplits, total int
	for seed := int64(0); seed < int64(n); seed++ {
		p := workload.RandomProgram(seed)
		res, err := Compile(p, Options{})
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		if err := res.VerifyInvariants(p); err != nil {
			t.Fatalf("seed %d: invariants: %v\n%s", seed, err, p.Listing())
		}
		fo, err := interp.RunProgram(p, 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: run original: %v", seed, err)
		}
		fb, err := interp.RunProgram(res.Prog, 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: run braided: %v", seed, err)
		}
		if fo.MemHash != fb.MemHash {
			t.Fatalf("seed %d: memory image diverged after braiding", seed)
		}
		if fo.Steps != fb.Steps {
			t.Fatalf("seed %d: dynamic length changed %d -> %d", seed, fo.Steps, fb.Steps)
		}
		memSplits += res.MemSplits
		depSplits += res.DepSplits
		pressureSplits += res.PressureSplits
		total += len(res.Braids)
	}
	// The gauntlet must actually exercise the split paths.
	if memSplits == 0 {
		t.Error("no memory-order splits occurred across the fuzz corpus")
	}
	if depSplits == 0 {
		t.Error("no hazard splits occurred across the fuzz corpus")
	}
	t.Logf("%d programs, %d braids, splits: %d memory, %d hazard, %d pressure",
		n, total, memSplits, depSplits, pressureSplits)
}

// TestRandomProgramsSmallInternalFile repeats a slice of the gauntlet with a
// 2-entry internal register file, forcing pressure splits everywhere.
func TestRandomProgramsSmallInternalFile(t *testing.T) {
	n := 100
	if testing.Short() {
		n = 20
	}
	pressure := 0
	for seed := int64(0); seed < int64(n); seed++ {
		p := workload.RandomProgram(seed)
		res, err := Compile(p, Options{MaxInternal: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := res.VerifyInvariants(p); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		fo, _ := interp.RunProgram(p, 3_000_000)
		fb, err := interp.RunProgram(res.Prog, 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if fo.MemHash != fb.MemHash {
			t.Fatalf("seed %d: diverged with MaxInternal=2", seed)
		}
		pressure += res.PressureSplits
		// No emitted instruction may reference an internal index >= 2.
		for i := range res.Prog.Instrs {
			in := &res.Prog.Instrs[i]
			if (in.IDest && in.IDestIdx >= 2) || (in.T1 && in.I1 >= 2) || (in.T2 && in.I2 >= 2) {
				t.Fatalf("seed %d: instr %d uses internal register beyond limit: %s", seed, i, in)
			}
		}
	}
	if pressure == 0 {
		t.Error("a 2-entry internal file never caused a pressure split")
	}
}

// TestRandomProgramsRoundTripEncoding checks that every braided instruction
// in the corpus survives the 64-bit binary encoding unchanged.
func TestRandomProgramsRoundTripEncoding(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := workload.RandomProgram(seed)
		res, err := Compile(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		words, err := res.Prog.EncodeAll()
		if err != nil {
			t.Fatalf("seed %d: encode: %v", seed, err)
		}
		back, err := DecodeProgram(words)
		if err != nil {
			t.Fatalf("seed %d: decode: %v", seed, err)
		}
		for i := range back {
			if back[i] != res.Prog.Instrs[i] {
				t.Fatalf("seed %d: instr %d changed across encoding:\n%+v\n%+v",
					seed, i, res.Prog.Instrs[i], back[i])
			}
		}
	}
}
