package experiments

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"

	"braid/internal/uarch"
)

// checkpointWriter is the sink completed points are appended to.
type checkpointWriter = *os.File

// ckptRecord is one completed simulation in the append-only JSONL
// checkpoint: the memo key plus its result. Go's JSON encoding round-trips
// float64 and every Config field exactly, so a resumed point is bit-identical
// to rerunning it (the simulator is deterministic). Only successes are
// persisted — failures must re-execute so a fixed environment can pass.
type ckptRecord struct {
	Bench   string       `json:"bench"`
	Braided bool         `json:"braided"`
	IPC     float64      `json:"ipc"`
	Cfg     uarch.Config `json:"cfg"`
	// Sampling marks interval-sampled points; absent (nil) means exact.
	// Sampled and exact records restore into disjoint memo keyspaces.
	Sampling *uarch.Sampling `json:"sampling,omitempty"`
	// CI is the sampled estimate's relative 95% confidence half-width on
	// IPC; omitted for exact points.
	CI float64 `json:"ipc_rel_ci95,omitempty"`
}

// ckptDone is the shared pre-closed latch for restored memo cells.
var ckptDone = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()

// OpenCheckpoint attaches an append-only JSONL checkpoint at path: every
// simulation that completes from now on is persisted. With resume set, any
// existing records are first loaded into the memo cache (the returned count),
// so an interrupted or crashed sweep restarts from its completed points. A
// torn final line — the signature of a mid-write crash — is ignored; any
// other malformed line is an error.
func (w *Workloads) OpenCheckpoint(path string, resume bool) (int, error) {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	if w.ckptFile != nil {
		return 0, fmt.Errorf("experiments: checkpoint already open")
	}
	restored := 0
	if resume {
		data, err := os.ReadFile(path)
		switch {
		case os.IsNotExist(err):
			// Nothing to resume from; fresh start.
		case err != nil:
			return 0, err
		default:
			n, err := w.loadCheckpoint(data)
			if err != nil {
				return 0, fmt.Errorf("experiments: resuming %s: %w", path, err)
			}
			restored = n
		}
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return 0, err
	}
	w.ckptFile = f
	return restored, nil
}

// CloseCheckpoint detaches and closes the checkpoint file, if any.
func (w *Workloads) CloseCheckpoint() error {
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	if w.ckptFile == nil {
		return nil
	}
	err := w.ckptFile.Close()
	w.ckptFile = nil
	return err
}

// loadCheckpoint replays JSONL records into the memo cache as finished
// cells, deduplicating repeated keys with last-write-wins: a kill → resume →
// kill → resume cycle (or an explicit Retry) re-appends keys the file already
// holds, and the newest record is the authoritative one. The restored count
// is unique keys, not lines.
func (w *Workloads) loadCheckpoint(data []byte) (int, error) {
	restored := 0
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var rec ckptRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			// A torn tail from a crash mid-append is expected; anything
			// before the last line is real corruption.
			if isLastLine(data, raw) {
				break
			}
			return restored, fmt.Errorf("line %d: %w", line, err)
		}
		var sp uarch.Sampling
		if rec.Sampling != nil {
			sp = *rec.Sampling
		}
		key := memoKey{rec.Bench, rec.Braided, rec.Cfg, sp}
		w.mu.Lock()
		if _, ok := w.memo[key]; !ok {
			restored++
		}
		w.memo[key] = &memoCell{done: ckptDone, ipc: rec.IPC, ci: rec.CI}
		w.mu.Unlock()
	}
	if err := sc.Err(); err != nil {
		return restored, err
	}
	return restored, nil
}

// isLastLine reports whether raw is the final non-empty line of data.
func isLastLine(data, raw []byte) bool {
	tail := bytes.TrimRight(data, " \t\r\n")
	return bytes.HasSuffix(tail, raw)
}

// checkpointPoint appends one completed simulation. Injected-fault configs
// never checkpoint (the Inject field is process-local and json-excluded, so
// a resumed record could not reproduce the run).
func (w *Workloads) checkpointPoint(key memoKey, ipc, ci float64) {
	if key.cfg.Inject != nil {
		return
	}
	w.ckptMu.Lock()
	defer w.ckptMu.Unlock()
	if w.ckptFile == nil {
		return
	}
	rec := ckptRecord{Bench: key.bench, Braided: key.braided, IPC: ipc, Cfg: key.cfg}
	if key.sampling.Enabled() {
		sp := key.sampling
		rec.Sampling = &sp
		rec.CI = ci
	}
	data, err := json.Marshal(&rec)
	if err != nil {
		return // Config is always marshalable; defensive only
	}
	// One Write call per record keeps lines whole even if the process dies
	// mid-sweep; a torn line can only be the file's very last.
	w.ckptFile.Write(append(data, '\n'))
}
