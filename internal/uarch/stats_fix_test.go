package uarch

import "testing"

// TestWritePortStalls pins the external register file to a single write port
// and checks the delayed writebacks show up in the WritePortStalls counter
// (Figure 7's write-port sweep needs the diagnostic).
func TestWritePortStalls(t *testing.T) {
	orig, _ := genWorkload(t, "crafty", 300)
	wide := OutOfOrderConfig(8)
	narrow := OutOfOrderConfig(8)
	narrow.RFWritePorts = 1
	sw := simulate(t, orig, wide)
	sn := simulate(t, orig, narrow)
	t.Logf("write-port stalls: 8W %d, 1W %d", sw.WritePortStalls, sn.WritePortStalls)
	if sn.WritePortStalls == 0 {
		t.Error("single write port reported no write-port stalls")
	}
	if sn.WritePortStalls <= sw.WritePortStalls {
		t.Errorf("1 write port stalled %d times, 8 ports %d", sn.WritePortStalls, sw.WritePortStalls)
	}
	if sn.IPC() > sw.IPC()*1.01 {
		t.Errorf("1 write port (%.3f IPC) outperformed 8 (%.3f)", sn.IPC(), sw.IPC())
	}
}

// TestNarrowRetireWidthBacksUpROB checks that RetireWidth is honored
// independently of IssueWidth: a single-commit machine caps IPC at 1 and
// keeps more instructions in flight.
func TestNarrowRetireWidthBacksUpROB(t *testing.T) {
	orig, _ := genWorkload(t, "crafty", 300)
	base := OutOfOrderConfig(8)
	narrow := OutOfOrderConfig(8)
	narrow.RetireWidth = 1
	sb := simulate(t, orig, base)
	sn := simulate(t, orig, narrow)
	t.Logf("retire 8: IPC %.3f, in flight %.1f; retire 1: IPC %.3f, in flight %.1f",
		sb.IPC(), sb.MeanROBOccupancy(), sn.IPC(), sn.MeanROBOccupancy())
	if sn.IPC() > 1.0 {
		t.Errorf("retire width 1 sustained %.3f IPC", sn.IPC())
	}
	if sn.Cycles <= sb.Cycles {
		t.Errorf("retire width 1 took %d cycles, width 8 took %d", sn.Cycles, sb.Cycles)
	}
	if sn.MeanROBOccupancy() <= sb.MeanROBOccupancy() {
		t.Errorf("retire width 1 kept %.1f in flight, width 8 kept %.1f",
			sn.MeanROBOccupancy(), sb.MeanROBOccupancy())
	}
}

// TestRetireWidthDefault checks the 0 ⇒ IssueWidth default in Validate.
func TestRetireWidthDefault(t *testing.T) {
	cfg := OutOfOrderConfig(8)
	if cfg.RetireWidth != 0 {
		t.Fatalf("constructor sets RetireWidth %d, want 0 (defaulted)", cfg.RetireWidth)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.RetireWidth != cfg.IssueWidth {
		t.Errorf("Validate defaulted RetireWidth to %d, want IssueWidth %d", cfg.RetireWidth, cfg.IssueWidth)
	}
	bad := OutOfOrderConfig(8)
	bad.RetireWidth = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative retire width accepted")
	}
}

// TestBraidCanAcceptPure reproduces the admission-check side effect: a
// refused braid-start must not close the BEU still receiving the current
// braid. canAccept may be called every cycle while dispatch is blocked.
func TestBraidCanAcceptPure(t *testing.T) {
	cfg := BraidConfig(8)
	cfg.BEUs = 1
	c := newBraidCore(&cfg)
	c.dispatch(mkdyn(1, true)) // braid A starts on BEU 0
	c.dispatch(mkdyn(2, false))
	if !c.beus[0].open || !c.beus[0].busy {
		t.Fatal("BEU 0 should be receiving braid A")
	}

	// Braid B's first instruction is refused (BEU 0 busy, FIFO nonempty);
	// asking repeatedly must leave the core untouched.
	next := mkdyn(3, true)
	before := c.snapshot()
	for i := 0; i < 3; i++ {
		if c.canAccept(next) {
			t.Fatal("braid start accepted with the only BEU busy")
		}
	}
	if got := c.snapshot(); got != before {
		t.Errorf("canAccept mutated core state:\n before %s\n after  %s", before, got)
	}

	// Drain braid A's FIFO: the braid start is now acceptable (the BEU is
	// released when the new braid actually dispatches), still purely.
	c.beus[0].fifo = nil
	before = c.snapshot()
	if !c.canAccept(next) {
		t.Fatal("braid start refused with the current braid drained")
	}
	if got := c.snapshot(); got != before {
		t.Errorf("accepting canAccept mutated core state:\n before %s\n after  %s", before, got)
	}
	c.dispatch(next)
	if c.beus[0].fifo[0] != next {
		t.Error("braid B not dispatched to the recycled BEU")
	}
	if !c.beus[0].open || !c.beus[0].busy {
		t.Error("recycled BEU not marked receiving after dispatch")
	}
}
