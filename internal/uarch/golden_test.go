package uarch

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"braid/internal/braid"
	"braid/internal/isa"
	"braid/internal/workload"
)

var updateGolden = flag.Bool("update", false, "rewrite golden stats files")

// goldenPoint is one pinned simulation: a program, a configuration, and a
// label stable across refactors.
type goldenPoint struct {
	label   string
	braided bool
	cfg     Config
}

// goldenPoints covers every core paradigm plus the timing-sensitive engine
// modes (exceptions, clustering, external wakeup delay) in paranoid mode, so
// any hot-loop refactor that perturbs a single stat counter — or a single
// cache access — fails loudly.
func goldenPoints() []goldenPoint {
	excOOO := OutOfOrderConfig(8)
	excOOO.ExceptionEvery, excOOO.ExceptionHandler = 500, 32
	excBraid := BraidConfig(8)
	excBraid.ExceptionEvery, excBraid.ExceptionHandler = 500, 32
	clustered := BraidConfig(8)
	clustered.Clusters, clustered.InterClusterDelay = 2, 2
	wakeup := BraidConfig(8)
	wakeup.ExtWakeupExtra = 1
	queued := BraidConfig(8)
	queued.BEUQueueBraids = true
	narrow := BraidConfig(4)
	narrow.RFEntries = 6 // stress RF-entry stalls and early release
	pts := []goldenPoint{
		{"inorder-8", false, InOrderConfig(8)},
		{"depsteer-8", false, DepSteerConfig(8)},
		{"ooo-8", false, OutOfOrderConfig(8)},
		{"braid-8", true, BraidConfig(8)},
		{"ooo-8-exc", false, excOOO},
		{"braid-8-exc", true, excBraid},
		{"braid-8-clustered", true, clustered},
		{"braid-8-wakeup1", true, wakeup},
		{"braid-8-queued", true, queued},
		{"braid-4-rf6", true, narrow},
	}
	for i := range pts {
		pts[i].cfg.Paranoid = true
	}
	return pts
}

// goldenPrograms returns the fixed workloads the goldens run: an integer
// pointer-chasing benchmark (cache misses, long idle stretches) and a
// branchy integer benchmark (mispredict redirects), both original and
// braided.
func goldenPrograms(t *testing.T) map[string][2]*isa.Program {
	t.Helper()
	progs := map[string][2]*isa.Program{}
	for _, name := range []string{"mcf", "gcc"} {
		prof, ok := workload.ProfileByName(name)
		if !ok {
			t.Fatalf("no profile %s", name)
		}
		p, err := workload.Generate(prof, 120)
		if err != nil {
			t.Fatal(err)
		}
		res, err := braid.Compile(p, braid.Options{})
		if err != nil {
			t.Fatal(err)
		}
		progs[name] = [2]*isa.Program{p, res.Prog}
	}
	return progs
}

// goldenLine renders every Stats field (exported and internal accumulators)
// plus the memory-hierarchy counters, so the pinned text is the complete
// observable timing state of a run.
func goldenLine(st *Stats, m *Machine) string {
	l1iH, l1iM, l1dH, l1dM, l2H, l2M := m.hier.Stats()
	return fmt.Sprintf("%+v mem{L1I %d/%d L1D %d/%d L2 %d/%d}",
		*st, l1iH, l1iM, l1dH, l1dM, l2H, l2M)
}

func TestGoldenStats(t *testing.T) {
	progs := goldenPrograms(t)
	var sb strings.Builder
	for _, name := range []string{"mcf", "gcc"} {
		pair := progs[name]
		for _, pt := range goldenPoints() {
			p := pair[0]
			if pt.braided {
				p = pair[1]
			}
			m, err := New(p, pt.cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pt.label, err)
			}
			st, err := m.Run()
			if err != nil {
				t.Fatalf("%s/%s: %v", name, pt.label, err)
			}
			fmt.Fprintf(&sb, "%s/%s: %s\n", name, pt.label, goldenLine(st, m))
		}
	}
	got := sb.String()

	path := filepath.Join("testdata", "golden_stats.txt")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to regenerate): %v", err)
	}
	if got != string(want) {
		gotLines := strings.Split(got, "\n")
		wantLines := strings.Split(string(want), "\n")
		for i := range gotLines {
			if i >= len(wantLines) || gotLines[i] != wantLines[i] {
				t.Errorf("golden mismatch at line %d:\n got  %s\n want %s", i+1,
					gotLines[i], wantLines[min(i, len(wantLines)-1)])
				break
			}
		}
		t.Fatalf("golden stats diverged; a timing-semantics change must be deliberate (regenerate with -update)")
	}
}
