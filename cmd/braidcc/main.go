// Command braidcc is the braid compiler driver: it assembles a BRD64
// program (or takes a built-in kernel / generated benchmark), identifies
// braids, reorders and re-encodes the program with the braid ISA bits, and
// writes the braided assembly plus a compilation report.
//
// Usage:
//
//	braidcc file.s            braid an assembly file to stdout
//	braidcc -kernel fig2      braid a built-in kernel
//	braidcc -bench gcc        braid a generated benchmark
//	braidcc -stats file.s     print the braid statistics only
//	braidcc -verify file.s    also run original and braided code and
//	                          compare the final memory images
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime/debug"
	"strings"

	"braid/internal/asm"
	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/workload"
)

func main() {
	var (
		kernel    = flag.String("kernel", "", "use a built-in kernel (fig2, dot, list)")
		bench     = flag.String("bench", "", "use a generated benchmark (e.g. gcc)")
		iters     = flag.Int("iters", 50, "benchmark loop iterations with -bench")
		statsOnly = flag.Bool("stats", false, "print statistics instead of assembly")
		verify    = flag.Bool("verify", false, "check original/braided equivalence")
		maxInt    = flag.Int("internal", 8, "internal registers available to a braid")
		out       = flag.String("o", "", "write a binary .brd image instead of assembly")
		dot       = flag.Int("dot", -1, "emit a Graphviz dataflow graph of the given basic block (Figure 2(c) style)")
	)
	flag.Parse()

	p, err := loadProgram(*kernel, *bench, *iters, flag.Args())
	if err != nil {
		fatal(err)
	}
	res, err := compileChecked(p, braid.Options{MaxInternal: *maxInt})
	if err != nil {
		fatal(err)
	}

	if *verify {
		fo, err := interp.RunProgram(p, 100_000_000)
		if err != nil {
			fatal(fmt.Errorf("running original: %w", err))
		}
		fb, err := interp.RunProgram(res.Prog, 100_000_000)
		if err != nil {
			fatal(fmt.Errorf("running braided: %w", err))
		}
		if fo.MemHash != fb.MemHash {
			fatal(fmt.Errorf("verification FAILED: memory images differ"))
		}
		fmt.Fprintf(os.Stderr, "braidcc: verified: identical memory images after %d instructions\n", fo.Steps)
	}

	fmt.Fprintf(os.Stderr, "braidcc: %d instructions, %d braids, splits: %d memory, %d hazard, %d pressure\n",
		len(res.Prog.Instrs), len(res.Braids), res.MemSplits, res.DepSplits, res.PressureSplits)
	if *statsOnly {
		fmt.Print(res.Stats.String())
		return
	}
	if *dot >= 0 {
		start, end, ok := res.BlockExtent(*dot)
		if !ok {
			fatal(fmt.Errorf("no basic block %d", *dot))
		}
		fmt.Print(res.Dot(start, end))
		return
	}
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := isa.WriteImage(f, res.Prog); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "braidcc: wrote %s\n", *out)
		return
	}
	fmt.Print(asm.Format(res.Prog))
}

// compileChecked contains a compiler panic as an ordinary error, so a
// malformed input produces a diagnostic instead of a stack-trace crash.
func compileChecked(p *isa.Program, opts braid.Options) (res *braid.Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = fmt.Errorf("compiler panic: %v\n%s", r, debug.Stack())
		}
	}()
	return braid.Compile(p, opts)
}

func loadProgram(kernel, bench string, iters int, args []string) (*isa.Program, error) {
	switch {
	case kernel != "":
		p, ok := workload.KernelByName(kernel)
		if !ok {
			return nil, fmt.Errorf("unknown kernel %q (try fig2, dot, list)", kernel)
		}
		return p, nil
	case bench != "":
		prof, ok := workload.ProfileByName(bench)
		if !ok {
			return nil, fmt.Errorf("unknown benchmark %q", bench)
		}
		return workload.Generate(prof, iters)
	case len(args) == 1:
		return loadFile(args[0])
	default:
		return nil, fmt.Errorf("need an input: a .s file, -kernel, or -bench")
	}
}

// loadFile reads a program from assembly (.s) or a binary image (.brd).
func loadFile(path string) (*isa.Program, error) {
	if strings.HasSuffix(path, ".brd") {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return isa.ReadImage(f)
	}
	src, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return asm.Parse(string(src))
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "braidcc: %v\n", err)
	os.Exit(1)
}
