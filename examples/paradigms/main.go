// Paradigms: the Figure 13 head-to-head on one benchmark — in-order,
// dependence-based steering, braid, and out-of-order, at 4, 8, and 16 wide.
//
//	go run ./examples/paradigms [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"braid/internal/braid"
	"braid/internal/uarch"
	"braid/internal/workload"
)

func main() {
	name := "crafty"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	prof, ok := workload.ProfileByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	prog, err := workload.Generate(prof, 400)
	if err != nil {
		log.Fatal(err)
	}
	res, err := braid.Compile(prog, braid.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: four paradigms × three widths (paper Figure 13) ===\n\n", name)
	fmt.Printf("%-14s %8s %8s %8s\n", "core", "4-wide", "8-wide", "16-wide")
	type entry struct {
		label   string
		braided bool
		mk      func(int) uarch.Config
	}
	for _, e := range []entry{
		{"in-order", false, uarch.InOrderConfig},
		{"dep-steer", false, uarch.DepSteerConfig},
		{"braid", true, uarch.BraidConfig},
		{"out-of-order", false, uarch.OutOfOrderConfig},
	} {
		fmt.Printf("%-14s", e.label)
		for _, w := range []int{4, 8, 16} {
			p := prog
			if e.braided {
				p = res.Prog
			}
			st, err := uarch.Simulate(p, e.mk(w))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %8.3f", st.IPC())
		}
		fmt.Println()
	}
	fmt.Println("\nIPC shown; the braid core runs the braid-compiled binary.")
	fmt.Println("The paper's claim: braid lands within ~9% of the 8-wide out-of-order")
	fmt.Println("machine with almost in-order complexity, and the gap narrows at 16-wide.")
}
