package experiments

import (
	"strings"
	"sync"
	"testing"
)

// The suite is expensive to prepare; share one across tests.
var (
	tOnce  sync.Once
	tSuite *Workloads
	tErr   error
)

func testSuite(t *testing.T) *Workloads {
	t.Helper()
	tOnce.Do(func() {
		tSuite, tErr = LoadSuite(4000)
	})
	if tErr != nil {
		t.Fatal(tErr)
	}
	return tSuite
}

func TestLoadSuite(t *testing.T) {
	w := testSuite(t)
	if len(w.Benches) != 26 {
		t.Fatalf("suite has %d benchmarks, want 26", len(w.Benches))
	}
	for _, b := range w.Benches {
		if b.Orig == nil || b.Braided == nil || b.Compile == nil {
			t.Fatalf("%s: incomplete bench", b.Name)
		}
		if b.DynInstrs < 1000 {
			t.Errorf("%s: only %d dynamic instructions", b.Name, b.DynInstrs)
		}
		if b.DynStats.Braids == 0 {
			t.Errorf("%s: no dynamic braid statistics", b.Name)
		}
		if b.ValueStats.TotalValues == 0 {
			t.Errorf("%s: no value statistics", b.Name)
		}
	}
}

func TestLoadSuiteRejectsTinyTarget(t *testing.T) {
	if _, err := LoadSuite(10); err == nil {
		t.Error("tiny dynTarget accepted")
	}
}

func TestResultAccessors(t *testing.T) {
	r := newResult("x", "test")
	r.Set("a", false, "s1", 1.0)
	r.Set("a", false, "s2", 3.0)
	r.Set("b", true, "s1", 2.0)
	if v, ok := r.Get("a", "s1"); !ok || v != 1.0 {
		t.Errorf("Get = %v %v", v, ok)
	}
	if _, ok := r.Get("c", "s1"); ok {
		t.Error("Get of absent benchmark succeeded")
	}
	if got := r.Average("s1", "int"); got != 1.0 {
		t.Errorf("int avg = %v", got)
	}
	if got := r.Average("s1", "fp"); got != 2.0 {
		t.Errorf("fp avg = %v", got)
	}
	if got := r.Average("s1", "all"); got != 1.5 {
		t.Errorf("all avg = %v", got)
	}
	if got := r.Average("s2", "fp"); got != 0 {
		t.Errorf("missing-series fp avg = %v, want 0", got)
	}
	r.AddClaim("demo", 1.0, 1.5)
	s := r.String()
	for _, want := range []string{"s1", "s2", "avg-int", "avg-fp", "avg-all", "demo", "1.500"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() missing %q:\n%s", want, s)
		}
	}
	md := r.Markdown()
	for _, want := range []string{"| benchmark |", "| a |", "| claim | paper | measured |"} {
		if !strings.Contains(md, want) {
			t.Errorf("Markdown() missing %q", want)
		}
	}
}

func TestResultSortSeries(t *testing.T) {
	r := newResult("x", "t")
	r.Set("a", false, "z", 1)
	r.Set("a", false, "y", 2)
	r.Set("a", false, "x", 3)
	r.sortSeries([]string{"x", "y", "z"})
	if r.Series[0] != "x" || r.Series[1] != "y" || r.Series[2] != "z" {
		t.Errorf("series order = %v", r.Series)
	}
}

func TestRegistry(t *testing.T) {
	ids := map[string]bool{}
	for _, e := range All() {
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	if len(ids) != 16 {
		t.Errorf("registry has %d experiments, want 16", len(ids))
	}
	if _, ok := ByID("fig13"); !ok {
		t.Error("ByID(fig13) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestValueCharacterizationShape(t *testing.T) {
	w := testSuite(t)
	r, err := ValueCharacterization(w)
	if err != nil {
		t.Fatal(err)
	}
	once := r.Average("used-once", "all")
	if once < 0.5 || once > 1.0 {
		t.Errorf("used-once avg %.3f implausible", once)
	}
	le2 := r.Average("used<=2", "all")
	if le2 < once {
		t.Errorf("used<=2 (%.3f) below used-once (%.3f)", le2, once)
	}
	if life := r.Average("life<=32", "all"); life < 0.6 {
		t.Errorf("lifetime<=32 avg %.3f too low", life)
	}
}

func TestTablesMatchProfiles(t *testing.T) {
	w := testSuite(t)
	for _, run := range []struct {
		name string
		f    func(*Workloads) (*Result, error)
		ms   string // measured series
		ps   string // paper series
		tol  float64
	}{
		{"table1", Table1, "measured", "paper", 0.45},
		{"table2", Table2, "size", "size-paper", 0.45},
		{"table3", Table3, "ext-in", "in-paper", 0.6},
	} {
		r, err := run.f(w)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range w.Benches {
			m, _ := r.Get(b.Name, run.ms)
			p, _ := r.Get(b.Name, run.ps)
			d := m - p
			if d < 0 {
				d = -d
			}
			if d > run.tol*p+0.5 {
				t.Errorf("%s %s: measured %.2f vs paper %.2f", run.name, b.Name, m, p)
			}
		}
	}
}

func TestFig6Monotone(t *testing.T) {
	w := testSuite(t)
	r, err := Fig6(w)
	if err != nil {
		t.Fatal(err)
	}
	// Shrinking the external RF can only hurt (on average).
	prev := 1.1
	for _, s := range []string{"64", "32", "16", "8", "4"} {
		v := r.Average(s, "all")
		if v > prev+0.02 {
			t.Errorf("external RF %s entries: %.3f exceeds larger size %.3f", s, v, prev)
		}
		prev = v
	}
	// And 8 entries must be close to the 256-entry baseline (the claim).
	// The bound is loose here because this suite is tiny (4k dynamic
	// instructions) and cold data misses inflate register-file pressure;
	// cmd/braidbench at realistic sizes measures ~0.99.
	if v := r.Average("8", "all"); v < 0.85 {
		t.Errorf("8-entry external RF at %.3f of 256-entry; paper says ~equal", v)
	}
}

func TestFig13Ordering(t *testing.T) {
	w := testSuite(t)
	r, err := Fig13(w)
	if err != nil {
		t.Fatal(err)
	}
	io := r.Average("i-o/8w", "all")
	dep := r.Average("dep/8w", "all")
	br := r.Average("braid/8w", "all")
	oo := r.Average("o-o-o/8w", "all")
	t.Logf("8-wide: inorder %.3f, dep %.3f, braid %.3f, ooo %.3f", io, dep, br, oo)
	if !(io < dep && dep <= br*1.05 && br < oo*1.1) {
		t.Errorf("paradigm ordering broken: io=%.3f dep=%.3f braid=%.3f ooo=%.3f", io, dep, br, oo)
	}
	if br/oo < 0.75 {
		t.Errorf("braid at %.3f of OoO; paper says within ~9%%", br/oo)
	}
}

func TestIPCMemoization(t *testing.T) {
	w := testSuite(t)
	b := w.Benches[0]
	cfg := ooo8()
	v1, err := w.IPC(b, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := w.IPC(b, false, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("memoized IPC changed: %v vs %v", v1, v2)
	}
}

// TestAllExperimentsRun executes every paper artifact and every ablation on
// the shared tiny suite: no errors, plausible output grids, claims filled.
func TestAllExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	w := testSuite(t)
	all := append(All(), Ablations()...)
	for _, e := range all {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := e.Run(w)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Benchmarks) != 26 {
				t.Errorf("%d benchmark rows, want 26", len(res.Benchmarks))
			}
			if len(res.Series) == 0 {
				t.Error("no series")
			}
			for _, s := range res.Series {
				v := res.Average(s, "all")
				if v < 0 || v != v { // negative or NaN
					t.Errorf("series %s average %v implausible", s, v)
				}
			}
			for _, c := range res.Claims {
				if c.Measured != c.Measured {
					t.Errorf("claim %q measured NaN", c.Desc)
				}
			}
			// Rendering paths must not panic and must mention the id.
			if !strings.Contains(res.String(), res.ID) {
				t.Error("String() missing experiment id")
			}
			_ = res.Markdown()
			_ = res.CSV()
		})
	}
}
