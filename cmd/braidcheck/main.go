// Command braidcheck is the differential correctness harness CLI: it runs
// every paradigm × program combination through the internal/check oracle —
// interp-vs-uarch lockstep at retire granularity, braid-compiler
// equivalence, and the metamorphic invariant battery — over the curated
// kernel corpus, the generated benchmark suite, and adversarial random
// programs. On a failure it can greedily shrink the offending program to a
// minimal reproduction and write a crash artifact replayable with
// braidsim -config.
//
// Usage:
//
//	braidcheck -corpus                      # kernels + generated suite
//	braidcheck -rand 1000 -seed 42          # random-program differential run
//	braidcheck -corpus -rand 200 -shrink -crashdir /tmp/repros
//
// Exit status: 0 when every check passes, 1 when any divergence or
// invariant violation was found, 2 on usage or setup errors.
package main

import (
	"context"
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"braid/internal/braid"
	"braid/internal/check"
	"braid/internal/experiments"
	"braid/internal/isa"
	"braid/internal/workload"
)

func main() {
	os.Exit(run())
}

type unit struct {
	name string
	prog *isa.Program
}

func run() int {
	var (
		corpus   = flag.Bool("corpus", false, "check the curated kernels and the generated benchmark suite")
		suiteDyn = flag.Uint64("dyn", 30_000, "dynamic-length target for generated suite benchmarks (with -corpus)")
		randN    = flag.Int("rand", 0, "number of adversarial random programs to check")
		seed     = flag.Int64("seed", 1, "base seed for -rand (program i uses seed+i)")
		widthsF  = flag.String("widths", "4,8", "comma-separated issue widths to check")
		doShrink = flag.Bool("shrink", false, "shrink failing programs to minimal reproductions")
		crashDir = flag.String("crashdir", "", "write crash artifacts for findings into this directory")
		jobs     = flag.Int("j", runtime.GOMAXPROCS(0), "parallel checking workers")
		sampled  = flag.Bool("sampled", false, "include the sampled-convergence invariant (slower)")
		maxSteps = flag.Uint64("maxsteps", 3_000_000, "interpreter step budget per run")
		ipcTol   = flag.Float64("ipctol", 0.05, "tolerated relative IPC loss when widening one resource")
		digest   = flag.Bool("digest", false, "print a SHA-256 digest of all results (for determinism checks)")
		timeout  = flag.Duration("timeout", 0, "overall deadline (0: none)")
		verbose  = flag.Bool("v", false, "log every program checked")
	)
	flag.Parse()

	if !*corpus && *randN <= 0 {
		fmt.Fprintln(os.Stderr, "braidcheck: nothing to do; pass -corpus and/or -rand N")
		flag.Usage()
		return 2
	}
	widths, err := parseWidths(*widthsF)
	if err != nil {
		fmt.Fprintf(os.Stderr, "braidcheck: %v\n", err)
		return 2
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	var units []unit
	if *corpus {
		for _, p := range workload.Kernels() {
			units = append(units, unit{"kernel/" + p.Name, p})
		}
		w, err := experiments.LoadSuiteCtx(ctx, *suiteDyn, *jobs)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braidcheck: loading suite: %v\n", err)
			return 2
		}
		for _, b := range w.Benches {
			units = append(units, unit{"suite/" + b.Name, b.Orig})
		}
	}
	for i := 0; i < *randN; i++ {
		s := *seed + int64(i)
		units = append(units, unit{fmt.Sprintf("rand/%d", s), workload.RandomProgram(s)})
	}

	opts := check.Options{
		MaxSteps: *maxSteps,
		Widths:   widths,
		IPCTol:   *ipcTol,
		Sampled:  *sampled,
	}

	start := time.Now()
	results := make([][]check.Finding, len(units))
	var wg sync.WaitGroup
	work := make(chan int)
	nWorkers := *jobs
	if nWorkers < 1 {
		nWorkers = 1
	}
	for w := 0; w < nWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				results[i] = check.Program(ctx, units[i].name, units[i].prog, opts)
			}
		}()
	}
	for i := range units {
		select {
		case work <- i:
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}
	close(work)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "braidcheck: aborted: %v\n", err)
		return 2
	}

	var findings []check.Finding
	h := sha256.New()
	for i, u := range units {
		fmt.Fprintf(h, "%s:%d\n", u.name, len(results[i]))
		for _, f := range results[i] {
			fmt.Fprintf(h, "%s\n", f.String())
			findings = append(findings, f)
		}
		if *verbose {
			fmt.Printf("%-24s %d findings\n", u.name, len(results[i]))
		}
	}

	for i := range findings {
		f := &findings[i]
		fmt.Fprintf(os.Stderr, "FAIL %s\n", f.String())
		if *doShrink && f.Prog != nil {
			if shrunk, sf := check.Shrink(ctx, f.Prog, shrinkProperty(ctx, f, opts)); sf != nil {
				fmt.Fprintf(os.Stderr, "     shrunk to %d instructions: %s\n", len(shrunk.Instrs), sf.String())
				*f = *sf
			} else {
				fmt.Fprintf(os.Stderr, "     (failure did not reproduce during shrinking — flaky?)\n")
			}
		}
		if *crashDir != "" {
			path, err := check.WriteArtifact(*crashDir, f)
			if err != nil {
				fmt.Fprintf(os.Stderr, "     artifact: %v\n", err)
			} else {
				fmt.Fprintf(os.Stderr, "     artifact: %s (replay: braidsim -config %s)\n", path, path)
			}
		}
	}

	nCfgs := 4 * len(widths)
	fmt.Printf("braidcheck: %d programs × %d core configs in %s: %d finding(s)\n",
		len(units), nCfgs, time.Since(start).Round(time.Millisecond), len(findings))
	if *digest {
		fmt.Printf("digest: %x\n", h.Sum(nil))
	}
	if len(findings) > 0 {
		return 1
	}
	return 0
}

// shrinkProperty rebuilds the specific failing check as a predicate over
// candidate programs, keyed on the finding's kind: lockstep findings
// re-simulate under the exhibiting configuration; equivalence findings
// re-compile and re-compare. Invariant findings are not shrunk (they are
// properties of a configuration pair more than of a program).
func shrinkProperty(ctx context.Context, f *check.Finding, opts check.Options) check.Property {
	maxSteps := opts.MaxSteps
	switch f.Kind {
	case "lockstep":
		cfg := *f.Cfg
		return func(p *isa.Program) *check.Finding {
			g := check.Lockstep(ctx, f.Program, p, cfg, maxSteps)
			if g != nil && g.Kind == "lockstep" {
				return g
			}
			return nil
		}
	case "equivalence", "alias":
		return func(p *isa.Program) *check.Finding {
			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				return nil
			}
			return check.Equivalence(f.Program, p, res.Prog, maxSteps)
		}
	default:
		return func(*isa.Program) *check.Finding { return nil }
	}
}

func parseWidths(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		w, err := strconv.Atoi(part)
		if err != nil || w < 1 {
			return nil, fmt.Errorf("bad width %q", part)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no widths in %q", s)
	}
	return out, nil
}
