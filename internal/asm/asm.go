// Package asm implements a two-pass assembler and a formatter for BRD64
// assembly. It exists so that hand-written kernels (such as the paper's
// Figure 2 example from gcc's life-analysis function) can be expressed
// readably, and so braided programs can be dumped and re-read.
//
// Syntax, one instruction or directive per line (";" starts a comment):
//
//	.name  prog          ; program name
//	.fp                  ; mark program as floating-point dominated
//	.data  1024          ; reserve zero-initialized data bytes
//	.word  42            ; append a 64-bit little-endian constant to data
//	loop:                ; label
//	  ldimm r1, #10
//	  add   r2, r1, r3
//	  lda   r4, 8(r1)
//	  ldq   r5, 16(r4)   !ac=2
//	  stq   r5, 24(r4)   !ac=2
//	  bne   r1, loop
//	  halt
//
// Braid annotations: "!start" marks a braid start (the S bit); a destination
// written "i3" goes to the internal register file only, "i3/r7" to both
// files; a source "i3" reads the internal file (the T bit).
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"braid/internal/isa"
)

// Parse assembles the source text into a program.
func Parse(src string) (*isa.Program, error) {
	p := &isa.Program{Labels: map[string]int{}}
	type fixup struct {
		instr int
		label string
		line  int
	}
	var fixups []fixup

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		lineNo := ln + 1

		// Labels (possibly several) before the statement.
		for {
			i := strings.Index(line, ":")
			if i < 0 {
				break
			}
			name := strings.TrimSpace(line[:i])
			if !isIdent(name) {
				return nil, fmt.Errorf("asm:%d: bad label %q", lineNo, name)
			}
			if _, dup := p.Labels[name]; dup {
				return nil, fmt.Errorf("asm:%d: duplicate label %q", lineNo, name)
			}
			p.Labels[name] = len(p.Instrs)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}

		if strings.HasPrefix(line, ".") {
			if err := directive(p, line, lineNo); err != nil {
				return nil, err
			}
			continue
		}

		in, label, err := parseInstr(line, lineNo)
		if err != nil {
			return nil, err
		}
		if label != "" {
			fixups = append(fixups, fixup{len(p.Instrs), label, lineNo})
		}
		p.Instrs = append(p.Instrs, in)
	}

	for _, f := range fixups {
		target, ok := p.Labels[f.label]
		if !ok {
			return nil, fmt.Errorf("asm:%d: undefined label %q", f.line, f.label)
		}
		p.Instrs[f.instr].SetBranchTarget(f.instr, target)
	}
	for i := range p.Instrs {
		p.Instrs[i].Canonicalize()
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

func directive(p *isa.Program, line string, lineNo int) error {
	fields := strings.Fields(line)
	switch fields[0] {
	case ".name":
		if len(fields) != 2 {
			return fmt.Errorf("asm:%d: .name wants one argument", lineNo)
		}
		p.Name = fields[1]
	case ".fp":
		p.FP = true
	case ".data":
		n, err := atoi(fields, lineNo)
		if err != nil {
			return err
		}
		p.Data = append(p.Data, make([]byte, n)...)
	case ".word":
		v, err := atoi(fields, lineNo)
		if err != nil {
			return err
		}
		var b [8]byte
		u := uint64(v)
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * uint(i)))
		}
		p.Data = append(p.Data, b[:]...)
	default:
		return fmt.Errorf("asm:%d: unknown directive %s", lineNo, fields[0])
	}
	return nil
}

func atoi(fields []string, lineNo int) (int64, error) {
	if len(fields) != 2 {
		return 0, fmt.Errorf("asm:%d: %s wants one argument", lineNo, fields[0])
	}
	v, err := strconv.ParseInt(fields[1], 0, 64)
	if err != nil {
		return 0, fmt.Errorf("asm:%d: bad number %q", lineNo, fields[1])
	}
	return v, nil
}

// operand is one parsed operand.
type operand struct {
	kind  opKind
	reg   isa.Reg // kindReg / dual external part
	iidx  uint8   // kindInternal / dual internal part
	imm   int64   // kindImm, and displacement for kindMem
	base  isa.Reg // kindMem base register
	baseT bool    // kindMem base is internal
	baseI uint8
	label string // kindLabel
}

type opKind uint8

const (
	kindReg opKind = iota
	kindInternal
	kindDual // i3/r7
	kindImm
	kindMem
	kindLabel
)

func parseOperand(s string, lineNo int) (operand, error) {
	s = strings.TrimSpace(s)
	switch {
	case s == "":
		return operand{}, fmt.Errorf("asm:%d: empty operand", lineNo)
	case s[0] == '#':
		v, err := strconv.ParseInt(s[1:], 0, 64)
		if err != nil {
			return operand{}, fmt.Errorf("asm:%d: bad immediate %q", lineNo, s)
		}
		return operand{kind: kindImm, imm: v}, nil
	case strings.Contains(s, "("):
		o := strings.Index(s, "(")
		c := strings.Index(s, ")")
		if c < o {
			return operand{}, fmt.Errorf("asm:%d: bad memory operand %q", lineNo, s)
		}
		disp := int64(0)
		if d := strings.TrimSpace(s[:o]); d != "" {
			var err error
			disp, err = strconv.ParseInt(d, 0, 64)
			if err != nil {
				return operand{}, fmt.Errorf("asm:%d: bad displacement %q", lineNo, d)
			}
		}
		base, err := parseOperand(strings.TrimSpace(s[o+1:c]), lineNo)
		if err != nil {
			return operand{}, err
		}
		op := operand{kind: kindMem, imm: disp}
		switch base.kind {
		case kindReg:
			op.base = base.reg
		case kindInternal:
			op.baseT, op.baseI, op.base = true, base.iidx, isa.RegNone
		default:
			return operand{}, fmt.Errorf("asm:%d: bad base register in %q", lineNo, s)
		}
		return op, nil
	case strings.Contains(s, "/"):
		parts := strings.SplitN(s, "/", 2)
		a, err := parseOperand(parts[0], lineNo)
		if err != nil {
			return operand{}, err
		}
		b, err := parseOperand(parts[1], lineNo)
		if err != nil {
			return operand{}, err
		}
		if a.kind != kindInternal || b.kind != kindReg {
			return operand{}, fmt.Errorf("asm:%d: dual destination must be iN/rM, got %q", lineNo, s)
		}
		return operand{kind: kindDual, iidx: a.iidx, reg: b.reg}, nil
	}
	if n, ok := regNum(s, "r"); ok {
		if n >= isa.NumIntRegs {
			return operand{}, fmt.Errorf("asm:%d: no such register %q", lineNo, s)
		}
		return operand{kind: kindReg, reg: isa.Reg(n)}, nil
	}
	if n, ok := regNum(s, "f"); ok {
		if n >= isa.NumFPRegs {
			return operand{}, fmt.Errorf("asm:%d: no such register %q", lineNo, s)
		}
		return operand{kind: kindReg, reg: isa.RegF0 + isa.Reg(n)}, nil
	}
	if n, ok := regNum(s, "i"); ok {
		if n >= isa.NumInternalRegs {
			return operand{}, fmt.Errorf("asm:%d: no such internal register %q", lineNo, s)
		}
		return operand{kind: kindInternal, iidx: uint8(n)}, nil
	}
	if isIdent(s) {
		return operand{kind: kindLabel, label: s}, nil
	}
	return operand{}, fmt.Errorf("asm:%d: unrecognized operand %q", lineNo, s)
}

func regNum(s, prefix string) (int, bool) {
	if !strings.HasPrefix(s, prefix) || len(s) == len(prefix) {
		return 0, false
	}
	n, err := strconv.Atoi(s[len(prefix):])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

// parseInstr assembles one statement. If the instruction references a label,
// the label name is returned for fixup.
func parseInstr(line string, lineNo int) (isa.Instruction, string, error) {
	var in isa.Instruction

	// Trailing !flags.
	for {
		i := strings.LastIndex(line, "!")
		if i < 0 {
			break
		}
		flag := strings.TrimSpace(line[i+1:])
		line = strings.TrimSpace(line[:i])
		switch {
		case flag == "start":
			in.Start = true
		case strings.HasPrefix(flag, "ac="):
			v, err := strconv.Atoi(flag[3:])
			if err != nil || v < 0 || v > isa.MaxAliasClass {
				return in, "", fmt.Errorf("asm:%d: bad alias class %q", lineNo, flag)
			}
			in.AliasClass = uint8(v)
		default:
			return in, "", fmt.Errorf("asm:%d: unknown flag %q", lineNo, flag)
		}
	}

	mnemonic := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mnemonic, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	op, ok := isa.OpcodeByName(mnemonic)
	if !ok {
		return in, "", fmt.Errorf("asm:%d: unknown mnemonic %q", lineNo, mnemonic)
	}
	in.Op = op

	var ops []operand
	if rest != "" {
		for _, part := range splitOperands(rest) {
			o, err := parseOperand(part, lineNo)
			if err != nil {
				return in, "", err
			}
			ops = append(ops, o)
		}
	}

	info := in.Info()
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("asm:%d: %s wants %d operands, got %d", lineNo, mnemonic, n, len(ops))
		}
		return nil
	}
	setDest := func(o operand) error {
		switch o.kind {
		case kindReg:
			in.Dest = o.reg
		case kindInternal:
			in.Dest, in.IDest, in.IDestIdx = isa.RegNone, true, o.iidx
		case kindDual:
			in.Dest, in.IDest, in.IDestIdx, in.EDest = o.reg, true, o.iidx, true
		default:
			return fmt.Errorf("asm:%d: bad destination", lineNo)
		}
		return nil
	}
	setSrc1 := func(o operand) error {
		switch o.kind {
		case kindReg:
			in.Src1 = o.reg
		case kindInternal:
			in.Src1, in.T1, in.I1 = isa.RegNone, true, o.iidx
		default:
			return fmt.Errorf("asm:%d: bad source operand", lineNo)
		}
		return nil
	}
	setSrc2 := func(o operand) error {
		switch o.kind {
		case kindReg:
			in.Src2 = o.reg
		case kindInternal:
			in.Src2, in.T2, in.I2 = isa.RegNone, true, o.iidx
		case kindImm:
			in.HasImm = true
			in.Imm = int32(o.imm)
		default:
			return fmt.Errorf("asm:%d: bad source operand", lineNo)
		}
		return nil
	}

	var label string
	switch {
	case op == isa.OpNOP || op == isa.OpHALT:
		if err := need(0); err != nil {
			return in, "", err
		}
	case op == isa.OpLDIMM:
		if err := need(2); err != nil {
			return in, "", err
		}
		if err := setDest(ops[0]); err != nil {
			return in, "", err
		}
		if ops[1].kind != kindImm {
			return in, "", fmt.Errorf("asm:%d: ldimm wants an immediate", lineNo)
		}
		in.HasImm, in.Imm = true, int32(ops[1].imm)
	case op == isa.OpLDA:
		if err := need(2); err != nil {
			return in, "", err
		}
		if err := setDest(ops[0]); err != nil {
			return in, "", err
		}
		if ops[1].kind != kindMem {
			return in, "", fmt.Errorf("asm:%d: lda wants disp(base)", lineNo)
		}
		in.HasImm, in.Imm = true, int32(ops[1].imm)
		in.Src1, in.T1, in.I1 = ops[1].base, ops[1].baseT, ops[1].baseI
	case in.IsLoad():
		if err := need(2); err != nil {
			return in, "", err
		}
		if err := setDest(ops[0]); err != nil {
			return in, "", err
		}
		if ops[1].kind != kindMem {
			return in, "", fmt.Errorf("asm:%d: load wants disp(base)", lineNo)
		}
		in.Imm = int32(ops[1].imm)
		in.Src1, in.T1, in.I1 = ops[1].base, ops[1].baseT, ops[1].baseI
	case in.IsStore():
		if err := need(2); err != nil {
			return in, "", err
		}
		if err := setSrc1(ops[0]); err != nil {
			return in, "", err
		}
		if ops[1].kind != kindMem {
			return in, "", fmt.Errorf("asm:%d: store wants disp(base)", lineNo)
		}
		in.Imm = int32(ops[1].imm)
		in.Src2, in.T2, in.I2 = ops[1].base, ops[1].baseT, ops[1].baseI
	case in.IsUncondBranch():
		if err := need(1); err != nil {
			return in, "", err
		}
		switch ops[0].kind {
		case kindLabel:
			label = ops[0].label
		case kindImm:
			in.Imm = int32(ops[0].imm)
		default:
			return in, "", fmt.Errorf("asm:%d: branch wants a label", lineNo)
		}
	case in.IsCondBranch():
		if err := need(2); err != nil {
			return in, "", err
		}
		if err := setSrc1(ops[0]); err != nil {
			return in, "", err
		}
		switch ops[1].kind {
		case kindLabel:
			label = ops[1].label
		case kindImm:
			in.Imm = int32(ops[1].imm)
		default:
			return in, "", fmt.Errorf("asm:%d: branch wants a label", lineNo)
		}
	default:
		// Register-operand instruction.
		n := 1 + info.NumSrcs
		if err := need(n); err != nil {
			return in, "", err
		}
		if err := setDest(ops[0]); err != nil {
			return in, "", err
		}
		if info.NumSrcs >= 1 {
			if err := setSrc1(ops[1]); err != nil {
				return in, "", err
			}
		}
		if info.NumSrcs >= 2 {
			if err := setSrc2(ops[2]); err != nil {
				return in, "", err
			}
		}
	}
	return in, label, nil
}

// splitOperands splits on commas that are not inside parentheses.
func splitOperands(s string) []string {
	var parts []string
	depth, start := 0, 0
	for i, c := range s {
		switch c {
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 {
				parts = append(parts, s[start:i])
				start = i + 1
			}
		}
	}
	parts = append(parts, s[start:])
	return parts
}
