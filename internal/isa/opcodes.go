package isa

import "fmt"

// Opcode enumerates the BRD64 operations.
type Opcode uint8

// BRD64 opcodes. The set is modeled on the Alpha EV6 subset that appears in
// the paper's examples (Figure 2 uses addq, addl, ldl, lda, andnot, and,
// zapnot, cmpeq, cmovne, bne) plus enough integer, floating-point, memory and
// control operations to express realistic workloads.
const (
	OpNOP Opcode = iota
	OpHALT

	// Integer arithmetic and logic.
	OpADD    // dest = src1 + src2
	OpSUB    // dest = src1 - src2
	OpMUL    // dest = src1 * src2
	OpDIV    // dest = src1 / src2 (signed; x/0 = 0)
	OpAND    // dest = src1 & src2
	OpOR     // dest = src1 | src2
	OpXOR    // dest = src1 ^ src2
	OpANDNOT // dest = src1 &^ src2
	OpSLL    // dest = src1 << (src2 & 63)
	OpSRL    // dest = src1 >> (src2 & 63) (logical)
	OpSRA    // dest = src1 >> (src2 & 63) (arithmetic)
	OpCMPEQ  // dest = src1 == src2 ? 1 : 0
	OpCMPLT  // dest = src1 < src2 ? 1 : 0 (signed)
	OpCMPLE  // dest = src1 <= src2 ? 1 : 0 (signed)
	OpCMPULT // dest = src1 < src2 ? 1 : 0 (unsigned)
	OpCMOVEQ // if src1 == 0 { dest = src2 } (reads old dest)
	OpCMOVNE // if src1 != 0 { dest = src2 } (reads old dest)
	OpZAPNOT // dest = src1 with bytes NOT selected by mask src2 zeroed
	OpSEXTL  // dest = sign-extend low 32 bits of src1
	OpLDA    // dest = src1 + imm (address calculation)
	OpLDIMM  // dest = imm (load immediate)

	// Memory. Loads: dest = mem[src1+imm]. Stores: mem[src2+imm] = src1.
	OpLDQ // load 64-bit
	OpLDL // load 32-bit, sign-extended
	OpSTQ // store 64-bit
	OpSTL // store 32-bit
	OpLDF // load 64-bit into floating-point register
	OpSTF // store 64-bit from floating-point register

	// Floating point (operands are float64 bit patterns).
	OpFADD   // dest = src1 + src2
	OpFSUB   // dest = src1 - src2
	OpFMUL   // dest = src1 * src2
	OpFDIV   // dest = src1 / src2
	OpFSQRT  // dest = sqrt(src1)
	OpFNEG   // dest = -src1
	OpFCMPEQ // dest = src1 == src2 ? 1.0 : 0.0
	OpFCMPLT // dest = src1 < src2 ? 1.0 : 0.0
	OpFCMPLE // dest = src1 <= src2 ? 1.0 : 0.0
	OpCVTIF  // dest(fp) = float64(src1 as int64)
	OpCVTFI  // dest(int) = int64(src1 as float64)

	// Control flow. Conditional branches test src1 against zero.
	OpBR  // unconditional branch
	OpBEQ // branch if src1 == 0
	OpBNE // branch if src1 != 0
	OpBLT // branch if src1 < 0
	OpBLE // branch if src1 <= 0
	OpBGT // branch if src1 > 0
	OpBGE // branch if src1 >= 0

	numOpcodes // sentinel
)

// NumOpcodes is the number of defined opcodes.
const NumOpcodes = int(numOpcodes)

// control-flow kind of an opcode.
type flowKind uint8

const (
	flowNone flowKind = iota
	flowCond
	flowUncond
)

// OpInfo describes the static properties of an opcode.
type OpInfo struct {
	Name      string
	Class     Class
	NumSrcs   int  // register source operands (before Imm substitution)
	HasDest   bool // produces a register result
	ReadsDest bool // also reads the destination (conditional moves)
	FP        bool // operates on floating-point registers
	Flow      flowKind
	MemBytes  int // access size for memory operations
}

var opTable = [numOpcodes]OpInfo{
	OpNOP:  {Name: "nop", Class: ClassNop},
	OpHALT: {Name: "halt", Class: ClassNop},

	OpADD:    {Name: "add", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpSUB:    {Name: "sub", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpMUL:    {Name: "mul", Class: ClassIntMul, NumSrcs: 2, HasDest: true},
	OpDIV:    {Name: "div", Class: ClassIntDiv, NumSrcs: 2, HasDest: true},
	OpAND:    {Name: "and", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpOR:     {Name: "or", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpXOR:    {Name: "xor", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpANDNOT: {Name: "andnot", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpSLL:    {Name: "sll", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpSRL:    {Name: "srl", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpSRA:    {Name: "sra", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpCMPEQ:  {Name: "cmpeq", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpCMPLT:  {Name: "cmplt", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpCMPLE:  {Name: "cmple", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpCMPULT: {Name: "cmpult", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpCMOVEQ: {Name: "cmoveq", Class: ClassIntALU, NumSrcs: 2, HasDest: true, ReadsDest: true},
	OpCMOVNE: {Name: "cmovne", Class: ClassIntALU, NumSrcs: 2, HasDest: true, ReadsDest: true},
	OpZAPNOT: {Name: "zapnot", Class: ClassIntALU, NumSrcs: 2, HasDest: true},
	OpSEXTL:  {Name: "sextl", Class: ClassIntALU, NumSrcs: 1, HasDest: true},
	OpLDA:    {Name: "lda", Class: ClassIntALU, NumSrcs: 1, HasDest: true},
	OpLDIMM:  {Name: "ldimm", Class: ClassIntALU, NumSrcs: 0, HasDest: true},

	OpLDQ: {Name: "ldq", Class: ClassLoad, NumSrcs: 1, HasDest: true, MemBytes: 8},
	OpLDL: {Name: "ldl", Class: ClassLoad, NumSrcs: 1, HasDest: true, MemBytes: 4},
	OpSTQ: {Name: "stq", Class: ClassStore, NumSrcs: 2, MemBytes: 8},
	OpSTL: {Name: "stl", Class: ClassStore, NumSrcs: 2, MemBytes: 4},
	OpLDF: {Name: "ldf", Class: ClassLoad, NumSrcs: 1, HasDest: true, FP: true, MemBytes: 8},
	OpSTF: {Name: "stf", Class: ClassStore, NumSrcs: 2, FP: true, MemBytes: 8},

	OpFADD:   {Name: "fadd", Class: ClassFPAdd, NumSrcs: 2, HasDest: true, FP: true},
	OpFSUB:   {Name: "fsub", Class: ClassFPAdd, NumSrcs: 2, HasDest: true, FP: true},
	OpFMUL:   {Name: "fmul", Class: ClassFPMul, NumSrcs: 2, HasDest: true, FP: true},
	OpFDIV:   {Name: "fdiv", Class: ClassFPDiv, NumSrcs: 2, HasDest: true, FP: true},
	OpFSQRT:  {Name: "fsqrt", Class: ClassFPDiv, NumSrcs: 1, HasDest: true, FP: true},
	OpFNEG:   {Name: "fneg", Class: ClassFPAdd, NumSrcs: 1, HasDest: true, FP: true},
	OpFCMPEQ: {Name: "fcmpeq", Class: ClassFPAdd, NumSrcs: 2, HasDest: true, FP: true},
	OpFCMPLT: {Name: "fcmplt", Class: ClassFPAdd, NumSrcs: 2, HasDest: true, FP: true},
	OpFCMPLE: {Name: "fcmple", Class: ClassFPAdd, NumSrcs: 2, HasDest: true, FP: true},
	OpCVTIF:  {Name: "cvtif", Class: ClassFPAdd, NumSrcs: 1, HasDest: true, FP: true},
	OpCVTFI:  {Name: "cvtfi", Class: ClassFPAdd, NumSrcs: 1, HasDest: true, FP: true},

	OpBR:  {Name: "br", Class: ClassBranch, Flow: flowUncond},
	OpBEQ: {Name: "beq", Class: ClassBranch, NumSrcs: 1, Flow: flowCond},
	OpBNE: {Name: "bne", Class: ClassBranch, NumSrcs: 1, Flow: flowCond},
	OpBLT: {Name: "blt", Class: ClassBranch, NumSrcs: 1, Flow: flowCond},
	OpBLE: {Name: "ble", Class: ClassBranch, NumSrcs: 1, Flow: flowCond},
	OpBGT: {Name: "bgt", Class: ClassBranch, NumSrcs: 1, Flow: flowCond},
	OpBGE: {Name: "bge", Class: ClassBranch, NumSrcs: 1, Flow: flowCond},
}

// String returns the mnemonic for op.
func (op Opcode) String() string {
	if int(op) < len(opTable) && opTable[op].Name != "" {
		return opTable[op].Name
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// Valid reports whether op is a defined opcode.
func (op Opcode) Valid() bool {
	return int(op) < len(opTable) && opTable[op].Name != ""
}

// OpcodeByName looks up an opcode by mnemonic; ok is false if unknown.
func OpcodeByName(name string) (op Opcode, ok bool) {
	op, ok = opByName[name]
	return op, ok
}

var opByName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opTable))
	for op, info := range opTable {
		if info.Name != "" {
			m[info.Name] = Opcode(op)
		}
	}
	return m
}()
