// Sweep: the Figure 6 sensitivity study on one benchmark — how small can the
// braid machine's external register file be? The paper's answer: 8 entries
// behave like 256, because internal values never touch it.
//
// The sweep points are declared up front and simulated concurrently (bounded
// by -j workers); the bars print in declaration order either way.
//
//	go run ./examples/sweep [-j N] [benchmark]
package main

import (
	"flag"
	"fmt"
	"log"
	"runtime"
	"sync"

	"braid/internal/braid"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// point is one bar of the sweep: a program under one configuration.
type point struct {
	entries int
	prog    *isa.Program
	cfg     uarch.Config
	ipc     float64
}

func main() {
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "concurrent simulations")
	flag.Parse()
	name := "vortex"
	if flag.NArg() > 0 {
		name = flag.Arg(0)
	}
	prof, ok := workload.ProfileByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	prog, err := workload.Generate(prof, 400)
	if err != nil {
		log.Fatal(err)
	}
	res, err := braid.Compile(prog, braid.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Declare every point of both sweeps, then run them all concurrently.
	var braidPts, oooPts []*point
	for _, entries := range []int{256, 64, 32, 16, 8, 4} {
		cfg := uarch.BraidConfig(8)
		cfg.RFEntries = entries
		braidPts = append(braidPts, &point{entries: entries, prog: res.Prog, cfg: cfg})
	}
	for _, entries := range []int{256, 64, 32, 16, 8} {
		cfg := uarch.OutOfOrderConfig(8)
		cfg.RFEntries = entries
		oooPts = append(oooPts, &point{entries: entries, prog: prog, cfg: cfg})
	}
	if err := simulateAll(append(append([]*point{}, braidPts...), oooPts...), *jobs); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: braid external register file sweep (paper Figure 6) ===\n\n", name)
	printBars(braidPts)
	fmt.Println("\nAnd the conventional out-of-order machine on the same benchmark")
	fmt.Println("(paper Figure 5) — it needs far more registers:")
	printBars(oooPts)
}

// simulateAll fills every point's IPC through a bounded worker pool.
func simulateAll(pts []*point, jobs int) error {
	if jobs < 1 {
		jobs = 1
	}
	work := make(chan *point)
	errs := make([]error, 1)
	var (
		wg   sync.WaitGroup
		once sync.Once
	)
	for k := 0; k < jobs; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for pt := range work {
				st, err := uarch.Simulate(pt.prog, pt.cfg)
				if err != nil {
					once.Do(func() { errs[0] = err })
					continue
				}
				pt.ipc = st.IPC()
			}
		}()
	}
	for _, pt := range pts {
		work <- pt
	}
	close(work)
	wg.Wait()
	return errs[0]
}

func printBars(pts []*point) {
	base := pts[0].ipc
	for _, pt := range pts {
		bar := ""
		for i := 0.0; i < pt.ipc/base*40; i++ {
			bar += "#"
		}
		fmt.Printf("%4d entries: IPC %6.3f  (%5.1f%% of 256)  %s\n",
			pt.entries, pt.ipc, 100*pt.ipc/base, bar)
	}
}
