package remote

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"braid/internal/uarch"
	"braid/internal/workload"
)

// canaryHeader marks a probe simulation: the server admits it without
// shedding (it waits for a slot instead of 429ing), so an overloaded-but-
// healthy backend is not misdiagnosed as broken.
const canaryHeader = "X-Braid-Canary"

// canaryMaterial is the known-answer probe, built once per process: the
// tiny "dot" kernel on a 2-wide out-of-order core, with the expected Stats
// bytes computed by the local simulator — the same determinism reference
// -remote-verify uses. Any backend that answers the canary with different
// bytes is lying about its simulations and gets ejected.
var (
	canaryOnce sync.Once
	canaryBody []byte // request body for POST /v1/simulate
	canaryWant []byte // expected Stats JSON, bit-exact
	canaryErr  error
)

func canaryRequest() ([]byte, []byte, error) {
	canaryOnce.Do(func() {
		prog, ok := workload.KernelByName("dot")
		if !ok {
			canaryErr = errors.New("remote: canary kernel missing")
			return
		}
		cfg := uarch.OutOfOrderConfig(2)
		body, _, err := encodeRequest(prog, cfg, 10_000, uarch.Sampling{})
		if err != nil {
			canaryErr = err
			return
		}
		st, err := uarch.SimulateChecked(context.Background(), prog, cfg)
		if err != nil {
			canaryErr = fmt.Errorf("remote: canary reference run: %w", err)
			return
		}
		want, err := json.Marshal(st)
		if err != nil {
			canaryErr = err
			return
		}
		canaryBody, canaryWant = body, want
	})
	return canaryBody, canaryWant, canaryErr
}

// healthzBody is the overload signal braidd exposes on a healthy /healthz.
type healthzBody struct {
	Status     string `json:"status"`
	QueueDepth int    `json:"queue_depth"`
	Overloaded bool   `json:"overloaded"`
}

// StartProber launches the background health prober: every interval it
// checks each backend's /healthz and, when the backend reports itself
// neither draining nor overloaded, runs the canary simulation with a
// known-answer check. A failed probe (or a canary answering wrong bytes)
// ejects the backend — its breaker force-opens, so the request path
// short-circuits around it without spending an attempt — and a passing
// canary reinstates it. The verdicts surface in Snapshot().Healthy and the
// braidload/braidbench pool summaries.
//
// The prober stops when ctx is done or the returned stop function is called
// (stop waits for the probe goroutine to exit).
func (p *Pool) StartProber(ctx context.Context, interval time.Duration) (stop func()) {
	if interval <= 0 {
		interval = time.Second
	}
	pctx, cancel := context.WithCancel(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			p.probeAll(pctx, interval)
			select {
			case <-t.C:
			case <-pctx.Done():
				return
			}
		}
	}()
	return func() {
		cancel()
		<-done
	}
}

// probeAll probes every backend concurrently, so one dead backend's timeout
// cannot starve the others' cadence.
func (p *Pool) probeAll(ctx context.Context, interval time.Duration) {
	timeout := 2 * time.Second
	if timeout < interval {
		timeout = interval
	}
	var wg sync.WaitGroup
	for i := range p.backends {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p.probeBackend(ctx, i, timeout)
		}(i)
	}
	wg.Wait()
}

func (p *Pool) probeBackend(ctx context.Context, i int, timeout time.Duration) {
	hctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	hb, err := p.checkHealthz(hctx, i)
	if err != nil {
		if ctx.Err() != nil {
			return // the prober is shutting down, not the backend failing
		}
		p.probeFailures.Add(1)
		p.breakers[i].eject(time.Now())
		p.healthy[i].Store(false)
		return
	}
	if hb.Overloaded {
		// Alive but saturated: a canary would only deepen the queue, and
		// ejecting would amplify the spike onto the rest of the fleet.
		p.healthy[i].Store(true)
		return
	}
	if err := p.canary(hctx, i); err != nil {
		if ctx.Err() != nil {
			return
		}
		p.breakers[i].eject(time.Now())
		p.healthy[i].Store(false)
		return
	}
	p.healthy[i].Store(true)
	p.breakers[i].reinstate()
}

func (p *Pool) checkHealthz(ctx context.Context, i int) (healthzBody, error) {
	var hb healthzBody
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, p.backends[i]+"/healthz", nil)
	if err != nil {
		return hb, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return hb, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 1<<16))
	if err != nil {
		return hb, err
	}
	if resp.StatusCode != http.StatusOK {
		return hb, fmt.Errorf("healthz status %d", resp.StatusCode)
	}
	json.Unmarshal(data, &hb) // best effort: an old server's body lacks the fields
	return hb, nil
}

// canary runs the known-answer simulation directly against backend i
// (bypassing the ring) and demands bit-exact Stats. The request is tiny and
// deterministic, so repeats are served from the backend's result cache.
func (p *Pool) canary(ctx context.Context, i int) error {
	body, want, err := canaryRequest()
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		p.backends[i]+"/v1/simulate", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(canaryHeader, "1")
	resp, err := p.client.Do(req)
	if err != nil {
		p.probeFailures.Add(1)
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 16<<20))
	if err != nil {
		p.probeFailures.Add(1)
		return err
	}
	if resp.StatusCode != http.StatusOK {
		p.probeFailures.Add(1)
		return fmt.Errorf("canary status %d", resp.StatusCode)
	}
	var sr struct {
		Stats json.RawMessage `json:"stats"`
	}
	if err := json.Unmarshal(data, &sr); err != nil {
		p.probeFailures.Add(1)
		return fmt.Errorf("canary response: %w", err)
	}
	if !bytes.Equal(sr.Stats, want) {
		p.canaryMismatches.Add(1)
		return fmt.Errorf("canary stats mismatch: backend %s diverges from local simulation", p.backends[i])
	}
	return nil
}
