module braid

go 1.22
