package interp

import (
	"math"
	"testing"

	"braid/internal/isa"
)

// run executes instrs (HALT appended if missing) and returns the machine.
func run(t *testing.T, instrs []isa.Instruction) *Machine {
	t.Helper()
	if len(instrs) == 0 || !instrs[len(instrs)-1].IsHalt() {
		instrs = append(instrs, isa.Instruction{Op: isa.OpHALT})
	}
	p := &isa.Program{Name: "t", Instrs: instrs}
	m := New(p)
	if _, err := m.Run(100000, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func negU64(v int64) uint64 { return uint64(-v) }

func ldimm(dest isa.Reg, v int32) isa.Instruction {
	return isa.Instruction{Op: isa.OpLDIMM, Dest: dest, Imm: v, HasImm: true}
}

func TestALUOps(t *testing.T) {
	cases := []struct {
		op   isa.Opcode
		a, b int64
		want uint64
	}{
		{isa.OpADD, 3, 4, 7},
		{isa.OpSUB, 3, 4, ^uint64(0)},
		{isa.OpMUL, 5, 7, 35},
		{isa.OpDIV, 42, 6, 7},
		{isa.OpDIV, -42, 6, negU64(7)},
		{isa.OpDIV, 1, 0, 0},
		{isa.OpAND, 0b1100, 0b1010, 0b1000},
		{isa.OpOR, 0b1100, 0b1010, 0b1110},
		{isa.OpXOR, 0b1100, 0b1010, 0b0110},
		{isa.OpANDNOT, 0b1100, 0b1010, 0b0100},
		{isa.OpSLL, 1, 4, 16},
		{isa.OpSRL, 16, 2, 4},
		{isa.OpSRA, -16, 2, negU64(4)},
		{isa.OpCMPEQ, 5, 5, 1},
		{isa.OpCMPEQ, 5, 6, 0},
		{isa.OpCMPLT, -1, 0, 1},
		{isa.OpCMPLT, 1, 0, 0},
		{isa.OpCMPLE, 5, 5, 1},
		{isa.OpCMPULT, -1, 0, 0}, // unsigned: max > 0
	}
	for _, c := range cases {
		m := run(t, []isa.Instruction{
			ldimm(1, int32(c.a)),
			ldimm(2, int32(c.b)),
			{Op: c.op, Dest: 3, Src1: 1, Src2: 2},
		})
		if m.R[3] != c.want {
			t.Errorf("%s(%d,%d) = %d, want %d", c.op, c.a, c.b, m.R[3], c.want)
		}
	}
}

func TestZapnotSextl(t *testing.T) {
	m := run(t, []isa.Instruction{
		ldimm(1, 0x1234),
		{Op: isa.OpSLL, Dest: 1, Src1: 1, Imm: 16, HasImm: true},
		{Op: isa.OpADD, Dest: 1, Src1: 1, Imm: 0x5678, HasImm: true},
		// r1 = 0x12345678; keep low 2 bytes only.
		{Op: isa.OpZAPNOT, Dest: 2, Src1: 1, Imm: 0b0011, HasImm: true},
		{Op: isa.OpSEXTL, Dest: 3, Src1: 1},
	})
	if m.R[2] != 0x5678 {
		t.Errorf("zapnot = %#x, want 0x5678", m.R[2])
	}
	if m.R[3] != 0x12345678 {
		t.Errorf("sextl = %#x, want 0x12345678", m.R[3])
	}
	// Negative 32-bit value sign-extends.
	m = run(t, []isa.Instruction{
		ldimm(1, -1),
		{Op: isa.OpSEXTL, Dest: 2, Src1: 1},
	})
	if int64(m.R[2]) != -1 {
		t.Errorf("sextl(-1) = %d, want -1", int64(m.R[2]))
	}
}

func TestCMOV(t *testing.T) {
	m := run(t, []isa.Instruction{
		ldimm(1, 0),  // condition false for cmovne
		ldimm(2, 99), // value
		ldimm(3, 7),  // old dest
		{Op: isa.OpCMOVNE, Dest: 3, Src1: 1, Src2: 2},
		ldimm(4, 7),
		{Op: isa.OpCMOVEQ, Dest: 4, Src1: 1, Src2: 2},
	})
	if m.R[3] != 7 {
		t.Errorf("cmovne with zero cond overwrote dest: %d", m.R[3])
	}
	if m.R[4] != 99 {
		t.Errorf("cmoveq with zero cond did not move: %d", m.R[4])
	}
}

func TestZeroRegister(t *testing.T) {
	m := run(t, []isa.Instruction{
		ldimm(isa.RegZero, 42),
		{Op: isa.OpADD, Dest: 1, Src1: isa.RegZero, Imm: 5, HasImm: true},
	})
	if m.R[isa.RegZero] != 0 {
		t.Errorf("r31 = %d, want 0", m.R[isa.RegZero])
	}
	if m.R[1] != 5 {
		t.Errorf("r1 = %d, want 5", m.R[1])
	}
}

func TestMemoryOps(t *testing.T) {
	m := run(t, []isa.Instruction{
		ldimm(1, isa.DataBase),
		ldimm(2, -123456),
		{Op: isa.OpSTQ, Src1: 2, Src2: 1, Imm: 8},
		{Op: isa.OpLDQ, Dest: 3, Src1: 1, Imm: 8},
		{Op: isa.OpSTL, Src1: 2, Src2: 1, Imm: 32},
		{Op: isa.OpLDL, Dest: 4, Src1: 1, Imm: 32},
	})
	if int64(m.R[3]) != -123456 {
		t.Errorf("ldq = %d, want -123456", int64(m.R[3]))
	}
	if int64(m.R[4]) != -123456 {
		t.Errorf("ldl sign extension = %d, want -123456", int64(m.R[4]))
	}
}

func TestFloatOps(t *testing.T) {
	f := func(v float64) isa.Instruction {
		// Build an FP constant: load int, convert.
		return isa.Instruction{Op: isa.OpCVTIF, Dest: isa.RegF0, Src1: 1}
	}
	_ = f
	m := run(t, []isa.Instruction{
		ldimm(1, 9),
		{Op: isa.OpCVTIF, Dest: isa.RegF0, Src1: 1},
		{Op: isa.OpFSQRT, Dest: isa.RegF0 + 1, Src1: isa.RegF0},
		{Op: isa.OpFADD, Dest: isa.RegF0 + 2, Src1: isa.RegF0, Src2: isa.RegF0 + 1},
		{Op: isa.OpFMUL, Dest: isa.RegF0 + 3, Src1: isa.RegF0 + 2, Src2: isa.RegF0 + 2},
		{Op: isa.OpCVTFI, Dest: 2, Src1: isa.RegF0 + 3},
		{Op: isa.OpFCMPLT, Dest: isa.RegF0 + 4, Src1: isa.RegF0, Src2: isa.RegF0 + 1},
	})
	if got := math.Float64frombits(m.R[isa.RegF0+1]); got != 3 {
		t.Errorf("sqrt(9) = %v", got)
	}
	if m.R[2] != 144 {
		t.Errorf("(9+3)^2 = %d, want 144", m.R[2])
	}
	if got := math.Float64frombits(m.R[isa.RegF0+4]); got != 0 {
		t.Errorf("9 < 3 = %v, want 0", got)
	}
}

func TestBranchLoop(t *testing.T) {
	// Sum 1..10 with a countdown loop.
	instrs := []isa.Instruction{
		ldimm(1, 10), // counter
		ldimm(2, 0),  // sum
		{Op: isa.OpADD, Dest: 2, Src1: 2, Src2: 1},              // 2: sum += i
		{Op: isa.OpSUB, Dest: 1, Src1: 1, Imm: 1, HasImm: true}, // 3: i--
		{Op: isa.OpBGT, Src1: 1},                                // 4: loop while i > 0
		{Op: isa.OpHALT},
	}
	instrs[4].SetBranchTarget(4, 2)
	m := run(t, instrs)
	if m.R[2] != 55 {
		t.Errorf("sum = %d, want 55", m.R[2])
	}
}

func TestBranchVariants(t *testing.T) {
	cases := []struct {
		op    isa.Opcode
		v     int32
		taken bool
	}{
		{isa.OpBEQ, 0, true}, {isa.OpBEQ, 1, false},
		{isa.OpBNE, 0, false}, {isa.OpBNE, 1, true},
		{isa.OpBLT, -1, true}, {isa.OpBLT, 0, false},
		{isa.OpBLE, 0, true}, {isa.OpBLE, 1, false},
		{isa.OpBGT, 1, true}, {isa.OpBGT, 0, false},
		{isa.OpBGE, 0, true}, {isa.OpBGE, -1, false},
	}
	for _, c := range cases {
		// Taken path skips the ldimm that sets r2=1.
		instrs := []isa.Instruction{
			ldimm(1, c.v),
			{Op: c.op, Src1: 1},
			ldimm(2, 1),
			{Op: isa.OpHALT},
		}
		instrs[1].SetBranchTarget(1, 3)
		m := run(t, instrs)
		gotTaken := m.R[2] == 0
		if gotTaken != c.taken {
			t.Errorf("%s(%d): taken=%v, want %v", c.op, c.v, gotTaken, c.taken)
		}
	}
}

func TestInternalRegisters(t *testing.T) {
	// A braided two-instruction sequence: internal value flows i3.
	m := run(t, []isa.Instruction{
		ldimm(1, 20),
		ldimm(2, 22),
		{Op: isa.OpADD, Dest: isa.RegNone, Src1: 1, Src2: 2, IDest: true, IDestIdx: 3, Start: true},
		{Op: isa.OpADD, Dest: 4, Src1: 0, Src2: 0, T1: true, I1: 3, Imm: 1, HasImm: true, EDest: true},
	})
	if m.R[4] != 43 {
		t.Errorf("internal flow result = %d, want 43", m.R[4])
	}
}

func TestDualDestination(t *testing.T) {
	m := run(t, []isa.Instruction{
		ldimm(1, 7),
		{Op: isa.OpADD, Dest: 5, Src1: 1, Imm: 1, HasImm: true, IDest: true, IDestIdx: 2, EDest: true},
		{Op: isa.OpADD, Dest: 6, Src1: 0, T1: true, I1: 2, Imm: 0, HasImm: true, EDest: true},
	})
	if m.R[5] != 8 || m.R[6] != 8 {
		t.Errorf("dual destination: r5=%d r6=%d, want 8 8", m.R[5], m.R[6])
	}
}

func TestMaxSteps(t *testing.T) {
	instrs := []isa.Instruction{
		{Op: isa.OpBR}, // infinite loop to self
		{Op: isa.OpHALT},
	}
	instrs[0].SetBranchTarget(0, 0)
	p := &isa.Program{Name: "loop", Instrs: instrs}
	m := New(p)
	if _, err := m.Run(100, nil); err != ErrMaxSteps {
		t.Errorf("err = %v, want ErrMaxSteps", err)
	}
}

func TestStepInfoBranch(t *testing.T) {
	instrs := []isa.Instruction{
		ldimm(1, 1),
		{Op: isa.OpBNE, Src1: 1},
		{Op: isa.OpNOP},
		{Op: isa.OpHALT},
	}
	instrs[1].SetBranchTarget(1, 3)
	p := &isa.Program{Name: "b", Instrs: instrs}
	m := New(p)
	var infos []StepInfo
	if _, err := m.Run(100, func(si *StepInfo) { infos = append(infos, *si) }); err != nil {
		t.Fatal(err)
	}
	if len(infos) != 3 {
		t.Fatalf("executed %d instrs, want 3", len(infos))
	}
	if !infos[1].Taken || infos[1].Target != 3 {
		t.Errorf("branch info = taken=%v target=%d, want true 3", infos[1].Taken, infos[1].Target)
	}
}

func TestFinalStateEquality(t *testing.T) {
	mk := func(v int32) FinalState {
		p := &isa.Program{Name: "x", Instrs: []isa.Instruction{
			ldimm(1, v),
			ldimm(2, isa.DataBase),
			{Op: isa.OpSTQ, Src1: 1, Src2: 2},
			{Op: isa.OpHALT},
		}}
		fs, err := RunProgram(p, 1000)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	a, b, c := mk(5), mk(5), mk(6)
	if !a.Equal(b) {
		t.Error("identical executions compare unequal")
	}
	if a.Equal(c) {
		t.Error("different executions compare equal")
	}
}

func TestMemoryHashIgnoresZeroPages(t *testing.T) {
	m1, m2 := NewMemory(), NewMemory()
	m1.Write64(0x5000, 0) // touch a page with zeroes only
	if m1.Hash() != m2.Hash() {
		t.Error("zero-only page changed the hash")
	}
	m1.Write64(0x5000, 7)
	if m1.Hash() == m2.Hash() {
		t.Error("differing memories hash equal")
	}
}

func TestMemoryRoundTrip(t *testing.T) {
	m := NewMemory()
	m.Write64(0x1fff, 0xdeadbeefcafef00d) // straddles a page boundary
	if got := m.Read64(0x1fff); got != 0xdeadbeefcafef00d {
		t.Errorf("read64 = %#x", got)
	}
	m.Write32(100, 0x12345678)
	if got := m.Read32(100); got != 0x12345678 {
		t.Errorf("read32 = %#x", got)
	}
	m.WriteBytes(200, []byte{1, 2, 3})
	if got := m.ReadBytes(200, 3); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("readbytes = %v", got)
	}
}

func TestValueStats(t *testing.T) {
	// r1 written once and read twice; r2 written and never read;
	// r3 written and read once.
	instrs := []isa.Instruction{
		ldimm(1, 5),
		ldimm(2, 6),
		{Op: isa.OpADD, Dest: 3, Src1: 1, Src2: 1},
		{Op: isa.OpADD, Dest: 2, Src1: 3, Imm: 0, HasImm: true},
		{Op: isa.OpHALT},
	}
	p := &isa.Program{Name: "vs", Instrs: instrs}
	vs, err := Characterize(p, 1000)
	if err != nil {
		t.Fatal(err)
	}
	// Values: r1 (2 reads), r2 first write (0 reads, overwritten), r3 (1
	// read), r2 second write (0 reads, retired at Finish).
	if vs.TotalValues != 4 {
		t.Fatalf("TotalValues = %d, want 4", vs.TotalValues)
	}
	if vs.Fanout[0] != 2 || vs.Fanout[1] != 1 || vs.Fanout[2] != 1 {
		t.Errorf("fanout histogram = %v", vs.Fanout[:3])
	}
	if vs.FracUnused() != 0.5 {
		t.Errorf("FracUnused = %v, want 0.5", vs.FracUnused())
	}
	if vs.FanoutCDF(2) != 1.0 {
		t.Errorf("FanoutCDF(2) = %v, want 1", vs.FanoutCDF(2))
	}
	if got := vs.LifetimeCDF(32); got != 1.0 {
		t.Errorf("LifetimeCDF(32) = %v, want 1", got)
	}
	if vs.String() == "" {
		t.Error("empty report")
	}
}

func TestDivOverflowDoesNotPanic(t *testing.T) {
	// INT64_MIN / -1 overflows; the interpreter must wrap, not panic.
	m := run(t, []isa.Instruction{
		ldimm(1, 1),
		{Op: isa.OpSLL, Dest: 1, Src1: 1, Imm: 63, HasImm: true}, // r1 = 1<<63
		ldimm(2, -1),
		{Op: isa.OpDIV, Dest: 3, Src1: 1, Src2: 2},
	})
	if m.R[3] != 1<<63 {
		t.Errorf("MinInt64 / -1 = %#x, want %#x", m.R[3], uint64(1)<<63)
	}
}
