package uarch

import "braid/internal/isa"

// source is one register-carried dependence of a dynamic instruction.
type source struct {
	producer *dyn // nil: value available from architectural state
	internal bool // satisfied from a BEU's internal register file
}

// dyn is one dynamic instruction flowing through the timing model. Its
// functional effects (branch outcome, memory address) were computed by the
// front end at fetch; the timing fields are filled in as it advances.
type dyn struct {
	seq  uint64
	idx  int // static instruction index
	in   *isa.Instruction
	addr uint64 // memory address (loads/stores)

	isLoad, isStore, isBranch bool
	taken                     bool
	mispredicted              bool

	braidStart bool
	braidID    uint64 // braid core: which braid this instruction belongs to
	beu        int    // braid core: owning BEU
	sched      int    // out-of-order: scheduler; dep-steer: FIFO

	srcs  [3]source
	nsrcs int

	hasExtDest bool // writes the external register file
	hasIntDest bool // writes a BEU-internal register

	fetchCycle    uint64
	dispatchReady uint64
	dispatchCycle uint64
	dispatched    bool

	issued     bool
	issueCycle uint64
	execDone   uint64 // functional-unit result ready

	completed     bool
	completeCycle uint64 // external value written back (visible)
	bypassed      bool   // granted a bypass-network slot at writeback

	retired bool

	// Early-release bookkeeping for the external register file entry
	// (dead-value information, DESIGN.md §1): the entry frees when the
	// value is written back, every consumer has issued, and the next
	// writer of the register has been fetched.
	pendingReads int
	closed       bool // next writer of the register has been fetched
	entryFreed   bool
}

// latency returns d's functional-unit latency (memory handled separately).
func (m *Machine) latency(d *dyn) int {
	switch d.in.Info().Class {
	case isa.ClassIntALU, isa.ClassNop, isa.ClassBranch:
		return m.cfg.LatIntALU
	case isa.ClassIntMul:
		return m.cfg.LatIntMul
	case isa.ClassIntDiv:
		return m.cfg.LatIntDiv
	case isa.ClassFPAdd:
		return m.cfg.LatFPAdd
	case isa.ClassFPMul:
		return m.cfg.LatFPMul
	case isa.ClassFPDiv:
		return m.cfg.LatFPDiv
	}
	return 1
}

// intReady reports whether an internal-file source from producer p can feed
// an issue at cycle t (internal writes forward directly inside the BEU).
func intReady(p *dyn, t uint64) bool {
	return p.issued && t >= p.execDone
}
