// Command braidbench regenerates every table and figure of the paper's
// evaluation. With no flags it runs all experiments and prints text tables;
// -exp selects one experiment, -md emits markdown (used to build
// EXPERIMENTS.md), and -dyn sets the per-benchmark dynamic instruction
// budget.
//
// Usage:
//
//	braidbench [-exp id] [-dyn N] [-j N] [-md] [-list]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"time"

	"braid/internal/experiments"
	"braid/internal/uarch"
)

func main() {
	// Batch tool: trade heap headroom for fewer GC cycles. The simulator's
	// steady state is allocation-free, so most garbage is suite-preparation
	// churn; collecting it lazily shaves wall-clock without touching output.
	debug.SetGCPercent(400)

	var (
		expID      = flag.String("exp", "", "run a single experiment (see -list)")
		dyn        = flag.Uint64("dyn", 30000, "dynamic instructions per benchmark")
		jobs       = flag.Int("j", runtime.GOMAXPROCS(0), "parallel simulations (0: one per processor)")
		md         = flag.Bool("md", false, "emit markdown instead of text tables")
		csv        = flag.Bool("csv", false, "emit comma-separated values instead of text tables")
		list       = flag.Bool("list", false, "list experiment ids and exit")
		ablations  = flag.Bool("ablations", false, "run the ablation studies instead of the paper artifacts")
		complexity = flag.Bool("complexity", false, "print the §5.1 structure-complexity comparison and exit")
		throughput = flag.Bool("throughput", false, "append a JSON simulator-throughput summary to stdout")
	)
	flag.Parse()

	if *complexity {
		fmt.Print(uarch.ComplexityReport(8))
		return
	}

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		for _, e := range experiments.Ablations() {
			fmt.Printf("%-14s %s\n", e.ID, e.Title)
		}
		return
	}

	var todo []experiments.Experiment
	switch {
	case *expID != "":
		e, ok := experiments.ByID(*expID)
		if !ok {
			e, ok = experiments.AblationByID(*expID)
		}
		if !ok {
			fmt.Fprintf(os.Stderr, "braidbench: unknown experiment %q (try -list)\n", *expID)
			os.Exit(1)
		}
		todo = []experiments.Experiment{e}
	case *ablations:
		todo = experiments.Ablations()
	default:
		todo = experiments.All()
	}

	start := time.Now()
	fmt.Fprintf(os.Stderr, "braidbench: preparing 26-benchmark suite (~%d dynamic instructions each, %d workers)\n",
		*dyn, *jobs)
	w, err := experiments.LoadSuiteJobs(*dyn, *jobs)
	if err != nil {
		fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "braidbench: suite ready in %v\n", time.Since(start).Round(time.Millisecond))

	for _, e := range todo {
		t0 := time.Now()
		res, err := e.Run(w)
		if err != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		switch {
		case *md:
			fmt.Print(res.Markdown())
		case *csv:
			fmt.Printf("# %s: %s\n%s\n", res.ID, res.Title, res.CSV())
		default:
			fmt.Println(res.String())
		}
		fmt.Fprintf(os.Stderr, "braidbench: %s done in %v\n", e.ID, time.Since(t0).Round(time.Millisecond))
	}
	fmt.Fprintf(os.Stderr, "braidbench: %d experiments, %d simulations, %v total\n",
		len(todo), w.SimRuns(), time.Since(start).Round(time.Millisecond))

	if *throughput {
		secs := time.Since(start).Seconds()
		summary := struct {
			Simulations  uint64  `json:"simulations"`
			Instructions uint64  `json:"instructions"`
			Cycles       uint64  `json:"cycles"`
			Seconds      float64 `json:"seconds"`
			MIPS         float64 `json:"mips"`
			Jobs         int     `json:"jobs"`
		}{
			Simulations:  w.SimRuns(),
			Instructions: w.SimInstrs(),
			Cycles:       w.SimCycles(),
			Seconds:      secs,
			MIPS:         float64(w.SimInstrs()) / secs / 1e6,
			Jobs:         *jobs,
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(summary); err != nil {
			fmt.Fprintf(os.Stderr, "braidbench: %v\n", err)
			os.Exit(1)
		}
	}
}
