// Package bpred implements the branch direction predictors used by the
// simulators: the perceptron predictor from Table 4 (512-entry weight table,
// 64-bit global history) and a perfect oracle used for the Figure 1
// potential-performance study.
package bpred

// Predictor predicts conditional branch directions. Because the timing
// simulator is functionally directed (the correct outcome is known when the
// branch is fetched), Predict receives the actual outcome; real predictors
// must ignore it, while the perfect oracle returns it. Train is called once
// per dynamic branch with the actual outcome.
type Predictor interface {
	Predict(pc uint64, actual bool) bool
	Train(pc uint64, taken bool)
}

// Perfect is the oracle predictor: never wrong.
type Perfect struct{}

// Predict returns the actual outcome.
func (Perfect) Predict(_ uint64, actual bool) bool { return actual }

// Train is a no-op.
func (Perfect) Train(uint64, bool) {}

// Perceptron is the perceptron predictor of Jiménez and Lin, configured per
// the paper's Table 4: a 512-entry weight table indexed by PC, with 64 bits
// of global history.
type Perceptron struct {
	histBits int
	entries  int
	weights  []int16 // entries × (histBits+1), flat; slot 0 of each row is the bias
	history  uint64
	theta    int32

	// One-entry output cache: the simulator calls Predict then Train on the
	// same branch with unchanged history, so the second dot product is free.
	lastPC    uint64
	lastHist  uint64
	lastY     int32
	lastValid bool

	// Statistics.
	Predictions uint64
	Mispredicts uint64
}

// NewPerceptron builds a predictor with the given table size and history
// length. Table 4's configuration is NewPerceptron(512, 64).
func NewPerceptron(entries, histBits int) *Perceptron {
	if entries <= 0 || histBits <= 0 || histBits > 64 {
		panic("bpred: bad perceptron configuration")
	}
	return &Perceptron{
		histBits: histBits,
		entries:  entries,
		weights:  make([]int16, entries*(histBits+1)),
		// Jiménez & Lin's threshold: 1.93*h + 14.
		theta: int32(1.93*float64(histBits) + 14),
	}
}

// row returns the weight vector selected by pc (bias first).
func (p *Perceptron) row(pc uint64) []int16 {
	h := pc ^ pc>>9 ^ pc>>17
	i := int(h % uint64(p.entries))
	return p.weights[i*(p.histBits+1) : (i+1)*(p.histBits+1)]
}

func (p *Perceptron) output(pc uint64) int32 {
	if p.lastValid && p.lastPC == pc && p.lastHist == p.history {
		return p.lastY
	}
	w := p.row(pc)
	y := int32(w[0])
	h := p.history
	for i := 1; i <= p.histBits; i++ {
		// Branchless ±w: sign is +1 when the history bit is set, -1 when
		// clear; identical arithmetic to the obvious if/else.
		s := int32(h&1)<<1 - 1
		y += s * int32(w[i])
		h >>= 1
	}
	p.lastPC, p.lastHist, p.lastY, p.lastValid = pc, p.history, y, true
	return y
}

// Predict returns the perceptron's direction guess; the actual outcome is
// ignored (it is consumed by the simulator for oracle predictors only).
func (p *Perceptron) Predict(pc uint64, _ bool) bool {
	return p.output(pc) >= 0
}

const weightMax = 127 // keep weights in signed-byte range, as hardware would

// Train updates the indexed perceptron with the resolved outcome and shifts
// the global history. The simulator calls it once per dynamic conditional
// branch, in fetch order.
func (p *Perceptron) Train(pc uint64, taken bool) {
	y := p.output(pc)
	pred := y >= 0
	p.Predictions++
	if pred != taken {
		p.Mispredicts++
	}
	if pred != taken || abs32(y) <= p.theta {
		w := p.row(pc)
		adj := func(i int, agree bool) {
			if agree {
				if w[i] < weightMax {
					w[i]++
				}
			} else if w[i] > -weightMax {
				w[i]--
			}
		}
		adj(0, taken)
		for i := 0; i < p.histBits; i++ {
			h := p.history>>uint(i)&1 != 0
			adj(i+1, h == taken)
		}
	}
	p.history = p.history<<1 | b2u(taken)
	p.lastValid = false
}

// MispredictRate returns the fraction of trained branches that were
// mispredicted.
func (p *Perceptron) MispredictRate() float64 {
	if p.Predictions == 0 {
		return 0
	}
	return float64(p.Mispredicts) / float64(p.Predictions)
}

func abs32(x int32) int32 {
	if x < 0 {
		return -x
	}
	return x
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}
