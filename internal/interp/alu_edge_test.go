package interp

import (
	"math"
	"testing"

	"braid/internal/isa"
)

// These tables pin the architectural edge cases of the BRD64 ALU — the value
// semantics every other layer (the braid compiler, the timing cores, the
// remote digests) inherits through the interpreter's role as shared oracle.
// Each case encodes a deliberate design decision documented in alu():
// canonical NaN bit patterns, explicit CVTFI saturation, 6-bit shift-count
// masking, and read-old-dest conditional moves.

const (
	posZero = uint64(0)
	negZero = uint64(1) << 63
	one     = uint64(0x3FF0000000000000) // 1.0
	// NaNs with non-canonical payloads, as could arrive from program data.
	sNaNPayload = uint64(0x7FF0000000000001)
	qNaNNegPay  = uint64(0xFFF8000000000042)
)

func fbits(f float64) uint64 { return math.Float64bits(f) }

func TestALUNaNCanonicalization(t *testing.T) {
	inf := fbits(math.Inf(1))
	ninf := fbits(math.Inf(-1))
	cases := []struct {
		name string
		op   isa.Opcode
		a, b uint64
	}{
		{"inf+(-inf)", isa.OpFADD, inf, ninf},
		{"inf-inf", isa.OpFSUB, inf, inf},
		{"0*inf", isa.OpFMUL, posZero, inf},
		{"-0*inf", isa.OpFMUL, negZero, inf},
		{"0/0", isa.OpFDIV, posZero, posZero},
		{"inf/inf", isa.OpFDIV, inf, inf},
		{"sqrt(-1)", isa.OpFSQRT, fbits(-1.0), 0},
		// NaN operands with unusual payloads must not leak their payload
		// into the result: host hardware disagrees on NaN propagation, and
		// a payload-dependent result would make stored memory images (and
		// hence cross-machine digests) host-dependent.
		{"sNaN+1", isa.OpFADD, sNaNPayload, one},
		{"qNaN*2", isa.OpFMUL, qNaNNegPay, fbits(2.0)},
		{"1/qNaN", isa.OpFDIV, one, qNaNNegPay},
		{"sqrt(qNaN)", isa.OpFSQRT, qNaNNegPay, 0},
	}
	for _, c := range cases {
		if got := alu(c.op, c.a, c.b, 0); got != canonicalNaN {
			t.Errorf("%s: alu(%s, %#x, %#x) = %#x, want canonical NaN %#x",
				c.name, c.op, c.a, c.b, got, uint64(canonicalNaN))
		}
	}
}

func TestALUNaNAndSignedZeroCompares(t *testing.T) {
	nan := uint64(canonicalNaN)
	cases := []struct {
		name string
		op   isa.Opcode
		a, b uint64
		want uint64 // float64 bits of 1.0 or 0.0
	}{
		// NaN compares unordered: every comparison is false, including
		// NaN == NaN.
		{"nan==nan", isa.OpFCMPEQ, nan, nan, posZero},
		{"nan<1", isa.OpFCMPLT, nan, one, posZero},
		{"1<nan", isa.OpFCMPLT, one, nan, posZero},
		{"nan<=nan", isa.OpFCMPLE, nan, nan, posZero},
		{"sNaN==sNaN", isa.OpFCMPEQ, sNaNPayload, sNaNPayload, posZero},
		// Signed zeros compare equal despite distinct bit patterns.
		{"+0==-0", isa.OpFCMPEQ, posZero, negZero, one},
		{"-0<+0", isa.OpFCMPLT, negZero, posZero, posZero},
		{"-0<=+0", isa.OpFCMPLE, negZero, posZero, one},
		{"+0<=-0", isa.OpFCMPLE, posZero, negZero, one},
	}
	for _, c := range cases {
		if got := alu(c.op, c.a, c.b, 0); got != c.want {
			t.Errorf("%s: alu(%s) = %#x, want %#x", c.name, c.op, got, c.want)
		}
	}
}

func TestALUSignedZeroArithmetic(t *testing.T) {
	five := fbits(5.0)
	cases := []struct {
		name string
		op   isa.Opcode
		a, b uint64
		want uint64
	}{
		// IEEE 754 sign rules, bit-exact: the sign of a zero result is
		// architecturally visible through stores.
		{"+0 + -0", isa.OpFADD, posZero, negZero, posZero},
		{"-0 + -0", isa.OpFADD, negZero, negZero, negZero},
		{"+0 - +0", isa.OpFSUB, posZero, posZero, posZero},
		{"-0 * 5", isa.OpFMUL, negZero, five, negZero},
		{"-0 / 5", isa.OpFDIV, negZero, five, negZero},
		{"neg(+0)", isa.OpFNEG, posZero, 0, negZero},
		{"neg(-0)", isa.OpFNEG, negZero, 0, posZero},
		{"sqrt(-0)", isa.OpFSQRT, negZero, 0, negZero},
	}
	for _, c := range cases {
		if got := alu(c.op, c.a, c.b, 0); got != c.want {
			t.Errorf("%s: alu(%s) = %#x, want %#x", c.name, c.op, got, c.want)
		}
	}
}

func TestCVTFISaturation(t *testing.T) {
	// 2^63 as a float64; also the rounded value of float64(MaxInt64).
	two63 := math.Ldexp(1, 63)
	cases := []struct {
		name string
		f    float64
		want uint64
	}{
		{"+inf", math.Inf(1), math.MaxInt64},
		{"-inf", math.Inf(-1), 1 << 63},
		{"1e300", 1e300, math.MaxInt64},
		{"-1e300", -1e300, 1 << 63},
		// Exactly 2^63 is the first positive out-of-range value.
		{"2^63", two63, math.MaxInt64},
		// The largest float64 below 2^63 converts exactly.
		{"just under 2^63", math.Nextafter(two63, 0), 9223372036854774784},
		// -2^63 == MinInt64 exactly: in range, converts to the sign bit.
		{"-2^63", -two63, 1 << 63},
		// First value below MinInt64 saturates to the same bit pattern.
		{"below -2^63", math.Nextafter(-two63, math.Inf(-1)), 1 << 63},
		{"0.5", 0.5, 0},
		{"-0.5", -0.5, 0},
		{"-0.0", math.Copysign(0, -1), 0},
		{"1.5 truncates", 1.5, 1},
		{"-1.9 truncates", -1.9, ^uint64(0)},
	}
	for _, c := range cases {
		if got := alu(isa.OpCVTFI, fbits(c.f), 0, 0); got != c.want {
			t.Errorf("%s: cvtfi(%v) = %#x, want %#x", c.name, c.f, got, c.want)
		}
	}
	// NaN converts to zero regardless of payload.
	for _, bits := range []uint64{canonicalNaN, sNaNPayload, qNaNNegPay} {
		if got := alu(isa.OpCVTFI, bits, 0, 0); got != 0 {
			t.Errorf("cvtfi(NaN %#x) = %#x, want 0", bits, got)
		}
	}
}

func TestCVTRoundTrips(t *testing.T) {
	// u2f/f2u preserve every bit pattern, including NaN payloads: they are
	// pure reinterpretations, never value conversions.
	for _, bits := range []uint64{0, negZero, one, canonicalNaN, sNaNPayload, qNaNNegPay, ^uint64(0)} {
		if got := f2u(u2f(bits)); got != bits {
			t.Errorf("f2u(u2f(%#x)) = %#x, bit pattern not preserved", bits, got)
		}
	}
	// CVTIF∘CVTFI is the identity on integers float64 represents exactly.
	for _, v := range []int64{0, 1, -1, 1 << 52, -(1 << 52), 1 << 62, math.MinInt64} {
		f := alu(isa.OpCVTIF, uint64(v), 0, 0)
		if got := int64(alu(isa.OpCVTFI, f, 0, 0)); got != v {
			t.Errorf("cvtfi(cvtif(%d)) = %d", v, got)
		}
	}
	// MaxInt64 is NOT exactly representable: cvtif rounds it up to 2^63,
	// and cvtfi saturates that straight back to MaxInt64.
	f := alu(isa.OpCVTIF, math.MaxInt64, 0, 0)
	if u2f(f) != math.Ldexp(1, 63) {
		t.Errorf("cvtif(MaxInt64) = %v, want 2^63", u2f(f))
	}
	if got := alu(isa.OpCVTFI, f, 0, 0); got != math.MaxInt64 {
		t.Errorf("cvtfi(cvtif(MaxInt64)) = %#x, want MaxInt64", got)
	}
}

func TestShiftCountMasking(t *testing.T) {
	cases := []struct {
		name string
		op   isa.Opcode
		a    uint64
		b    uint64
		want uint64
	}{
		{"sll by 63", isa.OpSLL, 1, 63, 1 << 63},
		{"sll by 64 is 0", isa.OpSLL, 1, 64, 1},
		{"sll by 65 is 1", isa.OpSLL, 1, 65, 2},
		{"sll by -1 is 63", isa.OpSLL, 1, ^uint64(0), 1 << 63},
		{"srl by 63", isa.OpSRL, 1 << 63, 63, 1},
		{"srl by 64 is 0", isa.OpSRL, 1 << 63, 64, 1 << 63},
		{"sra by 63 fills sign", isa.OpSRA, 1 << 63, 63, ^uint64(0)},
		{"sra by 64 is 0", isa.OpSRA, ^uint64(15), 64, ^uint64(15)},
		{"sra positive", isa.OpSRA, 1 << 62, 62, 1},
	}
	for _, c := range cases {
		if got := alu(c.op, c.a, c.b, 0); got != c.want {
			t.Errorf("%s: alu(%s, %#x, %d) = %#x, want %#x", c.name, c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestSignedUnsignedCompareBoundaries(t *testing.T) {
	min := uint64(1) << 63 // MinInt64 bit pattern; largest unsigned MSB value
	max := uint64(math.MaxInt64)
	cases := []struct {
		name string
		op   isa.Opcode
		a, b uint64
		want uint64
	}{
		// The sign bit flips the two orderings against each other.
		{"min <s 0", isa.OpCMPLT, min, 0, 1},
		{"min <u 0", isa.OpCMPULT, min, 0, 0},
		{"0 <u min", isa.OpCMPULT, 0, min, 1},
		{"0 <s min", isa.OpCMPLT, 0, min, 0},
		{"max <s min", isa.OpCMPLT, max, min, 0},
		{"max <u min", isa.OpCMPULT, max, min, 1},
		{"min <=s min", isa.OpCMPLE, min, min, 1},
		{"-1 <u 0", isa.OpCMPULT, ^uint64(0), 0, 0},
		{"0 <u -1", isa.OpCMPULT, 0, ^uint64(0), 1},
		{"min == min", isa.OpCMPEQ, min, min, 1},
	}
	for _, c := range cases {
		if got := alu(c.op, c.a, c.b, 0); got != c.want {
			t.Errorf("%s: alu(%s, %#x, %#x) = %d, want %d", c.name, c.op, c.a, c.b, got, c.want)
		}
	}
}

func TestSelfOverwritingDest(t *testing.T) {
	// Instructions whose destination is also a source must read the old
	// value before writing: the timing cores rename these, so any
	// read-after-write confusion in the oracle would poison every
	// downstream comparison.
	t.Run("add r1,r1,r1", func(t *testing.T) {
		m := run(t, []isa.Instruction{
			ldimm(1, 21),
			{Op: isa.OpADD, Dest: 1, Src1: 1, Src2: 1},
		})
		if m.R[1] != 42 {
			t.Errorf("r1 = %d, want 42", m.R[1])
		}
	})
	t.Run("cmov cond is dest", func(t *testing.T) {
		// CMOVEQ r1, r1, r2 with r1 == 0: the condition and the old-dest
		// read are the same register; the move must land.
		m := run(t, []isa.Instruction{
			ldimm(2, 99),
			{Op: isa.OpCMOVEQ, Dest: 1, Src1: 1, Src2: 2},
			// And with a nonzero condition the old value must survive.
			ldimm(3, 7),
			{Op: isa.OpCMOVEQ, Dest: 3, Src1: 3, Src2: 2},
		})
		if m.R[1] != 99 {
			t.Errorf("cmoveq with zero self-cond: r1 = %d, want 99", m.R[1])
		}
		if m.R[3] != 7 {
			t.Errorf("cmoveq with nonzero self-cond overwrote dest: r3 = %d", m.R[3])
		}
	})
	t.Run("load clobbers own address base", func(t *testing.T) {
		m := run(t, []isa.Instruction{
			ldimm(1, isa.DataBase),
			ldimm(2, 1234),
			{Op: isa.OpSTQ, Src1: 2, Src2: 1},
			{Op: isa.OpLDQ, Dest: 1, Src1: 1}, // r1 = mem[r1]
			{Op: isa.OpADD, Dest: 3, Src1: 1, Imm: 0, HasImm: true},
		})
		if m.R[3] != 1234 {
			t.Errorf("load into own base: r3 = %d, want 1234", m.R[3])
		}
	})
	t.Run("store data is address", func(t *testing.T) {
		m := run(t, []isa.Instruction{
			ldimm(1, isa.DataBase),
			{Op: isa.OpSTQ, Src1: 1, Src2: 1}, // mem[r1] = r1
			{Op: isa.OpLDQ, Dest: 2, Src1: 1},
		})
		if m.R[2] != isa.DataBase {
			t.Errorf("mem[base] = %#x, want %#x", m.R[2], uint64(isa.DataBase))
		}
	})
	t.Run("dual-dest reads source before either write", func(t *testing.T) {
		// Braided dual-destination write where the external dest equals
		// the source: internal and external copies must both get old+1.
		m := run(t, []isa.Instruction{
			ldimm(1, 7),
			{Op: isa.OpADD, Dest: 1, Src1: 1, Imm: 1, HasImm: true, IDest: true, IDestIdx: 2, EDest: true},
			{Op: isa.OpADD, Dest: 6, Src1: 0, T1: true, I1: 2, Imm: 0, HasImm: true, EDest: true},
		})
		if m.R[1] != 8 || m.R[6] != 8 {
			t.Errorf("dual dest self-overwrite: r1=%d r6=%d, want 8 8", m.R[1], m.R[6])
		}
	})
}
