package remote

import (
	"sync"
	"time"
)

// breakerState is one backend's circuit-breaker position.
type breakerState int

const (
	stateClosed   breakerState = iota // healthy: requests flow
	stateOpen                         // tripped: requests short-circuit until cooldown
	stateHalfOpen                     // cooling down: one probe request at a time
)

func (s breakerState) String() string {
	switch s {
	case stateOpen:
		return "open"
	case stateHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breakerConfig tunes one breaker; zero fields take the pool defaults.
type breakerConfig struct {
	threshold int           // consecutive failures that trip the breaker
	window    int           // outcome ring length for rate tripping
	rate      float64       // failure fraction over a full window that trips
	cooldown  time.Duration // open -> half-open delay, and probe expiry
}

// breaker is a per-backend circuit breaker. Closed, it records outcomes and
// trips open on either a run of consecutive failures or a failure rate over
// a sliding outcome window; open, it short-circuits requests until cooldown
// has passed; half-open, it admits one probe at a time — a probe success
// closes the breaker, a failure re-opens it, and an unreported probe (the
// caller was canceled mid-flight) expires after another cooldown so the
// breaker can never deadlock waiting on a verdict that will not come.
//
// All methods take the clock as a parameter, so state-machine tests drive
// time synthetically.
type breaker struct {
	mu  sync.Mutex
	cfg breakerConfig

	state    breakerState
	consec   int    // consecutive failures while closed
	ring     []bool // sliding outcome window; true = failure
	ringN    int    // valid entries
	ringPos  int
	openedAt time.Time
	probing  bool
	probeAt  time.Time

	trips  uint64 // closed->open transitions, ejects and re-opens included
	probes uint64 // half-open probes granted
}

func newBreaker(cfg breakerConfig) *breaker {
	if cfg.threshold <= 0 {
		cfg.threshold = 3
	}
	if cfg.window <= 0 {
		cfg.window = 20
	}
	if cfg.rate <= 0 || cfg.rate > 1 {
		cfg.rate = 0.5
	}
	if cfg.cooldown <= 0 {
		cfg.cooldown = time.Second
	}
	return &breaker{cfg: cfg, ring: make([]bool, cfg.window)}
}

// allow reports whether a request may be sent now. While half-open it grants
// at most one in-flight probe per cooldown period.
func (b *breaker) allow(now time.Time) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateClosed:
		return true
	case stateOpen:
		if now.Sub(b.openedAt) < b.cfg.cooldown {
			return false
		}
		b.state = stateHalfOpen
		b.probing = true
		b.probeAt = now
		b.probes++
		return true
	default: // half-open
		if b.probing && now.Sub(b.probeAt) <= b.cfg.cooldown {
			return false // a probe is already in flight and not yet expired
		}
		b.probing = true
		b.probeAt = now
		b.probes++
		return true
	}
}

// success records an authoritative answer from the backend: it closes a
// half-open (or stale open) breaker and clears the failure run.
func (b *breaker) success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateClosed {
		b.resetLocked()
		return
	}
	b.consec = 0
	b.recordLocked(false)
}

// failure records a failed attempt, tripping or re-opening as configured.
func (b *breaker) failure(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case stateHalfOpen:
		// The probe failed: back to fully open, restart the cooldown.
		b.state = stateOpen
		b.openedAt = now
		b.probing = false
		b.trips++
	case stateClosed:
		b.consec++
		b.recordLocked(true)
		if b.consec >= b.cfg.threshold || b.rateTrippedLocked() {
			b.tripLocked(now)
		}
	case stateOpen:
		// A stale in-flight failure from before the trip: nothing to learn,
		// and extending the cooldown for it would delay recovery.
	}
}

// eject force-opens the breaker (the health prober declared the backend
// down). Repeated ejects refresh the cooldown so the request path keeps
// short-circuiting for as long as the prober keeps failing.
func (b *breaker) eject(now time.Time) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state != stateOpen {
		b.trips++
	}
	b.state = stateOpen
	b.openedAt = now
	b.probing = false
}

// reinstate force-closes the breaker (the health prober's canary passed).
func (b *breaker) reinstate() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.resetLocked()
}

// snapshot returns the state name and lifetime trip/probe counts.
func (b *breaker) snapshot() (state string, trips, probes uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.trips, b.probes
}

func (b *breaker) tripLocked(now time.Time) {
	b.state = stateOpen
	b.openedAt = now
	b.probing = false
	b.trips++
	b.consec = 0
	b.ringN, b.ringPos = 0, 0
}

func (b *breaker) resetLocked() {
	b.state = stateClosed
	b.consec = 0
	b.ringN, b.ringPos = 0, 0
	b.probing = false
}

func (b *breaker) recordLocked(failed bool) {
	b.ring[b.ringPos] = failed
	b.ringPos = (b.ringPos + 1) % len(b.ring)
	if b.ringN < len(b.ring) {
		b.ringN++
	}
}

// rateTrippedLocked reports whether a full outcome window's failure fraction
// has reached the configured rate. It never fires on a partial window, so a
// cold breaker cannot trip on its very first blip.
func (b *breaker) rateTrippedLocked() bool {
	if b.ringN < len(b.ring) {
		return false
	}
	failed := 0
	for _, f := range b.ring {
		if f {
			failed++
		}
	}
	return float64(failed)/float64(len(b.ring)) >= b.cfg.rate
}
