// Package uarch is the cycle-level, execution-driven simulator. It models
// the two pipelines of Table 4 — an aggressive conventional out-of-order
// design and the braid microarchitecture — plus the in-order and
// dependence-based-steering baselines of Figure 13, over a shared front end
// (perceptron branch prediction, instruction cache, allocate/rename
// bandwidth), a shared memory hierarchy with a load-store queue, and shared
// external-register-file and bypass-network resource models.
//
// The simulator is functionally directed: the front end executes the program
// functionally (via internal/interp) in fetch order, which pins down every
// dependence, branch outcome, and memory address exactly; the timing model
// then decides how many cycles the machine needs. Mispredicted branches
// stall fetch until they execute and then pay the configured redirect
// penalty (DESIGN.md §2a).
package uarch

import (
	"fmt"

	"braid/internal/mem"
)

// CoreKind selects the execution-core paradigm.
type CoreKind int

// The four paradigms of Figure 13.
const (
	CoreInOrder CoreKind = iota
	CoreDepSteer
	CoreBraid
	CoreOutOfOrder
)

func (k CoreKind) String() string {
	switch k {
	case CoreInOrder:
		return "in-order"
	case CoreDepSteer:
		return "dep-steer"
	case CoreBraid:
		return "braid"
	case CoreOutOfOrder:
		return "out-of-order"
	}
	return "core?"
}

// Config is a complete machine configuration. Zero values are invalid; use
// the constructors below for Table 4's machines and mutate fields for the
// sensitivity sweeps.
type Config struct {
	Core CoreKind

	// Front end.
	FetchWidth    int // instructions fetched per cycle
	FetchBranches int // branches the front end can process per cycle (3)
	FrontDepth    int // cycles from fetch to dispatch (rename etc.)
	AllocWidth    int // external-destination allocations per cycle
	RenameSrc     int // external source operands renamed per cycle
	MispredictMin int // minimum branch misprediction penalty in cycles
	PerfectBP     bool

	// Branch-predictor geometry (Table 4: a 512-entry perceptron weight
	// table over 64 bits of global history). Zero fields take those
	// defaults, so pre-existing configurations and their golden results
	// are unchanged; the design-space explorer sweeps them explicitly.
	PredEntries int // perceptron weight-table entries (0: 512)
	PredHistory int // global history bits, at most 64 (0: 64)

	// Execution resources.
	IssueWidth  int
	RetireWidth int // instructions committed per cycle (0: IssueWidth)
	TotalFUs    int // general-purpose functional units (all cores)
	ROB         int // maximum instructions in flight

	// External register file (in-flight value storage; DESIGN.md §1).
	RFEntries    int
	RFReadPorts  int
	RFWritePorts int

	// Bypass network.
	BypassLevels int // cycles a result remains on the bypass network
	BypassValues int // results that may enter the network per cycle

	// ExtWakeupExtra adds cycles before an external-register value can
	// wake consumers. The braid machine pays one cycle to synchronize
	// the busy-bit vectors across BEUs (§5.1); a conventional scheduler
	// wakes consumers with its own tag broadcast and pays nothing.
	ExtWakeupExtra int

	// DeadValueRelease frees an external register-file entry as soon as
	// the value is dead (all consumers issued and the overwriting
	// instruction fetched), using the compiler's dead-value information;
	// checkpoints cover recovery (§3.4, §6.3). The braid machine enables
	// it — that is how an 8-entry external file suffices (Figure 6) —
	// while the conventional baseline holds entries until retirement.
	DeadValueRelease bool

	// Out-of-order core: distributed schedulers.
	Schedulers   int
	SchedEntries int

	// Dependence-steering core (Palacharla-style FIFOs).
	SteerFIFOs    int
	SteerFIFODeep int

	// Braid core.
	BEUs      int
	BEUFIFO   int // instruction queue entries per BEU
	BEUWindow int // in-order scheduling window at the FIFO head
	BEUFUs    int // functional units per BEU

	// BEUQueueBraids lets a BEU's FIFO buffer braids back to back
	// instead of owning a single braid at a time; the window still only
	// examines the braid at the head (the internal register file is
	// recycled between braids). The paper's text says one braid per BEU
	// (§3.3), but its 32-entry FIFO for ~3-instruction braids suggests
	// buffering; this flag lets both readings be evaluated.
	BEUQueueBraids bool

	// Clustering (paper §5.2, future work): BEUs are grouped into
	// Clusters equal groups; an external value produced in one cluster
	// reaches consumers in another only after InterClusterDelay extra
	// cycles. Zero or one cluster disables it.
	Clusters          int
	InterClusterDelay int

	// Memory hierarchy.
	Mem mem.Config

	// Operation latencies by functional-unit class.
	LatIntALU, LatIntMul, LatIntDiv int
	LatFPAdd, LatFPMul, LatFPDiv    int
	LatAGU                          int // address generation before the cache

	// Exception injection (§3.4): every ExceptionEvery retired
	// instructions the machine takes an exception — the pipeline drains,
	// fetch pays the misprediction penalty (checkpoint restore), and the
	// next ExceptionHandler instructions are serialized through BEU 0 on
	// the braid core (all-but-one BEUs disabled), modeling the paper's
	// simplicity-over-speed exception mode. Zero disables injection.
	ExceptionEvery   uint64
	ExceptionHandler int

	// MaxCycles aborts runaway simulations.
	MaxCycles uint64

	// Paranoid enables per-cycle internal consistency checks (resource
	// counters in range, ROB age order, writeback queue sanity). Tests
	// switch it on; it costs a few percent of simulation speed.
	Paranoid bool

	// NoFastForward disables idle-cycle skipping, simulating every cycle
	// individually. Results are identical either way (the equivalence
	// tests assert it); this exists for those tests and for debugging.
	NoFastForward bool

	// Inject arms the test-only fault injector (see FaultPlan): one
	// deliberate corruption of a pipeline structure, used with Paranoid to
	// prove the checker detects it and RunChecked contains it. Excluded
	// from checkpoints; never set outside tests.
	Inject *FaultPlan `json:"-"`
}

// Validate checks internal consistency. Random search (internal/explore),
// braidd request decoding, and braidsim -config replay all call it, so a
// mutated or hand-written configuration cannot construct a nonsense machine
// that the engine would mis-simulate or hang on.
func (c *Config) Validate() error {
	if c.Core < CoreInOrder || c.Core > CoreOutOfOrder {
		return fmt.Errorf("uarch: unknown core kind %d", c.Core)
	}
	if c.FetchWidth <= 0 || c.IssueWidth <= 0 || c.ROB <= 0 || c.TotalFUs <= 0 {
		return fmt.Errorf("uarch: bad widths in config: %+v", c)
	}
	if c.FetchBranches <= 0 {
		return fmt.Errorf("uarch: fetch must process at least one branch per cycle, got %d", c.FetchBranches)
	}
	if c.FrontDepth < 0 {
		return fmt.Errorf("uarch: negative front-end depth %d", c.FrontDepth)
	}
	if c.AllocWidth <= 0 || c.RenameSrc <= 0 {
		return fmt.Errorf("uarch: bad rename bandwidth (alloc %d, src %d)", c.AllocWidth, c.RenameSrc)
	}
	if c.RetireWidth < 0 {
		return fmt.Errorf("uarch: negative retire width %d", c.RetireWidth)
	}
	if c.RetireWidth == 0 {
		c.RetireWidth = c.IssueWidth
	}
	if c.RFEntries <= 0 || c.RFReadPorts <= 0 || c.RFWritePorts <= 0 {
		return fmt.Errorf("uarch: bad register file config")
	}
	if c.BypassLevels <= 0 || c.BypassValues <= 0 {
		return fmt.Errorf("uarch: bad bypass network (%d levels x %d values)", c.BypassLevels, c.BypassValues)
	}
	if c.ExtWakeupExtra < 0 {
		return fmt.Errorf("uarch: negative external wakeup delay %d", c.ExtWakeupExtra)
	}
	if c.PredEntries < 0 || c.PredHistory < 0 || c.PredHistory > 64 {
		return fmt.Errorf("uarch: bad predictor geometry (%d entries, %d history bits)", c.PredEntries, c.PredHistory)
	}
	if c.MispredictMin < c.FrontDepth+2 {
		return fmt.Errorf("uarch: misprediction penalty %d below front depth %d+2", c.MispredictMin, c.FrontDepth)
	}
	for _, l := range []int{c.LatIntALU, c.LatIntMul, c.LatIntDiv, c.LatFPAdd, c.LatFPMul, c.LatFPDiv, c.LatAGU} {
		if l <= 0 {
			return fmt.Errorf("uarch: operation latencies must be at least one cycle: %+v", c)
		}
	}
	if c.Clusters < 0 || c.InterClusterDelay < 0 {
		return fmt.Errorf("uarch: bad clustering (%d clusters, %d delay)", c.Clusters, c.InterClusterDelay)
	}
	switch c.Core {
	case CoreOutOfOrder:
		if c.Schedulers <= 0 || c.SchedEntries <= 0 {
			return fmt.Errorf("uarch: out-of-order core needs schedulers")
		}
	case CoreDepSteer:
		if c.SteerFIFOs <= 0 || c.SteerFIFODeep <= 0 {
			return fmt.Errorf("uarch: dep-steer core needs FIFOs")
		}
	case CoreBraid:
		if c.BEUs <= 0 || c.BEUFIFO <= 0 || c.BEUWindow <= 0 || c.BEUFUs <= 0 {
			return fmt.Errorf("uarch: braid core needs BEU parameters")
		}
		if c.Clusters > 1 && c.BEUs%c.Clusters != 0 {
			return fmt.Errorf("uarch: %d BEUs do not divide into %d clusters", c.BEUs, c.Clusters)
		}
	}
	return nil
}

// redirectGap is the fetch-restart delay after a mispredicted branch
// executes, chosen so the minimum end-to-end penalty equals MispredictMin:
// the redirected instruction pays the gap, the front-end depth, and one
// issue cycle (verified to the cycle by TestMispredictPenaltyExact).
func (c *Config) redirectGap() uint64 {
	gap := c.MispredictMin - c.FrontDepth - 2
	if gap < 0 {
		gap = 0
	}
	return uint64(gap)
}

// scaledBranches keeps Table 4's 3-branches-per-cycle front end at 8 wide
// and scales it with width for the 4- and 16-wide design points.
func scaledBranches(width int) int {
	b := 3 * width / 8
	if b < 2 {
		b = 2
	}
	return b
}

// Latencies indexed by class are resolved through this helper.
func defaultLatencies(c *Config) {
	c.LatIntALU, c.LatIntMul, c.LatIntDiv = 1, 4, 12
	c.LatFPAdd, c.LatFPMul, c.LatFPDiv = 4, 4, 12
	c.LatAGU = 1
}

// OutOfOrderConfig returns Table 4's aggressive conventional out-of-order
// machine scaled to the given issue width (8 is the paper's default; 4 and
// 16 appear in Figures 1 and 13).
func OutOfOrderConfig(width int) Config {
	c := Config{
		Core:          CoreOutOfOrder,
		FetchWidth:    width,
		FetchBranches: scaledBranches(width),
		FrontDepth:    12,
		AllocWidth:    width,
		RenameSrc:     2 * width,
		MispredictMin: 23,
		IssueWidth:    width,
		TotalFUs:      width,
		ROB:           64 * width,
		RFEntries:     32 * width,
		RFReadPorts:   2 * width,
		RFWritePorts:  width,
		BypassLevels:  3,
		BypassValues:  width,
		// Figure 5's own shape (only -8% at 32 registers) requires the
		// conventional machine to free entries when values die, not at
		// retirement; the paper's §6.3 attributes exactly this to
		// virtual-physical registers with dead-value information.
		DeadValueRelease: true,
		Schedulers:       width,
		SchedEntries:     32,
		Mem:              mem.DefaultConfig(),
		MaxCycles:        50_000_000,
	}
	defaultLatencies(&c)
	return c
}

// BraidConfig returns Table 4's braid microarchitecture scaled to the given
// issue width: width BEUs of 2 functional units each, a 32-entry FIFO and
// 2-entry window per BEU, an 8-entry external register file with 6R/3W ports
// at 8 wide, a 1-level × 2-value bypass, and a 4-stage-shorter pipeline.
func BraidConfig(width int) Config {
	rp := 6 * width / 8
	if rp < 2 {
		rp = 2
	}
	wp := 3 * width / 8
	if wp < 1 {
		wp = 1
	}
	c := Config{
		Core:             CoreBraid,
		FetchWidth:       width,
		FetchBranches:    scaledBranches(width),
		DeadValueRelease: true,
		FrontDepth:       8,
		AllocWidth:       width / 2,
		RenameSrc:        width,
		MispredictMin:    19,
		IssueWidth:       width,
		TotalFUs:         2 * width,
		ROB:              64 * width,
		RFEntries:        width,
		RFReadPorts:      rp,
		RFWritePorts:     wp,
		BypassLevels:     1,
		BypassValues:     2,
		ExtWakeupExtra:   0,
		BEUs:             width,
		BEUFIFO:          32,
		BEUWindow:        2,
		BEUFUs:           2,
		Mem:              mem.DefaultConfig(),
		MaxCycles:        50_000_000,
	}
	defaultLatencies(&c)
	return c
}

// InOrderConfig returns the in-order baseline of Figure 13: conventional
// front end, scoreboarded in-order issue.
func InOrderConfig(width int) Config {
	c := OutOfOrderConfig(width)
	c.Core = CoreInOrder
	c.Schedulers, c.SchedEntries = 0, 0
	return c
}

// DepSteerConfig returns the dependence-based FIFO steering baseline
// (Palacharla, Jouppi & Smith), with width FIFOs of 32 entries.
func DepSteerConfig(width int) Config {
	c := OutOfOrderConfig(width)
	c.Core = CoreDepSteer
	c.Schedulers, c.SchedEntries = 0, 0
	c.SteerFIFOs = width
	c.SteerFIFODeep = 8
	return c
}
