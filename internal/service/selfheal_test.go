package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestStatsIntegrityHeader: every /v1/simulate success carries the SHA-256
// of the exact Stats bytes it embeds, so clients can verify end-to-end that
// the stats survived transit.
func TestStatsIntegrityHeader(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, body := range []string{
		`{"kernel":"dot","core":"ooo","width":8}`,
		`{"kernel":"dot","core":"ooo","width":8}`, // repeat: a cache hit must hash identically
		`{"kernel":"fig2","core":"braid","width":8}`,
	} {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", body, resp.StatusCode, data)
		}
		header := resp.Header.Get(statsSHAHeader)
		if header == "" {
			t.Fatalf("%s: no %s header", body, statsSHAHeader)
		}
		var rr struct {
			Stats json.RawMessage `json:"stats"`
		}
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		sum := sha256.Sum256(rr.Stats)
		if got := hex.EncodeToString(sum[:]); got != header {
			t.Errorf("%s: header %s != body stats sha %s", body, header, got)
		}
	}
}

// TestHealthzOverloadSignal: a healthy /healthz reports queue depth and an
// overloaded flag, flipping to true exactly when the admission queue is
// full — the signal probers use to tell "busy" from "broken".
func TestHealthzOverloadSignal(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: -1})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(_ context.Context, key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	var hb struct {
		Status     string `json:"status"`
		QueueDepth int    `json:"queue_depth"`
		Overloaded bool   `json:"overloaded"`
	}
	get := func() {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("healthz status %d", resp.StatusCode)
		}
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		hb = struct {
			Status     string `json:"status"`
			QueueDepth int    `json:"queue_depth"`
			Overloaded bool   `json:"overloaded"`
		}{}
		if err := json.Unmarshal(data, &hb); err != nil {
			t.Fatalf("healthz body %s: %v", data, err)
		}
	}

	get()
	if hb.Status != "ok" || hb.Overloaded {
		t.Fatalf("idle healthz = %+v, want ok and not overloaded", hb)
	}

	// Fill the single queue slot (Workers 1, no slack): now saturated.
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"kernel":"dot","core":"ooo"}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the simulator")
	}
	get()
	if !hb.Overloaded {
		t.Errorf("healthz with a full admission queue = %+v, want overloaded", hb)
	}
	close(release)
	<-done
	get()
	if hb.Overloaded {
		t.Errorf("healthz after drain = %+v, want not overloaded", hb)
	}
}

// TestCanaryWaitsInsteadOfShedding: a request with the canary header must
// wait for a worker slot where a normal request would be shed with 429 —
// otherwise a prober would misread a saturated backend as broken.
func TestCanaryWaitsInsteadOfShedding(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: -1})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(_ context.Context, key string) {
		select {
		case started <- key:
			<-release
		default: // the canary's own run: don't block it
		}
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Occupy the only worker and the only queue position.
	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"kernel":"dot","core":"ooo"}`))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the simulator")
	}

	// A normal request is shed...
	resp, data := postJSON(t, ts.URL+"/v1/simulate", `{"kernel":"fig2","core":"ooo"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("normal overflow request: status %d (%s), want 429", resp.StatusCode, data)
	}

	// ...but a canary waits. Issue it, prove it is still pending while the
	// worker is held, then release and watch it succeed.
	canaryDone := make(chan int, 1)
	go func() {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/simulate",
			strings.NewReader(`{"kernel":"fig2","core":"ooo"}`))
		if err != nil {
			canaryDone <- -1
			return
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(canaryHeader, "1")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			canaryDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		canaryDone <- resp.StatusCode
	}()
	select {
	case code := <-canaryDone:
		t.Fatalf("canary finished with %d while the pool was saturated; it must wait", code)
	case <-time.After(200 * time.Millisecond):
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	select {
	case code := <-canaryDone:
		if code != http.StatusOK {
			t.Fatalf("canary finished with %d, want 200", code)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("canary never completed after the worker freed up")
	}
}
