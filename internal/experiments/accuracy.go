package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"braid/internal/uarch"
)

// Sampling-accuracy harness: runs every benchmark exact and sampled
// back-to-back in-process, single-threaded, and reports per-benchmark IPC
// error and wall-clock speedup plus suite aggregates. The committed
// BENCH_sampling_accuracy.json is this report; CI re-runs a scaled-down
// version and asserts the error and speedup bounds.

// AccuracyPoint is one benchmark's exact-vs-sampled comparison.
type AccuracyPoint struct {
	Bench          string  `json:"bench"`
	ExactIPC       float64 `json:"exact_ipc"`
	SampledIPC     float64 `json:"sampled_ipc"`
	RelErr         float64 `json:"rel_err"`      // |sampled-exact|/exact
	RelCI          float64 `json:"ipc_rel_ci95"` // estimator's own error bar
	Intervals      int     `json:"intervals"`
	DetailedInstrs uint64  `json:"detailed_instructions"`
	FFwdInstrs     uint64  `json:"fastforward_instructions"`
	ExactSeconds   float64 `json:"exact_seconds"`
	SampledSeconds float64 `json:"sampled_seconds"`
	Speedup        float64 `json:"speedup"`
}

// AccuracyReport aggregates the suite comparison. SuiteSpeedup is total
// exact wall-clock over total sampled wall-clock — the throughput multiplier
// a whole-suite sweep sees, which weights long benchmarks more than the
// per-point mean does.
type AccuracyReport struct {
	Sampling      uarch.Sampling  `json:"sampling"`
	Core          string          `json:"core"`
	Braided       bool            `json:"braided"`
	Points        []AccuracyPoint `json:"points"`
	MeanAbsRelErr float64         `json:"mean_abs_rel_err"`
	MaxAbsRelErr  float64         `json:"max_abs_rel_err"`
	SuiteSpeedup  float64         `json:"suite_speedup"`
}

// MeasureAccuracy compares sampled against exact simulation over the whole
// suite under cfg. Runs are sequential and in-process so the wall-clock
// ratio is an honest single-core throughput comparison (the exact run goes
// first, so one-time trace construction — which both modes share — is
// charged to the exact side it was built for). Benchmarks shorter than one
// sampling period fall back to exact and are skipped: they measure nothing.
func MeasureAccuracy(ctx context.Context, w *Workloads, cfg uarch.Config, braided bool, sp uarch.Sampling) (*AccuracyReport, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if !sp.Enabled() {
		return nil, fmt.Errorf("experiments: accuracy harness needs an enabled sampling geometry")
	}
	rep := &AccuracyReport{Sampling: sp, Core: cfg.Core.String(), Braided: braided}
	var exactTotal, sampledTotal float64
	for _, b := range w.Benches {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("experiments: accuracy sweep: %w", uarch.ErrCanceled)
		}
		p := b.Orig
		if braided {
			p = b.Braided
		}

		t0 := time.Now()
		exact, err := uarch.SimulateChecked(ctx, p, cfg)
		exactSec := time.Since(t0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s exact: %w", b.Name, err)
		}

		t0 = time.Now()
		st, est, err := uarch.SimulateSampled(ctx, p, cfg, sp)
		sampledSec := time.Since(t0).Seconds()
		if err != nil {
			return nil, fmt.Errorf("experiments: %s sampled: %w", b.Name, err)
		}
		if est.Exact {
			continue // shorter than one period: nothing was sampled
		}

		relErr := math.Abs(st.IPC()-exact.IPC()) / exact.IPC()
		rep.Points = append(rep.Points, AccuracyPoint{
			Bench:          b.Name,
			ExactIPC:       exact.IPC(),
			SampledIPC:     st.IPC(),
			RelErr:         relErr,
			RelCI:          est.IPCRelCI,
			Intervals:      est.Intervals,
			DetailedInstrs: est.DetailedInstrs,
			FFwdInstrs:     est.FFwdInstrs,
			ExactSeconds:   exactSec,
			SampledSeconds: sampledSec,
			Speedup:        exactSec / sampledSec,
		})
		exactTotal += exactSec
		sampledTotal += sampledSec
		rep.MeanAbsRelErr += relErr
		if relErr > rep.MaxAbsRelErr {
			rep.MaxAbsRelErr = relErr
		}
	}
	if len(rep.Points) == 0 {
		return nil, fmt.Errorf("experiments: accuracy sweep: every benchmark was shorter than one sampling period %s", sp)
	}
	rep.MeanAbsRelErr /= float64(len(rep.Points))
	if sampledTotal > 0 {
		rep.SuiteSpeedup = exactTotal / sampledTotal
	}
	return rep, nil
}
