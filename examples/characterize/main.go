// Characterize: reproduce the paper's motivating statistics (§1 and Tables
// 1-3) for one synthetic SPEC CPU2000 stand-in: value fanout, value
// lifetime, and the braid geometry found by the compiler.
//
//	go run ./examples/characterize [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/workload"
)

func main() {
	name := "gcc"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	prof, ok := workload.ProfileByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q (12 integer + 14 fp SPEC CPU2000 names)", name)
	}
	prog, err := workload.Generate(prof, 200)
	if err != nil {
		log.Fatal(err)
	}

	// §1: dynamic value fanout and lifetime. The braid exists because
	// most values are consumed once, quickly.
	vs, err := interp.Characterize(prog, 10_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("=== %s: value characterization (paper §1) ===\n", name)
	fmt.Printf("values produced:           %d\n", vs.TotalValues)
	fmt.Printf("read exactly once:         %5.1f%%  (paper: >70%% on average)\n", 100*vs.FracUsedOnce())
	fmt.Printf("read at most twice:        %5.1f%%  (paper: ~90%%)\n", 100*vs.FanoutCDF(2))
	fmt.Printf("never read:                %5.1f%%  (paper: ~4%%)\n", 100*vs.FracUnused())
	fmt.Printf("lifetime <= 32 instrs:     %5.1f%%  (paper: ~80%%)\n", 100*vs.LifetimeCDF(32))

	// Tables 1-3: braid the program and weight the statistics by
	// execution, the way a profiling run would.
	res, err := braid.Compile(prog, braid.Options{})
	if err != nil {
		log.Fatal(err)
	}
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	if _, err := m.Run(10_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) }); err != nil {
		log.Fatal(err)
	}
	st := ds.Stats()

	fmt.Printf("\n=== %s: braid statistics (paper Tables 1-3) ===\n", name)
	fmt.Printf("%-28s %8s %8s\n", "", "measured", "paper")
	fmt.Printf("%-28s %8.2f %8.2f\n", "braids per basic block", st.BraidsPerBlock(), prof.BraidsPerBlock)
	fmt.Printf("%-28s %8.2f %8.2f\n", "braid size", st.MeanSize(), prof.MeanSize)
	fmt.Printf("%-28s %8.2f %8.2f\n", "braid width", st.MeanWidth(), prof.MeanWidth)
	fmt.Printf("%-28s %8.2f %8.2f\n", "external inputs", st.MeanExtInputs(), prof.ExtInputs)
	fmt.Printf("%-28s %8.2f %8.2f\n", "external outputs", st.MeanExtOutputs(), prof.ExtOutputs)
	fmt.Printf("%-28s %7.1f%%\n", "single-instruction braids", 100*float64(st.Singles)/float64(st.Braids))
	fmt.Printf("%-28s %7.1f%%  (paper: 99%%)\n", "braids <= 32 instructions", 100*st.FracBraidsLE32())
	fmt.Printf("\nsplits: %d memory-order, %d hazard, %d register-pressure\n",
		res.MemSplits, res.DepSplits, res.PressureSplits)
}
