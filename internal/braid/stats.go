package braid

import (
	"fmt"
	"strings"
)

// Stats aggregates the static braid characterization the paper reports in
// Tables 1-3. Every "Excl" accessor factors out single-instruction braids,
// matching the paper's starred numbers.
type Stats struct {
	Blocks           int
	Braids           int
	Singles          int // single-instruction braids
	SingleBranchNops int // of those, branches and nops (paper: 56%)
	Instrs           int

	sumSizeAll, sumSize         int
	sumWidthAll, sumWidth       float64
	sumIntAll, sumInt           int
	sumExtInAll, sumExtIn       int
	sumExtOutAll, sumExtOut     int
	sumCritAll, sumCrit         int
	braidsLE32, braidsCountable int
}

func computeStats(res *Result, blocks int) Stats {
	s := Stats{Blocks: blocks, Braids: len(res.Braids), Instrs: len(res.Prog.Instrs)}
	for i := range res.Braids {
		b := &res.Braids[i]
		size := b.Size()
		s.sumSizeAll += size
		s.sumWidthAll += b.Width()
		s.sumIntAll += b.Internals
		s.sumExtInAll += b.ExtInputs
		s.sumExtOutAll += b.ExtOutputs
		s.sumCritAll += b.CritPath
		s.braidsCountable++
		if size <= 32 {
			s.braidsLE32++
		}
		if b.Single() {
			s.Singles++
			in := &res.Prog.Instrs[b.Start]
			if in.IsBranch() || in.IsNop() || in.IsHalt() {
				s.SingleBranchNops++
			}
			continue
		}
		s.sumSize += size
		s.sumWidth += b.Width()
		s.sumInt += b.Internals
		s.sumExtIn += b.ExtInputs
		s.sumExtOut += b.ExtOutputs
		s.sumCrit += b.CritPath
	}
	return s
}

func ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}

// BraidsPerBlock is Table 1's unstarred metric (all braids counted).
func (s *Stats) BraidsPerBlock() float64 { return ratio(float64(s.Braids), float64(s.Blocks)) }

// BraidsPerBlockExcl is Table 1's starred metric (single-instruction braids
// factored out).
func (s *Stats) BraidsPerBlockExcl() float64 {
	return ratio(float64(s.Braids-s.Singles), float64(s.Blocks))
}

// MeanSize is Table 2's size metric over all braids.
func (s *Stats) MeanSize() float64 { return ratio(float64(s.sumSizeAll), float64(s.Braids)) }

// MeanSizeExcl is Table 2's starred size metric.
func (s *Stats) MeanSizeExcl() float64 {
	return ratio(float64(s.sumSize), float64(s.Braids-s.Singles))
}

// MeanWidth is Table 2's width metric over all braids.
func (s *Stats) MeanWidth() float64 { return ratio(s.sumWidthAll, float64(s.Braids)) }

// MeanWidthExcl is Table 2's starred width metric.
func (s *Stats) MeanWidthExcl() float64 { return ratio(s.sumWidth, float64(s.Braids-s.Singles)) }

// MeanInternals is Table 3's internal-value count per braid.
func (s *Stats) MeanInternals() float64 { return ratio(float64(s.sumIntAll), float64(s.Braids)) }

// MeanInternalsExcl is the starred variant.
func (s *Stats) MeanInternalsExcl() float64 {
	return ratio(float64(s.sumInt), float64(s.Braids-s.Singles))
}

// MeanExtInputs is Table 3's external-input count per braid.
func (s *Stats) MeanExtInputs() float64 { return ratio(float64(s.sumExtInAll), float64(s.Braids)) }

// MeanExtInputsExcl is the starred variant.
func (s *Stats) MeanExtInputsExcl() float64 {
	return ratio(float64(s.sumExtIn), float64(s.Braids-s.Singles))
}

// MeanExtOutputs is Table 3's external-output count per braid.
func (s *Stats) MeanExtOutputs() float64 { return ratio(float64(s.sumExtOutAll), float64(s.Braids)) }

// MeanExtOutputsExcl is the starred variant.
func (s *Stats) MeanExtOutputsExcl() float64 {
	return ratio(float64(s.sumExtOut), float64(s.Braids-s.Singles))
}

// FracSingleInstr is the fraction of all instructions that are
// single-instruction braids (paper: ~20%).
func (s *Stats) FracSingleInstr() float64 { return ratio(float64(s.Singles), float64(s.Instrs)) }

// FracSingleBranchNop is the fraction of single-instruction braids that are
// branches or nops (paper: ~56%).
func (s *Stats) FracSingleBranchNop() float64 {
	return ratio(float64(s.SingleBranchNops), float64(s.Singles))
}

// FracBraidsLE32 is the fraction of braids with at most 32 instructions
// (paper: 99%, sizing the BEU FIFO of Figure 10).
func (s *Stats) FracBraidsLE32() float64 {
	return ratio(float64(s.braidsLE32), float64(s.braidsCountable))
}

// String renders a compact characterization report.
func (s *Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "blocks=%d braids=%d singles=%d (%.0f%% branch/nop)\n",
		s.Blocks, s.Braids, s.Singles, 100*s.FracSingleBranchNop())
	fmt.Fprintf(&b, "braids/block: %.2f (%.2f excl singles)\n", s.BraidsPerBlock(), s.BraidsPerBlockExcl())
	fmt.Fprintf(&b, "size: %.2f (%.2f) width: %.2f (%.2f)\n",
		s.MeanSize(), s.MeanSizeExcl(), s.MeanWidth(), s.MeanWidthExcl())
	fmt.Fprintf(&b, "internals: %.2f (%.2f) ext-in: %.2f (%.2f) ext-out: %.2f (%.2f)\n",
		s.MeanInternals(), s.MeanInternalsExcl(),
		s.MeanExtInputs(), s.MeanExtInputsExcl(),
		s.MeanExtOutputs(), s.MeanExtOutputsExcl())
	return b.String()
}
