package braid

import "testing"

// TestFacade exercises the public API end to end: assemble, compile,
// verify, simulate.
func TestFacade(t *testing.T) {
	src := `
.name facade
.data 64
	ldimm r1, #65536
	ldimm r6, #20
loop:
	add  r2, r6, #3
	mul  r3, r2, r2
	stq  r3, 0(r1)   !ac=1
	sub  r6, r6, #1
	bgt  r6, loop
	halt
`
	p, err := ParseAsm(src)
	if err != nil {
		t.Fatal(err)
	}
	c, err := Compile(p, CompileOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Braids) == 0 {
		t.Fatal("no braids found")
	}
	if err := c.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}

	fo, err := Run(p, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	fb, err := Run(c.Prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if fo.MemHash != fb.MemHash {
		t.Fatal("braided program diverged")
	}

	text := FormatAsm(c.Prog)
	if _, err := ParseAsm(text); err != nil {
		t.Fatalf("braided assembly does not re-parse: %v", err)
	}

	for _, cfg := range []MachineConfig{InOrder(8), DepSteer(8), OutOfOrder(8)} {
		st, err := Simulate(p, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if st.Retired != fo.Steps {
			t.Fatalf("%s retired %d, want %d", cfg.Core, st.Retired, fo.Steps)
		}
	}
	st, err := Simulate(c.Prog, Braid(8))
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != fo.Steps {
		t.Fatalf("braid retired %d, want %d", st.Retired, fo.Steps)
	}
}

func TestFacadeBenchmarks(t *testing.T) {
	names := Benchmarks()
	if len(names) != 26 {
		t.Fatalf("benchmarks = %d, want 26", len(names))
	}
	p, err := GenerateBenchmark("gcc", 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "gcc" {
		t.Errorf("name = %q", p.Name)
	}
	if _, err := GenerateBenchmark("nope", 10); err == nil {
		t.Error("unknown benchmark accepted")
	}
	k, err := Kernel("fig2")
	if err != nil {
		t.Fatal(err)
	}
	if k.Name != "fig2" {
		t.Errorf("kernel name = %q", k.Name)
	}
	if _, err := Kernel("nope"); err == nil {
		t.Error("unknown kernel accepted")
	}
}

func TestFacadeExperimentsRegistry(t *testing.T) {
	exps := Experiments()
	if len(exps) != 16 {
		t.Fatalf("experiments = %d, want 16", len(exps))
	}
	ids := map[string]bool{}
	for _, e := range exps {
		if e.ID == "" || e.Title == "" || e.Run == nil {
			t.Errorf("incomplete experiment %+v", e)
		}
		if ids[e.ID] {
			t.Errorf("duplicate id %s", e.ID)
		}
		ids[e.ID] = true
	}
	for _, want := range []string{"values", "fig1", "table1", "table2", "table3",
		"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
		"fig13", "fig14", "pipeline"} {
		if !ids[want] {
			t.Errorf("missing experiment %s", want)
		}
	}
}
