package workload

import (
	"testing"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
)

func TestProfilesComplete(t *testing.T) {
	ps := Profiles()
	if len(ps) != 26 {
		t.Fatalf("profiles = %d, want 26", len(ps))
	}
	if len(IntProfiles()) != 12 || len(FPProfiles()) != 14 {
		t.Fatal("suite split wrong")
	}
	for _, p := range IntProfiles() {
		if p.FP {
			t.Errorf("%s in integer suite but marked FP", p.Name)
		}
	}
	for _, p := range FPProfiles() {
		if !p.FP {
			t.Errorf("%s in FP suite but not marked FP", p.Name)
		}
	}
	seen := map[string]bool{}
	for _, p := range ps {
		if seen[p.Name] {
			t.Errorf("duplicate profile %s", p.Name)
		}
		seen[p.Name] = true
		if p.Seed == 0 || p.SinglesShare == 0 {
			t.Errorf("%s: defaults not applied", p.Name)
		}
	}
	if _, ok := ProfileByName("gcc"); !ok {
		t.Error("ProfileByName(gcc) failed")
	}
	if _, ok := ProfileByName("nope"); ok {
		t.Error("ProfileByName(nope) succeeded")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	prof, _ := ProfileByName("gcc")
	p1, err := Generate(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Instrs) != len(p2.Instrs) {
		t.Fatal("nondeterministic length")
	}
	for i := range p1.Instrs {
		if p1.Instrs[i] != p2.Instrs[i] {
			t.Fatalf("instr %d differs", i)
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	prof, _ := ProfileByName("gcc")
	if _, err := Generate(prof, 0); err == nil {
		t.Error("iterations 0 accepted")
	}
	bad := prof
	bad.DataKB = 100 // not a power of two
	if _, err := Generate(bad, 10); err == nil {
		t.Error("non-power-of-two DataKB accepted")
	}
	bad = prof
	bad.Blocks = 1
	if _, err := Generate(bad, 10); err == nil {
		t.Error("1-block profile accepted")
	}
}

// TestAllProfilesRunAndBraid is the central integration test: every
// generated benchmark must execute under the interpreter, braid without any
// splits (the generator promises hazard-free blocks), satisfy the braid
// invariants, and compute the same memory image before and after braiding
// with the same dynamic instruction count.
func TestAllProfilesRunAndBraid(t *testing.T) {
	for _, prof := range Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			p, err := Generate(prof, 20)
			if err != nil {
				t.Fatal(err)
			}
			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.VerifyInvariants(p); err != nil {
				t.Fatal(err)
			}
			if n := res.MemSplits + res.DepSplits + res.PressureSplits; n != 0 {
				t.Errorf("generator produced %d splits (mem=%d dep=%d pressure=%d)",
					n, res.MemSplits, res.DepSplits, res.PressureSplits)
			}
			fo, err := interp.RunProgram(p, 3_000_000)
			if err != nil {
				t.Fatalf("original: %v", err)
			}
			fb, err := interp.RunProgram(res.Prog, 3_000_000)
			if err != nil {
				t.Fatalf("braided: %v", err)
			}
			if fo.MemHash != fb.MemHash {
				t.Error("memory image diverged after braiding")
			}
			if fo.Steps != fb.Steps {
				t.Errorf("dynamic length changed: %d -> %d", fo.Steps, fb.Steps)
			}
		})
	}
}

// TestCharacterizationMatchesPaper checks that the execution-weighted braid
// statistics of each generated benchmark land near the paper's published
// Tables 1-3 values. Tolerances are deliberately loose (the generator honors
// shape, not decimals); the experiment harness reports exact side-by-side
// numbers.
func TestCharacterizationMatchesPaper(t *testing.T) {
	within := func(got, want, frac float64) bool {
		d := got - want
		if d < 0 {
			d = -d
		}
		return d <= frac*want+0.35
	}
	for _, prof := range Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			p, err := Generate(prof, 30)
			if err != nil {
				t.Fatal(err)
			}
			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				t.Fatal(err)
			}
			ds := braid.NewDynamicStats(res)
			m := interp.New(res.Prog)
			if _, err := m.Run(3_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) }); err != nil {
				t.Fatal(err)
			}
			s := ds.Stats()
			if !within(s.BraidsPerBlock(), prof.BraidsPerBlock, 0.35) {
				t.Errorf("braids/block = %.2f, paper %.2f", s.BraidsPerBlock(), prof.BraidsPerBlock)
			}
			if !within(s.MeanSize(), prof.MeanSize, 0.35) {
				t.Errorf("size = %.2f, paper %.2f", s.MeanSize(), prof.MeanSize)
			}
			if !within(s.MeanWidth(), prof.MeanWidth, 0.25) {
				t.Errorf("width = %.2f, paper %.2f", s.MeanWidth(), prof.MeanWidth)
			}
			if !within(s.MeanExtInputs(), prof.ExtInputs, 0.6) {
				t.Errorf("ext inputs = %.2f, paper %.2f", s.MeanExtInputs(), prof.ExtInputs)
			}
		})
	}
}

func TestKernels(t *testing.T) {
	ks := Kernels()
	if len(ks) != 5 {
		t.Fatalf("kernels = %d, want 5", len(ks))
	}
	for _, k := range ks {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			res, err := braid.Compile(k, braid.Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := res.VerifyInvariants(k); err != nil {
				t.Fatal(err)
			}
			fo, err := interp.RunProgram(k, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			fb, err := interp.RunProgram(res.Prog, 1_000_000)
			if err != nil {
				t.Fatal(err)
			}
			if fo.MemHash != fb.MemHash {
				t.Error("kernel memory image diverged after braiding")
			}
		})
	}
	if _, ok := KernelByName("fig2"); !ok {
		t.Error("KernelByName(fig2) failed")
	}
	if _, ok := KernelByName("nope"); ok {
		t.Error("KernelByName(nope) succeeded")
	}
}

func TestDotKernelResult(t *testing.T) {
	k, _ := KernelByName("dot")
	m := interp.New(k)
	if _, err := m.Run(100000, nil); err != nil {
		t.Fatal(err)
	}
	// Data segment is zero: the dot product of zero vectors is 0.0.
	if got := m.Mem.Read64(isa.DataBase + 512); got != 0 {
		t.Errorf("dot of zeros = %#x bits, want 0", got)
	}
}

func TestBlocksWithinLimit(t *testing.T) {
	// Every generated block must stay under the braid compiler's
	// 127-instruction block limit; braid.Compile enforces it, but check
	// the worst-case profile explicitly.
	prof, _ := ProfileByName("mgrid")
	p, err := Generate(prof, 5)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := braid.Compile(p, braid.Options{}); err != nil {
		t.Fatal(err)
	}
}

func TestPointerChaseTouchesManyAddresses(t *testing.T) {
	prof, _ := ProfileByName("mcf")
	p, err := Generate(prof, 200)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	m := interp.New(p)
	if _, err := m.Run(3_000_000, func(si *interp.StepInfo) {
		if si.Instr.IsLoad() && si.Instr.Dest == 26 { // the chase cursor
			seen[si.Addr] = true
		}
	}); err != nil {
		t.Fatal(err)
	}
	if len(seen) < 50 {
		t.Errorf("pointer chase touched only %d distinct addresses", len(seen))
	}
}

func TestMatmulKernelResult(t *testing.T) {
	k, _ := KernelByName("matmul")
	m := interp.New(k)
	if _, err := m.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	// The seed loop stores the word index: A[i][k] = i*8+k and
	// B[k][j] = (k*8+j)^5. Check the full product against a Go model.
	for i := uint64(0); i < 8; i++ {
		for j := uint64(0); j < 8; j++ {
			want := uint64(0)
			for k := uint64(0); k < 8; k++ {
				want += (i*8 + k) * ((k*8 + j) ^ 5)
			}
			addr := uint64(isa.DataBase) + 1024 + i*64 + j*8
			if got := m.Mem.Read64(addr); got != want {
				t.Fatalf("C[%d][%d] = %d, want %d", i, j, got, want)
			}
		}
	}
}

func TestCopyKernelResult(t *testing.T) {
	k, _ := KernelByName("copy")
	m := interp.New(k)
	if _, err := m.Run(1_000_000, nil); err != nil {
		t.Fatal(err)
	}
	// The 4 KiB source is zero-initialized, so the destination and the
	// checksum are zero; the copy still moved 256 words.
	if got := m.Mem.Read64(uint64(isa.DataBase) + 4096 + 2048); got != 0 {
		t.Errorf("checksum = %d, want 0", got)
	}
}
