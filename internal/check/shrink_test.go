package check

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"braid/internal/experiments"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// storesToMagic is a shrink property: the program, when interpreted,
// stores the value 0xDEAD to some address. Non-halting or invalid
// candidates do not reproduce.
func storesToMagic(p *isa.Program) *Finding {
	st := interp.NewStream(p, 200_000)
	for {
		si, err := st.Next()
		if err != nil {
			return nil
		}
		if si == nil {
			return nil
		}
		if si.Instr.IsStore() && si.Value == 0xDEAD {
			return &Finding{Kind: "lockstep", Program: p.Name,
				Detail: "stored 0xDEAD", Prog: p}
		}
	}
}

// TestShrinkMinimizes plants a needle (a store of 0xDEAD) in the middle of
// a large random program and checks the shrinker reduces it to a minimal
// reproduction: every single-instruction deletion must destroy the
// property, and the result must stay structurally valid.
func TestShrinkMinimizes(t *testing.T) {
	base := workload.RandomProgram(7)
	p := base.Clone()
	// Plant the needle before the final halt: load the magic value and
	// store it. The stores use r1 as a base if valid addressing exists;
	// simplest is LDIMM + ST with an absolute offset from r31 (zero).
	needle := []isa.Instruction{
		{Op: isa.OpLDIMM, Dest: isa.Reg(1), Imm: 0xDEAD, HasImm: true},
		{Op: isa.OpSTQ, Src1: isa.Reg(1), Src2: isa.RegZero, Imm: 0x100},
	}
	at := len(p.Instrs) - 1
	// Fix up branches that cross the insertion point.
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.IsBranch() {
			tgt := in.BranchTarget(i)
			if tgt > at && i <= at {
				in.SetBranchTarget(i, tgt+len(needle))
			}
		}
	}
	p.Instrs = append(p.Instrs[:at:at], append(needle, p.Instrs[at:]...)...)
	if err := p.Validate(); err != nil {
		t.Fatalf("planted program invalid: %v", err)
	}
	if storesToMagic(p) == nil {
		t.Fatal("planted program does not exhibit the property")
	}

	shrunk, f := Shrink(context.Background(), p, storesToMagic)
	if f == nil {
		t.Fatal("shrink lost the failure")
	}
	if err := shrunk.Validate(); err != nil {
		t.Fatalf("shrunk program invalid: %v", err)
	}
	t.Logf("shrunk %d -> %d instructions", len(p.Instrs), len(shrunk.Instrs))
	if len(shrunk.Instrs) > 8 {
		t.Errorf("shrink left %d instructions; expected a handful", len(shrunk.Instrs))
	}
	// 1-minimality: deleting any single surviving instruction (except the
	// protected terminator) must break the property or validity.
	for i := 0; i < len(shrunk.Instrs)-1; i++ {
		cand, ok := removeRange(shrunk, i, i+1)
		if !ok {
			continue
		}
		if storesToMagic(cand) != nil {
			t.Errorf("not 1-minimal: instruction %d (%s) is deletable", i, shrunk.Instrs[i].String())
		}
	}
}

// TestShrinkNotReproducible: a property that never fires returns the
// original program and a nil finding.
func TestShrinkNotReproducible(t *testing.T) {
	p := workload.RandomProgram(3)
	got, f := Shrink(context.Background(), p, func(*isa.Program) *Finding { return nil })
	if f != nil {
		t.Fatalf("unexpected finding: %v", f)
	}
	if got != p {
		t.Fatal("expected the original program back")
	}
}

// TestWriteArtifactRoundTrip writes a finding's crash artifact and reads
// it back through the experiments loader — the exact path braidsim
// -config uses for replay.
func TestWriteArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	p, _ := workload.KernelByName("dot")
	cfg := uarch.OutOfOrderConfig(4)
	f := &Finding{Kind: "lockstep", Program: "dot", Core: "out-of-order/w4",
		Detail: "synthetic divergence for the round-trip test", Prog: p, Cfg: &cfg}
	path, err := WriteArtifact(dir, f)
	if err != nil {
		t.Fatalf("WriteArtifact: %v", err)
	}
	art, prog, err := experiments.ReadCrashArtifact(path)
	if err != nil {
		t.Fatalf("ReadCrashArtifact: %v", err)
	}
	if prog == nil || len(prog.Instrs) != len(p.Instrs) {
		t.Fatal("program image did not round-trip")
	}
	if !strings.Contains(art.Panic, "synthetic divergence") {
		t.Errorf("finding detail missing from artifact panic: %q", art.Panic)
	}
	if _, err := os.Stat(filepath.Join(dir, filepath.Base(path))); err != nil {
		t.Errorf("artifact file: %v", err)
	}
}
