package uarch

import (
	"testing"

	"braid/internal/asm"
	"braid/internal/isa"
)

func mkdyn(seq uint64, braidStart bool) *dyn {
	return &dyn{seq: seq, in: &isa.Instruction{Op: isa.OpADD, Dest: 1, Src1: 2, Src2: 3},
		braidStart: braidStart, beu: -1, sched: -1}
}

func TestOOOSteeringLeastLoaded(t *testing.T) {
	cfg := OutOfOrderConfig(8)
	c := newOOOCore(&cfg)
	// Fill scheduler 0 with two entries, others empty: next dispatch must
	// avoid it.
	c.scheds[0] = append(c.scheds[0], mkdyn(1, false), mkdyn(2, false))
	d := mkdyn(3, false)
	c.dispatch(d)
	if d.sched == 0 {
		t.Error("least-loaded steering picked the fullest scheduler")
	}
}

func TestOOOCanAcceptFull(t *testing.T) {
	cfg := OutOfOrderConfig(8)
	cfg.Schedulers = 2
	cfg.SchedEntries = 1
	c := newOOOCore(&cfg)
	c.dispatch(mkdyn(1, false))
	c.dispatch(mkdyn(2, false))
	if c.canAccept(mkdyn(3, false)) {
		t.Error("accepted into full schedulers")
	}
}

func TestDepSteerFollowsProducer(t *testing.T) {
	cfg := DepSteerConfig(8)
	c := newDepSteerCore(&cfg)
	prod := mkdyn(1, false)
	c.dispatch(prod) // lands in an empty FIFO
	cons := mkdyn(2, false)
	cons.srcs[0] = source{producer: prod}
	cons.nsrcs = 1
	c.dispatch(cons)
	if cons.sched != prod.sched {
		t.Errorf("consumer steered to FIFO %d, producer in %d", cons.sched, prod.sched)
	}
	// The producer is no longer the tail, so a second consumer needs an
	// empty FIFO instead.
	cons2 := mkdyn(3, false)
	cons2.srcs[0] = source{producer: prod}
	cons2.nsrcs = 1
	c.dispatch(cons2)
	if cons2.sched == prod.sched {
		t.Error("second consumer stacked behind a non-tail producer")
	}
}

func TestDepSteerStallsWhenNoFIFOFits(t *testing.T) {
	cfg := DepSteerConfig(8)
	cfg.SteerFIFOs = 2
	c := newDepSteerCore(&cfg)
	// Occupy both FIFOs with independent instructions.
	c.dispatch(mkdyn(1, false))
	c.dispatch(mkdyn(2, false))
	// An independent third has no empty FIFO and no producer tail.
	if c.canAccept(mkdyn(3, false)) {
		t.Error("independent instruction accepted with no empty FIFO")
	}
	// But a consumer of a tail is accepted.
	cons := mkdyn(4, false)
	tail := c.fifos[0].at(c.fifos[0].len() - 1)
	cons.srcs[0] = source{producer: tail}
	cons.nsrcs = 1
	if !c.canAccept(cons) {
		t.Error("consumer of a FIFO tail rejected")
	}
}

func TestBraidCoreDistribution(t *testing.T) {
	cfg := BraidConfig(8)
	cfg.BEUs = 2
	c := newBraidCore(&cfg)

	a1 := mkdyn(1, true)
	a2 := mkdyn(2, false)
	c.dispatch(a1)
	c.dispatch(a2)
	if a1.beu != a2.beu {
		t.Errorf("braid split across BEUs: %d vs %d", a1.beu, a2.beu)
	}
	if a1.braidID != a2.braidID {
		t.Error("one braid carries two braid ids")
	}
	b1 := mkdyn(3, true)
	c.dispatch(b1)
	if b1.beu == a1.beu {
		t.Error("second braid assigned to a busy BEU")
	}
	if b1.braidID == a1.braidID {
		t.Error("distinct braids share a braid id")
	}
	// Both BEUs hold unissued braids: a third braid must wait (§3.3).
	if c.canAccept(mkdyn(4, true)) {
		t.Error("third braid accepted with both BEUs busy")
	}
	// Continuations of the current braid still flow in.
	if !c.canAccept(mkdyn(5, false)) {
		t.Error("continuation of the current braid rejected")
	}
}

func TestBraidCoreFIFOCapacity(t *testing.T) {
	cfg := BraidConfig(8)
	cfg.BEUFIFO = 2
	c := newBraidCore(&cfg)
	c.dispatch(mkdyn(1, true))
	c.dispatch(mkdyn(2, false))
	if c.canAccept(mkdyn(3, false)) {
		t.Error("accepted past the FIFO capacity")
	}
}

// TestLSQAliasClasses puts both a load and a slow store (a divide feeds its
// data) on the loop-carried dependence chain. With alias class 0 the load
// must wait for the store each iteration, lengthening the recurrence by the
// divide latency; with provably-disjoint classes it issues immediately.
func TestLSQAliasClasses(t *testing.T) {
	run := func(loadClass, storeClass string) uint64 {
		src := `
.name lsq
.data 128
	ldimm r1, #65536
	ldimm r6, #100
	ldimm r7, #0
loop:
	div  r3, r7, #3
	and  r9, r7, #56
	add  r9, r9, r1
	add  r9, r9, #64
	stq  r3, 0(r1)   ` + storeClass + `
	ldq  r4, 0(r9)   ` + loadClass + `
	add  r7, r7, r4
	sub  r6, r6, #1
	bgt  r6, loop
	halt
`
		p, err := asm.Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		st, err := Simulate(p, OutOfOrderConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		return st.Cycles
	}
	mayAlias := run("", "")          // both class 0
	noAlias := run("!ac=1", "!ac=2") // provably disjoint
	t.Logf("may-alias %d cycles, no-alias %d cycles", mayAlias, noAlias)
	if mayAlias < noAlias+300 {
		t.Errorf("alias classes saved only %d cycles; expected a first-order win", int64(mayAlias)-int64(noAlias))
	}
}

// TestInOrderStrictness: an in-order core must not let a younger independent
// instruction overtake a stalled older one, so a long-latency head serializes
// everything behind it.
func TestInOrderStrictness(t *testing.T) {
	src := `
.name strict
.data 4096
	ldimm r1, #65536
	ldq   r2, 2048(r1)
	add   r3, r2, #1
	add   r4, r1, #1
	add   r5, r1, #2
	halt
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	io, err := Simulate(p, InOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	oo, err := Simulate(p, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	// Both wait for the cold miss before the program ends (the adds after
	// it are independent but retirement is in order); the cycle counts
	// must at least retire identically.
	if io.Retired != oo.Retired || io.Retired != 6 {
		t.Errorf("retired %d / %d, want 6", io.Retired, oo.Retired)
	}
	if io.Cycles < oo.Cycles {
		t.Errorf("in-order (%d cycles) beat out-of-order (%d)", io.Cycles, oo.Cycles)
	}
}
