package braid

import (
	"fmt"
	"strings"

	"braid/internal/isa"
)

// Dot renders one basic block of a braided program as a Graphviz dataflow
// graph in the style of the paper's Figure 2(c): one node per instruction,
// braids grouped and colored, solid edges for values communicated through
// the internal register file and dashed edges for external communication.
// blockStart/blockEnd delimit the block in the braided program; use the
// extents recorded in Braids (all braids of one Block index).
func (res *Result) Dot(blockStart, blockEnd int) string {
	var b strings.Builder
	b.WriteString("digraph braids {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=box, fontname=\"monospace\", fontsize=10];\n")

	palette := []string{
		"#cfe8ff", "#ffe3c9", "#d9f2d9", "#f2d9f2", "#fff2b3",
		"#e0e0e0", "#ffd6d6", "#d6fff5",
	}

	// Group nodes by braid.
	cluster := -1
	for i := blockStart; i < blockEnd && i < len(res.Prog.Instrs); i++ {
		bi := res.BraidOf[i]
		if bi != cluster {
			if cluster >= 0 {
				b.WriteString("  }\n")
			}
			cluster = bi
			fmt.Fprintf(&b, "  subgraph cluster_%d {\n", bi)
			fmt.Fprintf(&b, "    label=\"braid %d\"; style=filled; color=\"%s\";\n",
				bi, palette[bi%len(palette)])
		}
		label := strings.ReplaceAll(res.Prog.Instrs[i].String(), `"`, `\"`)
		fmt.Fprintf(&b, "    n%d [label=\"%d: %s\"];\n", i, i, label)
	}
	if cluster >= 0 {
		b.WriteString("  }\n")
	}

	// Dataflow edges within the block: track the last writer of each
	// internal and external register as the block executes in order.
	var extOwner [isa.NumArchRegs]int
	var intOwner [isa.NumInternalRegs]int
	for r := range extOwner {
		extOwner[r] = -1
	}
	for r := range intOwner {
		intOwner[r] = -1
	}
	edge := func(from, to int, internal bool) {
		if from < 0 {
			return
		}
		style := "dashed" // external communication
		if internal {
			style = "solid"
		}
		fmt.Fprintf(&b, "  n%d -> n%d [style=%s];\n", from, to, style)
	}
	for i := blockStart; i < blockEnd && i < len(res.Prog.Instrs); i++ {
		in := &res.Prog.Instrs[i]
		if in.Start {
			for r := range intOwner {
				intOwner[r] = -1
			}
		}
		info := in.Info()
		if info.NumSrcs >= 1 {
			if in.T1 {
				edge(intOwner[in.I1], i, true)
			} else if in.Src1 != isa.RegNone && in.Src1 != isa.RegZero {
				edge(extOwner[in.Src1], i, false)
			}
		}
		if info.NumSrcs >= 2 && !in.HasImm {
			if in.T2 {
				edge(intOwner[in.I2], i, true)
			} else if in.Src2 != isa.RegNone && in.Src2 != isa.RegZero {
				edge(extOwner[in.Src2], i, false)
			}
		}
		if info.ReadsDest && in.Dest != isa.RegNone && in.Dest != isa.RegZero {
			edge(extOwner[in.Dest], i, false)
		}
		if in.IDest {
			intOwner[in.IDestIdx] = i
		}
		if in.WritesReg() && in.Dest != isa.RegZero && (in.EDest || !in.IDest) {
			extOwner[in.Dest] = i
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// BlockExtent returns the braided-program extent [start, end) of the given
// basic-block index, or ok=false if the block has no braids.
func (res *Result) BlockExtent(block int) (start, end int, ok bool) {
	start, end = -1, -1
	for i := range res.Braids {
		if res.Braids[i].Block != block {
			continue
		}
		if start < 0 || res.Braids[i].Start < start {
			start = res.Braids[i].Start
		}
		if res.Braids[i].End > end {
			end = res.Braids[i].End
		}
	}
	return start, end, start >= 0
}
