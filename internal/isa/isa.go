// Package isa defines BRD64, the Alpha-like load/store instruction set used
// throughout this repository, including the braid extensions proposed by
// Tseng and Patt (ISCA 2008): the braid-start bit (S), the temporary-source
// bits (T) that redirect a source operand to the internal register file, and
// the internal/external destination bits (I/E) that steer a result to the
// internal register file, the external register file, or both.
//
// BRD64 has 32 integer registers (r31 reads as zero), 32 floating-point
// registers, and a fixed-width 64-bit instruction encoding. The encoding is
// deliberately wider than the paper's Figure 3 so that a dual-destination
// instruction (I and E both set) can name the internal index and the external
// register independently; the paper's figure leaves that case ambiguous.
package isa

import "fmt"

// Reg names an architectural register operand. Values 0-31 are the integer
// registers r0-r31, values 32-63 are the floating-point registers f0-f31.
// RegZero (r31) always reads as zero and discards writes. RegNone marks an
// absent operand.
type Reg uint8

// Architectural register constants.
const (
	RegZero Reg = 31  // r31: hardwired zero
	RegF0   Reg = 32  // first floating-point register
	RegNone Reg = 255 // absent operand

	// NumIntRegs and NumFPRegs size the two architectural banks.
	NumIntRegs = 32
	NumFPRegs  = 32
	// NumArchRegs is the total architectural register namespace.
	NumArchRegs = NumIntRegs + NumFPRegs

	// NumInternalRegs is the size of a braid execution unit's internal
	// register file. The paper determined 8 entries suffice for the
	// working set of nearly all braids (§3.1).
	NumInternalRegs = 8
)

// IsFP reports whether r names a floating-point register.
func (r Reg) IsFP() bool { return r >= RegF0 && r < NumArchRegs }

// Valid reports whether r names a real architectural register.
func (r Reg) Valid() bool { return r < NumArchRegs }

// String renders r in assembly syntax (r5, f3, none).
func (r Reg) String() string {
	switch {
	case r == RegNone:
		return "none"
	case r.IsFP():
		return fmt.Sprintf("f%d", r-RegF0)
	case r.Valid():
		return fmt.Sprintf("r%d", r)
	default:
		return fmt.Sprintf("reg?%d", uint8(r))
	}
}

// Class groups opcodes by the functional-unit pipeline that executes them and
// therefore by latency.
type Class uint8

// Functional-unit classes.
const (
	ClassNop Class = iota
	ClassIntALU
	ClassIntMul
	ClassIntDiv
	ClassFPAdd
	ClassFPMul
	ClassFPDiv
	ClassLoad
	ClassStore
	ClassBranch
)

var classNames = [...]string{
	ClassNop:    "nop",
	ClassIntALU: "ialu",
	ClassIntMul: "imul",
	ClassIntDiv: "idiv",
	ClassFPAdd:  "fadd",
	ClassFPMul:  "fmul",
	ClassFPDiv:  "fdiv",
	ClassLoad:   "load",
	ClassStore:  "store",
	ClassBranch: "branch",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class?%d", uint8(c))
}

// Instruction is the decoded form of one BRD64 instruction. The zero value is
// a NOP. Fields Start, T1, T2, IDest, EDest and IDestIdx are the braid ISA
// extensions; a non-braided program leaves them all false/zero except EDest,
// which the braid compiler sets for every external write.
type Instruction struct {
	Op   Opcode
	Dest Reg // destination register (RegNone if the opcode writes nothing)
	Src1 Reg // first source (RegNone if unused)
	Src2 Reg // second source (RegNone if unused or replaced by Imm)

	Imm    int32 // immediate operand / memory displacement / branch offset
	HasImm bool  // Src2 is replaced by Imm

	// AliasClass is compiler metadata used for static memory
	// disambiguation: two memory instructions with different non-zero
	// alias classes provably never access the same location. Class 0
	// means "may alias anything". It mimics the paper's stack/non-stack
	// disambiguation by the profiling tool (§3.1).
	AliasClass uint8

	// Braid extension bits (paper §3.2, Figure 3).
	Start    bool  // S: first instruction of a braid
	T1, T2   bool  // source operand n reads the internal register file
	I1, I2   uint8 // internal register index for source n when Tn is set
	IDest    bool  // I: result is written to the internal register file
	EDest    bool  // E: result is written to the external register file
	IDestIdx uint8 // internal register index when IDest is set
}

// Info returns the opcode metadata table entry for in.Op.
func (in *Instruction) Info() *OpInfo { return &opTable[in.Op] }

// IsNop reports whether the instruction has no architectural effect.
func (in *Instruction) IsNop() bool { return in.Op == OpNOP }

// IsBranch reports whether the instruction is any control-flow transfer.
func (in *Instruction) IsBranch() bool { return opTable[in.Op].Flow != flowNone }

// IsCondBranch reports whether the instruction is a conditional branch.
func (in *Instruction) IsCondBranch() bool { return opTable[in.Op].Flow == flowCond }

// IsUncondBranch reports whether the instruction is an unconditional jump.
func (in *Instruction) IsUncondBranch() bool { return opTable[in.Op].Flow == flowUncond }

// IsLoad reports whether the instruction reads memory.
func (in *Instruction) IsLoad() bool { return opTable[in.Op].Class == ClassLoad }

// IsStore reports whether the instruction writes memory.
func (in *Instruction) IsStore() bool { return opTable[in.Op].Class == ClassStore }

// IsMem reports whether the instruction accesses memory.
func (in *Instruction) IsMem() bool { return in.IsLoad() || in.IsStore() }

// IsHalt reports whether the instruction terminates the program.
func (in *Instruction) IsHalt() bool { return in.Op == OpHALT }

// WritesReg reports whether the instruction produces a register result.
func (in *Instruction) WritesReg() bool {
	return opTable[in.Op].HasDest && in.Dest != RegNone
}

// ReadsDest reports whether the instruction also reads its destination
// register before writing it (conditional moves, which only overwrite the
// destination when the condition holds).
func (in *Instruction) ReadsDest() bool { return opTable[in.Op].ReadsDest }

// SrcRegs appends the architectural registers read by the instruction to dst
// and returns it. The hardwired zero register is included; callers that track
// dataflow typically skip RegZero themselves. For instructions with
// ReadsDest, the destination is included as a source.
func (in *Instruction) SrcRegs(dst []Reg) []Reg {
	info := &opTable[in.Op]
	if info.NumSrcs >= 1 && in.Src1 != RegNone {
		dst = append(dst, in.Src1)
	}
	if info.NumSrcs >= 2 && !in.HasImm && in.Src2 != RegNone {
		dst = append(dst, in.Src2)
	}
	if info.ReadsDest && in.Dest != RegNone {
		dst = append(dst, in.Dest)
	}
	return dst
}

// BranchTarget returns the index of the instruction this branch jumps to,
// given the branch's own index. The offset is relative to the next
// instruction, as in most RISC encodings.
func (in *Instruction) BranchTarget(selfIndex int) int {
	return selfIndex + 1 + int(in.Imm)
}

// SetBranchTarget sets Imm so the branch at selfIndex jumps to target.
func (in *Instruction) SetBranchTarget(selfIndex, target int) {
	in.Imm = int32(target - selfIndex - 1)
}

// String renders the instruction in assembly-like syntax, including braid
// annotations when present.
func (in *Instruction) String() string {
	info := &opTable[in.Op]
	s := ""
	if in.Start {
		s += "S| "
	}
	s += info.Name
	operand := func(r Reg, t bool, idx uint8) string {
		if t {
			return fmt.Sprintf("i%d", idx)
		}
		return r.String()
	}
	switch {
	case in.Op == OpNOP || in.Op == OpHALT:
		// no operands
	case in.IsStore():
		s += fmt.Sprintf(" %s, %d(%s)", operand(in.Src1, in.T1, in.I1), in.Imm, operand(in.Src2, in.T2, in.I2))
	case in.IsLoad():
		s += fmt.Sprintf(" %s, %d(%s)", in.destString(), in.Imm, operand(in.Src1, in.T1, in.I1))
	case in.IsCondBranch():
		s += fmt.Sprintf(" %s, %+d", operand(in.Src1, in.T1, in.I1), in.Imm)
	case in.IsUncondBranch():
		s += fmt.Sprintf(" %+d", in.Imm)
	default:
		s += " " + in.destString()
		if info.NumSrcs >= 1 {
			s += ", " + operand(in.Src1, in.T1, in.I1)
		}
		if info.NumSrcs >= 2 {
			if in.HasImm {
				s += fmt.Sprintf(", #%d", in.Imm)
			} else {
				s += ", " + operand(in.Src2, in.T2, in.I2)
			}
		}
	}
	return s
}

func (in *Instruction) destString() string {
	switch {
	case in.IDest && in.EDest:
		return fmt.Sprintf("i%d/%s", in.IDestIdx, in.Dest)
	case in.IDest:
		return fmt.Sprintf("i%d", in.IDestIdx)
	default:
		return in.Dest.String()
	}
}
