package uarch

import (
	"context"
	"errors"
	"fmt"
	"regexp"
	"testing"
	"time"
)

// TestCycleLimitTyped: exhausting MaxCycles must surface as a typed
// ErrCycleLimit that callers match with errors.Is, not a bare string.
func TestCycleLimitTyped(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 100)
	cfg := OutOfOrderConfig(8)
	cfg.MaxCycles = 10 // far below what the program needs
	_, err := Simulate(orig, cfg)
	if err == nil {
		t.Fatal("expected a cycle-limit error")
	}
	if !errors.Is(err, ErrCycleLimit) {
		t.Fatalf("error not ErrCycleLimit: %v", err)
	}
	if errors.Is(err, ErrTimeout) || errors.Is(err, ErrCanceled) {
		t.Fatalf("cycle-limit error matched an unrelated sentinel: %v", err)
	}
}

// TestRunContextCanceled: a canceled context stops the simulation with a
// typed ErrCanceled, even when cancellation precedes the first cycle.
func TestRunContextCanceled(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 100)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m, err := New(orig, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunContext(ctx)
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestRunContextTimeout: an expired deadline surfaces as ErrTimeout, which is
// distinct from cancellation so the suite can retry one but not the other.
func TestRunContextTimeout(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 100)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	<-ctx.Done() // deadline has certainly passed
	m, err := New(orig, OutOfOrderConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	_, err = m.RunContext(ctx)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Fatalf("timeout error must not match ErrCanceled: %v", err)
	}
}

// TestRunCheckedCompletesClean: on a healthy machine RunChecked is
// indistinguishable from Run — same stats, no error.
func TestRunCheckedCompletesClean(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 100)
	cfg := OutOfOrderConfig(8)
	cfg.Paranoid = true
	want, err := Simulate(orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := SimulateChecked(context.Background(), orig, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != want.Cycles || got.Retired != want.Retired {
		t.Fatalf("RunChecked diverged: %d cycles/%d retired vs %d/%d",
			got.Cycles, got.Retired, want.Cycles, want.Retired)
	}
}

// TestFaultInjectionMatrix corrupts each pipeline structure the injector
// knows, one at a time, and proves two things per fault: the paranoid checker
// detects it (the panic message names the violated invariant) and RunChecked
// contains it as a *SimFault instead of crashing the test process.
func TestFaultInjectionMatrix(t *testing.T) {
	orig, braided := genWorkload(t, "gcc", 100)
	cases := []struct {
		kind    FaultKind
		braided bool
		cfg     Config
		detect  string // regexp the checker's panic must match
	}{
		{FaultBusyBit, true, BraidConfig(8), `freeCnt \d+ but \d+ BEUs idle|BEU \d+ open but not busy`},
		{FaultCalendarDrop, false, OutOfOrderConfig(8), `calendar count \d+ != \d+`},
		{FaultRefSkew, false, OutOfOrderConfig(8), `negative refcount`},
		{FaultPortStuck, false, OutOfOrderConfig(8), `port counters exceed limits`},
	}
	for _, c := range cases {
		c := c
		t.Run(c.kind.String(), func(t *testing.T) {
			p := orig
			if c.braided {
				p = braided
			}
			cfg := c.cfg
			cfg.Paranoid = true
			cfg.Inject = &FaultPlan{Kind: c.kind, AtCycle: 20}
			st, err := SimulateChecked(context.Background(), p, cfg)
			if err == nil {
				t.Fatalf("injected %s went undetected: clean run, %d cycles", c.kind, st.Cycles)
			}
			var sf *SimFault
			if !errors.As(err, &sf) {
				t.Fatalf("injected %s surfaced as %T, want *SimFault: %v", c.kind, err, err)
			}
			msg := fmt.Sprint(sf.Panic)
			if ok, _ := regexp.MatchString(c.detect, msg); !ok {
				t.Errorf("checker caught the wrong invariant for %s:\n  panic: %s\n  want match: %s",
					c.kind, msg, c.detect)
			}
			if sf.Cycle < 20 {
				t.Errorf("fault armed for cycle 20 detected at cycle %d", sf.Cycle)
			}
			if sf.Core != cfg.Core || sf.Program == "" {
				t.Errorf("fault metadata incomplete: core=%v program=%q", sf.Core, sf.Program)
			}
			if len(sf.Stack) == 0 {
				t.Error("fault carries no stack trace")
			}
		})
	}
}

// TestFaultDetectionIsSameCycle: injection runs immediately before the
// paranoid check inside one step, so detection must not lag the corruption —
// the artifact's cycle number is where the corruption actually is.
func TestFaultDetectionIsSameCycle(t *testing.T) {
	orig, _ := genWorkload(t, "gcc", 100)
	cfg := OutOfOrderConfig(8)
	cfg.Paranoid = true
	cfg.Inject = &FaultPlan{Kind: FaultPortStuck, AtCycle: 0}
	_, err := SimulateChecked(context.Background(), orig, cfg)
	var sf *SimFault
	if !errors.As(err, &sf) {
		t.Fatalf("want *SimFault, got %v", err)
	}
	if sf.Cycle != 0 {
		t.Errorf("fault armed for cycle 0 detected at cycle %d", sf.Cycle)
	}
}

// TestSimFaultError: the fault's message carries the replay essentials.
func TestSimFaultError(t *testing.T) {
	sf := &SimFault{Core: CoreBraid, Program: "gcc", Cycle: 1234, Fetched: 10, Retired: 7, Panic: "boom"}
	msg := sf.Error()
	for _, want := range []string{"braid", "gcc", "1234", "boom"} {
		if !regexp.MustCompile(regexp.QuoteMeta(want)).MatchString(msg) {
			t.Errorf("fault message %q missing %q", msg, want)
		}
	}
}
