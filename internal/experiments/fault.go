package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"braid/internal/isa"
	"braid/internal/uarch"
)

// PointFailure records one contained simulation failure: the sweep went on
// without this point. Artifact names the crash-repro files when the failure
// was a simulator fault and a crash directory is configured.
type PointFailure struct {
	Bench    string
	Braided  bool
	Core     uarch.CoreKind
	Err      error
	Artifact string // path of the .json repro artifact ("" if none written)
}

func (f PointFailure) String() string {
	s := fmt.Sprintf("%s (%s braided=%v): %v", f.Bench, f.Core, f.Braided, f.Err)
	if f.Artifact != "" {
		s += fmt.Sprintf(" [repro: %s]", f.Artifact)
	}
	return s
}

// Failures returns the contained failures recorded so far, in the order they
// happened. Safe for concurrent use with running sweeps.
func (w *Workloads) Failures() []PointFailure {
	w.failMu.Lock()
	defer w.failMu.Unlock()
	return append([]PointFailure(nil), w.failed...)
}

// Contained reports whether a simulation error is a per-point failure the
// suite survives — a recovered simulator panic, an exhausted cycle budget,
// or an expired per-simulation deadline. Cancellation is NOT contained: it
// means the whole suite is being torn down.
func Contained(err error) bool {
	var sf *uarch.SimFault
	if errors.As(err, &sf) {
		return true
	}
	return errors.Is(err, uarch.ErrCycleLimit) || errors.Is(err, uarch.ErrTimeout)
}

// Transient reports whether a simulation error may succeed on retry — a
// timeout or a cancellation, not a deterministic fault or cycle-budget
// exhaustion. Errors that declare themselves transient (a remote pool's
// backends-unavailable failure) count too. Transient results are never
// memoized, so a recovered environment can rerun the point.
func Transient(err error) bool {
	var tr interface{ TransientError() bool }
	if errors.As(err, &tr) && tr.TransientError() {
		return true
	}
	return errors.Is(err, uarch.ErrTimeout) || errors.Is(err, uarch.ErrCanceled) ||
		errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
}

// noteFailure records a contained failure and, for simulator faults, writes
// the crash artifact that makes the failure one command to replay.
func (w *Workloads) noteFailure(b *Bench, braided bool, cfg uarch.Config, err error) {
	if !Contained(err) {
		return
	}
	pf := PointFailure{Bench: b.Name, Braided: braided, Core: cfg.Core, Err: err}
	var sf *uarch.SimFault
	if errors.As(err, &sf) && w.crashDir != "" {
		p := b.Orig
		if braided {
			p = b.Braided
		}
		if path, aerr := WriteCrashArtifact(w.crashDir, b.Name, braided, p, cfg, sf); aerr == nil {
			pf.Artifact = path
		} else {
			pf.Err = fmt.Errorf("%w (crash artifact not written: %v)", err, aerr)
		}
	}
	w.failMu.Lock()
	w.failed = append(w.failed, pf)
	w.failMu.Unlock()
}

// CrashArtifact is the JSON half of a crash repro: everything needed to
// rebuild the failing simulation. The program itself is saved alongside as a
// .brd binary image; `braidsim -config <artifact.json>` replays the pair.
type CrashArtifact struct {
	Bench   string       `json:"bench"`
	Braided bool         `json:"braided"`
	Cycle   uint64       `json:"cycle"`
	Panic   string       `json:"panic"`
	Stack   string       `json:"stack,omitempty"`
	Program string       `json:"program"` // path of the .brd image
	Replay  string       `json:"replay"`  // suggested replay command
	Config  uarch.Config `json:"config"`
}

// WriteCrashArtifact persists a minimal repro for a simulator fault: the
// exact program image (<stem>.brd) and a JSON description with the full
// machine configuration (<stem>.json). It returns the JSON path. The stem is
// deterministic per (bench, core, braided), so a repeatedly faulting point
// overwrites rather than accumulates.
func WriteCrashArtifact(dir, bench string, braided bool, p *isa.Program, cfg uarch.Config, sf *uarch.SimFault) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	stem := fmt.Sprintf("%s-%s-braided=%v", bench, cfg.Core, braided)
	progPath := filepath.Join(dir, stem+".brd")
	jsonPath := filepath.Join(dir, stem+".json")

	pf, err := os.Create(progPath)
	if err != nil {
		return "", err
	}
	if err := isa.WriteImage(pf, p); err != nil {
		pf.Close()
		return "", err
	}
	if err := pf.Close(); err != nil {
		return "", err
	}

	// Paranoid mode is what detects the corruption; force it on in the
	// artifact so the replay panics at the same cycle the original did.
	cfg.Paranoid = true
	cfg.Inject = nil
	art := CrashArtifact{
		Bench:   bench,
		Braided: braided,
		Cycle:   sf.Cycle,
		Panic:   fmt.Sprint(sf.Panic),
		Stack:   string(sf.Stack),
		Program: progPath,
		Replay:  fmt.Sprintf("braidsim -config %s", jsonPath),
		Config:  cfg,
	}
	data, err := json.MarshalIndent(&art, "", "  ")
	if err != nil {
		return "", err
	}
	if err := os.WriteFile(jsonPath, append(data, '\n'), 0o644); err != nil {
		return "", err
	}
	return jsonPath, nil
}

// ReadCrashArtifact loads a crash artifact and its program image for replay.
func ReadCrashArtifact(jsonPath string) (*CrashArtifact, *isa.Program, error) {
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		return nil, nil, err
	}
	var art CrashArtifact
	if err := json.Unmarshal(data, &art); err != nil {
		return nil, nil, fmt.Errorf("experiments: parsing crash artifact %s: %w", jsonPath, err)
	}
	prog := art.Program
	if prog != "" && !filepath.IsAbs(prog) {
		// Tolerate artifacts moved along with their directory.
		if _, err := os.Stat(prog); err != nil {
			prog = filepath.Join(filepath.Dir(jsonPath), filepath.Base(prog))
		}
	}
	f, err := os.Open(prog)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	p, err := isa.ReadImage(f)
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: reading program image %s: %w", prog, err)
	}
	return &art, p, nil
}
