// Package cfg builds control-flow graphs over BRD64 programs and runs the
// dataflow analyses the braid compiler needs: basic-block discovery,
// block-local def-use chains, and iterative live-variable analysis. The
// braid is defined entirely within the basic block (paper §3.4), so these
// analyses are the full extent of "compiler" infrastructure required.
package cfg

import (
	"fmt"

	"braid/internal/isa"
)

// Block is one basic block: the half-open instruction range [Start, End).
type Block struct {
	Index int
	Start int
	End   int
	Succs []int
	Preds []int
}

// Len returns the number of instructions in the block.
func (b *Block) Len() int { return b.End - b.Start }

// Graph is the control-flow graph of a program.
type Graph struct {
	Prog    *isa.Program
	Blocks  []Block
	BlockOf []int // instruction index -> block index
}

// Build partitions the program into basic blocks and wires successor and
// predecessor edges. Leaders are instruction 0, every branch target, and
// every instruction following a branch or halt.
func Build(p *isa.Program) (*Graph, error) {
	n := len(p.Instrs)
	if n == 0 {
		return nil, fmt.Errorf("cfg: empty program %q", p.Name)
	}
	leader := make([]bool, n)
	leader[0] = true
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if in.IsBranch() {
			t := in.BranchTarget(i)
			if t < 0 || t >= n {
				return nil, fmt.Errorf("cfg: instr %d branch target %d out of range", i, t)
			}
			leader[t] = true
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.IsHalt() && i+1 < n {
			leader[i+1] = true
		}
	}

	g := &Graph{Prog: p, BlockOf: make([]int, n)}
	for i := 0; i < n; {
		j := i + 1
		for j < n && !leader[j] {
			j++
		}
		g.Blocks = append(g.Blocks, Block{Index: len(g.Blocks), Start: i, End: j})
		for k := i; k < j; k++ {
			g.BlockOf[k] = len(g.Blocks) - 1
		}
		i = j
	}

	addEdge := func(from, to int) {
		g.Blocks[from].Succs = append(g.Blocks[from].Succs, to)
		g.Blocks[to].Preds = append(g.Blocks[to].Preds, from)
	}
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		last := &p.Instrs[b.End-1]
		switch {
		case last.IsHalt():
			// no successors
		case last.IsUncondBranch():
			addEdge(bi, g.BlockOf[last.BranchTarget(b.End-1)])
		case last.IsCondBranch():
			addEdge(bi, g.BlockOf[last.BranchTarget(b.End-1)])
			if b.End < n {
				addEdge(bi, g.BlockOf[b.End])
			}
		default:
			if b.End < n {
				addEdge(bi, g.BlockOf[b.End])
			}
		}
	}
	return g, nil
}

// RegSet is a bitset over the 64 architectural registers.
type RegSet uint64

// Add returns s with r included. The zero register is never tracked.
func (s RegSet) Add(r isa.Reg) RegSet {
	if !r.Valid() || r == isa.RegZero {
		return s
	}
	return s | 1<<uint(r)
}

// Has reports whether r is in the set.
func (s RegSet) Has(r isa.Reg) bool {
	if !r.Valid() || r == isa.RegZero {
		return false
	}
	return s&(1<<uint(r)) != 0
}

// Count returns the set's cardinality.
func (s RegSet) Count() int {
	n := 0
	for s != 0 {
		s &= s - 1
		n++
	}
	return n
}

// Liveness holds per-block live-in/live-out register sets for the external
// (architectural) register space.
type Liveness struct {
	LiveIn  []RegSet
	LiveOut []RegSet
}

// ComputeLiveness runs standard backward iterative live-variable analysis.
// Internal (braid) operands are invisible to it by design: liveness is an
// external-register property.
func ComputeLiveness(g *Graph) *Liveness {
	nb := len(g.Blocks)
	use := make([]RegSet, nb)
	def := make([]RegSet, nb)
	for bi := range g.Blocks {
		b := &g.Blocks[bi]
		var u, d RegSet
		var srcs []isa.Reg
		for i := b.Start; i < b.End; i++ {
			in := &g.Prog.Instrs[i]
			srcs = externalSources(in, srcs[:0])
			for _, r := range srcs {
				if !d.Has(r) {
					u = u.Add(r)
				}
			}
			if externalWrite(in) {
				d = d.Add(in.Dest)
			}
		}
		use[bi], def[bi] = u, d
	}

	lv := &Liveness{
		LiveIn:  make([]RegSet, nb),
		LiveOut: make([]RegSet, nb),
	}
	for changed := true; changed; {
		changed = false
		for bi := nb - 1; bi >= 0; bi-- {
			var out RegSet
			for _, s := range g.Blocks[bi].Succs {
				out |= lv.LiveIn[s]
			}
			in := use[bi] | (out &^ def[bi])
			if out != lv.LiveOut[bi] || in != lv.LiveIn[bi] {
				lv.LiveOut[bi], lv.LiveIn[bi] = out, in
				changed = true
			}
		}
	}
	return lv
}

// externalWrite reports whether the instruction writes an external register.
// Unbraided code (no I/E bits) writes externally by default.
func externalWrite(in *isa.Instruction) bool {
	if !in.WritesReg() {
		return false
	}
	if in.IDest && !in.EDest {
		return false
	}
	return true
}

// externalSources appends the external source registers of in (skipping
// internal T-operands and the zero register).
func externalSources(in *isa.Instruction, dst []isa.Reg) []isa.Reg {
	info := in.Info()
	if info.NumSrcs >= 1 && !in.T1 && in.Src1 != isa.RegNone && in.Src1 != isa.RegZero {
		dst = append(dst, in.Src1)
	}
	if info.NumSrcs >= 2 && !in.HasImm && !in.T2 && in.Src2 != isa.RegNone && in.Src2 != isa.RegZero {
		dst = append(dst, in.Src2)
	}
	if info.ReadsDest && !in.IDest && in.Dest != isa.RegNone && in.Dest != isa.RegZero {
		dst = append(dst, in.Dest)
	}
	return dst
}

// DefUse describes the block-local flow dependencies of one block.
type DefUse struct {
	// Producer[i][k] is the in-block instruction index (relative to block
	// start) producing the k-th external source operand of instruction i
	// (relative index), or -1 if the value comes from outside the block.
	Producer [][]int8
	// SrcReg[i][k] is the register carrying that dependency.
	SrcReg [][]isa.Reg
}

// BlockDefUse computes block-local def-use chains for external register
// operands of the given block. Relative instruction indices are int8 because
// generated blocks are far smaller than 128 instructions; Build callers must
// not feed larger blocks (the workload generator and kernels never do).
func BlockDefUse(g *Graph, bi int) (*DefUse, error) {
	b := &g.Blocks[bi]
	if b.Len() > 127 {
		return nil, fmt.Errorf("cfg: block %d has %d instructions (limit 127)", bi, b.Len())
	}
	du := &DefUse{
		Producer: make([][]int8, b.Len()),
		SrcReg:   make([][]isa.Reg, b.Len()),
	}
	var lastDef [isa.NumArchRegs]int8
	for i := range lastDef {
		lastDef[i] = -1
	}
	var srcs []isa.Reg
	for i := b.Start; i < b.End; i++ {
		in := &g.Prog.Instrs[i]
		rel := i - b.Start
		srcs = externalSources(in, srcs[:0])
		for _, r := range srcs {
			du.Producer[rel] = append(du.Producer[rel], lastDef[r])
			du.SrcReg[rel] = append(du.SrcReg[rel], r)
		}
		if externalWrite(in) {
			lastDef[in.Dest] = int8(rel)
		}
	}
	return du, nil
}
