package uarch

import (
	"braid/internal/bpred"
	"braid/internal/interp"
	"braid/internal/isa"
)

// textBase is the virtual address of the text segment; each BRD64
// instruction occupies 8 bytes for instruction-cache purposes.
const textBase = 0x1000

// frontend fetches the correct dynamic instruction stream by executing the
// program functionally, applying instruction-cache and branch-prediction
// timing. A mispredicted conditional branch stops fetch; the engine restarts
// it when the branch executes, after the configured redirect gap.
type frontend struct {
	m    *interp.Machine
	pred bpred.Predictor

	queue    []*dyn // fetched, awaiting dispatch
	queueCap int

	done         bool   // HALT fetched
	stalledOn    *dyn   // mispredicted branch blocking fetch
	blockedUntil uint64 // icache miss fill time
	lastLine     uint64
	haveLine     bool

	// Owner tables for dependence construction at fetch time.
	extOwner [isa.NumArchRegs]*dyn
	intOwner [isa.NumInternalRegs]*dyn
}

func newFrontend(p *isa.Program, cfg *Config) *frontend {
	var pred bpred.Predictor
	if cfg.PerfectBP {
		pred = bpred.Perfect{}
	} else {
		pred = bpred.NewPerceptron(512, 64)
	}
	return &frontend{
		m:    interp.New(p),
		pred: pred,
		// The fetch-to-dispatch buffer must cover the front end's
		// bandwidth-delay product (instructions are in flight for
		// FrontDepth cycles before dispatch) or it, rather than the
		// modeled resources, becomes the IPC ceiling.
		queueCap: cfg.FetchWidth * (cfg.FrontDepth + 4),
	}
}

func instrAddr(idx int) uint64 { return textBase + uint64(idx)*8 }

// fetch runs one front-end cycle at time t.
func (fe *frontend) fetch(m *Machine, t uint64) {
	if fe.done || fe.stalledOn != nil || t < fe.blockedUntil {
		return
	}
	cfg := &m.cfg
	branches := 0
	for n := 0; n < cfg.FetchWidth; n++ {
		if len(fe.queue) >= fe.queueCap {
			return
		}
		pc := fe.m.PC
		addr := instrAddr(pc)
		line := addr >> 6
		if !fe.haveLine || line != fe.lastLine {
			lat := m.hier.AccessI(addr)
			fe.lastLine, fe.haveLine = line, true
			if lat > cfg.Mem.L1I.Latency {
				// Miss: the line arrives later; re-fetch then.
				fe.blockedUntil = t + uint64(lat)
				m.stats.ICacheMissCycles += uint64(lat)
				return
			}
		}

		var info interp.StepInfo
		if err := fe.m.Step(&info); err != nil {
			// Out-of-range PC or similar: treat as end of program.
			fe.done = true
			return
		}
		d := fe.buildDyn(m, &info, t)
		fe.queue = append(fe.queue, d)
		m.stats.Fetched++

		if d.in.IsHalt() {
			fe.done = true
			return
		}
		if d.isBranch {
			branches++
			if d.in.IsCondBranch() {
				m.stats.CondBranches++
				predicted := fe.pred.Predict(addr, d.taken)
				fe.pred.Train(addr, d.taken)
				if predicted != d.taken {
					d.mispredicted = true
					m.stats.Mispredicts++
					fe.stalledOn = d
					return
				}
			}
			if d.taken {
				// A taken branch redirects fetch: the rest of this
				// cycle's fetch slots are lost, as in any real front
				// end (the 3-branch throughput of Table 4 applies to
				// the not-taken branches within a fetch group).
				return
			}
			if branches >= cfg.FetchBranches {
				return
			}
		}
	}
}

// buildDyn wires the dependence edges using the owner tables.
func (fe *frontend) buildDyn(m *Machine, info *interp.StepInfo, t uint64) *dyn {
	in := info.Instr
	m.seq++
	d := &dyn{
		seq:           m.seq,
		idx:           info.Index,
		in:            in,
		addr:          info.Addr,
		isLoad:        in.IsLoad(),
		isStore:       in.IsStore(),
		isBranch:      in.IsBranch(),
		taken:         info.Taken,
		braidStart:    in.Start,
		beu:           -1,
		sched:         -1,
		fetchCycle:    t,
		dispatchReady: t + uint64(m.cfg.FrontDepth),
	}
	if d.braidStart {
		// Internal values never cross braid boundaries (§3.4).
		fe.intOwner = [isa.NumInternalRegs]*dyn{}
	}

	addSrc := func(p *dyn, internal bool) {
		if p == nil {
			return // architectural state: always ready
		}
		d.srcs[d.nsrcs] = source{producer: p, internal: internal}
		d.nsrcs++
		if !internal && !p.retired {
			p.pendingReads++
		}
	}
	info2 := in.Info()
	if info2.NumSrcs >= 1 {
		if in.T1 {
			addSrc(fe.intOwner[in.I1], true)
		} else if in.Src1 != isa.RegNone && in.Src1 != isa.RegZero {
			addSrc(fe.extOwner[in.Src1], false)
		}
	}
	if info2.NumSrcs >= 2 && !in.HasImm {
		if in.T2 {
			addSrc(fe.intOwner[in.I2], true)
		} else if in.Src2 != isa.RegNone && in.Src2 != isa.RegZero {
			addSrc(fe.extOwner[in.Src2], false)
		}
	}
	if info2.ReadsDest && in.Dest != isa.RegNone && in.Dest != isa.RegZero {
		// Conditional moves read their old destination from the
		// external file (the braid ISA has no T bit for it).
		addSrc(fe.extOwner[in.Dest], false)
	}

	if in.WritesReg() && in.Dest != isa.RegZero && (in.EDest || !in.IDest) {
		d.hasExtDest = true
		if old := fe.extOwner[in.Dest]; old != nil {
			old.closed = true
			m.tryEarlyRelease(old)
		}
		fe.extOwner[in.Dest] = d
	}
	if in.IDest {
		d.hasIntDest = true
		fe.intOwner[in.IDestIdx] = d
	}
	return d
}

// extSrcCount counts external source operands for rename bandwidth.
func (d *dyn) extSrcCount() int {
	n := 0
	for i := 0; i < d.nsrcs; i++ {
		if !d.srcs[i].internal {
			n++
		}
	}
	return n
}
