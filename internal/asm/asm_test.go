package asm

import (
	"math"
	"strings"
	"testing"

	"braid/internal/interp"
	"braid/internal/isa"
)

const sumSrc = `
; sum the integers 1..10
.name sum10
	ldimm r1, #10     ; counter
	ldimm r2, #0      ; accumulator
loop:
	add   r2, r2, r1
	sub   r1, r1, #1
	bgt   r1, loop
	halt
`

func TestParseAndRun(t *testing.T) {
	p, err := Parse(sumSrc)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sum10" {
		t.Errorf("name = %q", p.Name)
	}
	if p.Labels["loop"] != 2 {
		t.Errorf("label loop = %d, want 2", p.Labels["loop"])
	}
	m := interp.New(p)
	if _, err := m.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if m.R[2] != 55 {
		t.Errorf("sum = %d, want 55", m.R[2])
	}
}

func TestParseMemoryAndData(t *testing.T) {
	src := `
.name mem
.word 17
.word 25
	ldimm r1, #65536      ; DataBase
	ldq   r2, 0(r1)   !ac=1
	ldq   r3, 8(r1)   !ac=1
	add   r4, r2, r3
	stq   r4, 16(r1)  !ac=2
	halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Data) != 16 {
		t.Fatalf("data = %d bytes, want 16", len(p.Data))
	}
	if p.Instrs[1].AliasClass != 1 || p.Instrs[4].AliasClass != 2 {
		t.Errorf("alias classes = %d, %d", p.Instrs[1].AliasClass, p.Instrs[4].AliasClass)
	}
	m := interp.New(p)
	if _, err := m.Run(1000, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.Mem.Read64(isa.DataBase + 16); got != 42 {
		t.Errorf("stored sum = %d, want 42", got)
	}
}

func TestParseBraidAnnotations(t *testing.T) {
	src := `
	ldimm r1, #5
	add   i3, r1, #2    !start
	add   i2/r7, i3, r1
	stq   i2, 0(r1)
	halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	in := p.Instrs[1]
	if !in.Start || !in.IDest || in.IDestIdx != 3 || in.EDest {
		t.Errorf("braid bits wrong on %+v", in)
	}
	in = p.Instrs[2]
	if !in.IDest || !in.EDest || in.IDestIdx != 2 || in.Dest != 7 || !in.T1 || in.I1 != 3 {
		t.Errorf("dual destination wrong on %+v", in)
	}
	in = p.Instrs[3]
	if !in.T1 || in.I1 != 2 {
		t.Errorf("store internal source wrong on %+v", in)
	}
}

func TestParseLDA(t *testing.T) {
	p, err := Parse("\tlda r2, 24(r3)\n\thalt\n")
	if err != nil {
		t.Fatal(err)
	}
	in := p.Instrs[0]
	if in.Op != isa.OpLDA || in.Dest != 2 || in.Src1 != 3 || in.Imm != 24 || !in.HasImm {
		t.Errorf("lda parsed as %+v", in)
	}
}

func TestParseFP(t *testing.T) {
	src := `
.fp
	ldimm r1, #4
	cvtif f0, r1
	fsqrt f1, f0
	fadd  f2, f0, f1
	halt
`
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if !p.FP {
		t.Error(".fp not recorded")
	}
	m := interp.New(p)
	if _, err := m.Run(100, nil); err != nil {
		t.Fatal(err)
	}
	if got := m.R[isa.RegF0+2]; got != f2u(6) {
		t.Errorf("4+2 = %v", got)
	}
}

func f2u(f float64) uint64 { return math.Float64bits(f) }

func TestParseErrors(t *testing.T) {
	cases := []string{
		"\tfrobnicate r1, r2\n\thalt\n", // unknown mnemonic
		"\tadd r1, r2\n\thalt\n",        // wrong operand count
		"\tadd r99, r1, r2\n\thalt\n",   // bad register
		"\tbne r1, nowhere\n\thalt\n",   // undefined label
		"x: x:\n\thalt\n",               // duplicate label
		"\tldq r1, r2\n\thalt\n",        // load without disp(base)
		"\t.bogus 3\n\thalt\n",          // unknown directive
		"\tadd r1, r2, r3 !wat\n\thalt\n",
		"\tadd i9, r1, r2\n\thalt\n", // internal index out of range
	}
	for _, src := range cases {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestFormatRoundTrip(t *testing.T) {
	srcs := []string{sumSrc, `
.name braided
	ldimm r1, #65536
	ldimm r2, #3
	add   i0, r1, r2     !start
	mul   i1, i0, i0
	add   i2/r5, i1, r2
	stq   r5, 8(r1)      !ac=3
	beq   r5, done
	sub   r6, r5, #1
done:
	halt
`}
	for _, src := range srcs {
		p1, err := Parse(src)
		if err != nil {
			t.Fatal(err)
		}
		text := Format(p1)
		p2, err := Parse(text)
		if err != nil {
			t.Fatalf("re-parse failed: %v\n%s", err, text)
		}
		if len(p1.Instrs) != len(p2.Instrs) {
			t.Fatalf("instruction count changed: %d -> %d", len(p1.Instrs), len(p2.Instrs))
		}
		for i := range p1.Instrs {
			if p1.Instrs[i] != p2.Instrs[i] {
				t.Errorf("instr %d changed:\n was %+v\n now %+v", i, p1.Instrs[i], p2.Instrs[i])
			}
		}
	}
}

func TestFormatDataRoundTrip(t *testing.T) {
	src := ".word 300\n.word -7\n\thalt\n"
	p1, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Parse(Format(p1))
	if err != nil {
		t.Fatal(err)
	}
	if string(p1.Data) != string(p2.Data) {
		t.Errorf("data changed: %v -> %v", p1.Data, p2.Data)
	}
}

func TestSplitOperands(t *testing.T) {
	got := splitOperands("r1, 8(r2), #3")
	if len(got) != 3 || strings.TrimSpace(got[1]) != "8(r2)" {
		t.Errorf("splitOperands = %q", got)
	}
}
