package remote

import (
	"context"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"sync/atomic"
	"testing"
	"time"

	"braid/internal/experiments"
	"braid/internal/service"
	"braid/internal/uarch"
)

// flakyProxy fronts a healthy braidd with injected failures: every third
// simulate request is refused, alternating between a 429 with a Retry-After
// hint and a raw connection reset. Health checks pass through untouched so
// Ping sees a live fleet.
type flakyProxy struct {
	backend *httputil.ReverseProxy
	seq     atomic.Int64
	faults  atomic.Int64
}

func newFlakyProxy(t *testing.T, backendURL string) (*httptest.Server, *flakyProxy) {
	t.Helper()
	u, err := url.Parse(backendURL)
	if err != nil {
		t.Fatal(err)
	}
	fp := &flakyProxy{backend: httputil.NewSingleHostReverseProxy(u)}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method == http.MethodPost && r.URL.Path == "/v1/simulate" {
			if n := fp.seq.Add(1); n%3 == 0 {
				fp.faults.Add(1)
				if n%2 == 0 {
					// A shed: the client must back off and retry.
					w.Header().Set("Retry-After", "1")
					w.WriteHeader(http.StatusTooManyRequests)
				} else {
					// A connection reset: the client must fail over.
					hj, ok := w.(http.Hijacker)
					if !ok {
						w.WriteHeader(http.StatusInternalServerError)
						return
					}
					conn, _, err := hj.Hijack()
					if err == nil {
						if tc, ok := conn.(*net.TCPConn); ok {
							tc.SetLinger(0) // RST, not FIN
						}
						conn.Close()
					}
				}
				return
			}
		}
		fp.backend.ServeHTTP(w, r)
	}))
	return ts, fp
}

// TestFlakyBackendsConvergeBitIdentical is the distributed-execution
// soak: a parallel experiment sweep over two braidd backends that shed and
// reset connections on a third of their requests must converge — through
// retries, failover, and hedging — to exactly the IPC values in-process
// simulation produces, with zero contained failures and untouched
// memoization accounting.
func TestFlakyBackendsConvergeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("distributed soak test")
	}

	var proxies []*flakyProxy
	var urls []string
	for i := 0; i < 2; i++ {
		backend := httptest.NewServer(service.New(service.Config{Workers: 2}).Handler())
		defer backend.Close()
		proxy, fp := newFlakyProxy(t, backend.URL)
		defer proxy.Close()
		proxies = append(proxies, fp)
		urls = append(urls, proxy.URL)
	}

	pool, err := NewPool(Options{
		Backends:    urls,
		MaxAttempts: 16, // a third of requests fault; leave headroom to converge
		BaseBackoff: time.Millisecond,
		MaxBackoff:  10 * time.Millisecond,
		Hedge:       true,
		HedgeFloor:  time.Millisecond,
		VerifyEvery: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Ping(context.Background()); err != nil {
		t.Fatal(err)
	}

	w, err := experiments.LoadSuiteJobs(1500, 0)
	if err != nil {
		t.Fatal(err)
	}

	// The points: a slice of the suite across both binaries, with duplicates
	// so memoization is exercised under the remote runner too.
	var points []experiments.Point
	for _, b := range w.Benches[:6] {
		for _, braided := range []bool{false, true} {
			cfg := uarch.OutOfOrderConfig(8)
			if braided {
				cfg = uarch.BraidConfig(8)
			}
			points = append(points, experiments.Point{Bench: b, Braided: braided, Cfg: cfg})
		}
	}
	points = append(points, points...) // duplicates: one simulation each, total
	unique := len(points) / 2

	// Ground truth, in-process.
	want := make(map[experiments.Point]float64, unique)
	for _, pt := range points[:unique] {
		p := pt.Bench.Orig
		if pt.Braided {
			p = pt.Bench.Braided
		}
		st, err := uarch.SimulateChecked(context.Background(), p, pt.Cfg)
		if err != nil {
			t.Fatalf("local %s: %v", pt.Bench.Name, err)
		}
		want[pt] = st.IPC()
	}

	w.SetRunner(pool)
	w.SetJobs(8)
	got, err := w.IPCAll(points)
	if err != nil {
		t.Fatalf("remote sweep: %v", err)
	}
	for pt, wantIPC := range want {
		gotIPC, ok := got[pt]
		if !ok {
			t.Errorf("%s braided=%v: missing from remote sweep", pt.Bench.Name, pt.Braided)
			continue
		}
		if gotIPC != wantIPC || math.IsNaN(gotIPC) {
			t.Errorf("%s braided=%v: remote IPC %v != local %v", pt.Bench.Name, pt.Braided, gotIPC, wantIPC)
		}
	}
	if fails := w.Failures(); len(fails) > 0 {
		t.Errorf("contained failures under flaky backends: %v", fails)
	}
	if runs := w.SimRuns(); runs != uint64(unique) {
		t.Errorf("sim runs = %d, want %d (memoization must absorb duplicates)", runs, unique)
	}

	s := pool.Snapshot()
	injected := proxies[0].faults.Load() + proxies[1].faults.Load()
	if injected == 0 {
		t.Fatal("the proxies never injected a fault; the soak proved nothing")
	}
	if s.Retries == 0 {
		t.Error("no retries despite injected faults")
	}
	t.Logf("pool: %s; injected faults: %d", pool, injected)
}
