package experiments

import (
	"sync"
	"testing"

	"braid/internal/uarch"
)

// TestMemoCacheConcurrent hammers the simulation cache from many goroutines
// with overlapping points and asserts (a) exactly one simulation ran per
// unique key — the per-key latch suppresses duplicates — and (b) every value
// is bit-identical to a serial run over a fresh cache. `go test -race`
// checks the cache's synchronization on top.
func TestMemoCacheConcurrent(t *testing.T) {
	w := testSuite(t)
	benches := w.Benches[:4]
	cfgs := []uarch.Config{
		uarch.OutOfOrderConfig(8),
		uarch.BraidConfig(8),
		uarch.BraidConfig(4),
	}
	var points []Point
	for _, b := range benches {
		for _, cfg := range cfgs {
			points = append(points, Point{b, cfg.Core == uarch.CoreBraid, cfg})
		}
	}

	// A fresh cache over the same prepared benchmarks isolates the counter
	// from the rest of the test binary (the suite is shared).
	fresh := func() *Workloads {
		return &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 8}
	}

	serial := fresh()
	want := map[Point]float64{}
	for _, pt := range points {
		v, err := serial.IPC(pt.Bench, pt.Braided, pt.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[pt] = v
	}
	if got := serial.SimRuns(); got != uint64(len(points)) {
		t.Fatalf("serial baseline ran %d simulations, want %d", got, len(points))
	}

	// 8 goroutines × every point, interleaved from different offsets so the
	// same keys race from the start.
	conc := fresh()
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(off int) {
			defer wg.Done()
			for i := range points {
				pt := points[(i+off)%len(points)]
				v, err := conc.IPC(pt.Bench, pt.Braided, pt.Cfg)
				if err != nil {
					errs <- err
					return
				}
				if v != want[pt] {
					t.Errorf("%s braided=%v: concurrent IPC %v != serial %v",
						pt.Bench.Name, pt.Braided, v, want[pt])
					return
				}
			}
		}(g * len(points) / goroutines)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := conc.SimRuns(); got != uint64(len(points)) {
		t.Errorf("concurrent cache ran %d simulations for %d unique keys", got, len(points))
	}
}

// TestIPCAllMatchesSerial checks the batch fan-out returns the same values
// as one-at-a-time calls, with duplicates collapsed to a single simulation.
func TestIPCAllMatchesSerial(t *testing.T) {
	w := testSuite(t)
	cfg := uarch.BraidConfig(8)
	var pts []Point
	for _, b := range w.Benches[:3] {
		pts = append(pts, Point{b, true, cfg}, Point{b, true, cfg}) // duplicates
	}
	batch := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 8}
	got, err := batch.IPCAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	if runs := batch.SimRuns(); runs != 3 {
		t.Errorf("IPCAll ran %d simulations for 3 unique keys", runs)
	}
	for _, pt := range pts {
		want, err := w.IPC(pt.Bench, pt.Braided, pt.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		if got[pt] != want {
			t.Errorf("%s: IPCAll %v != IPC %v", pt.Bench.Name, got[pt], want)
		}
	}
}

// TestLoadSuiteJobsDeterministic checks the parallel loader preserves the
// profile order and produces the same programs at any worker count.
func TestLoadSuiteJobsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	w1, err := LoadSuiteJobs(1000, 1)
	if err != nil {
		t.Fatal(err)
	}
	w8, err := LoadSuiteJobs(1000, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(w1.Benches) != len(w8.Benches) {
		t.Fatalf("suite sizes differ: %d vs %d", len(w1.Benches), len(w8.Benches))
	}
	for i := range w1.Benches {
		a, b := w1.Benches[i], w8.Benches[i]
		if a.Name != b.Name {
			t.Fatalf("bench %d: order differs: %s vs %s", i, a.Name, b.Name)
		}
		if len(a.Orig.Instrs) != len(b.Orig.Instrs) || len(a.Braided.Instrs) != len(b.Braided.Instrs) {
			t.Errorf("%s: program sizes differ between worker counts", a.Name)
		}
		if a.DynInstrs != b.DynInstrs {
			t.Errorf("%s: dynamic instruction counts differ: %d vs %d", a.Name, a.DynInstrs, b.DynInstrs)
		}
	}
}
