package uarch

import (
	"strings"
	"testing"
)

func TestComplexityOrdering(t *testing.T) {
	braid := EstimateComplexity(BraidConfig(8))
	ooo := EstimateComplexity(OutOfOrderConfig(8))
	io := EstimateComplexity(InOrderConfig(8))
	dep := EstimateComplexity(DepSteerConfig(8))

	// The paper's §5.1 claims, as orderings of the proxies.
	if braid.RFArea >= ooo.RFArea/10 {
		t.Errorf("braid external RF area %.0f not far below out-of-order %.0f", braid.RFArea, ooo.RFArea)
	}
	if braid.SchedulerCAM != 0 {
		t.Error("braid core has broadcast scheduler cost")
	}
	if ooo.SchedulerCAM == 0 {
		t.Error("out-of-order core has no broadcast scheduler cost")
	}
	if braid.BypassWires >= ooo.BypassWires {
		t.Errorf("braid bypass %.0f not below out-of-order %.0f", braid.BypassWires, ooo.BypassWires)
	}
	if braid.Checkpoint >= ooo.Checkpoint {
		t.Errorf("braid checkpoint state %.0f not below out-of-order %.0f", braid.Checkpoint, ooo.Checkpoint)
	}
	// "Almost in-order complexity": the braid core's partitioned, thinly
	// ported register files leave it at or below even the in-order
	// machine's fully ported architectural file, and far below the
	// out-of-order and steering designs.
	if braid.Total() > io.Total() {
		t.Errorf("braid total %.0f above in-order %.0f", braid.Total(), io.Total())
	}
	if braid.Total() > ooo.Total()/3 {
		t.Errorf("braid total %.0f not well below out-of-order %.0f", braid.Total(), ooo.Total())
	}
	if dep.Total() < braid.Total() {
		t.Errorf("dep-steer total %.0f below braid %.0f (it keeps the monolithic RF)", dep.Total(), braid.Total())
	}
}

// TestComplexityGolden pins EstimateComplexity to exact values for the four
// canonical machines at widths 2/4/8. The design-space explorer ranks
// configurations by these numbers, so any drift here silently reshapes every
// Pareto front; a change to the proxies must update this table deliberately.
func TestComplexityGolden(t *testing.T) {
	cases := []struct {
		core  string
		width int
		make  func(int) Config
		want  float64
	}{
		{"in-order", 2, InOrderConfig, 147486},
		{"in-order", 4, InOrderConfig, 1179756},
		{"in-order", 8, InOrderConfig, 9437592},
		{"dep-steer", 2, DepSteerConfig, 147566},
		{"dep-steer", 4, DepSteerConfig, 1179916},
		{"dep-steer", 8, DepSteerConfig, 9437912},
		{"braid", 2, BraidConfig, 38101},
		{"braid", 4, BraidConfig, 77994},
		{"braid", 8, BraidConfig, 189268},
		{"out-of-order", 2, OutOfOrderConfig, 147806},
		{"out-of-order", 4, OutOfOrderConfig, 1180908},
		{"out-of-order", 8, OutOfOrderConfig, 9441944},
	}
	for _, tc := range cases {
		got := EstimateComplexity(tc.make(tc.width)).Total()
		if got != tc.want {
			t.Errorf("%s/%d total = %.0f, want %.0f", tc.core, tc.width, got, tc.want)
		}
	}

	// Full component breakdown for the paper's two 8-wide machines.
	ooo := EstimateComplexity(OutOfOrderConfig(8))
	if ooo != (Complexity{RFArea: 9437184, SchedulerCAM: 4096, BypassWires: 384, RenamePorts: 24, Checkpoint: 256}) {
		t.Errorf("out-of-order/8 breakdown drifted: %+v", ooo)
	}
	braid := EstimateComplexity(BraidConfig(8))
	if braid != (Complexity{RFArea: 41472, InternalArea: 147456, SchedulerFIFO: 256, BypassWires: 64, RenamePorts: 12, Checkpoint: 8}) {
		t.Errorf("braid/8 breakdown drifted: %+v", braid)
	}
	// §5.1's headline ratio: the braid execution core at ~2% of the
	// out-of-order core's proxy area.
	if r := braid.Total() / ooo.Total(); r < 0.015 || r > 0.025 {
		t.Errorf("braid/ooo complexity ratio %.4f outside [0.015, 0.025]", r)
	}
}

func TestComplexityReport(t *testing.T) {
	r := ComplexityReport(8)
	for _, want := range []string{"in-order", "braid", "out-of-order", "ext-RF-area", "%"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
