package explore

import (
	"bytes"
	"context"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"braid/internal/experiments"
	"braid/internal/uarch"
)

// The test suite: a small mixed workload set at a small calibration target,
// loaded once and shared (the memo cache makes repeat searches nearly free).
const testDyn = 8000

var testBenchNames = []string{"gcc", "mcf", "gzip", "swim"}

var (
	suiteOnce sync.Once
	suiteW    *experiments.Workloads
	suiteErr  error
)

func testSuite(t *testing.T) (*experiments.Workloads, []*experiments.Bench) {
	t.Helper()
	suiteOnce.Do(func() {
		suiteW, suiteErr = experiments.LoadSuiteCtx(context.Background(), testDyn, 0)
	})
	if suiteErr != nil {
		t.Fatal(suiteErr)
	}
	benches, err := SelectBenches(suiteW, testBenchNames)
	if err != nil {
		t.Fatal(err)
	}
	return suiteW, benches
}

func searchOpts(seed int64) Options {
	return Options{Seed: seed, Pop: 16, Budget: 200}
}

// TestSearchRediscoversThePaper is the acceptance test: from a random seed
// population, the front must contain a braid-style machine within 10% of the
// 8-wide out-of-order baseline's geomean IPC at no more than half (in fact
// a few percent) of its estimated complexity. That is the paper's Figure 13
// / §5.1 claim, recovered by search rather than by hand.
func TestSearchRediscoversThePaper(t *testing.T) {
	w, benches := testSuite(t)
	res, err := Search(context.Background(), w, benches, searchOpts(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}

	// The reference machine, evaluated through the same pipeline.
	oooCfg := uarch.OutOfOrderConfig(8)
	logSum := 0.0
	for _, b := range benches {
		v, err := w.IPC(b, false, oooCfg)
		if err != nil {
			t.Fatal(err)
		}
		logSum += math.Log(v)
	}
	oooIPC := math.Exp(logSum / float64(len(benches)))
	oooCost := uarch.EstimateComplexity(oooCfg).Total()

	found := false
	for _, e := range res.Front {
		cfg, err := e.Genome.Config()
		if err != nil {
			t.Fatal(err)
		}
		if cfg.Core != uarch.CoreBraid {
			continue
		}
		if e.IPC >= 0.9*oooIPC && e.Cost <= 0.5*oooCost {
			found = true
			t.Logf("rediscovered: %s ipc %.3f (ooo/8 %.3f) cost %.0f (%.1f%% of ooo/8)",
				e.Genome, e.IPC, oooIPC, e.Cost, 100*e.Cost/oooCost)
		}
	}
	if !found {
		for _, e := range res.Front {
			t.Logf("front: %s feasible=%v ipc %.3f cost %.0f (gen %d)", e.Genome, e.Feasible, e.IPC, e.Cost, e.Gen)
		}
		t.Fatalf("no braid config within 10%% of ooo/8 IPC %.3f at <=50%% of cost %.0f", oooIPC, oooCost)
	}
}

// TestSearchDigestIndependentOfParallelism: the front digest must be
// byte-identical at any worker-pool width. Fresh Workloads per width so the
// memo cache cannot mask a scheduling dependence.
func TestSearchDigestIndependentOfParallelism(t *testing.T) {
	_, benches0 := testSuite(t) // ensure the shared suite exists for names
	_ = benches0
	digests := map[int]string{}
	for _, jobs := range []int{1, 8} {
		w, err := experiments.LoadSuiteCtx(context.Background(), testDyn, 0)
		if err != nil {
			t.Fatal(err)
		}
		w.SetJobs(jobs)
		benches, err := SelectBenches(w, testBenchNames)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Search(context.Background(), w, benches, searchOpts(3), nil)
		if err != nil {
			t.Fatal(err)
		}
		digests[jobs] = res.Digest
	}
	if digests[1] != digests[8] {
		t.Fatalf("front digest differs across -j: j1 %s, j8 %s", digests[1], digests[8])
	}
}

// TestSearchResumeReproducesFront: interrupting a checkpointed search and
// resuming must converge to the identical front. The interruption is
// simulated by truncating the checkpoint to its first two generation
// records — exactly what a SIGKILL after generation 1 leaves behind — plus a
// torn half-line, which resume must drop.
func TestSearchResumeReproducesFront(t *testing.T) {
	w, benches := testSuite(t)
	opt := searchOpts(5)
	dir := t.TempDir()
	meta := Meta{Seed: opt.Seed, Pop: opt.Pop, Budget: opt.Budget,
		Workloads: testBenchNames, DynTarget: testDyn}

	full := filepath.Join(dir, "full.jsonl")
	ck, err := OpenCheckpoint(full, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Search(context.Background(), w, benches, opt, ck)
	ck.Close()
	if err != nil {
		t.Fatal(err)
	}
	if want.Generations < 3 {
		t.Fatalf("search finished in %d generations; test needs >= 3 to interrupt meaningfully", want.Generations)
	}

	// Keep meta + generations 0 and 1, then a torn tail.
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	lines := bytes.SplitAfter(data, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("checkpoint has %d lines", len(lines))
	}
	torn := append([]byte{}, bytes.Join(lines[:3], nil)...)
	torn = append(torn, lines[3][:len(lines[3])/2]...)
	interrupted := filepath.Join(dir, "interrupted.jsonl")
	if err := os.WriteFile(interrupted, torn, 0o644); err != nil {
		t.Fatal(err)
	}

	ck2, err := OpenCheckpoint(interrupted, meta, true)
	if err != nil {
		t.Fatal(err)
	}
	if ck2.Generations() != 2 {
		t.Fatalf("restored %d generations, want 2 (torn third dropped)", ck2.Generations())
	}
	got, err := Search(context.Background(), w, benches, opt, ck2)
	ck2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest != want.Digest {
		t.Fatalf("resumed front digest %s != uninterrupted %s", got.Digest, want.Digest)
	}
	if got.Generations != want.Generations || got.Evaluations != want.Evaluations {
		t.Errorf("resumed run: %d gens / %d evals, want %d / %d",
			got.Generations, got.Evaluations, want.Generations, want.Evaluations)
	}
}

// TestResumeRefusesParameterMismatch: a checkpoint taken under different
// search parameters must be refused, not silently blended.
func TestResumeRefusesParameterMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "ck.jsonl")
	meta := Meta{Seed: 1, Pop: 8, Budget: 32, Workloads: []string{"gcc"}, DynTarget: testDyn}
	ck, err := OpenCheckpoint(path, meta, false)
	if err != nil {
		t.Fatal(err)
	}
	ck.Close()
	changed := meta
	changed.Seed = 2
	if _, err := OpenCheckpoint(path, changed, true); err == nil {
		t.Fatal("resume accepted a checkpoint with a different seed")
	}
	grown := meta
	grown.Workloads = []string{"gcc", "mcf"}
	if _, err := OpenCheckpoint(path, grown, true); err == nil {
		t.Fatal("resume accepted a checkpoint with a different workload set")
	}
}

// TestInjectedFaultContainedAndExcluded: arming the fault injector on one
// evaluation must not abort the search — the genome comes back infeasible,
// is excluded from the front, and the containment shows up in Failures().
func TestInjectedFaultContainedAndExcluded(t *testing.T) {
	w, err := experiments.LoadSuiteCtx(context.Background(), testDyn, 0)
	if err != nil {
		t.Fatal(err)
	}
	benches, err := SelectBenches(w, testBenchNames)
	if err != nil {
		t.Fatal(err)
	}
	opt := searchOpts(9)
	opt.InjectFaultAt = 3
	res, err := Search(context.Background(), w, benches, opt, nil)
	if err != nil {
		t.Fatalf("search aborted on an injected fault: %v", err)
	}
	if len(res.Front) == 0 {
		t.Fatal("empty front")
	}
	if len(w.Failures()) == 0 {
		t.Fatal("no contained failure recorded for the injected fault")
	}
	for _, e := range res.Front {
		if !e.Feasible {
			t.Fatalf("infeasible evaluation on the front: %s", e.Genome)
		}
	}

	// The same seed without injection evaluates the same genomes; the
	// faulted one must be the only difference, and the search survives
	// either way.
	opt.InjectFaultAt = 0
	if _, err := Search(context.Background(), w, benches, opt, nil); err != nil {
		t.Fatal(err)
	}
}

// TestSearchCancellation: canceling the context stops the search with an
// error wrapping the cause, leaving any checkpoint intact for resume.
func TestSearchCancellation(t *testing.T) {
	w, benches := testSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Search(ctx, w, benches, searchOpts(1), nil); err == nil {
		t.Fatal("canceled search returned no error")
	}
}
