package interp

import (
	"encoding/binary"
	"sort"
)

// pageBits sizes the sparse memory pages (4 KiB).
const pageBits = 12
const pageSize = 1 << pageBits

// Memory is a sparse, page-granular byte-addressed memory. Uninitialized
// locations read as zero. It is deliberately simple: programs in this
// repository only touch their data segment, so a map of pages is ample. A
// one-entry page cache short-circuits the map on the overwhelmingly common
// case of consecutive accesses to the same page.
type Memory struct {
	pages map[uint64]*[pageSize]byte

	lastPN   uint64 // page number of last, valid only when last != nil
	lastPage *[pageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[pageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[pageSize]byte {
	pn := addr >> pageBits
	if m.lastPage != nil && m.lastPN == pn {
		return m.lastPage
	}
	p := m.pages[pn]
	if p == nil {
		if !create {
			return nil
		}
		p = new([pageSize]byte)
		m.pages[pn] = p
	}
	m.lastPN, m.lastPage = pn, p
	return p
}

// Load8 returns the byte at addr.
func (m *Memory) Load8(addr uint64) byte {
	p := m.page(addr, false)
	if p == nil {
		return 0
	}
	return p[addr&(pageSize-1)]
}

// Store8 stores b at addr.
func (m *Memory) Store8(addr uint64, b byte) {
	m.page(addr, true)[addr&(pageSize-1)] = b
}

// Read64 returns the little-endian 64-bit value at addr (unaligned allowed).
func (m *Memory) Read64(addr uint64) uint64 {
	if off := addr & (pageSize - 1); off <= pageSize-8 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint64(p[off:])
	}
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(m.Load8(addr+uint64(i))) << (8 * uint(i))
	}
	return v
}

// Write64 stores the little-endian 64-bit value v at addr.
func (m *Memory) Write64(addr uint64, v uint64) {
	if off := addr & (pageSize - 1); off <= pageSize-8 {
		binary.LittleEndian.PutUint64(m.page(addr, true)[off:], v)
		return
	}
	for i := 0; i < 8; i++ {
		m.Store8(addr+uint64(i), byte(v>>(8*uint(i))))
	}
}

// Read32 returns the little-endian 32-bit value at addr.
func (m *Memory) Read32(addr uint64) uint32 {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		p := m.page(addr, false)
		if p == nil {
			return 0
		}
		return binary.LittleEndian.Uint32(p[off:])
	}
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(m.Load8(addr+uint64(i))) << (8 * uint(i))
	}
	return v
}

// Write32 stores the little-endian 32-bit value v at addr.
func (m *Memory) Write32(addr uint64, v uint32) {
	if off := addr & (pageSize - 1); off <= pageSize-4 {
		binary.LittleEndian.PutUint32(m.page(addr, true)[off:], v)
		return
	}
	for i := 0; i < 4; i++ {
		m.Store8(addr+uint64(i), byte(v>>(8*uint(i))))
	}
}

// WriteBytes copies b into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, b []byte) {
	for i, x := range b {
		m.Store8(addr+uint64(i), x)
	}
}

// ReadBytes copies n bytes starting at addr into a fresh slice.
func (m *Memory) ReadBytes(addr uint64, n int) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = m.Load8(addr + uint64(i))
	}
	return b
}

// Hash returns an order-independent-of-insertion, content-dependent FNV-style
// hash of all touched memory, for cheap equality checks between executions.
// Pages that contain only zeroes hash identically to absent pages.
func (m *Memory) Hash() uint64 {
	pns := make([]uint64, 0, len(m.pages))
	for pn := range m.pages {
		pns = append(pns, pn)
	}
	sort.Slice(pns, func(i, j int) bool { return pns[i] < pns[j] })
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, pn := range pns {
		p := m.pages[pn]
		zero := true
		for _, b := range p {
			if b != 0 {
				zero = false
				break
			}
		}
		if zero {
			continue
		}
		h ^= pn
		h *= prime
		for _, b := range p {
			h ^= uint64(b)
			h *= prime
		}
	}
	return h
}
