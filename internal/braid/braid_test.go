package braid

import (
	"testing"

	"braid/internal/asm"
	"braid/internal/cfg"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/workload"
)

// fig2Src is the paper's Figure 2 example: the inner-loop basic block of
// gcc's life-analysis function, transliterated from Alpha to BRD64.
// Register map: a0->r0, a1->r1, t4->r4, t5->r5, t6->r6, t7->r7, t8->r8,
// t9->r9, t0..t3 -> r10..r13.
const fig2Src = `
.name fig2_gcc_life
.data 512
	ldimm r0, #65536       ; basic_block_new_live_at_end[i]
	ldimm r1, #65664       ; basic_block_live_at_end[i]
	ldimm r8, #65792       ; basic_block_significant[i]
	ldimm r4, #0           ; t4 = j*4
	ldimm r5, #0           ; t5 = j
	ldimm r9, #8           ; t9 = regset_size
	ldimm r6, #0           ; t6 = consider
	br    body
body:
	add    r10, r1, r4     ; addq a1, t4, t0
	add    r11, r0, r4     ; addq a0, t4, t1
	add    r12, r8, r4     ; addq t8, t4, t2
	ldl    r13, 0(r10)     ; ldl t3, 0(t0)
	add    r5, r5, #1      ; addl t5, #1, t5
	ldl    r10, 0(r11)     ; ldl t0, 0(t1)
	cmpeq  r7, r9, r5      ; cmpeq t9, t5, t7
	ldl    r11, 0(r12)     ; ldl t1, 0(t2)
	lda    r4, 4(r4)       ; lda t4, 4(t4)
	andnot r10, r13, r10   ; andnot t3, t0, t0
	sextl  r10, r10        ; addl zero, t0, t0
	and    r11, r10, r11   ; and t0, t1, t1
	zapnot r11, r11, #15   ; zapnot t1, #15, t1
	cmovne r6, r10, #1     ; cmovne t0, #1, t6
	bne    r11, found      ; bne t1, ...
	bgt    r7, done        ; loop exit via t7
	br     body
found:
	ldimm  r2, #1
done:
	stq    r6, 256(r0)     ; publish consider
	stq    r2, 264(r0)
	stq    r5, 272(r0)
	halt
`

func mustCompile(t *testing.T, src string) (*isa.Program, *Result) {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, res
}

// checkEquivalent runs both programs under the interpreter and requires the
// same final memory image. (Register files may legitimately differ: values
// that became internal-only are discarded at braid boundaries, so programs
// publish results through memory.)
func checkEquivalent(t *testing.T, orig, braided *isa.Program) {
	t.Helper()
	fo, err := interp.RunProgram(orig, 1_000_000)
	if err != nil {
		t.Fatalf("original: %v", err)
	}
	fb, err := interp.RunProgram(braided, 1_000_000)
	if err != nil {
		t.Fatalf("braided: %v", err)
	}
	if fo.MemHash != fb.MemHash {
		t.Errorf("memory state diverged: %#x vs %#x", fo.MemHash, fb.MemHash)
	}
	if fo.Steps != fb.Steps {
		t.Errorf("dynamic instruction counts differ: %d vs %d", fo.Steps, fb.Steps)
	}
}

func TestFig2(t *testing.T) {
	p, res := mustCompile(t, fig2Src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, p, res.Prog)

	// Inspect the braids of the loop-body block (instructions 8..22).
	var body []Braid
	for _, b := range res.Braids {
		if b.Orig[0] >= 8 && b.Orig[0] <= 22 {
			body = append(body, b)
		}
	}
	// The paper partitions this block into 3 braids. Because we enforce
	// the t4 (r4) WAR hazard by splitting instead of re-allocating
	// external registers, the big braid splits once more: 4 braids.
	if len(body) < 3 || len(body) > 5 {
		t.Errorf("loop body has %d braids, expected 3-5:", len(body))
		for _, b := range body {
			t.Logf("  braid %v", b.Orig)
		}
	}
	// The lda (induction) braid must be a single-instruction braid.
	found := false
	for _, b := range body {
		if b.Size() == 1 && res.Prog.Instrs[b.Start].Op == isa.OpLDA {
			found = true
		}
	}
	if !found {
		t.Error("induction lda is not a single-instruction braid")
	}
}

func TestBraidBitsWellFormed(t *testing.T) {
	p, res := mustCompile(t, fig2Src)
	_ = p
	for i := range res.Prog.Instrs {
		in := &res.Prog.Instrs[i]
		if in.WritesReg() && in.Dest != isa.RegZero && !in.IDest && !in.EDest {
			t.Errorf("instr %d (%s) writes a value but has no destination bits", i, in)
		}
		// Round-trip through the binary encoding.
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("instr %d: %v", i, err)
		}
		back, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("instr %d: %v", i, err)
		}
		if back != *in {
			t.Errorf("instr %d not canonical: %+v vs %+v", i, *in, back)
		}
	}
}

func TestMemoryOrderSplit(t *testing.T) {
	src := `
.name memsplit
.data 64
	ldimm r1, #65536
	ldimm r9, #7
	stq   r9, 0(r1)
	br    body
body:
	add   r2, r9, #1
	ldq   r4, 0(r1)
	add   r5, r4, #1
	add   r3, r2, #2
	stq   r3, 0(r1)
	stq   r5, 8(r1)
	halt
`
	p, res := mustCompile(t, src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, p, res.Prog)
	if res.MemSplits == 0 {
		t.Error("expected at least one memory-ordering split")
	}
}

func TestAliasClassesAvoidSplit(t *testing.T) {
	// Same shape as TestMemoryOrderSplit, but the load and store carry
	// provably-disjoint alias classes, so no split is needed.
	src := `
.name noalias
.data 64
	ldimm r1, #65536
	ldimm r9, #7
	stq   r9, 0(r1)   !ac=1
	br    body
body:
	add   r2, r9, #1
	ldq   r4, 0(r1)   !ac=1
	add   r5, r4, #1
	add   r3, r2, #2
	stq   r3, 16(r1)  !ac=2
	stq   r5, 8(r1)   !ac=1
	halt
`
	p, res := mustCompile(t, src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, p, res.Prog)
	if res.MemSplits != 0 {
		t.Errorf("expected no memory splits, got %d", res.MemSplits)
	}
}

func TestInternalPressureSplit(t *testing.T) {
	// One braid with 12 simultaneously-live internal values: must split.
	src := `
.name pressure
.data 128
	ldimm r1, #1
	br    body
body:
	add r2, r1, #2
	add r3, r1, #3
	add r4, r1, #4
	add r5, r1, #5
	add r6, r1, #6
	add r7, r1, #7
	add r8, r1, #8
	add r9, r1, #9
	add r10, r1, #10
	add r11, r1, #11
	add r12, r1, #12
	add r13, r1, #13
	add r2, r2, r3
	add r4, r4, r5
	add r6, r6, r7
	add r8, r8, r9
	add r10, r10, r11
	add r12, r12, r13
	add r2, r2, r4
	add r6, r6, r8
	add r10, r10, r12
	add r2, r2, r6
	add r2, r2, r10
	ldimm r14, #65536
	stq r2, 0(r14)
	halt
`
	p, res := mustCompile(t, src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, p, res.Prog)
	if res.PressureSplits == 0 {
		t.Error("expected at least one internal-pressure split")
	}
	// With MaxInternal large enough the same program needs no split.
	// (Not encodable in the ISA above 8, so compare at 8 vs 4.)
	res4, err := Compile(p, Options{MaxInternal: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res4.PressureSplits <= res.PressureSplits {
		t.Errorf("4-register pressure splits (%d) not greater than 8-register (%d)",
			res4.PressureSplits, res.PressureSplits)
	}
	checkEquivalent(t, p, res4.Prog)
}

func TestSingleInstructionBraids(t *testing.T) {
	src := `
.name singles
	ldimm r1, #1
	nop
	br next
next:
	halt
`
	p, res := mustCompile(t, src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	if res.Stats.Singles != len(res.Braids) {
		t.Errorf("all braids should be single-instruction: %d of %d", res.Stats.Singles, len(res.Braids))
	}
	if res.Stats.SingleBranchNops < 3 { // nop, br, halt
		t.Errorf("branch/nop singles = %d, want >= 3", res.Stats.SingleBranchNops)
	}
}

func TestStatsAccessors(t *testing.T) {
	_, res := mustCompile(t, fig2Src)
	s := res.Stats
	if s.Braids == 0 || s.Blocks == 0 {
		t.Fatal("empty stats")
	}
	if s.BraidsPerBlock() < s.BraidsPerBlockExcl() {
		t.Error("excluding singles increased braids/block")
	}
	if s.MeanSizeExcl() < s.MeanSize() {
		t.Error("excluding singles decreased mean size")
	}
	if w := s.MeanWidth(); w < 1 {
		t.Errorf("mean width %v < 1", w)
	}
	if got := s.FracBraidsLE32(); got != 1 {
		t.Errorf("all braids are small here; FracBraidsLE32 = %v", got)
	}
}

func TestCompileRejectsBraided(t *testing.T) {
	p, res := mustCompile(t, fig2Src)
	_ = p
	if _, err := Compile(res.Prog, Options{}); err == nil {
		t.Error("re-braiding a braided program was accepted")
	}
}

func TestCompileRejectsBadOptions(t *testing.T) {
	p, _ := mustCompile(t, fig2Src)
	if _, err := Compile(p, Options{MaxInternal: 9}); err == nil {
		t.Error("MaxInternal 9 accepted (ISA has 8)")
	}
}

func TestDualDestinationFlow(t *testing.T) {
	// r4's value is consumed inside the braid (by the add) and is also
	// live out (stored in the next block): expect a dual-destination write.
	src := `
.name dual
.data 64
	ldimm r1, #65536
	br body
body:
	add r4, r1, #8
	add r5, r4, #1
	stq r5, 0(r4)
	br out
out:
	stq r4, 8(r1)
	halt
`
	p, res := mustCompile(t, src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, p, res.Prog)
	foundDual := false
	for i := range res.Prog.Instrs {
		in := &res.Prog.Instrs[i]
		if in.IDest && in.EDest {
			foundDual = true
			if in.Dest != 4 {
				t.Errorf("dual write to %s, want r4", in.Dest)
			}
		}
	}
	if !foundDual {
		t.Error("no dual-destination write emitted")
	}
}

func TestLoopCarriedValuesStayExternal(t *testing.T) {
	// r2 accumulates across iterations: its def must write the external
	// file even though its only same-block consumer is in the same braid.
	src := `
.name loopcarried
.data 64
	ldimm r1, #10
	ldimm r2, #0
	br loop
loop:
	add r2, r2, r1
	sub r1, r1, #1
	bgt r1, loop
	ldimm r3, #65536
	stq r2, 0(r3)
	halt
`
	p, res := mustCompile(t, src)
	if err := res.VerifyInvariants(p); err != nil {
		t.Fatal(err)
	}
	checkEquivalent(t, p, res.Prog)
	// Find the accumulator add in the braided program.
	for i := range res.Prog.Instrs {
		in := &res.Prog.Instrs[i]
		if in.Op == isa.OpADD && in.Dest == 2 {
			if !in.EDest {
				t.Errorf("loop-carried def lost its external write: %s", in)
			}
		}
	}
}

// TestBraidingPreservesLoopStructure checks that braiding never changes the
// program's control-flow shape: block extents and the natural-loop forest
// are identical before and after.
func TestBraidingPreservesLoopStructure(t *testing.T) {
	prof, _ := workload.ProfileByName("gcc")
	p, err := workload.Generate(prof, 10)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Compile(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	go1, err := cfg.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	go2, err := cfg.Build(res.Prog)
	if err != nil {
		t.Fatal(err)
	}
	l1, l2 := cfg.NaturalLoops(go1), cfg.NaturalLoops(go2)
	if len(l1) != len(l2) {
		t.Fatalf("loop count changed: %d -> %d", len(l1), len(l2))
	}
	for i := range l1 {
		if l1[i].Header != l2[i].Header || len(l1[i].Blocks) != len(l2[i].Blocks) {
			t.Errorf("loop %d changed: %+v -> %+v", i, l1[i], l2[i])
		}
	}
}
