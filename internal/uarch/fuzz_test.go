package uarch

import (
	"context"
	"errors"
	"testing"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/workload"
)

// FuzzMachine drives fuzzer-chosen random programs through a fuzzer-chosen
// core and width, with the paranoid checker on and panics contained by
// RunChecked. Any finding is a real engine bug: a wedged machine
// (ErrCycleLimit), a checker-detected corruption (*SimFault), or a retirement
// count that diverges from the architectural interpreter.
func FuzzMachine(f *testing.F) {
	f.Add(int64(1), byte(2), byte(1))
	f.Add(int64(42), byte(3), byte(0))
	f.Add(int64(100), byte(0), byte(2))
	f.Add(int64(271828), byte(1), byte(1))
	f.Fuzz(func(t *testing.T, seed int64, coreSel, widthSel byte) {
		width := []int{4, 8, 16}[int(widthSel)%3]
		p := workload.RandomProgram(seed)
		fs, err := interp.RunProgram(p, 3_000_000)
		if err != nil {
			t.Skip("program rejected by the architectural interpreter")
		}
		var cfg Config
		switch coreSel % 4 {
		case 0:
			cfg = InOrderConfig(width)
		case 1:
			cfg = DepSteerConfig(width)
		case 2:
			cfg = OutOfOrderConfig(width)
		case 3:
			cfg = BraidConfig(width)
			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				t.Fatalf("seed %d: braiding: %v", seed, err)
			}
			p = res.Prog
		}
		cfg.Paranoid = true
		cfg.MaxCycles = 3_000_000
		st, err := SimulateChecked(context.Background(), p, cfg)
		if err != nil {
			var sf *SimFault
			if errors.As(err, &sf) {
				t.Fatalf("seed %d %s %dw: checker fault at cycle %d: %v\n%s",
					seed, cfg.Core, width, sf.Cycle, sf.Panic, sf.Stack)
			}
			t.Fatalf("seed %d %s %dw: %v", seed, cfg.Core, width, err)
		}
		if st.Retired != fs.Steps {
			t.Fatalf("seed %d %s %dw: retired %d, interpreter ran %d",
				seed, cfg.Core, width, st.Retired, fs.Steps)
		}
	})
}

// TestRandomProgramsOnAllCores drives adversarial random programs through
// every execution core. The timing model must retire exactly the dynamic
// instruction stream the architectural interpreter executes — no more, no
// fewer, and without deadlocking — for both original and braided binaries.
func TestRandomProgramsOnAllCores(t *testing.T) {
	n := 60
	if testing.Short() {
		n = 10
	}
	for seed := int64(100); seed < int64(100+n); seed++ {
		p := workload.RandomProgram(seed)
		fs, err := interp.RunProgram(p, 3_000_000)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		res, err := braid.Compile(p, braid.Options{})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		cases := []struct {
			name string
			prog bool // braided?
			cfg  Config
		}{
			{"inorder", false, InOrderConfig(8)},
			{"depsteer", false, DepSteerConfig(8)},
			{"ooo", false, OutOfOrderConfig(8)},
			{"ooo4", false, OutOfOrderConfig(4)},
			{"braid", true, BraidConfig(8)},
			{"braid4", true, BraidConfig(4)},
		}
		for _, c := range cases {
			prog := p
			if c.prog {
				prog = res.Prog
			}
			cfg := c.cfg
			cfg.MaxCycles = 3_000_000
			cfg.Paranoid = true
			st, err := Simulate(prog, cfg)
			if err != nil {
				t.Fatalf("seed %d %s: %v", seed, c.name, err)
			}
			if st.Retired != fs.Steps {
				t.Fatalf("seed %d %s: retired %d, interpreter ran %d", seed, c.name, st.Retired, fs.Steps)
			}
		}
	}
}

// TestRandomProgramsUnderTinyResources squeezes the same corpus through
// deliberately starved machines: 4-entry register files, one write port, a
// single BEU, a one-entry window. Nothing may deadlock, and retirement must
// stay exact.
func TestRandomProgramsUnderTinyResources(t *testing.T) {
	n := 30
	if testing.Short() {
		n = 6
	}
	for seed := int64(300); seed < int64(300+n); seed++ {
		p := workload.RandomProgram(seed)
		fs, err := interp.RunProgram(p, 3_000_000)
		if err != nil {
			t.Fatal(err)
		}
		res, err := braid.Compile(p, braid.Options{})
		if err != nil {
			t.Fatal(err)
		}

		tiny := OutOfOrderConfig(4)
		tiny.RFEntries = 4
		tiny.RFWritePorts = 1
		tiny.RFReadPorts = 2
		tiny.MaxCycles = 5_000_000
		tiny.Paranoid = true
		st, err := Simulate(p, tiny)
		if err != nil {
			t.Fatalf("seed %d starved ooo: %v", seed, err)
		}
		if st.Retired != fs.Steps {
			t.Fatalf("seed %d starved ooo: retired %d want %d", seed, st.Retired, fs.Steps)
		}

		bt := BraidConfig(4)
		bt.BEUs = 1
		bt.BEUWindow = 1
		bt.BEUFUs = 1
		bt.TotalFUs = 1
		bt.RFEntries = 4
		bt.MaxCycles = 5_000_000
		bt.Paranoid = true
		st, err = Simulate(res.Prog, bt)
		if err != nil {
			t.Fatalf("seed %d starved braid: %v", seed, err)
		}
		if st.Retired != fs.Steps {
			t.Fatalf("seed %d starved braid: retired %d want %d", seed, st.Retired, fs.Steps)
		}
	}
}
