package check

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"

	"braid/internal/isa"
	"braid/internal/uarch"
)

// archSig is the architectural signature of one simulation: the counters
// that depend only on the program, never on machine sizing, plus a digest
// of exactly which dynamic branches mispredicted (sequence number and
// static index in retirement order). Fetch follows the functional trace in
// order on every core, so the perceptron predictor sees the same training
// sequence regardless of issue width, window sizes, or cache geometry —
// the mispredicted *set*, not just its count, must be invariant.
type archSig struct {
	Retired, Fetched         uint64
	CondBranches, Mispredict uint64
	Loads, Stores            uint64
	MispredictDigest         [sha256.Size]byte
}

func (a archSig) String() string {
	return fmt.Sprintf("retired=%d fetched=%d cond=%d misp=%d(%x) loads=%d stores=%d",
		a.Retired, a.Fetched, a.CondBranches, a.Mispredict, a.MispredictDigest[:6], a.Loads, a.Stores)
}

// signature simulates p under cfg and extracts its architectural signature
// via the retire hook.
func signature(ctx context.Context, p *isa.Program, cfg uarch.Config) (archSig, *uarch.Stats, error) {
	m, err := uarch.New(p, cfg)
	if err != nil {
		return archSig{}, nil, err
	}
	h := sha256.New()
	var buf [12]byte
	m.SetRetireHook(func(ev uarch.RetireEvent) {
		if !ev.Mispredicted {
			return
		}
		binary.LittleEndian.PutUint64(buf[0:], ev.Seq)
		binary.LittleEndian.PutUint32(buf[8:], uint32(ev.Index))
		h.Write(buf[:])
	})
	st, err := m.RunContext(ctx)
	if err != nil {
		return archSig{}, nil, err
	}
	sig := archSig{
		Retired: st.Retired, Fetched: st.Fetched,
		CondBranches: st.CondBranches, Mispredict: st.Mispredicts,
		Loads: st.Loads, Stores: st.StoreCount,
	}
	h.Sum(sig.MispredictDigest[:0])
	return sig, st, nil
}

// sizingVariants returns configurations that resize the machine around
// base without touching anything architectural: issue width (with the
// front end and ROB scaled as the constructors do), ROB alone, and cache
// geometry. Architectural signatures must be identical across all of them.
func sizingVariants(base func(int) uarch.Config, w int) []uarch.Config {
	variants := []uarch.Config{base(w)}

	if w != 4 {
		variants = append(variants, base(4))
	} else {
		variants = append(variants, base(8))
	}

	robSmall := base(w)
	robSmall.ROB = maxInt(robSmall.ROB/8, 2*w)
	variants = append(variants, robSmall)

	tinyCache := base(w)
	tinyCache.Mem.L1I.SizeKB, tinyCache.Mem.L1I.Assoc = 4, 1
	tinyCache.Mem.L1D.SizeKB, tinyCache.Mem.L1D.Assoc = 4, 1
	tinyCache.Mem.L2.SizeKB = 64
	tinyCache.Mem.MemLatency = 800
	variants = append(variants, tinyCache)

	exact := base(w)
	exact.NoFastForward = true
	variants = append(variants, exact)

	return variants
}

// wideningVariants returns (label, config) pairs in which exactly one
// resource of base has been widened. None of them may lower IPC by more
// than the configured tolerance: a bigger window, register file, port
// count, or bypass never makes a machine slower (beyond cache-timing
// wobble from shifted access interleavings).
func wideningVariants(base uarch.Config) []struct {
	label string
	cfg   uarch.Config
} {
	out := []struct {
		label string
		cfg   uarch.Config
	}{}
	add := func(label string, mut func(*uarch.Config)) {
		c := base
		mut(&c)
		out = append(out, struct {
			label string
			cfg   uarch.Config
		}{label, c})
	}
	add("rob*2", func(c *uarch.Config) { c.ROB *= 2 })
	add("rf*2", func(c *uarch.Config) { c.RFEntries *= 2 })
	add("rfports*2", func(c *uarch.Config) { c.RFReadPorts *= 2; c.RFWritePorts *= 2 })
	add("bypass*2", func(c *uarch.Config) { c.BypassValues *= 2; c.BypassLevels++ })
	switch base.Core {
	case uarch.CoreOutOfOrder:
		add("sched*2", func(c *uarch.Config) { c.SchedEntries *= 2 })
	case uarch.CoreBraid:
		add("beufifo*2", func(c *uarch.Config) { c.BEUFIFO *= 2 })
		add("beuwindow*2", func(c *uarch.Config) { c.BEUWindow *= 2 })
	case uarch.CoreDepSteer:
		add("fifos*2", func(c *uarch.Config) { c.SteerFIFODeep *= 2 })
	}
	return out
}

// Invariants runs the metamorphic battery on one program: properties that
// need no oracle because they compare the simulator against itself under
// controlled configuration changes.
func Invariants(ctx context.Context, name string, orig, braided *isa.Program, opts Options) []Finding {
	opts = opts.withDefaults()
	var out []Finding
	report := func(core string, cfg *uarch.Config, format string, args ...any) {
		p := orig
		if cfg != nil && cfg.Core == uarch.CoreBraid {
			p = braided
		}
		out = append(out, Finding{Kind: "invariant", Program: name, Core: core,
			Detail: fmt.Sprintf(format, args...), Prog: p, Cfg: cfg})
	}

	// 1. Architectural counts are invariant across machine sizing. The
	// out-of-order constructor covers the conventional paradigms' shared
	// front end; the braid constructor covers the braided program.
	classes := []struct {
		base func(int) uarch.Config
		prog *isa.Program
	}{
		{uarch.OutOfOrderConfig, orig},
		{uarch.BraidConfig, braided},
	}
	for _, cl := range classes {
		variants := sizingVariants(cl.base, opts.Widths[0])
		var ref archSig
		var refCfg uarch.Config
		for i, cfg := range variants {
			sig, _, err := signature(ctx, cl.prog, cfg)
			if err != nil {
				if ctx.Err() != nil {
					return out
				}
				c := cfg
				report(fmt.Sprintf("%s/w%d", cfg.Core, cfg.IssueWidth), &c, "sizing variant %d failed: %v", i, err)
				continue
			}
			if i == 0 {
				ref, refCfg = sig, cfg
				continue
			}
			if sig != ref {
				c := cfg
				report(fmt.Sprintf("%s/w%d", cfg.Core, cfg.IssueWidth), &c,
					"architectural signature changed with machine sizing: variant %d {%s}, reference %s/w%d {%s}",
					i, sig, refCfg.Core, refCfg.IssueWidth, ref)
			}
		}
	}

	// 2. Widening any single resource never lowers IPC beyond tolerance.
	for _, base := range []uarch.Config{
		uarch.OutOfOrderConfig(opts.Widths[0]),
		uarch.BraidConfig(opts.Widths[0]),
	} {
		p := orig
		if base.Core == uarch.CoreBraid {
			p = braided
		}
		baseStats, err := uarch.SimulateChecked(ctx, p, base)
		if err != nil {
			if ctx.Err() != nil {
				return out
			}
			c := base
			report(fmt.Sprintf("%s/w%d", base.Core, base.IssueWidth), &c, "base run failed: %v", err)
			continue
		}
		for _, v := range wideningVariants(base) {
			st, err := uarch.SimulateChecked(ctx, p, v.cfg)
			if err != nil {
				if ctx.Err() != nil {
					return out
				}
				c := v.cfg
				report(fmt.Sprintf("%s/w%d", v.cfg.Core, v.cfg.IssueWidth), &c, "widened run (%s) failed: %v", v.label, err)
				continue
			}
			// Retired counts are identical (checked by the sizing
			// invariant), so compare in the cycle domain with a bounded
			// absolute slack on top of the relative tolerance. Widening a
			// resource can genuinely cost a few cycles — admitting more
			// instructions in flight shifts issue and writeback
			// arbitration (a 4-entry braid RF throttles the front end in
			// a way that *avoids* writeback contention an 8-entry one
			// hits) — but each such anomaly is a transient worth O(drain)
			// cycles. On real workloads that amortizes to nothing; only
			// on ~150-cycle adversarial programs would a pure relative
			// bound misread it as a regression.
			slack := uint64(maxInt(32, base.MispredictMin))
			limit := uint64(float64(baseStats.Cycles)*(1+opts.IPCTol)) + slack
			if st.Cycles > limit {
				c := v.cfg
				report(fmt.Sprintf("%s/w%d", v.cfg.Core, v.cfg.IssueWidth), &c,
					"widening %s lowered IPC %.4f -> %.4f (%d -> %d cycles; tolerance %.0f%% + %d cycles)",
					v.label, baseStats.IPC(), st.IPC(), baseStats.Cycles, st.Cycles, 100*opts.IPCTol, slack)
			}
		}
	}

	// 3. Reruns are bit-identical: the simulator is deterministic, which
	// is what lets -j workers and remote backends share one answer.
	det := uarch.OutOfOrderConfig(opts.Widths[0])
	s1, err1 := uarch.SimulateChecked(ctx, orig, det)
	s2, err2 := uarch.SimulateChecked(ctx, orig, det)
	switch {
	case err1 != nil || err2 != nil:
		if ctx.Err() != nil {
			return out
		}
		c := det
		report(fmt.Sprintf("%s/w%d", det.Core, det.IssueWidth), &c, "determinism runs failed: %v / %v", err1, err2)
	case *s1 != *s2:
		c := det
		report(fmt.Sprintf("%s/w%d", det.Core, det.IssueWidth), &c,
			"rerun produced different stats: %+v vs %+v", *s1, *s2)
	}

	// 4. Sampled simulation: architectural counts stay exact for every
	// interval geometry, and the cycle estimate converges to the exact
	// run as Detail approaches Period.
	if opts.Sampled {
		out = append(out, sampledConvergence(ctx, name, orig, uarch.OutOfOrderConfig(opts.Widths[0]), opts)...)
	}
	return out
}

// sampledConvergence checks SimulateSampled against the exact simulation
// at increasing detail fractions: architectural counts must match exactly
// at every geometry, and the IPC error at the largest detail fraction must
// be both small and no worse than at the smallest (plus slack for interval
// rounding).
func sampledConvergence(ctx context.Context, name string, p *isa.Program, cfg uarch.Config, opts Options) []Finding {
	var out []Finding
	core := fmt.Sprintf("%s/w%d", cfg.Core, cfg.IssueWidth)
	report := func(format string, args ...any) {
		c := cfg
		out = append(out, Finding{Kind: "invariant", Program: name, Core: core,
			Detail: fmt.Sprintf(format, args...), Prog: p, Cfg: &c})
	}

	exact, err := uarch.SimulateChecked(ctx, p, cfg)
	if err != nil {
		if ctx.Err() == nil {
			report("exact run failed: %v", err)
		}
		return out
	}
	n := exact.Retired
	period := n / 8
	if period < 2048 {
		// Too short to sample meaningfully; SimulateSampled would fall
		// back to exact mode, which checks nothing new.
		return out
	}
	warmup := period / 10
	var errs []float64
	fracs := []uint64{4, 1} // detail = (period-warmup-1)/frac; frac 1 ≈ Detail→Period
	for _, frac := range fracs {
		detail := (period - warmup - 1) / frac
		sp := uarch.Sampling{Period: period, Detail: detail, Warmup: warmup}
		st, est, err := uarch.SimulateSampled(ctx, p, cfg, sp)
		if err != nil {
			if ctx.Err() != nil {
				return out
			}
			report("sampled run %s failed: %v", sp, err)
			return out
		}
		if est.Exact {
			report("sampled run %s unexpectedly fell back to exact mode", sp)
			return out
		}
		if st.Retired != exact.Retired || st.Fetched != exact.Fetched ||
			st.CondBranches != exact.CondBranches || st.Mispredicts != exact.Mispredicts ||
			st.Loads != exact.Loads || st.StoreCount != exact.StoreCount {
			report("sampled run %s changed architectural counts: sampled retired=%d cond=%d misp=%d loads=%d stores=%d, exact retired=%d cond=%d misp=%d loads=%d stores=%d",
				sp, st.Retired, st.CondBranches, st.Mispredicts, st.Loads, st.StoreCount,
				exact.Retired, exact.CondBranches, exact.Mispredicts, exact.Loads, exact.StoreCount)
		}
		if !isFinite(est.IPCRelCI) || !isFinite(est.CPI) {
			report("sampled run %s produced a non-finite estimate: cpi=%v ci=%v", sp, est.CPI, est.IPCRelCI)
		}
		errs = append(errs, math.Abs(st.IPC()-exact.IPC())/exact.IPC())
	}
	last := errs[len(errs)-1]
	if last > 0.25 {
		report("sampled estimate did not converge: %.1f%% IPC error at the largest detail fraction", 100*last)
	}
	if last > errs[0]+0.10 {
		report("sampled IPC error grew with detail: %.1f%% at detail/4, %.1f%% at detail/1 — more measurement must not mean worse estimates", 100*errs[0], 100*last)
	}
	return out
}

func isFinite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
