package cfg

import "sort"

// Dominators computes the immediate dominator of every reachable block using
// the Cooper/Harvey/Kennedy iterative algorithm. idom[0] == 0 (the entry
// dominates itself); unreachable blocks get idom -1.
func Dominators(g *Graph) []int {
	n := len(g.Blocks)
	idom := make([]int, n)
	for i := range idom {
		idom[i] = -1
	}
	idom[0] = 0

	// Reverse postorder over the CFG.
	rpo := reversePostorder(g)
	order := make([]int, n) // block -> RPO index
	for i := range order {
		order[i] = -1
	}
	for i, b := range rpo {
		order[b] = i
	}

	intersect := func(a, b int) int {
		for a != b {
			for order[a] > order[b] {
				a = idom[a]
			}
			for order[b] > order[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == 0 {
				continue
			}
			newIdom := -1
			for _, p := range g.Blocks[b].Preds {
				if idom[p] < 0 {
					continue // predecessor not processed/reachable yet
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

func reversePostorder(g *Graph) []int {
	seen := make([]bool, len(g.Blocks))
	var post []int
	var dfs func(int)
	dfs = func(b int) {
		seen[b] = true
		for _, s := range g.Blocks[b].Succs {
			if !seen[s] {
				dfs(s)
			}
		}
		post = append(post, b)
	}
	dfs(0)
	for i, j := 0, len(post)-1; i < j; i, j = i+1, j-1 {
		post[i], post[j] = post[j], post[i]
	}
	return post
}

// dominates reports whether a dominates b under the idom tree.
func dominates(idom []int, a, b int) bool {
	for {
		if b == a {
			return true
		}
		if b == 0 || idom[b] < 0 {
			return false
		}
		b = idom[b]
	}
}

// Loop is one natural loop: the header block and every block in the loop
// body (header included), discovered from a back edge tail→header where the
// header dominates the tail.
type Loop struct {
	Header int
	Blocks []int // sorted ascending, includes Header
}

// Contains reports whether block b belongs to the loop.
func (l *Loop) Contains(b int) bool {
	i := sort.SearchInts(l.Blocks, b)
	return i < len(l.Blocks) && l.Blocks[i] == b
}

// NaturalLoops finds all natural loops, merging loops that share a header
// (multiple back edges to one header form one loop). Loops are returned in
// ascending header order.
func NaturalLoops(g *Graph) []Loop {
	idom := Dominators(g)
	bodies := map[int]map[int]bool{}
	for bi := range g.Blocks {
		if idom[bi] < 0 && bi != 0 {
			continue // unreachable
		}
		for _, s := range g.Blocks[bi].Succs {
			if !dominates(idom, s, bi) {
				continue // not a back edge
			}
			body := bodies[s]
			if body == nil {
				body = map[int]bool{s: true}
				bodies[s] = body
			}
			// Walk predecessors from the tail up to the header.
			stack := []int{bi}
			for len(stack) > 0 {
				b := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if body[b] {
					continue
				}
				body[b] = true
				for _, p := range g.Blocks[b].Preds {
					stack = append(stack, p)
				}
			}
		}
	}
	headers := make([]int, 0, len(bodies))
	for h := range bodies {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]Loop, 0, len(headers))
	for _, h := range headers {
		blocks := make([]int, 0, len(bodies[h]))
		for b := range bodies[h] {
			blocks = append(blocks, b)
		}
		sort.Ints(blocks)
		loops = append(loops, Loop{Header: h, Blocks: blocks})
	}
	return loops
}
