package uarch

// dynRing is a growable power-of-two ring buffer of in-flight instructions.
// The ROB, the front-end fetch queue, and the load-store queue all push at
// the tail and pop at the head in age order; a ring makes both ends O(1)
// without the per-cycle re-slicing (and eventual re-allocation) that
// `q = q[1:]` costs, and without ever moving elements.
type dynRing struct {
	buf  []*dyn // len(buf) is a power of two
	head int
	n    int
}

func (r *dynRing) len() int { return r.n }

func (r *dynRing) push(d *dyn) {
	if r.n == len(r.buf) {
		r.grow()
	}
	r.buf[(r.head+r.n)&(len(r.buf)-1)] = d
	r.n++
}

func (r *dynRing) front() *dyn { return r.buf[r.head] }

// at returns the i-th element from the head (0 is the front).
func (r *dynRing) at(i int) *dyn { return r.buf[(r.head+i)&(len(r.buf)-1)] }

func (r *dynRing) popFront() *dyn {
	d := r.buf[r.head]
	r.buf[r.head] = nil
	r.head = (r.head + 1) & (len(r.buf) - 1)
	r.n--
	return d
}

func (r *dynRing) grow() {
	next := make([]*dyn, max(2*len(r.buf), 16))
	for i := 0; i < r.n; i++ {
		next[i] = r.at(i)
	}
	r.buf, r.head = next, 0
}
