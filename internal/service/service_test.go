package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"braid/internal/uarch"
)

func postJSON(t *testing.T, url string, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

type rawResponse struct {
	Program string          `json:"program"`
	Core    string          `json:"core"`
	Braided bool            `json:"braided"`
	IPC     float64         `json:"ipc"`
	Source  string          `json:"source"`
	Stats   json.RawMessage `json:"stats"`
}

// TestSimulateMatchesDirectRun is the service's determinism contract: the
// Stats JSON served by POST /v1/simulate must be bit-identical to marshaling
// a direct in-process uarch run of the same built request.
func TestSimulateMatchesDirectRun(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for _, tc := range []string{
		`{"workload":"gcc","iters":40,"core":"ooo","width":8}`,
		`{"workload":"mcf","iters":40,"core":"braid","width":8}`,
		`{"kernel":"dot","core":"inorder","width":4}`,
	} {
		var req SimRequest
		if err := json.Unmarshal([]byte(tc), &req); err != nil {
			t.Fatal(err)
		}
		b, err := Build(&req, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", tc, err)
		}
		direct, err := uarch.Simulate(b.Program, b.Config)
		if err != nil {
			t.Fatalf("%s: direct run: %v", tc, err)
		}
		want, err := json.Marshal(direct)
		if err != nil {
			t.Fatal(err)
		}

		resp, data := postJSON(t, ts.URL+"/v1/simulate", tc)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("%s: status %d: %s", tc, resp.StatusCode, data)
		}
		var rr rawResponse
		if err := json.Unmarshal(data, &rr); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, rr.Stats) {
			t.Errorf("%s: served Stats differ from direct run:\n served: %s\n direct: %s", tc, rr.Stats, want)
		}
		if rr.Program != b.Program.Name {
			t.Errorf("%s: program %q, want %q", tc, rr.Program, b.Program.Name)
		}
	}
}

// TestCacheServesRepeats: the second identical request is answered from the
// LRU with the same bytes, and the hit shows up in /metrics.
func TestCacheServesRepeats(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"gzip","iters":30,"core":"ooo"}`
	_, first := postJSON(t, ts.URL+"/v1/simulate", body)
	_, second := postJSON(t, ts.URL+"/v1/simulate", body)

	var r1, r2 rawResponse
	if err := json.Unmarshal(first, &r1); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(second, &r2); err != nil {
		t.Fatal(err)
	}
	if r1.Source != "run" || r2.Source != "cache" {
		t.Fatalf("sources %q then %q, want run then cache", r1.Source, r2.Source)
	}
	if !bytes.Equal(r1.Stats, r2.Stats) {
		t.Error("cached Stats differ from the original run")
	}
	if got := svc.met.cacheHits.Value(); got != 1 {
		t.Errorf("cache_hits = %d, want 1", got)
	}

	resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatal("third request failed")
	}
	_ = data
	mresp, mdata := getURL(t, ts.URL+"/metrics")
	if mresp.StatusCode != http.StatusOK {
		t.Fatalf("/metrics status %d", mresp.StatusCode)
	}
	var m map[string]any
	if err := json.Unmarshal(mdata, &m); err != nil {
		t.Fatalf("/metrics is not JSON: %v", err)
	}
	if hits, _ := m["cache_hits"].(float64); hits < 2 {
		t.Errorf("/metrics cache_hits = %v, want >= 2", m["cache_hits"])
	}
}

func getURL(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestQueueFullSheds429: with one worker and no queue slack, a request
// arriving while the worker is busy is shed with 429 and a Retry-After
// hint, and the in-flight request still completes.
func TestQueueFullSheds429(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: -1})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	firstDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"kernel":"dot","core":"ooo"}`))
		if err != nil {
			firstDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		firstDone <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the simulator")
	}

	resp, data := postJSON(t, ts.URL+"/v1/simulate", `{"kernel":"fig2","core":"ooo"}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: status %d (%s), want 429", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}
	var env errorEnvelope
	if err := json.Unmarshal(data, &env); err != nil || env.Error.Kind != "overloaded" {
		t.Errorf("429 body %s, want kind overloaded", data)
	}

	close(release)
	if code := <-firstDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if svc.met.shed.Value() != 1 {
		t.Errorf("shed_total = %d, want 1", svc.met.shed.Value())
	}
}

// TestCoalescing: a request identical to one already in flight waits for
// the leader's run instead of simulating again, and both get the same
// Stats.
func TestCoalescing(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"crafty","iters":25,"core":"braid"}`
	type outcome struct {
		code int
		resp rawResponse
	}
	results := make(chan outcome, 2)
	do := func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json", strings.NewReader(body))
		if err != nil {
			results <- outcome{code: -1}
			return
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		var rr rawResponse
		json.Unmarshal(data, &rr)
		results <- outcome{code: resp.StatusCode, resp: rr}
	}
	go do()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("leader never reached the simulator")
	}
	go do()
	waitFor(t, func() bool { return svc.met.coalesced.Value() == 1 }, "follower never coalesced")
	close(release)

	a, b := <-results, <-results
	if a.code != http.StatusOK || b.code != http.StatusOK {
		t.Fatalf("statuses %d, %d; want 200, 200", a.code, b.code)
	}
	got := map[string]bool{a.resp.Source: true, b.resp.Source: true}
	if !got["run"] || !got["coalesced"] {
		t.Errorf("sources %q and %q, want one run and one coalesced", a.resp.Source, b.resp.Source)
	}
	if !bytes.Equal(a.resp.Stats, b.resp.Stats) {
		t.Error("leader and follower Stats differ")
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// TestGracefulDrain: after StartDrain, /healthz reports draining; a
// shutdown initiated while a simulation is in flight waits for it, and the
// request completes normally.
func TestGracefulDrain(t *testing.T) {
	svc := New(Config{Workers: 1})
	started := make(chan string, 1)
	release := make(chan struct{})
	svc.testHookSimStart = func(key string) {
		started <- key
		<-release
	}
	ts := httptest.NewServer(svc.Handler())

	slowDone := make(chan int, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/simulate", "application/json",
			strings.NewReader(`{"kernel":"matmul","core":"ooo"}`))
		if err != nil {
			slowDone <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		slowDone <- resp.StatusCode
	}()
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("request never reached the simulator")
	}

	svc.StartDrain()
	hresp, _ := getURL(t, ts.URL+"/healthz")
	if hresp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("/healthz while draining: %d, want 503", hresp.StatusCode)
	}

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- ts.Config.Shutdown(context.Background()) }()
	time.Sleep(20 * time.Millisecond) // let Shutdown begin refusing new work
	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("drain did not complete cleanly: %v", err)
	}
	if code := <-slowDone; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d during drain, want 200", code)
	}
}

// TestCycleLimit422: an exhausted cycle budget is a structured 422, not a
// 500, and is never cached.
func TestCycleLimit422(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const body = `{"workload":"gcc","iters":100,"core":"ooo","max_cycles":10}`
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusUnprocessableEntity {
			t.Fatalf("status %d (%s), want 422", resp.StatusCode, data)
		}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatal(err)
		}
		if env.Error.Kind != "cycle_limit" {
			t.Errorf("kind %q, want cycle_limit", env.Error.Kind)
		}
	}
	if svc.cache.len() != 0 {
		t.Error("a failed simulation was cached")
	}
	if svc.met.cycleLim.Value() != 2 {
		t.Errorf("cycle_limit_total = %d, want 2 (failures must not be cached)", svc.met.cycleLim.Value())
	}
}

// TestBadRequests: malformed input is a 400 with a structured body.
func TestBadRequests(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 1}).Handler())
	defer ts.Close()

	for _, body := range []string{
		`{`,
		`{}`,
		`{"workload":"gcc","kernel":"dot"}`,
		`{"workload":"no-such-profile"}`,
		`{"kernel":"dot","core":"no-such-core"}`,
		`{"kernel":"dot","bogus_field":1}`,
	} {
		resp, data := postJSON(t, ts.URL+"/v1/simulate", body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", body, resp.StatusCode, data)
		}
	}
}

// TestBatch: a mixed batch returns per-item statuses in request order.
func TestBatch(t *testing.T) {
	ts := httptest.NewServer(New(Config{Workers: 2}).Handler())
	defer ts.Close()

	body := `{"requests":[
		{"kernel":"dot","core":"ooo"},
		{"workload":"no-such-profile"},
		{"kernel":"dot","core":"ooo"}
	]}`
	resp, data := postJSON(t, ts.URL+"/v1/batch", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Items) != 3 {
		t.Fatalf("%d items, want 3", len(br.Items))
	}
	wantStatus := []int{200, 400, 200}
	for i, item := range br.Items {
		if item.Status != wantStatus[i] {
			t.Errorf("item %d: status %d, want %d", i, item.Status, wantStatus[i])
		}
	}
	if br.Items[0].Result == nil || br.Items[2].Result == nil || br.Items[1].Error == nil {
		t.Fatal("result/error bodies missing")
	}
	if br.Items[0].Result.Stats.Retired != br.Items[2].Result.Stats.Retired {
		t.Error("identical batch items disagree")
	}
}

// TestBuildKeyStability: the cache key is a pure function of program bytes
// and configuration — identical requests collide, different ones do not.
func TestBuildKeyStability(t *testing.T) {
	mk := func(body string) *Built {
		t.Helper()
		var req SimRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		b, err := Build(&req, Limits{})
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a := mk(`{"workload":"gcc","iters":20,"core":"ooo","width":8}`)
	b := mk(`{"workload":"gcc","iters":20,"core":"ooo","width":8}`)
	if a.Key() != b.Key() {
		t.Error("identical requests produced different keys")
	}
	for i, other := range []*Built{
		mk(`{"workload":"gcc","iters":21,"core":"ooo","width":8}`),
		mk(`{"workload":"gcc","iters":20,"core":"ooo","width":4}`),
		mk(`{"workload":"gcc","iters":20,"core":"braid","width":8}`),
		mk(`{"workload":"mcf","iters":20,"core":"ooo","width":8}`),
	} {
		if other.Key() == a.Key() {
			t.Errorf("variant %d collides with the base key", i)
		}
	}
}

// TestLRUEviction pins the cache's bounded-memory contract.
func TestLRUEviction(t *testing.T) {
	c := newResultCache(2)
	s1, s2, s3 := &uarch.Stats{Cycles: 1}, &uarch.Stats{Cycles: 2}, &uarch.Stats{Cycles: 3}
	c.put("a", s1)
	c.put("b", s2)
	c.get("a") // a is now most recent
	c.put("c", s3)
	if _, ok := c.get("b"); ok {
		t.Error("least-recently-used entry survived eviction")
	}
	if st, ok := c.get("a"); !ok || st.Cycles != 1 {
		t.Error("recently-used entry evicted")
	}
	if _, ok := c.get("c"); !ok {
		t.Error("new entry missing")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}
}

// TestSimFaultMapsTo422 pins the error mapping for contained simulator
// faults (reachable in production via the paranoid checker; constructed
// directly here since the injection API is deliberately not exposed over
// HTTP).
func TestSimFaultMapsTo422(t *testing.T) {
	fault := &uarch.SimFault{Core: uarch.CoreOutOfOrder, Program: "p", Cycle: 42, Panic: "boom"}
	status, body := simErrorBody(fmt.Errorf("wrapped: %w", fault))
	if status != http.StatusUnprocessableEntity || body.Kind != "sim_fault" || body.Cycle != 42 {
		t.Errorf("got %d %+v, want 422 sim_fault at cycle 42", status, body)
	}
	status, body = simErrorBody(fmt.Errorf("x: %w", uarch.ErrTimeout))
	if status != http.StatusGatewayTimeout || body.Kind != "deadline" {
		t.Errorf("timeout mapped to %d %q", status, body.Kind)
	}
	status, _ = simErrorBody(errOverloaded)
	if status != http.StatusTooManyRequests {
		t.Errorf("overload mapped to %d", status)
	}
}

// TestLatencyHistQuantiles sanity-checks the log-bucket estimator: the
// quantile is an upper bound within one power of two of the true value.
func TestLatencyHistQuantiles(t *testing.T) {
	h := &latencyHist{}
	for i := 0; i < 99; i++ {
		h.observe(1 * time.Millisecond)
	}
	h.observe(500 * time.Millisecond)
	snap := h.snapshot()
	p50 := snap["p50_ms"].(float64)
	p99 := snap["p99_ms"].(float64)
	if p50 < 1 || p50 > 2.1 {
		t.Errorf("p50 = %v ms, want ~1-2", p50)
	}
	if p99 < 1 || p99 > 2.1 {
		t.Errorf("p99 = %v ms, want ~1-2 (99 of 100 samples are 1ms)", p99)
	}
	if max := snap["max_ms"].(float64); max < 499 {
		t.Errorf("max = %v ms, want ~500", max)
	}
}
