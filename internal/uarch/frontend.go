package uarch

import (
	"braid/internal/bpred"
	"braid/internal/interp"
	"braid/internal/isa"
)

// textBase is the virtual address of the text segment; each BRD64
// instruction occupies 8 bytes for instruction-cache purposes.
const textBase = 0x1000

// frontend fetches the correct dynamic instruction stream by executing the
// program functionally, applying instruction-cache and branch-prediction
// timing. A mispredicted conditional branch stops fetch; the engine restarts
// it when the branch executes, after the configured redirect gap.
type frontend struct {
	prog  *isa.Program
	meta  []staticMeta    // per-static-instruction decode metadata
	trace []traceEntry    // shared dynamic stream (nil: use the interpreter)
	tpos  int             // next trace entry to fetch
	m     *interp.Machine // live fallback for non-halting programs
	pred  bpred.Predictor

	queue    dynRing // fetched, awaiting dispatch
	queueCap int

	done         bool   // HALT fetched
	stalledOn    *dyn   // mispredicted branch blocking fetch
	blockedUntil uint64 // icache miss fill time
	lastLine     uint64
	haveLine     bool

	// Owner tables for dependence construction at fetch time.
	extOwner [isa.NumArchRegs]*dyn
	intOwner [isa.NumInternalRegs]*dyn
}

// newPredictor builds the branch predictor a configuration asks for. The
// geometry fields default to Table 4's 512-entry, 64-bit-history perceptron
// when zero so canonical configurations keep their golden results.
func newPredictor(cfg *Config) bpred.Predictor {
	if cfg.PerfectBP {
		return bpred.Perfect{}
	}
	entries, hist := cfg.PredEntries, cfg.PredHistory
	if entries == 0 {
		entries = 512
	}
	if hist == 0 {
		hist = 64
	}
	return bpred.NewPerceptron(entries, hist)
}

func newFrontend(p *isa.Program, cfg *Config) *frontend {
	fe := &frontend{
		prog: p,
		meta: programMeta(p),
		pred: newPredictor(cfg),
		// The fetch-to-dispatch buffer must cover the front end's
		// bandwidth-delay product (instructions are in flight for
		// FrontDepth cycles before dispatch) or it, rather than the
		// modeled resources, becomes the IPC ceiling.
		queueCap: cfg.FetchWidth * (cfg.FrontDepth + 4),
	}
	if tr := programTrace(p); tr != nil {
		fe.trace = tr
	} else {
		fe.m = interp.New(p)
	}
	return fe
}

func instrAddr(idx int) uint64 { return textBase + uint64(idx)*8 }

// fetch runs one front-end cycle at time t.
func (fe *frontend) fetch(m *Machine, t uint64) {
	if fe.done || fe.stalledOn != nil || t < fe.blockedUntil {
		return
	}
	cfg := &m.cfg
	branches := 0
	for n := 0; n < cfg.FetchWidth; n++ {
		if fe.queue.len() >= fe.queueCap {
			return
		}
		var pc int
		if fe.trace != nil {
			if fe.tpos >= len(fe.trace) {
				// Past the last executed instruction: end of program,
				// exactly where the interpreter would return an error.
				fe.done = true
				return
			}
			pc = int(fe.trace[fe.tpos].idx)
		} else {
			pc = fe.m.PC
		}
		addr := instrAddr(pc)
		line := addr >> 6
		if !fe.haveLine || line != fe.lastLine {
			lat := m.hier.AccessI(addr)
			fe.lastLine, fe.haveLine = line, true
			if lat > cfg.Mem.L1I.Latency {
				// Miss: the line arrives later; re-fetch then.
				fe.blockedUntil = t + uint64(lat)
				m.stats.ICacheMissCycles += uint64(lat)
				return
			}
		}

		var d *dyn
		if fe.trace != nil {
			e := &fe.trace[fe.tpos]
			fe.tpos++
			d = fe.buildDyn(m, &fe.prog.Instrs[pc], pc, e.addr, e.taken, t)
		} else {
			var info interp.StepInfo
			if err := fe.m.Step(&info); err != nil {
				// Out-of-range PC or similar: treat as end of program.
				fe.done = true
				return
			}
			d = fe.buildDyn(m, info.Instr, info.Index, info.Addr, info.Taken, t)
		}
		fe.queue.push(d)
		m.stats.Fetched++

		sm := &fe.meta[d.idx]
		if sm.isHalt {
			fe.done = true
			return
		}
		if d.isBranch {
			branches++
			if sm.isCondBranch {
				m.stats.CondBranches++
				predicted := fe.pred.Predict(addr, d.taken)
				fe.pred.Train(addr, d.taken)
				if predicted != d.taken {
					d.mispredicted = true
					m.stats.Mispredicts++
					fe.stalledOn = d
					return
				}
			}
			if d.taken {
				// A taken branch redirects fetch: the rest of this
				// cycle's fetch slots are lost, as in any real front
				// end (the 3-branch throughput of Table 4 applies to
				// the not-taken branches within a fetch group).
				return
			}
			if branches >= cfg.FetchBranches {
				return
			}
		}
	}
}

// buildDyn wires the dependence edges using the owner tables. Records come
// from the machine's arena; every producer pointer stored (sources and owner
// slots) takes a reference so the producer cannot recycle underneath it.
func (fe *frontend) buildDyn(m *Machine, in *isa.Instruction, idx int, addr uint64, taken bool, t uint64) *dyn {
	sm := &fe.meta[idx]
	m.seq++
	d := m.allocDyn()
	d.seq = m.seq
	d.idx = idx
	d.in = in
	d.addr = addr
	d.isLoad = sm.isLoad
	d.isStore = sm.isStore
	d.isBranch = sm.isBranch
	d.taken = taken
	d.braidStart = sm.braidStart
	d.beu = -1
	d.sched = -1
	d.fetchCycle = t
	d.dispatchReady = t + uint64(m.cfg.FrontDepth)
	if sm.isLoad || sm.isStore {
		d.memBytes = uint64(sm.memBytes)
		d.aliasClass = uint32(sm.aliasClass)
	} else {
		d.exLat = m.latTab[sm.class]
	}
	if d.braidStart {
		// Internal values never cross braid boundaries (§3.4).
		for i, p := range fe.intOwner {
			if p != nil {
				fe.intOwner[i] = nil
				m.decRef(p)
			}
		}
	}

	addSrc := func(p *dyn, internal bool) {
		if p == nil {
			return // architectural state: always ready
		}
		d.srcs[d.nsrcs] = source{producer: p, internal: internal}
		d.nsrcs++
		if !internal {
			d.extSrcs++
			if !p.retired {
				p.pendingReads++
			}
		}
		p.refs++
		p.consumers = append(p.consumers, d)
	}
	switch sm.s1Kind {
	case srcInt:
		addSrc(fe.intOwner[sm.s1Idx], true)
	case srcExt:
		addSrc(fe.extOwner[sm.s1Idx], false)
	}
	switch sm.s2Kind {
	case srcInt:
		addSrc(fe.intOwner[sm.s2Idx], true)
	case srcExt:
		addSrc(fe.extOwner[sm.s2Idx], false)
	}
	if sm.s3Kind == srcExt {
		// Conditional moves read their old destination from the
		// external file (the braid ISA has no T bit for it).
		addSrc(fe.extOwner[sm.s3Idx], false)
	}

	if sm.hasExtDest {
		d.hasExtDest = true
		if old := fe.extOwner[sm.extDest]; old != nil {
			old.closed = true
			m.tryEarlyRelease(old)
			m.decRef(old)
		}
		fe.extOwner[sm.extDest] = d
		d.refs++
	}
	if sm.hasIntDest {
		d.hasIntDest = true
		if old := fe.intOwner[sm.intDest]; old != nil {
			m.decRef(old)
		}
		fe.intOwner[sm.intDest] = d
		d.refs++
	}
	return d
}

// extSrcCount is the number of external source operands (rename bandwidth),
// counted once when the dependence edges were wired.
func (d *dyn) extSrcCount() int { return int(d.extSrcs) }
