package bpred

import (
	"math/rand"
	"testing"
)

func TestPerfect(t *testing.T) {
	var p Perfect
	if !p.Predict(10, true) || p.Predict(10, false) {
		t.Error("perfect predictor is not perfect")
	}
	p.Train(10, true) // must not panic
}

func TestPerceptronLearnsAlwaysTaken(t *testing.T) {
	p := NewPerceptron(512, 64)
	for i := 0; i < 200; i++ {
		p.Predict(0x40, true)
		p.Train(0x40, true)
	}
	if !p.Predict(0x40, false) {
		t.Error("did not learn an always-taken branch")
	}
}

func TestPerceptronLearnsAlternating(t *testing.T) {
	p := NewPerceptron(512, 64)
	correct := 0
	for i := 0; i < 2000; i++ {
		taken := i%2 == 0
		if p.Predict(0x80, taken) == taken {
			correct++
		}
		p.Train(0x80, taken)
	}
	// After warmup the alternating pattern is trivially history-predictable.
	if rate := float64(correct) / 2000; rate < 0.9 {
		t.Errorf("alternating pattern accuracy %.2f, want > 0.9", rate)
	}
}

func TestPerceptronLearnsPeriodicPattern(t *testing.T) {
	p := NewPerceptron(512, 64)
	correct, total := 0, 0
	for i := 0; i < 8000; i++ {
		taken := i%7 == 0
		if i > 2000 {
			total++
			if p.Predict(0x123, taken) == taken {
				correct++
			}
		}
		p.Train(0x123, taken)
	}
	if rate := float64(correct) / float64(total); rate < 0.95 {
		t.Errorf("period-7 accuracy %.2f, want > 0.95", rate)
	}
}

func TestPerceptronRandomIsHard(t *testing.T) {
	p := NewPerceptron(512, 64)
	r := rand.New(rand.NewSource(7))
	correct := 0
	const n = 10000
	for i := 0; i < n; i++ {
		taken := r.Intn(2) == 0
		if p.Predict(0x200, taken) == taken {
			correct++
		}
		p.Train(0x200, taken)
	}
	rate := float64(correct) / n
	if rate > 0.65 {
		t.Errorf("random branch accuracy %.2f; predictor should not beat ~0.5 by much", rate)
	}
}

func TestPerceptronCorrelation(t *testing.T) {
	// Branch B repeats branch A's last outcome: global history makes B
	// perfectly predictable even though B's own PC carries no pattern.
	p := NewPerceptron(512, 64)
	r := rand.New(rand.NewSource(9))
	correctB, total := 0, 0
	last := false
	for i := 0; i < 20000; i++ {
		a := r.Intn(2) == 0
		p.Predict(0x300, a)
		p.Train(0x300, a)
		last = a
		b := last
		if i > 5000 {
			total++
			if p.Predict(0x308, b) == b {
				correctB++
			}
		}
		p.Train(0x308, b)
	}
	if rate := float64(correctB) / float64(total); rate < 0.9 {
		t.Errorf("correlated branch accuracy %.2f, want > 0.9", rate)
	}
}

func TestPerceptronStats(t *testing.T) {
	p := NewPerceptron(64, 16)
	for i := 0; i < 100; i++ {
		p.Train(4, true)
	}
	if p.Predictions != 100 {
		t.Errorf("Predictions = %d", p.Predictions)
	}
	if p.MispredictRate() > 0.2 {
		t.Errorf("always-taken mispredict rate %.2f too high", p.MispredictRate())
	}
}

func TestPerceptronBadConfig(t *testing.T) {
	for _, f := range []func(){
		func() { NewPerceptron(0, 64) },
		func() { NewPerceptron(512, 0) },
		func() { NewPerceptron(512, 65) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("bad config did not panic")
				}
			}()
			f()
		}()
	}
}
