package braid_test

import (
	"fmt"
	"log"

	"braid"
)

// ExampleCompile braids a small basic block: two independent dataflow
// chains become two braids, their temporaries become internal registers,
// and the S/T/I/E bits appear in the listing.
func ExampleCompile() {
	prog, err := braid.ParseAsm(`
.name example
.data 64
	ldimm r1, #65536
	ldimm r2, #7
	br body
body:
	add  r3, r2, #1
	mul  r4, r3, r3
	stq  r4, 0(r1)    !ac=1
	xor  r5, r2, #21
	add  r6, r5, r5
	stq  r6, 8(r1)    !ac=1
	halt
`)
	if err != nil {
		log.Fatal(err)
	}
	c, err := braid.Compile(prog, braid.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	for _, b := range c.Braids {
		if b.Block == 1 && !b.Single() {
			fmt.Printf("braid of %d instructions, %d internal value(s):\n", b.Size(), b.Internals)
			for i := b.Start; i < b.End; i++ {
				fmt.Printf("  %s\n", c.Prog.Instrs[i].String())
			}
		}
	}
	// Output:
	// braid of 3 instructions, 2 internal value(s):
	//   S| add i0, r2, #1
	//   mul i1, i0, i0
	//   stq i1, 0(r1)
	// braid of 3 instructions, 2 internal value(s):
	//   S| xor i0, r2, #21
	//   add i1, i0, i0
	//   stq i1, 8(r1)
}

// ExampleSimulate compares the braid microarchitecture against the
// conventional out-of-order design on one generated benchmark.
func ExampleSimulate() {
	prog, err := braid.GenerateBenchmark("crafty", 600)
	if err != nil {
		log.Fatal(err)
	}
	compiled, err := braid.Compile(prog, braid.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	ooo, err := braid.Simulate(prog, braid.OutOfOrder(8))
	if err != nil {
		log.Fatal(err)
	}
	br, err := braid.Simulate(compiled.Prog, braid.Braid(8))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("both machines retire the same %v instructions\n", ooo.Retired == br.Retired)
	fmt.Printf("braid reaches a large fraction of out-of-order: %v\n", br.IPC() > 0.55*ooo.IPC())
	// Output:
	// both machines retire the same true instructions
	// braid reaches a large fraction of out-of-order: true
}

// ExampleRun shows the architectural interpreter and the equivalence of a
// braided program.
func ExampleRun() {
	prog, _ := braid.ParseAsm(`
.data 64
	ldimm r1, #65536
	ldimm r2, #6
	mul   r3, r2, #7
	stq   r3, 0(r1)
	halt
`)
	c, _ := braid.Compile(prog, braid.CompileOptions{})
	a, _ := braid.Run(prog, 1000)
	b, _ := braid.Run(c.Prog, 1000)
	fmt.Println("identical memory:", a.MemHash == b.MemHash)
	// Output:
	// identical memory: true
}
