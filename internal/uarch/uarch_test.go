package uarch

import (
	"testing"

	"braid/internal/asm"
	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/workload"
)

// simulate runs p and checks the retired instruction count against the
// architectural interpreter.
func simulate(t *testing.T, p *isa.Program, cfg Config) *Stats {
	t.Helper()
	cfg.Paranoid = true
	st, err := Simulate(p, cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs, err := interp.RunProgram(p, 10_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if st.Retired != fs.Steps {
		t.Fatalf("%s retired %d instructions, interpreter executed %d", cfg.Core, st.Retired, fs.Steps)
	}
	if st.Cycles == 0 {
		t.Fatal("zero cycles")
	}
	return st
}

func genWorkload(t *testing.T, name string, iters int) (orig, braided *isa.Program) {
	t.Helper()
	prof, ok := workload.ProfileByName(name)
	if !ok {
		t.Fatalf("no profile %s", name)
	}
	p, err := workload.Generate(prof, iters)
	if err != nil {
		t.Fatal(err)
	}
	res, err := braid.Compile(p, braid.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p, res.Prog
}

func TestAllCoresRunKernels(t *testing.T) {
	for _, k := range workload.Kernels() {
		k := k
		res, err := braid.Compile(k, braid.Options{})
		if err != nil {
			t.Fatal(err)
		}
		cases := []struct {
			name string
			p    *isa.Program
			cfg  Config
		}{
			{"inorder", k, InOrderConfig(8)},
			{"depsteer", k, DepSteerConfig(8)},
			{"ooo", k, OutOfOrderConfig(8)},
			{"braid", res.Prog, BraidConfig(8)},
		}
		for _, c := range cases {
			c := c
			t.Run(k.Name+"/"+c.name, func(t *testing.T) {
				st := simulate(t, c.p, c.cfg)
				if ipc := st.IPC(); ipc <= 0 || ipc > float64(c.cfg.IssueWidth) {
					t.Errorf("IPC %.3f out of range", ipc)
				}
			})
		}
	}
}

func TestParadigmOrdering(t *testing.T) {
	// On a generated benchmark, the canonical ordering must hold:
	// in-order <= dep-steer <= out-of-order, and braid close to OoO.
	orig, braided := genWorkload(t, "gcc", 300)

	io := simulate(t, orig, InOrderConfig(8))
	ds := simulate(t, orig, DepSteerConfig(8))
	oo := simulate(t, orig, OutOfOrderConfig(8))
	br := simulate(t, braided, BraidConfig(8))

	t.Logf("IPC: inorder=%.3f depsteer=%.3f braid=%.3f ooo=%.3f",
		io.IPC(), ds.IPC(), br.IPC(), oo.IPC())
	if io.IPC() > ds.IPC()*1.05 {
		t.Errorf("in-order (%.3f) beats dep-steer (%.3f)", io.IPC(), ds.IPC())
	}
	if ds.IPC() > oo.IPC()*1.05 {
		t.Errorf("dep-steer (%.3f) beats out-of-order (%.3f)", ds.IPC(), oo.IPC())
	}
	if br.IPC() < io.IPC() {
		t.Errorf("braid (%.3f) below in-order (%.3f)", br.IPC(), io.IPC())
	}
	if br.IPC() < 0.5*oo.IPC() {
		t.Errorf("braid (%.3f) far below out-of-order (%.3f)", br.IPC(), oo.IPC())
	}
}

func TestWiderIsFaster(t *testing.T) {
	orig, _ := genWorkload(t, "crafty", 300)
	cfg4, cfg8, cfg16 := OutOfOrderConfig(4), OutOfOrderConfig(8), OutOfOrderConfig(16)
	cfg4.PerfectBP, cfg8.PerfectBP, cfg16.PerfectBP = true, true, true
	cfg4.Mem.Perfect, cfg8.Mem.Perfect, cfg16.Mem.Perfect = true, true, true
	s4 := simulate(t, orig, cfg4)
	s8 := simulate(t, orig, cfg8)
	s16 := simulate(t, orig, cfg16)
	t.Logf("perfect-frontend IPC: 4w=%.3f 8w=%.3f 16w=%.3f", s4.IPC(), s8.IPC(), s16.IPC())
	if s8.IPC() < s4.IPC() {
		t.Errorf("8-wide (%.3f) slower than 4-wide (%.3f)", s8.IPC(), s4.IPC())
	}
	if s16.IPC() < s8.IPC() {
		t.Errorf("16-wide (%.3f) slower than 8-wide (%.3f)", s16.IPC(), s8.IPC())
	}
}

func TestPerfectBPHelps(t *testing.T) {
	orig, _ := genWorkload(t, "mcf", 300) // hard branches
	base := OutOfOrderConfig(8)
	perfect := base
	perfect.PerfectBP = true
	sb := simulate(t, orig, base)
	sp := simulate(t, orig, perfect)
	if sp.IPC() < sb.IPC() {
		t.Errorf("perfect branch prediction hurt: %.3f < %.3f", sp.IPC(), sb.IPC())
	}
	if sb.Mispredicts == 0 {
		t.Error("mcf workload produced no mispredictions")
	}
	if sp.Mispredicts != 0 {
		t.Error("perfect predictor mispredicted")
	}
}

func TestPerfectCachesHelp(t *testing.T) {
	orig, _ := genWorkload(t, "mcf", 200) // cache-hostile
	base := OutOfOrderConfig(8)
	perfect := base
	perfect.Mem.Perfect = true
	sb := simulate(t, orig, base)
	sp := simulate(t, orig, perfect)
	if sp.IPC() <= sb.IPC() {
		t.Errorf("perfect caches did not help mcf: %.3f vs %.3f", sp.IPC(), sb.IPC())
	}
}

func TestSmallRFHurts(t *testing.T) {
	orig, _ := genWorkload(t, "crafty", 300)
	big := OutOfOrderConfig(8)
	small := big
	small.RFEntries = 8
	sb := simulate(t, orig, big)
	ss := simulate(t, orig, small)
	t.Logf("RF 256: %.3f, RF 8: %.3f", sb.IPC(), ss.IPC())
	if ss.IPC() > sb.IPC()*1.01 {
		t.Errorf("8-entry RF (%.3f) outperformed 256-entry (%.3f)", ss.IPC(), sb.IPC())
	}
	if ss.RFEntryStalls == 0 {
		t.Error("8-entry RF reported no entry stalls")
	}
}

func TestBraidSmallExternalRFSuffices(t *testing.T) {
	// The paper's headline: the braid machine with an 8-entry external RF
	// performs like one with 256 entries (Figure 6).
	_, braided := genWorkload(t, "gcc", 300)
	big := BraidConfig(8)
	big.RFEntries = 256
	small := BraidConfig(8) // 8 entries
	sb := simulate(t, braided, big)
	ss := simulate(t, braided, small)
	t.Logf("braid ext RF 256: %.3f, 8: %.3f", sb.IPC(), ss.IPC())
	if ss.IPC() < 0.93*sb.IPC() {
		t.Errorf("8-entry external RF (%.3f) much worse than 256 (%.3f)", ss.IPC(), sb.IPC())
	}
}

func TestStoreLoadForwarding(t *testing.T) {
	// A dependent store->load pair to the same address must forward, so
	// total cycles stay far below a D-cache round trip per iteration.
	src := `
.name fwd
.data 64
	ldimm r1, #65536
	ldimm r6, #50
loop:
	stq   r6, 0(r1)
	ldq   r2, 0(r1)
	add   r3, r2, #1
	sub   r6, r6, #1
	bgt   r6, loop
	halt
`
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	st := simulate(t, p, OutOfOrderConfig(8))
	perIter := float64(st.Cycles) / 50
	if perIter > 20 {
		t.Errorf("%.1f cycles per store-load iteration; forwarding broken?", perIter)
	}
}

func TestMispredictionPenaltyShape(t *testing.T) {
	// A tight loop with an unpredictable branch must cost roughly the
	// misprediction penalty on mispredicted iterations.
	orig, _ := genWorkload(t, "gcc", 200)
	fast := OutOfOrderConfig(8)
	slow := OutOfOrderConfig(8)
	slow.MispredictMin = 46
	sf := simulate(t, orig, fast)
	ss := simulate(t, orig, slow)
	if ss.Cycles <= sf.Cycles {
		t.Errorf("doubling the misprediction penalty did not add cycles (%d vs %d)", ss.Cycles, sf.Cycles)
	}
}

func TestBraidShorterPipelineHelps(t *testing.T) {
	_, braided := genWorkload(t, "gcc", 300)
	short := BraidConfig(8) // 19-cycle penalty
	long := BraidConfig(8)
	long.MispredictMin = 23
	long.FrontDepth = 12
	ssh := simulate(t, braided, short)
	sl := simulate(t, braided, long)
	if ssh.IPC() < sl.IPC() {
		t.Errorf("shorter pipeline slower: %.3f vs %.3f", ssh.IPC(), sl.IPC())
	}
}

func TestMoreBEUsHelp(t *testing.T) {
	_, braided := genWorkload(t, "vortex", 300)
	one := BraidConfig(8)
	one.BEUs = 1
	one.TotalFUs = 2
	eight := BraidConfig(8)
	s1 := simulate(t, braided, one)
	s8 := simulate(t, braided, eight)
	t.Logf("braid IPC: 1 BEU %.3f, 8 BEUs %.3f", s1.IPC(), s8.IPC())
	if s8.IPC() <= s1.IPC() {
		t.Errorf("8 BEUs (%.3f) not faster than 1 (%.3f)", s8.IPC(), s1.IPC())
	}
}

func TestTinyFIFOStallsLongBraids(t *testing.T) {
	_, braided := genWorkload(t, "mgrid", 100) // big braids
	big := BraidConfig(8)
	small := BraidConfig(8)
	small.BEUFIFO = 4
	sb := simulate(t, braided, big)
	ss := simulate(t, braided, small)
	t.Logf("braid FIFO 32: %.3f, FIFO 4: %.3f", sb.IPC(), ss.IPC())
	if ss.IPC() >= sb.IPC() {
		t.Errorf("4-entry FIFO (%.3f) not slower than 32 (%.3f)", ss.IPC(), sb.IPC())
	}
}

func TestConfigValidate(t *testing.T) {
	bad := OutOfOrderConfig(8)
	bad.RFEntries = 0
	if _, err := Simulate(&isa.Program{Instrs: []isa.Instruction{{Op: isa.OpHALT}}}, bad); err == nil {
		t.Error("invalid config accepted")
	}
	bad2 := OutOfOrderConfig(8)
	bad2.MispredictMin = 2
	if err := bad2.Validate(); err == nil {
		t.Error("penalty below front depth accepted")
	}
}

func TestBraidedProgramsOnAllProfiles(t *testing.T) {
	if testing.Short() {
		t.Skip("long")
	}
	for _, prof := range workload.Profiles() {
		prof := prof
		t.Run(prof.Name, func(t *testing.T) {
			p, err := workload.Generate(prof, 60)
			if err != nil {
				t.Fatal(err)
			}
			res, err := braid.Compile(p, braid.Options{})
			if err != nil {
				t.Fatal(err)
			}
			simulate(t, res.Prog, BraidConfig(8))
			simulate(t, p, OutOfOrderConfig(8))
		})
	}
}
