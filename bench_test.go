package braid

// One benchmark per table and figure of the paper's evaluation. Each bench
// regenerates its artifact over the full 26-benchmark suite and reports the
// headline number next to the paper's value, so
//
//	go test -bench=. -benchmem
//
// reproduces the entire evaluation. The suite is prepared once and shared;
// use cmd/braidbench for the full per-benchmark tables.

import (
	"context"
	"sync"
	"testing"
	"time"

	"braid/internal/experiments"
	"braid/internal/uarch"
	"braid/internal/workload"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Workloads
	suiteErr  error
)

// benchDynTarget keeps `go test -bench=.` affordable; cmd/braidbench
// defaults to larger runs.
const benchDynTarget = 15000

func loadSuite(b *testing.B) *experiments.Workloads {
	b.Helper()
	suiteOnce.Do(func() {
		suite, suiteErr = experiments.LoadSuite(benchDynTarget)
	})
	if suiteErr != nil {
		b.Fatal(suiteErr)
	}
	return suite
}

// runExperiment executes one experiment per iteration and reports its
// claims as benchmark metrics (measured vs paper).
func runExperiment(b *testing.B, id string) {
	w := loadSuite(b)
	exp, ok := experiments.ByID(id)
	if !ok {
		b.Fatalf("unknown experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := exp.Run(w)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			for _, c := range res.Claims {
				b.ReportMetric(c.Measured, "measured:"+metricName(c.Desc))
				b.ReportMetric(c.Paper, "paper:"+metricName(c.Desc))
			}
			b.StartTimer()
		}
	}
}

// BenchmarkSimThroughput measures raw simulator speed — retired instructions
// per wall-clock second (MIPS) — for one representative benchmark under each
// core paradigm. This is the per-paradigm complement to cmd/braidbench's
// -throughput flag, which reports the same metric over the full evaluation;
// BENCH_sim_throughput.json pins the committed baseline.
func BenchmarkSimThroughput(b *testing.B) {
	w := loadSuite(b)
	bench := w.Benches[0]
	cases := []struct {
		name    string
		braided bool
		cfg     uarch.Config
	}{
		{"inorder-8", false, uarch.InOrderConfig(8)},
		{"depsteer-8", false, uarch.DepSteerConfig(8)},
		{"ooo-8", false, uarch.OutOfOrderConfig(8)},
		{"braid-8", true, uarch.BraidConfig(8)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			p := bench.Orig
			if c.braided {
				p = bench.Braided
			}
			var instrs uint64
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				st, err := uarch.Simulate(p, c.cfg)
				if err != nil {
					b.Fatal(err)
				}
				instrs += st.Retired
			}
			if secs := time.Since(start).Seconds(); secs > 0 {
				b.ReportMetric(float64(instrs)/secs/1e6, "MIPS")
			}
		})
	}
}

// BenchmarkSampledThroughput pits interval sampling against exact simulation
// on a workload long enough to fast-forward most of its instructions. The
// exact case reports detailed-engine MIPS; the sampled case reports both
// detailed MIPS (honest engine speed) and effective MIPS (retired
// instructions per second, counting the fast-forwarded leap) — the ratio of
// effective to exact MIPS is the sweep-throughput win sampling buys.
func BenchmarkSampledThroughput(b *testing.B) {
	prof, ok := workload.ProfileByName("gcc")
	if !ok {
		b.Fatal("gcc profile missing")
	}
	p, err := workload.Generate(prof, 2000)
	if err != nil {
		b.Fatal(err)
	}
	cfg := uarch.OutOfOrderConfig(8)
	sp := uarch.Sampling{Period: 100_000, Detail: 5_000, Warmup: 5_000}

	b.Run("exact", func(b *testing.B) {
		var instrs uint64
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			st, err := uarch.Simulate(p, cfg)
			if err != nil {
				b.Fatal(err)
			}
			instrs += st.Retired
		}
		if secs := time.Since(start).Seconds(); secs > 0 {
			b.ReportMetric(float64(instrs)/secs/1e6, "MIPS")
		}
	})
	b.Run("sampled", func(b *testing.B) {
		var detailed, retired uint64
		b.ResetTimer()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			st, est, err := uarch.SimulateSampled(context.Background(), p, cfg, sp)
			if err != nil {
				b.Fatal(err)
			}
			detailed += est.DetailedInstrs
			retired += st.Retired
		}
		if secs := time.Since(start).Seconds(); secs > 0 {
			b.ReportMetric(float64(detailed)/secs/1e6, "MIPS")
			b.ReportMetric(float64(retired)/secs/1e6, "effective_MIPS")
		}
	})
}

func metricName(desc string) string {
	out := make([]rune, 0, len(desc))
	for _, r := range desc {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ':
			out = append(out, '_')
		}
		if len(out) >= 40 {
			break
		}
	}
	return string(out)
}

// BenchmarkValueCharacterization regenerates the §1 motivation numbers
// (fanout, lifetime).
func BenchmarkValueCharacterization(b *testing.B) { runExperiment(b, "values") }

// BenchmarkFig1WidthPotential regenerates Figure 1: 8- and 16-wide speedup
// over 4-wide with a perfect front end.
func BenchmarkFig1WidthPotential(b *testing.B) { runExperiment(b, "fig1") }

// BenchmarkTable1BraidsPerBlock regenerates Table 1.
func BenchmarkTable1BraidsPerBlock(b *testing.B) { runExperiment(b, "table1") }

// BenchmarkTable2SizeWidth regenerates Table 2.
func BenchmarkTable2SizeWidth(b *testing.B) { runExperiment(b, "table2") }

// BenchmarkTable3InputsOutputs regenerates Table 3.
func BenchmarkTable3InputsOutputs(b *testing.B) { runExperiment(b, "table3") }

// BenchmarkFig5OoORegisters regenerates Figure 5: conventional IPC vs
// register-file entries.
func BenchmarkFig5OoORegisters(b *testing.B) { runExperiment(b, "fig5") }

// BenchmarkFig6ExternalRegisters regenerates Figure 6: braid IPC vs external
// register-file entries.
func BenchmarkFig6ExternalRegisters(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkFig7RegisterPorts regenerates Figure 7: braid IPC vs external
// register-file ports.
func BenchmarkFig7RegisterPorts(b *testing.B) { runExperiment(b, "fig7") }

// BenchmarkFig8Bypass regenerates Figure 8: braid IPC vs bypass paths.
func BenchmarkFig8Bypass(b *testing.B) { runExperiment(b, "fig8") }

// BenchmarkFig9BEUs regenerates Figure 9: braid IPC vs the number of BEUs.
func BenchmarkFig9BEUs(b *testing.B) { runExperiment(b, "fig9") }

// BenchmarkFig10FIFOSize regenerates Figure 10: braid IPC vs BEU FIFO depth.
func BenchmarkFig10FIFOSize(b *testing.B) { runExperiment(b, "fig10") }

// BenchmarkFig11Window regenerates Figure 11: braid IPC vs the in-order
// scheduling window.
func BenchmarkFig11Window(b *testing.B) { runExperiment(b, "fig11") }

// BenchmarkFig12WindowFUs regenerates Figure 12: braid IPC vs window size
// and functional units varied together.
func BenchmarkFig12WindowFUs(b *testing.B) { runExperiment(b, "fig12") }

// BenchmarkFig13Paradigms regenerates Figure 13: the four paradigms at 4-,
// 8-, and 16-wide.
func BenchmarkFig13Paradigms(b *testing.B) { runExperiment(b, "fig13") }

// BenchmarkFig14EqualFU regenerates Figure 14: equal functional-unit budget,
// BEU count vs per-BEU width.
func BenchmarkFig14EqualFU(b *testing.B) { runExperiment(b, "fig14") }

// BenchmarkPipelineShortening regenerates the §5.1 claim: the gain from the
// 4-stage-shorter braid pipeline.
func BenchmarkPipelineShortening(b *testing.B) { runExperiment(b, "pipeline") }
