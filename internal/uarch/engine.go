package uarch

import (
	"fmt"
	"io"
	"sort"

	"braid/internal/isa"
	"braid/internal/mem"
)

// core is one execution-core paradigm: it owns dispatch structure (windows,
// FIFOs, BEUs) and per-cycle instruction selection. The engine owns operand
// readiness, register-file ports and occupancy, the bypass network, the
// functional-unit pool, the LSQ, retirement, and the front end.
type core interface {
	// canAccept reports whether one more instruction can be dispatched
	// this cycle (called in program order; dispatch stops at the first
	// refusal).
	canAccept(d *dyn) bool
	// dispatch inserts the instruction into the core's structures.
	dispatch(d *dyn)
	// issue selects and issues instructions for cycle t by calling
	// m.tryIssue on candidates, respecting the core's structural rules.
	issue(m *Machine, t uint64)
}

// Stats accumulates one run's results.
type Stats struct {
	Cycles  uint64
	Retired uint64
	Fetched uint64

	CondBranches uint64
	Mispredicts  uint64
	Loads        uint64
	StoreCount   uint64
	Exceptions   uint64

	ICacheMissCycles uint64
	IssueStalls      uint64 // tryIssue rejections (any reason)

	// Utilization diagnostics.
	IdleCycles       uint64 // cycles with no instruction issued
	FetchStallCycles uint64 // cycles fetch was blocked on a misprediction
	robOccupancySum  uint64
	issuedSum        uint64
	RFEntryStalls    uint64 // writebacks delayed by a full register file
	PortStalls       uint64 // issues blocked on read ports
	WritePortStalls  uint64 // writebacks delayed by exhausted write ports
	BypassDenied     uint64 // writebacks that missed a bypass slot
	RFPeak           int
}

// IPC is retired instructions per cycle.
func (s *Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Retired) / float64(s.Cycles)
}

// MeanROBOccupancy is the average number of in-flight instructions.
func (s *Stats) MeanROBOccupancy() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.robOccupancySum) / float64(s.Cycles)
}

// MispredictRate is per conditional branch.
func (s *Stats) MispredictRate() float64 {
	if s.CondBranches == 0 {
		return 0
	}
	return float64(s.Mispredicts) / float64(s.CondBranches)
}

// Machine is one configured simulation of one program.
type Machine struct {
	cfg  Config
	prog *isa.Program
	fe   *frontend
	cre  core
	hier *mem.Hierarchy

	rob    []*dyn // in flight, in fetch order
	stores []*dyn // in-flight stores for the LSQ
	wbq    []*dyn // issued, awaiting writeback processing

	seq   uint64
	cycle uint64

	rfUsed          int
	readPortsUsed   int
	writePortsUsed  int
	bypassUsed      int
	fusUsed         int
	issuedThisCycle int

	stats Stats

	trace      io.Writer
	traceMax   int
	traceCount int

	konata      io.Writer
	konataMax   int
	konataCount int

	// §3.4 exception-mode state.
	sinceException uint64
	draining       bool
	serializedLeft int
}

// New builds a machine for the program under the configuration.
func New(p *isa.Program, cfg Config) (*Machine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	hier, err := mem.NewHierarchy(cfg.Mem)
	if err != nil {
		return nil, err
	}
	m := &Machine{cfg: cfg, prog: p, hier: hier}
	// Warm the caches to steady state: the paper measures whole
	// MinneSPEC runs where cold misses are negligible; our runs are
	// short enough that they would otherwise dominate. The instruction
	// side covers the text segment; the data side pre-touches the first
	// megabyte of the data space, so only footprints larger than the L2
	// (the genuinely memory-bound benchmarks) keep missing to memory.
	for i := 0; i < len(p.Instrs); i += 8 {
		hier.AccessI(instrAddr(i))
	}
	for off := uint64(0); off < 1<<20; off += 64 {
		hier.AccessD(isa.DataBase + off)
	}
	m.fe = newFrontend(p, &cfg)
	switch cfg.Core {
	case CoreOutOfOrder:
		m.cre = newOOOCore(&cfg)
	case CoreInOrder:
		m.cre = newInOrderCore(&cfg)
	case CoreDepSteer:
		m.cre = newDepSteerCore(&cfg)
	case CoreBraid:
		m.cre = newBraidCore(&cfg)
	default:
		return nil, fmt.Errorf("uarch: unknown core kind %d", cfg.Core)
	}
	return m, nil
}

// Run simulates to completion and returns the statistics.
func (m *Machine) Run() (*Stats, error) {
	for {
		if m.cycle >= m.cfg.MaxCycles {
			return nil, fmt.Errorf("uarch: %s on %q exceeded %d cycles", m.cfg.Core, m.prog.Name, m.cfg.MaxCycles)
		}
		t := m.cycle
		m.resetCycle()
		m.writeback(t)
		m.retire(t)
		m.cre.issue(m, t)
		m.dispatch(t)
		m.fe.fetch(m, t)
		if m.cfg.Paranoid {
			m.checkInvariants(t)
		}
		if m.issuedThisCycle == 0 {
			m.stats.IdleCycles++
		}
		if m.fe.stalledOn != nil {
			m.stats.FetchStallCycles++
		}
		m.stats.robOccupancySum += uint64(len(m.rob))
		m.stats.issuedSum += uint64(m.issuedThisCycle)
		m.cycle++
		if m.fe.done && len(m.rob) == 0 && len(m.fe.queue) == 0 {
			break
		}
	}
	m.stats.Cycles = m.cycle
	return &m.stats, nil
}

func (m *Machine) resetCycle() {
	m.readPortsUsed = 0
	m.writePortsUsed = 0
	m.bypassUsed = 0
	m.fusUsed = 0
	m.issuedThisCycle = 0
}

// writeback processes issued instructions whose functional units have
// produced a result. External-destination results need a register-file
// entry and a write port; they retry every cycle until granted (oldest
// first). Everything else completes unconditionally.
func (m *Machine) writeback(t uint64) {
	if len(m.wbq) == 0 {
		return
	}
	sort.Slice(m.wbq, func(i, j int) bool { return m.wbq[i].seq < m.wbq[j].seq })
	remaining := m.wbq[:0]
	for _, d := range m.wbq {
		if d.execDone > t {
			remaining = append(remaining, d)
			continue
		}
		if d.hasExtDest {
			// The oldest in-flight instruction may always take an
			// entry (transiently exceeding the limit) — otherwise
			// younger completed values waiting to retire behind it
			// would deadlock the machine.
			oldest := len(m.rob) > 0 && m.rob[0] == d
			if (m.rfUsed >= m.cfg.RFEntries && !oldest) || m.writePortsUsed >= m.cfg.RFWritePorts {
				if m.rfUsed >= m.cfg.RFEntries && !oldest {
					m.stats.RFEntryStalls++
				}
				if m.writePortsUsed >= m.cfg.RFWritePorts {
					m.stats.WritePortStalls++
				}
				remaining = append(remaining, d)
				continue
			}
			m.rfUsed++
			if m.rfUsed > m.stats.RFPeak {
				m.stats.RFPeak = m.rfUsed
			}
			m.writePortsUsed++
			if m.bypassUsed < m.cfg.BypassValues {
				m.bypassUsed++
				d.bypassed = true
			} else {
				m.stats.BypassDenied++
			}
		}
		d.completed = true
		d.completeCycle = t
		m.tryEarlyRelease(d)
		if d.mispredicted {
			// Redirect: fetch resumes after the configured gap.
			m.fe.stalledOn = nil
			m.fe.blockedUntil = t + 1 + m.cfg.redirectGap()
			m.fe.haveLine = false
		}
	}
	m.wbq = remaining
}

// retire commits completed instructions in order, up to the retire width.
// Stores write the data cache at retirement; external register-file entries
// are released (the value is architecturally committed; DESIGN.md §1).
func (m *Machine) retire(t uint64) {
	width := m.cfg.RetireWidth
	n := 0
	for len(m.rob) > 0 && n < width {
		d := m.rob[0]
		if !d.completed || d.completeCycle > t {
			break
		}
		if d.isStore {
			m.hier.AccessD(d.addr)
			// Remove from the LSQ.
			for i, s := range m.stores {
				if s == d {
					m.stores = append(m.stores[:i], m.stores[i+1:]...)
					break
				}
			}
		}
		if d.hasExtDest && !d.entryFreed {
			d.entryFreed = true
			m.rfUsed--
		}
		d.retired = true
		m.traceRetire(d, t)
		m.konataRetire(d, t)
		m.rob = m.rob[1:]
		m.stats.Retired++
		n++
		if m.cfg.ExceptionEvery > 0 {
			m.sinceException++
			if m.sinceException >= m.cfg.ExceptionEvery {
				m.sinceException = 0
				m.draining = true
				m.stats.Exceptions++
			}
		}
	}
}

// dispatch moves fetched instructions into the core, in order, limited by
// the allocate/rename bandwidth of Table 4 (only external destinations are
// allocated; only external sources are renamed). Exception handling (§3.4)
// first drains the machine, restores the checkpoint (modeled as the
// misprediction penalty), and then serializes dispatch through one unit.
func (m *Machine) dispatch(t uint64) {
	if m.draining {
		if len(m.rob) > 0 {
			return // wait for the pipeline to empty
		}
		m.draining = false
		m.serializedLeft = m.cfg.ExceptionHandler
		if m.serializedLeft <= 0 {
			m.serializedLeft = 64
		}
		m.fe.blockedUntil = t + uint64(m.cfg.MispredictMin)
		if sz, ok := m.cre.(serializer); ok {
			sz.setSerialized(true)
		}
		return
	}
	allocUsed, renameUsed, moved := 0, 0, 0
	for len(m.fe.queue) > 0 && moved < m.cfg.FetchWidth {
		d := m.fe.queue[0]
		if d.dispatchReady > t || len(m.rob) >= m.cfg.ROB {
			return
		}
		needAlloc := 0
		if d.hasExtDest {
			needAlloc = 1
		}
		if allocUsed+needAlloc > m.cfg.AllocWidth || renameUsed+d.extSrcCount() > m.cfg.RenameSrc {
			return
		}
		if !m.cre.canAccept(d) {
			return
		}
		allocUsed += needAlloc
		renameUsed += d.extSrcCount()
		m.cre.dispatch(d)
		d.dispatched = true
		d.dispatchCycle = t
		m.rob = append(m.rob, d)
		if d.isStore {
			m.stores = append(m.stores, d)
			m.stats.StoreCount++
		}
		if d.isLoad {
			m.stats.Loads++
		}
		m.fe.queue = m.fe.queue[1:]
		moved++
		if m.serializedLeft > 0 {
			m.serializedLeft--
			if m.serializedLeft == 0 {
				if sz, ok := m.cre.(serializer); ok {
					sz.setSerialized(false)
				}
			}
		}
	}
}

// serializer is implemented by cores that support §3.4's exception mode.
type serializer interface{ setSerialized(bool) }

// srcsReady checks operand availability at cycle t and counts the external
// register-file read ports the issue would need (bypassed and internal
// operands are free).
func (m *Machine) srcsReady(d *dyn, t uint64) (ports int, ok bool) {
	for i := 0; i < d.nsrcs; i++ {
		s := &d.srcs[i]
		p := s.producer
		if s.internal {
			if !intReady(p, t) {
				return 0, false
			}
			continue
		}
		if p == nil || p.retired {
			// Architectural state: needs a read port.
			ports++
			continue
		}
		if !p.completed || p.completeCycle > t {
			return 0, false
		}
		if m.crossCluster(p, d) {
			// §5.2 clustering: a value crossing clusters pays the
			// inter-cluster delay and cannot be caught on the
			// producing cluster's bypass network.
			if t < p.completeCycle+uint64(m.cfg.InterClusterDelay) {
				return 0, false
			}
			ports++
			continue
		}
		if p.bypassed && t <= p.completeCycle+uint64(m.cfg.BypassLevels) {
			continue // caught on the bypass network
		}
		if t < p.completeCycle+uint64(m.cfg.ExtWakeupExtra) {
			return 0, false // busy-bit propagation across units
		}
		ports++
	}
	return ports, true
}

// crossCluster reports whether a value produced by p crosses a cluster
// boundary to reach d (braid core with clustering enabled only).
func (m *Machine) crossCluster(p, d *dyn) bool {
	if m.cfg.Clusters <= 1 || p.beu < 0 || d.beu < 0 {
		return false
	}
	per := m.cfg.BEUs / m.cfg.Clusters
	if per <= 0 {
		return false
	}
	return p.beu/per != d.beu/per
}

// tryIssue attempts to issue d at cycle t, honoring the global issue width,
// the functional-unit pool, operand readiness, register-file read ports, and
// the load-store queue. On success the completion time is scheduled.
func (m *Machine) tryIssue(d *dyn, t uint64) bool {
	if d.issued {
		return false
	}
	if m.issuedThisCycle >= m.cfg.IssueWidth || m.fusUsed >= m.cfg.TotalFUs {
		m.stats.IssueStalls++
		return false
	}
	ports, ok := m.srcsReady(d, t)
	if !ok {
		return false
	}
	if ports > m.cfg.RFReadPorts {
		// An instruction needing more operands than the file has ports
		// collects them over several cycles; approximate by letting it
		// monopolize a full cycle's read bandwidth (otherwise a
		// three-source conditional move could deadlock a two-port
		// machine).
		ports = m.cfg.RFReadPorts
	}
	if m.readPortsUsed+ports > m.cfg.RFReadPorts {
		m.stats.PortStalls++
		return false
	}

	var execDone uint64
	switch {
	case d.isLoad:
		done, ok := m.issueLoad(d, t)
		if !ok {
			return false
		}
		execDone = done
	case d.isStore:
		execDone = t + uint64(m.cfg.LatAGU)
	default:
		execDone = t + uint64(m.latency(d))
	}

	m.readPortsUsed += ports
	m.fusUsed++
	m.issuedThisCycle++
	d.issued = true
	d.issueCycle = t
	d.execDone = execDone
	// The issue consumed its operands: dead values may free their
	// register-file entries (dead-value early release, DESIGN.md §1).
	for i := 0; i < d.nsrcs; i++ {
		s := &d.srcs[i]
		if !s.internal && s.producer != nil && !s.producer.retired {
			s.producer.pendingReads--
			m.tryEarlyRelease(s.producer)
		}
	}
	m.wbq = append(m.wbq, d)
	return true
}

// tryEarlyRelease frees p's external register-file entry once the value is
// provably dead: written back, all fetched consumers issued, and the next
// writer of the architectural register fetched (the compiler's dead-value
// assertion). Branch recovery needs no entry either way because checkpoints
// repair the map, per the paper's §3.4.
func (m *Machine) tryEarlyRelease(p *dyn) {
	if !m.cfg.DeadValueRelease {
		return
	}
	if p.entryFreed || !p.hasExtDest || !p.completed || !p.closed || p.pendingReads > 0 || p.retired {
		return
	}
	p.entryFreed = true
	m.rfUsed--
}

// issueLoad applies the LSQ rules: a load may issue once every older store
// that could alias it (per the compiler's alias classes) has computed its
// address; an overlapping in-flight store forwards its data.
func (m *Machine) issueLoad(d *dyn, t uint64) (uint64, bool) {
	bytes := uint64(d.in.Info().MemBytes)
	var fwd *dyn
	for _, s := range m.stores {
		if s.seq >= d.seq {
			break
		}
		if !s.issued {
			if mayAliasInstr(d.in, s.in) {
				return 0, false // older store address unknown
			}
			continue
		}
		sb := uint64(s.in.Info().MemBytes)
		if s.addr < d.addr+bytes && d.addr < s.addr+sb {
			fwd = s // youngest overlapping store wins
		}
	}
	agu := t + uint64(m.cfg.LatAGU)
	if fwd != nil {
		done := agu + 1
		if fwd.execDone+1 > done {
			done = fwd.execDone + 1
		}
		return done, true
	}
	return agu + uint64(m.hier.AccessD(d.addr)), true
}

// mayAliasInstr mirrors the braid compiler's static disambiguation.
func mayAliasInstr(a, b *isa.Instruction) bool {
	if a.AliasClass == 0 || b.AliasClass == 0 {
		return true
	}
	return a.AliasClass == b.AliasClass
}

// Simulate is the package's main entry point: run program p on cfg.
func Simulate(p *isa.Program, cfg Config) (*Stats, error) {
	m, err := New(p, cfg)
	if err != nil {
		return nil, err
	}
	return m.Run()
}

// checkInvariants asserts per-cycle internal consistency; enabled by
// Config.Paranoid (tests). Violations panic: they are simulator bugs, never
// program behavior.
func (m *Machine) checkInvariants(t uint64) {
	if m.rfUsed < 0 || m.rfUsed > m.cfg.RFEntries+1 {
		panic(fmt.Sprintf("uarch: cycle %d: rfUsed %d out of range [0,%d+1]", t, m.rfUsed, m.cfg.RFEntries))
	}
	if m.readPortsUsed > m.cfg.RFReadPorts || m.writePortsUsed > m.cfg.RFWritePorts {
		panic(fmt.Sprintf("uarch: cycle %d: port counters exceed limits (%d/%d reads, %d/%d writes)",
			t, m.readPortsUsed, m.cfg.RFReadPorts, m.writePortsUsed, m.cfg.RFWritePorts))
	}
	if m.bypassUsed > m.cfg.BypassValues || m.fusUsed > m.cfg.TotalFUs || m.issuedThisCycle > m.cfg.IssueWidth {
		panic(fmt.Sprintf("uarch: cycle %d: execution counters exceed limits", t))
	}
	var prev uint64
	for i, d := range m.rob {
		if d.seq <= prev {
			panic(fmt.Sprintf("uarch: cycle %d: rob[%d] out of age order", t, i))
		}
		prev = d.seq
		if d.retired {
			panic(fmt.Sprintf("uarch: cycle %d: retired instruction still in rob", t))
		}
	}
	for _, d := range m.wbq {
		if !d.issued || d.completed {
			panic(fmt.Sprintf("uarch: cycle %d: wbq holds seq %d issued=%v completed=%v",
				t, d.seq, d.issued, d.completed))
		}
	}
	prev = 0
	for i, s := range m.stores {
		if s.seq <= prev {
			panic(fmt.Sprintf("uarch: cycle %d: stores[%d] out of age order", t, i))
		}
		prev = s.seq
	}
	if bc, ok := m.cre.(*braidCore); ok {
		bc.checkInvariants(t)
	}
}
