package isa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRegString(t *testing.T) {
	cases := []struct {
		r    Reg
		want string
	}{
		{0, "r0"},
		{5, "r5"},
		{31, "r31"},
		{32, "f0"},
		{63, "f31"},
		{RegNone, "none"},
	}
	for _, c := range cases {
		if got := c.r.String(); got != c.want {
			t.Errorf("Reg(%d).String() = %q, want %q", uint8(c.r), got, c.want)
		}
	}
}

func TestRegIsFP(t *testing.T) {
	if Reg(31).IsFP() {
		t.Error("r31 classified as FP")
	}
	if !Reg(32).IsFP() {
		t.Error("f0 not classified as FP")
	}
	if !Reg(63).IsFP() {
		t.Error("f31 not classified as FP")
	}
	if RegNone.IsFP() {
		t.Error("RegNone classified as FP")
	}
}

func TestOpcodeTableComplete(t *testing.T) {
	for op := Opcode(0); op < Opcode(NumOpcodes); op++ {
		info := &opTable[op]
		if info.Name == "" {
			t.Errorf("opcode %d has no table entry", op)
			continue
		}
		back, ok := OpcodeByName(info.Name)
		if !ok || back != op {
			t.Errorf("OpcodeByName(%q) = %v, %v; want %v", info.Name, back, ok, op)
		}
		if info.Class == ClassLoad && !info.HasDest {
			t.Errorf("load opcode %s has no destination", info.Name)
		}
		if info.Class == ClassStore && info.HasDest {
			t.Errorf("store opcode %s has a destination", info.Name)
		}
		if info.Flow != flowNone && info.Class != ClassBranch {
			t.Errorf("control-flow opcode %s not in branch class", info.Name)
		}
		if (info.Class == ClassLoad || info.Class == ClassStore) && info.MemBytes == 0 {
			t.Errorf("memory opcode %s has no access size", info.Name)
		}
	}
}

func TestInstructionPredicates(t *testing.T) {
	ld := Instruction{Op: OpLDQ, Dest: 1, Src1: 2, Imm: 8, HasImm: true}
	if !ld.IsLoad() || !ld.IsMem() || ld.IsStore() || ld.IsBranch() {
		t.Errorf("load predicates wrong: %+v", ld)
	}
	st := Instruction{Op: OpSTQ, Src1: 1, Src2: 2, Imm: 8, HasImm: true}
	if !st.IsStore() || !st.IsMem() || st.IsLoad() || st.WritesReg() {
		t.Errorf("store predicates wrong: %+v", st)
	}
	bne := Instruction{Op: OpBNE, Src1: 3, Imm: -4}
	if !bne.IsBranch() || !bne.IsCondBranch() || bne.IsUncondBranch() {
		t.Errorf("branch predicates wrong: %+v", bne)
	}
	br := Instruction{Op: OpBR, Imm: 2}
	if !br.IsUncondBranch() || br.IsCondBranch() {
		t.Errorf("br predicates wrong: %+v", br)
	}
	cmov := Instruction{Op: OpCMOVNE, Dest: 4, Src1: 5, Src2: 6}
	if !cmov.ReadsDest() {
		t.Error("cmovne should read its destination")
	}
	srcs := cmov.SrcRegs(nil)
	if len(srcs) != 3 || srcs[0] != 5 || srcs[1] != 6 || srcs[2] != 4 {
		t.Errorf("cmovne SrcRegs = %v, want [r5 r6 r4]", srcs)
	}
}

func TestSrcRegsImmediate(t *testing.T) {
	add := Instruction{Op: OpADD, Dest: 1, Src1: 2, Imm: 5, HasImm: true}
	srcs := add.SrcRegs(nil)
	if len(srcs) != 1 || srcs[0] != 2 {
		t.Errorf("add-with-imm SrcRegs = %v, want [r2]", srcs)
	}
}

func TestBranchTargetRoundTrip(t *testing.T) {
	var in Instruction
	in.Op = OpBNE
	for _, self := range []int{0, 10, 500} {
		for _, target := range []int{0, 1, 9, 11, 700} {
			in.SetBranchTarget(self, target)
			if got := in.BranchTarget(self); got != target {
				t.Errorf("BranchTarget(self=%d) = %d after SetBranchTarget(%d)", self, got, target)
			}
		}
	}
}

// randomCanonicalInstruction builds a random instruction that is canonical
// with respect to its opcode, suitable for encode/decode round-trip checks.
func randomCanonicalInstruction(r *rand.Rand) Instruction {
	var in Instruction
	for {
		in.Op = Opcode(r.Intn(NumOpcodes))
		if in.Op.Valid() {
			break
		}
	}
	in.Dest = Reg(r.Intn(NumArchRegs))
	in.Src1 = Reg(r.Intn(NumArchRegs))
	in.Src2 = Reg(r.Intn(NumArchRegs))
	in.Imm = int32(r.Intn(ImmMax-ImmMin+1) + ImmMin)
	in.HasImm = r.Intn(2) == 0
	in.AliasClass = uint8(r.Intn(MaxAliasClass + 1))
	in.Start = r.Intn(2) == 0
	in.T1 = r.Intn(2) == 0
	in.T2 = r.Intn(2) == 0
	in.IDest = r.Intn(2) == 0
	in.EDest = r.Intn(2) == 0
	in.IDestIdx = uint8(r.Intn(NumInternalRegs))
	in.I1 = uint8(r.Intn(NumInternalRegs))
	in.I2 = uint8(r.Intn(NumInternalRegs))
	in.Canonicalize()
	return in
}

func TestEncodeDecodeRoundTripQuick(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func(seed int64) bool {
		r.Seed(seed)
		in := randomCanonicalInstruction(r)
		w, err := in.Encode()
		if err != nil {
			t.Logf("encode error for %+v: %v", in, err)
			return false
		}
		out, err := Decode(w)
		if err != nil {
			t.Logf("decode error for word %#x: %v", w, err)
			return false
		}
		if out != in {
			t.Logf("round trip mismatch:\n in=%+v\nout=%+v", in, out)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestEncodeRejectsOutOfRange(t *testing.T) {
	in := Instruction{Op: OpADD, Dest: 1, Src1: 2, Imm: ImmMax + 1, HasImm: true}
	if _, err := in.Encode(); err == nil {
		t.Error("Encode accepted out-of-range immediate")
	}
	in = Instruction{Op: OpADD, Dest: 70, Src1: 2, Src2: 3}
	if _, err := in.Encode(); err == nil {
		t.Error("Encode accepted invalid register")
	}
	in = Instruction{Op: OpLDQ, Dest: 1, Src1: 2, AliasClass: MaxAliasClass + 1}
	if _, err := in.Encode(); err == nil {
		t.Error("Encode accepted out-of-range alias class")
	}
	in = Instruction{Op: OpADD, Dest: 1, Src1: 2, Src2: 3, IDest: true, IDestIdx: 8}
	if _, err := in.Encode(); err == nil {
		t.Error("Encode accepted out-of-range internal index")
	}
}

func TestDecodeRejectsInvalidOpcode(t *testing.T) {
	if _, err := Decode(uint64(numOpcodes)); err == nil {
		t.Error("Decode accepted invalid opcode")
	}
}

func TestNegativeImmediateRoundTrip(t *testing.T) {
	for _, imm := range []int32{-1, -2, ImmMin, ImmMax, 0, 1} {
		in := Instruction{Op: OpLDA, Dest: 1, Src1: 2, Imm: imm, HasImm: true}
		in.Canonicalize()
		w, err := in.Encode()
		if err != nil {
			t.Fatalf("encode imm=%d: %v", imm, err)
		}
		out, err := Decode(w)
		if err != nil {
			t.Fatalf("decode imm=%d: %v", imm, err)
		}
		if out.Imm != imm {
			t.Errorf("imm %d round-tripped to %d", imm, out.Imm)
		}
	}
}

func TestInstructionString(t *testing.T) {
	cases := []struct {
		in   Instruction
		want string
	}{
		{Instruction{Op: OpADD, Dest: 1, Src1: 2, Src2: 3}, "add r1, r2, r3"},
		{Instruction{Op: OpADD, Dest: 1, Src1: 2, Imm: 7, HasImm: true}, "add r1, r2, #7"},
		{Instruction{Op: OpLDQ, Dest: 4, Src1: 5, Imm: 16}, "ldq r4, 16(r5)"},
		{Instruction{Op: OpSTQ, Src1: 4, Src2: 5, Imm: -8}, "stq r4, -8(r5)"},
		{Instruction{Op: OpBNE, Src1: 6, Imm: -3}, "bne r6, -3"},
		{Instruction{Op: OpNOP}, "nop"},
		{Instruction{Op: OpADD, Dest: 1, Src1: 2, Src2: 3, Start: true, T1: true, I1: 4, IDest: true, IDestIdx: 2}, "S| add i2, i4, r3"},
		{Instruction{Op: OpADD, Dest: 1, Src1: 2, Src2: 3, IDest: true, IDestIdx: 2, EDest: true}, "add i2/r1, r2, r3"},
	}
	for _, c := range cases {
		if got := c.in.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestProgramValidate(t *testing.T) {
	good := &Program{
		Name: "good",
		Instrs: []Instruction{
			{Op: OpLDIMM, Dest: 1, Imm: 5, HasImm: true},
			{Op: OpADD, Dest: 2, Src1: 1, Src2: 1},
			{Op: OpHALT},
		},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("valid program rejected: %v", err)
	}

	empty := &Program{Name: "empty"}
	if err := empty.Validate(); err == nil {
		t.Error("empty program accepted")
	}

	badTarget := good.Clone()
	badTarget.Instrs[1] = Instruction{Op: OpBNE, Src1: 1, Imm: 100}
	if err := badTarget.Validate(); err == nil {
		t.Error("out-of-range branch target accepted")
	}

	noHalt := &Program{
		Name:   "nohalt",
		Instrs: []Instruction{{Op: OpADD, Dest: 1, Src1: 2, Src2: 3}},
	}
	if err := noHalt.Validate(); err == nil {
		t.Error("program without halt accepted")
	}

	// CVTFI is FP-class but produces an integer: its destination is in the
	// integer bank. The generic "fp op writes integer register" rule used
	// to reject this, making float→int conversion unusable in any
	// validated program.
	cvtfi := &Program{
		Name: "cvtfi",
		Instrs: []Instruction{
			{Op: OpCVTIF, Dest: RegF0, Src1: 1},
			{Op: OpCVTFI, Dest: 2, Src1: RegF0},
			{Op: OpHALT},
		},
	}
	if err := cvtfi.Validate(); err != nil {
		t.Errorf("cvtfi with integer destination rejected: %v", err)
	}
	badCvtfi := cvtfi.Clone()
	badCvtfi.Instrs[1].Dest = RegF0 + 1
	if err := badCvtfi.Validate(); err == nil {
		t.Error("cvtfi writing an fp register accepted")
	}

	badFP := cvtfi.Clone()
	badFP.Instrs[0] = Instruction{Op: OpFADD, Dest: 3, Src1: RegF0, Src2: RegF0}
	if err := badFP.Validate(); err == nil {
		t.Error("fp op writing integer register accepted")
	}
}

func TestProgramEncodeDecodeAll(t *testing.T) {
	p := &Program{
		Name: "p",
		Instrs: []Instruction{
			{Op: OpLDIMM, Dest: 1, Imm: 42, HasImm: true},
			{Op: OpADD, Dest: 2, Src1: 1, Imm: 1, HasImm: true},
			{Op: OpSTQ, Src1: 2, Src2: 31, Imm: 0, AliasClass: 1},
			{Op: OpHALT},
		},
	}
	for i := range p.Instrs {
		p.Instrs[i].Canonicalize()
	}
	words, err := p.EncodeAll()
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeAll(words)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(p.Instrs) {
		t.Fatalf("length mismatch %d != %d", len(back), len(p.Instrs))
	}
	for i := range back {
		if back[i] != p.Instrs[i] {
			t.Errorf("instr %d mismatch: %+v != %+v", i, back[i], p.Instrs[i])
		}
	}
}

func TestProgramClone(t *testing.T) {
	p := &Program{
		Name:   "orig",
		Instrs: []Instruction{{Op: OpHALT}},
		Data:   []byte{1, 2, 3},
		Labels: map[string]int{"start": 0},
	}
	q := p.Clone()
	q.Instrs[0].Op = OpNOP
	q.Data[0] = 9
	q.Labels["start"] = 5
	if p.Instrs[0].Op != OpHALT || p.Data[0] != 1 || p.Labels["start"] != 0 {
		t.Error("Clone is not deep")
	}
}
