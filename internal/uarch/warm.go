package uarch

import (
	"sync"

	"braid/internal/isa"
	"braid/internal/mem"
)

// Cache warm-up replays ~16K accesses (the text segment plus the first
// megabyte of data space) against a cold hierarchy. The replayed sequence —
// and therefore the resulting cache state and hit/miss counters — depends
// only on the hierarchy configuration and the text-segment length, so sweeps
// that build hundreds of machines per configuration can warm one prototype
// and hand each machine a cheap deep copy.

type warmKey struct {
	cfg     mem.Config
	textLen int
}

var warmCache struct {
	sync.Mutex
	protos map[warmKey]*mem.Hierarchy
}

// warmHierarchy returns a freshly cloned, pre-warmed hierarchy for the
// program and configuration.
func warmHierarchy(p *isa.Program, cfg mem.Config) (*mem.Hierarchy, error) {
	key := warmKey{cfg: cfg, textLen: len(p.Instrs)}
	warmCache.Lock()
	defer warmCache.Unlock()
	proto, ok := warmCache.protos[key]
	if !ok {
		hier, err := mem.NewHierarchy(cfg)
		if err != nil {
			return nil, err
		}
		// Warm the caches to steady state: the paper measures whole
		// MinneSPEC runs where cold misses are negligible; our runs are
		// short enough that they would otherwise dominate. The
		// instruction side covers the text segment; the data side
		// pre-touches the first megabyte of the data space, so only
		// footprints larger than the L2 (the genuinely memory-bound
		// benchmarks) keep missing to memory.
		for i := 0; i < len(p.Instrs); i += 8 {
			hier.AccessI(instrAddr(i))
		}
		for off := uint64(0); off < 1<<20; off += 64 {
			hier.AccessD(isa.DataBase + off)
		}
		if warmCache.protos == nil {
			warmCache.protos = map[warmKey]*mem.Hierarchy{}
		}
		warmCache.protos[key] = hier
		proto = hier
	}
	return proto.Clone(), nil
}
