package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"braid/internal/uarch"
)

// faultyCfg arms the braid machine's test-only injector so the paranoid
// checker will panic mid-simulation.
func faultyCfg() uarch.Config {
	cfg := uarch.BraidConfig(8)
	cfg.Paranoid = true
	cfg.Inject = &uarch.FaultPlan{Kind: uarch.FaultBusyBit, AtCycle: 10}
	return cfg
}

// TestWorkerPoolSurvivesFault is the tentpole guarantee: one benchmark's
// simulator fault is contained — the other points finish with bit-identical
// IPCs at any worker count, the faulty point is omitted from the result map,
// the failure is recorded, and a crash artifact lands in the crash directory.
func TestWorkerPoolSurvivesFault(t *testing.T) {
	w := testSuite(t)
	clean := uarch.BraidConfig(8)
	var pts []Point
	for _, b := range w.Benches[:4] {
		pts = append(pts, Point{b, true, clean})
	}
	faulty := Point{w.Benches[0], true, faultyCfg()}
	pts = append(pts, faulty)

	// Serial baseline over a fresh cache, clean points only.
	serial := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	want := map[Point]float64{}
	for _, pt := range pts[:4] {
		v, err := serial.IPC(pt.Bench, pt.Braided, pt.Cfg)
		if err != nil {
			t.Fatal(err)
		}
		want[pt] = v
	}

	for _, jobs := range []int{1, 4, 8} {
		crash := t.TempDir()
		wj := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: jobs}
		wj.SetCrashDir(crash)
		got, err := wj.IPCAll(pts)
		if err != nil {
			t.Fatalf("j=%d: IPCAll aborted on a contained fault: %v", jobs, err)
		}
		if _, ok := got[faulty]; ok {
			t.Errorf("j=%d: faulty point present in results", jobs)
		}
		for pt, v := range want {
			g, ok := got[pt]
			if !ok {
				t.Errorf("j=%d: clean point %s missing", jobs, pt.Bench.Name)
				continue
			}
			if g != v {
				t.Errorf("j=%d: %s IPC %v != serial %v", jobs, pt.Bench.Name, g, v)
			}
		}
		fails := wj.Failures()
		if len(fails) != 1 {
			t.Fatalf("j=%d: %d failures recorded, want 1: %v", jobs, len(fails), fails)
		}
		var sf *uarch.SimFault
		if !errors.As(fails[0].Err, &sf) {
			t.Fatalf("j=%d: failure is %T, want *uarch.SimFault: %v", jobs, fails[0].Err, fails[0].Err)
		}
		if fails[0].Artifact == "" {
			t.Fatalf("j=%d: no crash artifact written", jobs)
		}
		if _, err := os.Stat(fails[0].Artifact); err != nil {
			t.Errorf("j=%d: artifact JSON missing: %v", jobs, err)
		}
		brd := fails[0].Artifact[:len(fails[0].Artifact)-len(".json")] + ".brd"
		if _, err := os.Stat(brd); err != nil {
			t.Errorf("j=%d: artifact program image missing: %v", jobs, err)
		}
	}
}

// TestCrashArtifactRoundTrip: the repro pair (program image + config JSON)
// reloads into the exact program and a replayable configuration — paranoid
// forced on, the process-local injector stripped.
func TestCrashArtifactRoundTrip(t *testing.T) {
	w := testSuite(t)
	b := w.Benches[0]
	crash := t.TempDir()
	ws := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	ws.SetCrashDir(crash)
	_, err := ws.IPC(b, true, faultyCfg())
	if err == nil {
		t.Fatal("injected fault did not surface")
	}
	fails := ws.Failures()
	if len(fails) != 1 || fails[0].Artifact == "" {
		t.Fatalf("no artifact recorded: %v", fails)
	}

	art, p, err := ReadCrashArtifact(fails[0].Artifact)
	if err != nil {
		t.Fatal(err)
	}
	if art.Bench != b.Name || !art.Braided {
		t.Errorf("artifact names %s braided=%v, want %s braided=true", art.Bench, art.Braided, b.Name)
	}
	if art.Panic == "" || art.Cycle < 10 {
		t.Errorf("artifact missing fault detail: cycle=%d panic=%q", art.Cycle, art.Panic)
	}
	if !art.Config.Paranoid {
		t.Error("artifact config must force Paranoid for the replay")
	}
	if art.Config.Inject != nil {
		t.Error("artifact config must not carry the process-local injector")
	}
	if len(p.Instrs) != len(b.Braided.Instrs) {
		t.Fatalf("program image round trip: %d instructions, want %d", len(p.Instrs), len(b.Braided.Instrs))
	}
	// The artifact's config is runnable as-is: the replay completes (the
	// corruption was injected, so a clean engine passes its own audit).
	if _, err := uarch.SimulateChecked(context.Background(), p, art.Config); err != nil {
		t.Fatalf("replaying artifact config: %v", err)
	}
	if filepath.Dir(art.Program) != crash {
		t.Errorf("program image %s not in crash dir %s", art.Program, crash)
	}
}

// TestTransientErrorsNotMemoized: a timed-out simulation must not poison its
// memo key — clearing the timeout and asking again reruns and succeeds.
func TestTransientErrorsNotMemoized(t *testing.T) {
	w := testSuite(t)
	b := w.Benches[0]
	cfg := uarch.BraidConfig(8)
	ws := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	ws.SetTimeout(time.Nanosecond)
	_, err := ws.IPC(b, true, cfg)
	if !errors.Is(err, uarch.ErrTimeout) {
		t.Fatalf("want ErrTimeout, got %v", err)
	}
	ws.SetTimeout(0)
	v, err := ws.IPC(b, true, cfg)
	if err != nil {
		t.Fatalf("timeout poisoned the memo key: %v", err)
	}
	if v <= 0 {
		t.Fatalf("retried IPC %v", v)
	}
	if runs := ws.SimRuns(); runs != 2 {
		t.Errorf("ran %d simulations, want 2 (timeout evicted, success memoized)", runs)
	}
	// The success IS memoized: a third ask is a cache hit.
	if _, err := ws.IPC(b, true, cfg); err != nil {
		t.Fatal(err)
	}
	if runs := ws.SimRuns(); runs != 2 {
		t.Errorf("successful result not memoized: %d runs", runs)
	}
}

// TestDeterministicFaultsStayMemoized: a simulator fault is deterministic, so
// re-asking the same point must replay the memoized error, not re-simulate.
func TestDeterministicFaultsStayMemoized(t *testing.T) {
	w := testSuite(t)
	b := w.Benches[0]
	cfg := faultyCfg()
	ws := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	_, err1 := ws.IPC(b, true, cfg)
	_, err2 := ws.IPC(b, true, cfg)
	var sf *uarch.SimFault
	if !errors.As(err1, &sf) || !errors.As(err2, &sf) {
		t.Fatalf("want *SimFault twice, got %v / %v", err1, err2)
	}
	if runs := ws.SimRuns(); runs != 1 {
		t.Errorf("deterministic fault re-simulated: %d runs, want 1", runs)
	}
}

// TestRetryReruns: Retry evicts a finished cell — success or deterministic
// failure — and executes the point again.
func TestRetryReruns(t *testing.T) {
	w := testSuite(t)
	b := w.Benches[0]
	cfg := uarch.BraidConfig(8)
	ws := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	v1, err := ws.IPC(b, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := ws.Retry(Point{b, true, cfg})
	if err != nil {
		t.Fatal(err)
	}
	if v1 != v2 {
		t.Errorf("deterministic simulator: retry IPC %v != first %v", v2, v1)
	}
	if runs := ws.SimRuns(); runs != 2 {
		t.Errorf("Retry did not rerun: %d simulations", runs)
	}
}

// TestCancellationAbortsBatch: whole-suite cancellation is NOT contained —
// IPCAll reports it so the caller can stop cleanly (and resume later).
func TestCancellationAbortsBatch(t *testing.T) {
	w := testSuite(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ws := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 4}
	ws.SetContext(ctx)
	var pts []Point
	for _, b := range w.Benches[:4] {
		pts = append(pts, Point{b, true, uarch.BraidConfig(8)})
	}
	_, err := ws.IPCAll(pts)
	if !errors.Is(err, uarch.ErrCanceled) {
		t.Fatalf("want ErrCanceled, got %v", err)
	}
}

// TestCheckpointResume: points simulated under -checkpoint reload in a fresh
// process-equivalent (a fresh Workloads over the same suite) bit-identically
// and without re-simulating. This is what makes kill -INT + -resume produce
// identical final output.
func TestCheckpointResume(t *testing.T) {
	w := testSuite(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	var pts []Point
	for _, b := range w.Benches[:3] {
		pts = append(pts, Point{b, true, uarch.BraidConfig(8)}, Point{b, false, uarch.OutOfOrderConfig(8)})
	}

	first := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 4}
	if _, err := first.OpenCheckpoint(ckpt, false); err != nil {
		t.Fatal(err)
	}
	want, err := first.IPCAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if len(want) != len(pts) {
		t.Fatalf("baseline incomplete: %d/%d points", len(want), len(pts))
	}

	second := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 4}
	restored, err := second.OpenCheckpoint(ckpt, true)
	if err != nil {
		t.Fatal(err)
	}
	defer second.CloseCheckpoint()
	if restored != len(pts) {
		t.Fatalf("restored %d points, want %d", restored, len(pts))
	}
	got, err := second.IPCAll(pts)
	if err != nil {
		t.Fatal(err)
	}
	for pt, v := range want {
		if got[pt] != v {
			t.Errorf("%s braided=%v: resumed IPC %v != original %v", pt.Bench.Name, pt.Braided, got[pt], v)
		}
	}
	if runs := second.SimRuns(); runs != 0 {
		t.Errorf("resume re-simulated %d points; the JSONL Config must round-trip to the exact memo key", runs)
	}
}

// TestCheckpointTornTail: a crash mid-append leaves a torn final line; resume
// must keep every whole record and ignore the tear.
func TestCheckpointTornTail(t *testing.T) {
	w := testSuite(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	b := w.Benches[0]

	first := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	if _, err := first.OpenCheckpoint(ckpt, false); err != nil {
		t.Fatal(err)
	}
	if _, err := first.IPC(b, true, uarch.BraidConfig(8)); err != nil {
		t.Fatal(err)
	}
	if err := first.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"bench":"gcc","braided":true,"ipc":1.2`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	second := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	restored, err := second.OpenCheckpoint(ckpt, true)
	if err != nil {
		t.Fatalf("torn tail must be tolerated: %v", err)
	}
	defer second.CloseCheckpoint()
	if restored != 1 {
		t.Fatalf("restored %d records, want the 1 whole one", restored)
	}
	if _, err := second.IPC(b, true, uarch.BraidConfig(8)); err != nil {
		t.Fatal(err)
	}
	if runs := second.SimRuns(); runs != 0 {
		t.Errorf("whole record before the tear was not restored (%d runs)", runs)
	}
}

// TestCheckpointCorruptMiddleRejected: corruption anywhere but the final line
// is not a crash signature — resume must refuse it loudly.
func TestCheckpointCorruptMiddleRejected(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "sweep.jsonl")
	content := `{"bench":"gcc","braided":true,"ipc":1.2,"cfg":` + "\n" +
		`{"bench":"mcf","braided":false,"ipc":0.9,"cfg":{}}` + "\n"
	if err := os.WriteFile(ckpt, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	ws := &Workloads{memo: map[memoKey]*memoCell{}, jobs: 1}
	if _, err := ws.OpenCheckpoint(ckpt, true); err == nil {
		t.Fatal("mid-file corruption silently accepted")
	}
}

// TestFaultyPointsNotCheckpointed: injected-fault configs are process-local;
// even a (hypothetically) successful injected run must not be persisted.
func TestFaultyPointsNotCheckpointed(t *testing.T) {
	w := testSuite(t)
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")
	ws := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	if _, err := ws.OpenCheckpoint(ckpt, false); err != nil {
		t.Fatal(err)
	}
	ws.IPC(w.Benches[0], true, faultyCfg())
	ws.CloseCheckpoint()
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != 0 {
		t.Errorf("faulty point leaked into the checkpoint: %q", data)
	}
}

// TestCheckpointDoubleResumeLastWins: a kill → resume → kill → resume cycle
// appends keys the checkpoint already holds (here forced with Retry, which
// re-executes a restored point). Reload must deduplicate repeated keys with
// last-write-wins, counting unique keys — not lines — as restored.
func TestCheckpointDoubleResumeLastWins(t *testing.T) {
	w := testSuite(t)
	b := w.Benches[0]
	cfg := uarch.BraidConfig(8)
	pt := Point{b, true, cfg}
	ckpt := filepath.Join(t.TempDir(), "sweep.jsonl")

	first := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	if _, err := first.OpenCheckpoint(ckpt, false); err != nil {
		t.Fatal(err)
	}
	want, err := first.IPC(b, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := first.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}

	// Second process: resume, then re-execute the same point so the file
	// gains a duplicate line for the key.
	second := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	if restored, err := second.OpenCheckpoint(ckpt, true); err != nil || restored != 1 {
		t.Fatalf("first resume: restored=%d err=%v, want 1, nil", restored, err)
	}
	if _, err := second.Retry(pt); err != nil {
		t.Fatal(err)
	}
	if err := second.CloseCheckpoint(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if lines := len(bytes.Fields(data)); lines != 2 {
		t.Fatalf("checkpoint holds %d records, want the key twice", lines)
	}

	// Append a forged newest record with a distinguishable value: if reload
	// is last-write-wins, this is the value a third resume must serve.
	forged := ckptRecord{Bench: b.Name, Braided: true, IPC: want + 1024, Cfg: cfg}
	raw, err := json.Marshal(&forged)
	if err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(ckpt, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(append(raw, '\n')); err != nil {
		t.Fatal(err)
	}
	f.Close()

	third := &Workloads{Benches: w.Benches, memo: map[memoKey]*memoCell{}, jobs: 1}
	restored, err := third.OpenCheckpoint(ckpt, true)
	if err != nil {
		t.Fatal(err)
	}
	defer third.CloseCheckpoint()
	if restored != 1 {
		t.Fatalf("double resume restored %d, want 1 unique key", restored)
	}
	got, err := third.IPC(b, true, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got != want+1024 {
		t.Errorf("resume served %v; last record (%v) must win", got, want+1024)
	}
	if runs := third.SimRuns(); runs != 0 {
		t.Errorf("deduplicated resume still re-simulated %d points", runs)
	}
}
