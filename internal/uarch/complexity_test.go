package uarch

import (
	"strings"
	"testing"
)

func TestComplexityOrdering(t *testing.T) {
	braid := EstimateComplexity(BraidConfig(8))
	ooo := EstimateComplexity(OutOfOrderConfig(8))
	io := EstimateComplexity(InOrderConfig(8))
	dep := EstimateComplexity(DepSteerConfig(8))

	// The paper's §5.1 claims, as orderings of the proxies.
	if braid.RFArea >= ooo.RFArea/10 {
		t.Errorf("braid external RF area %.0f not far below out-of-order %.0f", braid.RFArea, ooo.RFArea)
	}
	if braid.SchedulerCAM != 0 {
		t.Error("braid core has broadcast scheduler cost")
	}
	if ooo.SchedulerCAM == 0 {
		t.Error("out-of-order core has no broadcast scheduler cost")
	}
	if braid.BypassWires >= ooo.BypassWires {
		t.Errorf("braid bypass %.0f not below out-of-order %.0f", braid.BypassWires, ooo.BypassWires)
	}
	if braid.Checkpoint >= ooo.Checkpoint {
		t.Errorf("braid checkpoint state %.0f not below out-of-order %.0f", braid.Checkpoint, ooo.Checkpoint)
	}
	// "Almost in-order complexity": the braid core's partitioned, thinly
	// ported register files leave it at or below even the in-order
	// machine's fully ported architectural file, and far below the
	// out-of-order and steering designs.
	if braid.Total() > io.Total() {
		t.Errorf("braid total %.0f above in-order %.0f", braid.Total(), io.Total())
	}
	if braid.Total() > ooo.Total()/3 {
		t.Errorf("braid total %.0f not well below out-of-order %.0f", braid.Total(), ooo.Total())
	}
	if dep.Total() < braid.Total() {
		t.Errorf("dep-steer total %.0f below braid %.0f (it keeps the monolithic RF)", dep.Total(), braid.Total())
	}
}

func TestComplexityReport(t *testing.T) {
	r := ComplexityReport(8)
	for _, want := range []string{"in-order", "braid", "out-of-order", "ext-RF-area", "%"} {
		if !strings.Contains(r, want) {
			t.Errorf("report missing %q:\n%s", want, r)
		}
	}
}
