package cfg

import (
	"testing"

	"braid/internal/asm"
	"braid/internal/isa"
)

const loopSrc = `
	ldimm r1, #10
	ldimm r2, #0
loop:
	add   r2, r2, r1
	sub   r1, r1, #1
	bgt   r1, loop
	halt
`

func mustParse(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := asm.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestBuildBlocks(t *testing.T) {
	p := mustParse(t, loopSrc)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [0,2) preamble, [2,5) loop body, [5,6) halt.
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(g.Blocks))
	}
	want := [][2]int{{0, 2}, {2, 5}, {5, 6}}
	for i, w := range want {
		if g.Blocks[i].Start != w[0] || g.Blocks[i].End != w[1] {
			t.Errorf("block %d = [%d,%d), want [%d,%d)", i, g.Blocks[i].Start, g.Blocks[i].End, w[0], w[1])
		}
	}
	// Edges: 0->1, 1->1 (taken), 1->2 (fallthrough).
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != 1 {
		t.Errorf("block 0 succs = %v", g.Blocks[0].Succs)
	}
	s := g.Blocks[1].Succs
	if len(s) != 2 || !(contains(s, 1) && contains(s, 2)) {
		t.Errorf("block 1 succs = %v", s)
	}
	if len(g.Blocks[2].Succs) != 0 {
		t.Errorf("halt block succs = %v", g.Blocks[2].Succs)
	}
	if !contains(g.Blocks[1].Preds, 0) || !contains(g.Blocks[1].Preds, 1) {
		t.Errorf("block 1 preds = %v", g.Blocks[1].Preds)
	}
	for i := range p.Instrs {
		b := g.Blocks[g.BlockOf[i]]
		if i < b.Start || i >= b.End {
			t.Errorf("BlockOf[%d] = %d is wrong", i, g.BlockOf[i])
		}
	}
}

func contains(xs []int, v int) bool {
	for _, x := range xs {
		if x == v {
			return true
		}
	}
	return false
}

func TestBuildUncondBranch(t *testing.T) {
	p := mustParse(t, `
	ldimm r1, #1
	br    end
	add   r1, r1, #1
end:
	halt
`)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: [0,2), [2,3) dead, [3,4).
	if len(g.Blocks) != 3 {
		t.Fatalf("blocks = %d, want 3", len(g.Blocks))
	}
	if len(g.Blocks[0].Succs) != 1 || g.Blocks[0].Succs[0] != 2 {
		t.Errorf("br block succs = %v", g.Blocks[0].Succs)
	}
}

func TestLiveness(t *testing.T) {
	p := mustParse(t, loopSrc)
	g, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	lv := ComputeLiveness(g)
	// r1 and r2 are live around the loop: live-in of block 1 includes both.
	if !lv.LiveIn[1].Has(1) || !lv.LiveIn[1].Has(2) {
		t.Errorf("loop live-in missing r1/r2: %b", lv.LiveIn[1])
	}
	// Nothing is live out of the halt block.
	if lv.LiveOut[2] != 0 {
		t.Errorf("halt live-out = %b, want empty", lv.LiveOut[2])
	}
	// Loop block live-out feeds itself: r1, r2 live out of block 1.
	if !lv.LiveOut[1].Has(1) || !lv.LiveOut[1].Has(2) {
		t.Errorf("loop live-out = %b", lv.LiveOut[1])
	}
	// Block 0 defines r1, r2 so its live-in is empty.
	if lv.LiveIn[0] != 0 {
		t.Errorf("entry live-in = %b, want empty", lv.LiveIn[0])
	}
}

func TestLivenessKill(t *testing.T) {
	// r3 is written then read in the same block; not live-in.
	p := mustParse(t, `
	ldimm r3, #1
	add   r4, r3, #2
	halt
`)
	g, _ := Build(p)
	lv := ComputeLiveness(g)
	if lv.LiveIn[0].Has(3) {
		t.Error("killed register reported live-in")
	}
}

func TestRegSet(t *testing.T) {
	var s RegSet
	s = s.Add(3).Add(40).Add(isa.RegZero) // zero register is never tracked
	if !s.Has(3) || !s.Has(40) {
		t.Error("Add/Has broken")
	}
	if s.Has(isa.RegZero) {
		t.Error("zero register tracked")
	}
	if s.Count() != 2 {
		t.Errorf("Count = %d, want 2", s.Count())
	}
	if s.Has(isa.RegNone) {
		t.Error("RegNone tracked")
	}
}

func TestBlockDefUse(t *testing.T) {
	p := mustParse(t, `
	ldimm r1, #5
	add   r2, r1, #1
	add   r3, r1, r2
	halt
`)
	g, _ := Build(p)
	du, err := BlockDefUse(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Instr 1 reads r1 produced at 0.
	if len(du.Producer[1]) != 1 || du.Producer[1][0] != 0 || du.SrcReg[1][0] != 1 {
		t.Errorf("instr 1 producers = %v %v", du.Producer[1], du.SrcReg[1])
	}
	// Instr 2 reads r1 (prod 0) and r2 (prod 1).
	if len(du.Producer[2]) != 2 || du.Producer[2][0] != 0 || du.Producer[2][1] != 1 {
		t.Errorf("instr 2 producers = %v", du.Producer[2])
	}
}

func TestBlockDefUseExternalInput(t *testing.T) {
	p := mustParse(t, `
	add r2, r1, #1
	halt
`)
	g, _ := Build(p)
	du, err := BlockDefUse(g, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(du.Producer[0]) != 1 || du.Producer[0][0] != -1 {
		t.Errorf("external input producer = %v, want [-1]", du.Producer[0])
	}
}

func TestBuildRejectsEmpty(t *testing.T) {
	if _, err := Build(&isa.Program{}); err == nil {
		t.Error("empty program accepted")
	}
}
