package uarch

import (
	"fmt"
	"strings"
)

// Complexity estimates the execution-core structure costs the paper's §5.1
// discusses qualitatively, using the standard first-order proxies the paper
// cites: register-file area grows with bits × ports² (Farkas et al.; Zyuban
// & Kogge — doubling ports doubles both bit-lines and word-lines), scheduler
// cost with entries × broadcast destinations (Palacharla), and bypass cost
// with levels × values × consumers. The absolute units are arbitrary; the
// ratios between machines are the point.
type Complexity struct {
	RFArea        float64 `json:"rf_area"`        // external register file: bits × (R+W)²
	InternalArea  float64 `json:"internal_area"`  // BEU-internal register files, same proxy
	SchedulerCAM  float64 `json:"scheduler_cam"`  // broadcast-match entries × tag comparisons
	SchedulerFIFO float64 `json:"scheduler_fifo"` // FIFO entries (no broadcast)
	BypassWires   float64 `json:"bypass_wires"`   // levels × values/cycle × consuming inputs
	RenamePorts   float64 `json:"rename_ports"`   // rename-table lookup/write ports
	Checkpoint    float64 `json:"checkpoint"`     // registers captured per checkpoint
}

// Total sums the proxies (unitless; for coarse comparisons only).
func (c Complexity) Total() float64 {
	return c.RFArea + c.InternalArea + c.SchedulerCAM + c.SchedulerFIFO +
		c.BypassWires + c.RenamePorts + c.Checkpoint
}

const regBits = 64

// EstimateComplexity computes the proxies for a configuration.
func EstimateComplexity(cfg Config) Complexity {
	var c Complexity
	rw := float64(cfg.RFReadPorts + cfg.RFWritePorts)
	c.RFArea = float64(cfg.RFEntries) * regBits * rw * rw

	switch cfg.Core {
	case CoreBraid:
		// Per-BEU internal files: 4R/2W over 8 entries.
		irw := 6.0
		c.InternalArea = float64(cfg.BEUs) * 8 * regBits * irw * irw
		// FIFO schedulers: no tag broadcast; the busy-bit vector is
		// RFEntries bits per BEU.
		c.SchedulerFIFO = float64(cfg.BEUs) * float64(cfg.BEUFIFO)
		c.SchedulerCAM = 0
		c.BypassWires = float64(cfg.BypassLevels*cfg.BypassValues) * float64(cfg.TotalFUs*2)
		c.RenamePorts = float64(cfg.RenameSrc + cfg.AllocWidth)
		// Checkpoints capture only the external map (internal values
		// die at braid boundaries, §3.4).
		c.Checkpoint = float64(cfg.RFEntries)
	case CoreOutOfOrder:
		// Distributed out-of-order windows: every entry compares its
		// two source tags against every result broadcast per cycle.
		entries := float64(cfg.Schedulers * cfg.SchedEntries)
		c.SchedulerCAM = entries * 2 * float64(cfg.IssueWidth)
		c.BypassWires = float64(cfg.BypassLevels*cfg.BypassValues) * float64(cfg.TotalFUs*2)
		c.RenamePorts = float64(cfg.RenameSrc + cfg.AllocWidth)
		c.Checkpoint = float64(cfg.RFEntries)
	case CoreDepSteer:
		c.SchedulerFIFO = float64(cfg.SteerFIFOs * cfg.SteerFIFODeep)
		c.BypassWires = float64(cfg.BypassLevels*cfg.BypassValues) * float64(cfg.TotalFUs*2)
		c.RenamePorts = float64(cfg.RenameSrc + cfg.AllocWidth)
		c.Checkpoint = float64(cfg.RFEntries)
	case CoreInOrder:
		c.BypassWires = float64(cfg.BypassLevels*cfg.BypassValues) * float64(cfg.TotalFUs*2)
		c.RenamePorts = float64(cfg.RenameSrc + cfg.AllocWidth)
		c.Checkpoint = 0 // in-order commit needs no map checkpoints
	}
	return c
}

// ComplexityReport renders a side-by-side table for the four 8-wide machines
// (the paper's §5.1 comparison, quantified with the proxies above).
func ComplexityReport(width int) string {
	inorder := InOrderConfig(width)
	// The in-order machine does not rename: it carries only the
	// architectural file (64 registers), fully ported.
	inorder.RFEntries = 64
	rows := []struct {
		name string
		cfg  Config
	}{
		{"in-order", inorder},
		{"dep-steer", DepSteerConfig(width)},
		{"braid", BraidConfig(width)},
		{"out-of-order", OutOfOrderConfig(width)},
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %14s %14s %12s %10s %10s %8s %12s %14s\n",
		"core", "ext-RF-area", "int-RF-area", "sched-CAM", "FIFO", "bypass", "rename", "checkpoint", "total")
	for _, r := range rows {
		c := EstimateComplexity(r.cfg)
		fmt.Fprintf(&b, "%-14s %14.0f %14.0f %12.0f %10.0f %10.0f %8.0f %12.0f %14.0f\n",
			r.name, c.RFArea, c.InternalArea, c.SchedulerCAM, c.SchedulerFIFO,
			c.BypassWires, c.RenamePorts, c.Checkpoint, c.Total())
	}
	braid := EstimateComplexity(BraidConfig(width))
	ooo := EstimateComplexity(OutOfOrderConfig(width))
	fmt.Fprintf(&b, "\nbraid execution core at %.1f%% of the out-of-order core's proxy area\n",
		100*braid.Total()/ooo.Total())
	fmt.Fprintf(&b, "(external register file alone: %.1f%%; no broadcast scheduler at all)\n",
		100*braid.RFArea/ooo.RFArea)
	return b.String()
}
