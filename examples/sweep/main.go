// Sweep: the Figure 6 sensitivity study on one benchmark — how small can the
// braid machine's external register file be? The paper's answer: 8 entries
// behave like 256, because internal values never touch it.
//
//	go run ./examples/sweep [benchmark]
package main

import (
	"fmt"
	"log"
	"os"

	"braid/internal/braid"
	"braid/internal/uarch"
	"braid/internal/workload"
)

func main() {
	name := "vortex"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	prof, ok := workload.ProfileByName(name)
	if !ok {
		log.Fatalf("unknown benchmark %q", name)
	}
	prog, err := workload.Generate(prof, 400)
	if err != nil {
		log.Fatal(err)
	}
	res, err := braid.Compile(prog, braid.Options{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("=== %s: braid external register file sweep (paper Figure 6) ===\n\n", name)
	base := 0.0
	for _, entries := range []int{256, 64, 32, 16, 8, 4} {
		cfg := uarch.BraidConfig(8)
		cfg.RFEntries = entries
		st, err := uarch.Simulate(res.Prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = st.IPC()
		}
		bar := ""
		for i := 0.0; i < st.IPC()/base*40; i++ {
			bar += "#"
		}
		fmt.Printf("%4d entries: IPC %6.3f  (%5.1f%% of 256)  %s\n",
			entries, st.IPC(), 100*st.IPC()/base, bar)
	}
	fmt.Println("\nAnd the conventional out-of-order machine on the same benchmark")
	fmt.Println("(paper Figure 5) — it needs far more registers:")
	base = 0.0
	for _, entries := range []int{256, 64, 32, 16, 8} {
		cfg := uarch.OutOfOrderConfig(8)
		cfg.RFEntries = entries
		st, err := uarch.Simulate(prog, cfg)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = st.IPC()
		}
		bar := ""
		for i := 0.0; i < st.IPC()/base*40; i++ {
			bar += "#"
		}
		fmt.Printf("%4d entries: IPC %6.3f  (%5.1f%% of 256)  %s\n",
			entries, st.IPC(), 100*st.IPC()/base, bar)
	}
}
