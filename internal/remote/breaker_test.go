package remote

import (
	"testing"
	"time"
)

func TestBreakerConsecutiveTripAndRecovery(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(breakerConfig{threshold: 3, window: 8, rate: 0.5, cooldown: time.Second})

	if !b.allow(now) {
		t.Fatal("a fresh breaker must allow requests")
	}
	b.failure(now)
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("two failures (below threshold) must not trip")
	}
	b.failure(now)
	if b.allow(now) {
		t.Fatal("three consecutive failures must trip the breaker")
	}
	if st, trips, _ := b.snapshot(); st != "open" || trips != 1 {
		t.Fatalf("state %s trips %d, want open 1", st, trips)
	}

	// Cooldown not elapsed: still short-circuiting.
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("breaker allowed a request mid-cooldown")
	}

	// Cooldown elapsed: exactly one half-open probe is granted.
	now = now.Add(1100 * time.Millisecond)
	if !b.allow(now) {
		t.Fatal("cooldown elapsed; a probe must be allowed")
	}
	if st, _, probes := b.snapshot(); st != "half-open" || probes != 1 {
		t.Fatalf("state %s probes %d, want half-open 1", st, probes)
	}
	if b.allow(now) {
		t.Fatal("a second concurrent probe must be refused")
	}

	// Probe success closes the breaker.
	b.success()
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state after probe success = %s, want closed", st)
	}
	if !b.allow(now) {
		t.Fatal("closed breaker must allow requests")
	}

	// The failure run restarted: it takes threshold fresh failures to re-trip.
	b.failure(now)
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("failure run must reset after recovery")
	}
}

func TestBreakerProbeFailureReopens(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(breakerConfig{threshold: 2, window: 8, rate: 0.9, cooldown: time.Second})
	b.failure(now)
	b.failure(now) // trips
	now = now.Add(2 * time.Second)
	if !b.allow(now) {
		t.Fatal("probe not granted after cooldown")
	}
	b.failure(now) // the probe fails
	if st, trips, _ := b.snapshot(); st != "open" || trips != 2 {
		t.Fatalf("state %s trips %d after failed probe, want open 2", st, trips)
	}
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("failed probe must restart the cooldown")
	}
	now = now.Add(2 * time.Second)
	if !b.allow(now) {
		t.Fatal("another probe must be granted after the second cooldown")
	}
	b.success()
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state = %s, want closed", st)
	}
}

func TestBreakerProbeExpiryPreventsDeadlock(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(breakerConfig{threshold: 1, window: 8, rate: 0.9, cooldown: time.Second})
	b.failure(now) // trips
	now = now.Add(2 * time.Second)
	if !b.allow(now) {
		t.Fatal("probe not granted")
	}
	// The probe's caller dies without reporting. Within the cooldown the
	// probe slot stays held...
	if b.allow(now.Add(500 * time.Millisecond)) {
		t.Fatal("probe slot double-granted before expiry")
	}
	// ...but after a cooldown the unreported probe expires and another is
	// granted, so a lost caller can never wedge the breaker.
	if !b.allow(now.Add(1500 * time.Millisecond)) {
		t.Fatal("expired probe must free the slot")
	}
}

func TestBreakerRateTrip(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(breakerConfig{threshold: 100, window: 4, rate: 0.5, cooldown: time.Second})
	// Alternating failure/success never builds a consecutive run, but fills
	// the window at a 50% failure rate.
	b.failure(now)
	b.success()
	b.failure(now)
	if !b.allow(now) {
		t.Fatal("partial window must not rate-trip")
	}
	b.success() // 4th outcome: window full at rate 0.5
	b.failure(now)
	if b.allow(now) {
		t.Fatal("full window at the trip rate must open the breaker")
	}
}

func TestBreakerEjectAndReinstate(t *testing.T) {
	now := time.Unix(0, 0)
	b := newBreaker(breakerConfig{cooldown: time.Second})
	b.eject(now)
	if b.allow(now) {
		t.Fatal("ejected breaker must short-circuit")
	}
	if st, trips, _ := b.snapshot(); st != "open" || trips != 1 {
		t.Fatalf("state %s trips %d, want open 1", st, trips)
	}
	// Repeated ejects refresh the cooldown but are one trip.
	now = now.Add(900 * time.Millisecond)
	b.eject(now)
	if _, trips, _ := b.snapshot(); trips != 1 {
		t.Fatalf("re-eject counted as a new trip")
	}
	if b.allow(now.Add(900 * time.Millisecond)) {
		t.Fatal("refreshed eject must extend the short-circuit")
	}
	b.reinstate()
	if !b.allow(now) {
		t.Fatal("reinstated breaker must allow requests")
	}
	if st, _, _ := b.snapshot(); st != "closed" {
		t.Fatalf("state = %s, want closed", st)
	}
}
