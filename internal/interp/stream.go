package interp

import "braid/internal/isa"

// Stream is the exported step-stream: a pull-based iterator over one
// program execution that yields every instruction's architectural effects
// in order. It exists for lockstep consumers — internal/check drives one
// Stream per simulated core and compares each uarch retire event against
// the StepInfo the reference interpreter produced for the same dynamic
// position — but is equally usable for trace export.
type Stream struct {
	M *Machine // the underlying machine; final state readable after EOF

	info  StepInfo
	limit uint64
}

// NewStream builds a stream over p with a step budget: Next returns
// ErrMaxSteps once maxSteps instructions have executed without a HALT.
func NewStream(p *isa.Program, maxSteps uint64) *Stream {
	return &Stream{M: New(p), limit: maxSteps}
}

// Next executes one instruction and returns its effects. The returned
// StepInfo is valid until the following call. After HALT retires it
// returns (nil, nil); the machine's final state is then available via
// s.M.Final().
func (s *Stream) Next() (*StepInfo, error) {
	if s.M.Halted {
		return nil, nil
	}
	if s.M.Steps >= s.limit {
		return nil, ErrMaxSteps
	}
	if err := s.M.Step(&s.info); err != nil {
		return nil, err
	}
	return &s.info, nil
}

// Done reports whether the program has halted.
func (s *Stream) Done() bool { return s.M.Halted }
