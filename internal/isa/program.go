package isa

import "fmt"

// DataBase is the virtual address where a program's data segment begins.
// BRD64 programs address memory exclusively through their data segment; the
// workload generator and the hand-written kernels derive every pointer from
// this base.
const DataBase = 0x10000

// Program is a complete BRD64 program: a flat instruction sequence (entry at
// index 0, terminated by HALT) plus an initialized data segment.
type Program struct {
	Name   string
	Instrs []Instruction
	// Data is the initial content of the data segment, loaded at DataBase.
	Data []byte
	// Labels optionally maps symbolic names to instruction indices
	// (populated by the assembler; informational only).
	Labels map[string]int
	// FP marks the program as floating-point dominated. It only affects
	// how results are grouped in reports (the paper separates integer and
	// floating-point benchmark averages).
	FP bool
}

// Clone returns a deep copy of p.
func (p *Program) Clone() *Program {
	q := &Program{Name: p.Name, FP: p.FP}
	q.Instrs = make([]Instruction, len(p.Instrs))
	copy(q.Instrs, p.Instrs)
	q.Data = make([]byte, len(p.Data))
	copy(q.Data, p.Data)
	if p.Labels != nil {
		q.Labels = make(map[string]int, len(p.Labels))
		for k, v := range p.Labels {
			q.Labels[k] = v
		}
	}
	return q
}

// Validate checks static well-formedness: valid opcodes, registers of the
// right bank, encodable immediates, branch targets in range, and a HALT on
// every fall-through path end. It returns the first problem found.
func (p *Program) Validate() error {
	if len(p.Instrs) == 0 {
		return fmt.Errorf("program %q: empty", p.Name)
	}
	for i := range p.Instrs {
		in := &p.Instrs[i]
		if !in.Op.Valid() {
			return fmt.Errorf("program %q instr %d: invalid opcode", p.Name, i)
		}
		if _, err := in.Encode(); err != nil {
			return fmt.Errorf("program %q instr %d: %v", p.Name, i, err)
		}
		if in.IsBranch() {
			t := in.BranchTarget(i)
			if t < 0 || t >= len(p.Instrs) {
				return fmt.Errorf("program %q instr %d (%s): branch target %d out of range", p.Name, i, in, t)
			}
		}
		if in.WritesReg() && !in.IDest && !in.Dest.Valid() {
			return fmt.Errorf("program %q instr %d (%s): missing destination", p.Name, i, in)
		}
		info := in.Info()
		// Register-bank checks: FP ops use f registers for data
		// operands; memory addressing always uses integer registers.
		// CVTFI is the one FP-class op whose result is an integer, so its
		// destination lives in the integer bank — without this carve-out
		// no assembled program could use float→int conversion at all.
		if in.Op == OpCVTFI {
			if !in.IDest && in.Dest.IsFP() {
				return fmt.Errorf("program %q instr %d (%s): cvtfi writes fp register", p.Name, i, in)
			}
		} else if info.FP && info.HasDest && !in.IDest && !in.Dest.IsFP() {
			return fmt.Errorf("program %q instr %d (%s): fp op writes integer register", p.Name, i, in)
		}
	}
	last := &p.Instrs[len(p.Instrs)-1]
	if !last.IsHalt() && !last.IsUncondBranch() {
		return fmt.Errorf("program %q: does not end in halt or branch", p.Name)
	}
	return nil
}

// EncodeAll encodes every instruction, returning the binary image of the text
// segment. It is the moral equivalent of the paper's binary translation tool
// output.
func (p *Program) EncodeAll() ([]uint64, error) {
	words := make([]uint64, len(p.Instrs))
	for i := range p.Instrs {
		w, err := p.Instrs[i].Encode()
		if err != nil {
			return nil, fmt.Errorf("instr %d: %w", i, err)
		}
		words[i] = w
	}
	return words, nil
}

// DecodeAll rebuilds a program's instructions from encoded words.
func DecodeAll(words []uint64) ([]Instruction, error) {
	instrs := make([]Instruction, len(words))
	for i, w := range words {
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("instr %d: %w", i, err)
		}
		instrs[i] = in
	}
	return instrs, nil
}

// Listing renders the program as annotated assembly, one instruction per
// line, with instruction indices.
func (p *Program) Listing() string {
	s := ""
	for i := range p.Instrs {
		s += fmt.Sprintf("%5d: %s\n", i, p.Instrs[i].String())
	}
	return s
}
