package experiments

import (
	"fmt"

	"braid/internal/braid"
	"braid/internal/interp"
	"braid/internal/isa"
	"braid/internal/uarch"
	"braid/internal/workload"
)

// Bench is one prepared benchmark: the generated program, its braided
// translation, and cached characterization.
type Bench struct {
	Name    string
	FP      bool
	Profile workload.Profile
	Orig    *isa.Program
	Braided *isa.Program
	Compile *braid.Result

	DynStats   braid.Stats        // execution-weighted Tables 1-3 statistics
	ValueStats *interp.ValueStats // §1 fanout/lifetime statistics
	DynInstrs  uint64
}

// Workloads is the prepared suite plus a simulation cache.
type Workloads struct {
	Benches []*Bench
	memo    map[memoKey]float64
}

type memoKey struct {
	bench   string
	braided bool
	cfg     uarch.Config
}

// LoadSuite generates and braids all 26 benchmarks, each calibrated to about
// dynTarget dynamic instructions, and precomputes their characterization.
func LoadSuite(dynTarget uint64) (*Workloads, error) {
	if dynTarget < 1000 {
		return nil, fmt.Errorf("experiments: dynTarget %d too small", dynTarget)
	}
	w := &Workloads{memo: map[memoKey]float64{}}
	for _, prof := range workload.Profiles() {
		b, err := prepare(prof, dynTarget)
		if err != nil {
			return nil, fmt.Errorf("experiments: %s: %w", prof.Name, err)
		}
		w.Benches = append(w.Benches, b)
	}
	return w, nil
}

func prepare(prof workload.Profile, dynTarget uint64) (*Bench, error) {
	// Calibrate the iteration count with a short probe run.
	const probeIters = 8
	probe, err := workload.Generate(prof, probeIters)
	if err != nil {
		return nil, err
	}
	fs, err := interp.RunProgram(probe, 10_000_000)
	if err != nil {
		return nil, err
	}
	perIter := fs.Steps / probeIters
	if perIter == 0 {
		perIter = 1
	}
	iters := int(dynTarget / perIter)
	if iters < 4 {
		iters = 4
	}
	if iters > isa.ImmMax {
		iters = isa.ImmMax
	}

	orig, err := workload.Generate(prof, iters)
	if err != nil {
		return nil, err
	}
	res, err := braid.Compile(orig, braid.Options{})
	if err != nil {
		return nil, err
	}
	b := &Bench{
		Name:    prof.Name,
		FP:      prof.FP,
		Profile: prof,
		Orig:    orig,
		Braided: res.Prog,
		Compile: res,
	}

	// Execution-weighted braid statistics (Tables 1-3).
	ds := braid.NewDynamicStats(res)
	m := interp.New(res.Prog)
	steps, err := m.Run(50_000_000, func(si *interp.StepInfo) { ds.OnRetire(si.Index) })
	if err != nil {
		return nil, err
	}
	b.DynStats = ds.Stats()
	b.DynInstrs = steps

	// §1 value fanout/lifetime statistics over the original program.
	vs, err := interp.Characterize(orig, 50_000_000)
	if err != nil {
		return nil, err
	}
	b.ValueStats = vs
	return b, nil
}

// IPC simulates one benchmark under cfg (braided selects the braid-compiled
// binary) and caches the result.
func (w *Workloads) IPC(b *Bench, braided bool, cfg uarch.Config) (float64, error) {
	key := memoKey{b.Name, braided, cfg}
	if v, ok := w.memo[key]; ok {
		return v, nil
	}
	p := b.Orig
	if braided {
		p = b.Braided
	}
	st, err := uarch.Simulate(p, cfg)
	if err != nil {
		return 0, fmt.Errorf("%s (%s braided=%v): %w", b.Name, cfg.Core, braided, err)
	}
	ipc := st.IPC()
	w.memo[key] = ipc
	return ipc, nil
}
